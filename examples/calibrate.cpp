/**
 * @file
 * Calibration probe: prints per-benchmark microarchitectural behaviour on
 * the baseline machine (IPC, mispredict rate, cache miss rates, stall
 * breakdown) so profile knobs can be tuned against the paper's Figure 4.
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

int
main(int argc, char **argv)
{
    const std::uint64_t uops =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
    const char *only = (argc > 2 && argv[2][0] != '-') ? argv[2] : nullptr;
    bool ideal_bp = false, ideal_mem = false, big = false;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-bp")
            ideal_bp = true;
        else if (a == "-mem")
            ideal_mem = true;
        else if (a == "-big")
            big = true;
    }

    std::printf("%-9s %6s %7s %7s %7s %9s %9s %9s %9s %7s\n", "bench",
                "IPC", "mispr%", "L1m%", "L2m%", "stFree", "stWin",
                "stRob", "stLsq", "fwd%");
    for (const auto &p : workload::allProfiles()) {
        if (only && p.name != only)
            continue;
        sim::SimConfig cfg;
        const char *machine = std::getenv("WSRS_CAL_MACHINE");
        cfg.core = sim::findPreset(machine ? machine : "RR-256");
        if (std::getenv("WSRS_CAL_FF_COMPLETE"))
            cfg.core.ffScope = core::FastForwardScope::Complete;
        if (const char *s = std::getenv("WSRS_CAL_ISSUE"))
            cfg.core.issuePerCluster = std::strtoul(s, nullptr, 10);
        if (const char *s = std::getenv("WSRS_CAL_WINDOW"))
            cfg.core.clusterWindow = std::strtoul(s, nullptr, 10);
        if (std::getenv("WSRS_CAL_RANDOM"))
            cfg.core.policy = core::AllocPolicy::RandomCommutative;
        if (const char *s = std::getenv("WSRS_CAL_FEDEPTH"))
            cfg.core.frontEndDepth = std::strtoul(s, nullptr, 10);
        if (const char *s = std::getenv("WSRS_CAL_REGREAD"))
            cfg.core.regReadStages = std::strtoul(s, nullptr, 10);
        cfg.measureUops = uops;
        cfg.warmupUops = uops;
        cfg.verifyDataflow = true;
        if (ideal_bp)
            cfg.predictor = sim::PredictorKind::Perfect;
        if (ideal_mem) {
            cfg.mem.l1.sizeBytes = 64u << 20;
            cfg.mem.l2.sizeBytes = 256u << 20;
        }
        if (big) {
            cfg.core.clusterWindow = 512;
            cfg.core.numPhysRegs = 4096;
            cfg.core.issuePerCluster = 8;
            cfg.core.fetchWidth = 16;
            cfg.core.commitWidth = 16;
            cfg.core.lsqSize = 1024;
            cfg.core.fetchQueue = 256;
            cfg.core.writebackPerCluster = 16;
        }
        const sim::SimResults r = sim::runSimulation(p, cfg);
        const auto &s = r.stats;
        std::printf("%-9s %6.3f %7.2f %7.2f %7.2f %9llu %9llu %9llu %9llu "
                    "%7.2f\n",
                    p.name.c_str(), r.ipc, 100 * r.branchMispredictRate,
                    100 * r.l1MissRate, 100 * r.l2MissRate,
                    (unsigned long long)s.renameStallFreeReg,
                    (unsigned long long)s.renameStallWindow,
                    (unsigned long long)s.renameStallRob,
                    (unsigned long long)s.renameStallLsq,
                    100.0 * s.loadForwards / std::max<std::uint64_t>(1,
                        s.committed));
        const std::uint64_t tot = s.perCluster[0] + s.perCluster[1] +
                                  s.perCluster[2] + s.perCluster[3];
        if (std::getenv("WSRS_CAL_CLUSTERS") && tot) {
            std::printf("  cluster shares: %.1f%% %.1f%% %.1f%% %.1f%%  "
                        "unbal %.1f%%\n",
                        100.0 * s.perCluster[0] / tot,
                        100.0 * s.perCluster[1] / tot,
                        100.0 * s.perCluster[2] / tot,
                        100.0 * s.perCluster[3] / tot,
                        r.unbalancingDegree);
        }
    }
    return 0;
}
