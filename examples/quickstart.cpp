/**
 * @file
 * Quickstart: simulate one benchmark on the conventional machine and on the
 * 4-cluster WSRS machine, and print the headline comparison.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark] [uops]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const std::uint64_t uops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    const workload::BenchmarkProfile &profile =
        workload::findProfile(bench);

    std::printf("benchmark: %s (%s)\n", profile.name.c_str(),
                profile.floatingPoint ? "SPECfp2000 stand-in"
                                      : "SPECint2000 stand-in");
    std::printf("measured slice: %llu micro-ops\n\n",
                static_cast<unsigned long long>(uops));

    for (const char *label : {"RR-256", "WSRS-RC-512"}) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(label);
        cfg.measureUops = uops;
        cfg.warmupUops = uops / 4;
        cfg.verifyDataflow = true;  // every committed value oracle-checked

        const sim::SimResults r = sim::runSimulation(profile, cfg);
        std::printf("%-12s IPC %.3f | mispredict %.2f%% | L1 miss %.2f%% | "
                    "unbalancing %.1f%%\n",
                    label, r.ipc, 100.0 * r.branchMispredictRate,
                    100.0 * r.l1MissRate, r.unbalancingDegree);
    }

    std::printf("\nThe WSRS machine sustains comparable IPC while its\n"
                "register file needs 1/6th of the conventional silicon area\n"
                "(see bench/table1_regfile).\n");
    return 0;
}
