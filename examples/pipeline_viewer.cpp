/**
 * @file
 * Pipeline-timeline viewer: run a short slice and render the last N
 * committed micro-ops' journey through the machine (R=rename, I=issue,
 * C=complete, X=commit) — a quick way to *see* write/read specialization,
 * cross-cluster bypass delays and misprediction bubbles.
 *
 *   ./build/examples/pipeline_viewer [bench] [machine] [rows]
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/bpred/two_bc_gskew.h"
#include "src/core/core.h"
#include "src/sim/presets.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

using namespace wsrs;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const std::string machine = argc > 2 ? argv[2] : "WSRS-RC-512";
    const std::size_t rows =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 40;

    workload::TraceGenerator gen(workload::findProfile(bench));
    bpred::TwoBcGskew bp;
    StatGroup stats("viewer");
    memory::MemoryHierarchy mem(memory::HierarchyParams{}, stats);
    core::Core machine_core(sim::findPreset(machine), gen, bp, mem);

    machine_core.run(20000);           // warm up
    machine_core.enableTimeline(rows);
    machine_core.run(2000);

    std::printf("%s on %s — last %zu committed micro-ops\n\n",
                bench.c_str(), machine.c_str(), rows);
    machine_core.dumpTimeline(std::cout, rows);

    const core::CoreStats &s = machine_core.stats();
    std::printf("\nmean issue width %.2f / 8, mean window occupancy "
                "%.0f / 224\n",
                s.meanIssueWidth(), s.meanWindowOccupancy());
    return 0;
}
