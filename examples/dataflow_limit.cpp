/**
 * @file
 * Dataflow-limit analyzer: computes the ideal-machine IPC of a generated
 * trace (infinite window/width, perfect memory and branches) by walking
 * register readiness times. Used to validate that profile knobs give each
 * benchmark the intended intrinsic ILP.
 */
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "src/isa/micro_op.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

using namespace wsrs;

int
main(int argc, char **argv)
{
    const std::uint64_t n =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

    std::printf("%-9s %10s %12s\n", "bench", "dataflowIPC", "critPathCyc");
    for (const auto &p : workload::allProfiles()) {
        workload::TraceGenerator gen(p);
        std::array<std::uint64_t, isa::kNumLogRegs> ready{};
        std::unordered_map<Addr, std::uint64_t> mem_ready;
        std::uint64_t crit = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            const isa::MicroOp op = gen.next();
            std::uint64_t start = 0;
            if (op.src1 != kNoLogReg)
                start = std::max(start, ready[op.src1]);
            if (op.src2 != kNoLogReg)
                start = std::max(start, ready[op.src2]);
            if (op.isLoad()) {
                const auto it = mem_ready.find(op.effAddr);
                if (it != mem_ready.end())
                    start = std::max(start, it->second);
            }
            const std::uint64_t done = start + op.latency();
            if (op.hasDest())
                ready[op.dst] = done;
            if (op.isStore())
                mem_ready[op.effAddr] = done;
            crit = std::max(crit, done);
        }
        std::printf("%-9s %10.2f %12llu\n", p.name.c_str(),
                    crit ? double(n) / crit : 0.0,
                    (unsigned long long)crit);
    }
    return 0;
}
