/**
 * @file
 * Using the public rfmodel API: explore the register-file design space —
 * how per-register ports, replication and entry count trade area, energy
 * and access time — and find the cheapest organization that serves an
 * 8-way machine under a cycle-time budget.
 *
 *   ./build/examples/regfile_explorer [budget_ns]
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/rfmodel/regfile_model.h"

using namespace wsrs::rfmodel;

int
main(int argc, char **argv)
{
    const double budget_ns =
        argc > 1 ? std::strtod(argv[1], nullptr) : 0.40;

    const RegFileModel model;

    std::printf("Design space: organizations able to feed an 8-way "
                "4-cluster machine\n");
    std::printf("(16 reads and 12 results per cycle in total)\n\n");
    std::printf("%-26s %8s %9s %9s %9s\n", "organization", "t (ns)",
                "nJ/cycle", "area w^2", "fits?");

    struct Candidate
    {
        const char *desc;
        RegFileOrg org;
    };
    std::vector<Candidate> candidates;

    // Monolithic: one array with all ports.
    candidates.push_back({"monolithic (16R,12W)", makeNoWsMonolithic()});
    // Read-distributed (Alpha 21264 style).
    candidates.push_back({"4 copies (4R,12W)", makeNoWsDistributed()});
    // Write specialization.
    candidates.push_back({"WS: 4 copies (4R,3W)", makeWriteSpec()});
    // WSRS.
    candidates.push_back({"WSRS: 2 copies (4R,3W)", makeWsrs()});

    // A hypothetical banked organization (8 banks, arbitration ignored):
    RegFileOrg banked;
    banked.name = "banked";
    banked.totalRegs = 256;
    banked.copiesPerReg = 1;
    banked.portsPerCopy = {.reads = 4, .writes = 3};
    banked.numSubfiles = 8;
    banked.entriesPerSubfile = 32;
    banked.writeBusesPerSubfile = 3;
    banked.writeSpanRows = 32;
    banked.producersVisible = 12;
    candidates.push_back({"8 banks (4R,3W), ideal arb", banked});

    const Candidate *best = nullptr;
    for (const Candidate &c : candidates) {
        const double t = model.accessTimeNs(c.org);
        const bool fits = t <= budget_ns;
        std::printf("%-26s %8.2f %9.2f %9.0f %9s\n", c.desc, t,
                    model.energyNJPerCycle(c.org),
                    model.totalArea(c.org) / 64,  // per-bit-row area
                    fits ? "yes" : "no");
        if (fits && (best == nullptr ||
                     model.totalArea(c.org) < model.totalArea(best->org)))
            best = &c;
    }

    std::printf("\ncheapest organization within the %.2f ns budget: %s\n",
                budget_ns, best ? best->desc : "(none)");
    std::printf("\nNote the structural pattern behind the paper: port\n"
                "count enters cell area quadratically (formula 1), so\n"
                "specializing writes (12 -> 3 ports) shrinks every cell\n"
                "4x before any banking trick; read specialization then\n"
                "halves replication. Banked organizations reach similar\n"
                "areas but need conflict arbitration the paper avoids.\n");
    return 0;
}
