/**
 * @file
 * Core-model probe: runs degenerate synthetic profiles (pure independent
 * ALU ops, ALU+loads, FP-heavy, ...) through a big machine with ideal
 * memory/branches to localize pipeline bottlenecks. Development tool.
 */
#include <cstdio>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profile.h"

using namespace wsrs;

namespace {

workload::BenchmarkProfile
base()
{
    workload::BenchmarkProfile p;
    p.name = "probe";
    p.fracLoad = 0;
    p.fracStore = 0;
    p.fracBranch = 0.02;
    p.fracIntMul = 0;
    p.fracIntDiv = 0;
    p.fracNoadic = 1.0;
    p.fracMonadic = 0.0;
    p.branchBiasedFrac = 1.0;
    p.biasedTakenProb = 1.0;
    p.workingSetBytes = 64 << 10;
    p.strideFrac = 1.0;
    p.loadAfterStoreFrac = 0;
    p.storeAliasFrac = 0;
    return p;
}

void
runOne(const char *label, const workload::BenchmarkProfile &p, bool big)
{
    sim::SimConfig cfg;
    cfg.core = sim::findPreset("RR-256");
    if (big) {
        cfg.core.clusterWindow = 512;
        cfg.core.numPhysRegs = 4096;
        cfg.core.lsqSize = 1024;
        cfg.core.fetchQueue = 256;
    }
    cfg.predictor = sim::PredictorKind::Perfect;
    cfg.mem.l1.sizeBytes = 64u << 20;
    cfg.measureUops = 150000;
    cfg.warmupUops = 20000;
    cfg.verifyDataflow = true;
    const auto r = sim::runSimulation(p, cfg);
    std::printf("%-28s IPC %6.3f  stFree %8llu stWin %8llu stRob %8llu "
                "stLsq %8llu\n",
                label, r.ipc, (unsigned long long)r.stats.renameStallFreeReg,
                (unsigned long long)r.stats.renameStallWindow,
                (unsigned long long)r.stats.renameStallRob,
                (unsigned long long)r.stats.renameStallLsq);
}

} // namespace

int
main()
{
    { // Pure independent 1-cycle ALU ops: expect IPC ~= 8.
        auto p = base();
        runOne("noadic-alu", p, true);
    }
    { // Independent loads only.
        auto p = base();
        p.fracLoad = 0.98;
        p.fracBranch = 0.02;
        runOne("loads-only", p, true);
    }
    { // Half loads, half ALU.
        auto p = base();
        p.fracLoad = 0.40;
        runOne("40%-loads", p, true);
    }
    { // FP mix without dependencies.
        auto p = base();
        p.fracFpAdd = 0.30;
        p.fracFpMul = 0.18;
        p.fracLoad = 0.30;
        p.fracStore = 0.10;
        runOne("fp-mix-independent", p, true);
    }
    { // Same on the paper-sized machine.
        auto p = base();
        p.fracFpAdd = 0.30;
        p.fracFpMul = 0.18;
        p.fracLoad = 0.30;
        p.fracStore = 0.10;
        runOne("fp-mix-independent-paper", p, false);
    }
    return 0;
}
