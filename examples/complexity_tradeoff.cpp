/**
 * @file
 * The paper's core argument as a single report: for each register-file
 * organization, combine the hardware-complexity estimates (area, energy,
 * access time, bypass complexity) with measured IPC, and print the
 * complexity-effectiveness summary — WSRS buys a ~6x smaller, ~2.5x
 * cooler register file for a few percent of IPC.
 *
 *   ./build/examples/complexity_tradeoff [uops]
 */
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>
#include <vector>

#include "src/rfmodel/regfile_model.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

double
geomeanIpc(const std::string &machine, std::uint64_t uops)
{
    double log_sum = 0;
    unsigned n = 0;
    for (const auto &p : workload::allProfiles()) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(machine);
        cfg.warmupUops = uops / 2;
        cfg.measureUops = uops;
        const sim::SimResults r = sim::runSimulation(p, cfg);
        log_sum += std::log(r.ipc);
        ++n;
    }
    return std::exp(log_sum / n);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t uops =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120000;

    const rfmodel::RegFileModel model;
    const rfmodel::RegFileOrg ref = rfmodel::makeNoWs2Cluster();

    struct Row
    {
        const char *machine;
        rfmodel::RegFileOrg org;
    };
    const std::vector<Row> rows = {
        {"RR-256", rfmodel::makeNoWsDistributed()},
        {"WSRR-512", rfmodel::makeWriteSpec()},
        {"WSRS-RC-512", rfmodel::makeWsrs()},
    };

    std::printf("8-way 4-cluster machines: register-file complexity vs "
                "delivered IPC\n");
    std::printf("(geometric-mean IPC over the 12 SPEC2000 stand-ins, "
                "%llu uops each)\n\n",
                static_cast<unsigned long long>(uops));
    std::printf("%-12s %10s %10s %10s %12s %10s\n", "machine",
                "RF area*", "nJ/cycle", "t (ns)", "bypass@10GHz",
                "gm IPC");

    double base_ipc = 0;
    for (const Row &row : rows) {
        const double ipc = geomeanIpc(row.machine, uops);
        if (base_ipc == 0)
            base_ipc = ipc;
        std::printf("%-12s %10.2f %10.2f %10.2f %12u %10.3f  (%+.1f%%)\n",
                    row.machine,
                    model.totalArea(row.org) / model.totalArea(ref),
                    model.energyNJPerCycle(row.org),
                    model.accessTimeNs(row.org),
                    model.bypassSources(row.org, 10.0), ipc,
                    100.0 * (ipc - base_ipc) / base_ipc);
    }
    std::printf("\n* register-file silicon area relative to a 4-way "
                "2-cluster machine\n");
    std::printf("\nReading: write specialization alone already shrinks "
                "the register file\n3.2x with no IPC cost; adding read "
                "specialization (WSRS) reaches the\n2-cluster machine's "
                "wake-up/bypass complexity at a few percent of IPC.\n");
    return 0;
}
