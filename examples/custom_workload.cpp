/**
 * @file
 * Using the public workload API: define a custom benchmark profile (a
 * synthetic "hash-join" kernel), inspect the generated program, validate
 * it against the in-order oracle, and measure it on two machines.
 *
 *   ./build/examples/custom_workload
 */
#include <cstdio>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/oracle.h"
#include "src/workload/trace_generator.h"

using namespace wsrs;

int
main()
{
    // A pointer-heavy kernel: probe a hash table (random, poorly cached
    // loads), walk collision chains (pointer chasing), little FP.
    workload::BenchmarkProfile p;
    p.name = "hashjoin";
    p.fracLoad = 0.34;
    p.fracStore = 0.10;
    p.fracBranch = 0.14;
    p.fracMonadic = 0.45;
    p.fracCommutative = 0.45;
    p.depGeomP = 0.35;
    p.depCrossBlockFrac = 0.5;
    p.maxChainDepth = 40;
    p.invariantFrac = 0.10;
    p.loadValueFrac = 0.25;
    p.numInvariantRegs = 6;
    p.pointerChaseFrac = 0.25;
    p.addrInvariantFrac = 0.6;
    p.branchBiasedFrac = 0.55;
    p.biasedTakenProb = 0.93;
    p.patternNoise = 0.03;
    p.numStreams = 2;
    p.strideFrac = 0.25;
    p.workingSetBytes = 8u << 20;
    p.randomHotFrac = 0.35;
    p.seed = 0x9a5471;

    // Inspect the generated static program.
    workload::TraceGenerator gen(p);
    std::printf("generated static program: %zu micro-op sites\n",
                gen.program().size());

    // Sanity: the stream is architecturally well-defined (oracle runs).
    workload::OracleExecutor oracle;
    workload::TraceGenerator oracle_gen(p);
    for (int i = 0; i < 10000; ++i)
        oracle.execute(oracle_gen.next());
    std::printf("oracle executed 10000 micro-ops of the custom trace\n\n");

    // Measure on the conventional and WSRS machines, with commit-time
    // oracle verification enabled.
    for (const char *machine : {"RR-256", "WSRS-RC-512", "WSRS-RM-512"}) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(machine);
        cfg.warmupUops = 60000;
        cfg.measureUops = 120000;
        cfg.verifyDataflow = true;
        const sim::SimResults r = sim::runSimulation(p, cfg);
        std::printf("%-12s IPC %.3f | mispredict %.1f%% | L1 miss %.1f%% "
                    "| L2 miss %.1f%% | unbal %.1f%%\n",
                    machine, r.ipc, 100 * r.branchMispredictRate,
                    100 * r.l1MissRate, 100 * r.l2MissRate,
                    r.unbalancingDegree);
    }

    std::printf("\nLike mcf, a memory-bound kernel is insensitive to the "
                "cluster\norganization: WSRS costs nothing here while its "
                "register file is 6x smaller.\n");
    return 0;
}
