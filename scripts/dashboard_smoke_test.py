#!/usr/bin/env python3
"""Smoke-test the --serve HTTP endpoints and the dashboard generator.

Usage: dashboard_smoke_test.py /path/to/wsrs-sim /path/to/svc_dashboard.py

Starts a real daemon, drives one sweep through it, then:

  1. polls GET /metrics over the unix socket and checks the Prometheus
     text exposition is well formed: every sample is preceded by its
     # HELP and # TYPE lines, names match wsrs_[a-z0-9_]+, counters end
     in _total, histogram bucket `le` labels are strictly increasing
     and end with +Inf, and the post-sweep snapshot shows the request
     was counted;
  2. checks GET /status returns the wsrs-svc-status-v1 document and an
     unknown path returns 404;
  3. runs scripts/svc_dashboard.py --connect against the live daemon
     and sanity-checks the generated HTML.

Exit status 0 on success. Used by the `obs` labelled ctest.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

METRIC_NAME_RE = re.compile(r"^wsrs_[a-z0-9_]+$")


def http_get(sockpath, path):
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(10.0)
        s.connect(sockpath)
        s.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        raw = b""
        while chunk := s.recv(65536):
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    headers = head.decode("latin-1").split("\r\n")
    return headers[0], headers[1:], body.decode()


def check_prometheus(text):
    """Validate the exposition format; returns {metric name: type}."""
    types = {}
    helped = set()
    hist_les = {}  # base name -> [le values so far]
    for line in text.splitlines():
        if not line:
            sys.exit("FAIL: blank line in exposition")
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _, _, name, mtype = line.split()
            if name not in helped:
                sys.exit(f"FAIL: TYPE before HELP for {name}")
            if mtype not in ("counter", "gauge", "histogram"):
                sys.exit(f"FAIL: unknown type {mtype} for {name}")
            types[name] = mtype
            continue
        # Sample line: name{labels} value
        m = re.match(r"^([a-zA-Z0-9_]+)(\{[^}]*\})? (\S+)$", line)
        if not m:
            sys.exit(f"FAIL: unparseable sample line {line!r}")
        name, labels, value = m.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in types and name not in types:
            sys.exit(f"FAIL: sample {name} has no TYPE line")
        mtype = types.get(base, types.get(name))
        if mtype == "histogram":
            if not METRIC_NAME_RE.match(base):
                sys.exit(f"FAIL: bad metric name {base}")
            if name.endswith("_bucket"):
                le = m = re.search(r'le="([^"]+)"', labels or "")
                if not le:
                    sys.exit(f"FAIL: bucket without le: {line!r}")
                val = float("inf") if le.group(1) == "+Inf" \
                    else float(le.group(1))
                prev = hist_les.setdefault(base, [])
                if prev and val <= prev[-1]:
                    sys.exit(f"FAIL: le not increasing for {base}")
                prev.append(val)
        else:
            if not METRIC_NAME_RE.match(name):
                sys.exit(f"FAIL: bad metric name {name}")
            if mtype == "counter":
                if not name.endswith("_total"):
                    sys.exit(f"FAIL: counter {name} lacks _total")
                if float(value) < 0:
                    sys.exit(f"FAIL: negative counter {name}")
    for base, les in hist_les.items():
        if les[-1] != float("inf"):
            sys.exit(f"FAIL: {base} buckets do not end with +Inf")
    return types


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    binary, dashboard = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory(prefix="wsrs_dash_") as tmp:
        sockpath = os.path.join(tmp, "daemon.sock")
        endpoint = "unix:" + sockpath
        daemon = subprocess.Popen([binary, f"--serve={endpoint}"],
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.PIPE, text=True)
        try:
            line = daemon.stderr.readline()
            if "serving on" not in line:
                sys.exit(f"FAIL: daemon did not come up: {line!r}")

            # Metrics are live before any traffic...
            status_line, headers, body = http_get(sockpath, "/metrics")
            if "200" not in status_line:
                sys.exit(f"FAIL: /metrics -> {status_line!r}")
            ctype = [h for h in headers
                     if h.lower().startswith("content-type:")]
            if not ctype or "text/plain" not in ctype[0]:
                sys.exit(f"FAIL: bad /metrics content type {ctype!r}")
            check_prometheus(body)
            print("ok: /metrics serves well-formed Prometheus text")

            # ...and count traffic once a sweep has run.
            req = json.dumps({"benchmarks": ["gzip"],
                              "machines": ["RR-256"],
                              "uops": 2000, "warmup": 500})
            r = subprocess.run([binary, f"--connect={endpoint}",
                                "--request=-"], input=req,
                               capture_output=True, text=True)
            if r.returncode != 0:
                sys.exit(f"FAIL: sweep request exited {r.returncode}: "
                         f"{r.stderr.strip()}")
            deadline = time.monotonic() + 10
            while True:
                _, _, body = http_get(sockpath, "/metrics")
                types = check_prometheus(body)
                if "wsrs_svc_requests_completed_total 1" in body:
                    break
                if time.monotonic() > deadline:
                    sys.exit("FAIL: completed counter never reached 1")
                time.sleep(0.1)
            for want in ("wsrs_svc_requests_admitted_total",
                         "wsrs_runner_jobs_total",
                         "wsrs_svc_request_duration_ms",
                         "wsrs_runner_simulate_duration_ms"):
                if want not in types:
                    sys.exit(f"FAIL: /metrics lacks {want} "
                             f"(has {sorted(types)})")
            print("ok: post-sweep /metrics counts the request and "
                  "exposes runner instruments")

            status_line, _, body = http_get(sockpath, "/status")
            if "200" not in status_line or \
                    json.loads(body).get("schema") != "wsrs-svc-status-v1":
                sys.exit("FAIL: /status is not a status document")
            status_line, _, _ = http_get(sockpath, "/nonesuch")
            if "404" not in status_line:
                sys.exit(f"FAIL: /nonesuch -> {status_line!r}")
            print("ok: /status serves the status document, unknown "
                  "paths 404")

            out = os.path.join(tmp, "dash.html")
            subprocess.run([sys.executable, dashboard,
                            "--connect", endpoint, "--out", out],
                           check=True, stdout=subprocess.DEVNULL)
            html = open(out).read()
            for want in ("<title>wsrs sweep service</title>", "<svg",
                         "requests admitted",
                         "wsrs_svc_request_duration_ms"):
                if want not in html:
                    sys.exit(f"FAIL: dashboard HTML lacks {want!r}")
            print("ok: svc_dashboard.py renders the live daemon")
        finally:
            daemon.send_signal(signal.SIGTERM)
            if daemon.wait(timeout=60) != 0:
                sys.exit("FAIL: daemon exited nonzero on SIGTERM")

    print("dashboard smoke: all checks passed")


if __name__ == "__main__":
    main()
