#!/usr/bin/env python3
"""Fail when simulator host throughput regresses against the baseline.

Reads the BENCH_sim_throughput.json emitted by

    microbench_components --sim-throughput-json=BENCH_sim_throughput.json

and compares whole-machine simulation throughput (micro-ops simulated per
second, per machine preset) against a checked-in baseline. The check fails
when any preset's throughput drops more than --tolerance (default 10%)
below its baseline value.

Baseline semantics: bench/throughput_baseline.json stores conservative
floors (deliberately below the reference host's measured numbers) so the
check is stable across reasonably-sized machines while still catching
order-of-magnitude regressions such as an accidental Debug build or an
O(window) scheduler scan creeping back in. Re-baseline on a quiet host
with:

    python3 scripts/check_throughput.py --json BENCH_sim_throughput.json \
        --write-baseline bench/throughput_baseline.json --headroom 0.5
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", required=True,
                    help="BENCH_sim_throughput.json to check")
    ap.add_argument("--baseline",
                    help="baseline JSON with per-preset uops_per_second")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional drop below baseline "
                         "(default 0.10)")
    ap.add_argument("--trace-tolerance", type=float, default=None,
                    help="when set, require the tracing-disabled "
                         "trace_overhead.off throughput to stay within "
                         "this fraction of the interleaved reference "
                         "measurement (e.g. 0.02)")
    ap.add_argument("--metrics-tolerance", type=float, default=None,
                    help="when set, require both metrics_overhead arms "
                         "(telemetry disabled AND enabled) to stay within "
                         "this fraction of the interleaved reference "
                         "sweep throughput (e.g. 0.02)")
    ap.add_argument("--ckpt-speedup", type=float, default=None,
                    help="when set, require the warm-up checkpoint reuse "
                         "sweep (ckpt.warmup_speedup) to be at least this "
                         "factor faster than warming every job (e.g. 1.3)")
    ap.add_argument("--write-baseline",
                    help="instead of checking, write a new baseline here")
    ap.add_argument("--headroom", type=float, default=0.5,
                    help="fraction of measured throughput recorded when "
                         "writing a baseline (default 0.5)")
    args = ap.parse_args()

    data = load(args.json)
    if data.get("schema") != "wsrs-sim-throughput-v1":
        sys.exit(f"unrecognized schema in {args.json}")
    single = data["single_run"]

    if args.write_baseline:
        # Baselines define the regression floors for every future run, so
        # refuse to derive them from an unoptimized binary. The stamp is
        # written by the build (WSRS_BUILD_TYPE); its absence means the
        # provenance of the numbers is unknown, which is just as bad.
        build_type = data.get("build_type")
        if build_type != "Release":
            sys.exit(
                f"refusing to write a baseline from a "
                f"{build_type or 'unstamped'} build of "
                f"microbench_components; re-run from a Release build "
                f"(build_type stamp in {args.json})")
        baseline = {
            "schema": "wsrs-sim-throughput-baseline-v1",
            "note": ("conservative floors: measured uops/second x "
                     f"{args.headroom}; regenerate with --write-baseline"),
            "single_run_uops_per_second": {
                preset: round(row["uops_per_second"] * args.headroom)
                for preset, row in single.items()
            },
        }
        with open(args.write_baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"wrote {args.write_baseline}")
        return

    if not args.baseline:
        sys.exit("--baseline is required unless --write-baseline is given")
    baseline = load(args.baseline)
    floors = baseline["single_run_uops_per_second"]

    failures = []
    for preset, floor in floors.items():
        if preset not in single:
            failures.append(f"{preset}: missing from {args.json}")
            continue
        measured = single[preset]["uops_per_second"]
        limit = floor * (1.0 - args.tolerance)
        status = "ok" if measured >= limit else "REGRESSED"
        print(f"{preset:14s} {measured:12.0f} uops/s "
              f"(floor {floor:.0f}, limit {limit:.0f}) {status}")
        if measured < limit:
            failures.append(
                f"{preset}: {measured:.0f} uops/s is more than "
                f"{args.tolerance:.0%} below baseline {floor:.0f}")

    trace = data.get("trace_overhead", {})
    if trace:
        print(f"trace_overhead[{trace.get('preset')}]: "
              f"off {trace.get('off_uops_per_second'):.0f} uops/s, "
              f"text x{trace.get('text_slowdown'):.2f}, "
              f"binary x{trace.get('binary_slowdown'):.2f}")
    if args.trace_tolerance is not None:
        if not trace:
            failures.append("trace_overhead section missing "
                            f"from {args.json}")
        else:
            # The gate reads the paired estimator: median over rounds of
            # the within-round off/ref throughput ratio. Host noise
            # spikes hit both arms of a round and cancel; comparing each
            # arm's independent best-of does not have that property.
            ratio = trace["off_paired_ratio"]
            floor_ratio = 1.0 - args.trace_tolerance
            if ratio < floor_ratio:
                failures.append(
                    f"tracing-disabled path: paired off/ref ratio "
                    f"{ratio:.4f} is more than "
                    f"{args.trace_tolerance:.0%} below parity")
            else:
                print(f"tracing-disabled overhead ok "
                      f"(paired ratio {ratio:.4f}, "
                      f"floor {floor_ratio:.2f})")

    metrics = data.get("metrics_overhead", {})
    if metrics:
        print(f"metrics_overhead: {metrics.get('jobs')} jobs, "
              f"ref {metrics.get('ref_uops_per_second'):.0f} uops/s, "
              f"off ratio {metrics.get('off_paired_ratio'):.4f}, "
              f"on ratio {metrics.get('on_paired_ratio'):.4f}")
    if args.metrics_tolerance is not None:
        if not metrics:
            failures.append("metrics_overhead section missing "
                            f"from {args.json}")
        else:
            # Same paired estimator as the trace gate (see above).
            floor_ratio = 1.0 - args.metrics_tolerance
            for arm in ("off", "on"):
                ratio = metrics[f"{arm}_paired_ratio"]
                if ratio < floor_ratio:
                    failures.append(
                        f"telemetry-{arm} sweep: paired {arm}/ref "
                        f"ratio {ratio:.4f} is more than "
                        f"{args.metrics_tolerance:.0%} below parity")
                else:
                    print(f"telemetry-{arm} overhead ok "
                          f"(paired ratio {ratio:.4f}, "
                          f"floor {floor_ratio:.2f})")

    sweep = data.get("sweep", {})
    if sweep:
        print(f"sweep: {sweep.get('jobs')} jobs, "
              f"serial {sweep.get('serial_seconds'):.2f}s, "
              f"parallel {sweep.get('parallel_seconds'):.2f}s, "
              f"speedup {sweep.get('speedup'):.2f}x")

    ckpt = data.get("ckpt", {})
    if ckpt:
        print(f"ckpt: {ckpt.get('jobs')} jobs "
              f"({ckpt.get('warmup_uops')} warm-up uops each), "
              f"no-reuse {ckpt.get('no_reuse_seconds'):.2f}s, "
              f"reuse {ckpt.get('reuse_seconds'):.2f}s, "
              f"speedup {ckpt.get('warmup_speedup'):.2f}x, "
              f"cache {ckpt.get('warmup_hits')}h/"
              f"{ckpt.get('warmup_misses')}m")
    if args.ckpt_speedup is not None:
        if not ckpt:
            failures.append(f"ckpt section missing from {args.json}")
        elif ckpt["warmup_speedup"] < args.ckpt_speedup:
            failures.append(
                f"warm-up reuse speedup {ckpt['warmup_speedup']:.2f}x is "
                f"below the required {args.ckpt_speedup:.2f}x")
        elif ckpt["warmup_misses"] == 0:
            failures.append("ckpt sweep reports zero warm-up cache misses "
                            "(snapshots were never built?)")

    if failures:
        print("\nthroughput regression detected:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("throughput ok")


if __name__ == "__main__":
    main()
