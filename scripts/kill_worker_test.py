#!/usr/bin/env python3
"""SIGKILL distributed sweep workers (and the coordinator) mid-flight.

Usage: kill_worker_test.py /path/to/wsrs-sim

Three sweeps over the same job matrix:

  1. clean:       single-process reference run;
  2. worker-kill: coordinator with 3 self-spawned workers sharing a
                  warm-up cache directory; two workers are SIGKILLed
                  while the journal shows the sweep in flight. The
                  coordinator must re-lease their shards and the merged
                  report must equal the clean run;
  3. coord-kill:  a journalled distributed sweep whose *coordinator* is
                  SIGKILLed mid-flight, then re-run with --resume and
                  fresh workers. The journal is the work queue: the
                  resumed report must again equal the clean run.

"Equal" means the jobs array and summary compare byte for byte after a
canonical json.dumps — per-job stats documents included — so losing a
worker (or the coordinator) is observationally indistinguishable from
never losing one. The checks tolerate the lucky race where a victim
finishes before the kill lands; what they never tolerate is a report
mismatch. Exit status 0 on success. Used by the `svc` labelled ctest.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

# 12 profiles x 6 machines: enough jobs for a mid-sweep kill window,
# small enough to finish in seconds.
SWEEP_ARGS = ["--all", "--uops=20000", "--warmup=5000", "--reuse-warmup"]
JOURNAL_HEADER_BYTES = 28


def load(path):
    with open(path) as f:
        return json.load(f)


def canonical(report):
    """The byte-identity surface: per-job results plus the summary."""
    return (json.dumps(report["jobs"], sort_keys=True),
            json.dumps(report["summary"], sort_keys=True))


def children_of(pid):
    try:
        with open(f"/proc/{pid}/task/{pid}/children") as f:
            return [int(tok) for tok in f.read().split()]
    except OSError:
        return []


def wait_for_progress(proc, journal, deadline_s=120):
    """Block until the journal holds a committed record (or proc exits)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return False
        try:
            if os.path.getsize(journal) > JOURNAL_HEADER_BYTES:
                return True
        except OSError:
            pass
        time.sleep(0.005)
    raise TimeoutError(f"no journal progress in {deadline_s}s")


def distributed_cmd(binary, tmp, tag, journal, resume=False):
    cmd = [binary, *SWEEP_ARGS,
           f"--coordinator=unix:{os.path.join(tmp, tag + '.sock')}",
           "--workers=3", "--shard-size=4",
           f"--warmup-cache-dir={os.path.join(tmp, 'warmup')}",
           f"--resume-journal={journal}",
           f"--stats-json={os.path.join(tmp, tag + '.json')}"]
    if resume:
        cmd.append("--resume")
    return cmd


def worker_kill_run(binary, tmp):
    journal = os.path.join(tmp, "workers.journal")
    proc = subprocess.Popen(distributed_cmd(binary, tmp, "workers", journal),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    killed = 0
    if wait_for_progress(proc, journal):
        # Two staggered kills, so the coordinator re-leases twice while
        # the surviving worker keeps the sweep moving.
        for _ in range(2):
            kids = children_of(proc.pid)
            if not kids:
                break
            os.kill(kids[0], signal.SIGKILL)
            killed += 1
            time.sleep(0.05)
    rc = proc.wait()
    if rc != 0:
        sys.exit(f"FAIL: coordinator exited {rc} after worker kills")
    report = load(os.path.join(tmp, "workers.json"))
    svc = report["svc"]
    print(f"worker-kill: killed {killed} workers; "
          f"workers_seen={svc['workers_seen']} "
          f"workers_lost={svc['workers_lost']} "
          f"lease_retries={svc['lease_retries']}")
    return report


def coordinator_kill_run(binary, tmp):
    journal = os.path.join(tmp, "coord.journal")
    proc = subprocess.Popen(distributed_cmd(binary, tmp, "coord", journal),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    progressed = wait_for_progress(proc, journal)
    if progressed:
        os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    if not progressed:
        print("note: sweep finished before the coordinator kill; "
              "resume will skip every job")
    # Orphaned workers die on coordinator EOF; give them a beat so the
    # resumed coordinator can rebind a quiet socket path.
    time.sleep(0.2)

    subprocess.run(distributed_cmd(binary, tmp, "coord2", journal,
                                   resume=True),
                   check=True, stdout=subprocess.DEVNULL)
    report = load(os.path.join(tmp, "coord2.json"))
    if not report["resume"]["resumed"]:
        sys.exit("FAIL: resumed report lacks resumed=true")
    skipped = report["resume"]["skipped_runs"]
    total = report["summary"]["total"]
    if not 0 < skipped <= total:
        sys.exit(f"FAIL: implausible skipped_runs={skipped} "
                 f"(total={total})")
    print(f"coord-kill: resume recovered {skipped}/{total} jobs "
          "from the journal")
    return report


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="wsrs_svc_kill_") as tmp:
        clean_json = os.path.join(tmp, "clean.json")
        subprocess.run([binary, *SWEEP_ARGS, "--jobs=2",
                        f"--stats-json={clean_json}"],
                       check=True, stdout=subprocess.DEVNULL)
        clean = canonical(load(clean_json))

        if canonical(worker_kill_run(binary, tmp)) != clean:
            sys.exit("FAIL: worker-kill report differs from the clean run")
        print("ok: worker-kill report matches the clean run byte for byte")

        if canonical(coordinator_kill_run(binary, tmp)) != clean:
            sys.exit("FAIL: coordinator-kill resume report differs from "
                     "the clean run")
        print("ok: coordinator-kill resume matches the clean run "
              "byte for byte")


if __name__ == "__main__":
    main()
