#!/usr/bin/env python3
"""Summarize a wsrs-svc-frames-v1 JSONL frame log (wsrs-sim --serve).

Usage: frame_log_report.py FRAMES.jsonl

Pairs each connection's request frame (rx) with the daemon's terminal
reply on the same connection (tx sweep_result / sweep_rejected / error /
status_reply / http_reply) and reports per-RPC latency percentiles from
the records' t_ms stamps, plus traffic totals by frame type. Tolerates a
torn final line, like every reader of the streaming log.

Output is a small plain-text table:

    rpc               count   p50_ms   p90_ms   p99_ms   max_ms
    sweep_request         3        9       15       15       15
    status_request        1        0        0        0        0
    ...

Exit status 0 unless the file is missing or has no parseable header.
"""

import json
import sys

# Terminal daemon replies: seeing one of these closes the connection's
# open RPC. sweep_accepted is an intermediate ack and does not.
TERMINAL_TX = {"sweep_result", "sweep_rejected", "status_reply",
               "error", "http_reply"}


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0
    k = min(len(sorted_vals) - 1, int(p * len(sorted_vals)))
    return sorted_vals[k]


def load_records(path):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        sys.exit(f"FAIL {path}: empty file")
    header = json.loads(lines[0])
    if header.get("schema") != "wsrs-svc-frames-v1":
        sys.exit(f"FAIL {path}: not a wsrs-svc-frames-v1 log")
    if header.get("format") != "jsonl":
        sys.exit(f"FAIL {path}: expected the streaming jsonl format")
    records = []
    for i, line in enumerate(lines[1:]):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 2:
                break  # torn tail: the daemon died between flushes.
            raise
        if "dir" in rec:
            records.append(rec)
    return records


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    records = load_records(sys.argv[1])

    by_type = {}
    open_rpc = {}   # conn -> (request type, t_ms)
    latencies = {}  # request type -> [ms, ...]
    bytes_rx = bytes_tx = 0
    for rec in records:
        by_type[rec["type"]] = by_type.get(rec["type"], 0) + 1
        if rec["dir"] == "rx":
            bytes_rx += rec["payload_bytes"]
            # A second request on one connection would be a protocol
            # violation; last-writer-wins keeps the report sane anyway.
            open_rpc[rec["conn"]] = (rec["type"], rec["t_ms"])
        else:
            bytes_tx += rec["payload_bytes"]
            if rec["type"] in TERMINAL_TX and rec["conn"] in open_rpc:
                req_type, t0 = open_rpc.pop(rec["conn"])
                latencies.setdefault(req_type, []).append(
                    rec["t_ms"] - t0)

    print(f"frames: {len(records)}  rx_bytes: {bytes_rx}  "
          f"tx_bytes: {bytes_tx}")
    print("\ntraffic by frame type:")
    for t in sorted(by_type):
        print(f"  {t:<18} {by_type[t]:>6}")

    print(f"\n{'rpc':<18} {'count':>6} {'p50_ms':>8} {'p90_ms':>8} "
          f"{'p99_ms':>8} {'max_ms':>8}")
    for req_type in sorted(latencies):
        vals = sorted(latencies[req_type])
        print(f"{req_type:<18} {len(vals):>6} "
              f"{percentile(vals, 0.50):>8} "
              f"{percentile(vals, 0.90):>8} "
              f"{percentile(vals, 0.99):>8} "
              f"{vals[-1]:>8}")
    if open_rpc:
        print(f"\nunanswered requests: {len(open_rpc)} "
              "(in flight at the tail, or the reply frame was dropped)")


if __name__ == "__main__":
    main()
