#!/usr/bin/env python3
"""Prove wsrs-sim's documented exit codes stay distinct.

Usage: check_exit_codes.py /path/to/wsrs-sim

The CLI contract (docs/sweep_service.md):

  0  success
  1  configuration error (bad flag value, unknown benchmark/machine,
     unsupported transport scheme)
  2  I/O or corruption error (unreadable/damaged checkpoint or socket)
  3  journal/sweep binding mismatch (a journal or checkpoint that
     belongs to a different sweep or machine configuration)
  4  sweep completed but some jobs failed
  75 daemon admission-queue backpressure (EX_TEMPFAIL, --request only;
     covered by serve_smoke_test.py)

Every probe below must hit its exact code — a collapse of two classes
into one (e.g. everything exiting 1) is a regression in scriptability.
Exit status 0 on success. Used by the `svc` labelled ctest.
"""

import os
import subprocess
import sys
import tempfile

TINY = ["--uops=2000", "--warmup=500"]


def probe(name, cmd, want):
    r = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                       stderr=subprocess.PIPE, text=True)
    if r.returncode != want:
        sys.exit(f"FAIL {name}: exit {r.returncode}, expected {want}\n"
                 f"  cmd: {' '.join(cmd)}\n  stderr: {r.stderr.strip()}")
    print(f"ok: {name} -> {want}")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="wsrs_exit_") as tmp:
        probe("clean run exits 0",
              [binary, "--bench=gzip", "--machine=RR-256", *TINY], 0)

        # Class 1: configuration errors.
        probe("unknown machine is a config error",
              [binary, "--bench=gzip", "--machine=NO-SUCH", *TINY], 1)
        probe("unknown benchmark is a config error",
              [binary, "--bench=nonesuch", "--machine=RR-256", *TINY], 1)
        probe("unsupported transport scheme is a config error",
              [binary, "--all", *TINY, "--coordinator=tcp://1.2.3.4:1"],
              1)

        # Class 2: I/O / corruption errors.
        garbage = os.path.join(tmp, "garbage.ckpt")
        with open(garbage, "wb") as f:
            f.write(b"not a checkpoint container at all")
        probe("corrupt checkpoint is an I/O error",
              [binary, "--bench=gzip", "--machine=RR-256", *TINY,
               f"--ckpt-load={garbage}"], 2)
        probe("missing checkpoint is an I/O error",
              [binary, "--bench=gzip", "--machine=RR-256", *TINY,
               f"--ckpt-load={os.path.join(tmp, 'absent.ckpt')}"], 2)

        # Class 3: journal bound to a different sweep.
        journal = os.path.join(tmp, "sweep.journal")
        subprocess.run([binary, "--all", *TINY,
                        f"--resume-journal={journal}"],
                       check=True, stdout=subprocess.DEVNULL)
        probe("resuming another sweep's journal is a mismatch error",
              [binary, "--all", *TINY, "--seed=99",
               f"--resume-journal={journal}", "--resume"], 3)

    print("all exit codes distinct and as documented")


if __name__ == "__main__":
    main()
