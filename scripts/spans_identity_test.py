#!/usr/bin/env python3
"""Distributed span emission must not perturb the sweep report.

Usage: spans_identity_test.py /path/to/wsrs-sim /path/to/check_stats_schema.py

Runs the full sweep matrix twice through a 2-worker --coordinator
service — once with telemetry on (--spans-out + --metrics-out), once
with it off — and checks:

  1. the merged wsrs-sweep-report-v1 `jobs` and `summary` sections are
     byte-identical between the two runs once canonicalised (sorted
     keys, fixed separators): telemetry must observe, never perturb;
  2. the span log passes the wsrs-spans-v1 schema checker (nesting,
     non-negative durations) and holds exactly one `job` root span per
     sweep job;
  3. the spans really are distributed: both worker ids appear, and the
     skew-normalised timeline starts at ts 0;
  4. the metrics snapshot passes the wsrs-metrics-v1 schema checker.

Exit status 0 on success. Used by the `obs` labelled ctest.
"""

import json
import os
import subprocess
import sys
import tempfile

SWEEP = ["--all", "--uops=2000", "--warmup=500", "--reuse-warmup",
         "--shard-size=2", "--workers=2"]


def run_sweep(binary, tmp, tag, telemetry):
    report = os.path.join(tmp, f"report_{tag}.json")
    extra = []
    if telemetry:
        extra = [f"--spans-out={os.path.join(tmp, 'spans.json')}",
                 f"--metrics-out={os.path.join(tmp, 'metrics.json')}"]
    sock = "unix:" + os.path.join(tmp, f"co_{tag}.sock")
    r = subprocess.run([binary, *SWEEP, f"--coordinator={sock}",
                        f"--stats-json={report}", *extra],
                       stdout=subprocess.DEVNULL,
                       stderr=subprocess.PIPE, text=True)
    if r.returncode != 0:
        sys.exit(f"FAIL: {tag} sweep exited {r.returncode}: "
                 f"{r.stderr.strip()[-500:]}")
    with open(report) as f:
        return json.load(f)


def canonical(report):
    """The deterministic surface of a sweep report: jobs + summary."""
    return json.dumps({"jobs": report["jobs"],
                       "summary": report["summary"]},
                      sort_keys=True, separators=(",", ":"))


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    binary, schema_checker = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory(prefix="wsrs_spans_") as tmp:
        traced = run_sweep(binary, tmp, "traced", telemetry=True)
        plain = run_sweep(binary, tmp, "plain", telemetry=False)

        a, b = canonical(traced), canonical(plain)
        if a != b:
            sys.exit("FAIL: telemetry changed the sweep report "
                     f"({len(a)} vs {len(b)} canonical bytes)")
        total = traced["summary"]["total"]
        print(f"ok: {total}-job report is byte-identical with and "
              "without telemetry")

        spans_path = os.path.join(tmp, "spans.json")
        metrics_path = os.path.join(tmp, "metrics.json")
        subprocess.run([sys.executable, schema_checker, spans_path,
                        metrics_path], check=True,
                       stdout=subprocess.DEVNULL)
        print("ok: span and metrics documents pass the schema checker")

        with open(spans_path) as f:
            spans = json.load(f)
        events = spans["traceEvents"]
        roots = [e for e in events
                 if e["ph"] == "X" and e["name"] == "job"]
        if len(roots) != total:
            sys.exit(f"FAIL: {len(roots)} job root spans for "
                     f"{total} jobs")
        if not any(e["ts"] == 0 for e in events if e["ph"] in "Xi"):
            sys.exit("FAIL: timeline is not rebased to ts 0")
        workers = {e["args"]["worker"] for e in events
                   if e["ph"] == "X" and e["name"] == "attempt"}
        if not workers.issuperset({1, 2}):
            sys.exit(f"FAIL: expected attempts on workers 1 and 2, "
                     f"saw {sorted(workers)}")
        stages = {e["name"] for e in events if e["ph"] == "X"}
        for want in ("job", "attempt", "simulate"):
            if want not in stages:
                sys.exit(f"FAIL: no {want} spans (saw {sorted(stages)})")
        print(f"ok: one span tree per job across workers "
              f"{sorted(workers)}")

    print("spans identity: all checks passed")


if __name__ == "__main__":
    main()
