#!/usr/bin/env python3
"""Render a stall-cause breakdown from a wsrs sweep report.

Usage:
    wsrs-sim --all --stats-json=sweep.json [--interval-stats N]
    python3 scripts/stall_report.py sweep.json [--machine NAME]
    python3 scripts/stall_report.py stats.json        # single run too

For every machine (aggregated over its benchmarks, cycle-weighted), prints
the percentage of cycles each pipeline stage spent in each stall cause:
rename, commit, and the per-cluster issue stage (clusters averaged, since
cause mix is what matters; the per-cluster split is in the JSON). The
issue table is where the paper's phenomena show up: intercluster-forward
waits and empty clusters (icount imbalance) grow with the cluster count,
while subset-full rename stalls are the register-write-specialization
cost.
"""

import argparse
import json
import signal
import sys

# Die quietly when piped into `head` etc.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def collect_docs(doc, path):
    """Yield (machine, stats-doc) pairs from either schema."""
    schema = doc.get("schema")
    if schema == "wsrs-sweep-report-v1":
        for job in doc["jobs"]:
            if job["ok"]:
                yield job["machine"], job["stats"]
    elif schema == "wsrs-stats-v1":
        yield doc["machine"], doc
    else:
        sys.exit(f"{path}: unrecognized schema {schema!r}")


def add_hist(acc, hist):
    buckets = hist["buckets"] + [hist["overflow"]]
    if not acc:
        acc.extend(buckets)
    else:
        for i, v in enumerate(buckets):
            acc[i] += v
    return acc


def render(title, legend, acc):
    total = sum(acc)
    if total == 0:
        return
    print(f"  {title}")
    rows = sorted(zip(legend + ["(overflow)"], acc),
                  key=lambda kv: -kv[1])
    for cause, count in rows:
        if count == 0:
            continue
        pct = 100.0 * count / total
        bar = "#" * int(pct / 2)
        print(f"    {cause:28s} {pct:6.2f}%  |{bar}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="sweep report or single-run stats JSON")
    ap.add_argument("--machine", help="restrict to one machine preset")
    args = ap.parse_args()

    with open(args.report) as f:
        doc = json.load(f)

    per_machine = {}
    for machine, stats in collect_docs(doc, args.report):
        if args.machine and machine != args.machine:
            continue
        agg = per_machine.setdefault(
            machine,
            {"cycles": 0, "committed": 0, "benchmarks": 0,
             "issue": [], "rename": [], "commit": [], "wakeup": [],
             "legend": stats["core"]["pipeline"]["stall_causes"]})
        core = stats["core"]
        pipe = core["pipeline"]
        agg["cycles"] += core["cycles"]
        agg["committed"] += core["committed"]
        agg["benchmarks"] += 1
        for h in pipe["issue_stall"]:
            add_hist(agg["issue"], h)
        add_hist(agg["rename"], pipe["rename_stall"])
        add_hist(agg["commit"], pipe["commit_stall"])
        add_hist(agg["wakeup"], pipe["wakeup_latency"])

    if not per_machine:
        sys.exit("no matching runs in the report")

    for machine, agg in per_machine.items():
        ipc = agg["committed"] / agg["cycles"] if agg["cycles"] else 0.0
        print(f"\n{machine}: {agg['benchmarks']} benchmark(s), "
              f"{agg['cycles']} cycles, aggregate IPC {ipc:.3f}")
        legend = agg["legend"]
        render("issue stage (all clusters)", legend["issue"], agg["issue"])
        render("rename stage", legend["rename"], agg["rename"])
        render("commit stage", legend["commit"], agg["commit"])
        wk = agg["wakeup"]
        total = sum(wk)
        if total:
            mean = sum(i * v for i, v in enumerate(wk)) / total
            print(f"  wake-up to issue latency: mean {mean:.2f} cycles "
                  f"({100.0 * wk[0] / total:.1f}% same-cycle)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
