#!/usr/bin/env python3
"""End-to-end smoke of the wsrs-sim --serve daemon.

Usage: serve_smoke_test.py /path/to/wsrs-sim /path/to/check_stats_schema.py

Drives a real daemon process over its unix socket through the whole
client surface:

  1. --request round trip: a JSON sweep request comes back as a valid
     wsrs-sweep-report-v1 document on stdout;
  2. an invalid request (unknown benchmark) is reported to the client
     as a config error (exit 1) and does not kill the daemon;
  3. backpressure: with --queue-depth=0 every admission is refused, the
     client exits 75 (EX_TEMPFAIL) and stderr carries the retry hint;
  4. --status: a wsrs-svc-status-v1 document that passes the schema
     checker and records the admitted/rejected traffic;
  5. SIGTERM: the daemon drains, exits 0, and the streaming JSONL
     wsrs-svc-frames-v1 frame log passes the schema checker and holds
     the request/result/status traffic.

Exit status 0 on success. Used by the `svc` labelled ctest.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

TINY_REQUEST = {"benchmarks": ["gzip"], "machines": ["RR-256"],
                "uops": 2000, "warmup": 500}


def start_daemon(binary, endpoint, extra):
    proc = subprocess.Popen([binary, f"--serve={endpoint}", *extra],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, text=True)
    # The daemon announces readiness on stderr once the socket is bound.
    line = proc.stderr.readline()
    if "serving on" not in line:
        proc.kill()
        sys.exit(f"FAIL: daemon did not come up: {line!r}")
    return proc


def stop_daemon(proc):
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    if rc != 0:
        sys.exit(f"FAIL: daemon exited {rc} on SIGTERM")


def client(binary, endpoint, args, request=None):
    stdin = json.dumps(request) if request is not None else None
    return subprocess.run([binary, f"--connect={endpoint}", *args],
                          input=stdin, capture_output=True, text=True)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    binary, schema_checker = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory(prefix="wsrs_serve_") as tmp:
        endpoint = "unix:" + os.path.join(tmp, "daemon.sock")
        frame_log = os.path.join(tmp, "frames.jsonl")
        daemon = start_daemon(binary, endpoint,
                              ["--queue-depth=2",
                               f"--frame-log={frame_log}"])
        try:
            # 1: request -> report round trip.
            r = client(binary, endpoint, ["--request=-"], TINY_REQUEST)
            if r.returncode != 0:
                sys.exit(f"FAIL: request exited {r.returncode}: "
                         f"{r.stderr.strip()}")
            report = json.loads(r.stdout)
            if report.get("schema") != "wsrs-sweep-report-v1":
                sys.exit(f"FAIL: report schema {report.get('schema')!r}")
            if report["summary"]["total"] != 1 or not report["jobs"][0]["ok"]:
                sys.exit("FAIL: unexpected report contents")
            print("ok: request round trip returns a sweep report")

            # 2: a bad request is the client's problem, not the daemon's.
            r = client(binary, endpoint, ["--request=-"],
                       {"benchmarks": ["nonesuch"]})
            if r.returncode != 1 or "nonesuch" not in r.stderr:
                sys.exit(f"FAIL: bad request exited {r.returncode} "
                         f"(stderr: {r.stderr.strip()!r}), expected 1")
            print("ok: invalid benchmark reported as a config error")

            # 4: status document validates and shows the traffic.
            r = client(binary, endpoint, ["--status"])
            if r.returncode != 0:
                sys.exit(f"FAIL: status exited {r.returncode}")
            status_path = os.path.join(tmp, "status.json")
            with open(status_path, "w") as f:
                f.write(r.stdout)
            status = json.loads(r.stdout)
            if status["svc"]["requests_completed"] != 1:
                sys.exit("FAIL: status does not show the completed request")
            subprocess.run([sys.executable, schema_checker, status_path],
                           check=True, stdout=subprocess.DEVNULL)
            print("ok: status document passes the schema checker")
        finally:
            stop_daemon(daemon)

        if not os.path.exists(frame_log):
            sys.exit("FAIL: daemon wrote no frame log on SIGTERM")
        subprocess.run([sys.executable, schema_checker, frame_log],
                       check=True, stdout=subprocess.DEVNULL)
        types = set()
        with open(frame_log) as f:
            for line in f.read().splitlines()[1:]:  # skip the header
                rec = json.loads(line)
                if "type" in rec:
                    types.add(rec["type"])
        for expected in ("sweep_request", "sweep_result", "status_reply"):
            if expected not in types:
                sys.exit(f"FAIL: frame log lacks a {expected} frame "
                         f"(saw {sorted(types)})")
        print("ok: JSONL frame log streamed and passes the checker")

        # 3: a zero-depth queue refuses every admission with a hint.
        endpoint2 = "unix:" + os.path.join(tmp, "tiny.sock")
        daemon2 = start_daemon(binary, endpoint2, ["--queue-depth=0"])
        try:
            r = client(binary, endpoint2, ["--request=-"], TINY_REQUEST)
            if r.returncode != 75:
                sys.exit(f"FAIL: backpressure reject exited "
                         f"{r.returncode}, expected 75")
            if "retry after" not in r.stderr:
                sys.exit(f"FAIL: reject lacks retry hint: "
                         f"{r.stderr.strip()!r}")
            print("ok: admission overflow rejected with exit 75 and "
                  "a retry hint")
        finally:
            stop_daemon(daemon2)

    print("serve daemon smoke: all checks passed")


if __name__ == "__main__":
    main()
