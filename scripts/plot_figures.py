#!/usr/bin/env python3
"""Plot Figures 4 and 5 from the bench harness outputs.

Usage:
    ./build/bench/figure4_ipc          > fig4.txt
    ./build/bench/figure5_unbalancing  > fig5.txt
    python3 scripts/plot_figures.py fig4.txt fig5.txt

Also accepts a machine-readable sweep report (wsrs-sim --all
--stats-json=sweep.json): the IPC matrix is rebuilt from the
wsrs-sweep-report-v1 JSON instead of a printed table.

Produces grouped bar charts (matplotlib, if installed) mirroring the
paper's presentation: one panel for the integer benchmarks, one for the
floating-point benchmarks, one bar per machine configuration. Falls back
to an ASCII rendering when matplotlib is unavailable.
"""

import json
import re
import sys


def parse_sweep_report(path):
    """Build the same (machines, {bench: values}) groups from a
    wsrs-sweep-report-v1 JSON; returns None if the file is not one."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict) or \
            doc.get("schema") != "wsrs-sweep-report-v1":
        return None
    machines, rows = [], {}
    for job in doc["jobs"]:
        if not job["ok"]:
            continue
        if job["machine"] not in machines:
            machines.append(job["machine"])
        rows.setdefault(job["benchmark"], {})[job["machine"]] = \
            job["stats"]["metrics"]["ipc"]
    table = {bench: [by.get(m, 0.0) for m in machines]
             for bench, by in rows.items()}
    return [(machines, table)] if table else []


def parse_table(path):
    """Parse a bench table: header row of machine names, then rows of
    'bench  v1 v2 ...'. Returns (machines, {bench: [values]}) per group."""
    groups = []
    machines, rows = None, {}
    for line in open(path):
        line = line.rstrip()
        m = re.match(r"bench\s+(.*)", line)
        if m:
            if machines and rows:
                groups.append((machines, rows))
            machines = m.group(1).split()
            rows = {}
            continue
        if machines is None:
            continue
        parts = line.split()
        if len(parts) == len(machines) + 1:
            try:
                rows[parts[0]] = [float(x) for x in parts[1:]]
            except ValueError:
                pass
    if machines and rows:
        groups.append((machines, rows))
    return groups


def ascii_plot(machines, rows, title, scale):
    print(f"\n{title}")
    width = 46
    for bench, values in rows.items():
        print(f"  {bench}")
        for machine, v in zip(machines, values):
            bar = "#" * int(width * v / scale)
            print(f"    {machine:>12} {v:7.2f} |{bar}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    for path in sys.argv[1:]:
        groups = parse_sweep_report(path)
        if groups is None:
            groups = parse_table(path)
        if not groups:
            print(f"{path}: no tables found")
            continue
        try:
            import matplotlib

            matplotlib.use("Agg")
            import matplotlib.pyplot as plt

            fig, axes = plt.subplots(1, len(groups),
                                     figsize=(7 * len(groups), 4))
            if len(groups) == 1:
                axes = [axes]
            for ax, (machines, rows) in zip(axes, groups):
                benches = list(rows)
                n = len(machines)
                for i, machine in enumerate(machines):
                    xs = [j + i / (n + 1) for j in range(len(benches))]
                    ax.bar(xs, [rows[b][i] for b in benches],
                           width=1 / (n + 1), label=machine)
                ax.set_xticks([j + 0.5 - 1 / (n + 1) / 2
                               for j in range(len(benches))])
                ax.set_xticklabels(benches, rotation=45, ha="right")
                ax.legend(fontsize=7)
            out = path.rsplit(".", 1)[0] + ".png"
            fig.tight_layout()
            fig.savefig(out, dpi=150)
            print(f"wrote {out}")
        except ImportError:
            scale = max(max(v) for _, rows in groups
                        for v in rows.values()) or 1.0
            for i, (machines, rows) in enumerate(groups):
                ascii_plot(machines, rows, f"{path} group {i}", scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
