#!/usr/bin/env python3
"""Plot Figures 4 and 5 from the bench harness outputs.

Usage:
    ./build/bench/figure4_ipc          > fig4.txt
    ./build/bench/figure5_unbalancing  > fig5.txt
    python3 scripts/plot_figures.py fig4.txt fig5.txt

Also accepts a machine-readable sweep report (wsrs-sim --all
--stats-json=sweep.json): the IPC matrix is rebuilt from the
wsrs-sweep-report-v1 JSON instead of a printed table.

Produces grouped bar charts (matplotlib, if installed) mirroring the
paper's presentation: one panel for the integer benchmarks, one for the
floating-point benchmarks, one bar per machine configuration. Falls back
to an ASCII rendering when matplotlib is unavailable.

A wsrs-explore-v1 design-space report (wsrs-explore --out=report.json)
gets an IPC-vs-area Pareto scatter instead: the estimated frontier as a
connected staircase, confirmed points overlaid with their measured IPC.
"""

import json
import re
import sys


def parse_sweep_report(path):
    """Build the same (machines, {bench: values}) groups from a
    wsrs-sweep-report-v1 JSON; returns None if the file is not one."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict) or \
            doc.get("schema") != "wsrs-sweep-report-v1":
        return None
    machines, rows = [], {}
    for job in doc["jobs"]:
        if not job["ok"]:
            continue
        if job["machine"] not in machines:
            machines.append(job["machine"])
        rows.setdefault(job["benchmark"], {})[job["machine"]] = \
            job["stats"]["metrics"]["ipc"]
    table = {bench: [by.get(m, 0.0) for m in machines]
             for bench, by in rows.items()}
    return [(machines, table)] if table else []


def parse_explore_report(path):
    """Frontier points of a wsrs-explore-v1 report as
    (area_rel, est_ipc, name, measured_ipc | None) tuples; None if the
    file is not an explore report."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != "wsrs-explore-v1":
        return None
    pts = []
    for p in doc["frontier"]:
        m = p.get("measured")
        pts.append((p["est"]["area_rel"], p["est"]["ipc"], p["name"],
                    m["ipc"] if m else None))
    return pts


def pareto_scatter(path, pts):
    """Render the IPC-vs-area Pareto frontier of one explore report."""
    pts = sorted(pts)
    areas = [p[0] for p in pts]
    est = [p[1] for p in pts]
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        fig, ax = plt.subplots(figsize=(7, 4.5))
        ax.step(areas, est, where="post", color="tab:blue", alpha=0.5,
                zorder=1)
        ax.scatter(areas, est, s=18, color="tab:blue", zorder=2,
                   label="estimated frontier")
        confirmed = [(a, m, n) for a, _, n, m in pts if m is not None]
        if confirmed:
            ax.scatter([c[0] for c in confirmed],
                       [c[1] for c in confirmed], s=40, marker="x",
                       color="tab:red", zorder=3, label="measured IPC")
            for a, m, n in confirmed:
                ax.annotate(n, (a, m), fontsize=6,
                            textcoords="offset points", xytext=(3, 3))
        ax.set_xlabel("area (noWS-2 relative)")
        ax.set_ylabel("IPC")
        ax.set_title("design-space Pareto frontier")
        ax.legend(fontsize=8)
        out = path.rsplit(".", 1)[0] + "_pareto.png"
        fig.tight_layout()
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")
    except ImportError:
        print(f"\n{path}: Pareto frontier (IPC vs area)")
        top = max(est) or 1.0
        width = 46
        for a, e, name, m in pts:
            bar = "#" * int(width * e / top)
            meas = f"  measured {m:.3f}" if m is not None else ""
            print(f"  {name:>8} area {a:6.3f} ipc {e:6.3f} |{bar}{meas}")


def parse_table(path):
    """Parse a bench table: header row of machine names, then rows of
    'bench  v1 v2 ...'. Returns (machines, {bench: [values]}) per group."""
    groups = []
    machines, rows = None, {}
    for line in open(path):
        line = line.rstrip()
        m = re.match(r"bench\s+(.*)", line)
        if m:
            if machines and rows:
                groups.append((machines, rows))
            machines = m.group(1).split()
            rows = {}
            continue
        if machines is None:
            continue
        parts = line.split()
        if len(parts) == len(machines) + 1:
            try:
                rows[parts[0]] = [float(x) for x in parts[1:]]
            except ValueError:
                pass
    if machines and rows:
        groups.append((machines, rows))
    return groups


def ascii_plot(machines, rows, title, scale):
    print(f"\n{title}")
    width = 46
    for bench, values in rows.items():
        print(f"  {bench}")
        for machine, v in zip(machines, values):
            bar = "#" * int(width * v / scale)
            print(f"    {machine:>12} {v:7.2f} |{bar}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    for path in sys.argv[1:]:
        frontier = parse_explore_report(path)
        if frontier is not None:
            if frontier:
                pareto_scatter(path, frontier)
            else:
                print(f"{path}: empty frontier")
            continue
        groups = parse_sweep_report(path)
        if groups is None:
            groups = parse_table(path)
        if not groups:
            print(f"{path}: no tables found")
            continue
        try:
            import matplotlib

            matplotlib.use("Agg")
            import matplotlib.pyplot as plt

            fig, axes = plt.subplots(1, len(groups),
                                     figsize=(7 * len(groups), 4))
            if len(groups) == 1:
                axes = [axes]
            for ax, (machines, rows) in zip(axes, groups):
                benches = list(rows)
                n = len(machines)
                for i, machine in enumerate(machines):
                    xs = [j + i / (n + 1) for j in range(len(benches))]
                    ax.bar(xs, [rows[b][i] for b in benches],
                           width=1 / (n + 1), label=machine)
                ax.set_xticks([j + 0.5 - 1 / (n + 1) / 2
                               for j in range(len(benches))])
                ax.set_xticklabels(benches, rotation=45, ha="right")
                ax.legend(fontsize=7)
            out = path.rsplit(".", 1)[0] + ".png"
            fig.tight_layout()
            fig.savefig(out, dpi=150)
            print(f"wrote {out}")
        except ImportError:
            scale = max(max(v) for _, rows in groups
                        for v in rows.values()) or 1.0
            for i, (machines, rows) in enumerate(groups):
                ascii_plot(machines, rows, f"{path} group {i}", scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
