#!/usr/bin/env python3
"""Kill a journalled sweep mid-flight and prove --resume completes it.

Usage: kill_resume_test.py /path/to/wsrs-sim

Three sweeps over the same job matrix:

  1. clean:    no journal, the reference report;
  2. crashed:  journalled, SIGKILLed once the journal shows progress
               (so some jobs are committed and some are not);
  3. resumed:  same journal with --resume, runs the remainder.

The resumed report must carry resumed=true, and every per-job stats
document must equal the clean run's byte for byte — a crash plus resume
is indistinguishable from never crashing. The check tolerates the lucky
race where the sweep finishes before the kill lands (skipped_runs then
covers every job); what it never tolerates is a report mismatch.

Exit status 0 on success. Used by the `ckpt` labelled ctest.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

# Small slices: enough jobs (12 profiles x 6 machines) for a mid-sweep
# kill window, small enough to finish in seconds.
SWEEP_ARGS = ["--all", "--uops=20000", "--warmup=5000", "--jobs=2"]


def run_sweep(binary, out_json, extra):
    cmd = [binary, *SWEEP_ARGS, f"--stats-json={out_json}", *extra]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_json) as f:
        return json.load(f)


def crash_sweep(binary, out_json, journal):
    """Start a journalled sweep and SIGKILL it once records appear."""
    cmd = [binary, *SWEEP_ARGS, f"--stats-json={out_json}",
           f"--resume-journal={journal}"]
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    # Wait for the journal to grow past its 28-byte header (at least one
    # committed record) before pulling the trigger.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return proc.returncode  # finished before we could kill it
        try:
            if os.path.getsize(journal) > 28:
                break
        except OSError:
            pass
        time.sleep(0.005)
    proc.kill()
    proc.wait()
    return None


def job_stats(report):
    return [(j["benchmark"], j["machine"], j["ok"],
             json.dumps(j.get("stats"), sort_keys=True))
            for j in report["jobs"]]


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="wsrs_resume_") as tmp:
        clean_json = os.path.join(tmp, "clean.json")
        resumed_json = os.path.join(tmp, "resumed.json")
        journal = os.path.join(tmp, "sweep.journal")

        clean = run_sweep(binary, clean_json, [])

        rc = crash_sweep(binary, os.path.join(tmp, "crashed.json"), journal)
        if rc is not None:
            print(f"note: sweep finished (rc={rc}) before the kill; "
                  "resume will skip every job")

        resumed = run_sweep(binary, resumed_json,
                            [f"--resume-journal={journal}", "--resume"])

        if not resumed["resume"]["resumed"]:
            sys.exit("FAIL: resumed report lacks resumed=true")
        skipped = resumed["resume"]["skipped_runs"]
        total = resumed["summary"]["total"]
        if not 0 < skipped <= total:
            sys.exit(f"FAIL: implausible skipped_runs={skipped} "
                     f"(total={total})")
        if job_stats(resumed) != job_stats(clean):
            sys.exit("FAIL: resumed sweep report differs from the clean run")
        print(f"ok: resumed sweep skipped {skipped}/{total} journalled "
              "jobs and matches the clean report exactly")


if __name__ == "__main__":
    main()
