#!/usr/bin/env python3
"""Render a static HTML dashboard for a wsrs-sim --serve daemon.

Usage:
  svc_dashboard.py --connect unix:/path/daemon.sock --out dash.html
  svc_dashboard.py --status status.json --metrics metrics.json \\
                   --out dash.html

With --connect the script speaks the daemon's plain-HTTP mode over the
unix socket (GET /status, GET /metrics.json) and snapshots both; with
--status/--metrics it renders previously captured documents, so the
dashboard also works on artifacts collected from a dead daemon.

The output is one self-contained HTML file (inline CSS + SVG, no
scripts, no external assets): daemon identity and queue occupancy,
admission counters, per-request progress, worker liveness when the
status reply carries any, and an SVG bar chart per latency histogram in
the metrics snapshot (request, job, warm-up and simulate stage
latencies). Re-run it to refresh; cron + a file URL is a dashboard.
"""

import argparse
import html
import json
import socket
import sys


def http_get(endpoint, path):
    """One-shot GET over the daemon's unix socket; returns the body."""
    sockpath = endpoint[len("unix:"):] if endpoint.startswith("unix:") \
        else endpoint
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(10.0)
        s.connect(sockpath)
        s.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        raw = b""
        while chunk := s.recv(65536):
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    if " 200 " not in status_line + " ":
        sys.exit(f"FAIL: GET {path} -> {status_line!r}")
    return body.decode()


def esc(v):
    return html.escape(str(v))


def counter_rows(svc):
    names = [
        ("requests admitted", "requests_admitted"),
        ("requests completed", "requests_completed"),
        ("requests failed", "requests_failed"),
        ("backpressure rejects", "backpressure_rejects"),
        ("leases granted", "leases_granted"),
        ("lease retries", "lease_retries"),
        ("lease timeouts", "lease_timeouts"),
        ("shards failed", "shards_failed"),
        ("duplicate results", "duplicate_results"),
        ("workers seen", "workers_seen"),
        ("workers lost", "workers_lost"),
    ]
    out = []
    for label, key in names:
        val = svc.get(key, 0)
        hot = key in ("requests_failed", "backpressure_rejects",
                      "lease_timeouts", "shards_failed",
                      "workers_lost") and val > 0
        cls = ' class="hot"' if hot else ""
        out.append(f"<tr><td>{esc(label)}</td>"
                   f"<td{cls}>{esc(val)}</td></tr>")
    return "\n".join(out)


def hist_svg(m, width=460, height=120):
    """Inline SVG bar chart of one wsrs-metrics-v1 histogram."""
    buckets = m["buckets"] + [{"le": None, "count": m["overflow"]}]
    peak = max((b["count"] for b in buckets), default=0) or 1
    n = len(buckets)
    bw = width / n
    bars = []
    for i, b in enumerate(buckets):
        h = round((height - 18) * b["count"] / peak, 1)
        x = round(i * bw + 1, 1)
        label = "inf" if b["le"] is None else str(b["le"])
        bars.append(
            f'<rect x="{x}" y="{height - 14 - h}" '
            f'width="{round(bw - 2, 1)}" height="{h}" class="bar">'
            f"<title>le {label} ms: {b['count']}</title></rect>")
        if n <= 16 or i % 2 == 0:
            bars.append(
                f'<text x="{round(x + bw / 2, 1)}" y="{height - 2}" '
                f'class="tick">{label}</text>')
    mean = m["sum"] / m["count"] if m["count"] else 0
    return (
        f'<figure><figcaption>{esc(m["name"])} &mdash; '
        f'{m["count"]} samples, mean {mean:.1f} ms</figcaption>'
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">{"".join(bars)}</svg></figure>')


def gauge_bar(used, limit, width=220):
    limit = max(limit, 1)
    frac = min(used / limit, 1.0)
    fill = round(width * frac)
    cls = "warn" if frac >= 1.0 else "ok"
    return (f'<svg viewBox="0 0 {width} 16" width="{width}" height="16">'
            f'<rect x="0" y="2" width="{width}" height="12" '
            f'class="track"/>'
            f'<rect x="0" y="2" width="{fill}" height="12" '
            f'class="{cls}"/></svg> {used}/{limit}')


CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 62em; color: #1c2733; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; }
td, th { padding: .2em .8em .2em 0; text-align: left; }
td + td, th + th { text-align: right; }
td.hot { color: #b3261e; font-weight: 600; }
.state-done { color: #1b6e3a; } .state-failed { color: #b3261e; }
.state-running { color: #8a5800; }
.dead { color: #b3261e; } .alive { color: #1b6e3a; }
figure { margin: 1em 0; } figcaption { font-size: .85em; color: #555; }
svg .bar { fill: #4472a8; } svg .tick { font-size: 8px; fill: #777;
           text-anchor: middle; }
svg .track { fill: #e3e7ec; } svg .ok { fill: #4472a8; }
svg .warn { fill: #b3261e; }
footer { margin-top: 2.5em; font-size: .8em; color: #777; }
"""


def render(status, metrics):
    svc = status.get("svc", {})
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>wsrs sweep service</title>",
        f"<style>{CSS}</style></head><body>",
        f"<h1>wsrs sweep service &mdash; "
        f"{esc(status.get('endpoint', '?'))}</h1>",
        f"<p>executors: {esc(status.get('executors', '?'))} &middot; "
        f"running: {esc(status.get('running', 0))} &middot; "
        f"admission queue: "
        f"{gauge_bar(status.get('queued', 0), status.get('queue_depth', 1))}"
        "</p>",
        "<h2>Admission and lease counters</h2>",
        f"<table>{counter_rows(svc)}</table>",
    ]

    requests = status.get("requests", [])
    if requests:
        parts.append("<h2>Requests</h2><table><tr><th>id</th>"
                     "<th>state</th><th>jobs</th></tr>")
        for r in requests:
            parts.append(
                f"<tr><td>{esc(r['id'])}</td>"
                f"<td class='state-{esc(r['state'])}'>"
                f"{esc(r['state'])}</td>"
                f"<td>{esc(r['jobs_done'])}/{esc(r['jobs_total'])}"
                "</td></tr>")
        parts.append("</table>")

    workers = svc.get("workers", [])
    if workers:
        parts.append("<h2>Workers</h2><table><tr><th>id</th><th>pid</th>"
                     "<th>jobs done</th><th>liveness</th></tr>")
        for w in workers:
            cls = "alive" if w.get("alive") else "dead"
            parts.append(
                f"<tr><td>{esc(w['id'])}</td><td>{esc(w['pid'])}</td>"
                f"<td>{esc(w['jobs_done'])}</td>"
                f"<td class='{cls}'>{cls}</td></tr>")
        parts.append("</table>")

    hists = [m for m in metrics.get("metrics", [])
             if m.get("type") == "histogram"]
    if hists:
        parts.append("<h2>Latency histograms (ms)</h2>")
        parts.extend(hist_svg(m) for m in hists)

    parts.append("<footer>generated by scripts/svc_dashboard.py &mdash; "
                 "re-run to refresh</footer></body></html>")
    return "\n".join(parts)


def main():
    ap = argparse.ArgumentParser(
        description="Render the sweep-service dashboard.")
    ap.add_argument("--connect", help="daemon endpoint (unix:/path.sock)")
    ap.add_argument("--status", help="captured wsrs-svc-status-v1 file")
    ap.add_argument("--metrics", help="captured wsrs-metrics-v1 file")
    ap.add_argument("--out", required=True, help="output HTML path")
    args = ap.parse_args()

    if args.connect:
        status = json.loads(http_get(args.connect, "/status"))
        metrics = json.loads(http_get(args.connect, "/metrics.json"))
    elif args.status:
        with open(args.status) as f:
            status = json.load(f)
        metrics = {"metrics": []}
        if args.metrics:
            with open(args.metrics) as f:
                metrics = json.load(f)
    else:
        ap.error("need --connect or --status/--metrics")

    if status.get("schema") != "wsrs-svc-status-v1":
        sys.exit(f"FAIL: not a status document: {status.get('schema')!r}")
    with open(args.out, "w") as f:
        f.write(render(status, metrics))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
