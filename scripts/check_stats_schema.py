#!/usr/bin/env python3
"""Validate wsrs machine-readable stats documents.

Accepts any number of files, each either a single-run wsrs-stats-v1
document (wsrs-sim --stats-json) or a wsrs-sweep-report-v1 aggregate
(wsrs-sim --all --stats-json). Every file is parsed with Python's strict
JSON parser — so unescaped names or nan/inf leak out as hard failures —
and then structurally checked:

  - required keys and schema tags are present;
  - stall-cause attribution is complete: for every cluster,
    sum(issue_stall buckets) + overflow == cycles, and likewise for the
    rename and commit stall histograms (exactly one cause per stage per
    cycle);
  - stall-cause legends match the histogram bucket counts;
  - histogram sample counts equal their bucket sums;
  - interval samples are monotone in cycle and respect the period;
  - sweep reports carry well-formed resume metadata (resumed flag,
    skipped_runs bounded by the job count) and warm-up checkpoint cache
    counters (wsrs-ckpt warm-up reuse);
  - sweep reports merged by a coordinator carry a complete `svc` object
    (sharding/lease/worker counters plus the worker liveness array);
  - wsrs-svc-status-v1 daemon status replies and wsrs-svc-frames-v1
    frame logs (wsrs-sim --serve) are structurally sound; JSONL frame
    logs tolerate a torn final line (the daemon flushes on queue drain,
    so a SIGKILL can cut the last record mid-write);
  - wsrs-metrics-v1 registry snapshots (wsrs-sim --metrics-out, the
    daemon's /metrics.json) follow the metric naming scheme and their
    histogram bucket counts fold up to the sample count;
  - wsrs-spans-v1 span timelines (wsrs-sim --spans-out) are valid Chrome
    trace-event JSON with exactly one "job" root span per job, no
    negative durations, and every child event nested inside its parent
    window (attempts inside the job, stage spans inside their attempt);
  - wsrs-explore-v1 design-space reports (wsrs-explore) have exact axis
    coverage (enumerated == the product of the axis sizes, feasible +
    infeasible == enumerated), a genuinely non-dominated frontier in the
    documented sort order, and — when a confirmation sweep ran — an
    analytic estimate paired with a measured IPC (and consistent ranks)
    on every confirmed point.

Exit status is non-zero on the first file that fails; used by the `obs`
and `svc` labelled ctests.
"""

import json
import re
import sys


class Fail(Exception):
    pass


def expect(cond, msg):
    if not cond:
        raise Fail(msg)


def check_hist(h, where, expected_buckets=None):
    expect(isinstance(h, dict), f"{where}: histogram must be an object")
    for key in ("buckets", "overflow", "samples", "mean"):
        expect(key in h, f"{where}: missing '{key}'")
    buckets = h["buckets"]
    expect(isinstance(buckets, list), f"{where}: buckets must be a list")
    if expected_buckets is not None:
        expect(len(buckets) == expected_buckets,
               f"{where}: {len(buckets)} buckets, "
               f"expected {expected_buckets}")
    total = sum(buckets) + h["overflow"]
    expect(total == h["samples"],
           f"{where}: buckets+overflow = {total} != samples "
           f"{h['samples']}")
    return total


MEM_STALL_KEYS = ("queue-full", "bank-busy", "bank-prep", "data-burst",
                  "idle")


def check_memory_obj(mem, where, core_cycles):
    """Validate the `memory` object of a stats document.

    Two shapes exist: the constant model emits the flat hierarchy counter
    map, the dram model a structured object whose stall attribution must
    cover the measured window exactly (sum(causes) == stall.cycles ==
    core cycles — the memory-side analogue of the pipeline invariant).
    """
    expect(isinstance(mem, dict), f"{where}: must be an object")
    if mem.get("model") != "dram":
        for key, v in mem.items():
            expect(isinstance(v, int) and v >= 0,
                   f"{where}: counter '{key}' must be a non-negative int")
        return
    for key in ("banks", "row_bytes", "window_depth"):
        expect(isinstance(mem.get(key), int) and mem[key] > 0,
               f"{where}: '{key}' must be a positive int")
    expect(mem.get("page_policy") in ("open", "closed"),
           f"{where}: page_policy {mem.get('page_policy')!r}")
    timing = mem["timing"]
    for key in ("t_rp", "t_rcd", "t_cas", "burst_cycles"):
        expect(isinstance(timing.get(key), int) and timing[key] >= 0,
               f"{where}.timing: '{key}' must be a non-negative int")
    for key, v in mem["counters"].items():
        expect(isinstance(v, int) and v >= 0,
               f"{where}.counters: '{key}' must be a non-negative int")
    stall = mem["stall"]
    causes = stall["causes"]
    expect(tuple(causes.keys()) == MEM_STALL_KEYS,
           f"{where}.stall: causes {tuple(causes.keys())} != "
           f"{MEM_STALL_KEYS}")
    total = sum(causes.values())
    expect(total == stall["cycles"],
           f"{where}.stall: causes sum {total} != cycles "
           f"{stall['cycles']}")
    expect(stall["cycles"] == core_cycles,
           f"{where}.stall: attribution covers {stall['cycles']} cycles, "
           f"core measured {core_cycles}")


def check_stats_doc(doc, where):
    expect(doc.get("schema") == "wsrs-stats-v1",
           f"{where}: schema is {doc.get('schema')!r}, "
           "expected 'wsrs-stats-v1'")
    for key in ("benchmark", "machine", "metrics", "core", "memory"):
        expect(key in doc, f"{where}: missing '{key}'")
    core = doc["core"]
    for key in ("num_clusters", "cycles", "committed", "counters",
                "pipeline"):
        expect(key in core, f"{where}.core: missing '{key}'")
    cycles = core["cycles"]
    check_memory_obj(doc["memory"], f"{where}.memory", cycles)
    clusters = core["num_clusters"]
    pipe = core["pipeline"]
    legends = pipe["stall_causes"]

    issue = pipe["issue_stall"]
    expect(len(issue) == clusters,
           f"{where}: {len(issue)} issue_stall histograms for "
           f"{clusters} clusters")
    for c, h in enumerate(issue):
        total = check_hist(h, f"{where}.issue_stall[{c}]",
                           len(legends["issue"]))
        expect(total == cycles,
               f"{where}.issue_stall[{c}]: stall-cause cycles {total} != "
               f"core cycles {cycles}")
    for stage in ("rename", "commit"):
        h = pipe[f"{stage}_stall"]
        total = check_hist(h, f"{where}.{stage}_stall",
                           len(legends[stage]))
        expect(total == cycles,
               f"{where}.{stage}_stall: stall-cause cycles {total} != "
               f"core cycles {cycles}")
    check_hist(pipe["wakeup_latency"], f"{where}.wakeup_latency")

    intervals = pipe["intervals"]
    period = intervals["period"]
    prev = None
    for i, s in enumerate(intervals["samples"]):
        cyc = s[0]
        if prev is not None:
            expect(cyc - prev == period,
                   f"{where}.intervals[{i}]: cycle step {cyc - prev} != "
                   f"period {period}")
        expect(len(s[2]) == clusters,
               f"{where}.intervals[{i}]: occupancy arity {len(s[2])}")
        prev = cyc


def check_resume_metadata(doc, where):
    """Validate the resume/ckpt objects a sweep report always carries."""
    resume = doc["resume"]
    expect(isinstance(resume.get("resumed"), bool),
           f"{where}.resume: 'resumed' must be a bool")
    skipped = resume.get("skipped_runs")
    expect(isinstance(skipped, int) and skipped >= 0,
           f"{where}.resume: 'skipped_runs' must be a non-negative int")
    expect(skipped <= doc["summary"]["total"],
           f"{where}.resume: skipped_runs {skipped} exceeds "
           f"summary.total {doc['summary']['total']}")
    expect(resume["resumed"] or skipped == 0,
           f"{where}.resume: {skipped} skipped runs without resumed=true")

    ckpt = doc["ckpt"]
    expect(isinstance(ckpt.get("warmup_reuse"), bool),
           f"{where}.ckpt: 'warmup_reuse' must be a bool")
    cache = ckpt["warmup_cache"]
    for key in ("hits", "misses"):
        expect(isinstance(cache.get(key), int) and cache[key] >= 0,
               f"{where}.ckpt.warmup_cache: '{key}' must be a "
               "non-negative int")
    if not ckpt["warmup_reuse"]:
        expect(cache["hits"] == 0 and cache["misses"] == 0,
               f"{where}.ckpt: warmup cache traffic without warmup_reuse")


SVC_COUNTER_KEYS = (
    "shards", "shard_size", "leases_granted", "lease_retries",
    "lease_timeouts", "shards_failed", "duplicate_results",
    "workers_seen", "workers_lost", "requests_admitted",
    "requests_completed", "requests_failed", "backpressure_rejects")


def check_svc_object(svc, where, total_jobs=None):
    """Validate the sweep-service counter object (report or status)."""
    expect(isinstance(svc, dict), f"{where}: must be an object")
    for key in SVC_COUNTER_KEYS:
        expect(isinstance(svc.get(key), int) and svc[key] >= 0,
               f"{where}: '{key}' must be a non-negative int")
    expect(svc["shards_failed"] <= svc["shards"],
           f"{where}: shards_failed {svc['shards_failed']} exceeds "
           f"shards {svc['shards']}")
    expect(svc["workers_lost"] <= svc["workers_seen"],
           f"{where}: workers_lost {svc['workers_lost']} exceeds "
           f"workers_seen {svc['workers_seen']}")
    expect(svc["requests_completed"] <= svc["requests_admitted"],
           f"{where}: requests_completed exceeds requests_admitted")
    workers = svc["workers"]
    expect(isinstance(workers, list), f"{where}: 'workers' must be a list")
    done = 0
    for i, w in enumerate(workers):
        for key in ("id", "pid", "jobs_done"):
            expect(isinstance(w.get(key), int),
                   f"{where}.workers[{i}]: '{key}' must be an int")
        expect(isinstance(w.get("alive"), bool),
               f"{where}.workers[{i}]: 'alive' must be a bool")
        done += w["jobs_done"]
    if total_jobs is not None and workers:
        expect(done <= total_jobs,
               f"{where}: workers report {done} jobs done for a "
               f"{total_jobs}-job sweep")


def check_status_doc(doc, where):
    """Validate a wsrs-svc-status-v1 daemon status reply."""
    for key in ("endpoint", "queue_depth", "executors", "queued",
                "running", "svc", "requests"):
        expect(key in doc, f"{where}: missing '{key}'")
    expect(isinstance(doc["endpoint"], str) and doc["endpoint"],
           f"{where}: 'endpoint' must be a non-empty string")
    for key in ("queue_depth", "executors", "queued", "running"):
        expect(isinstance(doc[key], int) and doc[key] >= 0,
               f"{where}: '{key}' must be a non-negative int")
    expect(doc["queued"] <= doc["queue_depth"],
           f"{where}: queued {doc['queued']} exceeds queue_depth "
           f"{doc['queue_depth']}")
    check_svc_object(doc["svc"], f"{where}.svc")
    states = {"queued", "running", "done", "failed"}
    for i, r in enumerate(doc["requests"]):
        rwhere = f"{where}.requests[{i}]"
        for key in ("id", "jobs_total", "jobs_done"):
            expect(isinstance(r.get(key), int) and r[key] >= 0,
                   f"{rwhere}: '{key}' must be a non-negative int")
        expect(r.get("state") in states,
               f"{rwhere}: state {r.get('state')!r} not in {states}")
        expect(r["jobs_done"] <= r["jobs_total"],
               f"{rwhere}: jobs_done {r['jobs_done']} exceeds "
               f"jobs_total {r['jobs_total']}")
        if r["state"] == "done":
            expect(r["jobs_done"] == r["jobs_total"],
                   f"{rwhere}: done with {r['jobs_done']}/"
                   f"{r['jobs_total']} jobs")
    return len(doc["requests"])


def check_frames_doc(doc, where):
    """Validate a wsrs-svc-frames-v1 serve-protocol frame log."""
    dropped = doc.get("dropped_frames")
    expect(isinstance(dropped, int) and dropped >= 0,
           f"{where}: 'dropped_frames' must be a non-negative int")
    frames = doc["frames"]
    expect(isinstance(frames, list), f"{where}: 'frames' must be a list")
    for i, f in enumerate(frames):
        fwhere = f"{where}.frames[{i}]"
        expect(f.get("dir") in ("rx", "tx"),
               f"{fwhere}: dir {f.get('dir')!r} must be 'rx' or 'tx'")
        expect(isinstance(f.get("type"), str) and f["type"],
               f"{fwhere}: 'type' must be a non-empty string")
        expect(isinstance(f.get("payload_bytes"), int)
               and f["payload_bytes"] >= 0,
               f"{fwhere}: 'payload_bytes' must be a non-negative int")
        expect("body" in f, f"{fwhere}: missing 'body'")
        expect(f["body"] is None or isinstance(f["body"], (dict, list)),
               f"{fwhere}: 'body' must be embedded JSON or null")
    return len(frames)


def check_frames_jsonl(lines, where):
    """Validate a JSONL wsrs-svc-frames-v1 log (streaming daemon log).

    The final line may be torn (daemon killed between flushes): a parse
    failure there is tolerated, anywhere else it is a hard failure. The
    trailer line ({"frames": N, ...}) is likewise optional.
    """
    frames = 0
    trailer = None
    last_t = 0
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            expect(i == len(lines) - 1,
                   f"{where}:{i + 2}: unparseable line before the tail")
            break
        if "dir" not in rec:
            expect(trailer is None,
                   f"{where}:{i + 2}: more than one trailer line")
            trailer = (i, rec)
            continue
        expect(trailer is None,
               f"{where}:{i + 2}: frame record after the trailer")
        fwhere = f"{where}:{i + 2}"
        expect(rec.get("dir") in ("rx", "tx"),
               f"{fwhere}: dir {rec.get('dir')!r} must be 'rx' or 'tx'")
        expect(isinstance(rec.get("type"), str) and rec["type"],
               f"{fwhere}: 'type' must be a non-empty string")
        for key in ("t_ms", "conn", "payload_bytes"):
            expect(isinstance(rec.get(key), int) and rec[key] >= 0,
                   f"{fwhere}: '{key}' must be a non-negative int")
        expect(rec["t_ms"] >= last_t,
               f"{fwhere}: t_ms went backwards ({rec['t_ms']} after "
               f"{last_t})")
        last_t = rec["t_ms"]
        expect("body" in rec, f"{fwhere}: missing 'body'")
        expect(rec["body"] is None
               or isinstance(rec["body"], (dict, list)),
               f"{fwhere}: 'body' must be embedded JSON or null")
        frames += 1
    if trailer is not None:
        i, rec = trailer
        expect(rec.get("frames") == frames,
               f"{where}:{i + 2}: trailer counts {rec.get('frames')} "
               f"frames, log holds {frames}")
        expect(isinstance(rec.get("dropped_frames"), int)
               and rec["dropped_frames"] >= 0,
               f"{where}:{i + 2}: 'dropped_frames' must be a "
               "non-negative int")
    return frames


METRIC_NAME_RE = re.compile(r"^wsrs_[a-z0-9_]+$")


def check_metrics_doc(doc, where):
    """Validate a wsrs-metrics-v1 registry snapshot."""
    metrics = doc["metrics"]
    expect(isinstance(metrics, list), f"{where}: 'metrics' must be a list")
    seen = set()
    for i, m in enumerate(metrics):
        mwhere = f"{where}.metrics[{i}]"
        name = m.get("name")
        expect(isinstance(name, str) and METRIC_NAME_RE.match(name),
               f"{mwhere}: name {name!r} breaks the wsrs_* scheme")
        expect(name not in seen, f"{mwhere}: duplicate metric {name!r}")
        seen.add(name)
        expect(isinstance(m.get("help"), str) and m["help"],
               f"{mwhere}: 'help' must be a non-empty string")
        kind = m.get("type")
        if kind == "counter":
            expect(name.endswith("_total"),
                   f"{mwhere}: counter {name!r} must end in '_total'")
            expect(isinstance(m.get("value"), int) and m["value"] >= 0,
                   f"{mwhere}: counter value must be a non-negative int")
        elif kind == "gauge":
            expect(isinstance(m.get("value"), int),
                   f"{mwhere}: gauge value must be an int")
        elif kind == "histogram":
            for key in ("count", "sum", "overflow"):
                expect(isinstance(m.get(key), int) and m[key] >= 0,
                       f"{mwhere}: '{key}' must be a non-negative int")
            buckets = m.get("buckets")
            expect(isinstance(buckets, list) and buckets,
                   f"{mwhere}: 'buckets' must be a non-empty list")
            prev_le = None
            in_buckets = 0
            for j, b in enumerate(buckets):
                le = b.get("le")
                expect(isinstance(le, int),
                       f"{mwhere}.buckets[{j}]: 'le' must be an int")
                expect(prev_le is None or le > prev_le,
                       f"{mwhere}.buckets[{j}]: bounds not increasing")
                prev_le = le
                expect(isinstance(b.get("count"), int)
                       and b["count"] >= 0,
                       f"{mwhere}.buckets[{j}]: bad count")
                in_buckets += b["count"]
            expect(in_buckets + m["overflow"] == m["count"],
                   f"{mwhere}: buckets+overflow = "
                   f"{in_buckets + m['overflow']} != count {m['count']}")
        else:
            raise Fail(f"{mwhere}: unknown type {kind!r}")
    return len(metrics)


def check_spans_doc(doc, where):
    """Validate a wsrs-spans-v1 Chrome trace-event timeline."""
    events = doc["traceEvents"]
    expect(isinstance(events, list), f"{where}: 'traceEvents' must be "
                                     "a list")
    roots = {}     # tid -> (ts, ts+dur) of its "job" root span.
    attempts = {}  # (tid, attempt) -> window of the "attempt" span.
    children = []
    for i, e in enumerate(events):
        ewhere = f"{where}.traceEvents[{i}]"
        ph = e.get("ph")
        expect(ph in ("X", "i", "M"),
               f"{ewhere}: unknown phase {ph!r}")
        if ph == "M":
            expect(e.get("name") in ("process_name", "thread_name"),
                   f"{ewhere}: unknown metadata {e.get('name')!r}")
            continue
        for key in ("ts", "pid", "tid"):
            expect(isinstance(e.get(key), int),
                   f"{ewhere}: '{key}' must be an int")
        expect(e["ts"] >= 0, f"{ewhere}: negative timestamp {e['ts']}")
        if ph == "X":
            expect(isinstance(e.get("dur"), int) and e["dur"] >= 0,
                   f"{ewhere}: negative/missing duration")
            if e["name"] == "job":
                expect(e["tid"] not in roots,
                       f"{ewhere}: second 'job' root for job {e['tid']}")
                roots[e["tid"]] = (e["ts"], e["ts"] + e["dur"])
                continue
            if e["name"] == "attempt":
                att = e.get("args", {}).get("attempt")
                expect(isinstance(att, int) and att >= 1,
                       f"{ewhere}: attempt span without an attempt arg")
                attempts[(e["tid"], att)] = (e["ts"], e["ts"] + e["dur"])
        else:
            expect(e.get("s") == "t",
                   f"{ewhere}: instants must be thread-scoped")
        children.append((i, e))
    for i, e in children:
        ewhere = f"{where}.traceEvents[{i}]"
        start, end = e["ts"], e["ts"] + e.get("dur", 0)
        root = roots.get(e["tid"])
        expect(root is not None,
               f"{ewhere}: event for job {e['tid']} without a 'job' root")
        parent = root
        att = e.get("args", {}).get("attempt")
        if e["name"] != "attempt" and (e["tid"], att) in attempts:
            parent = attempts[(e["tid"], att)]
        expect(parent[0] <= start and end <= parent[1],
               f"{ewhere}: '{e['name']}' [{start}, {end}] escapes its "
               f"parent window [{parent[0]}, {parent[1]}]")
    expect(roots, f"{where}: no 'job' root spans at all")
    return len(roots)


def check_sweep_report(doc, where):
    expect(doc.get("schema") == "wsrs-sweep-report-v1",
           f"{where}: schema is {doc.get('schema')!r}")
    jobs = doc["jobs"]
    summary = doc["summary"]
    check_resume_metadata(doc, where)
    expect(summary["total"] == len(jobs),
           f"{where}: summary.total {summary['total']} != "
           f"{len(jobs)} jobs")
    failed = 0
    for i, job in enumerate(jobs):
        if job["ok"]:
            check_stats_doc(job["stats"], f"{where}.jobs[{i}]")
        else:
            expect(job.get("stats") is None,
                   f"{where}.jobs[{i}]: failed job carries stats")
            expect("error" in job, f"{where}.jobs[{i}]: missing error")
            failed += 1
    expect(summary["failed"] == failed,
           f"{where}: summary.failed {summary['failed']} != {failed}")
    if "svc" in doc:
        check_svc_object(doc["svc"], f"{where}.svc", len(jobs))
    return len(jobs)


def check_rf_doc(doc, where):
    """Validate a wsrs-rf-v1 organization table (wsrs-rf --json)."""
    orgs = doc["organizations"]
    expect(isinstance(orgs, list) and orgs,
           f"{where}: 'organizations' must be a non-empty list")
    seen = set()
    for i, org in enumerate(orgs):
        owhere = f"{where}.organizations[{i}]"
        name = org.get("name")
        expect(isinstance(name, str) and name,
               f"{owhere}: 'name' must be a non-empty string")
        expect(name not in seen, f"{owhere}: duplicate organization "
                                 f"{name!r}")
        seen.add(name)
        for key in ("total_regs", "copies_per_reg", "read_ports",
                    "write_ports", "subfiles", "entries_per_subfile"):
            expect(isinstance(org.get(key), int) and org[key] >= 1,
                   f"{owhere}: '{key}' must be a positive int")
        expect(org["subfiles"] * org["entries_per_subfile"]
               >= org["total_regs"],
               f"{owhere}: subfile geometry can't back "
               f"{org['total_regs']} registers")
        for key in ("total_area_rel", "access_time_ns",
                    "energy_nj_per_cycle"):
            v = org.get(key)
            expect(isinstance(v, (int, float)) and v > 0,
                   f"{owhere}: '{key}' must be a positive number")
    return len(orgs)


def _explore_dominates(a, b):
    """a, b are (ipc, area, energy): maximize ipc, minimize the rest."""
    no_worse = a[0] >= b[0] and a[1] <= b[1] and a[2] <= b[2]
    better = a[0] > b[0] or a[1] < b[1] or a[2] < b[2]
    return no_worse and better


def check_explore_report(doc, where):
    """Validate a wsrs-explore-v1 design-space report (wsrs-explore)."""
    space = doc["space"]
    axes = space["axes"]
    expect(isinstance(axes, list) and axes,
           f"{where}: 'space.axes' must be a non-empty list")
    total = 1
    for i, ax in enumerate(axes):
        awhere = f"{where}.space.axes[{i}]"
        values = ax.get("values")
        expect(isinstance(values, list) and values,
               f"{awhere}: 'values' must be a non-empty list")
        expect(ax.get("size") == len(values),
               f"{awhere}: size {ax.get('size')} != "
               f"{len(values)} values")
        total *= len(values)
    expect(space["total_configs"] == total,
           f"{where}: total_configs {space['total_configs']} != "
           f"axis product {total}")
    expect(space["enumerated"] == total,
           f"{where}: enumerated {space['enumerated']} != "
           f"total_configs {total} — axis coverage is not exact")
    expect(space["feasible"] + space["infeasible"] == space["enumerated"],
           f"{where}: feasible {space['feasible']} + infeasible "
           f"{space['infeasible']} != enumerated {space['enumerated']}")
    workloads = space["workloads"]
    expect(isinstance(workloads, list) and workloads,
           f"{where}: 'space.workloads' must be a non-empty list")
    expect(doc["objectives"] == ["est_ipc", "area_rel",
                                 "energy_nj_per_cycle"],
           f"{where}: unexpected objectives {doc['objectives']!r}")

    frontier = doc["frontier"]
    expect(isinstance(frontier, list),
           f"{where}: 'frontier' must be a list")
    expect(doc["frontier_size"] == len(frontier),
           f"{where}: frontier_size {doc['frontier_size']} != "
           f"{len(frontier)} points")
    expect(len(frontier) <= space["feasible"],
           f"{where}: frontier larger than the feasible space")
    axis_params = [ax["param"] for ax in axes]
    objs = []
    measured = {}  # rank -> measured object
    seen_idx = set()
    for k, p in enumerate(frontier):
        pwhere = f"{where}.frontier[{k}]"
        expect(p["rank"] == k, f"{pwhere}: rank {p['rank']} != slot {k}")
        idx = p["index"]
        expect(isinstance(idx, int) and 0 <= idx < total,
               f"{pwhere}: index {idx!r} outside the space")
        expect(idx not in seen_idx, f"{pwhere}: duplicate index {idx}")
        seen_idx.add(idx)
        expect(p["name"] == f"x{idx}",
               f"{pwhere}: name {p['name']!r} != 'x{idx}'")
        config = p["config"]
        expect(isinstance(config, dict)
               and sorted(config) == sorted(axis_params),
               f"{pwhere}: config keys don't match the space axes")
        est = p["est"]
        for key in ("ipc", "area_rel", "energy_nj_per_cycle"):
            v = est.get(key)
            expect(isinstance(v, (int, float)) and v > 0,
                   f"{pwhere}: est.{key} must be a positive number")
        expect(isinstance(p.get("rf"), dict) and "total_area_rel"
               in p["rf"],
               f"{pwhere}: missing register-file breakdown")
        objs.append((est["ipc"], est["area_rel"],
                     est["energy_nj_per_cycle"]))
        m = p.get("measured")
        if m is not None:
            mwhere = f"{pwhere}.measured"
            expect(isinstance(m["ipc"], (int, float)) and m["ipc"] > 0,
                   f"{mwhere}: 'ipc' must be a positive number")
            per = m["per_workload"]
            expect(sorted(per) == sorted(workloads),
                   f"{mwhere}: per_workload keys don't match the "
                   f"space workloads")
            for w, v in per.items():
                expect(isinstance(v, (int, float)) and v > 0,
                       f"{mwhere}.per_workload[{w}]: bad IPC {v!r}")
            expect(m["rank_inversion"]
                   == (m["est_rank"] != m["measured_rank"]),
                   f"{mwhere}: rank_inversion flag inconsistent with "
                   f"est_rank/measured_rank")
            measured[k] = m

    # The frontier must be genuinely non-dominated and in report order.
    for a in range(len(objs)):
        for b in range(len(objs)):
            if a != b and _explore_dominates(objs[a], objs[b]):
                raise Fail(f"{where}: frontier[{a}] dominates "
                           f"frontier[{b}] — not a Pareto set")
    for k in range(1, len(objs)):
        expect(objs[k - 1][0] >= objs[k][0],
               f"{where}: frontier not sorted by est.ipc at rank {k}")

    confirm = doc["confirm"]
    if confirm is None:
        expect(not measured,
               f"{where}: measured points without a confirm block")
        return len(frontier)
    expect(confirm["confirmed"] <= confirm["requested"],
           f"{where}: confirmed {confirm['confirmed']} > requested "
           f"{confirm['requested']}")
    expect(confirm["confirmed"] <= len(frontier),
           f"{where}: confirmed more points than the frontier holds")
    expect(confirm["jobs"]
           == confirm["confirmed"] * len(workloads),
           f"{where}: confirm.jobs {confirm['jobs']} != confirmed "
           f"{confirm['confirmed']} x {len(workloads)} workloads")
    errors = confirm["errors"]
    expect(isinstance(errors, list),
           f"{where}: 'confirm.errors' must be a list")
    expect((confirm["failures"] == 0) == (len(errors) == 0),
           f"{where}: failures {confirm['failures']} inconsistent with "
           f"{len(errors)} error entries")
    expect(len(measured) == confirm["confirmed"] - len(errors),
           f"{where}: {len(measured)} measured points != confirmed "
           f"{confirm['confirmed']} - {len(errors)} failed")
    expect(all(k < confirm["confirmed"] for k in measured),
           f"{where}: measured IPC on a rank beyond confirm.confirmed")
    n_ok = len(measured)
    est_ranks = sorted(m["est_rank"] for m in measured.values())
    meas_ranks = sorted(m["measured_rank"] for m in measured.values())
    expect(est_ranks == list(range(n_ok)),
           f"{where}: est ranks are not a permutation of 0..{n_ok - 1}")
    expect(meas_ranks == list(range(n_ok)),
           f"{where}: measured ranks are not a permutation of "
           f"0..{n_ok - 1}")
    s = confirm["spearman"]
    expect(s is None or (isinstance(s, (int, float))
                         and -1.000001 <= s <= 1.000001),
           f"{where}: spearman {s!r} outside [-1, 1]")
    expect(isinstance(confirm["rank_inversions"], int)
           and confirm["rank_inversions"] <= n_ok * (n_ok - 1) // 2,
           f"{where}: rank_inversions exceeds the number of pairs")
    return len(frontier)


def check_file(path):
    with open(path) as f:
        text = f.read()
    first_line = text.split("\n", 1)[0]
    try:
        header = json.loads(first_line)
    except json.JSONDecodeError:
        header = None
    if (isinstance(header, dict)
            and header.get("schema") == "wsrs-svc-frames-v1"
            and header.get("format") == "jsonl"):
        n = check_frames_jsonl(text.split("\n")[1:], path)
        print(f"{path}: ok (jsonl frame log, {n} frames)")
        return
    doc = json.loads(text)  # strict: rejects NaN-producing output
    schema = doc.get("schema")
    if schema == "wsrs-sweep-report-v1":
        n = check_sweep_report(doc, path)
        print(f"{path}: ok (sweep report, {n} jobs)")
    elif schema == "wsrs-svc-status-v1":
        n = check_status_doc(doc, path)
        print(f"{path}: ok (daemon status, {n} requests)")
    elif schema == "wsrs-svc-frames-v1":
        n = check_frames_doc(doc, path)
        print(f"{path}: ok (frame log, {n} frames)")
    elif schema == "wsrs-metrics-v1":
        n = check_metrics_doc(doc, path)
        print(f"{path}: ok (metrics snapshot, {n} instruments)")
    elif schema == "wsrs-spans-v1":
        n = check_spans_doc(doc, path)
        print(f"{path}: ok (span timeline, {n} job spans)")
    elif schema == "wsrs-explore-v1":
        n = check_explore_report(doc, path)
        print(f"{path}: ok (explore report, {n} frontier points)")
    elif schema == "wsrs-rf-v1":
        n = check_rf_doc(doc, path)
        print(f"{path}: ok (register-file table, {n} organizations)")
    else:
        check_stats_doc(doc, path)
        print(f"{path}: ok (single-run stats, "
              f"{doc['core']['cycles']} cycles)")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for path in sys.argv[1:]:
        try:
            check_file(path)
        except Fail as e:
            sys.exit(f"FAIL {e}")
        except (json.JSONDecodeError, KeyError, TypeError) as e:
            sys.exit(f"FAIL {path}: {e!r}")
    print("all stats documents valid")


if __name__ == "__main__":
    main()
