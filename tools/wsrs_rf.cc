/**
 * @file
 * Hardware-model explorer: evaluate the register-file and scheduler
 * complexity models for arbitrary organizations from the command line.
 *
 *   wsrs-rf --table1                  # the paper's five organizations
 *   wsrs-rf --table1 --json           # the same, machine-readable
 *   wsrs-rf --regs=512 --copies=2 --reads=4 --writes=3 --entries=256
 *   wsrs-rf --wakeup --producers=6 --window=56 --clusters=4
 */
#include <cstdio>
#include <iostream>

#include "src/common/args.h"
#include "src/common/log.h"
#include "src/cxmodel/wakeup_model.h"
#include "src/rfmodel/regfile_model.h"

using namespace wsrs;

namespace {

void
printOrg(const rfmodel::RegFileModel &model, const rfmodel::RegFileOrg &org)
{
    const rfmodel::RegFileOrg ref = rfmodel::makeNoWs2Cluster();
    std::printf("%-10s %4u regs x%u (%2u,%2u) %4u subfiles x%4u entries | "
                "%6.0f w^2/bit | %.2f ns | %.2f nJ/cy | area %5.2fx | "
                "cyc@10GHz %u (bypass %u)\n",
                org.name.c_str(), org.totalRegs, org.copiesPerReg,
                org.portsPerCopy.reads, org.portsPerCopy.writes,
                org.numSubfiles, org.entriesPerSubfile,
                model.bitArea(org), model.accessTimeNs(org),
                model.energyNJPerCycle(org),
                model.totalArea(org) / model.totalArea(ref),
                model.pipelineCycles(org, 10.0),
                model.bypassSources(org, 10.0));
}

/** Machine-readable twin of printOrg (the explorer report's emitter). */
void
printOrgJson(const rfmodel::RegFileModel &model,
             const rfmodel::RegFileOrg &org)
{
    const rfmodel::RegFileOrg ref = rfmodel::makeNoWs2Cluster();
    rfmodel::writeOrgJson(std::cout, org, model.estimate(org, ref));
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("table1", "print the paper's five organizations", true);
    args.addOption("wakeup", "evaluate the wake-up/selection model", true);
    args.addOption("regs", "total registers (custom organization)");
    args.addOption("copies", "copies per register");
    args.addOption("reads", "read ports per copy");
    args.addOption("writes", "write ports per copy");
    args.addOption("subfiles", "physical subfiles");
    args.addOption("entries", "entries per subfile");
    args.addOption("producers", "producers visible per operand");
    args.addOption("window", "wake-up entries per cluster");
    args.addOption("clusters", "number of clusters");
    args.addOption("pipe", "register read/write pipeline length");
    args.addOption("json", "emit organizations as JSON", true);
    args.addOption("help", "show this help", true);

    try {
        args.parse(argc, argv);
        if (args.has("help")) {
            std::printf("%s", args.usage("wsrs-rf").c_str());
            return 0;
        }

        const rfmodel::RegFileModel model;

        if (args.has("wakeup")) {
            cxmodel::SchedulerOrg org;
            org.name = "custom";
            org.producersVisible =
                unsigned(args.getUint("producers", 12));
            org.windowPerCluster = unsigned(args.getUint("window", 56));
            org.numClusters = unsigned(args.getUint("clusters", 4));
            org.regReadWritePipe = unsigned(args.getUint("pipe", 4));
            std::printf("wake-up: %u comparators/entry, %u total, "
                        "relative delay %.2f, selection depth %u, "
                        "bypass sources %u\n",
                        cxmodel::comparatorsPerEntry(org),
                        cxmodel::totalComparators(org),
                        cxmodel::relativeWakeupDelay(org),
                        cxmodel::selectionTreeDepth(org),
                        cxmodel::bypassSources(org));
            return 0;
        }

        if (args.has("table1") || !args.has("regs")) {
            if (args.has("json")) {
                std::cout << "{\"schema\":\"wsrs-rf-v1\","
                             "\"organizations\":[";
                bool first = true;
                auto orgs = rfmodel::table1Organizations();
                orgs.push_back(rfmodel::makeWsrs7Cluster());
                for (const auto &org : orgs) {
                    if (!first)
                        std::cout << ',';
                    first = false;
                    printOrgJson(model, org);
                }
                std::cout << "]}\n";
                return 0;
            }
            for (const auto &org : rfmodel::table1Organizations())
                printOrg(model, org);
            printOrg(model, rfmodel::makeWsrs7Cluster());
            return 0;
        }

        rfmodel::RegFileOrg org;
        org.name = "custom";
        org.totalRegs = unsigned(args.getUint("regs", 256));
        org.copiesPerReg = unsigned(args.getUint("copies", 1));
        org.portsPerCopy.reads = unsigned(args.getUint("reads", 4));
        org.portsPerCopy.writes = unsigned(args.getUint("writes", 3));
        org.numSubfiles = unsigned(args.getUint("subfiles", 1));
        org.entriesPerSubfile =
            unsigned(args.getUint("entries", org.totalRegs));
        org.writeBusesPerSubfile = org.portsPerCopy.writes;
        org.writeSpanRows = org.entriesPerSubfile;
        org.producersVisible = unsigned(args.getUint("producers", 12));
        if (args.has("json")) {
            printOrgJson(model, org);
            std::cout << '\n';
        } else {
            printOrg(model, org);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsrs-rf: %s\n", e.what());
        return 1;
    }
}
