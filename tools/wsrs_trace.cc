/**
 * @file
 * Trace utility: record synthetic benchmark traces to the binary format,
 * inspect trace files, and replay them through any machine.
 *
 *   wsrs-trace --record --bench=gzip --uops=1000000 --out=gzip.trc
 *   wsrs-trace --info --in=gzip.trc
 *   wsrs-trace --replay --in=gzip.trc --machine=WSRS-RC-512 --uops=500000
 */
#include <array>
#include <cstdio>
#include <string>

#include "src/bpred/two_bc_gskew.h"
#include "src/common/args.h"
#include "src/common/log.h"
#include "src/core/core.h"
#include "src/sim/presets.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"
#include "src/workload/trace_io.h"

using namespace wsrs;

namespace {

int
record(const ArgParser &args)
{
    const std::string bench = args.get("bench", "gzip");
    const std::string out = args.get("out", bench + ".trc");
    const std::uint64_t uops = args.getUint("uops", 1000000);

    workload::TraceGenerator gen(workload::findProfile(bench),
                                 args.getUint("seed", 0));
    workload::TraceWriter writer(out);
    for (std::uint64_t i = 0; i < uops; ++i)
        writer.append(gen.next());
    writer.close();
    std::printf("recorded %llu micro-ops of '%s' to %s\n",
                (unsigned long long)writer.written(), bench.c_str(),
                out.c_str());
    return 0;
}

int
info(const ArgParser &args)
{
    const std::string in = args.get("in");
    if (in.empty())
        fatal("--info requires --in=<file>");
    workload::TraceReader reader(in, /*wrap=*/false);
    std::printf("%s: %llu micro-ops\n", in.c_str(),
                (unsigned long long)reader.records());

    std::array<std::uint64_t, isa::kNumOpClasses> mix{};
    std::uint64_t monadic = 0, dyadic = 0, noadic = 0, taken = 0,
                  branches = 0;
    for (std::uint64_t i = 0; i < reader.records(); ++i) {
        const isa::MicroOp op = reader.next();
        ++mix[static_cast<std::size_t>(op.op)];
        if (op.isDyadic())
            ++dyadic;
        else if (op.isMonadic())
            ++monadic;
        else
            ++noadic;
        if (op.isBranch()) {
            ++branches;
            taken += op.taken;
        }
    }
    std::printf("\ninstruction mix:\n");
    for (std::size_t i = 0; i < isa::kNumOpClasses; ++i) {
        if (mix[i] == 0)
            continue;
        std::printf("  %-8s %8.3f%%\n",
                    std::string(isa::opClassName(
                                    static_cast<isa::OpClass>(i)))
                        .c_str(),
                    100.0 * mix[i] / reader.records());
    }
    std::printf("arity: %.1f%% dyadic, %.1f%% monadic, %.1f%% noadic\n",
                100.0 * dyadic / reader.records(),
                100.0 * monadic / reader.records(),
                100.0 * noadic / reader.records());
    if (branches)
        std::printf("branches taken: %.1f%%\n", 100.0 * taken / branches);
    return 0;
}

int
replay(const ArgParser &args)
{
    const std::string in = args.get("in");
    if (in.empty())
        fatal("--replay requires --in=<file>");
    workload::TraceReader reader(in);
    bpred::TwoBcGskew bp;
    StatGroup stats("replay");
    memory::MemoryHierarchy mem(memory::HierarchyParams{}, stats);
    core::CoreParams params =
        sim::findPreset(args.get("machine", "RR-256"));
    core::Core machine(params, reader, bp, mem);

    const std::uint64_t uops =
        args.getUint("uops", reader.records());
    machine.run(uops);
    const core::CoreStats &s = machine.stats();
    std::printf("%s on %s: IPC %.3f over %llu micro-ops "
                "(%llu cycles, %.2f%% mispredict)\n",
                in.c_str(), params.name.c_str(), s.ipc(),
                (unsigned long long)s.committed,
                (unsigned long long)s.cycles,
                100.0 * s.mispredictRate());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("record", "record a synthetic trace", true);
    args.addOption("info", "summarize a trace file", true);
    args.addOption("replay", "simulate from a trace file", true);
    args.addOption("bench", "benchmark to record (default gzip)");
    args.addOption("machine", "machine preset for --replay");
    args.addOption("in", "input trace file");
    args.addOption("out", "output trace file");
    args.addOption("uops", "micro-ops to record/replay");
    args.addOption("seed", "extra trace seed");
    args.addOption("help", "show this help", true);

    try {
        args.parse(argc, argv);
        if (args.has("help")) {
            std::printf("%s", args.usage("wsrs-trace").c_str());
            return 0;
        }
        if (args.has("record"))
            return record(args);
        if (args.has("info"))
            return info(args);
        if (args.has("replay"))
            return replay(args);
        std::printf("%s", args.usage("wsrs-trace").c_str());
        return 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsrs-trace: %s\n", e.what());
        return 1;
    }
}
