/**
 * @file
 * The main simulation driver: run any benchmark on any machine with full
 * parameter control, emitting text, CSV or JSON results.
 *
 *   wsrs_sim --bench=gzip --machine=WSRS-RC-512 --uops=1000000
 *   wsrs_sim --all --csv > results.csv
 *   wsrs_sim --bench=swim --machine=RR-256 --set-window=128 --json
 */
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/args.h"
#include "src/common/log.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_log.h"
#include "src/runner/sweep_report.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/svc/coordinator.h"
#include "src/svc/service.h"
#include "src/svc/worker.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

sim::PredictorKind
predictorFromName(const std::string &name)
{
    if (name == "2bc-gskew")
        return sim::PredictorKind::TwoBcGskew;
    if (name == "tournament")
        return sim::PredictorKind::Tournament;
    if (name == "gshare")
        return sim::PredictorKind::Gshare;
    if (name == "bimodal")
        return sim::PredictorKind::Bimodal;
    if (name == "perfect")
        return sim::PredictorKind::Perfect;
    fatal("unknown predictor '%s' (2bc-gskew|tournament|gshare|bimodal|perfect)",
          name.c_str());
}

core::FastForwardScope
ffScopeFromName(const std::string &name)
{
    if (name == "intra")
        return core::FastForwardScope::IntraCluster;
    if (name == "adjacent")
        return core::FastForwardScope::AdjacentPair;
    if (name == "complete")
        return core::FastForwardScope::Complete;
    fatal("unknown fast-forward scope '%s' (intra|adjacent|complete)",
          name.c_str());
}

void
printText(const sim::SimResults &r)
{
    std::printf("benchmark            %s\n", r.benchmark.c_str());
    std::printf("machine              %s\n", r.machine.c_str());
    std::printf("IPC                  %.4f\n", r.ipc);
    std::printf("cycles               %llu\n",
                (unsigned long long)r.stats.cycles);
    std::printf("committed uops       %llu\n",
                (unsigned long long)r.stats.committed);
    std::printf("branch mispredict    %.3f%%\n",
                100 * r.branchMispredictRate);
    std::printf("L1 miss rate         %.3f%%\n", 100 * r.l1MissRate);
    std::printf("L2 miss rate         %.3f%% (of L1 misses)\n",
                100 * r.l2MissRate);
    std::printf("unbalancing degree   %.1f%%\n", r.unbalancingDegree);
    std::printf("load forwards        %llu\n",
                (unsigned long long)r.stats.loadForwards);
    std::printf("injected moves       %llu\n",
                (unsigned long long)r.stats.injectedMoves);
    std::printf("rename stalls        freeReg=%llu window=%llu rob=%llu "
                "lsq=%llu\n",
                (unsigned long long)r.stats.renameStallFreeReg,
                (unsigned long long)r.stats.renameStallWindow,
                (unsigned long long)r.stats.renameStallRob,
                (unsigned long long)r.stats.renameStallLsq);
    std::printf("cluster shares       ");
    std::uint64_t tot = 0;
    for (unsigned c = 0; c < 4; ++c)
        tot += r.stats.perCluster[c];
    for (unsigned c = 0; c < 4; ++c)
        std::printf("%.1f%% ",
                    tot ? 100.0 * r.stats.perCluster[c] / tot : 0.0);
    std::printf("\n");
}

void
printCsvHeader()
{
    std::printf("benchmark,machine,ipc,cycles,committed,mispredict_rate,"
                "l1_miss_rate,l2_miss_rate,unbalancing_degree,"
                "load_forwards,injected_moves,stall_free,stall_window,"
                "stall_rob,stall_lsq\n");
}

void
printCsv(const sim::SimResults &r)
{
    std::printf("%s,%s,%.4f,%llu,%llu,%.5f,%.5f,%.5f,%.2f,%llu,%llu,%llu,"
                "%llu,%llu,%llu\n",
                r.benchmark.c_str(), r.machine.c_str(), r.ipc,
                (unsigned long long)r.stats.cycles,
                (unsigned long long)r.stats.committed,
                r.branchMispredictRate, r.l1MissRate, r.l2MissRate,
                r.unbalancingDegree,
                (unsigned long long)r.stats.loadForwards,
                (unsigned long long)r.stats.injectedMoves,
                (unsigned long long)r.stats.renameStallFreeReg,
                (unsigned long long)r.stats.renameStallWindow,
                (unsigned long long)r.stats.renameStallRob,
                (unsigned long long)r.stats.renameStallLsq);
}

void
printJson(const sim::SimResults &r)
{
    std::printf("{\n");
    std::printf("  \"benchmark\": \"%s\",\n", r.benchmark.c_str());
    std::printf("  \"machine\": \"%s\",\n", r.machine.c_str());
    std::printf("  \"ipc\": %.4f,\n", r.ipc);
    std::printf("  \"cycles\": %llu,\n",
                (unsigned long long)r.stats.cycles);
    std::printf("  \"committed\": %llu,\n",
                (unsigned long long)r.stats.committed);
    std::printf("  \"mispredict_rate\": %.5f,\n", r.branchMispredictRate);
    std::printf("  \"l1_miss_rate\": %.5f,\n", r.l1MissRate);
    std::printf("  \"l2_miss_rate\": %.5f,\n", r.l2MissRate);
    std::printf("  \"unbalancing_degree\": %.2f,\n", r.unbalancingDegree);
    std::printf("  \"load_forwards\": %llu,\n",
                (unsigned long long)r.stats.loadForwards);
    std::printf("  \"injected_moves\": %llu,\n",
                (unsigned long long)r.stats.injectedMoves);
    std::printf("  \"rename_stalls\": {\"free\": %llu, \"window\": %llu, "
                "\"rob\": %llu, \"lsq\": %llu}\n",
                (unsigned long long)r.stats.renameStallFreeReg,
                (unsigned long long)r.stats.renameStallWindow,
                (unsigned long long)r.stats.renameStallRob,
                (unsigned long long)r.stats.renameStallLsq);
    std::printf("}\n");
}

/** Daemon instance reachable from the signal handler (static storage so
 *  the captureless handler lambda may use it). */
svc::SweepService *gService = nullptr;

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("bench", "benchmark name (gzip .. facerec)");
    args.addOption("machine",
                   "machine preset (RR-256, WSRR-384, WSRR-512, WSP-512, "
                   "WSRS-RC-384, WSRS-RC-512, WSRS-RM-512, WSRS-DEP-512)");
    args.addOption("uops", "measured micro-ops (default 1000000)");
    args.addOption("warmup", "warm-up micro-ops (default 400000)");
    args.addOption("seed", "extra trace seed (default 0)");
    args.addOption("predictor",
                   "2bc-gskew | tournament | gshare | bimodal | perfect");
    args.addOption("mem-model",
                   "memory backend preset: constant | dram | dram-closed "
                   "(default constant; see docs/memory.md)");
    args.addOption("ff-scope", "intra | adjacent | complete");
    args.addOption("set-regs", "override physical register count");
    args.addOption("set-window", "override per-cluster window");
    args.addOption("set-lsq", "override LSQ size");
    args.addOption("set-issue", "override per-cluster issue width");
    args.addOption("verify", "enable commit-time oracle checking", true);
    args.addOption("timeline", "print the last N committed micro-ops");
    args.addOption("all", "run all benchmarks x Figure-4 machines", true);
    args.addOption("jobs",
                   "worker threads for --all (0 = all cores, 1 = serial)");
    args.addOption("no-trace-cache",
                   "regenerate each run's trace instead of replaying the "
                   "per-benchmark recording", true);
    args.addOption("csv", "emit one CSV row per run", true);
    args.addOption("json", "emit JSON (single run only)", true);
    args.addOption("trace-pipe",
                   "write a Konata/O3PipeView pipeline trace of the "
                   "measured slice to FILE (single run only)");
    args.addOption("trace-pipe-bin",
                   "write the compact binary pipeline trace to FILE "
                   "(single run only)");
    args.addOption("stats-json",
                   "write machine-readable stats to FILE: a wsrs-stats-v1 "
                   "document for a single run, a wsrs-sweep-report-v1 "
                   "aggregate with --all ('-' = stdout)");
    args.addOption("interval-stats",
                   "sample {cycle, committed, occupancy} every N cycles "
                   "into the stats JSON");
    args.addOption("ckpt-save",
                   "write a full-sim checkpoint to FILE at the "
                   "warm-up/measure boundary (single run only)");
    args.addOption("ckpt-load",
                   "restore a full-sim checkpoint from FILE instead of "
                   "warming up (single run only; config must match)");
    args.addOption("reuse-warmup",
                   "with --all: warm each benchmark once (functional "
                   "warm-up snapshot) and reuse it for every machine", true);
    args.addOption("resume-journal",
                   "with --all: journal each completed run to FILE so a "
                   "killed sweep can be resumed");
    args.addOption("resume",
                   "with --all and --resume-journal: skip runs already "
                   "recorded in the journal", true);
    args.addOption("coordinator",
                   "with --all: distribute the sweep to worker processes "
                   "from this endpoint (e.g. unix:/tmp/wsrs.sock)");
    args.addOption("workers",
                   "with --coordinator: self-spawn N worker processes");
    args.addOption("worker",
                   "run as a sweep worker: claim shard leases from the "
                   "coordinator at --connect", true);
    args.addOption("connect",
                   "endpoint of the coordinator (--worker) or daemon "
                   "(--request/--status)");
    args.addOption("shard-size",
                   "with --coordinator: jobs per shard lease (default 4)");
    args.addOption("lease-timeout-ms",
                   "with --coordinator: per-job lease deadline "
                   "(default 120000)");
    args.addOption("lease-retries",
                   "with --coordinator: re-lease budget per shard before "
                   "its jobs fail (default 3)");
    args.addOption("lease-backoff-ms",
                   "with --coordinator: base re-lease backoff, doubling "
                   "per attempt (default 100)");
    args.addOption("warmup-cache-dir",
                   "shared on-disk warm-up snapshot cache directory "
                   "(cross-process, flock-serialized)");
    args.addOption("serve",
                   "run as a sweep daemon on this endpoint, accepting "
                   "JSON sweep requests until SIGTERM");
    args.addOption("queue-depth",
                   "with --serve: max queued requests before rejects "
                   "(default 4)");
    args.addOption("serve-threads",
                   "with --serve: concurrent sweep executors (default 1)");
    args.addOption("frame-log",
                   "with --serve: write a wsrs-svc-frames-v1 protocol "
                   "log to FILE on shutdown");
    args.addOption("request",
                   "submit the JSON sweep request in FILE ('-' = stdin) "
                   "to the daemon at --connect; prints the report");
    args.addOption("status",
                   "print the daemon's wsrs-svc-status-v1 document "
                   "(needs --connect)", true);
    args.addOption("metrics-out",
                   "write the process metrics snapshot (wsrs-metrics-v1 "
                   "JSON) to FILE after the run ('-' = stdout)");
    args.addOption("spans-out",
                   "with --all: write the sweep's per-job span timeline "
                   "(wsrs-spans-v1 Chrome trace JSON, Perfetto-loadable) "
                   "to FILE ('-' = stdout)");
    args.addOption("help", "show this help", true);

    try {
        args.parse(argc, argv);
        if (args.has("help")) {
            std::printf("%s", args.usage("wsrs_sim").c_str());
            return 0;
        }

        auto configure = [&](const std::string &machine) {
            sim::SimConfig cfg;
            cfg.core = sim::findPreset(machine);
            cfg.measureUops = args.getUint("uops", 1000000);
            cfg.warmupUops = args.getUint("warmup", 400000);
            cfg.seed = args.getUint("seed", 0);
            cfg.verifyDataflow = args.has("verify");
            cfg.timelineRows =
                std::size_t(args.getUint("timeline", 0));
            if (args.has("predictor"))
                cfg.predictor = predictorFromName(args.get("predictor"));
            if (args.has("mem-model"))
                cfg.mem = sim::findMemPreset(args.get("mem-model"));
            if (args.has("ff-scope"))
                cfg.core.ffScope = ffScopeFromName(args.get("ff-scope"));
            if (args.has("set-regs"))
                cfg.core.numPhysRegs =
                    unsigned(args.getUint("set-regs", 0));
            if (args.has("set-window"))
                cfg.core.clusterWindow =
                    unsigned(args.getUint("set-window", 0));
            if (args.has("set-lsq"))
                cfg.core.lsqSize = unsigned(args.getUint("set-lsq", 0));
            if (args.has("set-issue"))
                cfg.core.issuePerCluster =
                    unsigned(args.getUint("set-issue", 0));
            cfg.intervalStatsCycles = args.getUint("interval-stats", 0);
            return cfg;
        };

        const auto writeStatsFile = [](const std::string &path,
                                       const std::string &doc) {
            if (path == "-") {
                std::printf("%s\n", doc.c_str());
                return;
            }
            std::ofstream os(path);
            if (!os)
                fatalIo("cannot open stats file '%s'", path.c_str());
            os << doc << "\n";
        };

        const auto writeMetricsFile = [](const std::string &path) {
            if (path == "-") {
                obs::MetricsRegistry::process().writeJson(std::cout);
                return;
            }
            std::ofstream os(path);
            if (!os)
                fatalIo("cannot open metrics file '%s'", path.c_str());
            obs::MetricsRegistry::process().writeJson(os);
        };

        // The full Figure-4/5 matrix, built identically by --all, by the
        // coordinator and by every worker process: identical construction
        // means identical sweepKeyHash, which is what lets lease frames
        // carry bare job indices.
        const auto matrixJobs = [&] {
            std::vector<runner::SweepJob> jobs;
            for (const auto &p : workload::allProfiles())
                for (const std::string &m : sim::figure4Presets())
                    jobs.push_back({p, configure(m)});
            return jobs;
        };

        if (args.has("worker")) {
            svc::WorkerOptions wopt;
            wopt.endpoint = args.get("connect", "");
            if (wopt.endpoint.empty())
                fatal("--worker needs --connect=ENDPOINT");
            wopt.shareTraces = !args.has("no-trace-cache");
            wopt.reuseWarmup = args.has("reuse-warmup");
            wopt.warmupCacheDir = args.get("warmup-cache-dir", "");
            svc::runWorker(matrixJobs(), wopt);
            return 0;
        }

        if (args.has("serve")) {
            svc::ServiceOptions sopt;
            sopt.endpoint = args.get("serve");
            sopt.queueDepth =
                std::size_t(args.getUint("queue-depth", 4));
            sopt.executors = unsigned(args.getUint("serve-threads", 1));
            sopt.sweepThreads = unsigned(args.getUint("jobs", 1));
            sopt.frameLogPath = args.get("frame-log", "");
            svc::SweepService service(sopt);
            gService = &service;
            std::signal(SIGTERM, [](int) {
                if (gService)
                    gService->requestStop();
            });
            std::signal(SIGINT, [](int) {
                if (gService)
                    gService->requestStop();
            });
            service.start();
            std::fprintf(stderr, "wsrs-sim: serving on %s\n",
                         service.endpoint().c_str());
            service.wait();
            gService = nullptr;
            return 0;
        }

        if (args.has("request")) {
            const std::string endpoint = args.get("connect", "");
            if (endpoint.empty())
                fatal("--request needs --connect=ENDPOINT");
            const std::string spec = args.get("request");
            std::string json;
            if (spec == "-") {
                std::ostringstream buf;
                buf << std::cin.rdbuf();
                json = buf.str();
            } else {
                std::ifstream is(spec);
                if (!is)
                    fatalIo("cannot read sweep request file '%s'",
                            spec.c_str());
                std::ostringstream buf;
                buf << is.rdbuf();
                json = buf.str();
            }
            const svc::SubmitResult res =
                svc::submitSweep(endpoint, json);
            if (!res.accepted) {
                std::fprintf(stderr,
                             "wsrs-sim: request rejected: %s (retry "
                             "after %llu ms)\n",
                             res.reason.c_str(),
                             (unsigned long long)res.retryAfterMs);
                return 75; // EX_TEMPFAIL: back off and retry.
            }
            std::printf("%s\n", res.report.c_str());
            return 0;
        }

        if (args.has("status")) {
            const std::string endpoint = args.get("connect", "");
            if (endpoint.empty())
                fatal("--status needs --connect=ENDPOINT");
            std::printf("%s\n", svc::queryStatus(endpoint).c_str());
            return 0;
        }

        if (args.has("all")) {
            if (args.has("trace-pipe") || args.has("trace-pipe-bin"))
                fatal("--trace-pipe traces a single run; combine it with "
                      "--bench/--machine, not --all");
            if (args.has("ckpt-save") || args.has("ckpt-load"))
                fatal("--ckpt-save/--ckpt-load checkpoint a single run; "
                      "for sweeps use --reuse-warmup and --resume-journal");
            if (args.has("resume") && !args.has("resume-journal"))
                fatal("--resume needs --resume-journal=FILE to know which "
                      "journal to resume from");
            // The full matrix runs on the sweep runner: one job per
            // {benchmark, machine}, per-profile trace recorded once and
            // replayed for all machines, results streamed in submission
            // order as the completed prefix grows.
            const std::vector<runner::SweepJob> jobs = matrixJobs();

            if (args.has("csv"))
                printCsvHeader();
            std::vector<const runner::SweepOutcome *> slots(jobs.size());
            std::size_t nextToPrint = 0;
            const auto printEvent = [&](const runner::SweepEvent &ev) {
                slots[ev.index] = ev.outcome;
                while (nextToPrint < slots.size() && slots[nextToPrint]) {
                    const runner::SweepOutcome &o = *slots[nextToPrint];
                    if (!o.ok) {
                        std::fprintf(stderr, "wsrs_sim: %s on %s: %s\n",
                                     jobs[nextToPrint].profile.name.c_str(),
                                     jobs[nextToPrint].config.core.name
                                         .c_str(),
                                     o.error.c_str());
                    } else if (args.has("csv")) {
                        printCsv(o.results);
                    } else {
                        std::printf("%-10s %-12s IPC %.3f\n",
                                    o.results.benchmark.c_str(),
                                    o.results.machine.c_str(),
                                    o.results.ipc);
                    }
                    ++nextToPrint;
                }
                std::fflush(stdout);
            };

            std::vector<runner::SweepOutcome> outcomes;
            runner::SweepRunner::Telemetry telemetry;
            runner::SvcReport svcReport;
            const runner::SvcReport *svcPtr = nullptr;

            // Telemetry is opt-in per flag: the span log records the
            // per-job timeline (local or distributed), the process
            // registry collects runner/service instruments. Neither
            // touches the sweep report.
            obs::SpanLog spanLog;
            obs::SpanLog *const spans =
                args.has("spans-out") ? &spanLog : nullptr;
            obs::MetricsRegistry *const metrics =
                args.has("metrics-out") ? &obs::MetricsRegistry::process()
                                        : nullptr;

            if (args.has("coordinator")) {
                // Distributed execution: shard the pending jobs out to
                // worker processes; optionally self-spawn them.
                svc::Coordinator::Options copt;
                copt.endpoint = args.get("coordinator");
                copt.shardSize = args.getUint("shard-size", 4);
                copt.perJobTimeoutMs =
                    args.getUint("lease-timeout-ms", 120000);
                copt.maxLeaseRetries =
                    unsigned(args.getUint("lease-retries", 3));
                copt.leaseBackoffMs =
                    args.getUint("lease-backoff-ms", 100);
                copt.journalPath = args.get("resume-journal", "");
                copt.resume = args.has("resume");
                copt.reuseWarmup = args.has("reuse-warmup");
                copt.onEvent = printEvent;
                copt.spans = spans;
                copt.metrics = metrics;
                svc::Coordinator coord(copt, jobs);
                coord.bind();

                // Self-spawned workers re-exec this binary with the
                // sweep-defining flags forwarded verbatim, so they build
                // the identical job list (and sweep key).
                std::vector<pid_t> kids;
                const unsigned nWorkers =
                    unsigned(args.getUint("workers", 0));
                for (unsigned w = 0; w < nWorkers; ++w) {
                    std::vector<std::string> cmd;
                    cmd.push_back(argv[0]);
                    cmd.push_back("--worker");
                    cmd.push_back("--connect=" + coord.endpoint());
                    for (const char *o :
                         {"uops", "warmup", "seed", "predictor",
                          "mem-model", "ff-scope", "set-regs",
                          "set-window", "set-lsq", "set-issue", "timeline",
                          "interval-stats", "warmup-cache-dir"})
                        if (args.has(o))
                            cmd.push_back(std::string("--") + o + "=" +
                                          args.get(o));
                    for (const char *f :
                         {"verify", "no-trace-cache", "reuse-warmup"})
                        if (args.has(f))
                            cmd.push_back(std::string("--") + f);
                    std::vector<char *> cargv;
                    for (std::string &s : cmd)
                        cargv.push_back(s.data());
                    cargv.push_back(nullptr);
                    const pid_t pid = ::fork();
                    if (pid == 0) {
                        ::execv(cargv[0], cargv.data());
                        std::fprintf(stderr,
                                     "wsrs-sim: cannot exec worker %s\n",
                                     cargv[0]);
                        ::_exit(127);
                    }
                    if (pid < 0)
                        fatalIo("cannot fork worker process %u", w);
                    kids.push_back(pid);
                }

                outcomes = coord.run();
                telemetry = coord.telemetry();
                svcReport = coord.svcReport();
                svcPtr = &svcReport;
                for (const pid_t pid : kids)
                    ::waitpid(pid, nullptr, 0);
            } else {
                runner::SweepRunner::Options opt;
                opt.threads = unsigned(args.getUint("jobs", 0));
                opt.shareTraces = !args.has("no-trace-cache");
                opt.reuseWarmup = args.has("reuse-warmup");
                opt.journalPath = args.get("resume-journal", "");
                opt.resume = args.has("resume");
                opt.onEvent = printEvent;
                opt.spans = spans;
                opt.metrics = metrics;
                runner::SweepRunner sweep(opt);
                outcomes = sweep.run(jobs);
                telemetry = sweep.telemetry();
            }

            if (args.has("stats-json")) {
                const std::string path = args.get("stats-json");
                if (path == "-") {
                    std::ostringstream os;
                    runner::writeSweepReport(os, jobs, outcomes,
                                             telemetry, svcPtr);
                    std::printf("%s\n", os.str().c_str());
                } else {
                    std::ofstream os(path);
                    if (!os)
                        fatalIo("cannot open stats file '%s'", path.c_str());
                    runner::writeSweepReport(os, jobs, outcomes,
                                             telemetry, svcPtr);
                    os << "\n";
                }
            }
            if (spans) {
                const std::string path = args.get("spans-out");
                std::ostringstream label;
                label << "wsrs-sim --all (" << jobs.size() << " jobs)";
                if (path == "-") {
                    spanLog.writeChromeTrace(std::cout, label.str());
                } else {
                    std::ofstream os(path);
                    if (!os)
                        fatalIo("cannot open spans file '%s'",
                                path.c_str());
                    spanLog.writeChromeTrace(os, label.str());
                }
            }
            if (metrics)
                writeMetricsFile(args.get("metrics-out"));
            for (const auto &o : outcomes)
                if (!o.ok)
                    return kExitJobFailure;
            return 0;
        }

        if (args.has("spans-out"))
            fatal("--spans-out records a sweep timeline; combine it with "
                  "--all");

        const std::string bench = args.get("bench", "gzip");
        const std::string machine = args.get("machine", "RR-256");
        sim::SimConfig cfg = configure(machine);
        cfg.tracePipePath = args.get("trace-pipe", "");
        cfg.tracePipeBinPath = args.get("trace-pipe-bin", "");
        cfg.checkpointSavePath = args.get("ckpt-save", "");
        cfg.checkpointLoadPath = args.get("ckpt-load", "");
        const sim::SimResults r =
            sim::runSimulation(workload::findProfile(bench), cfg);
        if (args.has("stats-json"))
            writeStatsFile(args.get("stats-json"), r.statsJson);
        if (args.has("metrics-out")) {
            // Single runs bump sim-level instruments here at the tool
            // layer, from the results — the simulator core itself stays
            // free of registry calls.
            auto &reg = obs::MetricsRegistry::process();
            reg.counter("wsrs_sim_runs_total",
                        "Completed single-run simulations.")
                .add();
            reg.counter("wsrs_sim_cycles_total",
                        "Simulated cycles across runs.")
                .add(r.stats.cycles);
            reg.counter("wsrs_sim_committed_uops_total",
                        "Committed micro-ops across runs.")
                .add(r.stats.committed);
            reg.histogram("wsrs_sim_host_ms",
                          "Host wall time per simulation run (ms).",
                          obs::MetricsRegistry::latencyBucketsMs())
                .observe(std::uint64_t(r.hostSeconds * 1000));
            reg.counter("wsrs_mem_requests_total",
                        "DRAM demand requests across measured slices.")
                .add(r.mem.dramRequests);
            reg.counter("wsrs_mem_row_hits_total",
                        "DRAM open-row hits across measured slices.")
                .add(r.mem.dramRowHits);
            reg.counter("wsrs_mem_row_conflicts_total",
                        "DRAM row conflicts across measured slices.")
                .add(r.mem.dramRowConflicts);
            reg.counter("wsrs_mem_queue_full_waits_total",
                        "DRAM requests delayed by a full in-flight "
                        "window.")
                .add(r.mem.dramQueueFullWaits);
            writeMetricsFile(args.get("metrics-out"));
        }
        if (args.has("csv")) {
            printCsvHeader();
            printCsv(r);
        } else if (args.has("json")) {
            printJson(r);
        } else {
            printText(r);
        }
        if (!r.timelineText.empty())
            std::printf("\n%s", r.timelineText.c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsrs_sim: %s\n", e.what());
        return exitCodeFor(e);
    }
}
