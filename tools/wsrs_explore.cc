/**
 * @file
 * Design-space explorer driver: sweep a declarative configuration space
 * with the analytic IPC/area/energy model, keep the exact Pareto
 * frontier, and optionally confirm the top of the frontier with the
 * cycle-accurate simulator (docs/explorer.md).
 *
 *   wsrs-explore --space=space.json --threads=8 --out=report.json
 *   wsrs-explore --space=space.json --confirm-top=16 --out=report.json
 *   wsrs-explore --calibrate                # Figure-4 rank correlation
 *   wsrs-explore --list-params              # supported axis parameters
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/common/args.h"
#include "src/common/log.h"
#include "src/explore/analytic_model.h"
#include "src/explore/calibrate.h"
#include "src/explore/explorer.h"
#include "src/explore/space.h"
#include "src/obs/metrics_registry.h"

using namespace wsrs;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatalIo("cannot read space file '%s'", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
writeOut(const std::string &path, const std::string &doc)
{
    if (path.empty() || path == "-") {
        std::cout << doc;
        return;
    }
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatalIo("cannot open output file '%s'", path.c_str());
    os << doc;
}

void
writeMetricsFile(const std::string &path)
{
    if (path == "-") {
        obs::MetricsRegistry::process().writeJson(std::cout);
        return;
    }
    std::ofstream os(path);
    if (!os)
        fatalIo("cannot open metrics file '%s'", path.c_str());
    obs::MetricsRegistry::process().writeJson(os);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("space", "configuration-space spec (wsrs-space-v1 JSON)");
    args.addOption("threads", "analytic sweep threads (default 1)");
    args.addOption("confirm-top",
                   "confirm the top-K frontier points cycle-accurately");
    args.addOption("confirm-threads",
                   "confirmation sweep threads (default: hardware)");
    args.addOption("measure-uops",
                   "measured micro-ops per confirmation/calibration job");
    args.addOption("warmup-uops",
                   "warm-up micro-ops per confirmation/calibration job");
    args.addOption("out", "report output path ('-' = stdout, the default)");
    args.addOption("calibrate",
                   "run the Figure-4 matrix and report the analytic/"
                   "measured rank correlation", true);
    args.addOption("list-params", "list supported axis parameters", true);
    args.addOption("metrics-out",
                   "write the process metrics snapshot (wsrs-metrics-v1 "
                   "JSON; '-' = stdout)");
    args.addOption("help", "show this help", true);

    try {
        args.parse(argc, argv);
        if (args.has("help")) {
            std::printf("%s", args.usage("wsrs-explore").c_str());
            return 0;
        }

        if (args.has("list-params")) {
            for (const std::string &p : explore::supportedParams())
                std::printf("%s\n", p.c_str());
            return 0;
        }

        obs::MetricsRegistry *const metrics =
            args.has("metrics-out") ? &obs::MetricsRegistry::process()
                                    : nullptr;
        const explore::AnalyticModel model;

        if (args.has("calibrate")) {
            explore::CalibrationOptions copt;
            copt.threads = unsigned(args.getUint("confirm-threads", 0));
            copt.measureUops = args.getUint("measure-uops", 200000);
            copt.warmupUops = args.getUint("warmup-uops", 50000);
            copt.metrics = metrics;
            const explore::CalibrationResult cal =
                explore::calibrate(model, copt);
            writeOut(args.get("out"),
                     explore::calibrationReportText(cal));
            if (metrics)
                writeMetricsFile(args.get("metrics-out"));
            return cal.failures == 0 ? 0 : 1;
        }

        if (!args.has("space"))
            fatal("--space is required (or use --calibrate/--list-params)");

        const std::string spec_path = args.get("space");
        const explore::SpaceSpec spec =
            explore::parseSpaceSpec(readFile(spec_path), spec_path);

        explore::ExplorerOptions opt;
        opt.threads = unsigned(args.getUint("threads", 1));
        opt.confirmTop = args.getUint("confirm-top", 0);
        opt.confirmThreads = unsigned(args.getUint("confirm-threads", 0));
        opt.confirmMeasureUops = args.getUint("measure-uops", 300000);
        opt.confirmWarmupUops = args.getUint("warmup-uops", 100000);
        opt.metrics = metrics;

        const explore::ExplorerResult result =
            explore::explore(spec, model, opt);
        writeOut(args.get("out"), result.reportJson);

        std::fprintf(stderr,
                     "wsrs-explore: %llu configs (%llu infeasible), "
                     "frontier %zu",
                     static_cast<unsigned long long>(result.enumerated),
                     static_cast<unsigned long long>(result.infeasible),
                     result.frontier.size());
        if (!result.confirmed.empty())
            std::fprintf(stderr,
                         ", confirmed %zu (spearman %.4f, "
                         "%zu rank inversions)",
                         result.confirmed.size(), result.confirmSpearman,
                         result.rankInversions);
        std::fprintf(stderr, "\n");

        if (metrics)
            writeMetricsFile(args.get("metrics-out"));
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsrs-explore: %s\n", e.what());
        return 1;
    }
}
