/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's building blocks:
 * trace generation, branch prediction, cache access, and whole-machine
 * simulation throughput (micro-ops per second) for each machine
 * configuration. These track the *host* performance of the simulator
 * itself, not simulated metrics.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/memory/hierarchy.h"
#include "src/obs/stage_profiler.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

using namespace wsrs;

namespace {

void
BM_TraceGeneration(benchmark::State &state)
{
    workload::TraceGenerator gen(workload::findProfile("gzip"));
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_TwoBcGskewLookupUpdate(benchmark::State &state)
{
    bpred::TwoBcGskew bp;
    XorShiftRng rng(5);
    Addr pc = 0x400000;
    for (auto _ : state) {
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(bp.lookup(pc));
        bp.update(pc, taken);
        pc = 0x400000 + (rng.next() & 0x3ff) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoBcGskewLookupUpdate);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    StatGroup stats("bm");
    memory::MemoryHierarchy mem(memory::HierarchyParams{}, stats);
    XorShiftRng rng(11);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = 8 * rng.below(1 << 16);
        benchmark::DoNotOptimize(mem.access(a, false, now++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_SimulatorThroughput(benchmark::State &state, const char *machine,
                       const char *bench)
{
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(machine);
        cfg.warmupUops = 0;
        cfg.measureUops = 50000;
        const sim::SimResults r =
            sim::runSimulation(workload::findProfile(bench), cfg);
        benchmark::DoNotOptimize(r.ipc);
        state.SetItemsProcessed(state.items_processed() + 50000);
    }
}
BENCHMARK_CAPTURE(BM_SimulatorThroughput, rr256_gzip, "RR-256", "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorThroughput, wsrs_rc512_gzip, "WSRS-RC-512",
                  "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorThroughput, wsrs_rm512_swim, "WSRS-RM-512",
                  "swim")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Machine-readable throughput tracking (BENCH_sim_throughput.json).
//
// `microbench_components --sim-throughput-json=PATH` skips the google
// benchmarks and instead measures (a) whole-machine simulation throughput
// in micro-ops/second for each Figure-4 preset and (b) the wall-clock of
// the full 12-benchmark x 6-machine sweep, serial versus parallel. The
// JSON feeds scripts/check_throughput.py (ctest label `perf-smoke`) so
// host-performance regressions are caught from this file onward.
// ---------------------------------------------------------------------

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

int
emitThroughputJson(const std::string &path)
{
    const std::uint64_t kWarmup = 20000, kMeasure = 200000;
    const std::uint64_t kSweepWarmup = 10000, kSweepMeasure = 40000;

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
        return 1;
    }

    std::fprintf(out, "{\n  \"schema\": \"wsrs-sim-throughput-v1\",\n");
    std::fprintf(out, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());

    // (a) Single-run simulator throughput per machine preset.
    std::fprintf(out, "  \"single_run\": {\n");
    const auto presets = sim::figure4Presets();
    const auto &profile = workload::findProfile("gzip");
    for (std::size_t i = 0; i < presets.size(); ++i) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(presets[i]);
        cfg.warmupUops = kWarmup;
        cfg.measureUops = kMeasure;
        const auto t0 = std::chrono::steady_clock::now();
        const sim::SimResults r = sim::runSimulation(profile, cfg);
        const double secs = secondsSince(t0);
        const double uops = double(kWarmup) + double(kMeasure);
        std::fprintf(out,
                     "    \"%s\": {\"uops\": %.0f, \"seconds\": %.4f, "
                     "\"uops_per_second\": %.0f}%s\n",
                     presets[i].c_str(), uops, secs, uops / secs,
                     i + 1 < presets.size() ? "," : "");
        benchmark::DoNotOptimize(r.ipc);
    }
    std::fprintf(out, "  },\n");

    // (b) Pipeline-trace overhead A/B on one preset. The four
    // configurations (reference, tracing off, text sink, binary sink —
    // "ref" and "off" are deliberately identical) are measured
    // round-robin interleaved, best of 5, so slow wall-clock drift on a
    // shared host hits all of them equally instead of biasing whichever
    // section ran first. scripts/check_throughput.py --trace-tolerance
    // asserts off stays within tolerance of ref: the tracing-disabled
    // hooks (one null-pointer test per committed micro-op) must be free.
    {
        const char *preset = "WSRS-RC-512";
        struct TraceCfg
        {
            const char *text;
            const char *bin;
            double best = 0;
        };
        TraceCfg cfgs[4] = {
            {"", ""}, {"", ""}, {"/dev/null", ""}, {"", "/dev/null"}};
        // Longer slices and more rounds than the single_run section:
        // ref and off are identical code paths, so the best-of gap is the
        // measurement noise floor, which must sit well under the 2%
        // assertion threshold.
        const std::uint64_t kAbMeasure = 400000;
        for (int rep = 0; rep < 7; ++rep) {
            for (TraceCfg &tc : cfgs) {
                sim::SimConfig cfg;
                cfg.core = sim::findPreset(preset);
                cfg.warmupUops = kWarmup;
                cfg.measureUops = kAbMeasure;
                cfg.tracePipePath = tc.text;
                cfg.tracePipeBinPath = tc.bin;
                const auto t0 = std::chrono::steady_clock::now();
                const sim::SimResults r = sim::runSimulation(profile, cfg);
                benchmark::DoNotOptimize(r.ipc);
                tc.best = std::max(
                    tc.best, (double(kWarmup) + double(kAbMeasure)) /
                                 secondsSince(t0));
            }
        }
        const double ref = cfgs[0].best, off = cfgs[1].best;
        const double text = cfgs[2].best, bin = cfgs[3].best;
        std::fprintf(out,
                     "  \"trace_overhead\": {\"preset\": \"%s\", "
                     "\"best_of\": 7,\n"
                     "    \"ref_uops_per_second\": %.0f, "
                     "\"off_uops_per_second\": %.0f,\n"
                     "    \"text_uops_per_second\": %.0f, "
                     "\"binary_uops_per_second\": %.0f,\n"
                     "    \"text_slowdown\": %.4f, "
                     "\"binary_slowdown\": %.4f},\n",
                     preset, ref, off, text, bin,
                     text > 0 ? ref / text : 0.0,
                     bin > 0 ? ref / bin : 0.0);

        // Host-side wall-time split across the six pipeline-stage calls.
        obs::StageProfiler prof;
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(preset);
        cfg.warmupUops = kWarmup;
        cfg.measureUops = kMeasure;
        cfg.profiler = &prof;
        const sim::SimResults r = sim::runSimulation(profile, cfg);
        benchmark::DoNotOptimize(r.ipc);
        std::ostringstream os;
        prof.dumpJson(os);
        std::fprintf(out, "  \"stage_profile\": %s,\n", os.str().c_str());
    }

    // (c) Full-matrix sweep wall-clock, serial versus parallel runner.
    sim::SimConfig base;
    base.warmupUops = kSweepWarmup;
    base.measureUops = kSweepMeasure;
    const auto jobs = runner::SweepRunner::crossProduct(
        workload::allProfiles(), presets, base);

    runner::SweepRunner::Options serial;
    serial.threads = 1;
    serial.shareTraces = false;  // The pre-runner, regenerate-always path.
    const auto t_serial = std::chrono::steady_clock::now();
    runner::SweepRunner(serial).run(jobs);
    const double serialSecs = secondsSince(t_serial);

    runner::SweepRunner::Options parallel;  // Defaults: all cores, cache.
    const auto t_par = std::chrono::steady_clock::now();
    runner::SweepRunner(parallel).run(jobs);
    const double parSecs = secondsSince(t_par);

    std::fprintf(out,
                 "  \"sweep\": {\"jobs\": %zu, \"uops_per_job\": %llu,\n"
                 "    \"serial_seconds\": %.4f, \"parallel_seconds\": %.4f,"
                 " \"speedup\": %.3f},\n",
                 jobs.size(),
                 static_cast<unsigned long long>(kSweepWarmup +
                                                 kSweepMeasure),
                 serialSecs, parSecs, serialSecs / parSecs);

    // (d) Warm-up checkpoint reuse. A warm-up-heavy matrix (the paper
    // protocol leans the same way: 400k warm-up vs 1M measured) run twice
    // with the parallel runner: once warming every job through the timed
    // core, once building one functional warm-up snapshot per benchmark
    // and restoring it into all six machine configs. check_throughput.py
    // --ckpt-speedup asserts the reuse path stays meaningfully faster.
    {
        const std::uint64_t kCkptWarmup = 40000, kCkptMeasure = 10000;
        sim::SimConfig heavy;
        heavy.warmupUops = kCkptWarmup;
        heavy.measureUops = kCkptMeasure;
        const auto ckptJobs = runner::SweepRunner::crossProduct(
            workload::allProfiles(), presets, heavy);

        runner::SweepRunner::Options noReuse;
        const auto t_cold = std::chrono::steady_clock::now();
        runner::SweepRunner(noReuse).run(ckptJobs);
        const double coldSecs = secondsSince(t_cold);

        runner::SweepRunner::Options reuse;
        reuse.reuseWarmup = true;
        runner::SweepRunner warm(reuse);
        const auto t_warm = std::chrono::steady_clock::now();
        warm.run(ckptJobs);
        const double warmSecs = secondsSince(t_warm);

        std::fprintf(out,
                     "  \"ckpt\": {\"jobs\": %zu, \"warmup_uops\": %llu, "
                     "\"measure_uops\": %llu,\n"
                     "    \"no_reuse_seconds\": %.4f, "
                     "\"reuse_seconds\": %.4f, \"warmup_speedup\": %.3f,\n"
                     "    \"warmup_hits\": %llu, \"warmup_misses\": %llu}\n"
                     "}\n",
                     ckptJobs.size(),
                     static_cast<unsigned long long>(kCkptWarmup),
                     static_cast<unsigned long long>(kCkptMeasure),
                     coldSecs, warmSecs, coldSecs / warmSecs,
                     static_cast<unsigned long long>(
                         warm.telemetry().warmupHits),
                     static_cast<unsigned long long>(
                         warm.telemetry().warmupMisses));
    }
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *flag = "--sim-throughput-json=";
        if (std::strncmp(argv[i], flag, std::strlen(flag)) == 0)
            return emitThroughputJson(argv[i] + std::strlen(flag));
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
