/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's building blocks:
 * trace generation, branch prediction, cache access, and whole-machine
 * simulation throughput (micro-ops per second) for each machine
 * configuration. These track the *host* performance of the simulator
 * itself, not simulated metrics.
 */
#include <benchmark/benchmark.h>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/memory/hierarchy.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

using namespace wsrs;

namespace {

void
BM_TraceGeneration(benchmark::State &state)
{
    workload::TraceGenerator gen(workload::findProfile("gzip"));
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_TwoBcGskewLookupUpdate(benchmark::State &state)
{
    bpred::TwoBcGskew bp;
    XorShiftRng rng(5);
    Addr pc = 0x400000;
    for (auto _ : state) {
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(bp.lookup(pc));
        bp.update(pc, taken);
        pc = 0x400000 + (rng.next() & 0x3ff) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoBcGskewLookupUpdate);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    StatGroup stats("bm");
    memory::MemoryHierarchy mem(memory::HierarchyParams{}, stats);
    XorShiftRng rng(11);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = 8 * rng.below(1 << 16);
        benchmark::DoNotOptimize(mem.access(a, false, now++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_SimulatorThroughput(benchmark::State &state, const char *machine,
                       const char *bench)
{
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(machine);
        cfg.warmupUops = 0;
        cfg.measureUops = 50000;
        const sim::SimResults r =
            sim::runSimulation(workload::findProfile(bench), cfg);
        benchmark::DoNotOptimize(r.ipc);
        state.SetItemsProcessed(state.items_processed() + 50000);
    }
}
BENCHMARK_CAPTURE(BM_SimulatorThroughput, rr256_gzip, "RR-256", "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorThroughput, wsrs_rc512_gzip, "WSRS-RC-512",
                  "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorThroughput, wsrs_rm512_swim, "WSRS-RM-512",
                  "swim")
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
