/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's building blocks:
 * trace generation, branch prediction, cache access, and whole-machine
 * simulation throughput (micro-ops per second) for each machine
 * configuration. These track the *host* performance of the simulator
 * itself, not simulated metrics.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/core/cluster_alloc.h"
#include "src/core/phys_regfile.h"
#include "src/isa/micro_op.h"
#include "src/memory/hierarchy.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_log.h"
#include "src/obs/stage_profiler.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

using namespace wsrs;

namespace {

void
BM_TraceGeneration(benchmark::State &state)
{
    workload::TraceGenerator gen(workload::findProfile("gzip"));
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_TwoBcGskewLookupUpdate(benchmark::State &state)
{
    bpred::TwoBcGskew bp;
    XorShiftRng rng(5);
    Addr pc = 0x400000;
    for (auto _ : state) {
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(bp.lookup(pc));
        bp.update(pc, taken);
        pc = 0x400000 + (rng.next() & 0x3ff) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoBcGskewLookupUpdate);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    StatGroup stats("bm");
    memory::MemoryHierarchy mem(memory::HierarchyParams{}, stats);
    XorShiftRng rng(11);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = 8 * rng.below(1 << 16);
        benchmark::DoNotOptimize(mem.access(a, false, now++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_SimulatorThroughput(benchmark::State &state, const char *machine,
                       const char *bench)
{
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(machine);
        cfg.warmupUops = 0;
        cfg.measureUops = 50000;
        const sim::SimResults r =
            sim::runSimulation(workload::findProfile(bench), cfg);
        benchmark::DoNotOptimize(r.ipc);
        state.SetItemsProcessed(state.items_processed() + 50000);
    }
}
BENCHMARK_CAPTURE(BM_SimulatorThroughput, rr256_gzip, "RR-256", "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorThroughput, wsrs_rc512_gzip, "WSRS-RC-512",
                  "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorThroughput, wsrs_rm512_swim, "WSRS-RM-512",
                  "swim")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Per-structure microbenchmarks for the hot-loop layouts, so a perf-smoke
// regression is attributable below the pipeline-stage level: the ROB
// window scan over the packed SoA metadata record vs the old
// one-big-struct layout, the fixed-capacity recycler ring vs the
// std::deque it replaced, and the interned WSRS placement table vs
// re-deriving the legal (cluster, swapped) set per micro-op.
// ---------------------------------------------------------------------

/** Hot ROB metadata exactly as packed in Core's window (12 bytes). */
struct RobMetaBench
{
    std::uint8_t state, waitClass, cluster, flags;
    std::uint8_t cls;
    std::uint16_t psrc1, psrc2, pdst;
};

/** Seed-style AoS entry: the same hot fields buried in the full record. */
struct RobEntryAosBench
{
    std::uint8_t state, waitClass, cluster, flags;
    std::uint8_t cls;
    std::uint16_t psrc1, psrc2, pdst;
    std::uint64_t readyCycle, completeCycle;
    std::uint64_t pc, effAddr, memOrdinal;
    std::uint64_t seq, value, target;  // cold commit/dataflow payload
};

template <typename Entry>
void
robScanBench(benchmark::State &state)
{
    // 64 x 512-entry windows: the metadata stream stays L2-resident under
    // the packed 12-byte record (~384 KiB) but busts it under the full
    // AoS record (~3.3 MiB) — the cache-footprint gap that motivated the
    // hot/cold split, at a working set the parallel sweep actually has
    // (one window per in-flight job).
    constexpr std::size_t kEntries = 64 * 512;
    std::vector<Entry> rob(kEntries);
    std::uint64_t x = 0x2545f4914f6cdd1d;
    for (Entry &e : rob) {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        e.state = x & 3;
        e.cluster = (x >> 2) & 3;
    }
    // The wakeup/issue-era scan shape: walk every slot, test the state
    // byte, touch the operand fields of the matching ones.
    for (auto _ : state) {
        unsigned woken = 0;
        for (Entry &e : rob) {
            if (e.state == 1) {
                e.psrc1 = static_cast<std::uint16_t>(woken);
                e.state = 2;
                ++woken;
            } else if (e.state == 2) {
                e.state = 1;
            }
        }
        benchmark::DoNotOptimize(woken);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kEntries));
}

void
BM_RobScanSoa(benchmark::State &state)
{
    robScanBench<RobMetaBench>(state);
}
BENCHMARK(BM_RobScanSoa);

void
BM_RobScanAos(benchmark::State &state)
{
    robScanBench<RobEntryAosBench>(state);
}
BENCHMARK(BM_RobScanAos);

void
BM_RecyclerRing(benchmark::State &state)
{
    // The shipped layout: a fixed-capacity power-of-two ring with
    // mask-and-store push/pop (mirrors PhysRegFile's recycler, minus the
    // always-on constraint checks so both arms compare pure structure
    // cost).
    struct E
    {
        Cycle availableAt;
        PhysReg reg;
    };
    std::vector<std::vector<PhysReg>> freeLists(4);
    for (unsigned s = 0; s < 4; ++s)
        for (unsigned i = 0; i < 128; ++i)
            freeLists[s].push_back(static_cast<PhysReg>(s * 128 + i));
    std::vector<E> ring(1024);
    const std::size_t mask = ring.size() - 1;
    std::size_t head = 0, size = 0;
    Cycle now = 0;
    for (auto _ : state) {
        for (unsigned s = 0; s < 4; ++s) {
            const PhysReg p = freeLists[s].back();
            freeLists[s].pop_back();
            ring[(head + size) & mask] = {now + 2, p};
            ++size;
        }
        while (size > 0 && ring[head].availableAt <= now) {
            const PhysReg p = ring[head].reg;
            head = (head + 1) & mask;
            --size;
            freeLists[p / 128].push_back(p);
        }
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 4));
}
BENCHMARK(BM_RecyclerRing);

void
BM_RecyclerDeque(benchmark::State &state)
{
    // Reference: the seed's std::deque recycler over identical free-list
    // traffic (allocator churn included — that is the point).
    struct E
    {
        Cycle availableAt;
        PhysReg reg;
    };
    std::vector<std::vector<PhysReg>> freeLists(4);
    for (unsigned s = 0; s < 4; ++s)
        for (unsigned i = 0; i < 128; ++i)
            freeLists[s].push_back(static_cast<PhysReg>(s * 128 + i));
    std::deque<E> recycler;
    Cycle now = 0;
    for (auto _ : state) {
        for (unsigned s = 0; s < 4; ++s) {
            const PhysReg p = freeLists[s].back();
            freeLists[s].pop_back();
            recycler.push_back({now + 2, p});
        }
        while (!recycler.empty() && recycler.front().availableAt <= now) {
            const PhysReg p = recycler.front().reg;
            recycler.pop_front();
            freeLists[p / 128].push_back(p);
        }
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 4));
}
BENCHMARK(BM_RecyclerDeque);

/** Deterministic micro-op / operand-subset stream shared by both arms. */
std::uint64_t
nextAllocCase(std::uint64_t x, isa::MicroOp &op, core::AllocContext &ctx)
{
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const unsigned arity = (x & 15) < 10 ? 2 : ((x & 15) < 14 ? 1 : 0);
    op.src1 = arity >= 1 ? static_cast<LogReg>(1) : kNoLogReg;
    op.src2 = arity >= 2 ? static_cast<LogReg>(2) : kNoLogReg;
    op.commutative = (x & 16) != 0;
    ctx.src1Subset = static_cast<SubsetId>((x >> 5) & 3);
    ctx.src2Subset = static_cast<SubsetId>((x >> 7) & 3);
    return x;
}

void
BM_WsrsOptionsInterned(benchmark::State &state)
{
    // Shipped path: single indexed load from the 96-entry table interned
    // at construction.
    core::ClusterAllocator alloc(sim::findPreset("WSRS-RC-512"));
    isa::MicroOp op;
    core::AllocContext ctx;
    std::uint64_t x = 0x9e3779b97f4a7c15;
    for (auto _ : state) {
        x = nextAllocCase(x, op, ctx);
        unsigned count = 0;
        const auto opts = alloc.wsrsOptions(op, ctx, count);
        benchmark::DoNotOptimize(opts);
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WsrsOptionsInterned);

void
BM_WsrsOptionsRecomputed(benchmark::State &state)
{
    // Reference: the defining per-micro-op derivation the table replaced
    // (mirrors ClusterAllocator::computeWsrsOptions for commutative FUs).
    isa::MicroOp op;
    core::AllocContext ctx;
    std::uint64_t x = 0x9e3779b97f4a7c15;
    for (auto _ : state) {
        x = nextAllocCase(x, op, ctx);
        std::array<core::AllocDecision, 4> opts{};
        unsigned count = 0;
        if (op.isDyadic()) {
            opts[count++] = {core::wsrsCluster(ctx.src1Subset,
                                               ctx.src2Subset), false};
            if (ctx.src1Subset != ctx.src2Subset)
                opts[count++] = {core::wsrsCluster(ctx.src2Subset,
                                                   ctx.src1Subset), true};
        } else if (op.isMonadic()) {
            const SubsetId s = ctx.src1Subset;
            opts[count++] = {static_cast<ClusterId>((s & 2) | 0), false};
            opts[count++] = {static_cast<ClusterId>((s & 2) | 1), false};
            const ClusterId a = static_cast<ClusterId>(0 | (s & 1));
            const ClusterId b = static_cast<ClusterId>(2 | (s & 1));
            const ClusterId distinct =
                ((a >> 1) == ((s & 2) >> 1)) ? b : a;
            opts[count++] = {distinct, true};
        } else {
            for (ClusterId c = 0; c < 4; ++c)
                opts[count++] = {c, false};
        }
        benchmark::DoNotOptimize(opts);
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WsrsOptionsRecomputed);

// ---------------------------------------------------------------------
// Machine-readable throughput tracking (BENCH_sim_throughput.json).
//
// `microbench_components --sim-throughput-json=PATH` skips the google
// benchmarks and instead measures (a) whole-machine simulation throughput
// in micro-ops/second for each Figure-4 preset and (b) the wall-clock of
// the full 12-benchmark x 6-machine sweep, serial versus parallel. The
// JSON feeds scripts/check_throughput.py (ctest label `perf-smoke`) so
// host-performance regressions are caught from this file onward.
// ---------------------------------------------------------------------

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Median of per-round arm/reference throughput ratios. The A/B gates
 * compare arms measured back-to-back within each round, so a host
 * noise spike inflates or deflates both sides of a round's ratio
 * roughly equally and cancels; the median then discards the rounds
 * where it didn't. Far more stable on shared hosts than comparing
 * each arm's independent best-of, where one lucky reference round
 * fails the gate.
 */
double
medianPairedRatio(std::vector<double> ratios)
{
    std::sort(ratios.begin(), ratios.end());
    const std::size_t n = ratios.size();
    return n % 2 ? ratios[n / 2]
                 : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
}

int
emitThroughputJson(const std::string &path)
{
    const std::uint64_t kWarmup = 20000, kMeasure = 200000;
    const std::uint64_t kSweepWarmup = 10000, kSweepMeasure = 40000;

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
        return 1;
    }

    std::fprintf(out, "{\n  \"schema\": \"wsrs-sim-throughput-v1\",\n");
#ifdef WSRS_BUILD_TYPE
    std::fprintf(out, "  \"build_type\": \"%s\",\n", WSRS_BUILD_TYPE);
#endif
    std::fprintf(out, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());

    // (a) Single-run simulator throughput per machine preset.
    std::fprintf(out, "  \"single_run\": {\n");
    const auto presets = sim::figure4Presets();
    const auto &profile = workload::findProfile("gzip");
    for (std::size_t i = 0; i < presets.size(); ++i) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(presets[i]);
        cfg.warmupUops = kWarmup;
        cfg.measureUops = kMeasure;
        const auto t0 = std::chrono::steady_clock::now();
        const sim::SimResults r = sim::runSimulation(profile, cfg);
        const double secs = secondsSince(t0);
        const double uops = double(kWarmup) + double(kMeasure);
        std::fprintf(out,
                     "    \"%s\": {\"uops\": %.0f, \"seconds\": %.4f, "
                     "\"uops_per_second\": %.0f}%s\n",
                     presets[i].c_str(), uops, secs, uops / secs,
                     i + 1 < presets.size() ? "," : "");
        benchmark::DoNotOptimize(r.ipc);
    }
    std::fprintf(out, "  },\n");

    // (b) Pipeline-trace overhead A/B on one preset. The four
    // configurations (reference, tracing off, text sink, binary sink —
    // "ref" and "off" are deliberately identical) are measured
    // round-robin interleaved, best of 5, so slow wall-clock drift on a
    // shared host hits all of them equally instead of biasing whichever
    // section ran first. scripts/check_throughput.py --trace-tolerance
    // asserts off stays within tolerance of ref: the tracing-disabled
    // hooks (one null-pointer test per committed micro-op) must be free.
    {
        const char *preset = "WSRS-RC-512";
        struct TraceCfg
        {
            const char *text;
            const char *bin;
            double best = 0;
        };
        TraceCfg cfgs[4] = {
            {"", ""}, {"", ""}, {"/dev/null", ""}, {"", "/dev/null"}};
        // Longer slices than the single_run section: ref and off are
        // identical code paths, so their measured gap is pure noise,
        // which must sit well under the 2% assertion threshold. The
        // gate compares the median of within-round off/ref ratios
        // (medianPairedRatio) rather than each arm's independent
        // best-of; best_of throughputs are still emitted for the
        // human-readable report.
        const std::uint64_t kAbMeasure = 800000;
        std::vector<double> offRatios;
        for (int rep = 0; rep < 8; ++rep) {
            double roundTput[4] = {};
            for (int slot = 0; slot < 4; ++slot) {
                // Alternate which of ref/off runs first: the first arm
                // after the slow I/O-bound sinks of the previous round
                // sees a measurably friendlier machine (turbo/thermal
                // recovery), a position bias the paired ratio would
                // otherwise report as systematic overhead.
                const int i =
                    slot < 2 ? (rep % 2 ? 1 - slot : slot) : slot;
                TraceCfg &tc = cfgs[i];
                sim::SimConfig cfg;
                cfg.core = sim::findPreset(preset);
                cfg.warmupUops = kWarmup;
                cfg.measureUops = kAbMeasure;
                cfg.tracePipePath = tc.text;
                cfg.tracePipeBinPath = tc.bin;
                const auto t0 = std::chrono::steady_clock::now();
                const sim::SimResults r = sim::runSimulation(profile, cfg);
                benchmark::DoNotOptimize(r.ipc);
                roundTput[i] = (double(kWarmup) + double(kAbMeasure)) /
                               secondsSince(t0);
                tc.best = std::max(tc.best, roundTput[i]);
            }
            offRatios.push_back(roundTput[1] / roundTput[0]);
        }

        const double ref = cfgs[0].best, off = cfgs[1].best;
        const double text = cfgs[2].best, bin = cfgs[3].best;
        std::fprintf(out,
                     "  \"trace_overhead\": {\"preset\": \"%s\", "
                     "\"best_of\": 8,\n"
                     "    \"ref_uops_per_second\": %.0f, "
                     "\"off_uops_per_second\": %.0f, "
                     "\"off_paired_ratio\": %.4f,\n"
                     "    \"text_uops_per_second\": %.0f, "
                     "\"binary_uops_per_second\": %.0f,\n"
                     "    \"text_slowdown\": %.4f, "
                     "\"binary_slowdown\": %.4f},\n",
                     preset, ref, off, medianPairedRatio(offRatios),
                     text, bin,
                     text > 0 ? ref / text : 0.0,
                     bin > 0 ? ref / bin : 0.0);

        // Host-side wall-time split across the six pipeline-stage calls.
        obs::StageProfiler prof;
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(preset);
        cfg.warmupUops = kWarmup;
        cfg.measureUops = kMeasure;
        cfg.profiler = &prof;
        const sim::SimResults r = sim::runSimulation(profile, cfg);
        benchmark::DoNotOptimize(r.ipc);
        std::ostringstream os;
        prof.dumpJson(os);
        std::fprintf(out, "  \"stage_profile\": %s,\n", os.str().c_str());
    }

    // (b') Sweep telemetry overhead A/B. Three arms over an identical
    // small sweep, round-robin interleaved: reference and "off" are
    // deliberately identical (null metrics/span pointers in the runner
    // options — the shipped default), so their gap is the noise floor;
    // "on" wires a MetricsRegistry and SpanLog in.
    // scripts/check_throughput.py --metrics-tolerance asserts both off
    // AND on stay within tolerance of ref via the same paired-median
    // estimator as the trace gate: the disabled hooks (one null-pointer
    // test per job stage) must be free, and even enabled telemetry (a
    // handful of relaxed atomics and span records per job, nothing per
    // micro-op) must stay under 2%. The arms run the *serial* runner:
    // the hooks under test fire identically per job regardless of
    // thread count, and the parallel runner's scheduling jitter
    // (several percent between identical arms on a shared host) would
    // drown the effect being gated.
    {
        sim::SimConfig abBase;
        abBase.warmupUops = 5000;
        abBase.measureUops = 45000;
        const auto abJobs = runner::SweepRunner::crossProduct(
            workload::allProfiles(), {"RR-256", "WSRS-RC-512"}, abBase);
        const double abUops =
            double(abJobs.size()) * double(abBase.warmupUops +
                                           abBase.measureUops);
        obs::MetricsRegistry registry;
        struct TelemetryArm
        {
            bool enabled;
            double best = 0;
        };
        TelemetryArm arms[3] = {{false}, {false}, {true}};
        std::vector<double> offRatios, onRatios;
        for (int rep = 0; rep < 9; ++rep) {
            double roundTput[3] = {};
            for (int slot = 0; slot < 3; ++slot) {
                // Rotate the arm order per round (9 reps = each arm in
                // each position 3 times) so run-position bias cancels
                // out of the paired ratios, as in the trace A/B above.
                const int i = (slot + rep) % 3;
                obs::SpanLog spanLog;
                runner::SweepRunner::Options opt;
                opt.threads = 1;
                if (arms[i].enabled) {
                    opt.metrics = &registry;
                    opt.spans = &spanLog;
                }
                const auto t0 = std::chrono::steady_clock::now();
                runner::SweepRunner(opt).run(abJobs);
                roundTput[i] = abUops / secondsSince(t0);
                arms[i].best = std::max(arms[i].best, roundTput[i]);
            }
            offRatios.push_back(roundTput[1] / roundTput[0]);
            onRatios.push_back(roundTput[2] / roundTput[0]);
        }
        const double ref = arms[0].best, off = arms[1].best;
        const double on = arms[2].best;
        std::fprintf(out,
                     "  \"metrics_overhead\": {\"jobs\": %zu, "
                     "\"best_of\": 9,\n"
                     "    \"ref_uops_per_second\": %.0f, "
                     "\"off_uops_per_second\": %.0f, "
                     "\"on_uops_per_second\": %.0f,\n"
                     "    \"off_paired_ratio\": %.4f, "
                     "\"on_paired_ratio\": %.4f},\n",
                     abJobs.size(), ref, off, on,
                     medianPairedRatio(offRatios),
                     medianPairedRatio(onRatios));
    }

    // (c) Full-matrix sweep wall-clock, serial versus parallel runner.
    sim::SimConfig base;
    base.warmupUops = kSweepWarmup;
    base.measureUops = kSweepMeasure;
    const auto jobs = runner::SweepRunner::crossProduct(
        workload::allProfiles(), presets, base);

    runner::SweepRunner::Options serial;
    serial.threads = 1;
    serial.shareTraces = false;  // The pre-runner, regenerate-always path.
    const auto t_serial = std::chrono::steady_clock::now();
    runner::SweepRunner(serial).run(jobs);
    const double serialSecs = secondsSince(t_serial);

    runner::SweepRunner::Options parallel;  // Defaults: all cores, cache.
    const auto t_par = std::chrono::steady_clock::now();
    runner::SweepRunner(parallel).run(jobs);
    const double parSecs = secondsSince(t_par);

    std::fprintf(out,
                 "  \"sweep\": {\"jobs\": %zu, \"uops_per_job\": %llu,\n"
                 "    \"serial_seconds\": %.4f, \"parallel_seconds\": %.4f,"
                 " \"speedup\": %.3f},\n",
                 jobs.size(),
                 static_cast<unsigned long long>(kSweepWarmup +
                                                 kSweepMeasure),
                 serialSecs, parSecs, serialSecs / parSecs);

    // (d) Warm-up checkpoint reuse. A warm-up-heavy matrix (the paper
    // protocol leans the same way: 400k warm-up vs 1M measured) run twice
    // with the parallel runner: once warming every job through the timed
    // core, once building one functional warm-up snapshot per benchmark
    // and restoring it into all six machine configs. check_throughput.py
    // --ckpt-speedup asserts the reuse path stays meaningfully faster.
    {
        const std::uint64_t kCkptWarmup = 40000, kCkptMeasure = 10000;
        sim::SimConfig heavy;
        heavy.warmupUops = kCkptWarmup;
        heavy.measureUops = kCkptMeasure;
        const auto ckptJobs = runner::SweepRunner::crossProduct(
            workload::allProfiles(), presets, heavy);

        runner::SweepRunner::Options noReuse;
        const auto t_cold = std::chrono::steady_clock::now();
        runner::SweepRunner(noReuse).run(ckptJobs);
        const double coldSecs = secondsSince(t_cold);

        runner::SweepRunner::Options reuse;
        reuse.reuseWarmup = true;
        runner::SweepRunner warm(reuse);
        const auto t_warm = std::chrono::steady_clock::now();
        warm.run(ckptJobs);
        const double warmSecs = secondsSince(t_warm);

        std::fprintf(out,
                     "  \"ckpt\": {\"jobs\": %zu, \"warmup_uops\": %llu, "
                     "\"measure_uops\": %llu,\n"
                     "    \"no_reuse_seconds\": %.4f, "
                     "\"reuse_seconds\": %.4f, \"warmup_speedup\": %.3f,\n"
                     "    \"warmup_hits\": %llu, \"warmup_misses\": %llu}\n"
                     "}\n",
                     ckptJobs.size(),
                     static_cast<unsigned long long>(kCkptWarmup),
                     static_cast<unsigned long long>(kCkptMeasure),
                     coldSecs, warmSecs, coldSecs / warmSecs,
                     static_cast<unsigned long long>(
                         warm.telemetry().warmupHits),
                     static_cast<unsigned long long>(
                         warm.telemetry().warmupMisses));
    }
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *flag = "--sim-throughput-json=";
        if (std::strncmp(argv[i], flag, std::strlen(flag)) == 0)
            return emitThroughputJson(argv[i] + std::strlen(flag));
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
