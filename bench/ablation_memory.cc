/**
 * @file
 * Ablation A10 — memory-system sensitivity.
 *
 * The paper's Table-3 hierarchy is generously idealized (unlimited
 * outstanding misses, no prefetching, true LRU). This harness varies the
 * memory system along three axes — MSHR count, replacement policy, and a
 * simple next-line prefetcher — and checks that the machine comparison
 * (RR vs WSRS) is insensitive to them, i.e. the paper's conclusion does
 * not hinge on the memory idealizations.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

double
run(const char *bench, const char *machine,
    const memory::HierarchyParams &mem)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = sim::findPreset(machine);
    cfg.mem = mem;
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 250000);
    return sim::runSimulation(workload::findProfile(bench), cfg).ipc;
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A10",
                      "memory system: MSHRs / replacement / prefetch");

    struct Variant
    {
        const char *label;
        memory::HierarchyParams mem;
    };
    std::vector<Variant> variants;
    variants.push_back({"paper (ideal MSHRs, LRU)", {}});
    {
        memory::HierarchyParams m;
        m.mshrs = 8;
        variants.push_back({"8 MSHRs", m});
    }
    {
        memory::HierarchyParams m;
        m.mshrs = 2;
        variants.push_back({"2 MSHRs", m});
    }
    {
        memory::HierarchyParams m;
        m.l1.replacement = memory::ReplacementPolicy::TreePlru;
        m.l2.replacement = memory::ReplacementPolicy::TreePlru;
        variants.push_back({"tree-PLRU caches", m});
    }
    {
        memory::HierarchyParams m;
        m.l1.replacement = memory::ReplacementPolicy::Random;
        m.l2.replacement = memory::ReplacementPolicy::Random;
        variants.push_back({"random replacement", m});
    }
    {
        memory::HierarchyParams m;
        m.prefetchDepth = 2;
        variants.push_back({"next-2-line prefetch", m});
    }

    for (const char *bench : {"swim", "mcf", "gzip"}) {
        std::printf("\n%s\n%-26s %10s %12s %8s\n", bench, "memory system",
                    "RR-256", "WSRS-RC-512", "delta");
        for (const Variant &v : variants) {
            const double rr = run(bench, "RR-256", v.mem);
            const double ws = run(bench, "WSRS-RC-512", v.mem);
            std::printf("%-26s %10.3f %12.3f %7.1f%%\n", v.label, rr, ws,
                        100.0 * (ws - rr) / rr);
        }
    }
    std::printf(
        "\nShape: tight MSHRs hurt the memory-bound codes on both\n"
        "machines alike; replacement and prefetching shift absolute IPC\n"
        "but the RR-vs-WSRS delta stays within a few points — the\n"
        "paper's memory idealizations are benign for its comparison.\n");
    return 0;
}
