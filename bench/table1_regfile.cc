/**
 * @file
 * Reproduces Table 1: register-file estimates for the five architecture
 * configurations (noWS-M, noWS-D, WS, WSRS, noWS-2).
 *
 * Every row is *computed* from the structural organization descriptors and
 * the calibrated CACTI-style model, not transcribed: the bit-area row uses
 * the exact formula (1); pipeline cycles and bypass sources derive from the
 * modeled access times.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/rfmodel/regfile_model.h"

using namespace wsrs;
using namespace wsrs::rfmodel;

int
main()
{
    benchutil::banner("Table 1",
                      "register file estimates for architecture configs");

    const RegFileModel model;
    const std::vector<RegFileOrg> orgs = table1Organizations();
    const RegFileOrg reference = makeNoWs2Cluster();

    auto row = [&](const char *label, auto getter) {
        std::printf("%-34s", label);
        for (const auto &org : orgs)
            getter(org);
        std::printf("\n");
    };

    std::printf("%-34s", "");
    for (const auto &org : orgs)
        std::printf("%10s", org.name.c_str());
    std::printf("\n");

    row("nb of registers", [&](const RegFileOrg &o) {
        std::printf("%10u", o.totalRegs);
    });
    row("register copies", [&](const RegFileOrg &o) {
        std::printf("%10u", o.copiesPerReg);
    });
    row("(R,W) ports per copy", [&](const RegFileOrg &o) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "(%u,%u)", o.portsPerCopy.reads,
                      o.portsPerCopy.writes);
        std::printf("%10s", buf);
    });
    row("physical subfiles", [&](const RegFileOrg &o) {
        std::printf("%10u", o.numSubfiles);
    });
    row("nJ/cycle", [&](const RegFileOrg &o) {
        std::printf("%10.2f", model.energyNJPerCycle(o));
    });
    row("Access time (ns)", [&](const RegFileOrg &o) {
        std::printf("%10.2f", model.accessTimeNs(o));
    });
    row("Pipeline cycles: 10 GHz", [&](const RegFileOrg &o) {
        std::printf("%10u", model.pipelineCycles(o, 10.0));
    });
    row("sources per bypass point: 10 GHz", [&](const RegFileOrg &o) {
        std::printf("%10u", model.bypassSources(o, 10.0));
    });
    row("Pipeline cycles: 5 GHz", [&](const RegFileOrg &o) {
        std::printf("%10u", model.pipelineCycles(o, 5.0));
    });
    row("sources per bypass point: 5 GHz", [&](const RegFileOrg &o) {
        std::printf("%10u", model.bypassSources(o, 5.0));
    });
    row("Reg. bit area (x w^2)", [&](const RegFileOrg &o) {
        std::printf("%10.0f", model.bitArea(o));
    });
    row("total area / area noWS-2", [&](const RegFileOrg &o) {
        std::printf("%10.2f", model.totalArea(o) / model.totalArea(reference));
    });

    std::printf("\nPaper values for reference:\n");
    std::printf("  nJ/cycle            3.20  2.90  1.70  1.25  0.63\n");
    std::printf("  access time (ns)    0.71  0.52  0.40  0.35  0.34\n");
    std::printf("  cycles@10GHz        8     6     5     4     4\n");
    std::printf("  bypass@10GHz        97    73    61    25    25\n");
    std::printf("  cycles@5GHz         5     4     3     3     3\n");
    std::printf("  bypass@5GHz         61    49    37    19    19\n");
    std::printf("  bit area (w^2)      1120  1792  280   140   320\n");
    std::printf("  total area ratio    7     11.2  3.50  1.75  1\n");
    return 0;
}
