/**
 * @file
 * Ablation A4 — allocation-policy study, including the paper's announced
 * future work (section 5.4.2): a dynamic policy trading off allocation of
 * dependent instructions within a cluster against local workload
 * balancing (our DependenceAware policy).
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

sim::SimResults
run(const char *bench, const char *machine)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = sim::findPreset(machine);
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 250000);
    return sim::runSimulation(workload::findProfile(bench), cfg);
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A4",
                      "WSRS allocation policies: RM / RC / "
                      "dependence-aware (paper future work)");

    std::printf("%-10s %22s %22s %22s\n", "", "WSRS-RM-512",
                "WSRS-RC-512", "WSRS-DEP-512");
    std::printf("%-10s %10s %11s %10s %11s %10s %11s\n", "bench", "IPC",
                "unbal%", "IPC", "unbal%", "IPC", "unbal%");
    for (const auto &p : workload::allProfiles()) {
        std::printf("%-10s", p.name.c_str());
        for (const char *m :
             {"WSRS-RM-512", "WSRS-RC-512", "WSRS-DEP-512"}) {
            const sim::SimResults r = run(p.name.c_str(), m);
            std::printf(" %10.3f %11.1f", r.ipc, r.unbalancingDegree);
        }
        std::printf("\n");
    }
    std::printf(
        "\nShape: RC >= RM (more freedom); the dependence-aware policy\n"
        "trades balance for producer locality — the paper predicted such\n"
        "policies as the next step beyond RM/RC.\n");
    return 0;
}
