/**
 * @file
 * Reproduces the Section 4.3 complexity discussion as a table: wake-up
 * comparators per entry (and total), relative wake-up delay (calibrated
 * to [14]'s 46% growth from 4 to 8 sources), selection-tree depth, and
 * bypass-point sources for each machine organization — including the
 * Section-7 7-cluster extension.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/cxmodel/rename_model.h"
#include "src/cxmodel/wakeup_model.h"

using namespace wsrs;
using namespace wsrs::cxmodel;

int
main()
{
    benchutil::banner("Section 4.3",
                      "wake-up / selection / bypass complexity");

    std::printf("%-16s %6s %9s %11s %11s %9s %8s\n", "machine", "width",
                "cmp/entry", "total cmp", "rel. delay", "sel.depth",
                "bypass");
    for (const SchedulerOrg &org : section43Organizations()) {
        std::printf("%-16s %6u %9u %11u %11.2f %9u %8u\n",
                    org.name.c_str(), org.issueWidth,
                    comparatorsPerEntry(org), totalComparators(org),
                    relativeWakeupDelay(org), selectionTreeDepth(org),
                    bypassSources(org));
    }

    std::printf("\nRenaming hardware (sections 2.2 / 3.2 / 4.1):\n");
    std::printf("%-14s %8s %8s %6s %10s %9s %7s %9s\n", "machine",
                "mapR", "mapW", "lists", "pops/cyc", "recycler",
                "stages", "trackBits");
    for (const RenameComplexity &r : renameComplexityTable()) {
        std::printf("%-14s %8u %8u %6u %10u %9u %7u %9u\n",
                    r.name.c_str(), r.mapReadPorts, r.mapWritePorts,
                    r.freeLists, r.freeListPopsPerCycle,
                    r.recyclerEntries, r.extraStages,
                    r.subsetTrackerBits);
    }

    std::printf(
        "\nPaper claims checked:\n"
        " - WSRS 8-way wake-up entry == conventional 4-way entry "
        "(12 comparators);\n"
        " - half the conventional 8-way machine's 24 comparators/entry;\n"
        " - doubling visible producers 4 -> 8 costs 46%% wake-up delay "
        "(from [14]);\n"
        " - the 7-cluster extension (14-way) keeps 2-cluster-level "
        "entries and\n   bypass points.\n");
    return 0;
}
