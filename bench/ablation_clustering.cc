/**
 * @file
 * Ablation A8 — the clustering premise.
 *
 * The paper's opening argument: a monolithic wide machine has the best
 * IPC but its register file / bypass / wake-up cannot reach high clock
 * frequencies (Table 1: 0.71 ns access vs 0.34 ns), so wide-issue designs
 * cluster and pay an IPC tax. This harness measures the equal-frequency
 * IPC ladder — monolithic 8-way, clustered 8-way, WSRS 8-way, and the
 * 4-way 2-cluster reference — then combines it with the Table-1 access
 * times into a frequency-adjusted performance estimate (IPC / access
 * time), which is the quantity the paper is implicitly optimizing.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/rfmodel/regfile_model.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

double
run(const char *bench, const char *machine)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = sim::findPreset(machine);
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 250000);
    return sim::runSimulation(workload::findProfile(bench), cfg).ipc;
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A8",
                      "monolithic vs clustered vs WSRS (equal frequency, "
                      "then frequency-adjusted)");

    const rfmodel::RegFileModel model;
    const struct
    {
        const char *machine;
        rfmodel::RegFileOrg org;
    } rows[] = {
        {"MONO-256", rfmodel::makeNoWsMonolithic()},
        {"RR-256", rfmodel::makeNoWsDistributed()},
        {"WSRS-RC-512", rfmodel::makeWsrs()},
        {"RR4W-128", rfmodel::makeNoWs2Cluster()},
    };

    for (const char *bench : {"gzip", "crafty", "mgrid", "facerec"}) {
        std::printf("\n%s\n%-14s %10s %12s %16s\n", bench, "machine",
                    "IPC", "RF t (ns)", "IPC/t (perf.)");
        double best = 0;
        for (const auto &row : rows) {
            const double ipc = run(bench, row.machine);
            const double t = model.accessTimeNs(row.org);
            const double perf = ipc / t;
            best = std::max(best, perf);
            std::printf("%-14s %10.3f %12.2f %16.1f\n", row.machine, ipc,
                        t, perf);
        }
    }
    std::printf(
        "\nShape: even at equal frequency the monolithic machine does not\n"
        "dominate — its huge register file costs an extra read stage\n"
        "(deeper misprediction penalty) that eats the bypass advantage;\n"
        "and dividing by the register-file access time — a first-order\n"
        "frequency proxy — puts WSRS clearly ahead, which is the paper's\n"
        "complexity-effectiveness argument.\n");
    return 0;
}
