/**
 * @file
 * Ablation A2 — fast-forwarding scope (paper section 4.3.1).
 *
 * The paper lists three hardware options of increasing cost: forwarding
 * within a single cluster (baseline), within adjacent cluster pairs, and
 * complete same-cycle forwarding, and argues the WSRS layout makes the
 * wider options cheaper because consumers statistically sit closer to
 * their producers. This harness measures all three scopes on both the
 * conventional and the WSRS machine.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

double
run(const char *bench, const char *machine, core::FastForwardScope scope)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = sim::findPreset(machine);
    cfg.core.ffScope = scope;
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 300000);
    return sim::runSimulation(workload::findProfile(bench), cfg).ipc;
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A2",
                      "fast-forwarding scope: intra-cluster / adjacent "
                      "pair / complete");

    std::printf("%-10s %32s %32s\n", "", "RR-256", "WSRS-RC-512");
    std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "bench", "intra",
                "adjacent", "complete", "intra", "adjacent", "complete");
    for (const char *bench :
         {"gzip", "crafty", "mcf", "swim", "facerec"}) {
        std::printf("%-10s", bench);
        for (const char *machine : {"RR-256", "WSRS-RC-512"}) {
            for (const core::FastForwardScope scope :
                 {core::FastForwardScope::IntraCluster,
                  core::FastForwardScope::AdjacentPair,
                  core::FastForwardScope::Complete}) {
                std::printf(" %10.3f", run(bench, machine, scope));
            }
        }
        std::printf("\n");
    }
    std::printf(
        "\nPaper shape: wider forwarding never hurts; the gain from\n"
        "intra -> complete bounds what the paper's layout argument can\n"
        "buy. On WSRS the residual gain is smaller because allocation\n"
        "already places consumers near producers (2 of 4 candidate\n"
        "clusters vs 1 of 4 conventionally).\n");
    return 0;
}
