/**
 * @file
 * Reproduces Table 2: latencies of the principal instruction classes.
 *
 * Beyond echoing the configuration, the harness *measures* the effective
 * producer-to-consumer latency of each class inside the simulator: a
 * dependent pair in the same cluster must be able to issue exactly
 * `latency` cycles apart (fast-forwarding), one more across clusters.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/isa/op_class.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

/**
 * Measure committed-IPC sensitivity to operation latency: two profiles
 * that generate the *same* program structure (the generator consumes
 * identical random draws), one executing the FP work as 4-cycle adds and
 * the other as 15-cycle divides.
 */
double
ipcWithFpClass(bool divides)
{
    workload::BenchmarkProfile p;
    p.name = divides ? "div-heavy" : "add-heavy";
    p.floatingPoint = true;
    p.fracLoad = 0.25;
    p.fracStore = 0.08;
    p.fracBranch = 0.05;
    (divides ? p.fracFpDiv : p.fracFpAdd) = 0.35;
    p.workingSetBytes = 128 << 10;
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = sim::findPreset("RR-256");
    cfg.warmupUops = 20000;
    cfg.measureUops = 60000;
    return sim::runSimulation(p, cfg).ipc;
}

} // namespace

int
main()
{
    benchutil::banner("Table 2", "latencies for principal instructions");

    std::printf("%-12s%10s%12s\n", "inst", "latency", "paper");
    const struct
    {
        const char *name;
        isa::OpClass cls;
        unsigned paper;
    } rows[] = {
        {"loads", isa::OpClass::Load, 2},
        {"ALU", isa::OpClass::IntAlu, 1},
        {"mul", isa::OpClass::IntMul, 15},
        {"div", isa::OpClass::IntDiv, 15},
        {"fadd", isa::OpClass::FpAdd, 4},
        {"fmul", isa::OpClass::FpMul, 4},
        {"fdiv", isa::OpClass::FpDiv, 15},
        {"fsqrt", isa::OpClass::FpSqrt, 15},
    };
    bool all_match = true;
    for (const auto &row : rows) {
        const unsigned lat = static_cast<unsigned>(isa::opLatency(row.cls));
        std::printf("%-12s%10u%12u%s\n", row.name, lat, row.paper,
                    lat == row.paper ? "" : "   MISMATCH");
        all_match &= lat == row.paper;
    }
    std::printf("\nconfigured latencies %s the paper's Table 2\n",
                all_match ? "match" : "DO NOT match");

    // Behavioural check: the same program with its FP work as 15-cycle
    // non-pipelined divides instead of 4-cycle adds must run much slower
    // (the configured latencies bite end to end).
    const double adds = ipcWithFpClass(false);
    const double divs = ipcWithFpClass(true);
    std::printf("\nlatency-sensitivity check (identical program shape, "
                "RR-256):\n"
                "  IPC with 35%% fadd (4 cy):   %.3f\n"
                "  IPC with 35%% fdiv (15 cy):  %.3f  (%s)\n",
                adds, divs,
                divs < adds * 0.8 ? "much slower, as expected"
                                  : "UNEXPECTED");
    return divs < adds ? 0 : 1;
}
