/**
 * @file
 * Ablation A1 — the two renaming implementations of paper section 2.2.
 *
 * Impl-1 (over-pick + recycling pipeline) wastes free registers in flight
 * but needs one less front-end stage on WSRS (min penalty 16 vs 18);
 * Impl-2 picks exact counts. The paper reports the two "very close" —
 * this harness quantifies both effects, including the recycling pressure
 * when registers are scarce.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

double
run(const char *bench, core::CoreParams params, unsigned regs)
{
    params.numPhysRegs = regs;
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = params;
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 300000);
    return sim::runSimulation(workload::findProfile(bench), cfg).ipc;
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A1",
                      "renaming Impl-1 (over-pick+recycle) vs Impl-2 "
                      "(exact count)");

    std::printf("%-10s %28s %28s\n", "", "WSRS-RC impl-1 (pen 16)",
                "WSRS-RC impl-2 (pen 18)");
    std::printf("%-10s %9s %9s %9s %9s %9s %9s\n", "bench", "384", "512",
                "tight320", "384", "512", "tight320");
    for (const char *bench : {"gzip", "gcc", "swim", "mgrid", "facerec"}) {
        std::printf("%-10s", bench);
        for (const core::RenameImpl impl :
             {core::RenameImpl::OverPickRecycle,
              core::RenameImpl::ExactCount}) {
            for (const unsigned regs : {384u, 512u, 320u})
                std::printf(" %9.3f",
                            run(bench, sim::presetWsrsRc(regs, impl),
                                regs));
        }
        std::printf("\n");
    }
    std::printf(
        "\nPaper shape: the two implementations perform very closely at\n"
        "384/512 registers; Impl-1's recycling pipeline only bites when\n"
        "registers are scarce (tight320), where free registers spend\n"
        "cycles in flight through the recycler.\n");
    return 0;
}
