/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */
#pragma once

#include <cstdio>
#include <string>

namespace wsrs::benchutil {

/** Print a harness banner naming the reproduced paper artifact. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s — %s\n", artifact.c_str(), description.c_str());
    std::printf("(Seznec, Toullec, Rochecouste: \"Register Write "
                "Specialization Register Read\n Specialization\", "
                "MICRO-35, 2002)\n");
    std::printf("==========================================================="
                "=====================\n");
}

} // namespace wsrs::benchutil
