/**
 * @file
 * Reproduces Figure 5: workload unbalancing degrees of the WSRS
 * allocation policies.
 *
 * Metric (paper section 5.4.2): instructions are split into groups of 128;
 * a group is unbalanced when any cluster receives fewer than 24 or more
 * than 40 of them; the unbalancing degree is the percentage of unbalanced
 * groups. Round-robin is perfectly balanced by construction; RM exhibits
 * higher unbalancing than RC (fewer degrees of freedom); FP codes are more
 * unbalanced than integer codes (invariant operands pin work to cluster
 * pairs), approaching 100% on wupwise/facerec.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/common/log.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

void
runGroup(const std::vector<workload::BenchmarkProfile> &profiles,
         const char *title)
{
    const std::vector<std::string> machines = {"WSRS-RC-512", "WSRS-RM-512",
                                               "RR-256"};
    std::printf("\n%s (unbalancing degree, %%)\n%-12s", title, "bench");
    for (const auto &m : machines)
        std::printf("%14s", m.c_str());
    std::printf("\n");

    const auto jobs = runner::SweepRunner::crossProduct(
        profiles, machines, sim::applyEnvOverrides(sim::SimConfig{}));
    const auto outcomes = runner::SweepRunner().run(jobs);

    std::size_t i = 0;
    for (const auto &p : profiles) {
        std::printf("%-12s", p.name.c_str());
        for (std::size_t m = 0; m < machines.size(); ++m, ++i) {
            if (!outcomes[i].ok)
                fatal("%s on %s: %s", p.name.c_str(),
                      machines[m].c_str(), outcomes[i].error.c_str());
            std::printf("%14.1f", outcomes[i].results.unbalancingDegree);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    benchutil::banner("Figure 5",
                      "unbalancing degrees of WSRS allocation policies");
    runGroup(workload::integerProfiles(), "Integer benchmarks");
    runGroup(workload::floatProfiles(), "Floating point benchmarks");
    std::printf("\nPaper shape to check: RR is perfectly balanced (0); RM\n"
                ">= RC on most codes; FP benchmarks show higher unbalancing\n"
                "than integer ones, near 100%% on wupwise and facerec.\n");
    return 0;
}
