/**
 * @file
 * Ablation A3 — physical register count sweep (paper section 5.4).
 *
 * Section 2.4 argues WS/WSRS need more registers than a conventional
 * machine to absorb per-subset demand imbalance, and 5.4.2 observes that
 * growing 384 -> 512 has only minor impact. The sweep exposes where each
 * machine's IPC saturates.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

double
run(const char *bench, core::CoreParams params)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = params;
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 250000);
    return sim::runSimulation(workload::findProfile(bench), cfg).ipc;
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A3", "physical register count sweep");

    const unsigned counts[] = {320, 384, 448, 512, 640};
    for (const char *bench : {"gzip", "swim", "facerec"}) {
        std::printf("\n%s (IPC)\n%-14s", bench, "regs");
        for (unsigned c : counts)
            std::printf("%9u", c);
        std::printf("\n%-14s", "WSRR");
        for (unsigned c : counts)
            std::printf("%9.3f", run(bench, sim::presetWriteSpec(c)));
        std::printf("\n%-14s", "WSRS-RC");
        for (unsigned c : counts)
            std::printf("%9.3f", run(bench, sim::presetWsrsRc(c)));
        std::printf("\n%-14s", "conventional");
        for (unsigned c : counts)
            std::printf("%9.3f", run(bench, sim::presetConventional(c)));
        std::printf("\n");
    }
    std::printf("\nPaper shape: 384 -> 512 is nearly flat for WS/WSRS\n"
                "(per-subset slack already covers the window); the\n"
                "conventional machine keeps gaining because 256 registers\n"
                "cannot back the full 224-op window plus 80 architectural\n"
                "registers.\n");
    return 0;
}
