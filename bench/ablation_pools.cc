/**
 * @file
 * Ablation A7 — pool-level write specialization (paper Figure 2b).
 *
 * Section 2.1 offers two groupings for write specialization: by cluster
 * (Figure 2a, the WSRR machine) or by pool of identical functional units
 * (Figure 2b: load/store units, simple ALUs, complex units, FP units).
 * Cluster-level grouping with round-robin allocation balances subset
 * demand by construction; pool-level grouping inherits the instruction
 * mix's type skew, so it needs more registers for the same performance —
 * this harness quantifies that trade.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

sim::SimResults
run(const char *bench, core::CoreParams params)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = params;
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 250000);
    return sim::runSimulation(workload::findProfile(bench), cfg);
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A7",
                      "write specialization by cluster (Fig. 2a) vs by "
                      "FU pool (Fig. 2b)");

    const unsigned counts[] = {384, 512, 640, 768};
    for (const char *bench : {"gzip", "gcc", "swim", "facerec"}) {
        std::printf("\n%s (IPC / free-register stall cycles)\n%-16s",
                    bench, "regs");
        for (unsigned c : counts)
            std::printf("%18u", c);
        std::printf("\n%-16s", "WS by cluster");
        for (unsigned c : counts) {
            const auto r = run(bench, sim::presetWriteSpec(c));
            std::printf("%9.3f/%8llu", r.ipc,
                        (unsigned long long)r.stats.renameStallFreeReg);
        }
        std::printf("\n%-16s", "WS by pool");
        for (unsigned c : counts) {
            const auto r = run(bench, sim::presetWriteSpecPools(c));
            std::printf("%9.3f/%8llu", r.ipc,
                        (unsigned long long)r.stats.renameStallFreeReg);
        }
        std::printf("\n");
    }
    std::printf(
        "\nShape: both groupings converge to the same IPC once subsets\n"
        "are large enough; pool-level grouping saturates later because\n"
        "the instruction mix concentrates destinations on the simple-ALU\n"
        "and FP pools while the complex-unit pool idles (paper 2.4:\n"
        "'provided that the total number of physical registers is\n"
        "sufficiently increased').\n");
    return 0;
}
