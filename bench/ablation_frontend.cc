/**
 * @file
 * Ablation A9 — front-end idealization sensitivity.
 *
 * The paper's simulations "ignore all the artefacts associated with
 * irregular instruction fetch bandwidth" (section 5.2). This harness
 * quantifies what that idealization is worth by re-running the headline
 * comparison with a classic front-end constraint enabled: fetch breaks at
 * taken branches (one taken branch per cycle). If the RR-vs-WSRS ranking
 * survives, the paper's conclusion does not hinge on the idealization.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

double
run(const char *bench, const char *machine, bool realistic_fetch)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = sim::findPreset(machine);
    cfg.core.fetchBreakOnTaken = realistic_fetch;
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 250000);
    return sim::runSimulation(workload::findProfile(bench), cfg).ipc;
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A9",
                      "idealized vs taken-branch-limited fetch");

    std::printf("%-10s %24s %24s %10s\n", "", "RR-256", "WSRS-RC-512",
                "ranking");
    std::printf("%-10s %11s %12s %11s %12s %10s\n", "bench", "ideal",
                "fetch-brk", "ideal", "fetch-brk", "stable?");
    for (const char *bench :
         {"gzip", "gcc", "crafty", "swim", "facerec"}) {
        const double rr_i = run(bench, "RR-256", false);
        const double rr_r = run(bench, "RR-256", true);
        const double ws_i = run(bench, "WSRS-RC-512", false);
        const double ws_r = run(bench, "WSRS-RC-512", true);
        const bool stable = (rr_i >= ws_i) == (rr_r >= ws_r);
        std::printf("%-10s %11.3f %12.3f %11.3f %12.3f %10s\n", bench,
                    rr_i, rr_r, ws_i, ws_r, stable ? "yes" : "NO");
    }
    std::printf(
        "\nShape: the taken-branch limit costs branchy integer codes\n"
        "more than loop-dominated FP codes, and the RR/WSRS ranking is\n"
        "unchanged — the paper's front-end idealization is benign for\n"
        "its comparison.\n");
    return 0;
}
