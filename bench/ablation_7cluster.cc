/**
 * @file
 * Ablation A6 — the 7-cluster WSRS extension (paper section 7, detailed
 * in IRISA report PI 1411).
 *
 * The paper's closing claim: WSRS extends to a 7-cluster (14-way) machine
 * while keeping each wake-up entry / bypass point at 2-cluster complexity
 * and two (4R,3W) copies per register. This harness reproduces the
 * complexity side of that claim with the register-file model, comparing
 * against a hypothetical conventional 7-cluster machine.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/rfmodel/regfile_model.h"

using namespace wsrs;
using namespace wsrs::rfmodel;

int
main()
{
    benchutil::banner("Ablation A6",
                      "7-cluster WSRS extension vs conventional scaling");

    const RegFileModel model;

    // Conventional 7-cluster 14-way machine: every copy takes all 21
    // result buses (7 clusters x 3 results).
    RegFileOrg conv7;
    conv7.name = "noWS-7";
    conv7.totalRegs = 448;
    conv7.copiesPerReg = 7;
    conv7.portsPerCopy = {.reads = 4, .writes = 21};
    conv7.numSubfiles = 7;
    conv7.entriesPerSubfile = 448;
    conv7.writeBusesPerSubfile = 21;
    conv7.writeSpanRows = 448;
    conv7.producersVisible = 21;

    const RegFileOrg wsrs7 = makeWsrs7Cluster();
    const RegFileOrg ref = makeNoWs2Cluster();

    auto report = [&](const RegFileOrg &org) {
        std::printf("%-8s %5u regs x%u copies (%u,%u) | bit area %6.0f w^2"
                    " | t %.2f ns | %4.2f nJ/cy | bypass@10GHz %3u\n",
                    org.name.c_str(), org.totalRegs, org.copiesPerReg,
                    org.portsPerCopy.reads, org.portsPerCopy.writes,
                    model.bitArea(org), model.accessTimeNs(org),
                    model.energyNJPerCycle(org),
                    model.bypassSources(org, 10.0));
    };
    report(conv7);
    report(wsrs7);
    report(ref);

    std::printf("\narea ratio noWS-7 / WSRS-7: %.1fx\n",
                model.totalArea(conv7) / model.totalArea(wsrs7));
    std::printf("bypass sources: WSRS-7 matches the 4-way 2-cluster "
                "machine (%u vs %u)\n",
                model.bypassSources(wsrs7, 10.0),
                model.bypassSources(ref, 10.0));
    std::printf("\nPaper claim reproduced: the extension keeps two "
                "(4R,3W) copies per register\nand 2-cluster-level wake-up/"
                "bypass complexity at 7 clusters.\n");
    return 0;
}
