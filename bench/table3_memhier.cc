/**
 * @file
 * Reproduces Table 3: the data-memory hierarchy characteristics, and
 * demonstrates each row with a measured probe (hit latency, miss penalty,
 * and refill-bandwidth queueing) against the modeled hierarchy.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/common/stats.h"
#include "src/memory/hierarchy.h"

using namespace wsrs;
using namespace wsrs::memory;

int
main()
{
    benchutil::banner("Table 3", "memory hierarchy characteristics");

    const HierarchyParams p;
    std::printf("%-10s%10s%12s%12s%16s\n", "", "size", "latency",
                "miss pen.", "bandwidth");
    std::printf("%-10s%7llu KB%9llu cy%10llu cy%13s\n", "L1 D-$",
                (unsigned long long)(p.l1.sizeBytes >> 10),
                (unsigned long long)p.l1Latency,
                (unsigned long long)p.l1MissPenalty, "4 W/cycle");
    std::printf("%-10s%7llu KB%9llu cy%10llu cy%10u B/cycle\n", "L2 $",
                (unsigned long long)(p.l2.sizeBytes >> 10),
                (unsigned long long)p.l2MissPenalty == 0 ? 0ull : 12ull,
                (unsigned long long)p.l2MissPenalty, p.l2BytesPerCycle);
    std::printf("(paper: L1 32 KB / 2 / 12 / 4 W per cycle;"
                " L2 512 KB / 12 / 80 / 16 B per cycle)\n\n");

    // Measured demonstration.
    StatGroup stats("t3");
    MemoryHierarchy mem(p, stats);

    const TimedAccess cold = mem.access(0x100000, false, 0);
    std::printf("measured cold access (L1 miss + L2 miss): %3llu cycles "
                "(expect %llu)\n",
                (unsigned long long)cold.latency,
                (unsigned long long)(p.l1Latency + p.l1MissPenalty +
                                     p.l2MissPenalty));
    const TimedAccess hit = mem.access(0x100000, false, 500);
    std::printf("measured L1 hit:                          %3llu cycles "
                "(expect %llu)\n",
                (unsigned long long)hit.latency,
                (unsigned long long)p.l1Latency);

    // Evict from L1, keep in L2.
    for (Addr a = 0x800000; a < 0x800000 + (p.l1.sizeBytes * 2); a += 64)
        mem.access(a, false, 1000);
    const TimedAccess l2hit = mem.access(0x100000, false, 60000);
    std::printf("measured L1 miss / L2 hit:                %3llu cycles "
                "(expect %llu)\n",
                (unsigned long long)l2hit.latency,
                (unsigned long long)(p.l1Latency + p.l1MissPenalty));

    // Bandwidth: two same-cycle misses queue on the 16 B/cycle refill
    // port (64 B line -> 4 busy cycles).
    mem.flush();
    const TimedAccess m1 = mem.access(0xa00000, false, 100000);
    const TimedAccess m2 = mem.access(0xb00000, false, 100000);
    std::printf("same-cycle misses see refill queueing:    %3llu then %llu "
                "cycles (+%llu queue)\n",
                (unsigned long long)m1.latency,
                (unsigned long long)m2.latency,
                (unsigned long long)(m2.latency - m1.latency));
    return 0;
}
