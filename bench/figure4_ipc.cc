/**
 * @file
 * Reproduces Figure 4: IPC of the 12 SPEC CPU2000 stand-ins on the six
 * simulated machines (RR-256, WSRR-384, WSRR-512, WSRS-RC-384,
 * WSRS-RC-512, WSRS-RM-512).
 *
 * Protocol follows the paper scaled down: a warm-up slice primes caches
 * and the branch predictor, then a measured slice is simulated. Slice
 * lengths can be overridden via WSRS_MEASURE_UOPS / WSRS_WARMUP_UOPS.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/common/log.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

void
runGroup(const std::vector<workload::BenchmarkProfile> &profiles,
         const char *title)
{
    const auto machines = sim::figure4Presets();
    std::printf("\n%s (IPC)\n%-12s", title, "bench");
    for (const auto &m : machines)
        std::printf("%12s", m.c_str());
    std::printf("\n");

    // One parallel sweep over the whole profiles x machines matrix; the
    // submission-ordered outcomes map row-major onto the printed table.
    const auto jobs = runner::SweepRunner::crossProduct(
        profiles, machines, sim::applyEnvOverrides(sim::SimConfig{}));
    const auto outcomes = runner::SweepRunner().run(jobs);

    std::size_t i = 0;
    for (const auto &p : profiles) {
        std::printf("%-12s", p.name.c_str());
        for (std::size_t m = 0; m < machines.size(); ++m, ++i) {
            if (!outcomes[i].ok)
                fatal("%s on %s: %s", p.name.c_str(),
                      machines[m].c_str(), outcomes[i].error.c_str());
            std::printf("%12.3f", outcomes[i].results.ipc);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    benchutil::banner("Figure 4",
                      "IPC of integer and floating-point benchmarks across "
                      "machine configurations");
    runGroup(workload::integerProfiles(), "Integer benchmarks");
    runGroup(workload::floatProfiles(), "Floating point benchmarks");

    std::printf(
        "\nPaper shape to check:\n"
        " - WSRR (write specialization alone) matches RR-256 on integer\n"
        "   codes and is marginally better on FP (larger register set);\n"
        " - WSRS-RC stays within ~3%% of RR-256 everywhere, slightly\n"
        "   better on integer codes, slightly worse on high-IPC FP codes;\n"
        " - WSRS-RM is at or below WSRS-RC (fewer degrees of freedom);\n"
        " - growing 384 -> 512 registers has minor impact.\n");
    return 0;
}
