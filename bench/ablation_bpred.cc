/**
 * @file
 * Ablation A5 — branch predictor study.
 *
 * The paper assumes an EV8-class 512 Kbit 2Bc-gskew front end. This
 * harness swaps in weaker (bimodal, gshare) and idealized (perfect)
 * predictors to show how much of the machines' IPC rests on that
 * assumption, and that the WSRS-vs-conventional comparison is robust to
 * the predictor choice.
 */
#include <cstdio>

#include "bench_util.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

using namespace wsrs;

namespace {

sim::SimResults
run(const char *bench, const char *machine, sim::PredictorKind kind)
{
    sim::SimConfig cfg = sim::applyEnvOverrides(sim::SimConfig{});
    cfg.core = sim::findPreset(machine);
    cfg.predictor = kind;
    cfg.warmupUops = std::min<std::uint64_t>(cfg.warmupUops, 150000);
    cfg.measureUops = std::min<std::uint64_t>(cfg.measureUops, 250000);
    return sim::runSimulation(workload::findProfile(bench), cfg);
}

} // namespace

int
main()
{
    benchutil::banner("Ablation A5",
                      "branch predictors: bimodal / gshare / 2Bc-gskew / "
                      "perfect");

    const struct
    {
        const char *label;
        sim::PredictorKind kind;
    } preds[] = {
        {"bimodal", sim::PredictorKind::Bimodal},
        {"gshare", sim::PredictorKind::Gshare},
        {"tournament", sim::PredictorKind::Tournament},
        {"2bc-gskew", sim::PredictorKind::TwoBcGskew},
        {"perfect", sim::PredictorKind::Perfect},
    };

    for (const char *machine : {"RR-256", "WSRS-RC-512"}) {
        std::printf("\n%s\n%-10s", machine, "bench");
        for (const auto &p : preds)
            std::printf("  %10s mispr%%", p.label);
        std::printf("\n");
        for (const char *bench : {"gzip", "gcc", "mcf", "mgrid"}) {
            std::printf("%-10s", bench);
            for (const auto &p : preds) {
                const sim::SimResults r = run(bench, machine, p.kind);
                std::printf("  %10.3f %5.1f%%", r.ipc,
                            100.0 * r.branchMispredictRate);
            }
            std::printf("\n");
        }
    }
    std::printf("\nShape: 2Bc-gskew approaches the perfect-prediction\n"
                "bound on loop-dominated codes and clearly beats bimodal\n"
                "and gshare on the branchy integer codes; the WSRS/\n"
                "conventional ranking is stable across predictors.\n");
    return 0;
}
