/** @file Unit tests for the command-line parser. */
#include <gtest/gtest.h>

#include "src/common/args.h"
#include "src/common/log.h"

namespace wsrs {
namespace {

ArgParser
makeParser()
{
    ArgParser p;
    p.addOption("bench", "benchmark");
    p.addOption("uops", "count");
    p.addOption("ratio", "a double");
    p.addOption("verify", "flag", true);
    return p;
}

void
parse(ArgParser &p, std::initializer_list<const char *> argv_tail)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
    p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsSyntax)
{
    ArgParser p = makeParser();
    parse(p, {"--bench=gzip", "--uops=123"});
    EXPECT_EQ(p.get("bench"), "gzip");
    EXPECT_EQ(p.getUint("uops", 0), 123u);
}

TEST(ArgParser, SpaceSyntax)
{
    ArgParser p = makeParser();
    parse(p, {"--bench", "swim"});
    EXPECT_EQ(p.get("bench"), "swim");
}

TEST(ArgParser, FlagsAndDefaults)
{
    ArgParser p = makeParser();
    parse(p, {"--verify"});
    EXPECT_TRUE(p.has("verify"));
    EXPECT_FALSE(p.has("bench"));
    EXPECT_EQ(p.get("bench", "gzip"), "gzip");
    EXPECT_EQ(p.getUint("uops", 77), 77u);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio", 0.5), 0.5);
}

TEST(ArgParser, DoubleParsing)
{
    ArgParser p = makeParser();
    parse(p, {"--ratio=0.25"});
    EXPECT_DOUBLE_EQ(p.getDouble("ratio", 0), 0.25);
}

TEST(ArgParser, PositionalArguments)
{
    ArgParser p = makeParser();
    parse(p, {"one", "--bench=gzip", "two"});
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "one");
    EXPECT_EQ(p.positional()[1], "two");
}

TEST(ArgParser, Rejections)
{
    {
        ArgParser p = makeParser();
        EXPECT_THROW(parse(p, {"--nope=1"}), FatalError);
    }
    {
        ArgParser p = makeParser();
        EXPECT_THROW(parse(p, {"--verify=1"}), FatalError);
    }
    {
        ArgParser p = makeParser();
        EXPECT_THROW(parse(p, {"--bench"}), FatalError);
    }
    {
        ArgParser p = makeParser();
        parse(p, {"--uops=12x"});
        EXPECT_THROW(p.getUint("uops", 0), FatalError);
    }
}

TEST(ArgParser, UsageListsOptions)
{
    ArgParser p = makeParser();
    const std::string u = p.usage("tool");
    EXPECT_NE(u.find("--bench"), std::string::npos);
    EXPECT_NE(u.find("--verify"), std::string::npos);
    EXPECT_NE(u.find("usage: tool"), std::string::npos);
}

} // namespace
} // namespace wsrs
