/** @file Unit tests for the statistics package. */
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/stats.h"

namespace wsrs {
namespace {

TEST(Stats, CounterIncrements)
{
    StatGroup g("g");
    Counter c(g, "c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageMean)
{
    StatGroup g("g");
    Average a(g, "a", "an average");
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, HistogramBucketsAndClamp)
{
    StatGroup g("g");
    Histogram h(g, "h", "a histogram", 4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(9);  // clamps into last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 1 + 9) / 4.0);
}

TEST(Stats, GroupDumpContainsNamesAndValues)
{
    StatGroup g("core");
    Counter c(g, "commits", "committed ops");
    c += 17;
    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("core.commits"), std::string::npos);
    EXPECT_NE(text.find("17"), std::string::npos);
    EXPECT_NE(text.find("committed ops"), std::string::npos);
}


TEST(Stats, FormulaComputesAtDumpTime)
{
    StatGroup g("g");
    Counter commits(g, "commits", "");
    Counter cycles(g, "cycles", "");
    Formula ipc(g, "ipc", "commits per cycle", [&] {
        return cycles.value() ? double(commits.value()) / cycles.value()
                              : 0.0;
    });
    commits += 30;
    cycles += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 3.0);
    commits += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 4.0);
}

TEST(Stats, JsonDumpIsWellFormed)
{
    StatGroup g("core");
    Counter c(g, "commits", "");
    Average a(g, "occ", "");
    Histogram h(g, "width", "", 3);
    Formula f(g, "two", "", [] { return 2.0; });
    c += 5;
    a.sample(1.5);
    h.sample(2);
    std::ostringstream os;
    g.dumpJson(os);
    const std::string j = os.str();
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    EXPECT_NE(j.find("\"core.commits\": 5"), std::string::npos);
    EXPECT_NE(j.find("\"core.width\": [0, 0, 1]"), std::string::npos);
    EXPECT_NE(j.find("\"core.two\": 2"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    StatGroup g("g");
    Counter c(g, "c", "");
    Average a(g, "a", "");
    c += 3;
    a.sample(5);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

} // namespace
} // namespace wsrs
