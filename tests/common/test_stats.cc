/** @file Unit tests for the statistics package. */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/common/stats.h"
#include "tests/support/json_lint.h"

namespace wsrs {
namespace {

TEST(Stats, CounterIncrements)
{
    StatGroup g("g");
    Counter c(g, "c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageMean)
{
    StatGroup g("g");
    Average a(g, "a", "an average");
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    StatGroup g("g");
    Histogram h(g, "h", "a histogram", 4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(9);  // beyond the top bucket: explicit overflow, no clamping
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 0u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 1 + 9) / 4.0);
    h.reset();
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Stats, GroupDumpContainsNamesAndValues)
{
    StatGroup g("core");
    Counter c(g, "commits", "committed ops");
    c += 17;
    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("core.commits"), std::string::npos);
    EXPECT_NE(text.find("17"), std::string::npos);
    EXPECT_NE(text.find("committed ops"), std::string::npos);
}


TEST(Stats, FormulaComputesAtDumpTime)
{
    StatGroup g("g");
    Counter commits(g, "commits", "");
    Counter cycles(g, "cycles", "");
    Formula ipc(g, "ipc", "commits per cycle", [&] {
        return cycles.value() ? double(commits.value()) / cycles.value()
                              : 0.0;
    });
    commits += 30;
    cycles += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 3.0);
    commits += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 4.0);
}

TEST(Stats, JsonDumpIsWellFormed)
{
    StatGroup g("core");
    Counter c(g, "commits", "");
    Average a(g, "occ", "");
    Histogram h(g, "width", "", 3);
    Formula f(g, "two", "", [] { return 2.0; });
    c += 5;
    a.sample(1.5);
    h.sample(2);
    std::ostringstream os;
    g.dumpJson(os);
    const std::string j = os.str();
    EXPECT_EQ(test::jsonLint(j), "");
    EXPECT_NE(j.find("\"core.commits\": 5"), std::string::npos);
    EXPECT_NE(j.find("\"core.width\": {\"buckets\": [0, 0, 1], "
                     "\"overflow\": 0, \"samples\": 1, \"mean\": 2}"),
              std::string::npos);
    EXPECT_NE(j.find("\"core.two\": 2"), std::string::npos);
}

TEST(Stats, JsonEscapeSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("nl\ntab\tcr\r"), "nl\\ntab\\tcr\\r");
    EXPECT_EQ(jsonEscape(std::string("ctl\x01") + "\x1f"),
              "ctl\\u0001\\u001f");
}

TEST(Stats, NonFiniteDoublesDumpAsNull)
{
    std::ostringstream os;
    dumpJsonDouble(os, std::nan(""));
    os << " ";
    dumpJsonDouble(os, 1.0 / 0.0);
    os << " ";
    dumpJsonDouble(os, -1.0 / 0.0);
    EXPECT_EQ(os.str(), "null null null");

    StatGroup g("g");
    Formula f(g, "bad", "", [] { return std::nan(""); });
    Average a(g, "inf", "");
    a.sample(1.0 / 0.0);
    std::ostringstream js;
    g.dumpJson(js);
    EXPECT_EQ(test::jsonLint(js.str()), "");
    EXPECT_NE(js.str().find("\"g.bad\": null"), std::string::npos);
    EXPECT_NE(js.str().find("\"g.inf\": null"), std::string::npos);
}

TEST(Stats, HostileNamesAreEscapedInJson)
{
    StatGroup g("we\"ird");
    Counter c(g, "c\\ount\nr", "");
    c += 1;
    std::ostringstream os;
    g.dumpJson(os);
    const std::string j = os.str();
    EXPECT_EQ(test::jsonLint(j), "");
    EXPECT_NE(j.find("\"we\\\"ird.c\\\\ount\\nr\": 1"), std::string::npos);
}

TEST(Stats, EveryStatTypeRoundTripsThroughParser)
{
    StatGroup g("core");
    Counter c(g, "commits", "");
    Average a(g, "occ", "");
    Histogram h(g, "width", "", 3);
    Formula f(g, "ipc", "", [&] { return double(c.value()) / 2.0; });
    c += 7;
    a.sample(2.5);
    h.sample(1);
    h.sample(42);  // overflow

    std::ostringstream before;
    g.dumpJson(before);
    EXPECT_EQ(test::jsonLint(before.str()), "");
    EXPECT_NE(before.str().find("\"overflow\": 1"), std::string::npos);

    // A reset group must still dump a parseable document with zeroed
    // measurements (Formula values recompute from the reset inputs).
    g.resetAll();
    std::ostringstream after;
    g.dumpJson(after);
    EXPECT_EQ(test::jsonLint(after.str()), "");
    EXPECT_NE(after.str().find("\"core.commits\": 0"), std::string::npos);
    EXPECT_NE(after.str().find("\"core.width\": {\"buckets\": [0, 0, 0], "
                               "\"overflow\": 0, \"samples\": 0, "
                               "\"mean\": 0}"),
              std::string::npos);
}

TEST(Stats, JsonLintRejectsMalformedDocuments)
{
    // Sanity-check the test helper itself: documents Python's json.load
    // would reject must not lint clean.
    EXPECT_NE(test::jsonLint("{\"a\": nan}"), "");
    EXPECT_NE(test::jsonLint("{\"a\": inf}"), "");
    EXPECT_NE(test::jsonLint("{\"a\": 1,}"), "");
    EXPECT_NE(test::jsonLint("{\"a\": 1} extra"), "");
    EXPECT_NE(test::jsonLint("{\"a\": \"unterminated}"), "");
    EXPECT_NE(test::jsonLint("{\"a\": \"bad\x01ctl\"}"), "");
    EXPECT_NE(test::jsonLint("[1, 2"), "");
    EXPECT_EQ(test::jsonLint("{\"a\": [1, 2.5e-3, \"s\\n\", null]}"), "");
}

TEST(Stats, GroupResetAll)
{
    StatGroup g("g");
    Counter c(g, "c", "");
    Average a(g, "a", "");
    c += 3;
    a.sample(5);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

} // namespace
} // namespace wsrs
