/** @file Unit tests for the dataflow hashing helpers. */
#include <gtest/gtest.h>

#include "src/common/hash.h"

namespace wsrs {
namespace {

TEST(Hash, Mix64Deterministic)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(Hash, MixCombineOrderSensitive)
{
    EXPECT_NE(mixCombine(1, 2), mixCombine(2, 1));
}

TEST(Hash, ExecuteHashDependsOnAllInputs)
{
    const auto base = executeHash(1, 2, 3);
    EXPECT_NE(base, executeHash(9, 2, 3));
    EXPECT_NE(base, executeHash(1, 9, 3));
    EXPECT_NE(base, executeHash(1, 2, 9));
}

TEST(Hash, NoObviousFixedPoint)
{
    // All-zero operands must not hash to zero (would mask missing
    // operands when values are combined downstream).
    EXPECT_NE(executeHash(0, 0, 0), 0u);
    EXPECT_NE(mixCombine(0, 0), 0u);
}

} // namespace
} // namespace wsrs
