/** @file Unit tests for the deterministic RNG. */
#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace wsrs {
namespace {

TEST(XorShiftRng, SameSeedSameStream)
{
    XorShiftRng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(XorShiftRng, DifferentSeedsDiverge)
{
    XorShiftRng a(1), b(2);
    int diff = 0;
    for (int i = 0; i < 100; ++i)
        diff += a.next() != b.next();
    EXPECT_GT(diff, 90);
}

TEST(XorShiftRng, BelowStaysInBounds)
{
    XorShiftRng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(XorShiftRng, RangeInclusive)
{
    XorShiftRng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(XorShiftRng, UniformInUnitInterval)
{
    XorShiftRng rng(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(XorShiftRng, ChanceMatchesProbability)
{
    XorShiftRng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(XorShiftRng, GeometricMeanApproxInverseP)
{
    XorShiftRng rng(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += double(rng.geometric(0.25));
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

} // namespace
} // namespace wsrs
