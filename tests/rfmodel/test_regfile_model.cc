/** @file Tests for the register-file area/time/energy model (Table 1). */
#include <gtest/gtest.h>

#include "src/rfmodel/regfile_model.h"

namespace wsrs::rfmodel {
namespace {

TEST(BitCellArea, Formula1ExactValues)
{
    // Paper formula (1): (R + 2W)(R + W) in w^2.
    EXPECT_DOUBLE_EQ(bitCellArea({16, 12}), 40.0 * 28.0);  // 1120
    EXPECT_DOUBLE_EQ(bitCellArea({4, 12}), 28.0 * 16.0);   // 448
    EXPECT_DOUBLE_EQ(bitCellArea({4, 3}), 10.0 * 7.0);     // 70
    EXPECT_DOUBLE_EQ(bitCellArea({4, 6}), 16.0 * 10.0);    // 160
}

TEST(Table1, BitAreasMatchPaperExactly)
{
    const RegFileModel model;
    EXPECT_DOUBLE_EQ(model.bitArea(makeNoWsMonolithic()), 1120.0);
    EXPECT_DOUBLE_EQ(model.bitArea(makeNoWsDistributed()), 1792.0);
    EXPECT_DOUBLE_EQ(model.bitArea(makeWriteSpec()), 280.0);
    EXPECT_DOUBLE_EQ(model.bitArea(makeWsrs()), 140.0);
    EXPECT_DOUBLE_EQ(model.bitArea(makeNoWs2Cluster()), 320.0);
}

TEST(Table1, TotalAreaRatiosMatchPaper)
{
    const RegFileModel model;
    const RegFileOrg ref = makeNoWs2Cluster();
    const double base = model.totalArea(ref);
    EXPECT_NEAR(model.totalArea(makeNoWsMonolithic()) / base, 7.0, 1e-9);
    EXPECT_NEAR(model.totalArea(makeNoWsDistributed()) / base, 11.2, 1e-9);
    EXPECT_NEAR(model.totalArea(makeWriteSpec()) / base, 3.50, 1e-9);
    EXPECT_NEAR(model.totalArea(makeWsrs()) / base, 1.75, 1e-9);
}

TEST(Table1, AccessTimesWithinCalibrationTolerance)
{
    const RegFileModel model;
    // Paper CACTI-2.0 values at 0.10 um; calibrated model within ~3%.
    EXPECT_NEAR(model.accessTimeNs(makeNoWsMonolithic()), 0.71, 0.03);
    EXPECT_NEAR(model.accessTimeNs(makeNoWsDistributed()), 0.52, 0.03);
    EXPECT_NEAR(model.accessTimeNs(makeWriteSpec()), 0.40, 0.02);
    EXPECT_NEAR(model.accessTimeNs(makeWsrs()), 0.35, 0.02);
    EXPECT_NEAR(model.accessTimeNs(makeNoWs2Cluster()), 0.34, 0.02);
}

TEST(Table1, EnergiesWithinCalibrationTolerance)
{
    const RegFileModel model;
    EXPECT_NEAR(model.energyNJPerCycle(makeNoWsMonolithic()), 3.20, 0.35);
    EXPECT_NEAR(model.energyNJPerCycle(makeNoWsDistributed()), 2.90, 0.35);
    EXPECT_NEAR(model.energyNJPerCycle(makeWriteSpec()), 1.70, 0.25);
    EXPECT_NEAR(model.energyNJPerCycle(makeWsrs()), 1.25, 0.15);
    EXPECT_NEAR(model.energyNJPerCycle(makeNoWs2Cluster()), 0.63, 0.10);
}

TEST(Table1, EnergyOrderingMatchesPaper)
{
    const RegFileModel m;
    const double e_mono = m.energyNJPerCycle(makeNoWsMonolithic());
    const double e_dist = m.energyNJPerCycle(makeNoWsDistributed());
    const double e_ws = m.energyNJPerCycle(makeWriteSpec());
    const double e_wsrs = m.energyNJPerCycle(makeWsrs());
    const double e_2cl = m.energyNJPerCycle(makeNoWs2Cluster());
    EXPECT_GT(e_mono, e_dist);
    EXPECT_GT(e_dist, e_ws);
    EXPECT_GT(e_ws, e_wsrs);
    EXPECT_GT(e_wsrs, e_2cl);
    // Headline claims: WSRS more than halves noWS-D power, and is no more
    // than ~2x the 4-way 2-cluster machine.
    EXPECT_GT(e_dist / e_wsrs, 2.0);
    EXPECT_LT(e_wsrs / e_2cl, 2.2);
}

TEST(Table1, PipelineCyclesMatchPaperAtBothClocks)
{
    const RegFileModel m;
    EXPECT_EQ(m.pipelineCycles(makeNoWsMonolithic(), 10.0), 8u);
    EXPECT_EQ(m.pipelineCycles(makeNoWsDistributed(), 10.0), 6u);
    EXPECT_EQ(m.pipelineCycles(makeWriteSpec(), 10.0), 5u);
    EXPECT_EQ(m.pipelineCycles(makeWsrs(), 10.0), 4u);
    EXPECT_EQ(m.pipelineCycles(makeNoWs2Cluster(), 10.0), 4u);

    EXPECT_EQ(m.pipelineCycles(makeNoWsMonolithic(), 5.0), 5u);
    EXPECT_EQ(m.pipelineCycles(makeNoWsDistributed(), 5.0), 4u);
    EXPECT_EQ(m.pipelineCycles(makeWriteSpec(), 5.0), 3u);
    EXPECT_EQ(m.pipelineCycles(makeWsrs(), 5.0), 3u);
    EXPECT_EQ(m.pipelineCycles(makeNoWs2Cluster(), 5.0), 3u);
}

TEST(Table1, BypassSourcesMatchPaper)
{
    const RegFileModel m;
    EXPECT_EQ(m.bypassSources(makeNoWsMonolithic(), 10.0), 97u);
    EXPECT_EQ(m.bypassSources(makeNoWsDistributed(), 10.0), 73u);
    EXPECT_EQ(m.bypassSources(makeWriteSpec(), 10.0), 61u);
    EXPECT_EQ(m.bypassSources(makeWsrs(), 10.0), 25u);
    EXPECT_EQ(m.bypassSources(makeNoWs2Cluster(), 10.0), 25u);

    EXPECT_EQ(m.bypassSources(makeNoWsMonolithic(), 5.0), 61u);
    EXPECT_EQ(m.bypassSources(makeNoWsDistributed(), 5.0), 49u);
    EXPECT_EQ(m.bypassSources(makeWriteSpec(), 5.0), 37u);
    EXPECT_EQ(m.bypassSources(makeWsrs(), 5.0), 19u);
    EXPECT_EQ(m.bypassSources(makeNoWs2Cluster(), 5.0), 19u);
}

TEST(Table1, HeadlineClaimsHold)
{
    const RegFileModel m;
    // "total silicon area of the physical register file divided by more
    // than six" (WSRS vs noWS-D) despite twice the registers.
    EXPECT_GT(m.totalArea(makeNoWsDistributed()) / m.totalArea(makeWsrs()),
              6.0);
    // "access time reduced by more than one third".
    EXPECT_LT(m.accessTimeNs(makeWsrs()),
              m.accessTimeNs(makeNoWsDistributed()) * (2.0 / 3.0) * 1.03);
    // WSRS wake-up/bypass complexity equals the 4-way 2-cluster machine.
    EXPECT_EQ(m.bypassSources(makeWsrs(), 10.0),
              m.bypassSources(makeNoWs2Cluster(), 10.0));
}

TEST(Wsrs7Cluster, ExtensionKeepsPerRegisterComplexity)
{
    // Paper section 7: the 7-cluster extension still uses two (4R,3W)
    // copies per register and 2-cluster-level bypass complexity.
    const RegFileOrg org = makeWsrs7Cluster();
    EXPECT_EQ(org.copiesPerReg, 2u);
    EXPECT_EQ(org.portsPerCopy.reads, 4u);
    EXPECT_EQ(org.portsPerCopy.writes, 3u);
    const RegFileModel m;
    EXPECT_DOUBLE_EQ(m.bitArea(org), 140.0);
    EXPECT_EQ(m.bypassSources(org, 10.0),
              m.bypassSources(makeNoWs2Cluster(), 10.0));
}

/** Property: area grows monotonically with either port count. */
class PortSweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(PortSweep, AreaMonotoneInPorts)
{
    const auto [r, w] = GetParam();
    const double base = bitCellArea({r, w});
    EXPECT_GT(bitCellArea({r + 1, w}), base);
    EXPECT_GT(bitCellArea({r, w + 1}), base);
    // A write port costs more than a read port (two bitlines).
    EXPECT_GT(bitCellArea({r, w + 1}), bitCellArea({r + 1, w}));
}

INSTANTIATE_TEST_SUITE_P(
    Ports, PortSweep,
    ::testing::Values(std::pair{2u, 1u}, std::pair{4u, 3u},
                      std::pair{8u, 6u}, std::pair{16u, 12u}));

TEST(RegFileModel, AccessTimeMonotoneInEntries)
{
    const RegFileModel m;
    RegFileOrg org = makeWsrs();
    double prev = 0;
    for (unsigned entries : {64u, 128u, 256u, 512u, 1024u}) {
        org.entriesPerSubfile = entries;
        const double t = m.accessTimeNs(org);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(RegFileModel, EstimateBundlesAllDerivedValues)
{
    const RegFileModel m;
    const RegFileEstimate e = m.estimate(makeWsrs(), makeNoWs2Cluster());
    EXPECT_NEAR(e.totalAreaRel, 1.75, 1e-9);
    EXPECT_EQ(e.pipeCycles10GHz, 4u);
    EXPECT_EQ(e.bypassSources5GHz, 19u);
    EXPECT_GT(e.energyNJPerCycle, 0.0);
    EXPECT_GT(e.accessTimeNs, 0.0);
}

TEST(RegFileModel, Table1OrganizationListOrder)
{
    const auto orgs = table1Organizations();
    ASSERT_EQ(orgs.size(), 5u);
    EXPECT_EQ(orgs[0].name, "noWS-M");
    EXPECT_EQ(orgs[1].name, "noWS-D");
    EXPECT_EQ(orgs[2].name, "WS");
    EXPECT_EQ(orgs[3].name, "WSRS");
    EXPECT_EQ(orgs[4].name, "noWS-2");
}

} // namespace
} // namespace wsrs::rfmodel
