/** @file Tests for the load/store queue and address ordering. */
#include <gtest/gtest.h>

#include "src/core/lsq.h"

namespace wsrs::core {
namespace {

TEST(Lsq, AllocatesConsecutiveOrdinals)
{
    LoadStoreQueue lsq(8);
    EXPECT_EQ(lsq.allocate(false, 0x100, 1), 0u);
    EXPECT_EQ(lsq.allocate(true, 0x200, 2), 1u);
    EXPECT_EQ(lsq.allocate(false, 0x300, 3), 2u);
    EXPECT_EQ(lsq.size(), 3u);
}

TEST(Lsq, FullWhenAtCapacity)
{
    LoadStoreQueue lsq(2);
    lsq.allocate(false, 0x100, 1);
    EXPECT_FALSE(lsq.full());
    lsq.allocate(false, 0x200, 2);
    EXPECT_TRUE(lsq.full());
}

TEST(Lsq, AgenProceedsStrictlyInOrder)
{
    LoadStoreQueue lsq(8);
    lsq.allocate(false, 0x100, 10);
    lsq.allocate(true, 0x200, 11);
    lsq.allocate(false, 0x300, 12);

    std::uint64_t rn = 0;
    ASSERT_TRUE(lsq.nextAgen(rn));
    EXPECT_EQ(rn, 10u);
    EXPECT_FALSE(lsq.addrComputed(0));
    lsq.markAddrComputed(0);
    EXPECT_TRUE(lsq.addrComputed(0));
    EXPECT_FALSE(lsq.addrComputed(1));

    ASSERT_TRUE(lsq.nextAgen(rn));
    EXPECT_EQ(rn, 11u);
    lsq.markAddrComputed(1);
    lsq.markAddrComputed(2);
    EXPECT_FALSE(lsq.nextAgen(rn));
}

TEST(Lsq, ForwardingFindsYoungestOlderStore)
{
    LoadStoreQueue lsq(8);
    const auto st1 = lsq.allocate(true, 0x100, 1);
    const auto st2 = lsq.allocate(true, 0x100, 2);
    const auto ld = lsq.allocate(false, 0x100, 3);
    lsq.markAddrComputed(st1);
    lsq.markAddrComputed(st2);
    lsq.markAddrComputed(ld);
    lsq.setStoreData(st1, 0xaaaa);
    lsq.setStoreData(st2, 0xbbbb);

    const ForwardProbe p = lsq.probeForward(ld, 0x100);
    EXPECT_TRUE(p.conflict);
    EXPECT_TRUE(p.dataReady);
    EXPECT_EQ(p.value, 0xbbbbull);
}

TEST(Lsq, ForwardingReportsPendingStoreData)
{
    LoadStoreQueue lsq(8);
    const auto st = lsq.allocate(true, 0x500, 1);
    const auto ld = lsq.allocate(false, 0x500, 2);
    lsq.markAddrComputed(st);
    lsq.markAddrComputed(ld);

    ForwardProbe p = lsq.probeForward(ld, 0x500);
    EXPECT_TRUE(p.conflict);
    EXPECT_FALSE(p.dataReady);

    lsq.setStoreData(st, 0x1234);
    p = lsq.probeForward(ld, 0x500);
    EXPECT_TRUE(p.dataReady);
    EXPECT_EQ(p.value, 0x1234ull);
}

TEST(Lsq, NoConflictWhenAddressesDiffer)
{
    LoadStoreQueue lsq(8);
    const auto st = lsq.allocate(true, 0x100, 1);
    const auto ld = lsq.allocate(false, 0x180, 2);
    lsq.markAddrComputed(st);
    lsq.markAddrComputed(ld);
    EXPECT_FALSE(lsq.probeForward(ld, 0x180).conflict);
}

TEST(Lsq, YoungerStoresDoNotForwardBackward)
{
    LoadStoreQueue lsq(8);
    const auto ld = lsq.allocate(false, 0x700, 1);
    const auto st = lsq.allocate(true, 0x700, 2);
    lsq.markAddrComputed(ld);
    lsq.markAddrComputed(st);
    EXPECT_FALSE(lsq.probeForward(ld, 0x700).conflict);
}

TEST(Lsq, PopFrontAdvancesOrdinalsAndAgen)
{
    LoadStoreQueue lsq(4);
    lsq.allocate(true, 0x100, 1);
    lsq.allocate(false, 0x100, 2);
    lsq.markAddrComputed(0);
    lsq.markAddrComputed(1);
    lsq.setStoreData(0, 7);
    lsq.popFront();
    EXPECT_EQ(lsq.size(), 1u);
    // The remaining load no longer sees the popped store.
    EXPECT_FALSE(lsq.probeForward(1, 0x100).conflict);
    // New allocations continue the ordinal sequence.
    EXPECT_EQ(lsq.allocate(false, 0x300, 3), 2u);
}

TEST(Lsq, StoreDataRoundTrip)
{
    LoadStoreQueue lsq(4);
    const auto st = lsq.allocate(true, 0x40, 1);
    EXPECT_FALSE(lsq.storeDataReady(st));
    lsq.setStoreData(st, 0xfeed);
    EXPECT_TRUE(lsq.storeDataReady(st));
    EXPECT_EQ(lsq.storeData(st), 0xfeedull);
}

} // namespace
} // namespace wsrs::core
