/** @file Tests for the WSRS allocation geometry and policies. */
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "src/common/log.h"
#include "src/core/cluster_alloc.h"

namespace wsrs::core {
namespace {

isa::MicroOp
dyadic(bool commutative = false)
{
    isa::MicroOp op;
    op.op = isa::OpClass::IntAlu;
    op.src1 = 1;
    op.src2 = 2;
    op.dst = 3;
    op.commutative = commutative;
    return op;
}

isa::MicroOp
monadic()
{
    isa::MicroOp op;
    op.op = isa::OpClass::IntAlu;
    op.src1 = 1;
    op.dst = 3;
    return op;
}

isa::MicroOp
noadic()
{
    isa::MicroOp op;
    op.op = isa::OpClass::IntAlu;
    op.dst = 3;
    return op;
}

CoreParams
wsrsParams(AllocPolicy policy, bool commutative_fus)
{
    CoreParams p;
    p.mode = RegFileMode::Wsrs;
    p.policy = policy;
    p.commutativeFus = commutative_fus;
    return p;
}

TEST(WsrsGeometry, ClusterFromOperandSubsets)
{
    // Figure 3: first operand picks top/bottom (bit 1), second left/right
    // (bit 0).
    EXPECT_EQ(wsrsCluster(0, 0), 0);
    EXPECT_EQ(wsrsCluster(1, 0), 0);
    EXPECT_EQ(wsrsCluster(0, 1), 1);
    EXPECT_EQ(wsrsCluster(2, 0), 2);
    EXPECT_EQ(wsrsCluster(3, 3), 3);
    EXPECT_EQ(wsrsCluster(2, 1), 3);
    EXPECT_EQ(wsrsCluster(1, 2), 0);
}

TEST(WsrsGeometry, PaperExampleClusterC1ReadsS0S1First)
{
    // "The first operand of an instruction executed on cluster C1 is read
    // from a physical register belonging to subset S0 or to subset S1."
    for (SubsetId s1 = 0; s1 < 4; ++s1)
        for (SubsetId s2 = 0; s2 < 4; ++s2)
            if (wsrsCluster(s1, s2) == 1)
                EXPECT_TRUE(s1 == 0 || s1 == 1);
}

TEST(WsrsOptions, DyadicNonCommutativeHasOneOption)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomMonadic, false));
    AllocContext ctx;
    ctx.src1Subset = 2;
    ctx.src2Subset = 1;
    unsigned count = 0;
    const auto opts = alloc.wsrsOptions(dyadic(false), ctx, count);
    ASSERT_EQ(count, 1u);
    EXPECT_EQ(opts[0].cluster, 3);
    EXPECT_FALSE(opts[0].swapped);
}

TEST(WsrsOptions, CommutativeDyadicDifferentSubsetsHasTwoOptions)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomCommutative,
                                      true));
    AllocContext ctx;
    ctx.src1Subset = 2;
    ctx.src2Subset = 1;
    unsigned count = 0;
    const auto opts = alloc.wsrsOptions(dyadic(true), ctx, count);
    ASSERT_EQ(count, 2u);
    EXPECT_EQ(opts[0].cluster, 3);  // (2,1) no swap
    EXPECT_EQ(opts[1].cluster, 0);  // (1,2) swapped
    EXPECT_TRUE(opts[1].swapped);
}

TEST(WsrsOptions, CommutativeDyadicSameSubsetHasOneOption)
{
    // Paper 3.3: commutativity helps only when the operands lie in
    // different subsets.
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomCommutative,
                                      true));
    AllocContext ctx;
    ctx.src1Subset = 3;
    ctx.src2Subset = 3;
    unsigned count = 0;
    const auto opts = alloc.wsrsOptions(dyadic(true), ctx, count);
    ASSERT_EQ(count, 1u);
    EXPECT_EQ(opts[0].cluster, 3);
}

TEST(WsrsOptions, MonadicHasTwoOrThreeOptions)
{
    // Two clusters without commutative FUs; three with (paper 3.3).
    {
        ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomMonadic,
                                          false));
        AllocContext ctx;
        ctx.src1Subset = 2;
        unsigned count = 0;
        const auto opts = alloc.wsrsOptions(monadic(), ctx, count);
        ASSERT_EQ(count, 2u);
        EXPECT_EQ(opts[0].cluster, 2);
        EXPECT_EQ(opts[1].cluster, 3);
    }
    {
        ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomCommutative,
                                          true));
        AllocContext ctx;
        ctx.src1Subset = 2;
        unsigned count = 0;
        const auto opts = alloc.wsrsOptions(monadic(), ctx, count);
        ASSERT_EQ(count, 3u);
        std::set<ClusterId> clusters;
        for (unsigned i = 0; i < count; ++i)
            clusters.insert(opts[i].cluster);
        // Operand in S2 (f=1,g=0): first-port form -> {C2, C3};
        // second-port form -> {C0, C2}; union = {C0, C2, C3}.
        EXPECT_EQ(clusters, (std::set<ClusterId>{0, 2, 3}));
        EXPECT_TRUE(opts[2].swapped);
    }
}

TEST(WsrsOptions, NoadicCanGoAnywhere)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomCommutative,
                                      true));
    AllocContext ctx;
    unsigned count = 0;
    alloc.wsrsOptions(noadic(), ctx, count);
    EXPECT_EQ(count, 4u);
}

TEST(Policies, RmNeverSwapsAndPinsDyadic)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomMonadic, false));
    AllocContext ctx;
    ctx.src1Subset = 1;
    ctx.src2Subset = 2;
    for (int i = 0; i < 100; ++i) {
        const AllocDecision d = alloc.allocate(dyadic(true), ctx);
        EXPECT_EQ(d.cluster, wsrsCluster(1, 2));
        EXPECT_FALSE(d.swapped);
    }
}

TEST(Policies, RmMonadicUsesBothLeftRightClusters)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomMonadic, false));
    AllocContext ctx;
    ctx.src1Subset = 0;
    std::set<ClusterId> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(alloc.allocate(monadic(), ctx).cluster);
    EXPECT_EQ(seen, (std::set<ClusterId>{0, 1}));
}

TEST(Policies, RcMonadicReachesThreeClusters)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomCommutative,
                                      true));
    AllocContext ctx;
    ctx.src1Subset = 0;
    std::set<ClusterId> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(alloc.allocate(monadic(), ctx).cluster);
    // S0 (f=0,g=0): first-port {C0,C1}, second-port {C0,C2}.
    EXPECT_EQ(seen, (std::set<ClusterId>{0, 1, 2}));
}

TEST(Policies, RcUsesBothDyadicForms)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomCommutative,
                                      true));
    AllocContext ctx;
    ctx.src1Subset = 0;
    ctx.src2Subset = 3;
    std::set<ClusterId> seen;
    unsigned swaps = 0;
    for (int i = 0; i < 500; ++i) {
        const AllocDecision d = alloc.allocate(dyadic(false), ctx);
        seen.insert(d.cluster);
        swaps += d.swapped;
    }
    EXPECT_EQ(seen, (std::set<ClusterId>{wsrsCluster(0, 3),
                                         wsrsCluster(3, 0)}));
    EXPECT_GT(swaps, 150u);
    EXPECT_LT(swaps, 350u);
}

TEST(Policies, WindowAwareFilteringAvoidsFullClusters)
{
    ClusterAllocator alloc(wsrsParams(AllocPolicy::RandomCommutative,
                                      true));
    std::array<unsigned, kMaxClusters> inflight{};
    AllocContext ctx;
    ctx.inflight = &inflight;
    ctx.src1Subset = 0;
    // Fill cluster 0; monadic op on S0 must avoid it.
    inflight[0] = CoreParams{}.clusterWindow;
    for (int i = 0; i < 200; ++i)
        EXPECT_NE(alloc.allocate(monadic(), ctx).cluster, 0);
}

TEST(Policies, RoundRobinCyclesClustersOnConventional)
{
    CoreParams p;
    p.mode = RegFileMode::Conventional;
    p.policy = AllocPolicy::RoundRobin;
    ClusterAllocator alloc(p);
    AllocContext ctx;
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(alloc.allocate(dyadic(), ctx).cluster, i % 4);
}

TEST(Policies, DependenceAwareFollowsProducer)
{
    CoreParams p;
    p.mode = RegFileMode::Conventional;
    p.policy = AllocPolicy::DependenceAware;
    ClusterAllocator alloc(p);
    std::array<unsigned, kMaxClusters> inflight{};
    AllocContext ctx;
    ctx.inflight = &inflight;
    ctx.src1Producer = 2;
    EXPECT_EQ(alloc.allocate(dyadic(), ctx).cluster, 2);
    // Full producer cluster falls back to least loaded.
    inflight[2] = p.clusterWindow;
    inflight[0] = 5;
    inflight[1] = 3;
    inflight[3] = 9;
    EXPECT_EQ(alloc.allocate(dyadic(), ctx).cluster, 1);
}

TEST(Policies, DependenceAwareWsrsPrefersProducerAmongLegal)
{
    CoreParams p = wsrsParams(AllocPolicy::DependenceAware, true);
    ClusterAllocator alloc(p);
    std::array<unsigned, kMaxClusters> inflight{};
    AllocContext ctx;
    ctx.inflight = &inflight;
    ctx.src1Subset = 0;   // monadic options {0,1} + swapped {2}
    ctx.src1Producer = 1;
    EXPECT_EQ(alloc.allocate(monadic(), ctx).cluster, 1);
}

TEST(ClusterAllocator, WsrsRequiresFourClusters)
{
    CoreParams p = wsrsParams(AllocPolicy::RandomCommutative, true);
    p.numClusters = 2;
    EXPECT_THROW(ClusterAllocator a(p), FatalError);
}

/** Geometry sweep: write specialization consistency for every pair. */
class SubsetPairSweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(SubsetPairSweep, ReadSpecializationInvariantHolds)
{
    const auto [s1, s2] = GetParam();
    const ClusterId c = wsrsCluster(SubsetId(s1), SubsetId(s2));
    // First operand's subset shares the cluster's top/bottom bit; second
    // operand's subset shares the left/right bit.
    EXPECT_EQ(s1 & 2u, unsigned(c & 2));
    EXPECT_EQ(s2 & 1u, unsigned(c & 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, SubsetPairSweep,
    ::testing::Values(std::pair{0u, 0u}, std::pair{0u, 1u},
                      std::pair{0u, 2u}, std::pair{0u, 3u},
                      std::pair{1u, 0u}, std::pair{1u, 3u},
                      std::pair{2u, 0u}, std::pair{2u, 2u},
                      std::pair{3u, 1u}, std::pair{3u, 3u}));

} // namespace
} // namespace wsrs::core
