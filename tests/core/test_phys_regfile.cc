/** @file Tests for the physical register file and its free lists. */
#include <gtest/gtest.h>

#include <set>

#include "src/core/phys_regfile.h"

namespace wsrs::core {
namespace {

TEST(PhysRegFile, PartitionsIntoEqualSubsets)
{
    PhysRegFile prf(512, 4);
    EXPECT_EQ(prf.numRegs(), 512u);
    EXPECT_EQ(prf.numSubsets(), 4u);
    EXPECT_EQ(prf.subsetSize(), 128u);
    EXPECT_EQ(prf.subsetOf(0), 0);
    EXPECT_EQ(prf.subsetOf(127), 0);
    EXPECT_EQ(prf.subsetOf(128), 1);
    EXPECT_EQ(prf.subsetOf(511), 3);
}

TEST(PhysRegFile, AllocateReturnsRegInRequestedSubset)
{
    PhysRegFile prf(256, 4);
    for (SubsetId s = 0; s < 4; ++s) {
        for (int i = 0; i < 64; ++i) {
            const PhysReg p = prf.allocate(s);
            EXPECT_EQ(prf.subsetOf(p), s);
        }
        EXPECT_EQ(prf.numFree(s), 0u);
    }
}

TEST(PhysRegFile, AllocationsAreUniqueUntilReleased)
{
    PhysRegFile prf(128, 2);
    std::set<PhysReg> seen;
    for (SubsetId s = 0; s < 2; ++s)
        for (int i = 0; i < 64; ++i)
            EXPECT_TRUE(seen.insert(prf.allocate(s)).second);
    EXPECT_EQ(seen.size(), 128u);
}

TEST(PhysRegFile, ReleaseReturnsToOwningSubset)
{
    PhysRegFile prf(128, 4);
    const PhysReg p = prf.allocate(2);
    EXPECT_EQ(prf.numFree(2), 31u);
    prf.release(p);
    EXPECT_EQ(prf.numFree(2), 32u);
}

TEST(PhysRegFile, RecyclerDelaysAvailability)
{
    PhysRegFile prf(64, 1);
    const PhysReg p = prf.allocate(0);
    EXPECT_EQ(prf.numFree(0), 63u);

    prf.releaseDeferred(p, 10);
    EXPECT_EQ(prf.inRecycler(), 1u);
    prf.drainRecycler(9);
    EXPECT_EQ(prf.numFree(0), 63u);   // not yet mature
    prf.drainRecycler(10);
    EXPECT_EQ(prf.numFree(0), 64u);
    EXPECT_EQ(prf.inRecycler(), 0u);
}

TEST(PhysRegFile, RecyclerPreservesFifoOrder)
{
    PhysRegFile prf(64, 1);
    const PhysReg a = prf.allocate(0);
    const PhysReg b = prf.allocate(0);
    prf.releaseDeferred(a, 5);
    prf.releaseDeferred(b, 7);
    prf.drainRecycler(6);
    EXPECT_EQ(prf.numFree(0), 63u);
    EXPECT_EQ(prf.inRecycler(), 1u);
    prf.drainRecycler(7);
    EXPECT_EQ(prf.numFree(0), 64u);
}

TEST(PhysRegFile, ValuesRoundTrip)
{
    PhysRegFile prf(32, 1);
    prf.setValue(7, 0xdeadbeef);
    EXPECT_EQ(prf.value(7), 0xdeadbeefull);
}

TEST(PhysRegFile, RejectsIndivisiblePartition)
{
    EXPECT_THROW(PhysRegFile prf(100, 3), FatalError);
    EXPECT_THROW(PhysRegFile prf(100, 0), FatalError);
}

} // namespace
} // namespace wsrs::core
