/** @file End-to-end tests of the execution core on live traces. */
#include <gtest/gtest.h>

#include <sstream>

#include "src/bpred/two_bc_gskew.h"
#include "src/workload/trace_generator.h"
#include "src/core/core.h"
#include "src/sim/presets.h"
#include "src/workload/profiles.h"

namespace wsrs::core {
namespace {

/** Everything a Core needs, bundled for tests. */
struct Rig
{
    explicit Rig(const CoreParams &params,
                 const std::string &bench = "gzip")
        : gen(workload::findProfile(bench), 7), stats("test"),
          mem(memory::HierarchyParams{}, stats),
          core(params, gen, bp, mem)
    {
    }

    workload::TraceGenerator gen;
    bpred::TwoBcGskew bp;
    StatGroup stats;
    memory::MemoryHierarchy mem;
    Core core;
};

CoreParams
verified(CoreParams p)
{
    p.verifyDataflow = true;
    return p;
}

TEST(Core, ConventionalRunsAndVerifiesDataflow)
{
    Rig rig(verified(sim::presetConventional(256)));
    rig.core.run(30000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
    EXPECT_GE(rig.core.stats().committed, 30000u);
    EXPECT_GT(rig.core.stats().ipc(), 0.3);
    EXPECT_LT(rig.core.stats().ipc(), 8.0);
}

TEST(Core, WriteSpecializationVerifies)
{
    Rig rig(verified(sim::presetWriteSpec(384)));
    rig.core.run(30000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, WsrsRcVerifies)
{
    Rig rig(verified(sim::presetWsrsRc(512)));
    rig.core.run(30000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, WsrsRmVerifies)
{
    Rig rig(verified(sim::presetWsrsRm(512)));
    rig.core.run(30000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, WsrsDependenceAwareVerifies)
{
    Rig rig(verified(sim::presetWsrsDepAware(512)));
    rig.core.run(30000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, BothRenamingImplementationsVerify)
{
    for (const RenameImpl impl :
         {RenameImpl::OverPickRecycle, RenameImpl::ExactCount}) {
        CoreParams p = verified(sim::presetWsrsRc(384, impl));
        Rig rig(p);
        rig.core.run(20000);
        EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
    }
}

TEST(Core, AllFastForwardScopesVerify)
{
    for (const FastForwardScope scope :
         {FastForwardScope::IntraCluster, FastForwardScope::AdjacentPair,
          FastForwardScope::Complete}) {
        CoreParams p = verified(sim::presetWsrsRc(512));
        p.ffScope = scope;
        Rig rig(p);
        rig.core.run(20000);
        EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
    }
}

TEST(Core, WiderFastForwardNeverHurts)
{
    double ipc_intra, ipc_complete;
    {
        CoreParams p = sim::presetConventional(256);
        p.ffScope = FastForwardScope::IntraCluster;
        Rig rig(p, "crafty");
        rig.core.run(40000);
        ipc_intra = rig.core.stats().ipc();
    }
    {
        CoreParams p = sim::presetConventional(256);
        p.ffScope = FastForwardScope::Complete;
        Rig rig(p, "crafty");
        rig.core.run(40000);
        ipc_complete = rig.core.stats().ipc();
    }
    EXPECT_GE(ipc_complete, ipc_intra * 0.999);
}

TEST(Core, SharedComplexUnitVerifiesAndMayCost)
{
    CoreParams p = verified(sim::presetWsrsRc(512));
    p.sharedComplexUnit = true;
    Rig rig(p);
    rig.core.run(20000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, TinySubsetsDeadlockWorkaroundMakesProgress)
{
    // 256 regs over 4 subsets = 64 < 80 logical registers per subset:
    // subsets can fill with architectural state (paper 2.3); the
    // move-injection workaround must keep the machine live.
    CoreParams p = verified(sim::presetWsrsRc(256));
    Rig rig(p, "crafty");
    rig.core.run(60000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
    EXPECT_GE(rig.core.stats().committed, 60000u);
}

TEST(Core, WriteSpecTinySubsetsAlsoProgress)
{
    CoreParams p = verified(sim::presetWriteSpec(256));
    Rig rig(p, "gcc");
    rig.core.run(60000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, WritebackCapThrottlesThroughput)
{
    double ipc_wide, ipc_narrow;
    {
        CoreParams p = sim::presetConventional(256);
        p.writebackPerCluster = 3;
        Rig rig(p, "mgrid");
        rig.core.run(40000);
        ipc_wide = rig.core.stats().ipc();
    }
    {
        CoreParams p = sim::presetConventional(256);
        p.writebackPerCluster = 1;
        Rig rig(p, "mgrid");
        rig.core.run(40000);
        ipc_narrow = rig.core.stats().ipc();
    }
    EXPECT_LT(ipc_narrow, ipc_wide);
}

TEST(Core, ResetStatsKeepsMachineState)
{
    Rig rig(verified(sim::presetConventional(256)));
    rig.core.run(10000);
    rig.core.resetStats();
    EXPECT_EQ(rig.core.stats().committed, 0u);
    EXPECT_EQ(rig.core.stats().cycles, 0u);
    rig.core.run(10000);
    EXPECT_GE(rig.core.stats().committed, 10000u);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, UnbalancingMetricBounds)
{
    Rig rig(sim::presetWsrsRm(512), "facerec");
    rig.core.run(50000);
    const CoreStats &s = rig.core.stats();
    EXPECT_GT(s.totalGroups, 300u);
    EXPECT_GE(s.unbalancingDegree(), 0.0);
    EXPECT_LE(s.unbalancingDegree(), 100.0);
}

TEST(Core, RoundRobinIsPerfectlyBalanced)
{
    Rig rig(sim::presetConventional(256));
    rig.core.run(50000);
    EXPECT_EQ(rig.core.stats().unbalancedGroups, 0u);
}

TEST(Core, BranchStatsAreConsistent)
{
    Rig rig(sim::presetConventional(256), "vpr");
    rig.core.run(40000);
    const CoreStats &s = rig.core.stats();
    EXPECT_GT(s.branches, 2000u);
    EXPECT_GT(s.mispredicts, 0u);
    EXPECT_LT(s.mispredictRate(), 0.5);
}

TEST(Core, MispredictPenaltyMattersForBranchyCode)
{
    double fast, slow;
    {
        CoreParams p = sim::presetConventional(256);
        Rig rig(p, "gcc");
        rig.core.run(40000);
        fast = rig.core.stats().ipc();
    }
    {
        CoreParams p = sim::presetConventional(256);
        p.frontEndDepth = 25;  // much deeper front end
        Rig rig(p, "gcc");
        rig.core.run(40000);
        slow = rig.core.stats().ipc();
    }
    EXPECT_LT(slow, fast);
}

TEST(Core, PerClusterInflightNeverExceedsWindow)
{
    // Indirectly validated by construction; run a stressy config and rely
    // on internal assertions (window accounting underflow would panic).
    CoreParams p = verified(sim::presetWsrsRc(384));
    p.clusterWindow = 8;
    Rig rig(p, "swim");
    rig.core.run(20000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}


TEST(Core, PoolWriteSpecializationVerifies)
{
    // Figure 2b: destinations land in the executing FU pool's subset.
    Rig rig(verified(sim::presetWriteSpecPools(512)), "applu");
    rig.core.run(30000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
}

TEST(Core, PoolWriteSpecializationNeedsMoreRegisters)
{
    // The instruction mix skews destinations toward a few pools, so at
    // equal register count pool-level WS stalls on free registers more
    // than cluster-level WS with round-robin.
    std::uint64_t pool_stalls, cluster_stalls;
    {
        Rig rig(sim::presetWriteSpecPools(384), "swim");
        rig.core.run(40000);
        pool_stalls = rig.core.stats().renameStallFreeReg;
    }
    {
        Rig rig(sim::presetWriteSpec(384), "swim");
        rig.core.run(40000);
        cluster_stalls = rig.core.stats().renameStallFreeReg;
    }
    EXPECT_GT(pool_stalls, cluster_stalls);
}


TEST(Core, TimelineRecordsOrderedPipelineEvents)
{
    Rig rig(sim::presetConventional(256));
    rig.core.enableTimeline(256);
    rig.core.run(20000);
    const auto &tl = rig.core.timeline();
    ASSERT_EQ(tl.size(), 256u);
    SeqNum prev_seq = 0;
    Cycle prev_commit = 0;
    bool first = true;
    for (const TimelineEntry &e : tl) {
        // Per-op event ordering.
        EXPECT_LT(e.renameCycle, e.issueCycle);
        EXPECT_LT(e.issueCycle, e.completeCycle);
        EXPECT_LE(e.completeCycle, e.commitCycle);
        // Commit order is program order and cycle-monotonic.
        if (!first) {
            EXPECT_GT(e.seq, prev_seq);
            EXPECT_GE(e.commitCycle, prev_commit);
        }
        prev_seq = e.seq;
        prev_commit = e.commitCycle;
        first = false;
    }
}

TEST(Core, TimelineDumpRendersRows)
{
    Rig rig(sim::presetWsrsRc(512));
    rig.core.enableTimeline(32);
    rig.core.run(5000);
    std::ostringstream os;
    rig.core.dumpTimeline(os, 16);
    const std::string text = os.str();
    EXPECT_NE(text.find('R'), std::string::npos);
    EXPECT_NE(text.find('X'), std::string::npos);
    EXPECT_NE(text.find("C0"), std::string::npos);
}

TEST(Core, IssueWidthHistogramAccountsEveryCycle)
{
    Rig rig(sim::presetConventional(256), "mgrid");
    rig.core.run(30000);
    const CoreStats &s = rig.core.stats();
    std::uint64_t cycles = 0;
    for (const std::uint64_t c : s.issueWidthHist)
        cycles += c;
    EXPECT_EQ(cycles, s.cycles);
    EXPECT_GT(s.meanIssueWidth(), 0.5);
    EXPECT_LE(s.meanIssueWidth(), 8.0);
    EXPECT_GT(s.meanWindowOccupancy(), 1.0);
    EXPECT_LE(s.meanWindowOccupancy(), 224.0);
}


TEST(Core, AvoidancePolicyPreventsDeadlockWithoutMoves)
{
    // Workaround (a) of section 2.3: with full allocation freedom (WS +
    // round-robin has any-cluster freedom), steering away from exhausted
    // subsets keeps the machine live with zero injected moves even when
    // subsets are smaller than the logical register count.
    CoreParams p = verified(sim::presetWriteSpec(256));  // 64/subset < 80
    p.deadlockPolicy = DeadlockPolicy::Avoidance;
    Rig rig(p, "gcc");
    rig.core.run(60000);
    EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
    EXPECT_EQ(rig.core.stats().injectedMoves, 0u);
}

TEST(Core, AvoidanceReducesFreeRegStallsOnWsrs)
{
    // On WSRS the freedom is partial (monadic/commutative ops), but
    // steering still avoids many stalls at tight register counts.
    std::uint64_t stalls_avoid, stalls_inject;
    {
        CoreParams p = verified(sim::presetWsrsRc(320));
        p.deadlockPolicy = DeadlockPolicy::Avoidance;
        Rig rig(p, "swim");
        rig.core.run(40000);
        stalls_avoid = rig.core.stats().renameStallFreeReg;
        EXPECT_EQ(rig.core.stats().valueMismatches, 0u);
    }
    {
        CoreParams p = verified(sim::presetWsrsRc(320));
        Rig rig(p, "swim");
        rig.core.run(40000);
        stalls_inject = rig.core.stats().renameStallFreeReg;
    }
    EXPECT_LE(stalls_avoid, stalls_inject + 1000);
}

TEST(Core, FetchBreakOnTakenCostsThroughput)
{
    double ideal, realistic;
    {
        CoreParams p = sim::presetConventional(256);
        Rig rig(p, "gcc");  // branchy, ~60% taken
        rig.core.run(40000);
        ideal = rig.core.stats().ipc();
    }
    {
        CoreParams p = sim::presetConventional(256);
        p.fetchBreakOnTaken = true;
        Rig rig(p, "gcc");
        rig.core.run(40000);
        realistic = rig.core.stats().ipc();
    }
    EXPECT_LT(realistic, ideal);
}


TEST(Core, PhysicalRegisterConservation)
{
    // free + recycling/staged + architectural + in-flight-oldPdst must
    // equal the register file size at every cycle boundary, for both
    // renaming implementations.
    for (const RenameImpl impl :
         {RenameImpl::OverPickRecycle, RenameImpl::ExactCount}) {
        CoreParams p = sim::presetWsrsRc(384, impl);
        Rig rig(p, "vpr");
        for (int step = 0; step < 40; ++step) {
            rig.core.run(500);
            const Core::RegAccounting acc = rig.core.regAccounting();
            EXPECT_EQ(acc.free + acc.recycling + acc.architectural +
                          acc.inFlight,
                      acc.total)
                << "impl=" << int(impl) << " step=" << step
                << " free=" << acc.free << " rec=" << acc.recycling
                << " arch=" << acc.architectural
                << " inflight=" << acc.inFlight;
        }
    }
}

TEST(Core, MinimumMispredictPenaltyIsRealized)
{
    // Via the timeline: after a mispredicted branch issued at cycle t,
    // the first correct-path micro-op renames no earlier than
    // t + regReadStages + 1 (resolve) + frontEndDepth, and some branch
    // should achieve exactly that minimum.
    CoreParams p = sim::presetConventional(256);
    Rig rig(p, "gcc");
    rig.core.enableTimeline(20000);
    rig.core.run(20000);

    const Cycle floor_gap = p.regReadStages + 1 + p.frontEndDepth;
    const auto &tl = rig.core.timeline();
    Cycle min_gap = kNeverCycle;
    for (std::size_t i = 0; i + 1 < tl.size(); ++i) {
        if (!tl[i].mispredicted)
            continue;
        const Cycle gap = tl[i + 1].renameCycle - tl[i].issueCycle;
        EXPECT_GE(gap, floor_gap);
        min_gap = std::min(min_gap, gap);
    }
    ASSERT_NE(min_gap, kNeverCycle) << "no mispredicted branch observed";
    EXPECT_EQ(min_gap, floor_gap);
}

TEST(Core, RejectsInvalidParams)
{
    workload::TraceGenerator gen(workload::findProfile("gzip"));
    bpred::TwoBcGskew bp;
    StatGroup stats("t");
    memory::MemoryHierarchy mem(memory::HierarchyParams{}, stats);

    CoreParams p = sim::presetWsrsRc(512);
    p.numClusters = 3;
    EXPECT_THROW(Core c(p, gen, bp, mem), FatalError);

    CoreParams q = sim::presetConventional(256);
    q.fetchWidth = 0;
    EXPECT_THROW(Core c(q, gen, bp, mem), FatalError);
}

} // namespace
} // namespace wsrs::core
