/**
 * @file
 * Regression lock on the event-driven wake-up rewrite.
 *
 * The issue stage used to re-scan every waiting micro-op in every cluster
 * queue each cycle; it now walks only per-cluster ready lists fed by
 * producer-subscription wake-up. The rewrite must be cycle-exact: these
 * golden values were captured from the seed (full-scan) implementation on
 * one short simulation per Figure-4 preset and must never drift.
 */
#include <gtest/gtest.h>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace wsrs::core {
namespace {

struct Golden
{
    const char *bench;
    const char *machine;
    std::uint64_t cycles;
    std::uint64_t committed;
    std::uint64_t loadForwards;
    std::uint64_t stallFree;
    std::uint64_t stallWindow;
    std::uint64_t stallRob;
    std::uint64_t stallLsq;
};

// Captured from the seed implementation at warmupUops=20000,
// measureUops=50000, seed=0 (tools/wsrs-sim --csv).
constexpr Golden kGolden[] = {
    {"gzip", "RR-256", 26102, 50007, 2189, 5637, 813, 6274, 0},
    {"swim", "RR-256", 33598, 50003, 3227, 25928, 830, 0, 0},
    {"gzip", "WSRR-384", 25717, 50003, 2186, 0, 0, 12446, 0},
    {"swim", "WSRR-384", 32914, 50003, 3250, 0, 0, 24211, 1506},
    {"gzip", "WSRR-512", 25717, 50003, 2186, 0, 0, 12446, 0},
    {"swim", "WSRR-512", 32914, 50003, 3250, 0, 0, 24211, 1506},
    {"gzip", "WSRS-RC-384", 28146, 50001, 2036, 0, 12355, 695, 0},
    {"swim", "WSRS-RC-384", 34047, 50003, 3126, 0, 24886, 611, 329},
    {"gzip", "WSRS-RC-512", 28146, 50001, 2036, 0, 12355, 695, 0},
    {"swim", "WSRS-RC-512", 34047, 50003, 3126, 0, 24886, 611, 329},
    {"gzip", "WSRS-RM-512", 30945, 50002, 1855, 0, 16095, 3, 0},
    {"swim", "WSRS-RM-512", 34048, 50000, 3155, 0, 25524, 48, 89},
};

TEST(WakeupEquivalence, MatchesSeedGoldenPerFigure4Preset)
{
    for (const Golden &g : kGolden) {
        SCOPED_TRACE(std::string(g.bench) + " on " + g.machine);
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(g.machine);
        cfg.warmupUops = 20000;
        cfg.measureUops = 50000;
        const sim::SimResults r =
            sim::runSimulation(workload::findProfile(g.bench), cfg);
        EXPECT_EQ(r.stats.cycles, g.cycles);
        EXPECT_EQ(r.stats.committed, g.committed);
        EXPECT_EQ(r.stats.loadForwards, g.loadForwards);
        EXPECT_EQ(r.stats.renameStallFreeReg, g.stallFree);
        EXPECT_EQ(r.stats.renameStallWindow, g.stallWindow);
        EXPECT_EQ(r.stats.renameStallRob, g.stallRob);
        EXPECT_EQ(r.stats.renameStallLsq, g.stallLsq);
        EXPECT_NEAR(r.ipc, double(g.committed) / g.cycles, 1e-12);
    }
}

TEST(WakeupEquivalence, VerifiedDataflowStillPasses)
{
    // Oracle value checking crosses every issued result; a wake-up that
    // issued a micro-op before its operands were readable would surface
    // as a value mismatch (runSimulation fatals on any).
    for (const char *machine : {"RR-256", "WSRS-RC-512"}) {
        sim::SimConfig cfg;
        cfg.core = sim::findPreset(machine);
        cfg.warmupUops = 5000;
        cfg.measureUops = 30000;
        cfg.verifyDataflow = true;
        const sim::SimResults r =
            sim::runSimulation(workload::findProfile("gcc"), cfg);
        EXPECT_EQ(r.stats.valueMismatches, 0u);
    }
}

} // namespace
} // namespace wsrs::core
