/** @file Tests for subset-aware register renaming (paper section 2.2). */
#include <gtest/gtest.h>

#include "src/core/rename.h"
#include "src/workload/dataflow.h"

namespace wsrs::core {
namespace {

isa::MicroOp
aluOp(LogReg s1, LogReg s2, LogReg d)
{
    isa::MicroOp op;
    op.op = isa::OpClass::IntAlu;
    op.src1 = s1;
    op.src2 = s2;
    op.dst = d;
    return op;
}

TEST(Renamer, InitialMappingDistributesOverSubsets)
{
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);
    // 80 logical registers round-robin over 4 subsets: 20 each.
    for (SubsetId s = 0; s < 4; ++s)
        EXPECT_EQ(renamer.archCount(s), 20u);
    for (unsigned r = 0; r < isa::kNumLogRegs; ++r) {
        EXPECT_EQ(renamer.subsetOfLog(LogReg(r)), r % 4);
        EXPECT_EQ(prf.value(renamer.mapping(LogReg(r))),
                  workload::initRegValue(LogReg(r)));
    }
}

TEST(Renamer, RenameUpdatesMapAndReturnsOldMapping)
{
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    const PhysReg old5 = renamer.mapping(5);
    renamer.beginCycle(0);
    const RenamedRegs rr = renamer.rename(aluOp(3, 4, 5), 2);
    renamer.endCycle(0);

    EXPECT_EQ(rr.psrc1, renamer.mapping(3));
    EXPECT_EQ(rr.psrc2, renamer.mapping(4));
    EXPECT_EQ(rr.oldPdst, old5);
    EXPECT_EQ(renamer.mapping(5), rr.pdst);
    EXPECT_EQ(prf.subsetOf(rr.pdst), 2);
    EXPECT_EQ(renamer.subsetOfLog(5), 2);
}

TEST(Renamer, IntraGroupDependencyPropagation)
{
    // Task (A): the second op of a group reading the first op's dest must
    // see the *new* physical register.
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    renamer.beginCycle(0);
    const RenamedRegs first = renamer.rename(aluOp(1, 2, 9), 0);
    const RenamedRegs second = renamer.rename(aluOp(9, 3, 10), 1);
    renamer.endCycle(0);
    EXPECT_EQ(second.psrc1, first.pdst);
}

TEST(Renamer, ArchCountTracksSubsetMigration)
{
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    // Logical reg 0 starts in subset 0; rename it into subset 3.
    renamer.beginCycle(0);
    renamer.rename(aluOp(1, 2, 0), 3);
    renamer.endCycle(0);
    EXPECT_EQ(renamer.archCount(0), 19u);
    EXPECT_EQ(renamer.archCount(3), 21u);
}

TEST(Renamer, ExactCountConsumesOneRegisterPerRename)
{
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    const unsigned before = prf.numFree(1);
    renamer.beginCycle(0);
    renamer.rename(aluOp(1, 2, 7), 1);
    renamer.endCycle(0);
    EXPECT_EQ(prf.numFree(1), before - 1);
}

TEST(Renamer, OverPickStagesGroupWidthFromEverySubset)
{
    // Impl-1 (paper 2.2.1): N registers picked from every free list each
    // cycle; the unused ones recycle and are unavailable for the
    // recycling-pipeline depth.
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::OverPickRecycle, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    const unsigned free1 = prf.numFree(1);
    renamer.beginCycle(0);
    renamer.rename(aluOp(1, 2, 7), 1);  // one register actually used
    renamer.endCycle(0);
    // 8 were staged, 1 consumed, 7 recycling: none back yet.
    EXPECT_EQ(prf.numFree(1), free1 - 8);
    EXPECT_EQ(prf.inRecycler(), 7u + 8u * 3);  // 7 + full stages of others

    renamer.beginCycle(4);  // recycleDelay elapsed -> recycled regs usable
    renamer.endCycle(4);
    // All staged regs from cycle 4 are returned at end; after drain at
    // cycle 8 everything except the consumed register is free again.
    renamer.beginCycle(8);
    renamer.endCycle(8);
    prf.drainRecycler(8);
    unsigned total_free = 0;
    for (SubsetId s = 0; s < 4; ++s)
        total_free += prf.numFree(s);
    EXPECT_EQ(total_free + prf.inRecycler() + 80 + 1, 512u);
}

TEST(Renamer, OverPickCommitFreeGoesThroughRecycler)
{
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::OverPickRecycle, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    renamer.beginCycle(0);
    const RenamedRegs rr = renamer.rename(aluOp(1, 2, 7), 1);
    renamer.endCycle(0);
    const SubsetId s = prf.subsetOf(rr.oldPdst);
    renamer.commitFree(rr.oldPdst, 10);  // matures at 10 + recycleDelay
    prf.drainRecycler(13);
    const unsigned free_at_13 = prf.numFree(s);
    prf.drainRecycler(14);
    EXPECT_EQ(prf.numFree(s), free_at_13 + 1);
}

TEST(Renamer, ExactCountCommitFreeIsImmediate)
{
    PhysRegFile prf(512, 4);
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    renamer.beginCycle(0);
    const RenamedRegs rr = renamer.rename(aluOp(1, 2, 7), 1);
    renamer.endCycle(0);
    const SubsetId s = prf.subsetOf(rr.oldPdst);
    const unsigned before = prf.numFree(s);
    renamer.commitFree(rr.oldPdst, 10);
    EXPECT_EQ(prf.numFree(s), before + 1);
}

TEST(Renamer, DeadlockDetectedWhenSubsetFullyArchitectural)
{
    // Subset smaller than the logical register count (paper 2.3): rename
    // enough logical registers into subset 0 to make every register there
    // architectural.
    PhysRegFile prf(96, 4);  // 24 per subset < 80 logical
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);
    EXPECT_EQ(renamer.archCount(0), 20u);
    EXPECT_EQ(prf.numFree(0), 4u);

    // Four renames into subset 0; committing each frees the old mapping
    // from *other* subsets (dst regs currently mapped elsewhere).
    renamer.beginCycle(0);
    for (const LogReg d : {LogReg(1), LogReg(2), LogReg(3), LogReg(5)}) {
        const RenamedRegs rr = renamer.rename(aluOp(8, 9, d), 0);
        renamer.commitFree(rr.oldPdst, 0);
    }
    renamer.endCycle(0);

    EXPECT_EQ(renamer.archCount(0), 24u);
    EXPECT_EQ(prf.numFree(0), 0u);
    EXPECT_TRUE(renamer.deadlocked(0));
    EXPECT_FALSE(renamer.deadlocked(1));
}

TEST(Renamer, NotDeadlockedWhileRegistersInFlight)
{
    PhysRegFile prf(96, 4);
    Renamer renamer(prf, RenameImpl::ExactCount, 8, 4);
    renamer.initMapping(&workload::initRegValue);

    // Renaming a register whose old mapping was itself in subset 0 keeps
    // that old register in flight (freed only at commit), so the subset is
    // not fully architectural even with an empty free list.
    renamer.beginCycle(0);
    renamer.rename(aluOp(8, 9, 0), 0);  // log 0 was already in subset 0
    renamer.rename(aluOp(8, 9, 1), 0);
    renamer.rename(aluOp(8, 9, 2), 0);
    renamer.rename(aluOp(8, 9, 3), 0);
    renamer.endCycle(0);
    EXPECT_EQ(prf.numFree(0), 0u);
    EXPECT_FALSE(renamer.deadlocked(0));  // old log-0 mapping in flight
}

TEST(Renamer, RejectsTooFewPhysicalRegisters)
{
    PhysRegFile prf(64, 4);  // 64 < 80 logical registers
    EXPECT_THROW(Renamer r(prf, RenameImpl::ExactCount, 8, 4), FatalError);
}

} // namespace
} // namespace wsrs::core
