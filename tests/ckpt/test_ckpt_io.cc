/** @file Tests for the wsrs-ckpt-v1 checkpoint container format. */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "src/ckpt/io.h"
#include "src/ckpt/warmup_cache.h"
#include "src/common/log.h"

namespace wsrs::ckpt {
namespace {

/** Serialize a two-section checkpoint and return its bytes. */
std::string
makeCheckpoint(std::string_view kind, std::uint64_t meta_hash)
{
    std::ostringstream os(std::ios::binary);
    CheckpointWriter cw(os, "<test>", kind, meta_hash);
    {
        Writer w;
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdeadbeef);
        w.u64(0x0123456789abcdefull);
        w.d64(3.14159);
        w.b(true);
        w.str("hello, checkpoint");
        cw.section("alpha", w);
    }
    {
        Writer w;
        std::vector<std::uint64_t> v{1, 2, 3, 5, 8, 13};
        writeVec(w, v);
        cw.section("beta", w);
    }
    cw.finish();
    return os.str();
}

TEST(CkptIo, Crc32MatchesKnownVector)
{
    // The canonical IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(CkptIo, WriterReaderRoundTripAllTypes)
{
    Writer w;
    w.u8(0xff);
    w.u16(0xbeef);
    w.u32(0x12345678);
    w.u64(~0ull);
    w.d64(-0.0);
    w.b(false);
    w.str("");
    w.str("x\0y");  // literal keeps only "x": verify embedded use via size
    Reader r(w.buffer(), "<mem>");
    EXPECT_EQ(r.u8(), 0xffu);
    EXPECT_EQ(r.u16(), 0xbeefu);
    EXPECT_EQ(r.u32(), 0x12345678u);
    EXPECT_EQ(r.u64(), ~0ull);
    const double d = r.d64();
    EXPECT_EQ(d, 0.0);
    EXPECT_TRUE(std::signbit(d));
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), "x");
    EXPECT_TRUE(r.atEnd());
}

TEST(CkptIo, ReaderReportsTruncationWithOffset)
{
    Writer w;
    w.u32(7);
    Reader r(w.buffer(), "<mem>", 100);
    EXPECT_EQ(r.u32(), 7u);
    try {
        (void)r.u64();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("104"), std::string::npos)
            << e.what();
    }
}

TEST(CkptIo, ContainerRoundTrip)
{
    const std::string bytes = makeCheckpoint(kKindFullSim, 0x1122334455667788);
    std::istringstream is(bytes, std::ios::binary);
    CheckpointReader cr(is, "<test>");
    EXPECT_EQ(cr.kind(), kKindFullSim);
    EXPECT_EQ(cr.metaHash(), 0x1122334455667788u);
    EXPECT_EQ(cr.sectionCount(), 2u);
    EXPECT_TRUE(cr.hasSection("alpha"));
    EXPECT_TRUE(cr.hasSection("beta"));
    EXPECT_FALSE(cr.hasSection("gamma"));
    cr.expect(kKindFullSim, 0x1122334455667788);

    Reader a = cr.section("alpha");
    EXPECT_EQ(a.u8(), 0xabu);
    EXPECT_EQ(a.u16(), 0x1234u);
    EXPECT_EQ(a.u32(), 0xdeadbeefu);
    EXPECT_EQ(a.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(a.d64(), 3.14159);
    EXPECT_TRUE(a.b());
    EXPECT_EQ(a.str(), "hello, checkpoint");
    EXPECT_TRUE(a.atEnd());

    Reader b = cr.section("beta");
    std::vector<std::uint64_t> v;
    readVecExact(b, v, 6, "fib");
    EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3, 5, 8, 13}));
}

TEST(CkptIo, DetectsSingleBitCorruption)
{
    std::string bytes = makeCheckpoint(kKindFullSim, 1);
    // Flip one bit inside the first section's payload (past the header and
    // the section frame; the header is 8+4+8+4+len("full-sim") bytes).
    bytes[60] = static_cast<char>(bytes[60] ^ 0x10);
    std::istringstream is(bytes, std::ios::binary);
    try {
        CheckpointReader cr(is, "corrupt.ckpt");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("corrupt.ckpt"), std::string::npos) << msg;
        EXPECT_NE(msg.find("CRC"), std::string::npos) << msg;
    }
}

TEST(CkptIo, DetectsTruncation)
{
    const std::string bytes = makeCheckpoint(kKindFullSim, 1);
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{20}, bytes.size() / 2,
          bytes.size() - 3}) {
        std::istringstream is(bytes.substr(0, keep), std::ios::binary);
        EXPECT_THROW(CheckpointReader cr(is, "trunc.ckpt"), FatalError)
            << "kept " << keep << " of " << bytes.size() << " bytes";
    }
}

TEST(CkptIo, DetectsBadMagicAndVersionSkew)
{
    std::string bytes = makeCheckpoint(kKindFullSim, 1);
    std::string bad = bytes;
    bad[0] = 'X';
    std::istringstream is1(bad, std::ios::binary);
    EXPECT_THROW(CheckpointReader cr(is1, "x"), FatalError);

    std::string skew = bytes;
    skew[8] = static_cast<char>(kFormatVersion + 1);  // version u32 LSB
    std::istringstream is2(skew, std::ios::binary);
    EXPECT_THROW(CheckpointReader cr(is2, "x"), FatalError);
}

TEST(CkptIo, ExpectRejectsKindAndMetaMismatch)
{
    const std::string bytes = makeCheckpoint(kKindWarmup, 42);
    std::istringstream is(bytes, std::ios::binary);
    CheckpointReader cr(is, "<test>");
    EXPECT_THROW(cr.expect(kKindFullSim, 42), FatalError);
    EXPECT_THROW(cr.expect(kKindWarmup, 43), FatalError);
    cr.expect(kKindWarmup, 42);  // matching pair passes
    EXPECT_THROW((void)cr.section("missing"), FatalError);
}

TEST(WarmupCache, BuildsOncePerKeyAndCountsHits)
{
    WarmupCache cache;
    int builds = 0;
    const auto build = [&] {
        ++builds;
        return std::string("blob");
    };
    const auto a = cache.getOrBuild(1, build);
    const auto b = cache.getOrBuild(1, build);
    const auto c = cache.getOrBuild(2, build);
    EXPECT_EQ(*a, "blob");
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(builds, 2);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(WarmupCache, BuilderFailureLeavesSlotRetryable)
{
    WarmupCache cache;
    EXPECT_THROW(cache.getOrBuild(
                     9, [&]() -> std::string { fatal("builder exploded"); }),
                 FatalError);
    const auto ok = cache.getOrBuild(9, [] { return std::string("second"); });
    EXPECT_EQ(*ok, "second");
}

} // namespace
} // namespace wsrs::ckpt
