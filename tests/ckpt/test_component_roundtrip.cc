/**
 * @file
 * Per-component snapshot/restore round-trip tests: a restored component
 * must be behaviorally indistinguishable from the original — identical
 * outcomes for identical subsequent stimulus.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/tournament.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/ckpt/io.h"
#include "src/common/log.h"
#include "src/core/phys_regfile.h"
#include "src/memory/cache.h"
#include "src/memory/hierarchy.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

namespace wsrs {
namespace {

/** Snapshot @p src and restore the bytes into @p dst. */
template <typename T>
void
roundTrip(const T &src, T &dst)
{
    ckpt::Writer w;
    src.snapshot(w);
    ckpt::Reader r(w.buffer(), "<roundtrip>");
    dst.restore(r);
    EXPECT_TRUE(r.atEnd()) << "restore left " << r.remaining()
                           << " unread bytes";
}

/** Deterministic address pattern covering a few sets with reuse. */
Addr
probeAddr(int i)
{
    return static_cast<Addr>((i * 0x9e3779b97f4a7c15ull) >> 16) & 0xffff8;
}

TEST(ComponentRoundTrip, CacheMidSetFill)
{
    // Partially fill one set (2 of 4 ways) so restore must reproduce a
    // set with both valid and invalid lines, then check that original and
    // restored caches agree on every subsequent access outcome.
    memory::CacheParams p{.sizeBytes = 4096, .assoc = 4, .lineBytes = 64};
    memory::Cache cache(p);
    const Addr setStride = 4096 / 4;  // numSets * lineBytes
    cache.access(0x0, false);             // way 0 of set 0
    cache.access(setStride * 4, true);    // way 1 of set 0, dirty
    EXPECT_TRUE(cache.probe(0x0));
    EXPECT_FALSE(cache.probe(setStride * 8));

    memory::Cache restored(p);
    roundTrip(cache, restored);
    EXPECT_TRUE(restored.probe(0x0));
    EXPECT_TRUE(restored.probe(setStride * 4));
    EXPECT_FALSE(restored.probe(setStride * 8));

    // Overfill the set in both: victims (LRU order, dirty writebacks)
    // must match, proving replacement state survived the round trip.
    for (int i = 2; i < 8; ++i) {
        const auto a = cache.access(setStride * 4 * i, i % 2 == 0);
        const auto b = restored.access(setStride * 4 * i, i % 2 == 0);
        EXPECT_EQ(a.hit, b.hit) << "access " << i;
        EXPECT_EQ(a.writebackVictim, b.writebackVictim) << "access " << i;
    }
}

TEST(ComponentRoundTrip, CacheEveryReplacementPolicy)
{
    using memory::ReplacementPolicy;
    for (const auto policy :
         {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
          ReplacementPolicy::Random, ReplacementPolicy::TreePlru}) {
        memory::CacheParams p{.sizeBytes = 8192, .assoc = 4, .lineBytes = 64,
                              .replacement = policy};
        memory::Cache cache(p);
        for (int i = 0; i < 500; ++i)
            cache.access(probeAddr(i), i % 3 == 0);

        memory::Cache restored(p);
        roundTrip(cache, restored);
        for (int i = 0; i < 500; ++i) {
            const auto a = cache.access(probeAddr(i * 7 + 3), i % 5 == 0);
            const auto b = restored.access(probeAddr(i * 7 + 3), i % 5 == 0);
            ASSERT_EQ(a.hit, b.hit)
                << "policy " << int(policy) << " access " << i;
            ASSERT_EQ(a.writebackVictim, b.writebackVictim)
                << "policy " << int(policy) << " access " << i;
        }
    }
}

TEST(ComponentRoundTrip, CacheRejectsGeometryMismatch)
{
    memory::Cache small(
        memory::CacheParams{.sizeBytes = 4096, .assoc = 4, .lineBytes = 64});
    memory::Cache big(
        memory::CacheParams{.sizeBytes = 8192, .assoc = 4, .lineBytes = 64});
    ckpt::Writer w;
    small.snapshot(w);
    ckpt::Reader r(w.buffer(), "<geom>");
    EXPECT_THROW(big.restore(r), FatalError);
}

TEST(ComponentRoundTrip, HierarchyTimingAndCounters)
{
    memory::HierarchyParams p;
    p.mshrs = 4;  // exercise the in-flight-miss ring too
    StatGroup sa("a"), sb("b");
    memory::MemoryHierarchy mem(p, sa);
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
        mem.access(probeAddr(i), i % 4 == 0, now);
        now += 2;
    }

    memory::MemoryHierarchy restored(p, sb);
    roundTrip(mem, restored);
    EXPECT_EQ(restored.accesses(), mem.accesses());
    EXPECT_EQ(restored.l1Misses(), mem.l1Misses());
    EXPECT_EQ(restored.l2Misses(), mem.l2Misses());
    EXPECT_EQ(restored.mshrStalls(), mem.mshrStalls());

    // Timing must agree access for access: port occupancy, MSHR ring and
    // tag state all influence latency.
    for (int i = 0; i < 2000; ++i) {
        const auto a = mem.access(probeAddr(i * 3 + 1), i % 5 == 0, now);
        const auto b = restored.access(probeAddr(i * 3 + 1), i % 5 == 0, now);
        ASSERT_EQ(a.latency, b.latency) << "access " << i;
        ASSERT_EQ(a.l1Hit, b.l1Hit) << "access " << i;
        ASSERT_EQ(a.l2Hit, b.l2Hit) << "access " << i;
        now += 3;
    }
}

TEST(ComponentRoundTrip, EveryPredictorKind)
{
    const auto make = [](int kind) -> std::unique_ptr<bpred::BranchPredictor> {
        switch (kind) {
          case 0: return std::make_unique<bpred::TwoBcGskew>();
          case 1: return std::make_unique<bpred::TournamentPredictor>();
          case 2: return std::make_unique<bpred::GsharePredictor>();
          case 3: return std::make_unique<bpred::BimodalPredictor>();
          default: return std::make_unique<bpred::PerfectPredictor>();
        }
    };
    for (int kind = 0; kind < 5; ++kind) {
        const auto a = make(kind);
        const auto b = make(kind);
        // Train with a deterministic, history-sensitive stream.
        std::uint64_t x = 0x2545f4914f6cdd1d;
        for (int i = 0; i < 5000; ++i) {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            const Addr pc = 0x1000 + (x & 0x3ff) * 4;
            const bool taken = ((x >> 11) & 7) != 0;
            (void)a->lookup(pc);
            a->update(pc, taken);
        }
        ckpt::Writer w;
        a->snapshot(w);
        ckpt::Reader r(w.buffer(), "<bpred>");
        b->restore(r);
        EXPECT_TRUE(r.atEnd()) << a->name();
        // Identical predictions and history evolution from here on.
        for (int i = 0; i < 5000; ++i) {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            const Addr pc = 0x1000 + (x & 0x3ff) * 4;
            const bool taken = ((x >> 9) & 3) != 0;
            ASSERT_EQ(a->lookup(pc), b->lookup(pc))
                << a->name() << " diverged at " << i;
            a->update(pc, taken);
            b->update(pc, taken);
        }
    }
}

TEST(ComponentRoundTrip, PredictorRejectsWrongTableSize)
{
    bpred::BimodalPredictor small(10);  // 2^10 entries
    bpred::BimodalPredictor big(12);
    ckpt::Writer w;
    small.snapshot(w);
    ckpt::Reader r(w.buffer(), "<bpred>");
    EXPECT_THROW(big.restore(r), FatalError);
}

TEST(ComponentRoundTrip, TraceGeneratorMidStream)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile("mcf");
    workload::TraceGenerator a(profile, 7);
    for (int i = 0; i < 12345; ++i)
        (void)a.next();

    workload::TraceGenerator b(profile, 7);
    roundTrip(a, b);
    EXPECT_EQ(b.produced(), a.produced());
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp x = a.next();
        const isa::MicroOp y = b.next();
        ASSERT_EQ(x.seq, y.seq);
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.src1, y.src1);
        ASSERT_EQ(x.src2, y.src2);
        ASSERT_EQ(x.dst, y.dst);
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.effAddr, y.effAddr);
    }
}

TEST(ComponentRoundTrip, TraceGeneratorRejectsDifferentProfile)
{
    workload::TraceGenerator a(workload::findProfile("gzip"), 0);
    workload::TraceGenerator b(workload::findProfile("swim"), 0);
    for (int i = 0; i < 100; ++i)
        (void)a.next();
    ckpt::Writer w;
    a.snapshot(w);
    ckpt::Reader r(w.buffer(), "<gen>");
    EXPECT_THROW(b.restore(r), FatalError);
}

TEST(ComponentRoundTrip, PhysRegFileWithPendingRecycles)
{
    core::PhysRegFile a(128, 4);
    std::vector<PhysReg> held;
    for (int s = 0; s < 4; ++s)
        for (int i = 0; i < 8; ++i)
            held.push_back(a.allocate(static_cast<SubsetId>(s)));
    a.releaseDeferred(held[0], 50);
    a.releaseDeferred(held[5], 60);

    core::PhysRegFile b(128, 4);
    roundTrip(a, b);
    for (SubsetId s = 0; s < 4; ++s)
        EXPECT_EQ(b.numFree(s), a.numFree(s)) << "subset " << int(s);
    // Allocation order must match exactly (free lists are ordered).
    for (int i = 0; i < 20; ++i) {
        const SubsetId s = static_cast<SubsetId>(i % 4);
        ASSERT_EQ(a.allocate(s), b.allocate(s)) << "alloc " << i;
    }
}

} // namespace
} // namespace wsrs
