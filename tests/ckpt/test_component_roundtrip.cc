/**
 * @file
 * Per-component snapshot/restore round-trip tests: a restored component
 * must be behaviorally indistinguishable from the original — identical
 * outcomes for identical subsequent stimulus.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/tournament.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/ckpt/io.h"
#include "src/common/log.h"
#include "src/core/lsq.h"
#include "src/core/phys_regfile.h"
#include "src/memory/cache.h"
#include "src/memory/hierarchy.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

namespace wsrs {
namespace {

/** Snapshot @p src and restore the bytes into @p dst. */
template <typename T>
void
roundTrip(const T &src, T &dst)
{
    ckpt::Writer w;
    src.snapshot(w);
    ckpt::Reader r(w.buffer(), "<roundtrip>");
    dst.restore(r);
    EXPECT_TRUE(r.atEnd()) << "restore left " << r.remaining()
                           << " unread bytes";
}

/** Deterministic address pattern covering a few sets with reuse. */
Addr
probeAddr(int i)
{
    return static_cast<Addr>((i * 0x9e3779b97f4a7c15ull) >> 16) & 0xffff8;
}

TEST(ComponentRoundTrip, CacheMidSetFill)
{
    // Partially fill one set (2 of 4 ways) so restore must reproduce a
    // set with both valid and invalid lines, then check that original and
    // restored caches agree on every subsequent access outcome.
    memory::CacheParams p{.sizeBytes = 4096, .assoc = 4, .lineBytes = 64};
    memory::Cache cache(p);
    const Addr setStride = 4096 / 4;  // numSets * lineBytes
    cache.access(0x0, false);             // way 0 of set 0
    cache.access(setStride * 4, true);    // way 1 of set 0, dirty
    EXPECT_TRUE(cache.probe(0x0));
    EXPECT_FALSE(cache.probe(setStride * 8));

    memory::Cache restored(p);
    roundTrip(cache, restored);
    EXPECT_TRUE(restored.probe(0x0));
    EXPECT_TRUE(restored.probe(setStride * 4));
    EXPECT_FALSE(restored.probe(setStride * 8));

    // Overfill the set in both: victims (LRU order, dirty writebacks)
    // must match, proving replacement state survived the round trip.
    for (int i = 2; i < 8; ++i) {
        const auto a = cache.access(setStride * 4 * i, i % 2 == 0);
        const auto b = restored.access(setStride * 4 * i, i % 2 == 0);
        EXPECT_EQ(a.hit, b.hit) << "access " << i;
        EXPECT_EQ(a.writebackVictim, b.writebackVictim) << "access " << i;
    }
}

TEST(ComponentRoundTrip, CacheEveryReplacementPolicy)
{
    using memory::ReplacementPolicy;
    for (const auto policy :
         {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
          ReplacementPolicy::Random, ReplacementPolicy::TreePlru}) {
        memory::CacheParams p{.sizeBytes = 8192, .assoc = 4, .lineBytes = 64,
                              .replacement = policy};
        memory::Cache cache(p);
        for (int i = 0; i < 500; ++i)
            cache.access(probeAddr(i), i % 3 == 0);

        memory::Cache restored(p);
        roundTrip(cache, restored);
        for (int i = 0; i < 500; ++i) {
            const auto a = cache.access(probeAddr(i * 7 + 3), i % 5 == 0);
            const auto b = restored.access(probeAddr(i * 7 + 3), i % 5 == 0);
            ASSERT_EQ(a.hit, b.hit)
                << "policy " << int(policy) << " access " << i;
            ASSERT_EQ(a.writebackVictim, b.writebackVictim)
                << "policy " << int(policy) << " access " << i;
        }
    }
}

TEST(ComponentRoundTrip, CacheRejectsGeometryMismatch)
{
    memory::Cache small(
        memory::CacheParams{.sizeBytes = 4096, .assoc = 4, .lineBytes = 64});
    memory::Cache big(
        memory::CacheParams{.sizeBytes = 8192, .assoc = 4, .lineBytes = 64});
    ckpt::Writer w;
    small.snapshot(w);
    ckpt::Reader r(w.buffer(), "<geom>");
    EXPECT_THROW(big.restore(r), FatalError);
}

TEST(ComponentRoundTrip, HierarchyTimingAndCounters)
{
    memory::HierarchyParams p;
    p.mshrs = 4;  // exercise the in-flight-miss ring too
    StatGroup sa("a"), sb("b");
    memory::MemoryHierarchy mem(p, sa);
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
        mem.access(probeAddr(i), i % 4 == 0, now);
        now += 2;
    }

    memory::MemoryHierarchy restored(p, sb);
    roundTrip(mem, restored);
    EXPECT_EQ(restored.accesses(), mem.accesses());
    EXPECT_EQ(restored.l1Misses(), mem.l1Misses());
    EXPECT_EQ(restored.l2Misses(), mem.l2Misses());
    EXPECT_EQ(restored.mshrStalls(), mem.mshrStalls());

    // Timing must agree access for access: port occupancy, MSHR ring and
    // tag state all influence latency.
    for (int i = 0; i < 2000; ++i) {
        const auto a = mem.access(probeAddr(i * 3 + 1), i % 5 == 0, now);
        const auto b = restored.access(probeAddr(i * 3 + 1), i % 5 == 0, now);
        ASSERT_EQ(a.latency, b.latency) << "access " << i;
        ASSERT_EQ(a.l1Hit, b.l1Hit) << "access " << i;
        ASSERT_EQ(a.l2Hit, b.l2Hit) << "access " << i;
        now += 3;
    }
}

TEST(ComponentRoundTrip, EveryPredictorKind)
{
    const auto make = [](int kind) -> std::unique_ptr<bpred::BranchPredictor> {
        switch (kind) {
          case 0: return std::make_unique<bpred::TwoBcGskew>();
          case 1: return std::make_unique<bpred::TournamentPredictor>();
          case 2: return std::make_unique<bpred::GsharePredictor>();
          case 3: return std::make_unique<bpred::BimodalPredictor>();
          default: return std::make_unique<bpred::PerfectPredictor>();
        }
    };
    for (int kind = 0; kind < 5; ++kind) {
        const auto a = make(kind);
        const auto b = make(kind);
        // Train with a deterministic, history-sensitive stream.
        std::uint64_t x = 0x2545f4914f6cdd1d;
        for (int i = 0; i < 5000; ++i) {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            const Addr pc = 0x1000 + (x & 0x3ff) * 4;
            const bool taken = ((x >> 11) & 7) != 0;
            (void)a->lookup(pc);
            a->update(pc, taken);
        }
        ckpt::Writer w;
        a->snapshot(w);
        ckpt::Reader r(w.buffer(), "<bpred>");
        b->restore(r);
        EXPECT_TRUE(r.atEnd()) << a->name();
        // Identical predictions and history evolution from here on.
        for (int i = 0; i < 5000; ++i) {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            const Addr pc = 0x1000 + (x & 0x3ff) * 4;
            const bool taken = ((x >> 9) & 3) != 0;
            ASSERT_EQ(a->lookup(pc), b->lookup(pc))
                << a->name() << " diverged at " << i;
            a->update(pc, taken);
            b->update(pc, taken);
        }
    }
}

TEST(ComponentRoundTrip, PredictorRejectsWrongTableSize)
{
    bpred::BimodalPredictor small(10);  // 2^10 entries
    bpred::BimodalPredictor big(12);
    ckpt::Writer w;
    small.snapshot(w);
    ckpt::Reader r(w.buffer(), "<bpred>");
    EXPECT_THROW(big.restore(r), FatalError);
}

TEST(ComponentRoundTrip, TraceGeneratorMidStream)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile("mcf");
    workload::TraceGenerator a(profile, 7);
    for (int i = 0; i < 12345; ++i)
        (void)a.next();

    workload::TraceGenerator b(profile, 7);
    roundTrip(a, b);
    EXPECT_EQ(b.produced(), a.produced());
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp x = a.next();
        const isa::MicroOp y = b.next();
        ASSERT_EQ(x.seq, y.seq);
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.src1, y.src1);
        ASSERT_EQ(x.src2, y.src2);
        ASSERT_EQ(x.dst, y.dst);
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.effAddr, y.effAddr);
    }
}

TEST(ComponentRoundTrip, TraceGeneratorRejectsDifferentProfile)
{
    workload::TraceGenerator a(workload::findProfile("gzip"), 0);
    workload::TraceGenerator b(workload::findProfile("swim"), 0);
    for (int i = 0; i < 100; ++i)
        (void)a.next();
    ckpt::Writer w;
    a.snapshot(w);
    ckpt::Reader r(w.buffer(), "<gen>");
    EXPECT_THROW(b.restore(r), FatalError);
}

TEST(ComponentRoundTrip, PhysRegFileWithPendingRecycles)
{
    core::PhysRegFile a(128, 4);
    std::vector<PhysReg> held;
    for (int s = 0; s < 4; ++s)
        for (int i = 0; i < 8; ++i)
            held.push_back(a.allocate(static_cast<SubsetId>(s)));
    a.releaseDeferred(held[0], 50);
    a.releaseDeferred(held[5], 60);

    core::PhysRegFile b(128, 4);
    roundTrip(a, b);
    for (SubsetId s = 0; s < 4; ++s)
        EXPECT_EQ(b.numFree(s), a.numFree(s)) << "subset " << int(s);
    // Allocation order must match exactly (free lists are ordered).
    for (int i = 0; i < 20; ++i) {
        const SubsetId s = static_cast<SubsetId>(i % 4);
        ASSERT_EQ(a.allocate(s), b.allocate(s)) << "alloc " << i;
    }
}

TEST(ComponentRoundTrip, PhysRegFileWithWrappedRecyclerRing)
{
    // The recycler is a fixed-capacity power-of-two ring; drive enough
    // release/drain cycles through it that the head wraps several times,
    // then snapshot with live entries straddling the wrap point.
    core::PhysRegFile a(64, 4);
    Cycle now = 0;
    for (int i = 0; i < 60; ++i) {
        for (SubsetId s = 0; s < 4; ++s) {
            const PhysReg p = a.allocate(s);
            a.releaseDeferred(p, now + 3);
        }
        a.drainRecycler(now);
        ++now;
    }
    EXPECT_GT(a.inRecycler(), 0u);  // the last few cycles' entries pend

    core::PhysRegFile b(64, 4);
    roundTrip(a, b);
    EXPECT_EQ(b.inRecycler(), a.inRecycler());
    for (SubsetId s = 0; s < 4; ++s)
        ASSERT_EQ(b.numFree(s), a.numFree(s)) << "subset " << int(s);

    // Drain and re-recycle for a while: maturity timing, free-list order
    // and ring position must all have survived the round trip.
    for (int i = 0; i < 10; ++i) {
        a.drainRecycler(now);
        b.drainRecycler(now);
        for (SubsetId s = 0; s < 4; ++s) {
            ASSERT_EQ(a.numFree(s), b.numFree(s))
                << "cycle " << i << " subset " << int(s);
            while (a.numFree(s) > 0) {
                const PhysReg p = a.allocate(s);
                ASSERT_EQ(p, b.allocate(s)) << "cycle " << i;
                a.releaseDeferred(p, now + 2);
                b.releaseDeferred(p, now + 2);
            }
        }
        ++now;
    }
    EXPECT_EQ(b.inRecycler(), a.inRecycler());
}

TEST(ComponentRoundTrip, LsqWithWrappedRingAndForwardChains)
{
    // Retire enough mem-ops that the ordinal ring wraps (capacity 8 ->
    // ring 8), so the snapshotted live window straddles slot reuse.
    core::LoadStoreQueue a(8);
    for (int i = 0; i < 12; ++i) {
        const std::uint64_t o =
            a.allocate(/*is_store=*/i % 3 == 0, 0x40 + i * 8, i);
        a.markAddrComputed(o);
        a.popFront();
    }

    // Live window with two same-address stores (a forwarding chain the
    // restore path must rebuild) and a younger store the probe for the
    // middle load has to walk past.
    const std::uint64_t s1 = a.allocate(true, 0x100, 100);   // ordinal 12
    const std::uint64_t s2 = a.allocate(true, 0x200, 101);   // ordinal 13
    const std::uint64_t ld1 = a.allocate(false, 0x100, 102); // ordinal 14
    const std::uint64_t s3 = a.allocate(true, 0x100, 103);   // ordinal 15
    const std::uint64_t ld2 = a.allocate(false, 0x100, 104); // ordinal 16
    const std::uint64_t ld3 = a.allocate(false, 0x300, 105); // ordinal 17
    a.markAddrComputed(s1);
    a.markAddrComputed(s2);
    a.markAddrComputed(ld1);
    a.markAddrComputed(s3);
    a.setStoreData(s1, 0xab);

    // ld1 must forward from s1 (skipping the younger s3 on the chain).
    const core::ForwardProbe before = a.probeForward(ld1, 0x100);
    EXPECT_TRUE(before.conflict);
    EXPECT_TRUE(before.dataReady);
    EXPECT_EQ(before.value, 0xabu);

    core::LoadStoreQueue b(8);
    roundTrip(a, b);
    EXPECT_EQ(b.size(), a.size());
    std::uint64_t ra = 0, rb = 0;
    ASSERT_EQ(a.nextAgen(ra), b.nextAgen(rb));
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(b.storeDataReady(s1), a.storeDataReady(s1));
    EXPECT_EQ(b.storeDataReady(s2), a.storeDataReady(s2));
    const core::ForwardProbe after = b.probeForward(ld1, 0x100);
    EXPECT_EQ(after.conflict, before.conflict);
    EXPECT_EQ(after.dataReady, before.dataReady);
    EXPECT_EQ(after.value, before.value);

    // Drive both queues identically through the rest of the window: the
    // rebuilt chains must give the same probe results at every step.
    for (core::LoadStoreQueue *q : {&a, &b}) {
        q->markAddrComputed(ld2);
        q->markAddrComputed(ld3);
    }
    core::ForwardProbe pa = a.probeForward(ld2, 0x100);
    core::ForwardProbe pb = b.probeForward(ld2, 0x100);
    EXPECT_TRUE(pa.conflict);
    EXPECT_FALSE(pa.dataReady);  // s3's data not captured yet
    EXPECT_EQ(pb.conflict, pa.conflict);
    EXPECT_EQ(pb.dataReady, pa.dataReady);
    a.setStoreData(s3, 0xcd);
    b.setStoreData(s3, 0xcd);
    pa = a.probeForward(ld2, 0x100);
    pb = b.probeForward(ld2, 0x100);
    EXPECT_TRUE(pa.dataReady);
    EXPECT_EQ(pa.value, 0xcdu);
    EXPECT_EQ(pb.dataReady, pa.dataReady);
    EXPECT_EQ(pb.value, pa.value);
    pa = a.probeForward(ld3, 0x300);
    pb = b.probeForward(ld3, 0x300);
    EXPECT_FALSE(pa.conflict);
    EXPECT_EQ(pb.conflict, pa.conflict);

    // Retire the whole window, then keep allocating past it: ordinals and
    // chain state must continue identically after further ring wraps.
    for (int i = 0; i < 6; ++i) {
        a.popFront();
        b.popFront();
    }
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(b.size(), 0u);
    for (int i = 0; i < 10; ++i) {
        const std::uint64_t oa = a.allocate(true, 0x100, 200 + i);
        const std::uint64_t ob = b.allocate(true, 0x100, 200 + i);
        ASSERT_EQ(oa, ob);
        a.markAddrComputed(oa);
        b.markAddrComputed(ob);
        if (i >= 4) {
            a.popFront();
            b.popFront();
        }
    }
    // A probe from a fresh load sees the same youngest live store in both.
    const std::uint64_t la = a.allocate(false, 0x100, 300);
    const std::uint64_t lb = b.allocate(false, 0x100, 300);
    ASSERT_EQ(la, lb);
    a.markAddrComputed(la);
    b.markAddrComputed(lb);
    pa = a.probeForward(la, 0x100);
    pb = b.probeForward(lb, 0x100);
    EXPECT_TRUE(pa.conflict);
    EXPECT_EQ(pb.conflict, pa.conflict);
    EXPECT_EQ(pb.dataReady, pa.dataReady);
}

} // namespace
} // namespace wsrs
