/**
 * @file
 * Golden end-to-end checkpoint tests: save at the warm-up/measure boundary,
 * restore into a fresh simulation, and require the measured slice to be
 * bit-identical — cycles and the full wsrs-stats-v1 document — to an
 * uninterrupted run. This is the determinism contract the crash-resume and
 * warm-up-reuse features stand on.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/common/log.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/sim/warmup.h"
#include "src/workload/profiles.h"

namespace wsrs::sim {
namespace {

struct TempFile
{
    TempFile()
    {
        path = (std::filesystem::temp_directory_path() /
                ("wsrs_ckpt_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++) + ".ckpt"))
                   .string();
    }
    ~TempFile() { std::remove(path.c_str()); }
    static inline int counter = 0;
    std::string path;
};

SimConfig
smallConfig(const std::string &machine, bool verify = false)
{
    SimConfig cfg;
    cfg.core = findPreset(machine);
    cfg.warmupUops = 8000;
    cfg.measureUops = 15000;
    cfg.verifyDataflow = verify;
    return cfg;
}

class GoldenCheckpoint
    : public ::testing::TestWithParam<std::tuple<const char *, const char *>>
{
};

TEST_P(GoldenCheckpoint, SaveRestoreContinueIsBitIdentical)
{
    const auto [bench, machine] = GetParam();
    const workload::BenchmarkProfile &profile =
        workload::findProfile(bench);
    const SimConfig cfg = smallConfig(machine);

    const SimResults clean = runSimulation(profile, cfg);

    // Saving must not perturb the saving run.
    TempFile ckpt;
    SimConfig save = cfg;
    save.checkpointSavePath = ckpt.path;
    const SimResults saved = runSimulation(profile, save);
    EXPECT_EQ(saved.stats.cycles, clean.stats.cycles);
    EXPECT_EQ(saved.statsJson, clean.statsJson);

    // A fresh simulation restored from the checkpoint continues exactly
    // where the saver was: bit-identical measured slice.
    SimConfig load = cfg;
    load.checkpointLoadPath = ckpt.path;
    const SimResults restored = runSimulation(profile, load);
    EXPECT_EQ(restored.stats.cycles, clean.stats.cycles);
    EXPECT_EQ(restored.stats.committed, clean.stats.committed);
    EXPECT_EQ(restored.statsJson, clean.statsJson);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesTimesMachines, GoldenCheckpoint,
    ::testing::Combine(::testing::Values("gzip", "swim"),
                       ::testing::Values("WSRS-RC-512", "RR-256")),
    [](const auto &info) {
        std::string name = std::string(std::get<0>(info.param)) + "_" +
                           std::get<1>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(CheckpointGolden, VerifyDataflowSurvivesRestore)
{
    // With the oracle enabled the checkpoint also carries the in-order
    // architectural state; a desync would trip valueMismatches.
    const workload::BenchmarkProfile &profile = workload::findProfile("gcc");
    const SimConfig cfg = smallConfig("WSRS-RC-512", /*verify=*/true);
    const SimResults clean = runSimulation(profile, cfg);

    TempFile ckpt;
    SimConfig save = cfg;
    save.checkpointSavePath = ckpt.path;
    (void)runSimulation(profile, save);

    SimConfig load = cfg;
    load.checkpointLoadPath = ckpt.path;
    const SimResults restored = runSimulation(profile, load);
    EXPECT_EQ(restored.stats.valueMismatches, 0u);
    EXPECT_EQ(restored.statsJson, clean.statsJson);
}

TEST(CheckpointGolden, RejectsMismatchedConfiguration)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile("gzip");
    TempFile ckpt;
    SimConfig save = smallConfig("WSRS-RC-512");
    save.checkpointSavePath = ckpt.path;
    (void)runSimulation(profile, save);

    // Different machine preset.
    SimConfig wrongMachine = smallConfig("RR-256");
    wrongMachine.checkpointLoadPath = ckpt.path;
    EXPECT_THROW(runSimulation(profile, wrongMachine), FatalError);

    // Different warm-up length.
    SimConfig wrongWarmup = smallConfig("WSRS-RC-512");
    wrongWarmup.warmupUops = 9000;
    wrongWarmup.checkpointLoadPath = ckpt.path;
    EXPECT_THROW(runSimulation(profile, wrongWarmup), FatalError);

    // Different benchmark.
    SimConfig cfg = smallConfig("WSRS-RC-512");
    cfg.checkpointLoadPath = ckpt.path;
    EXPECT_THROW(runSimulation(workload::findProfile("swim"), cfg),
                 FatalError);
}

TEST(CheckpointGolden, MissingFileFailsCleanly)
{
    SimConfig cfg = smallConfig("RR-256");
    cfg.checkpointLoadPath = "/nonexistent/dir/x.ckpt";
    EXPECT_THROW(runSimulation(workload::findProfile("gzip"), cfg),
                 FatalError);
}

TEST(WarmupSnapshot, ReuseIsDeterministicAcrossBuilds)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile("vpr");
    const SimConfig cfg = smallConfig("WSRS-RC-512");

    const std::string blob1 = buildWarmupSnapshot(profile, cfg);
    const std::string blob2 = buildWarmupSnapshot(profile, cfg);
    EXPECT_EQ(blob1, blob2) << "warm-up build is not deterministic";

    SimConfig reuse = cfg;
    reuse.warmupBlob = &blob1;
    const SimResults a = runSimulation(profile, reuse);
    const SimResults b = runSimulation(profile, reuse);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_GT(a.stats.committed, 0u);
}

TEST(WarmupSnapshot, KeyCoversConfigurationSlice)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile("vpr");
    const SimConfig base = smallConfig("WSRS-RC-512");
    const std::uint64_t k0 = warmupKeyHash(profile, base);

    SimConfig other = base;
    other.warmupUops += 1;
    EXPECT_NE(warmupKeyHash(profile, other), k0);
    other = base;
    other.seed = 99;
    EXPECT_NE(warmupKeyHash(profile, other), k0);
    other = base;
    other.predictor = PredictorKind::Gshare;
    EXPECT_NE(warmupKeyHash(profile, other), k0);
    other = base;
    other.mem.l1.sizeBytes *= 2;
    EXPECT_NE(warmupKeyHash(profile, other), k0);
    // The core preset is deliberately NOT part of the key: machine
    // independence is what makes one snapshot serve the whole sweep.
    other = base;
    other.core = findPreset("RR-256");
    EXPECT_EQ(warmupKeyHash(profile, other), k0);

    // A mismatched key is refused at restore time.
    const std::string blob = buildWarmupSnapshot(profile, base);
    SimConfig wrong = base;
    wrong.warmupUops = 4000;
    wrong.warmupBlob = &blob;
    EXPECT_THROW(runSimulation(profile, wrong), FatalError);
}

TEST(WarmupSnapshot, IncompatibleWithVerifyDataflow)
{
    const workload::BenchmarkProfile &profile =
        workload::findProfile("gzip");
    const SimConfig cfg = smallConfig("WSRS-RC-512");
    const std::string blob = buildWarmupSnapshot(profile, cfg);
    SimConfig bad = cfg;
    bad.verifyDataflow = true;
    bad.warmupBlob = &blob;
    EXPECT_THROW(runSimulation(profile, bad), FatalError);
}

} // namespace
} // namespace wsrs::sim
