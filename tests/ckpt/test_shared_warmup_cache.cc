/**
 * @file
 * Cross-process warm-up cache contract: build-once sharing between
 * instances (standing in for processes), atomic publish, and corrupt
 * entries being diagnosed with byte offsets, quarantined and rebuilt.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/ckpt/io.h"
#include "src/ckpt/shared_warmup_cache.h"
#include "src/common/log.h"

namespace wsrs::ckpt {
namespace {

std::string
cacheDir(const char *name)
{
    const std::string dir = testing::TempDir() + "wsrs_swc_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** A minimal but fully valid wsrs-ckpt-v1 container blob. */
std::string
containerBlob(const std::string &body)
{
    std::ostringstream os;
    CheckpointWriter cw(os, "<test>", kKindWarmup, 0x1234);
    Writer section;
    section.str(body);
    cw.section("warmup", section);
    cw.finish();
    return os.str();
}

TEST(SharedWarmupCache, BuildsOnceAndSharesAcrossInstances)
{
    const std::string dir = cacheDir("share");
    const std::string blob = containerBlob("snapshot-bytes");

    SharedWarmupCache first(dir);
    int builds = 0;
    const auto builder = [&] {
        ++builds;
        return blob;
    };
    EXPECT_EQ(first.getOrBuild(42, builder), blob);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.misses(), 1u);
    EXPECT_TRUE(first.contains(42));

    // A second instance over the same directory models another worker
    // process: it must hit the published entry, never its builder.
    SharedWarmupCache second(dir);
    EXPECT_EQ(second.getOrBuild(42, [&]() -> std::string {
        ADD_FAILURE() << "builder ran despite a published entry";
        return blob;
    }),
              blob);
    EXPECT_EQ(second.hits(), 1u);
    EXPECT_EQ(second.misses(), 0u);

    // Same instance, same key: served from disk again.
    EXPECT_EQ(first.getOrBuild(42, builder), blob);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.hits(), 1u);
}

TEST(SharedWarmupCache, DistinctKeysGetDistinctEntries)
{
    SharedWarmupCache cache(cacheDir("keys"));
    const std::string a = containerBlob("alpha");
    const std::string b = containerBlob("beta");
    EXPECT_EQ(cache.getOrBuild(1, [&] { return a; }), a);
    EXPECT_EQ(cache.getOrBuild(2, [&] { return b; }), b);
    EXPECT_NE(cache.entryPath(1), cache.entryPath(2));
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_FALSE(cache.contains(3));
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(SharedWarmupCache, TruncatedEntryFailsWithByteOffset)
{
    SharedWarmupCache cache(cacheDir("trunc"));
    const std::string blob = containerBlob("will-be-torn");
    cache.getOrBuild(7, [&] { return blob; });

    // Tear the published entry the way a crashed non-atomic writer would.
    std::filesystem::resize_file(cache.entryPath(7), blob.size() / 2);
    try {
        cache.load(7);
        FAIL() << "truncated entry loaded";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
            << e.what();
    }
}

TEST(SharedWarmupCache, CorruptEntryIsQuarantinedAndRebuilt)
{
    SharedWarmupCache cache(cacheDir("corrupt"));
    const std::string blob = containerBlob("poisoned-then-rebuilt");
    cache.getOrBuild(9, [&] { return blob; });

    // Flip one payload byte; the section CRC must catch it.
    const std::string path = cache.entryPath(9);
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(static_cast<std::streamoff>(blob.size()) - 10);
        f.put('\xff');
    }
    EXPECT_THROW(cache.load(9), IoError);

    int rebuilds = 0;
    const std::string fresh = cache.getOrBuild(9, [&] {
        ++rebuilds;
        return blob;
    });
    EXPECT_EQ(fresh, blob);
    EXPECT_EQ(rebuilds, 1);
    EXPECT_EQ(cache.corruptRebuilds(), 1u);
    // The damaged bytes are preserved for postmortem, and the fresh
    // entry validates cleanly.
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
    EXPECT_EQ(cache.load(9), blob);
}

TEST(SharedWarmupCache, LoadOfMissingEntryIsAnIoError)
{
    SharedWarmupCache cache(cacheDir("missing"));
    EXPECT_THROW(cache.load(1234), IoError);
}

} // namespace
} // namespace wsrs::ckpt
