/**
 * @file
 * The repository's strongest correctness statement: for every benchmark and
 * every machine configuration, all committed destination values equal the
 * in-order oracle's — renaming (under write/read specialization), cluster
 * allocation (including operand swapping), bypassing, store-to-load
 * forwarding and memory ordering are architecturally transparent.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace wsrs {
namespace {

using Case = std::tuple<std::string, std::string>;

class OracleEquivalence : public ::testing::TestWithParam<Case>
{
};

TEST_P(OracleEquivalence, AllCommittedValuesMatchOracle)
{
    const auto &[bench, machine] = GetParam();
    sim::SimConfig cfg;
    cfg.core = sim::findPreset(machine);
    cfg.warmupUops = 0;
    cfg.measureUops = 25000;
    cfg.verifyDataflow = true;  // runSimulation throws on any mismatch
    const sim::SimResults r =
        sim::runSimulation(workload::findProfile(bench), cfg);
    EXPECT_EQ(r.stats.valueMismatches, 0u);
    EXPECT_GE(r.stats.committed, 25000u);
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    std::vector<std::string> machines = sim::figure4Presets();
    machines.insert(machines.end(),
                    {"WSP-512", "WSRS-DEP-512", "MONO-256", "RR4W-128"});
    for (const auto &p : workload::allProfiles())
        for (const std::string &m : machines)
            cases.emplace_back(p.name, m);
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string s =
        std::get<0>(info.param) + "_" + std::get<1>(info.param);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarksAllMachines, OracleEquivalence,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace wsrs
