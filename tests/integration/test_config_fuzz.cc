/**
 * @file
 * Configuration fuzzing: random but legal machine configurations must all
 * run to completion with zero oracle mismatches. This sweeps corners no
 * hand-written test hits (odd windows, tiny LSQs, single-issue clusters,
 * mixed modes/policies/scopes/implementations) and relies on the core's
 * internal assertions to catch structural violations.
 */
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace wsrs {
namespace {

core::CoreParams
randomConfig(XorShiftRng &rng)
{
    core::CoreParams p;
    const unsigned mode_pick = unsigned(rng.below(4));
    p.mode = static_cast<core::RegFileMode>(mode_pick);

    // WSRS requires 4 clusters; others may use 1, 2 or 4.
    if (p.mode == core::RegFileMode::Wsrs) {
        p.numClusters = 4;
    } else {
        const unsigned opts[] = {1, 2, 4};
        p.numClusters = opts[rng.below(3)];
    }
    // Subset modes need numPhysRegs divisible by numClusters (the pools
    // mode always partitions by 4... it uses numClusters subsets).
    p.issuePerCluster = 1 + unsigned(rng.below(3));
    p.fetchWidth = 4 + unsigned(rng.below(2)) * 4;
    p.commitWidth = p.fetchWidth;
    p.clusterWindow = 16 + unsigned(rng.below(6)) * 8;
    p.lsqSize = 16 + unsigned(rng.below(4)) * 16;
    p.lsusPerCluster = 1 + unsigned(rng.below(2));
    p.alusPerCluster = 1 + unsigned(rng.below(3));
    p.fpusPerCluster = 1 + unsigned(rng.below(2));

    const unsigned per_subset_min = 96;  // > 80 logical registers
    const unsigned subsets =
        p.mode == core::RegFileMode::Conventional ? 1
        : p.mode == core::RegFileMode::WriteSpecPools
            ? core::kNumFuPools
            : p.numClusters;
    p.numPhysRegs =
        subsets * (per_subset_min + unsigned(rng.below(3)) * 16);

    switch (rng.below(4)) {
      case 0:
        p.policy = core::AllocPolicy::RoundRobin;
        break;
      case 1:
        p.policy = core::AllocPolicy::RandomMonadic;
        break;
      case 2:
        p.policy = core::AllocPolicy::RandomCommutative;
        p.commutativeFus = true;
        break;
      default:
        p.policy = core::AllocPolicy::DependenceAware;
        break;
    }
    // The WSRS allocation geometry needs 4 clusters even for RR.
    if (p.mode != core::RegFileMode::Wsrs &&
        p.policy != core::AllocPolicy::RoundRobin &&
        rng.chance(0.3)) {
        p.policy = core::AllocPolicy::RoundRobin;
    }

    p.renameImpl = rng.chance(0.5) ? core::RenameImpl::OverPickRecycle
                                   : core::RenameImpl::ExactCount;
    p.ffScope = static_cast<core::FastForwardScope>(rng.below(3));
    p.regReadStages = 2 + unsigned(rng.below(3));
    p.frontEndDepth = 8 + unsigned(rng.below(8));
    p.recycleDelay = 2 + unsigned(rng.below(4));
    p.writebackPerCluster = 1 + unsigned(rng.below(3));
    p.sharedComplexUnit = rng.chance(0.3);
    p.agenWidth = 2 + unsigned(rng.below(7));
    p.verifyDataflow = true;
    p.seed = rng.next();
    p.name = "fuzz";
    return p;
}

class ConfigFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ConfigFuzz, RandomLegalConfigVerifies)
{
    XorShiftRng rng(0xf022 + GetParam());
    const core::CoreParams params = randomConfig(rng);

    // Rotate through benchmarks so memory behaviour varies too.
    const auto &profiles = workload::allProfiles();
    const auto &profile = profiles[GetParam() % profiles.size()];

    sim::SimConfig cfg;
    cfg.core = params;
    cfg.warmupUops = 0;
    cfg.measureUops = 12000;
    cfg.verifyDataflow = true;
    const sim::SimResults r = sim::runSimulation(profile, cfg);
    EXPECT_EQ(r.stats.valueMismatches, 0u)
        << "mode=" << int(params.mode) << " policy=" << int(params.policy)
        << " clusters=" << params.numClusters
        << " regs=" << params.numPhysRegs << " bench=" << profile.name;
    EXPECT_GE(r.stats.committed, 12000u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConfigFuzz, ::testing::Range(0u, 36u));

} // namespace
} // namespace wsrs
