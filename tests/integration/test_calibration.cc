/**
 * @file
 * Calibration regression pins: the baseline machine's IPC on every
 * benchmark at a fixed short protocol (100 K warm-up + 100 K measured
 * micro-ops, seed 0). These values anchor the Figure-4 reproduction —
 * a workload or core change that silently shifts a benchmark by more
 * than 10% should be a conscious recalibration, not an accident.
 *
 * (The recorded values differ from EXPERIMENTS.md's headline numbers,
 * which use 400 K + 1 M slices.)
 */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace wsrs {
namespace {

const std::map<std::string, double> kPinnedIpc = {
    {"gzip", 2.701},  {"vpr", 1.779},    {"gcc", 1.889},
    {"mcf", 0.370},   {"crafty", 2.249}, {"wupwise", 1.768},
    {"swim", 2.159},  {"mgrid", 1.961},  {"applu", 1.668},
    {"galgel", 2.064},{"equake", 1.115}, {"facerec", 2.028},
};

class CalibrationPin : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CalibrationPin, BaselineIpcWithinTenPercent)
{
    const std::string bench = GetParam();
    sim::SimConfig cfg;
    cfg.core = sim::findPreset("RR-256");
    cfg.warmupUops = 100000;
    cfg.measureUops = 100000;
    const sim::SimResults r =
        sim::runSimulation(workload::findProfile(bench), cfg);
    const double pinned = kPinnedIpc.at(bench);
    EXPECT_NEAR(r.ipc, pinned, 0.10 * pinned)
        << bench << ": measured " << r.ipc << " vs pinned " << pinned;
}

TEST(CalibrationPin, OrderingMatchesFigure4)
{
    // The relative ordering the paper's Figure 4 shows must hold at any
    // slice length: mcf lowest, equake second lowest, gzip the fastest
    // integer benchmark after crafty-class codes.
    EXPECT_LT(kPinnedIpc.at("mcf"), kPinnedIpc.at("equake"));
    EXPECT_LT(kPinnedIpc.at("equake"), kPinnedIpc.at("vpr"));
    EXPECT_GT(kPinnedIpc.at("gzip"), kPinnedIpc.at("gcc"));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CalibrationPin,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "wupwise",
                      "swim", "mgrid", "applu", "galgel", "equake",
                      "facerec"));

} // namespace
} // namespace wsrs
