/**
 * @file
 * Integration tests pinning the paper's qualitative results (the "shape"
 * of Figures 4 and 5 and the Section 5 analysis). Slices are kept short,
 * so tolerances are loose — the full bench harnesses produce the real
 * numbers.
 */
#include <gtest/gtest.h>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace wsrs {
namespace {

sim::SimResults
run(const std::string &bench, const std::string &machine,
    std::uint64_t uops = 60000)
{
    sim::SimConfig cfg;
    cfg.core = sim::findPreset(machine);
    cfg.warmupUops = uops;
    cfg.measureUops = uops;
    return sim::runSimulation(workload::findProfile(bench), cfg);
}

TEST(PaperShapes, WriteSpecializationDoesNotImpairPerformance)
{
    // Section 5.4.1: WS + round-robin matches the conventional machine.
    for (const char *bench : {"gzip", "gcc", "swim"}) {
        const double rr = run(bench, "RR-256").ipc;
        const double ws = run(bench, "WSRR-512").ipc;
        EXPECT_GT(ws, rr * 0.97) << bench;
    }
}

TEST(PaperShapes, WriteSpecializationHelpsFpThroughLargerRegisterSet)
{
    // Section 5.4.1: marginal FP improvement from the larger register set.
    const double rr = run("mgrid", "RR-256").ipc;
    const double ws = run("mgrid", "WSRR-512").ipc;
    EXPECT_GE(ws, rr);
}

TEST(PaperShapes, WsrsRcStandsTheComparison)
{
    // Abstract: "performance ... stands the comparison". We pin a 12%
    // envelope (the paper reports ~3%; see EXPERIMENTS.md for the
    // measured deviation of this reproduction).
    for (const char *bench : {"gzip", "vpr", "mcf", "swim", "mgrid"}) {
        const double rr = run(bench, "RR-256").ipc;
        const double rc = run(bench, "WSRS-RC-512").ipc;
        EXPECT_GT(rc, rr * 0.88) << bench;
        EXPECT_LT(rc, rr * 1.12) << bench;
    }
}

TEST(PaperShapes, RmDoesNotBeatRcOnAverage)
{
    // Section 5.4.2: RC exploits more degrees of freedom than RM.
    double rc_sum = 0, rm_sum = 0;
    for (const char *bench : {"gcc", "crafty", "mgrid", "facerec"}) {
        rc_sum += run(bench, "WSRS-RC-512").ipc;
        rm_sum += run(bench, "WSRS-RM-512").ipc;
    }
    EXPECT_GE(rc_sum, rm_sum * 0.99);
}

TEST(PaperShapes, RegisterCount384To512HasMinorImpact)
{
    for (const char *bench : {"gzip", "applu"}) {
        const double r384 = run(bench, "WSRS-RC-384").ipc;
        const double r512 = run(bench, "WSRS-RC-512").ipc;
        EXPECT_NEAR(r384, r512, 0.08 * r512) << bench;
    }
}

TEST(PaperShapes, RoundRobinPerfectlyBalanced)
{
    EXPECT_EQ(run("gzip", "RR-256").unbalancingDegree, 0.0);
    EXPECT_EQ(run("swim", "RR-256").unbalancingDegree, 0.0);
}

TEST(PaperShapes, RmMoreUnbalancedThanRc)
{
    // Figure 5: RM exhibits the highest unbalancing in most cases.
    double rc_sum = 0, rm_sum = 0;
    for (const char *bench : {"gzip", "mcf", "swim", "facerec"}) {
        rc_sum += run(bench, "WSRS-RC-512").unbalancingDegree;
        rm_sum += run(bench, "WSRS-RM-512").unbalancingDegree;
    }
    EXPECT_GT(rm_sum, rc_sum);
}

TEST(PaperShapes, HighIpcFpCodesAreHighlyUnbalanced)
{
    // Figure 5: facerec/wupwise unbalancing approaches 100%.
    EXPECT_GT(run("facerec", "WSRS-RM-512").unbalancingDegree, 80.0);
    EXPECT_GT(run("facerec", "WSRS-RC-512").unbalancingDegree, 50.0);
}

TEST(PaperShapes, McfIsTheSlowestBenchmark)
{
    const double mcf = run("mcf", "RR-256").ipc;
    for (const char *bench : {"gzip", "vpr", "gcc", "crafty", "swim"})
        EXPECT_LT(mcf, run(bench, "RR-256").ipc) << bench;
}

TEST(PaperShapes, DependenceAwarePolicyIsCompetitive)
{
    // Section 5.4.2 future work: trading dependence locality against
    // balance should at least match the random policies.
    double dep = 0, rc = 0;
    for (const char *bench : {"gzip", "mgrid"}) {
        dep += run(bench, "WSRS-DEP-512").ipc;
        rc += run(bench, "WSRS-RC-512").ipc;
    }
    EXPECT_GT(dep, rc * 0.9);
}

} // namespace
} // namespace wsrs
