/** @file Unit tests for the pipeline trace sinks. */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/obs/trace_sink.h"

namespace wsrs::obs {
namespace {

UopTrace
sampleTrace(std::uint64_t seq)
{
    UopTrace t;
    t.seq = seq;
    t.pc = 0x400000 + 4 * seq;
    t.op = seq % 3 == 0 ? isa::OpClass::Store
                        : (seq % 3 == 1 ? isa::OpClass::Load
                                        : isa::OpClass::IntAlu);
    t.cluster = static_cast<ClusterId>(seq % 4);
    t.dstSubset = seq % 3 == 0 ? SubsetId{0xff}
                               : static_cast<SubsetId>(seq % 4);
    t.flags = seq % 5 == 0 ? kUopMispredicted : 0;
    t.fetchCycle = 10 + seq;
    t.renameCycle = 13 + seq;
    t.readyCycle = 15 + seq;
    t.issueCycle = 17 + seq;
    t.completeCycle = 18 + seq;
    t.commitCycle = 25 + seq;
    return t;
}

std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    std::istringstream is(s);
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    return lines;
}

TEST(O3PipeView, EmitsOneSevenLineBlockPerUop)
{
    std::ostringstream os;
    O3PipeViewSink sink(os);
    sink.record(sampleTrace(2));  // IntAlu on cluster 2
    sink.finish();

    const auto lines = splitLines(os.str());
    ASSERT_EQ(lines.size(), 7u);
    EXPECT_EQ(lines[0], "O3PipeView:fetch:12:0x00400008:0:2:int_alu/c2");
    EXPECT_EQ(lines[1], "O3PipeView:decode:13");
    EXPECT_EQ(lines[2], "O3PipeView:rename:15");
    EXPECT_EQ(lines[3], "O3PipeView:dispatch:15");
    EXPECT_EQ(lines[4], "O3PipeView:issue:19");
    EXPECT_EQ(lines[5], "O3PipeView:complete:20");
    EXPECT_EQ(lines[6], "O3PipeView:retire:27:store:0");
}

TEST(O3PipeView, StoresCarryTheRetireStoreTimestamp)
{
    std::ostringstream os;
    O3PipeViewSink sink(os);
    sink.record(sampleTrace(0));  // Store, commit cycle 25
    const auto lines = splitLines(os.str());
    ASSERT_EQ(lines.size(), 7u);
    EXPECT_EQ(lines[6], "O3PipeView:retire:25:store:25");
}

TEST(BinaryTrace, RoundTripsEveryField)
{
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    BinaryTraceSink sink(ss);
    const std::size_t kRecords = 100;
    for (std::size_t i = 0; i < kRecords; ++i)
        sink.record(sampleTrace(i));
    sink.finish();

    EXPECT_EQ(ss.str().size(),
              16u + kRecords * BinaryTraceSink::kRecordBytes);

    std::istringstream is(ss.str());
    const std::vector<UopTrace> back = readBinaryTrace(is);
    ASSERT_EQ(back.size(), kRecords);
    for (std::size_t i = 0; i < kRecords; ++i) {
        const UopTrace want = sampleTrace(i);
        const UopTrace &got = back[i];
        EXPECT_EQ(got.seq, want.seq);
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.cluster, want.cluster);
        EXPECT_EQ(got.dstSubset, want.dstSubset);
        EXPECT_EQ(got.flags, want.flags);
        EXPECT_EQ(got.fetchCycle, want.fetchCycle);
        EXPECT_EQ(got.renameCycle, want.renameCycle);
        EXPECT_EQ(got.readyCycle, want.readyCycle);
        EXPECT_EQ(got.issueCycle, want.issueCycle);
        EXPECT_EQ(got.completeCycle, want.completeCycle);
        EXPECT_EQ(got.commitCycle, want.commitCycle);
        EXPECT_EQ(got.wakeupLatency(), want.wakeupLatency());
    }
}

TEST(BinaryTrace, RejectsBadMagic)
{
    std::istringstream is("definitely not a trace file............");
    EXPECT_THROW(readBinaryTrace(is), FatalError);
}

TEST(BinaryTrace, RejectsWrongVersion)
{
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    BinaryTraceSink sink(ss);
    std::string bytes = ss.str();
    ASSERT_GE(bytes.size(), 16u);
    bytes[8] = 2;  // little-endian version word
    std::istringstream is(bytes);
    EXPECT_THROW(readBinaryTrace(is), FatalError);
}

TEST(BinaryTrace, RejectsTruncatedRecord)
{
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    BinaryTraceSink sink(ss);
    sink.record(sampleTrace(1));
    std::string bytes = ss.str();
    bytes.resize(bytes.size() - 10);
    std::istringstream is(bytes);
    EXPECT_THROW(readBinaryTrace(is), FatalError);
}

TEST(BinaryTrace, EmptyTraceIsValid)
{
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    BinaryTraceSink sink(ss);
    sink.finish();
    std::istringstream is(ss.str());
    EXPECT_TRUE(readBinaryTrace(is).empty());
}

TEST(UopTrace, WakeupLatencyIsClampedAtZero)
{
    UopTrace t;
    t.readyCycle = 10;
    t.issueCycle = 14;
    EXPECT_EQ(t.wakeupLatency(), 4u);
    t.issueCycle = 8;  // ready recorded after issue (never-ready fallback)
    EXPECT_EQ(t.wakeupLatency(), 0u);
}

} // namespace
} // namespace wsrs::obs
