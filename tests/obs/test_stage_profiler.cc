/** @file Unit tests for the host-side stage profiler. */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/obs/stage_profiler.h"
#include "tests/support/json_lint.h"

namespace wsrs::obs {
namespace {

TEST(StageProfiler, AccumulatesCallsAndSeconds)
{
    StageProfiler prof;
    int ran = 0;
    for (int i = 0; i < 5; ++i)
        prof.time(StageProfiler::Issue, [&] { ++ran; });
    prof.time(StageProfiler::Fetch, [&] { ++ran; });
    EXPECT_EQ(ran, 6);
    EXPECT_EQ(prof.calls(StageProfiler::Issue), 5u);
    EXPECT_EQ(prof.calls(StageProfiler::Fetch), 1u);
    EXPECT_EQ(prof.calls(StageProfiler::Commit), 0u);
    EXPECT_GE(prof.seconds(StageProfiler::Issue), 0.0);
    EXPECT_GE(prof.totalSeconds(),
              prof.seconds(StageProfiler::Issue) +
                  prof.seconds(StageProfiler::Fetch) - 1e-12);
}

TEST(StageProfiler, ResetZeroesEverything)
{
    StageProfiler prof;
    prof.time(StageProfiler::Rename, [] {});
    prof.reset();
    EXPECT_EQ(prof.calls(StageProfiler::Rename), 0u);
    EXPECT_EQ(prof.totalSeconds(), 0.0);
}

TEST(StageProfiler, DumpJsonIsStrictlyParseable)
{
    StageProfiler prof;
    prof.time(StageProfiler::Agen, [] {});
    std::ostringstream os;
    prof.dumpJson(os);
    const std::string j = os.str();
    EXPECT_EQ(test::jsonLint(j), "");
    for (int s = 0; s < StageProfiler::kNumStages; ++s)
        EXPECT_NE(j.find(std::string{"\""} +
                         StageProfiler::stageName(
                             static_cast<StageProfiler::Stage>(s)) +
                         "\""),
                  std::string::npos);
}

} // namespace
} // namespace wsrs::obs
