/** @file Unit tests for stall-cause attribution and interval sampling. */
#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/pipeline_stats.h"
#include "tests/support/json_lint.h"

namespace wsrs::obs {
namespace {

constexpr unsigned kClusters = 4;

std::uint64_t
bucketTotal(const Histogram &h)
{
    std::uint64_t total = h.overflow();
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        total += h.bucket(i);
    return total;
}

/** Drive @p cycles cycles of one-cause-per-stage recording. */
void
drive(PipelineStats &ps, unsigned cycles)
{
    const unsigned occupancy[kClusters] = {3, 1, 0, 7};
    for (unsigned cyc = 0; cyc < cycles; ++cyc) {
        for (ClusterId c = 0; c < kClusters; ++c)
            ps.recordIssue(
                c,
                static_cast<IssueStall>(
                    (cyc + c) % unsigned(IssueStall::kCount)),
                occupancy[c]);
        ps.recordRename(static_cast<RenameStall>(
            cyc % unsigned(RenameStall::kCount)));
        ps.recordCommit(static_cast<CommitStall>(
            cyc % unsigned(CommitStall::kCount)));
        ps.endCycle(cyc, 2 * cyc, occupancy);
    }
}

TEST(PipelineStats, ExactlyOneCausePerStagePerCycle)
{
    StatGroup g("core");
    PipelineStats ps(g, kClusters);
    drive(ps, 1000);
    // The acceptance invariant: every cycle lands in exactly one bucket,
    // so the per-stage totals equal the cycle count.
    for (unsigned c = 0; c < kClusters; ++c)
        EXPECT_EQ(bucketTotal(ps.issueStall(c)), 1000u) << "cluster " << c;
    EXPECT_EQ(bucketTotal(ps.renameStall()), 1000u);
    EXPECT_EQ(bucketTotal(ps.commitStall()), 1000u);
    EXPECT_EQ(ps.occupancySum(0), 3000u);
    EXPECT_EQ(ps.occupancySum(3), 7000u);
}

TEST(PipelineStats, WakeupLatencyOverflowsPastTheTopBucket)
{
    StatGroup g("core");
    PipelineStats ps(g, kClusters);
    ps.recordWakeupLatency(0);
    ps.recordWakeupLatency(PipelineStats::kWakeupBuckets - 1);
    ps.recordWakeupLatency(1000);
    EXPECT_EQ(ps.wakeupLatency().bucket(0), 1u);
    EXPECT_EQ(ps.wakeupLatency().bucket(PipelineStats::kWakeupBuckets - 1),
              1u);
    EXPECT_EQ(ps.wakeupLatency().overflow(), 1u);
    EXPECT_EQ(ps.wakeupLatency().samples(), 3u);
}

TEST(PipelineStats, IntervalSamplerHonorsThePeriod)
{
    StatGroup g("core");
    PipelineStats ps(g, kClusters);
    ps.enableIntervals(10);
    drive(ps, 95);
    const auto &samples = ps.intervals();
    ASSERT_EQ(samples.size(), 9u);  // cycles 9, 19, ..., 89
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(samples[i].cycle, 10 * (i + 1) - 1);
        EXPECT_EQ(samples[i].committed, 2 * samples[i].cycle);
        EXPECT_EQ(samples[i].occupancy[3], 7u);
    }
}

TEST(PipelineStats, DisabledSamplerRecordsNothing)
{
    StatGroup g("core");
    PipelineStats ps(g, kClusters);
    drive(ps, 100);
    EXPECT_TRUE(ps.intervals().empty());
}

TEST(PipelineStats, ResetClearsMeasurementsButKeepsThePeriod)
{
    StatGroup g("core");
    PipelineStats ps(g, kClusters);
    ps.enableIntervals(10);
    drive(ps, 50);
    ps.recordWakeupLatency(5);
    ps.reset();
    EXPECT_EQ(ps.intervalPeriod(), 10u);
    EXPECT_TRUE(ps.intervals().empty());
    EXPECT_EQ(ps.wakeupLatency().samples(), 0u);
    EXPECT_EQ(bucketTotal(ps.issueStall(0)), 0u);
    EXPECT_EQ(ps.occupancySum(0), 0u);
    // The countdown restarts from a full period after reset.
    drive(ps, 10);
    EXPECT_EQ(ps.intervals().size(), 1u);
}

TEST(PipelineStats, DumpJsonIsStrictlyParseable)
{
    StatGroup g("core");
    PipelineStats ps(g, kClusters);
    ps.enableIntervals(10);
    drive(ps, 100);
    ps.recordWakeupLatency(3);
    std::ostringstream os;
    ps.dumpJson(os);
    const std::string j = os.str();
    EXPECT_EQ(test::jsonLint(j), "");
    EXPECT_NE(j.find("\"stall_causes\""), std::string::npos);
    EXPECT_NE(j.find("\"intercluster-forward-wait\""), std::string::npos);
    EXPECT_NE(j.find("\"intervals\""), std::string::npos);
    EXPECT_NE(j.find("\"period\": 10"), std::string::npos);
}

TEST(PipelineStats, StatsRegisterInTheOwningGroup)
{
    StatGroup g("core");
    PipelineStats ps(g, 2);
    ps.recordIssue(0, IssueStall::Issued, 1);
    std::ostringstream os;
    g.dumpJson(os);
    const std::string j = os.str();
    EXPECT_EQ(test::jsonLint(j), "");
    EXPECT_NE(j.find("\"core.issue_stall_c0\""), std::string::npos);
    EXPECT_NE(j.find("\"core.issue_stall_c1\""), std::string::npos);
    EXPECT_NE(j.find("\"core.rename_stall\""), std::string::npos);
    EXPECT_NE(j.find("\"core.commit_stall\""), std::string::npos);
    EXPECT_NE(j.find("\"core.wakeup_latency\""), std::string::npos);
}

} // namespace
} // namespace wsrs::obs
