#include "src/obs/span_log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace wsrs::obs {
namespace {

TEST(SpanLog, AppendAndDrain)
{
    SpanLog log;
    log.complete("job", 0, 0, 0, 100, 50);
    log.instant("merged", 0, 0, 0, 150);
    EXPECT_EQ(log.size(), 2u);
    const auto events = log.drain();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "job");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_EQ(events[1].phase, 'i');
    EXPECT_EQ(log.size(), 0u);
}

TEST(SpanLog, ChromeTraceShape)
{
    SpanLog log;
    log.nameJob(3, "gzip@WSRS-RC-512");
    log.complete("job", 3, 0, 0, 1000, 400);
    log.complete("attempt", 3, 1, 2, 1050, 300);
    log.complete("simulate", 3, 1, 2, 1100, 200);
    log.instant("merged", 3, 0, 0, 1400);
    std::ostringstream os;
    log.writeChromeTrace(os, "sweep deadbeef");
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\": \"wsrs-spans-v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(doc.find("job 3 gzip@WSRS-RC-512"), std::string::npos);
    // Timestamps are rebased to the earliest event.
    EXPECT_NE(doc.find("\"name\": \"job\", \"ph\": \"X\", \"ts\": 0"),
              std::string::npos);
    EXPECT_NE(doc.find("\"attempt\": 1"), std::string::npos);
}

TEST(SpanLog, ClampsChildrenIntoParents)
{
    SpanLog log;
    // Earliest raw timestamp is 900, so after rebasing the root "job"
    // span covers [100, 200].
    log.complete("job", 0, 0, 0, 1000, 100);
    // Skewed attempt escaping the root on both sides -> [100, 200].
    log.complete("attempt", 0, 1, 1, 950, 300);
    // Leaf escaping its attempt -> clamped into it as well.
    log.complete("simulate", 0, 1, 1, 900, 500);
    std::ostringstream os;
    log.writeChromeTrace(os, "clamp");
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"name\": \"attempt\", \"ph\": \"X\", "
                       "\"ts\": 100, \"dur\": 100"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"name\": \"simulate\", \"ph\": \"X\", "
                       "\"ts\": 100, \"dur\": 100"),
              std::string::npos)
        << doc;
}

TEST(SpanLog, ConcurrentAppends)
{
    SpanLog log;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                log.complete("simulate", static_cast<std::uint64_t>(t), 1,
                             static_cast<std::uint64_t>(t), i, 1);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(log.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(SpanLog, MonotonicMicrosAdvances)
{
    const std::int64_t a = monotonicMicros();
    const std::int64_t b = monotonicMicros();
    EXPECT_GE(b, a);
}

} // namespace
} // namespace wsrs::obs
