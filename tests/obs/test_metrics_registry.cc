#include "src/obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace wsrs::obs {
namespace {

TEST(MetricsRegistry, CounterGaugeBasics)
{
    MetricsRegistry reg;
    MetricCounter &c = reg.counter("wsrs_test_events_total", "events");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);

    MetricGauge &g = reg.gauge("wsrs_test_depth", "queue depth");
    g.set(7);
    g.add(-3);
    EXPECT_EQ(g.value(), 4);

    // Re-registration returns the same instrument.
    EXPECT_EQ(&reg.counter("wsrs_test_events_total", "events"), &c);
    EXPECT_EQ(&reg.gauge("wsrs_test_depth", ""), &g);
}

TEST(MetricsRegistry, HistogramBuckets)
{
    MetricsRegistry reg;
    MetricHistogram &h =
        reg.histogram("wsrs_test_latency_ms", "latency", {1, 10, 100});
    h.observe(0);   // le=1
    h.observe(1);   // le=1 (inclusive bound)
    h.observe(5);   // le=10
    h.observe(100); // le=100
    h.observe(101); // +Inf
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 207u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // overflow
}

TEST(MetricsRegistry, JsonExportShape)
{
    MetricsRegistry reg;
    reg.counter("wsrs_test_a_total", "a").add(3);
    reg.gauge("wsrs_test_b", "b").set(-2);
    reg.histogram("wsrs_test_c_ms", "c", {5, 50}).observe(7);
    std::ostringstream os;
    reg.writeJson(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\": \"wsrs-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"wsrs_test_a_total\", "
                       "\"type\": \"counter\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"value\": -2"), std::string::npos);
    EXPECT_NE(doc.find("\"buckets\": [{\"le\": 5, \"count\": 0}, "
                       "{\"le\": 50, \"count\": 1}]"),
              std::string::npos);
    EXPECT_EQ(doc.back(), '\n');
}

TEST(MetricsRegistry, PrometheusExposition)
{
    MetricsRegistry reg;
    reg.counter("wsrs_test_a_total", "a events").add(3);
    reg.histogram("wsrs_test_c_ms", "c", {5, 50}).observe(7);
    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# HELP wsrs_test_a_total a events\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE wsrs_test_a_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("wsrs_test_a_total 3\n"), std::string::npos);
    // Histogram buckets are cumulative and end with +Inf == count.
    EXPECT_NE(text.find("wsrs_test_c_ms_bucket{le=\"5\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("wsrs_test_c_ms_bucket{le=\"50\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("wsrs_test_c_ms_bucket{le=\"+Inf\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("wsrs_test_c_ms_sum 7\n"), std::string::npos);
    EXPECT_NE(text.find("wsrs_test_c_ms_count 1\n"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentUpdatesFold)
{
    MetricsRegistry reg;
    MetricCounter &c = reg.counter("wsrs_test_mt_total", "");
    MetricHistogram &h = reg.histogram("wsrs_test_mt_ms", "", {10, 100});
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                h.observe(static_cast<std::uint64_t>(t));
                // Concurrent registration of the same name must be safe
                // and return a stable instrument.
                if (i % 1000 == 0)
                    reg.counter("wsrs_test_mt_total", "").add(0);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_EQ(h.bucketCount(0), kThreads * kPerThread);
}

} // namespace
} // namespace wsrs::obs
