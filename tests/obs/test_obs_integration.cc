/**
 * @file
 * End-to-end observability checks: run a real simulation with both trace
 * sinks and the interval sampler attached, then verify the binary trace
 * reads back self-consistently, agrees with the text trace, and the
 * exported stats document is strict JSON.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/trace_sink.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"
#include "tests/support/json_lint.h"

namespace wsrs {
namespace {

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(ObsIntegration, TracedRunExportsConsistentArtifacts)
{
    const std::string textPath = testing::TempDir() + "wsrs_obs.kanata";
    const std::string binPath = testing::TempDir() + "wsrs_obs.bin";

    sim::SimConfig cfg;
    cfg.core = sim::findPreset("WSRS-RC-512");
    cfg.warmupUops = 2000;
    cfg.measureUops = 6000;
    cfg.tracePipePath = textPath;
    cfg.tracePipeBinPath = binPath;
    cfg.intervalStatsCycles = 500;
    const sim::SimResults r =
        sim::runSimulation(workload::findProfile("gzip"), cfg);

    // The stats document parses strictly and carries the pipeline section.
    EXPECT_EQ(test::jsonLint(r.statsJson), "");
    EXPECT_NE(r.statsJson.find("\"schema\": \"wsrs-stats-v1\""),
              std::string::npos);
    EXPECT_NE(r.statsJson.find("\"issue_stall\""), std::string::npos);
    EXPECT_NE(r.statsJson.find("\"period\": 500"), std::string::npos);

    // Binary trace: one record per committed micro-op of the measured
    // slice (the warm-up is never traced), self-consistent timestamps,
    // commit-ordered.
    std::ifstream bin(binPath, std::ios::binary);
    ASSERT_TRUE(bin.good());
    const std::vector<obs::UopTrace> records = obs::readBinaryTrace(bin);
    ASSERT_GE(records.size(), cfg.measureUops);
    Cycle prevCommit = 0;
    for (const obs::UopTrace &t : records) {
        EXPECT_LE(t.fetchCycle, t.renameCycle);
        EXPECT_LE(t.renameCycle, t.issueCycle);
        EXPECT_LE(t.readyCycle, t.issueCycle);
        EXPECT_LE(t.issueCycle, t.completeCycle);
        EXPECT_LE(t.completeCycle, t.commitCycle);
        EXPECT_GE(t.commitCycle, prevCommit);
        EXPECT_LT(t.cluster, cfg.core.numClusters);
        prevCommit = t.commitCycle;
    }

    // Text trace: same micro-op count, one O3PipeView block each.
    std::ifstream text(textPath);
    ASSERT_TRUE(text.good());
    std::ostringstream textContents;
    textContents << text.rdbuf();
    EXPECT_EQ(countOccurrences(textContents.str(), "O3PipeView:fetch:"),
              records.size());
    EXPECT_EQ(countOccurrences(textContents.str(), "O3PipeView:retire:"),
              records.size());
}

TEST(ObsIntegration, UntracedRunStillExportsStatsJson)
{
    sim::SimConfig cfg;
    cfg.core = sim::findPreset("RR-256");
    cfg.warmupUops = 1000;
    cfg.measureUops = 3000;
    const sim::SimResults r =
        sim::runSimulation(workload::findProfile("applu"), cfg);
    EXPECT_EQ(test::jsonLint(r.statsJson), "");
    EXPECT_NE(r.statsJson.find("\"schema\": \"wsrs-stats-v1\""),
              std::string::npos);
    // Interval sampling off: the series must be empty, not absent.
    EXPECT_NE(r.statsJson.find("\"period\": 0"), std::string::npos);
}

} // namespace
} // namespace wsrs
