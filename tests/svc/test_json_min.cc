/**
 * @file
 * Strictness and fidelity contract of the service-protocol JSON parser:
 * exactly one RFC 8259 document, int64 preservation, byte-offset errors.
 */
#include <gtest/gtest.h>

#include "src/common/log.h"
#include "src/svc/json_min.h"

namespace wsrs::svc {
namespace {

TEST(JsonMin, ParsesScalarsAndContainers)
{
    const JsonValue doc = parseJson(
        R"({"a": 1, "b": -2.5, "c": "x", "d": [true, false, null],
            "e": {"nested": 42}})",
        "test");
    EXPECT_EQ(doc.getInt("a", 0), 1);
    EXPECT_DOUBLE_EQ(doc.get("b").asDouble(), -2.5);
    EXPECT_EQ(doc.getString("c", ""), "x");
    const auto &arr = doc.get("d").asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0].asBool());
    EXPECT_FALSE(arr[1].asBool());
    EXPECT_TRUE(arr[2].isNull());
    EXPECT_EQ(doc.get("e").getInt("nested", 0), 42);
}

TEST(JsonMin, PreservesLargeIntegersExactly)
{
    // 2^63 - 1 does not round-trip through a double; the parser must
    // keep integral tokens exact.
    const JsonValue doc =
        parseJson(R"({"k": 9223372036854775807})", "test");
    EXPECT_EQ(doc.getInt("k", 0), 9223372036854775807LL);
}

TEST(JsonMin, DecodesEscapesAndUnicode)
{
    const JsonValue doc =
        parseJson(R"({"s": "a\"b\\c\nAé"})", "test");
    EXPECT_EQ(doc.getString("s", ""), "a\"b\\c\nA\xc3\xa9");
}

TEST(JsonMin, RejectsTrailingGarbageWithOffset)
{
    try {
        parseJson("{} x", "frame body");
        FAIL() << "trailing garbage accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("frame body"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
}

TEST(JsonMin, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\" 1}", "{'a': 1}", "nul", "01", "+1",
          "\"unterminated", "{\"a\": 1,}"})
        EXPECT_THROW(parseJson(bad, "test"), FatalError) << bad;
}

TEST(JsonMin, AbsentKeysFallBackToDefaults)
{
    const JsonValue doc = parseJson("{}", "test");
    EXPECT_EQ(doc.getInt("missing", 7), 7);
    EXPECT_TRUE(doc.getBool("missing", true));
    EXPECT_EQ(doc.getString("missing", "d"), "d");
    EXPECT_FALSE(doc.has("missing"));
    EXPECT_TRUE(doc.get("missing").isNull());
}

TEST(JsonMin, EscapeRoundTripsThroughParse)
{
    const std::string raw = "quote\" back\\ newline\n tab\t ctrl\x01";
    const JsonValue doc = parseJson(
        "{\"s\": \"" + jsonEscapeMin(raw) + "\"}", "test");
    EXPECT_EQ(doc.getString("s", ""), raw);
}

} // namespace
} // namespace wsrs::svc
