/**
 * @file
 * Transport-layer contract: unix-socket listen/connect round trips,
 * endpoint parsing, stale-socket-file recovery, unknown-scheme refusal.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "src/common/log.h"
#include "src/svc/transport.h"

namespace wsrs::svc {
namespace {

std::string
socketPath(const char *name)
{
    return testing::TempDir() + "wsrs_transport_" + name + ".sock";
}

TEST(Transport, UnixListenConnectRoundTrip)
{
    const std::string endpoint = "unix:" + socketPath("rt");
    auto transport = makeTransport(endpoint);
    auto listener = transport->listen(endpoint);

    std::thread client([&] {
        auto stream = makeTransport(endpoint)->connect(endpoint);
        ASSERT_TRUE(stream->writeAll("ping", 4));
        char buf[4];
        ASSERT_EQ(stream->read(buf, 4), 4);
        EXPECT_EQ(std::string(buf, 4), "pong");
    });

    auto peer = listener->accept();
    ASSERT_NE(peer, nullptr);
    char buf[4];
    ASSERT_EQ(peer->read(buf, 4), 4);
    EXPECT_EQ(std::string(buf, 4), "ping");
    ASSERT_TRUE(peer->writeAll("pong", 4));
    client.join();
    listener->close();
}

TEST(Transport, ReadReturnsZeroOnPeerClose)
{
    auto [a, b] = localPair();
    a->close();
    char buf[8];
    EXPECT_EQ(b->read(buf, sizeof buf), 0);
}

TEST(Transport, WriteFailsAfterPeerClose)
{
    auto [a, b] = localPair();
    b->close();
    // The first write may succeed into the kernel buffer; a subsequent
    // one must fail instead of raising SIGPIPE.
    bool ok = true;
    for (int i = 0; ok && i < 64; ++i)
        ok = a->writeAll("xxxxxxxx", 8);
    EXPECT_FALSE(ok);
}

TEST(Transport, RebindsOverAStaleSocketFile)
{
    const std::string path = socketPath("stale");
    { std::ofstream(path) << "stale"; } // Leftover from a dead process.
    const std::string endpoint = "unix:" + path;
    auto listener = makeTransport(endpoint)->listen(endpoint);
    EXPECT_EQ(listener->endpoint(), endpoint);
    listener->close();
}

TEST(Transport, UnknownSchemeIsAConfigError)
{
    EXPECT_THROW(makeTransport("tcp://127.0.0.1:9"), FatalError);
    EXPECT_THROW(makeTransport("spool:/var/tmp/q"), FatalError);
}

TEST(Transport, EndpointPathStripsTheScheme)
{
    EXPECT_EQ(endpointPath("unix:/tmp/x.sock"), "/tmp/x.sock");
    EXPECT_EQ(endpointPath("/tmp/bare.sock"), "/tmp/bare.sock");
}

TEST(Transport, ConnectToMissingSocketIsAnIoError)
{
    EXPECT_THROW(
        makeTransport("unix:/tmp/definitely-missing-wsrs.sock")
            ->connect("unix:/tmp/definitely-missing-wsrs.sock"),
        IoError);
}

} // namespace
} // namespace wsrs::svc
