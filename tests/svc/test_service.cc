/**
 * @file
 * Serve-daemon contract: request/result round trips with per-request
 * isolation, bounded admission with explicit backpressure, live status,
 * config errors reported to the client (not crashing the daemon), and
 * the frame log written on shutdown.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "src/common/log.h"
#include "src/svc/json_min.h"
#include "src/svc/service.h"
#include "src/svc/transport.h"

namespace wsrs::svc {
namespace {

std::string
endpointFor(const char *name)
{
    return "unix:" + testing::TempDir() + "wsrs_serve_" + name + ".sock";
}

constexpr const char *kTinyRequest =
    R"({"benchmarks": ["gzip"], "machines": ["RR-256"],
        "uops": 2000, "warmup": 500})";

TEST(Service, RunsARequestAndStreamsTheReportBack)
{
    ServiceOptions opt;
    opt.endpoint = endpointFor("basic");
    SweepService service(opt);
    service.start();

    const SubmitResult res = submitSweep(service.endpoint(), kTinyRequest);
    ASSERT_TRUE(res.accepted);
    const JsonValue report = parseJson(res.report, "sweep report");
    EXPECT_EQ(report.getString("schema", ""), "wsrs-sweep-report-v1");
    const auto &jobs = report.get("jobs").asArray();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].getString("benchmark", ""), "gzip");
    EXPECT_TRUE(jobs[0].getBool("ok", false));
    service.stop();
}

TEST(Service, IsolatesConcurrentRequests)
{
    ServiceOptions opt;
    opt.endpoint = endpointFor("iso");
    opt.executors = 2;
    opt.queueDepth = 4;
    SweepService service(opt);
    service.start();

    // Two concurrent requests with different seeds: each report must
    // reflect its own request (no cross-request state bleed).
    std::string a, b;
    std::thread ta([&] {
        a = submitSweep(service.endpoint(),
                        R"({"benchmarks": ["gzip"], "machines":
                            ["RR-256"], "uops": 2000, "warmup": 500,
                            "seed": 1})")
                .report;
    });
    std::thread tb([&] {
        b = submitSweep(service.endpoint(),
                        R"({"benchmarks": ["mcf"], "machines":
                            ["WSRS-RC-512"], "uops": 2000, "warmup": 500,
                            "seed": 2})")
                .report;
    });
    ta.join();
    tb.join();
    const JsonValue ra = parseJson(a, "report a");
    const JsonValue rb = parseJson(b, "report b");
    EXPECT_EQ(ra.get("jobs").asArray()[0].getString("benchmark", ""),
              "gzip");
    EXPECT_EQ(rb.get("jobs").asArray()[0].getString("benchmark", ""),
              "mcf");
    service.stop();
}

TEST(Service, RejectsWithRetryHintWhenTheQueueIsFull)
{
    ServiceOptions opt;
    opt.endpoint = endpointFor("full");
    opt.executors = 1;
    opt.queueDepth = 1;
    SweepService service(opt);
    service.start();

    // A slow request occupies the executor and a second one fills the
    // queue; once status shows both in place, the next submission must
    // be rejected immediately with a retry hint.
    constexpr const char *kSlowRequest =
        R"({"benchmarks": ["gzip"], "machines": ["RR-256"],
            "uops": 3000000, "warmup": 100000})";
    std::thread slow([&] { submitSweep(service.endpoint(), kSlowRequest); });
    std::thread queued([&] {
        // Wait until the first request is running so this one queues
        // behind it instead of racing it for the executor.
        for (int i = 0; i < 500; ++i) {
            const JsonValue s = parseJson(service.statusJson(), "status");
            if (s.getInt("running", 0) >= 1)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        submitSweep(service.endpoint(), kSlowRequest);
    });
    for (int i = 0; i < 500; ++i) {
        const JsonValue s = parseJson(service.statusJson(), "status");
        if (s.getInt("running", 0) >= 1 && s.getInt("queued", 0) >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    const SubmitResult rejected =
        submitSweep(service.endpoint(), kTinyRequest);
    EXPECT_FALSE(rejected.accepted);
    EXPECT_GT(rejected.retryAfterMs, 0u);
    EXPECT_NE(rejected.reason.find("queue full"), std::string::npos);

    slow.join();
    queued.join();
    const JsonValue status =
        parseJson(service.statusJson(), "status");
    EXPECT_GE(status.get("svc").getInt("backpressure_rejects", 0), 1);
    service.stop();
}

TEST(Service, ReportsConfigErrorsToTheClient)
{
    ServiceOptions opt;
    opt.endpoint = endpointFor("badcfg");
    SweepService service(opt);
    service.start();

    try {
        submitSweep(service.endpoint(),
                    R"({"benchmarks": ["no-such-benchmark"]})");
        FAIL() << "invalid benchmark admitted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("no-such-benchmark"),
                  std::string::npos);
    }
    // The daemon survives and still serves valid requests.
    EXPECT_TRUE(submitSweep(service.endpoint(), kTinyRequest).accepted);
    service.stop();
}

TEST(Service, StatusTracksRequestLifecycles)
{
    ServiceOptions opt;
    opt.endpoint = endpointFor("status");
    SweepService service(opt);
    service.start();

    submitSweep(service.endpoint(), kTinyRequest);
    const std::string statusText = queryStatus(service.endpoint());
    const JsonValue status = parseJson(statusText, "status");
    EXPECT_EQ(status.getString("schema", ""), "wsrs-svc-status-v1");
    EXPECT_EQ(status.get("svc").getInt("requests_admitted", 0), 1);
    EXPECT_EQ(status.get("svc").getInt("requests_completed", 0), 1);
    const auto &requests = status.get("requests").asArray();
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0].getString("state", ""), "done");
    EXPECT_EQ(requests[0].getInt("jobs_total", 0), 1);
    EXPECT_EQ(requests[0].getInt("jobs_done", 0), 1);
    service.stop();
}

TEST(Service, AnswersHttpGetOnTheSameEndpoint)
{
    ServiceOptions opt;
    opt.endpoint = endpointFor("http");
    SweepService service(opt);
    service.start();
    submitSweep(service.endpoint(), kTinyRequest);

    const auto get = [&](const std::string &path) {
        auto stream = makeTransport(service.endpoint())
                          ->connect(service.endpoint());
        const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
        EXPECT_TRUE(stream->writeAll(req.data(), req.size()));
        std::string out;
        char buf[4096];
        long n;
        while ((n = stream->read(buf, sizeof buf)) > 0)
            out.append(buf, static_cast<std::size_t>(n));
        return out;
    };

    const std::string metrics = get("/metrics");
    EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find(
                  "# TYPE wsrs_svc_requests_admitted_total counter"),
              std::string::npos);
    EXPECT_NE(metrics.find("wsrs_svc_requests_admitted_total 1"),
              std::string::npos);
    // The request's runner instruments joined the same registry.
    EXPECT_NE(metrics.find("wsrs_runner_jobs_total 1"),
              std::string::npos);

    const std::string status = get("/status");
    EXPECT_NE(status.find("wsrs-svc-status-v1"), std::string::npos);

    const std::string metricsJson = get("/metrics.json");
    EXPECT_NE(metricsJson.find("wsrs-metrics-v1"), std::string::npos);

    EXPECT_NE(get("/nope").find("HTTP/1.0 404"), std::string::npos);
    service.stop();
}

TEST(Service, StreamsTheFrameLogAsJsonl)
{
    const std::string logPath =
        testing::TempDir() + "wsrs_serve_frames.jsonl";
    ServiceOptions opt;
    opt.endpoint = endpointFor("log");
    opt.frameLogPath = logPath;
    {
        SweepService service(opt);
        service.start();
        submitSweep(service.endpoint(), kTinyRequest);

        // Flush-on-drain: with the queue empty again, the buffered log
        // (header + the request's frames) reaches the filesystem before
        // stop. The flush runs on the executor thread just after our
        // reply, so poll briefly.
        bool flushed = false;
        for (int i = 0; i < 200 && !flushed; ++i) {
            std::ifstream peek(logPath);
            std::ostringstream buf;
            buf << peek.rdbuf();
            flushed = buf.str().find("sweep_result") != std::string::npos;
            if (!flushed)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        EXPECT_TRUE(flushed);

        queryStatus(service.endpoint());
        service.stop();
    }
    std::ifstream is(logPath);
    ASSERT_TRUE(is.good());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    const JsonValue header = parseJson(line, "frame log header");
    EXPECT_EQ(header.getString("schema", ""), "wsrs-svc-frames-v1");
    EXPECT_EQ(header.getString("format", ""), "jsonl");

    std::size_t frames = 0;
    bool sawRequest = false, sawResult = false, sawStatus = false;
    bool sawTrailer = false;
    while (std::getline(is, line)) {
        const JsonValue rec = parseJson(line, "frame log line");
        if (!rec.has("dir")) {
            // Trailer: frame count + drops, written once on finish.
            EXPECT_EQ(rec.getInt("frames", -1),
                      static_cast<long long>(frames));
            EXPECT_EQ(rec.getInt("dropped_frames", -1), 0);
            sawTrailer = true;
            continue;
        }
        ++frames;
        const std::string type = rec.getString("type", "");
        sawRequest |= type == "sweep_request";
        sawResult |= type == "sweep_result";
        sawStatus |= type == "status_reply";
        EXPECT_TRUE(rec.getString("dir", "") == "rx" ||
                    rec.getString("dir", "") == "tx");
        EXPECT_GE(rec.getInt("conn", -1), 1);
        EXPECT_GE(rec.getInt("t_ms", -1), 0);
    }
    EXPECT_GE(frames, 4u);
    EXPECT_TRUE(sawRequest);
    EXPECT_TRUE(sawResult);
    EXPECT_TRUE(sawStatus);
    EXPECT_TRUE(sawTrailer);
}

} // namespace
} // namespace wsrs::svc
