/**
 * @file
 * Shard planning and protocol payload codecs: contiguous
 * submission-ordered partitions, and exact round trips for every frame
 * body (including the binary JobDone journal codec).
 */
#include <gtest/gtest.h>

#include "src/common/log.h"
#include "src/sim/presets.h"
#include "src/svc/proto.h"
#include "src/svc/shard.h"
#include "src/workload/profiles.h"

namespace wsrs::svc {
namespace {

TEST(Shard, PartitionsContiguouslyInOrder)
{
    const auto shards = planShards({0, 1, 2, 3, 4, 5, 6}, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].id, 0u);
    EXPECT_EQ(shards[0].jobs, (std::vector<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(shards[1].jobs, (std::vector<std::uint64_t>{3, 4, 5}));
    EXPECT_EQ(shards[2].id, 2u);
    EXPECT_EQ(shards[2].jobs, (std::vector<std::uint64_t>{6}));
}

TEST(Shard, HandlesGapsFromRecoveredJobs)
{
    // The journal already holds jobs 1 and 3: only the holes are planned.
    const auto shards = planShards({0, 2, 4, 5}, 2);
    ASSERT_EQ(shards.size(), 2u);
    EXPECT_EQ(shards[0].jobs, (std::vector<std::uint64_t>{0, 2}));
    EXPECT_EQ(shards[1].jobs, (std::vector<std::uint64_t>{4, 5}));
}

TEST(Shard, EmptyPendingAndZeroSize)
{
    EXPECT_TRUE(planShards({}, 4).empty());
    const auto shards = planShards({7, 8}, 0); // 0 promotes to 1.
    ASSERT_EQ(shards.size(), 2u);
    EXPECT_EQ(shards[0].jobs.size(), 1u);
}

TEST(Proto, HexKeyRoundTripsEveryPattern)
{
    for (const std::uint64_t key :
         {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
        EXPECT_EQ(parseHexKey(hexKey(key), "test"), key);
        EXPECT_EQ(hexKey(key).size(), 16u);
    }
    EXPECT_THROW(parseHexKey("short", "test"), FatalError);
    EXPECT_THROW(parseHexKey("zzzzzzzzzzzzzzzz", "test"), FatalError);
}

TEST(Proto, HelloRoundTrip)
{
    const HelloInfo hello =
        parseHello(helloPayload(4242, 0xabcdef0123456789ull, 72));
    EXPECT_EQ(hello.role, "worker");
    EXPECT_EQ(hello.pid, 4242);
    EXPECT_EQ(hello.sweepKey, 0xabcdef0123456789ull);
    EXPECT_EQ(hello.jobs, 72u);
}

TEST(Proto, HelloAckCarriesTheRefusalReason)
{
    EXPECT_EQ(parseHelloAck(helloAckPayload(true, "")), "");
    const std::string why =
        parseHelloAck(helloAckPayload(false, "sweep key mismatch"));
    EXPECT_EQ(why, "sweep key mismatch");
}

TEST(Proto, LeaseAndShardDoneRoundTrip)
{
    Shard shard;
    shard.id = 5;
    shard.jobs = {10, 11, 12, 40};
    const LeaseInfo got = parseLease(leasePayload(shard, 2));
    EXPECT_EQ(got.shard.id, 5u);
    EXPECT_EQ(got.shard.jobs, shard.jobs);
    EXPECT_EQ(got.attempt, 2u);
    // Leases from before attempt-stamping default to attempt 1.
    EXPECT_EQ(parseLease("{\"shard\": 5, \"jobs\": [1]}").attempt, 1u);
    EXPECT_EQ(parseShardDone(shardDonePayload(5)), 5u);
}

TEST(Proto, JobDoneRoundTripsARealOutcome)
{
    // Run one tiny job so the outcome carries a fully populated
    // SimResults (stats JSON included), then round-trip it.
    sim::SimConfig cfg;
    cfg.core = sim::findPreset("RR-256");
    cfg.warmupUops = 500;
    cfg.measureUops = 2000;
    runner::SweepOutcome out;
    out.ok = true;
    out.results = sim::runSimulation(workload::findProfile("gzip"), cfg);

    const JobDone done = decodeJobDone(encodeJobDone(17, out));
    EXPECT_EQ(done.index, 17u);
    ASSERT_TRUE(done.outcome.ok);
    EXPECT_EQ(done.outcome.results.stats.cycles, out.results.stats.cycles);
    EXPECT_EQ(done.outcome.results.statsJson, out.results.statsJson);
}

TEST(Proto, JobDoneRoundTripsAFailure)
{
    runner::SweepOutcome out;
    out.ok = false;
    out.error = "core construction failed";
    const JobDone done = decodeJobDone(encodeJobDone(3, out));
    EXPECT_EQ(done.index, 3u);
    EXPECT_FALSE(done.outcome.ok);
    EXPECT_EQ(done.outcome.error, "core construction failed");
}

TEST(Proto, JobDoneRejectsTrailingBytes)
{
    runner::SweepOutcome out;
    out.ok = false;
    out.error = "x";
    std::string wire = encodeJobDone(0, out);
    wire.push_back('!');
    EXPECT_THROW(decodeJobDone(wire), FatalError);
}

TEST(Proto, WorkerStatsRoundTrip)
{
    WorkerStatsInfo stats;
    stats.jobsRun = 9;
    stats.warmupHits = 7;
    stats.warmupMisses = 2;
    stats.sharedHits = 1;
    stats.sharedMisses = 1;
    stats.sharedRebuilds = 1;
    const WorkerStatsInfo got =
        parseWorkerStats(workerStatsPayload(stats));
    EXPECT_EQ(got.jobsRun, 9u);
    EXPECT_EQ(got.warmupHits, 7u);
    EXPECT_EQ(got.warmupMisses, 2u);
    EXPECT_EQ(got.sharedHits, 1u);
    EXPECT_EQ(got.sharedMisses, 1u);
    EXPECT_EQ(got.sharedRebuilds, 1u);
}

TEST(Proto, ErrorPayloadEscapesProperly)
{
    const std::string msg = "bad \"thing\"\nline two";
    EXPECT_EQ(parseErrorPayload(errorPayload(msg)), msg);
}

} // namespace
} // namespace wsrs::svc
