/**
 * @file
 * Coordinator/worker protocol contract, exercised fully in-process over
 * unix sockets: distributed outcomes must be bit-identical to the
 * in-process SweepRunner's, the journal doubles as the work queue on
 * resume, dead and hung lease holders are re-leased with bounded retries,
 * and a mismatched worker is refused at handshake.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/log.h"
#include "src/runner/resume_journal.h"
#include "src/runner/sweep_runner.h"
#include "src/svc/coordinator.h"
#include "src/svc/frame.h"
#include "src/svc/proto.h"
#include "src/svc/transport.h"
#include "src/svc/worker.h"
#include "src/workload/profiles.h"

namespace wsrs::svc {
namespace {

std::string
endpointFor(const char *name)
{
    return "unix:" + testing::TempDir() + "wsrs_coord_" + name + ".sock";
}

std::vector<runner::SweepJob>
smallMatrix(std::uint64_t seed = 0)
{
    sim::SimConfig cfg;
    cfg.warmupUops = 500;
    cfg.measureUops = 2000;
    cfg.seed = seed;
    return runner::SweepRunner::crossProduct(
        {workload::findProfile("gzip"), workload::findProfile("mcf")},
        {"RR-256", "WSRS-RC-512"}, cfg);
}

Coordinator::Options
quickOptions(const std::string &endpoint)
{
    Coordinator::Options opt;
    opt.endpoint = endpoint;
    opt.shardSize = 1;
    opt.leaseBackoffMs = 1;
    opt.drainGraceMs = 500;
    return opt;
}

/** Connect + handshake a raw protocol client (for misbehaving peers). */
std::unique_ptr<Stream>
handshake(const std::string &endpoint,
          const std::vector<runner::SweepJob> &jobs)
{
    auto stream = makeTransport(endpoint)->connect(endpoint);
    EXPECT_TRUE(sendFrame(*stream, FrameType::Hello,
                          helloPayload(1, runner::sweepKeyHash(jobs),
                                       jobs.size())));
    Frame frame;
    EXPECT_TRUE(recvFrame(*stream, frame));
    EXPECT_EQ(frame.type, FrameType::HelloAck);
    EXPECT_EQ(parseHelloAck(frame.payload), "");
    return stream;
}

TEST(Coordinator, DistributedOutcomesAreBitIdenticalToInProcess)
{
    const auto jobs = smallMatrix();
    const auto reference = runner::SweepRunner().run(jobs);

    Coordinator coord(quickOptions(endpointFor("ident")), jobs);
    coord.bind();
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w)
        workers.emplace_back([&, jobs] {
            WorkerOptions wopt;
            wopt.endpoint = coord.endpoint();
            runWorker(jobs, wopt);
        });
    const auto outcomes = coord.run();
    for (auto &t : workers)
        t.join();

    ASSERT_EQ(outcomes.size(), reference.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
        EXPECT_EQ(outcomes[i].results.stats.cycles,
                  reference[i].results.stats.cycles);
        EXPECT_EQ(std::memcmp(&outcomes[i].results.ipc,
                              &reference[i].results.ipc,
                              sizeof(double)),
                  0);
        // The per-job stats document is what the merged report embeds:
        // byte equality here is what makes the reports byte-equal.
        EXPECT_EQ(outcomes[i].results.statsJson,
                  reference[i].results.statsJson);
    }
    const obs::SvcCounters &ctr = coord.svcReport().counters;
    EXPECT_EQ(ctr.shards, jobs.size()); // shardSize = 1.
    EXPECT_EQ(ctr.leasesGranted, jobs.size());
    EXPECT_EQ(ctr.shardsFailed, 0u);
    EXPECT_EQ(ctr.workersLost, 0u);
    EXPECT_GE(ctr.workersSeen, 1u);
    EXPECT_LE(ctr.workersSeen, 2u);
    std::uint64_t jobsViaWorkers = 0;
    for (const obs::WorkerLiveness &w : coord.svcReport().workers)
        jobsViaWorkers += w.jobsDone;
    EXPECT_EQ(jobsViaWorkers, jobs.size());
}

TEST(Coordinator, RefusesAWorkerFromADifferentSweep)
{
    const auto jobs = smallMatrix(0);
    Coordinator coord(quickOptions(endpointFor("refuse")), jobs);
    coord.bind();

    std::thread mismatched([&] {
        WorkerOptions wopt;
        wopt.endpoint = coord.endpoint();
        // Different seed => different job matrix => different sweep key.
        EXPECT_THROW(runWorker(smallMatrix(99), wopt),
                     SweepMismatchError);
    });
    std::thread good([&, jobs] {
        WorkerOptions wopt;
        wopt.endpoint = coord.endpoint();
        runWorker(jobs, wopt);
    });
    const auto outcomes = coord.run();
    mismatched.join();
    good.join();
    for (const auto &o : outcomes)
        EXPECT_TRUE(o.ok) << o.error;
    EXPECT_EQ(coord.svcReport().counters.workersSeen, 1u);
}

TEST(Coordinator, JournalIsTheWorkQueueOnResume)
{
    const auto jobs = smallMatrix();
    const std::string journal =
        testing::TempDir() + "wsrs_coord_resume.jrn";

    Coordinator::Options opt = quickOptions(endpointFor("jrn1"));
    opt.journalPath = journal;
    {
        Coordinator coord(opt, jobs);
        coord.bind();
        std::thread worker([&, jobs] {
            WorkerOptions wopt;
            wopt.endpoint = coord.endpoint();
            runWorker(jobs, wopt);
        });
        const auto outcomes = coord.run();
        worker.join();
        for (const auto &o : outcomes)
            ASSERT_TRUE(o.ok);
    }

    // Resume: every job is recovered from the journal, so the sweep
    // completes with zero workers and zero leases.
    Coordinator::Options opt2 = quickOptions(endpointFor("jrn2"));
    opt2.journalPath = journal;
    opt2.resume = true;
    std::size_t events = 0;
    opt2.onEvent = [&](const runner::SweepEvent &ev) {
        ++events;
        EXPECT_TRUE(ev.outcome->ok);
    };
    Coordinator coord2(opt2, jobs);
    const auto outcomes = coord2.run();
    EXPECT_EQ(events, jobs.size());
    EXPECT_TRUE(coord2.telemetry().resumed);
    EXPECT_EQ(coord2.telemetry().skippedRuns, jobs.size());
    EXPECT_EQ(coord2.svcReport().counters.leasesGranted, 0u);
    for (const auto &o : outcomes)
        EXPECT_TRUE(o.ok);
}

TEST(Coordinator, ReleasesSharedAfterLeaseHolderDies)
{
    const auto jobs = smallMatrix();
    Coordinator coord(quickOptions(endpointFor("death")), jobs);
    coord.bind();

    std::thread sequence([&, jobs] {
        // A worker that takes one lease and dies without a result.
        {
            auto flaky = handshake(coord.endpoint(), jobs);
            ASSERT_TRUE(sendFrame(*flaky, FrameType::Claim, "{}"));
            Frame frame;
            ASSERT_TRUE(recvFrame(*flaky, frame));
            ASSERT_EQ(frame.type, FrameType::Lease);
            flaky->close(); // SIGKILL equivalent: EOF mid-lease.
        }
        // A healthy worker finishes everything, including the
        // re-leased shard.
        WorkerOptions wopt;
        wopt.endpoint = coord.endpoint();
        runWorker(jobs, wopt);
    });
    const auto outcomes = coord.run();
    sequence.join();

    for (const auto &o : outcomes)
        EXPECT_TRUE(o.ok) << o.error;
    const obs::SvcCounters &ctr = coord.svcReport().counters;
    EXPECT_GE(ctr.leaseRetries, 1u);
    EXPECT_GE(ctr.workersLost, 1u);
    EXPECT_EQ(ctr.shardsFailed, 0u);
}

TEST(Coordinator, HungLeaseHolderIsTimedOutAndReplaced)
{
    const auto jobs = smallMatrix();
    Coordinator::Options opt = quickOptions(endpointFor("hang"));
    // Low enough for the hung holder to blow promptly, high enough
    // that an honest job never does — even slowed ~20x under TSan.
    opt.perJobTimeoutMs = 2000;
    Coordinator coord(opt, jobs);
    coord.bind();

    std::thread sequence([&, jobs] {
        auto hung = handshake(coord.endpoint(), jobs);
        EXPECT_TRUE(sendFrame(*hung, FrameType::Claim, "{}"));
        Frame frame;
        EXPECT_TRUE(recvFrame(*hung, frame));
        EXPECT_EQ(frame.type, FrameType::Lease);
        // Sit on the lease; the coordinator must cut us off.
        char buf[16];
        while (hung->read(buf, sizeof buf) > 0) {
        }
        WorkerOptions wopt;
        wopt.endpoint = coord.endpoint();
        EXPECT_NO_THROW(runWorker(jobs, wopt));
    });
    const auto outcomes = coord.run();
    sequence.join();

    for (const auto &o : outcomes)
        EXPECT_TRUE(o.ok) << o.error;
    EXPECT_GE(coord.svcReport().counters.leaseTimeouts, 1u);
}

TEST(Coordinator, FailsShardJobsOnceRetriesAreExhausted)
{
    const auto jobs = smallMatrix();
    Coordinator::Options opt = quickOptions(endpointFor("exhaust"));
    opt.shardSize = jobs.size(); // One shard holds the whole sweep.
    opt.maxLeaseRetries = 1;
    Coordinator coord(opt, jobs);
    coord.bind();

    std::thread clients([&, jobs] {
        // Every "worker" dies holding the lease; the retry budget (1)
        // means the second death fails the shard.
        for (int attempt = 0; attempt < 2; ++attempt) {
            auto flaky = handshake(coord.endpoint(), jobs);
            ASSERT_TRUE(sendFrame(*flaky, FrameType::Claim, "{}"));
            Frame frame;
            ASSERT_TRUE(recvFrame(*flaky, frame));
            ASSERT_EQ(frame.type, FrameType::Lease);
            flaky->close();
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    const auto outcomes = coord.run();
    clients.join();

    for (const auto &o : outcomes) {
        EXPECT_FALSE(o.ok);
        EXPECT_NE(o.error.find("lease retries"), std::string::npos)
            << o.error;
    }
    EXPECT_EQ(coord.svcReport().counters.shardsFailed, 1u);
}

TEST(Coordinator, DuplicateResultsAreDroppedAndCounted)
{
    const auto jobs = smallMatrix();
    Coordinator::Options opt = quickOptions(endpointFor("dup"));
    opt.shardSize = jobs.size();
    Coordinator coord(opt, jobs);
    coord.bind();

    std::thread client([&, jobs] {
        auto stream = handshake(coord.endpoint(), jobs);
        ASSERT_TRUE(sendFrame(*stream, FrameType::Claim, "{}"));
        Frame frame;
        ASSERT_TRUE(recvFrame(*stream, frame));
        ASSERT_EQ(frame.type, FrameType::Lease);
        const Shard shard = parseLease(frame.payload).shard;
        runner::SweepOutcome fake;
        fake.ok = false;
        fake.error = "synthetic";
        for (const std::uint64_t index : shard.jobs) {
            ASSERT_TRUE(sendFrame(*stream, FrameType::JobDone,
                                  encodeJobDone(index, fake)));
            // Report the first job twice: the duplicate must be dropped.
            if (index == shard.jobs.front()) {
                ASSERT_TRUE(sendFrame(*stream, FrameType::JobDone,
                                      encodeJobDone(index, fake)));
            }
        }
        ASSERT_TRUE(sendFrame(*stream, FrameType::ShardDone,
                              shardDonePayload(shard.id)));
        ASSERT_TRUE(sendFrame(*stream, FrameType::Claim, "{}"));
        ASSERT_TRUE(recvFrame(*stream, frame));
        EXPECT_EQ(frame.type, FrameType::NoWork);
        stream->close();
    });
    const auto outcomes = coord.run();
    client.join();

    EXPECT_EQ(coord.svcReport().counters.duplicateResults, 1u);
    for (const auto &o : outcomes)
        EXPECT_EQ(o.error, "synthetic");
}

} // namespace
} // namespace wsrs::svc
