/**
 * @file
 * Integrity contract of the WSVF frame layer: round trips over a real
 * stream pair, and loud IoError diagnostics for every kind of damage —
 * bad magic, oversized declared length, truncation, CRC mismatch.
 */
#include <gtest/gtest.h>

#include <thread>

#include "src/common/log.h"
#include "src/svc/frame.h"
#include "src/svc/transport.h"

namespace wsrs::svc {
namespace {

TEST(Frame, RoundTripsOverAStreamPair)
{
    auto [a, b] = localPair();
    const std::string payload = "{\"x\": 1}";
    ASSERT_TRUE(sendFrame(*a, FrameType::Hello, payload));
    Frame got;
    ASSERT_TRUE(recvFrame(*b, got));
    EXPECT_EQ(got.type, FrameType::Hello);
    EXPECT_EQ(got.payload, payload);
    EXPECT_EQ(got.traceId, 0u); // Untraced unless the sender stamps one.
}

TEST(Frame, PropagatesTheTraceId)
{
    auto [a, b] = localPair();
    const std::uint64_t trace = 0x1122334455667788ull;
    ASSERT_TRUE(sendFrame(*a, FrameType::Lease, "{\"shard\": 0}", trace));
    Frame got;
    ASSERT_TRUE(recvFrame(*b, got));
    EXPECT_EQ(got.type, FrameType::Lease);
    EXPECT_EQ(got.traceId, trace);
}

TEST(Frame, CorruptTraceIdFailsTheCrc)
{
    auto [a, b] = localPair();
    std::string wire = encodeFrame(FrameType::Claim, "{}", 42);
    wire[4 + 4 + 3] ^= 0x01; // Flip one traceId bit.
    ASSERT_TRUE(a->writeAll(wire.data(), wire.size()));
    Frame got;
    EXPECT_THROW(recvFrame(*b, got), IoError);
}

TEST(Frame, RoundTripsBinaryAndEmptyPayloads)
{
    auto [a, b] = localPair();
    std::string binary;
    for (int i = 0; i < 256; ++i)
        binary.push_back(static_cast<char>(i));
    ASSERT_TRUE(sendFrame(*a, FrameType::JobDone, binary));
    ASSERT_TRUE(sendFrame(*a, FrameType::Claim, ""));
    Frame got;
    ASSERT_TRUE(recvFrame(*b, got));
    EXPECT_EQ(got.payload, binary);
    ASSERT_TRUE(recvFrame(*b, got));
    EXPECT_EQ(got.type, FrameType::Claim);
    EXPECT_TRUE(got.payload.empty());
}

TEST(Frame, CleanEofAtBoundaryIsNotAnError)
{
    auto [a, b] = localPair();
    a->close();
    Frame got;
    EXPECT_FALSE(recvFrame(*b, got));
}

TEST(Frame, EofMidFrameIsAnIoError)
{
    auto [a, b] = localPair();
    const std::string wire = encodeFrame(FrameType::Hello, "{\"k\": 1}");
    // Send only half the frame, then hang up.
    ASSERT_TRUE(a->writeAll(wire.data(), wire.size() / 2));
    a->close();
    Frame got;
    EXPECT_THROW(recvFrame(*b, got), IoError);
}

TEST(Frame, BadMagicIsAnIoError)
{
    auto [a, b] = localPair();
    std::string wire = encodeFrame(FrameType::Hello, "{}");
    wire[0] = 'X';
    ASSERT_TRUE(a->writeAll(wire.data(), wire.size()));
    Frame got;
    try {
        recvFrame(*b, got);
        FAIL() << "bad magic accepted";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
}

TEST(Frame, CorruptPayloadFailsTheCrc)
{
    auto [a, b] = localPair();
    std::string wire = encodeFrame(FrameType::Lease, "{\"shard\": 3}");
    wire[4 + 4 + 8 + 8 + 2] ^= 0x40; // Flip one payload bit.
    ASSERT_TRUE(a->writeAll(wire.data(), wire.size()));
    Frame got;
    try {
        recvFrame(*b, got);
        FAIL() << "corrupt payload accepted";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("lease"), std::string::npos);
    }
}

TEST(Frame, OversizedDeclaredLengthIsRefusedBeforeBuffering)
{
    auto [a, b] = localPair();
    std::string wire = encodeFrame(FrameType::Hello, "{}");
    // Rewrite the length field to 1 TiB; the receiver must refuse the
    // allocation instead of trusting the peer.
    const std::uint64_t huge = 1ull << 40;
    for (int i = 0; i < 8; ++i)
        wire[4 + 4 + 8 + i] = static_cast<char>(huge >> (8 * i));
    ASSERT_TRUE(a->writeAll(wire.data(), wire.size()));
    Frame got;
    try {
        recvFrame(*b, got);
        FAIL() << "oversized frame accepted";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("limit"), std::string::npos);
    }
}

TEST(Frame, EncodeRefusesOversizedPayloadUpFront)
{
    // The send side enforces the same bound (FatalError: caller bug, not
    // wire damage).
    std::string big(kMaxFramePayload + 1, 'x');
    EXPECT_THROW(encodeFrame(FrameType::SweepResult, big), FatalError);
}

} // namespace
} // namespace wsrs::svc
