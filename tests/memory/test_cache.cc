/** @file Unit and property tests for the set-associative cache model. */
#include <gtest/gtest.h>

#include "src/common/log.h"
#include "src/memory/cache.h"

namespace wsrs::memory {
namespace {

TEST(Cache, MissThenHit)
{
    Cache c({.sizeBytes = 4096, .assoc = 2, .lineBytes = 64});
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1038, false).hit);   // same line
    EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c({.sizeBytes = 4096, .assoc = 2, .lineBytes = 64});
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.probe(0x2000));
    c.access(0x2000, false);
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, map three conflicting lines: sets = 4096/64/2 = 32,
    // conflict stride = 32 * 64 = 2048.
    Cache c({.sizeBytes = 4096, .assoc = 2, .lineBytes = 64});
    const Addr a = 0x0000, b = 0x0800, d = 0x1000;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);   // a most recent
    c.access(d, false);   // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionSignalsWriteback)
{
    Cache c({.sizeBytes = 4096, .assoc = 1, .lineBytes = 64});
    c.access(0x0000, true);                       // dirty
    const AccessOutcome out = c.access(0x1000, false);  // conflicts (64 sets)
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.writebackVictim);
    const AccessOutcome out2 = c.access(0x2000, false); // clean victim
    EXPECT_FALSE(out2.hit);
    EXPECT_FALSE(out2.writebackVictim);
}

TEST(Cache, StoreHitMarksLineDirty)
{
    Cache c({.sizeBytes = 4096, .assoc = 1, .lineBytes = 64});
    c.access(0x0000, false);  // clean fill
    c.access(0x0000, true);   // dirty it
    const AccessOutcome out = c.access(0x1000, false);
    EXPECT_TRUE(out.writebackVictim);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c({.sizeBytes = 4096, .assoc = 2, .lineBytes = 64});
    for (Addr a = 0; a < 4096; a += 64)
        c.access(a, false);
    c.flush();
    for (Addr a = 0; a < 4096; a += 64)
        EXPECT_FALSE(c.probe(a));
}

TEST(Cache, WorkingSetLargerThanCacheMisses)
{
    Cache c({.sizeBytes = 32 * 1024, .assoc = 4, .lineBytes = 64});
    // Sweep 64 KB twice; second sweep still misses (capacity).
    for (Addr a = 0; a < 64 * 1024; a += 64)
        c.access(a, false);
    unsigned misses = 0;
    for (Addr a = 0; a < 64 * 1024; a += 64)
        misses += !c.access(a, false).hit;
    EXPECT_GT(misses, 900u);
}

TEST(Cache, WorkingSetSmallerThanCacheHits)
{
    Cache c({.sizeBytes = 32 * 1024, .assoc = 4, .lineBytes = 64});
    for (Addr a = 0; a < 16 * 1024; a += 64)
        c.access(a, false);
    for (Addr a = 0; a < 16 * 1024; a += 64)
        EXPECT_TRUE(c.access(a, false).hit);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache c({.sizeBytes = 4096, .assoc = 2, .lineBytes = 60}),
                 FatalError);
    EXPECT_THROW(Cache c({.sizeBytes = 4096, .assoc = 0, .lineBytes = 64}),
                 FatalError);
    EXPECT_THROW(Cache c({.sizeBytes = 5000, .assoc = 2, .lineBytes = 64}),
                 FatalError);
}

/** Associativity sweep: a set holding exactly assoc lines never thrashes. */
class AssocSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AssocSweep, ConflictFreeUpToAssociativity)
{
    const unsigned assoc = GetParam();
    Cache c({.sizeBytes = 64u * 64 * assoc, .assoc = assoc,
             .lineBytes = 64});
    const Addr stride = 64 * c.numSets();
    // assoc conflicting lines fit; reuse them all.
    for (unsigned w = 0; w < assoc; ++w)
        c.access(w * stride, false);
    for (unsigned w = 0; w < assoc; ++w)
        EXPECT_TRUE(c.access(w * stride, false).hit) << "way " << w;
    // One more line overflows the set.
    c.access(assoc * stride, false);
    unsigned hits = 0;
    for (unsigned w = 0; w <= assoc; ++w)
        hits += c.probe(w * stride);
    EXPECT_EQ(hits, assoc);
}

INSTANTIATE_TEST_SUITE_P(Ways, AssocSweep, ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace wsrs::memory
