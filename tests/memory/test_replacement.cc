/** @file Tests for the replacement policies, MSHRs and the prefetcher. */
#include <gtest/gtest.h>

#include "src/common/log.h"
#include "src/memory/cache.h"
#include "src/memory/hierarchy.h"

namespace wsrs::memory {
namespace {

CacheParams
smallCache(ReplacementPolicy policy)
{
    return {.sizeBytes = 4096, .assoc = 4, .lineBytes = 64,
            .replacement = policy};
}

TEST(Replacement, FifoEvictsOldestFillDespiteReuse)
{
    Cache c(smallCache(ReplacementPolicy::Fifo));
    // Set stride: 4096/64/4 = 16 sets -> 1024 bytes.
    const Addr stride = 1024;
    for (unsigned i = 0; i < 4; ++i)
        c.access(i * stride, false);
    // Heavily reuse the first-filled line: FIFO ignores recency.
    for (int i = 0; i < 10; ++i)
        c.access(0, false);
    c.access(4 * stride, false);  // overflow -> evicts line 0 (oldest)
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(1 * stride));
}

TEST(Replacement, LruKeepsReusedLine)
{
    Cache c(smallCache(ReplacementPolicy::Lru));
    const Addr stride = 1024;
    for (unsigned i = 0; i < 4; ++i)
        c.access(i * stride, false);
    c.access(0, false);           // make way-0 most recent
    c.access(4 * stride, false);  // evicts line 1 (LRU), not line 0
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1 * stride));
}

TEST(Replacement, TreePlruApproximatesLru)
{
    Cache c(smallCache(ReplacementPolicy::TreePlru));
    const Addr stride = 1024;
    for (unsigned i = 0; i < 4; ++i)
        c.access(i * stride, false);
    c.access(3 * stride, false);  // most recently touched
    c.access(4 * stride, false);  // must NOT evict the just-touched line
    EXPECT_TRUE(c.probe(3 * stride));
}

TEST(Replacement, RandomIsDeterministicAndLegal)
{
    Cache a(smallCache(ReplacementPolicy::Random));
    Cache b(smallCache(ReplacementPolicy::Random));
    const Addr stride = 1024;
    // Same access stream -> same evictions (deterministic xorshift).
    for (unsigned i = 0; i < 64; ++i) {
        const Addr addr = (i % 7) * stride;
        EXPECT_EQ(a.access(addr, false).hit, b.access(addr, false).hit);
    }
}

TEST(Replacement, AllPoliciesHitOnResidentWorkingSet)
{
    for (const ReplacementPolicy p :
         {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
          ReplacementPolicy::Random, ReplacementPolicy::TreePlru}) {
        Cache c(smallCache(p));
        for (Addr a = 0; a < 4096; a += 64)
            c.access(a, false);
        unsigned hits = 0;
        for (Addr a = 0; a < 4096; a += 64)
            hits += c.access(a, false).hit;
        EXPECT_EQ(hits, 64u) << "policy " << int(p);
    }
}

TEST(Replacement, TreePlruRequiresPowerOfTwoWays)
{
    CacheParams p{.sizeBytes = 4096 * 3, .assoc = 3, .lineBytes = 64,
                  .replacement = ReplacementPolicy::TreePlru};
    EXPECT_THROW(Cache c(p), FatalError);
}

TEST(Mshr, LimitSerializesBurstsOfMisses)
{
    StatGroup stats("t");
    HierarchyParams p;
    p.mshrs = 2;
    MemoryHierarchy mem(p, stats);
    // Four same-cycle misses with 2 MSHRs: the 3rd and 4th must wait for
    // earlier completions on top of the refill-port queueing.
    const Cycle l0 = mem.access(0x10000, false, 0).latency;
    const Cycle l1 = mem.access(0x20000, false, 0).latency;
    const Cycle l2 = mem.access(0x30000, false, 0).latency;
    const Cycle l3 = mem.access(0x40000, false, 0).latency;
    EXPECT_LT(l0, l2);
    EXPECT_LT(l1, l3);
    EXPECT_GE(l2, l0 + 80);  // waits for the first miss to complete
    EXPECT_EQ(mem.mshrStalls(), 2u);

    // Unlimited MSHRs: only the 4-cycle refill port separates them.
    StatGroup stats2("t2");
    MemoryHierarchy ideal(HierarchyParams{}, stats2);
    const Cycle i0 = ideal.access(0x10000, false, 0).latency;
    const Cycle i3 = ideal.access(0x40000, false, 0).latency;
    (void)ideal.access(0x20000, false, 0);
    (void)ideal.access(0x30000, false, 0);
    EXPECT_LE(i3 - i0, 3 * 4u + 4u);
}

TEST(Prefetch, NextLinePrefetchTurnsL2MissesIntoHits)
{
    StatGroup stats("t");
    HierarchyParams p;
    p.prefetchDepth = 2;
    MemoryHierarchy mem(p, stats);

    const TimedAccess first = mem.access(0x50000, false, 0);
    EXPECT_FALSE(first.l2Hit);
    EXPECT_GE(mem.prefetches(), 2u);
    // The next line was prefetched into L2: the L1 miss now hits in L2.
    const TimedAccess next = mem.access(0x50040, false, 100);
    EXPECT_FALSE(next.l1Hit);
    EXPECT_TRUE(next.l2Hit);
    EXPECT_EQ(next.latency, p.l1Latency + p.l1MissPenalty);
}

TEST(Prefetch, DisabledByDefault)
{
    StatGroup stats("t");
    MemoryHierarchy mem(HierarchyParams{}, stats);
    mem.access(0x50000, false, 0);
    EXPECT_EQ(mem.prefetches(), 0u);
}

} // namespace
} // namespace wsrs::memory
