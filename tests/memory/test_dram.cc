/** @file Tests for the event-driven DRAM backend (bank state machine,
 *  queue ordering, bounded window, stall attribution, checkpointing). */
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "src/ckpt/io.h"
#include "src/memory/dram.h"
#include "src/memory/event_queue.h"

namespace wsrs::memory {
namespace {

using obs::MemQueueStall;

TEST(EventQueue, PopsInCycleOrderWithFifoTieBreak)
{
    EventQueue q;
    q.schedule(5, 10);
    q.schedule(3, 11);
    q.schedule(5, 12);
    q.schedule(1, 13);
    ASSERT_EQ(q.size(), 4u);

    EXPECT_EQ(q.top().at, 1u);
    EXPECT_EQ(q.top().bank, 13u);
    q.pop();
    EXPECT_EQ(q.top().at, 3u);
    q.pop();
    // Same-cycle events pop in schedule order.
    EXPECT_EQ(q.top().at, 5u);
    EXPECT_EQ(q.top().bank, 10u);
    q.pop();
    EXPECT_EQ(q.top().bank, 12u);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SnapshotRoundTripsBitExactly)
{
    EventQueue a;
    a.schedule(9, 1);
    a.schedule(2, 2);
    a.schedule(9, 3);
    a.pop();

    ckpt::Writer w;
    a.snapshot(w);
    ckpt::Reader r(w.buffer(), "<eventq>");
    EventQueue b;
    b.restore(r);

    ASSERT_EQ(b.size(), a.size());
    while (!a.empty()) {
        EXPECT_EQ(b.top().at, a.top().at);
        EXPECT_EQ(b.top().seq, a.top().seq);
        EXPECT_EQ(b.top().bank, a.top().bank);
        a.pop();
        b.pop();
    }
    // The restored tie-break sequence continues where the original's
    // would: new same-cycle events still order behind old ones.
    a.schedule(4, 7);
    b.schedule(4, 7);
    EXPECT_EQ(b.top().seq, a.top().seq);
}

/** Small, round-number geometry so latencies are easy to compute:
 *  2 banks, 1 KB rows, tRp=10, tRcd=10, tCas=5, burst=4, window=2. */
DramParams
tinyDram()
{
    DramParams p;
    p.banks = 2;
    p.rowBytes = 1024;
    p.tRp = 10;
    p.tRcd = 10;
    p.tCas = 5;
    p.burstCycles = 4;
    p.windowDepth = 2;
    return p;
}

class DramTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
    DramController dram_{tinyDram(), stats_};
};

TEST_F(DramTest, RowEmptyHitAndConflictLatencies)
{
    // Cold bank: activate + CAS + burst = 10 + 5 + 4.
    EXPECT_EQ(dram_.request(0x0, false, 0, 0), 19u);
    EXPECT_EQ(dram_.rowEmpties(), 1u);

    // Open-row hit: CAS + burst only.
    EXPECT_EQ(dram_.request(0x40, false, 100, 100), 9u);
    EXPECT_EQ(dram_.rowHits(), 1u);

    // Same bank (bank 0 holds even row addresses), different row:
    // precharge + activate + CAS + burst = 10 + 10 + 5 + 4.
    EXPECT_EQ(dram_.request(2 * 1024, false, 200, 200), 29u);
    EXPECT_EQ(dram_.rowConflicts(), 1u);
    EXPECT_EQ(dram_.requests(), 3u);
}

TEST_F(DramTest, SharedBusSerializesSameCycleRequests)
{
    // Two cold requests to different banks in the same cycle: both pay
    // activate+CAS in parallel (15), but the second's burst waits for
    // the first to leave the bus (done at 19).
    EXPECT_EQ(dram_.request(0x0, false, 0, 0), 19u);
    EXPECT_EQ(dram_.request(1024, false, 0, 0), 23u);
}

TEST_F(DramTest, ClosedPagePolicyAlwaysActivates)
{
    DramParams p = tinyDram();
    p.closedPage = true;
    StatGroup g("closed");
    DramController dram(p, g);
    EXPECT_EQ(dram.request(0x0, false, 0, 0), 19u);
    // Same row again: no open-row hit under auto-precharge.
    EXPECT_EQ(dram.request(0x0, false, 100, 100), 19u);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.rowEmpties(), 2u);
}

TEST_F(DramTest, BoundedWindowDelaysAdmission)
{
    // windowDepth = 2: the third same-cycle request waits for the first
    // completion (cycle 19) before even starting its bank access.
    EXPECT_EQ(dram_.request(0x0, false, 0, 0), 19u);
    EXPECT_EQ(dram_.request(1024, false, 0, 0), 23u);
    EXPECT_EQ(dram_.inFlight(), 2u);

    const Cycle third = dram_.request(2 * 1024, false, 0, 0);
    EXPECT_EQ(dram_.queueFullWaits(), 1u);
    // Admitted at 19, row conflict on bank 0 (row 0 open, row 1 wanted):
    // 19 + 10+10+5 = 44 CAS done, bus free at 23 -> done 48.
    EXPECT_EQ(third, 48u);

    // Once completions pass, the window admits immediately again.
    EXPECT_GT(dram_.request(1024 + 0x40, false, 1000, 1000), 0u);
    EXPECT_EQ(dram_.queueFullWaits(), 1u);
}

TEST_F(DramTest, PrefetchesDropOnFullWindowAndChargeNothing)
{
    EXPECT_TRUE(dram_.tryPrefetch(0x0, 0, 0));
    EXPECT_TRUE(dram_.tryPrefetch(1024, 0, 0));
    EXPECT_FALSE(dram_.tryPrefetch(2 * 1024, 0, 0));
    EXPECT_EQ(dram_.prefetchDrops(), 1u);

    // Prefetch service is never charged to the attribution buckets...
    const auto idleOnly = dram_.stallCycles(100);
    EXPECT_EQ(idleOnly[std::size_t(MemQueueStall::Idle)], 100u);

    // ...but it does occupy the bank: a demand request waiting behind a
    // prefetch-busy bank is charged BankBusy (the first *charged* cause).
    StatGroup g("pf");
    DramController dram(tinyDram(), g);
    ASSERT_TRUE(dram.tryPrefetch(0x0, 0, 0));   // bank 0 busy until 15
    EXPECT_EQ(dram.request(2 * 1024, false, 5, 5), 39u);
    const auto buckets = dram.stallCycles(100);
    EXPECT_EQ(buckets[std::size_t(MemQueueStall::BankBusy)], 10u);
}

TEST_F(DramTest, StallAttributionSumsToElapsedCycles)
{
    dram_.request(0x0, false, 0, 0);
    dram_.request(1024, false, 0, 0);
    dram_.request(2 * 1024, false, 3, 3);
    dram_.request(3 * 1024, false, 3, 3);
    dram_.request(0x80, false, 400, 400);

    for (const Cycle end : {500u, 1000u}) {
        const auto buckets = dram_.stallCycles(end);
        const std::uint64_t sum =
            std::accumulate(buckets.begin(), buckets.end(),
                            std::uint64_t{0});
        EXPECT_EQ(sum, end) << "attribution must cover every cycle";
    }
    // Charged (non-idle) cycles exist and are identical across dumps.
    const auto b = dram_.stallCycles(1000);
    EXPECT_GT(b[std::size_t(MemQueueStall::BankPrep)], 0u);
    EXPECT_GT(b[std::size_t(MemQueueStall::DataBurst)], 0u);
}

TEST_F(DramTest, ResetMeasurementRebasesTheAttributionEpoch)
{
    dram_.request(0x0, false, 0, 0);
    dram_.request(2 * 1024, false, 1, 1);
    dram_.resetMeasurement(50);
    // In-flight service spilling past the epoch stays charged; cycles
    // before it are dropped, and the window re-anchors at the epoch.
    const auto buckets = dram_.stallCycles(200);
    const std::uint64_t sum = std::accumulate(
        buckets.begin(), buckets.end(), std::uint64_t{0});
    EXPECT_EQ(sum, 150u);
}

TEST_F(DramTest, RebaseTimingClearsPendingEventsButKeepsOpenRows)
{
    // Saturate far in the future: full window, busy banks and bus.
    dram_.request(0x0, false, 1000000, 1000000);
    dram_.request(1024, false, 1000000, 1000000);
    EXPECT_EQ(dram_.inFlight(), 2u);

    dram_.rebaseTiming();
    EXPECT_EQ(dram_.inFlight(), 0u);

    // No phantom busy state: a request at cycle 0 is admitted instantly
    // and, the row still being open (warmed state survives the rebase),
    // pays only CAS + burst.
    EXPECT_EQ(dram_.request(0x40, false, 0, 0), 9u);
    EXPECT_EQ(dram_.queueFullWaits(), 0u);
}

TEST_F(DramTest, CheckpointRoundTripContinuesBitExactly)
{
    dram_.request(0x0, false, 0, 0);
    dram_.request(1024, false, 0, 0);
    dram_.request(2 * 1024, false, 5, 5);
    dram_.resetMeasurement(10);

    ckpt::Writer w;
    dram_.snapshot(w);
    ckpt::Reader r(w.buffer(), "<dram>");
    StatGroup g("copy");
    DramController copy(tinyDram(), g);
    copy.restore(r);

    EXPECT_EQ(copy.requests(), dram_.requests());
    EXPECT_EQ(copy.rowHits(), dram_.rowHits());
    EXPECT_EQ(copy.rowConflicts(), dram_.rowConflicts());
    EXPECT_EQ(copy.inFlight(), dram_.inFlight());
    EXPECT_EQ(copy.stallCycles(1000), dram_.stallCycles(1000));

    // Identical continuations: same future request stream, same
    // latencies and same attribution on both sides.
    for (const Addr a : {Addr{3 * 1024}, Addr{0x40}, Addr{1024 + 0x80}}) {
        EXPECT_EQ(copy.request(a, false, 50, 50),
                  dram_.request(a, false, 50, 50));
    }
    EXPECT_EQ(copy.stallCycles(2000), dram_.stallCycles(2000));

    std::ostringstream ja, jb;
    StatGroup empty("e");
    dram_.dumpJson(ja, empty, 2000);
    copy.dumpJson(jb, empty, 2000);
    EXPECT_EQ(ja.str(), jb.str());
}

TEST_F(DramTest, RestoreRejectsBankCountMismatch)
{
    ckpt::Writer w;
    dram_.snapshot(w);
    DramParams p = tinyDram();
    p.banks = 4;
    StatGroup g("other");
    DramController other(p, g);
    ckpt::Reader r(w.buffer(), "<mismatch>");
    EXPECT_THROW(other.restore(r), std::exception);
}

} // namespace
} // namespace wsrs::memory
