/** @file Tests for the two-level hierarchy timing (paper Table 3). */
#include <gtest/gtest.h>

#include "src/ckpt/io.h"
#include "src/memory/hierarchy.h"

namespace wsrs::memory {
namespace {

class HierarchyTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
    MemoryHierarchy mem_{HierarchyParams{}, stats_};
};

TEST_F(HierarchyTest, Table3DefaultParameters)
{
    const HierarchyParams &p = mem_.params();
    EXPECT_EQ(p.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(p.l1Latency, 2u);
    EXPECT_EQ(p.l1MissPenalty, 12u);
    EXPECT_EQ(p.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(p.l2MissPenalty, 80u);
    EXPECT_EQ(p.l2BytesPerCycle, 16u);
}

TEST_F(HierarchyTest, L1HitLatency)
{
    mem_.access(0x1000, false, 0);  // fill
    const TimedAccess t = mem_.access(0x1000, false, 100);
    EXPECT_TRUE(t.l1Hit);
    EXPECT_EQ(t.latency, 2u);
}

TEST_F(HierarchyTest, L1MissL2HitLatency)
{
    mem_.access(0x1000, false, 0);   // fill both levels
    // Evict from L1 by sweeping > 32 KB, keep L2 resident (< 512 KB).
    for (Addr a = 0x100000; a < 0x100000 + 64 * 1024; a += 64)
        mem_.access(a, false, 1000);
    const TimedAccess t = mem_.access(0x1000, false, 50000);
    EXPECT_FALSE(t.l1Hit);
    EXPECT_TRUE(t.l2Hit);
    EXPECT_EQ(t.latency, 2u + 12u);
}

TEST_F(HierarchyTest, ColdMissPaysFullPath)
{
    const TimedAccess t = mem_.access(0xdead000, false, 0);
    EXPECT_FALSE(t.l1Hit);
    EXPECT_FALSE(t.l2Hit);
    EXPECT_EQ(t.latency, 2u + 12u + 80u);
}

TEST_F(HierarchyTest, RefillBandwidthQueuesConcurrentMisses)
{
    // Two misses in the same cycle: the second's refill waits for the
    // 64 B / 16 B-per-cycle = 4-cycle L2 port occupancy of the first.
    const TimedAccess a = mem_.access(0x10000, false, 0);
    const TimedAccess b = mem_.access(0x20000, false, 0);
    EXPECT_EQ(a.latency, 94u);
    EXPECT_EQ(b.latency, 94u + 4u);
    // A later miss, after the port freed, pays no queue delay.
    const TimedAccess c = mem_.access(0x30000, false, 100);
    EXPECT_EQ(c.latency, 94u);
}

TEST_F(HierarchyTest, MissCountersTrackAccesses)
{
    mem_.access(0x1000, false, 0);
    mem_.access(0x1000, false, 1);
    mem_.access(0x2000, true, 2);
    EXPECT_EQ(mem_.accesses(), 3u);
    EXPECT_EQ(mem_.l1Misses(), 2u);
    EXPECT_EQ(mem_.l2Misses(), 2u);
}

TEST_F(HierarchyTest, FlushResetsTagsNotCounters)
{
    mem_.access(0x1000, false, 0);
    mem_.flush();
    const TimedAccess t = mem_.access(0x1000, false, 10);
    EXPECT_FALSE(t.l1Hit);
    EXPECT_EQ(mem_.accesses(), 2u);
}

TEST(Hierarchy, CustomGeometry)
{
    StatGroup stats("g");
    HierarchyParams p;
    p.l1.sizeBytes = 8 * 1024;
    p.l1Latency = 1;
    p.l1MissPenalty = 6;
    p.l2MissPenalty = 40;
    MemoryHierarchy mem(p, stats);
    EXPECT_EQ(mem.access(0x40, false, 0).latency, 1u + 6u + 40u);
    EXPECT_EQ(mem.access(0x40, false, 10).latency, 1u);
}

TEST(Hierarchy, RebaseTimingClearsSaturatedMshrFile)
{
    // Regression: warm-up snapshots are transplanted into a core whose
    // clock restarts at zero. A saturated MSHR file carries completion
    // stamps from the warming pass's (huge) cycle numbers; without the
    // rebase, every early miss of the measured run would wait behind
    // these phantom in-flight refills.
    StatGroup stats("mshr");
    HierarchyParams p;
    p.mshrs = 2;
    MemoryHierarchy mem(p, stats);
    mem.access(0x10000, false, 1000000);
    mem.access(0x20000, false, 1000000);
    mem.access(0x30000, false, 1000000);  // all MSHR slots stamped ~1e6
    EXPECT_EQ(mem.mshrStalls(), 1u);

    mem.rebaseTiming();
    const TimedAccess t = mem.access(0x40000, false, 0);
    EXPECT_EQ(t.latency, 94u) << "phantom-busy MSHR slots after rebase";
    EXPECT_EQ(mem.mshrStalls(), 1u);
}

TEST(Hierarchy, DramColdMissLatency)
{
    // Constant 80 is replaced by event timing: the miss reaches the
    // controller at start + l1MissPenalty = 12, pays activate + CAS
    // (28 + 28) and a 4-cycle burst -> 60 extra; 2 + 12 + 60 total.
    StatGroup stats("dram");
    HierarchyParams p;
    p.model = MemModel::Dram;
    MemoryHierarchy mem(p, stats);
    ASSERT_NE(mem.dram(), nullptr);
    const TimedAccess t = mem.access(0x40, false, 0);
    EXPECT_FALSE(t.l2Hit);
    EXPECT_EQ(t.latency, 2u + 12u + 60u);
    EXPECT_EQ(mem.dram()->requests(), 1u);
}

TEST(Hierarchy, DramRebaseMatchesFreshInstance)
{
    StatGroup warmStats("warm");
    HierarchyParams p;
    p.model = MemModel::Dram;
    MemoryHierarchy warmed(p, warmStats);
    // Warm bank 0 only (row addresses all ≡ 0 mod banks) at large cycle
    // numbers, leaving busy bank/bus/port stamps behind.
    const Addr bankStride = Addr{p.dram.rowBytes} * p.dram.banks;
    for (Addr i = 0; i < 64; ++i)
        warmed.access(i * bankStride, false, 2000000);
    warmed.rebaseTiming();

    StatGroup freshStats("fresh");
    MemoryHierarchy fresh(p, freshStats);
    // A bank neither instance has touched: identical cold timing, with no
    // residue from the warming pass's absolute cycle stamps.
    const Addr untouchedBank7 = Addr{7} * p.dram.rowBytes;
    EXPECT_EQ(warmed.access(untouchedBank7, false, 0).latency,
              fresh.access(untouchedBank7, false, 0).latency);
}

TEST(Hierarchy, DramSnapshotRoundTripContinuesIdentically)
{
    StatGroup sa("a"), sb("b");
    HierarchyParams p;
    p.model = MemModel::Dram;
    MemoryHierarchy a(p, sa);
    for (Addr addr = 0; addr < 16 * 1024; addr += 64)
        a.access(addr, false, 100);

    ckpt::Writer w;
    a.snapshot(w);
    ckpt::Reader r(w.buffer(), "<hier>");
    MemoryHierarchy b(p, sb);
    b.restore(r);

    EXPECT_EQ(b.l2Misses(), a.l2Misses());
    EXPECT_EQ(b.dram()->requests(), a.dram()->requests());
    for (Addr addr = 256 * 1024; addr < 272 * 1024; addr += 64) {
        EXPECT_EQ(b.access(addr, false, 5000).latency,
                  a.access(addr, false, 5000).latency);
    }
    EXPECT_EQ(b.dram()->rowHits(), a.dram()->rowHits());
    EXPECT_EQ(b.dram()->rowConflicts(), a.dram()->rowConflicts());
}

TEST(Hierarchy, PrefetchClampsAtTopOfAddressSpace)
{
    // Regression: Addr arithmetic wraps, so the line "after" the top of
    // the address space is line 0 — prefetching it would pollute L2 with
    // unrelated low lines and, worse, loop over the whole depth.
    StatGroup stats("wrap");
    HierarchyParams p;
    p.prefetchDepth = 4;
    MemoryHierarchy mem(p, stats);
    const Addr topLine = ~Addr{0} & ~Addr{63};  // 0xFFFF...FFC0
    mem.access(topLine, false, 0);
    EXPECT_EQ(mem.prefetches(), 0u);
    // Line 0 must still be cold: a wrapped prefetch would have filled it.
    const TimedAccess low = mem.access(0x0, false, 100);
    EXPECT_FALSE(low.l1Hit);
    EXPECT_FALSE(low.l2Hit);
    EXPECT_EQ(mem.prefetches(), 4u);  // normal operation away from the top

    // Near the top, successors stop at the clamp: topLine-2*64 and
    // topLine-64 issue (topLine itself is resident), nothing wraps.
    mem.access(topLine - 3 * 64, false, 200);
    EXPECT_EQ(mem.prefetches(), 6u);
}

TEST(Hierarchy, PrefetchNeverChargesTheTriggeringAccess)
{
    // Regression: the triggering miss must observe the same latency
    // whether or not it spawns prefetches — under both backends. (Under
    // DRAM, prefetches occupy banks and may slow *later* accesses, but
    // never the access that issued them.)
    for (const MemModel model : {MemModel::Constant, MemModel::Dram}) {
        HierarchyParams base;
        base.model = model;
        StatGroup s0("off"), s1("on");
        MemoryHierarchy off(base, s0);
        HierarchyParams withPf = base;
        withPf.prefetchDepth = 4;
        MemoryHierarchy on(withPf, s1);
        EXPECT_EQ(on.access(0x1000, false, 0).latency,
                  off.access(0x1000, false, 0).latency)
            << "model " << int(model);
        EXPECT_EQ(on.prefetches(), 4u);
    }
}

TEST(Hierarchy, StoreMissesConsumeRefillBandwidthLikeLoads)
{
    // Stores are off the critical path for *latency* reporting, but they
    // still move lines: a store miss must hold the L2 refill port and an
    // MSHR slot exactly like a load miss, or stores would be free
    // bandwidth. Interleave each and require identical port progression.
    StatGroup sl("loads"), ss("stores");
    HierarchyParams p;
    p.mshrs = 1;
    MemoryHierarchy viaLoads(p, sl);
    MemoryHierarchy viaStores(p, ss);
    for (int i = 0; i < 4; ++i) {
        const Addr addr = Addr{0x100000} + Addr(i) * 0x10000;
        EXPECT_EQ(viaStores.access(addr, true, 0).latency,
                  viaLoads.access(addr, false, 0).latency)
            << "miss " << i;
    }
    // Same occupancy: a trailing load observes the same queueing whether
    // the traffic ahead of it was loads or stores.
    const TimedAccess afterLoads = viaLoads.access(0x500000, false, 10);
    const TimedAccess afterStores = viaStores.access(0x500000, false, 10);
    EXPECT_EQ(afterStores.latency, afterLoads.latency);
    EXPECT_EQ(viaStores.l1Misses(), viaLoads.l1Misses());
    EXPECT_EQ(viaStores.l2Misses(), viaLoads.l2Misses());
    EXPECT_EQ(viaStores.mshrStalls(), viaLoads.mshrStalls());
}

} // namespace
} // namespace wsrs::memory
