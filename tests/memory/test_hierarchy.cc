/** @file Tests for the two-level hierarchy timing (paper Table 3). */
#include <gtest/gtest.h>

#include "src/memory/hierarchy.h"

namespace wsrs::memory {
namespace {

class HierarchyTest : public ::testing::Test
{
  protected:
    StatGroup stats_{"test"};
    MemoryHierarchy mem_{HierarchyParams{}, stats_};
};

TEST_F(HierarchyTest, Table3DefaultParameters)
{
    const HierarchyParams &p = mem_.params();
    EXPECT_EQ(p.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(p.l1Latency, 2u);
    EXPECT_EQ(p.l1MissPenalty, 12u);
    EXPECT_EQ(p.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(p.l2MissPenalty, 80u);
    EXPECT_EQ(p.l2BytesPerCycle, 16u);
}

TEST_F(HierarchyTest, L1HitLatency)
{
    mem_.access(0x1000, false, 0);  // fill
    const TimedAccess t = mem_.access(0x1000, false, 100);
    EXPECT_TRUE(t.l1Hit);
    EXPECT_EQ(t.latency, 2u);
}

TEST_F(HierarchyTest, L1MissL2HitLatency)
{
    mem_.access(0x1000, false, 0);   // fill both levels
    // Evict from L1 by sweeping > 32 KB, keep L2 resident (< 512 KB).
    for (Addr a = 0x100000; a < 0x100000 + 64 * 1024; a += 64)
        mem_.access(a, false, 1000);
    const TimedAccess t = mem_.access(0x1000, false, 50000);
    EXPECT_FALSE(t.l1Hit);
    EXPECT_TRUE(t.l2Hit);
    EXPECT_EQ(t.latency, 2u + 12u);
}

TEST_F(HierarchyTest, ColdMissPaysFullPath)
{
    const TimedAccess t = mem_.access(0xdead000, false, 0);
    EXPECT_FALSE(t.l1Hit);
    EXPECT_FALSE(t.l2Hit);
    EXPECT_EQ(t.latency, 2u + 12u + 80u);
}

TEST_F(HierarchyTest, RefillBandwidthQueuesConcurrentMisses)
{
    // Two misses in the same cycle: the second's refill waits for the
    // 64 B / 16 B-per-cycle = 4-cycle L2 port occupancy of the first.
    const TimedAccess a = mem_.access(0x10000, false, 0);
    const TimedAccess b = mem_.access(0x20000, false, 0);
    EXPECT_EQ(a.latency, 94u);
    EXPECT_EQ(b.latency, 94u + 4u);
    // A later miss, after the port freed, pays no queue delay.
    const TimedAccess c = mem_.access(0x30000, false, 100);
    EXPECT_EQ(c.latency, 94u);
}

TEST_F(HierarchyTest, MissCountersTrackAccesses)
{
    mem_.access(0x1000, false, 0);
    mem_.access(0x1000, false, 1);
    mem_.access(0x2000, true, 2);
    EXPECT_EQ(mem_.accesses(), 3u);
    EXPECT_EQ(mem_.l1Misses(), 2u);
    EXPECT_EQ(mem_.l2Misses(), 2u);
}

TEST_F(HierarchyTest, FlushResetsTagsNotCounters)
{
    mem_.access(0x1000, false, 0);
    mem_.flush();
    const TimedAccess t = mem_.access(0x1000, false, 10);
    EXPECT_FALSE(t.l1Hit);
    EXPECT_EQ(mem_.accesses(), 2u);
}

TEST(Hierarchy, CustomGeometry)
{
    StatGroup stats("g");
    HierarchyParams p;
    p.l1.sizeBytes = 8 * 1024;
    p.l1Latency = 1;
    p.l1MissPenalty = 6;
    p.l2MissPenalty = 40;
    MemoryHierarchy mem(p, stats);
    EXPECT_EQ(mem.access(0x40, false, 0).latency, 1u + 6u + 40u);
    EXPECT_EQ(mem.access(0x40, false, 10).latency, 1u);
}

} // namespace
} // namespace wsrs::memory
