/**
 * @file
 * Memory-backend presets at the simulator level.
 *
 * The `constant` preset is the identity: selecting it explicitly must
 * produce the byte-exact stats document of the default configuration, so
 * the golden fingerprints in test_golden_equivalence.cc lock the DRAM
 * work out of the paper-reproduction path. The `dram` preset must emit a
 * schema-shaped, deterministic document of its own.
 */
#include <string>

#include <gtest/gtest.h>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"
#include "tests/support/json_lint.h"

namespace {

using namespace wsrs;

sim::SimResults
run(const char *profile, const char *preset, const char *mem_preset)
{
    sim::SimConfig cfg;
    cfg.core = sim::findPreset(preset);
    if (mem_preset)
        cfg.mem = sim::findMemPreset(mem_preset);
    cfg.warmupUops = 2000;
    cfg.measureUops = 10000;
    return sim::runSimulation(workload::findProfile(profile), cfg);
}

TEST(MemModel, ConstantPresetIsByteIdenticalToDefault)
{
    for (const char *profile : {"gzip", "swim"}) {
        for (const char *preset : {"RR-256", "WSRS-RC-512"}) {
            const sim::SimResults def = run(profile, preset, nullptr);
            const sim::SimResults con = run(profile, preset, "constant");
            EXPECT_EQ(con.statsJson, def.statsJson)
                << preset << "/" << profile;
            EXPECT_EQ(con.stats.cycles, def.stats.cycles);
            // The constant model reports no DRAM activity at all.
            EXPECT_EQ(con.mem.dramRequests, 0u);
        }
    }
}

TEST(MemModel, DramPresetEmitsValidDeterministicStats)
{
    const sim::SimResults a = run("gzip", "WSRS-RC-512", "dram");
    EXPECT_EQ(test::jsonLint(a.statsJson), "");
    EXPECT_NE(a.statsJson.find("\"model\": \"dram\""), std::string::npos);
    EXPECT_NE(a.statsJson.find("\"stall\""), std::string::npos);
    EXPECT_GT(a.mem.dramRequests, 0u);

    // Deterministic: a second identical run reproduces the document.
    const sim::SimResults b = run("gzip", "WSRS-RC-512", "dram");
    EXPECT_EQ(b.statsJson, a.statsJson);
}

TEST(MemModel, DramSlowsMemoryBoundRunsRelativeToConstant)
{
    // Not a golden value — just the directionality that makes the model
    // worth having: default DRAM timing (28/28/28 + burst) is slower than
    // the flat 80-cycle constant once bank conflicts and the shared bus
    // come into play, so cycles must move (and IPC with them).
    const sim::SimResults con = run("swim", "WSRS-RC-512", "constant");
    const sim::SimResults dram = run("swim", "WSRS-RC-512", "dram");
    EXPECT_NE(dram.stats.cycles, con.stats.cycles);
    EXPECT_EQ(dram.stats.committed, con.stats.committed)
        << "memory timing must not change committed work";
}

TEST(MemModel, UnknownPresetDies)
{
    EXPECT_THROW(sim::findMemPreset("rambus"), std::exception);
    EXPECT_EQ(sim::memPresets().size(), 3u);
}

} // namespace
