/**
 * @file
 * Cycle-exact golden lock for the hot-loop restructuring work.
 *
 * The speed pass (structure-of-arrays window, ready-list scheduling,
 * interned allocation tables, ring-buffer recycler/LSQ, batched stat
 * attribution, flat committed-memory map) is only legal because it is
 * observationally invisible: every preset must produce the exact
 * wsrs-stats-v1 JSON document — byte for byte — that the pre-refactor
 * simulator produced. These fingerprints were generated from the seed
 * implementation (straight AoS window scan, std::deque recycler,
 * std::unordered_map oracle) and lock cycles, committed micro-op counts
 * and an FNV-1a hash of the full stats document for every Figure-4 /
 * MONO / narrow preset over two benchmark profiles with dataflow
 * verification enabled.
 *
 * If an intentional model change invalidates these rows, regenerate them
 * with the same configuration (warmupUops=2000, measureUops=10000,
 * verifyDataflow=true, default seed) from a build whose behaviour change
 * is understood and reviewed — never to paper over an accidental diff.
 */
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace {

using namespace wsrs;

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

struct GoldenRow
{
    const char *preset;
    const char *profile;
    std::uint64_t statsHash;  ///< fnv1a over the full stats JSON.
    std::uint64_t cycles;
    std::uint64_t committed;
};

// Generated from the seed implementation; see the file comment.
constexpr GoldenRow kGolden[] = {
    {"RR-256", "gzip", 0x5a920b6c1794bb91ull, 5823ull, 10006ull},
    {"RR-256", "swim", 0x8fbda47daaa6373cull, 6361ull, 10000ull},
    {"WSRR-384", "gzip", 0x38217cb98e020455ull, 5692ull, 10000ull},
    {"WSRR-384", "swim", 0x3ac1200d179dcb50ull, 6152ull, 10000ull},
    {"WSRR-512", "gzip", 0x2c74b5e076f5ae5bull, 5692ull, 10000ull},
    {"WSRR-512", "swim", 0xdc1d8032710e7f9cull, 6152ull, 10000ull},
    {"WSP-512", "gzip", 0xb2b6a686730c24c4ull, 6763ull, 10006ull},
    {"WSP-512", "swim", 0xa2ef233032c44820ull, 6086ull, 10000ull},
    {"WSRS-RC-384", "gzip", 0x98592be519e9a0daull, 6260ull, 10006ull},
    {"WSRS-RC-384", "swim", 0xf6721a66ad27f268ull, 6728ull, 10000ull},
    {"WSRS-RC-512", "gzip", 0x6c7ca45475fdebf4ull, 6260ull, 10006ull},
    {"WSRS-RC-512", "swim", 0x4be0973e84076ea6ull, 6728ull, 10000ull},
    {"WSRS-RM-512", "gzip", 0xe94393057bf574cdull, 7418ull, 10006ull},
    {"WSRS-RM-512", "swim", 0x763fbfff8e0e3bdcull, 6676ull, 10000ull},
    {"WSRS-DEP-512", "gzip", 0x51fba526fcb51f1aull, 6033ull, 10005ull},
    {"WSRS-DEP-512", "swim", 0xd5798a210667fa1cull, 6190ull, 10000ull},
    {"MONO-256", "gzip", 0x887151c97e376d47ull, 5865ull, 10005ull},
    {"MONO-256", "swim", 0xa2aa15535ba87ea1ull, 6435ull, 10000ull},
    {"MONO-320", "gzip", 0xfd275b35b14077f8ull, 5854ull, 10005ull},
    {"MONO-320", "swim", 0x76bc673269fa3e0cull, 6137ull, 10000ull},
    {"RR4W-128", "gzip", 0x1ea5c020b048576aull, 10149ull, 10002ull},
    {"RR4W-128", "swim", 0xf380b8f3d434e56bull, 13101ull, 10000ull},
};

class GoldenEquivalence : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(GoldenEquivalence, StatsJsonByteIdentical)
{
    const GoldenRow &row = GetParam();
    sim::SimConfig cfg;
    cfg.core = sim::findPreset(row.preset);
    cfg.warmupUops = 2000;
    cfg.measureUops = 10000;
    // The commit-time oracle cross-checks every value the dataflow model
    // produced, so a scheduling-only refactor that accidentally perturbs
    // operand routing fails loudly here, not just via the hash.
    cfg.verifyDataflow = true;
    const sim::SimResults r =
        sim::runSimulation(workload::findProfile(row.profile), cfg);
    EXPECT_EQ(r.stats.cycles, row.cycles)
        << row.preset << "/" << row.profile;
    EXPECT_EQ(r.stats.committed, row.committed)
        << row.preset << "/" << row.profile;
    EXPECT_EQ(fnv1a(r.statsJson), row.statsHash)
        << row.preset << "/" << row.profile
        << ": stats JSON diverged from the seed implementation";
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, GoldenEquivalence, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenRow> &info) {
        std::string name = std::string(info.param.preset) + "_" +
                           info.param.profile;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
