/** @file Tests for presets and the simulation facade. */
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/log.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace wsrs::sim {
namespace {

TEST(Presets, PaperMispredictionPenalties)
{
    // Section 5.2.1: 17 cycles conventional, 16 with WS (one register-read
    // stage saved), 16/18 for the WSRS renaming strategies.
    EXPECT_EQ(presetConventional().minMispredictPenalty(), 17u);
    EXPECT_EQ(presetWriteSpec(384).minMispredictPenalty(), 16u);
    EXPECT_EQ(presetWsrsRc(512, core::RenameImpl::OverPickRecycle)
                  .minMispredictPenalty(),
              16u);
    EXPECT_EQ(presetWsrsRc(512, core::RenameImpl::ExactCount)
                  .minMispredictPenalty(),
              18u);
}

TEST(Presets, MachineShellMatchesPaper)
{
    const core::CoreParams p = presetConventional();
    EXPECT_EQ(p.numClusters, 4u);
    EXPECT_EQ(p.issuePerCluster, 2u);
    EXPECT_EQ(p.fetchWidth, 8u);
    EXPECT_EQ(p.clusterWindow, 56u);
    EXPECT_EQ(p.numPhysRegs, 256u);
}

TEST(Presets, RegisterReadPipelines)
{
    // Table 1 at the simulated clock: conventional 4 stages, WS one
    // shorter, WSRS two shorter.
    EXPECT_EQ(presetConventional().regReadStages, 4u);
    EXPECT_EQ(presetWriteSpec(512).regReadStages, 3u);
    EXPECT_EQ(presetWsrsRm(512).regReadStages, 2u);
}

TEST(Presets, FindPresetCoversFigure4)
{
    for (const std::string &label : figure4Presets()) {
        const core::CoreParams p = findPreset(label);
        EXPECT_EQ(p.name, label);
    }
    EXPECT_THROW(findPreset("bogus"), FatalError);
}

TEST(Presets, ModesAndPoliciesWireUp)
{
    EXPECT_EQ(findPreset("RR-256").mode, core::RegFileMode::Conventional);
    EXPECT_EQ(findPreset("WSRR-384").mode, core::RegFileMode::WriteSpec);
    EXPECT_EQ(findPreset("WSRS-RC-512").mode, core::RegFileMode::Wsrs);
    EXPECT_EQ(findPreset("WSRS-RC-512").policy,
              core::AllocPolicy::RandomCommutative);
    EXPECT_TRUE(findPreset("WSRS-RC-512").commutativeFus);
    EXPECT_EQ(findPreset("WSRS-RM-512").policy,
              core::AllocPolicy::RandomMonadic);
    EXPECT_FALSE(findPreset("WSRS-RM-512").commutativeFus);
    EXPECT_EQ(findPreset("WSRS-DEP-512").policy,
              core::AllocPolicy::DependenceAware);
}


TEST(Presets, MonolithicAndNarrowMachines)
{
    const core::CoreParams mono = presetMonolithic8Way();
    EXPECT_EQ(mono.numClusters, 1u);
    EXPECT_EQ(mono.issuePerCluster, 8u);
    EXPECT_EQ(mono.lsusPerCluster, 4u);
    EXPECT_EQ(mono.ffScope, core::FastForwardScope::Complete);
    EXPECT_EQ(mono.minMispredictPenalty(), 18u);  // big RF, 5 read stages

    const core::CoreParams narrow = presetConventional4Way();
    EXPECT_EQ(narrow.numClusters, 2u);
    EXPECT_EQ(narrow.fetchWidth, 4u);
    EXPECT_EQ(narrow.minMispredictPenalty(), 16u);

    const core::CoreParams pools = presetWriteSpecPools(512);
    EXPECT_EQ(pools.mode, core::RegFileMode::WriteSpecPools);
    EXPECT_EQ(pools.minMispredictPenalty(), 16u);

    EXPECT_EQ(findPreset("MONO-256").numClusters, 1u);
    EXPECT_EQ(findPreset("RR4W-128").fetchWidth, 4u);
    EXPECT_EQ(findPreset("WSP-512").mode,
              core::RegFileMode::WriteSpecPools);
}

TEST(Simulator, RunsAndReportsConsistentResults)
{
    SimConfig cfg;
    cfg.core = findPreset("RR-256");
    cfg.warmupUops = 5000;
    cfg.measureUops = 20000;
    cfg.verifyDataflow = true;
    const SimResults r =
        runSimulation(workload::findProfile("gzip"), cfg);
    EXPECT_EQ(r.benchmark, "gzip");
    EXPECT_EQ(r.machine, "RR-256");
    EXPECT_GE(r.stats.committed, 20000u);
    EXPECT_NEAR(r.ipc, double(r.stats.committed) / r.stats.cycles, 1e-12);
    EXPECT_GE(r.l1MissRate, 0.0);
    EXPECT_LE(r.l1MissRate, 1.0);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    SimConfig cfg;
    cfg.core = findPreset("WSRS-RC-512");
    cfg.warmupUops = 2000;
    cfg.measureUops = 10000;
    const auto &p = workload::findProfile("swim");
    const SimResults a = runSimulation(p, cfg);
    const SimResults b = runSimulation(p, cfg);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(Simulator, SeedChangesTraceButNotValidity)
{
    SimConfig a, b;
    a.core = b.core = findPreset("RR-256");
    a.warmupUops = b.warmupUops = 2000;
    a.measureUops = b.measureUops = 10000;
    a.verifyDataflow = b.verifyDataflow = true;
    b.seed = 99;
    const auto &p = workload::findProfile("vpr");
    const SimResults ra = runSimulation(p, a);
    const SimResults rb = runSimulation(p, b);
    EXPECT_NE(ra.stats.cycles, rb.stats.cycles);
}

TEST(Simulator, AllPredictorsRun)
{
    for (const PredictorKind kind :
         {PredictorKind::TwoBcGskew, PredictorKind::Gshare,
          PredictorKind::Bimodal, PredictorKind::Perfect}) {
        SimConfig cfg;
        cfg.core = findPreset("RR-256");
        cfg.predictor = kind;
        cfg.warmupUops = 2000;
        cfg.measureUops = 8000;
        const SimResults r =
            runSimulation(workload::findProfile("gcc"), cfg);
        if (kind == PredictorKind::Perfect)
            EXPECT_EQ(r.stats.mispredicts, 0u);
        else
            EXPECT_GT(r.ipc, 0.1);
    }
}

TEST(Simulator, PerfectPredictorIsUpperBound)
{
    SimConfig real, ideal;
    real.core = ideal.core = findPreset("RR-256");
    real.warmupUops = ideal.warmupUops = 5000;
    real.measureUops = ideal.measureUops = 20000;
    ideal.predictor = PredictorKind::Perfect;
    const auto &p = workload::findProfile("gcc");
    EXPECT_GE(runSimulation(p, ideal).ipc, runSimulation(p, real).ipc);
}

TEST(Simulator, EnvOverridesApply)
{
    ::setenv("WSRS_MEASURE_UOPS", "1234", 1);
    ::setenv("WSRS_WARMUP_UOPS", "55", 1);
    const SimConfig cfg = applyEnvOverrides(SimConfig{});
    EXPECT_EQ(cfg.measureUops, 1234u);
    EXPECT_EQ(cfg.warmupUops, 55u);
    ::unsetenv("WSRS_MEASURE_UOPS");
    ::unsetenv("WSRS_WARMUP_UOPS");
}

TEST(Simulator, MalformedEnvOverridesAreFatal)
{
    // Historically these fell back to strtoull's garbage-tolerant parse:
    // "12k" silently became 12 and "junk" became 0. They must fail loudly.
    for (const char *bad : {"junk", "12k", "-5", " 7", "", "9999999999"
                                                         "9999999999"}) {
        ::setenv("WSRS_MEASURE_UOPS", bad, 1);
        EXPECT_THROW(applyEnvOverrides(SimConfig{}), FatalError)
            << "value '" << bad << "'";
        ::unsetenv("WSRS_MEASURE_UOPS");

        ::setenv("WSRS_WARMUP_UOPS", bad, 1);
        EXPECT_THROW(applyEnvOverrides(SimConfig{}), FatalError)
            << "value '" << bad << "'";
        ::unsetenv("WSRS_WARMUP_UOPS");
    }
}

} // namespace
} // namespace wsrs::sim
