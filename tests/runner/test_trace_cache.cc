/**
 * @file
 * The trace cache's replay contract: a CachedTrace cursor must deliver the
 * exact micro-op stream a fresh TraceGenerator(profile, seed) would, under
 * any interleaving of concurrent readers, and TraceCache must share one
 * recording per (profile, seed) for only as long as someone uses it.
 */
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/runner/trace_cache.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

namespace wsrs::runner {
namespace {

void
expectSameOp(const isa::MicroOp &a, const isa::MicroOp &b, std::uint64_t i)
{
    ASSERT_EQ(a.seq, b.seq) << "op " << i;
    ASSERT_EQ(a.pc, b.pc) << "op " << i;
    ASSERT_EQ(a.op, b.op) << "op " << i;
    ASSERT_EQ(a.src1, b.src1) << "op " << i;
    ASSERT_EQ(a.src2, b.src2) << "op " << i;
    ASSERT_EQ(a.dst, b.dst) << "op " << i;
    ASSERT_EQ(a.commutative, b.commutative) << "op " << i;
    ASSERT_EQ(a.taken, b.taken) << "op " << i;
    ASSERT_EQ(a.target, b.target) << "op " << i;
    ASSERT_EQ(a.effAddr, b.effAddr) << "op " << i;
}

TEST(CachedTrace, ReplaysGeneratorStreamExactly)
{
    const auto &profile = workload::findProfile("gzip");
    CachedTrace trace(profile, 3);
    const auto cursor = trace.openCursor();
    workload::TraceGenerator gen(profile, 3);
    // Cross a chunk boundary (chunks hold 16384 ops) to cover the lazy
    // extension path, not just the first chunk.
    for (std::uint64_t i = 0; i < 40000; ++i)
        expectSameOp(cursor->next(), gen.next(), i);
    EXPECT_GE(trace.recorded(), 40000u);
}

TEST(CachedTrace, CursorsAreIndependent)
{
    const auto &profile = workload::findProfile("swim");
    CachedTrace trace(profile, 0);
    const auto a = trace.openCursor();
    const auto b = trace.openCursor();
    for (int i = 0; i < 100; ++i)
        (void)a->next();  // Advance one cursor far ahead of the other.
    workload::TraceGenerator gen(profile, 0);
    for (std::uint64_t i = 0; i < 50; ++i)
        expectSameOp(b->next(), gen.next(), i);
}

TEST(CachedTrace, ConcurrentCursorsSeeTheSameStream)
{
    const auto &profile = workload::findProfile("mcf");
    CachedTrace trace(profile, 9);
    constexpr std::uint64_t kOps = 30000;

    // Reference stream, recorded single-threaded.
    std::vector<isa::MicroOp> ref;
    ref.reserve(kOps);
    workload::TraceGenerator gen(profile, 9);
    for (std::uint64_t i = 0; i < kOps; ++i)
        ref.push_back(gen.next());

    std::vector<std::thread> readers;
    std::vector<int> mismatches(4, 0);
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&trace, &ref, &mismatches, t] {
            const auto cursor = trace.openCursor();
            for (std::uint64_t i = 0; i < kOps; ++i) {
                const isa::MicroOp op = cursor->next();
                if (op.seq != ref[i].seq || op.pc != ref[i].pc ||
                    op.op != ref[i].op || op.dst != ref[i].dst ||
                    op.effAddr != ref[i].effAddr)
                    ++mismatches[t];  // gtest assertions are not
                                      // thread-safe; count instead.
            }
        });
    }
    for (auto &r : readers)
        r.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(mismatches[t], 0) << "reader " << t;
}

TEST(TraceCache, SharesOneRecordingPerProfileAndSeed)
{
    TraceCache cache;
    const auto &gzip = workload::findProfile("gzip");
    const auto a = cache.acquire(gzip, 0);
    const auto b = cache.acquire(gzip, 0);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.liveTraces(), 1u);

    // Different seed or profile means a different stream: distinct traces.
    const auto c = cache.acquire(gzip, 1);
    const auto d = cache.acquire(workload::findProfile("swim"), 0);
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(cache.liveTraces(), 3u);
}

TEST(TraceCache, DropsRecordingWhenLastHandleDies)
{
    TraceCache cache;
    const auto &profile = workload::findProfile("vpr");
    auto handle = cache.acquire(profile, 0);
    CachedTrace *first = handle.get();
    EXPECT_EQ(cache.liveTraces(), 1u);
    handle.reset();
    EXPECT_EQ(cache.liveTraces(), 0u);

    // A fresh acquire re-records; it must again match the generator.
    auto again = cache.acquire(profile, 0);
    EXPECT_EQ(cache.liveTraces(), 1u);
    (void)first;  // The old pointer is dead; only the stream matters.
    const auto cursor = again->openCursor();
    workload::TraceGenerator gen(profile, 0);
    for (std::uint64_t i = 0; i < 1000; ++i)
        expectSameOp(cursor->next(), gen.next(), i);
}

} // namespace
} // namespace wsrs::runner
