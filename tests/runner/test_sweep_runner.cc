/**
 * @file
 * Determinism contract of the parallel sweep runner: a {profile x config}
 * matrix must produce bit-identical SimResults regardless of worker-thread
 * count, job scheduling, or whether micro-ops come from a fresh
 * TraceGenerator or a shared cached trace.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"

namespace wsrs::runner {
namespace {

sim::SimConfig
quickConfig(std::uint64_t seed = 0)
{
    sim::SimConfig cfg;
    cfg.warmupUops = 2000;
    cfg.measureUops = 10000;
    cfg.seed = seed;
    return cfg;
}

std::vector<SweepJob>
smallMatrix(std::uint64_t seed = 0)
{
    return SweepRunner::crossProduct(
        {workload::findProfile("gzip"), workload::findProfile("swim"),
         workload::findProfile("mcf")},
        {"RR-256", "WSRS-RC-512", "WSRS-RM-512"}, quickConfig(seed));
}

void
expectIdentical(const sim::SimResults &a, const sim::SimResults &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.committed, b.stats.committed);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
    EXPECT_EQ(a.stats.loadForwards, b.stats.loadForwards);
    EXPECT_EQ(a.stats.unbalancedGroups, b.stats.unbalancedGroups);
    EXPECT_EQ(a.stats.windowOccupancySum, b.stats.windowOccupancySum);
    EXPECT_EQ(a.stats.perCluster, b.stats.perCluster);
    EXPECT_EQ(a.stats.issueWidthHist, b.stats.issueWidthHist);
    // Bit-identical, not merely approximately equal.
    EXPECT_EQ(std::memcmp(&a.ipc, &b.ipc, sizeof a.ipc), 0);
    EXPECT_EQ(std::memcmp(&a.l1MissRate, &b.l1MissRate, sizeof a.l1MissRate),
              0);
    EXPECT_EQ(std::memcmp(&a.branchMispredictRate, &b.branchMispredictRate,
                          sizeof a.branchMispredictRate),
              0);
}

TEST(SweepRunner, CrossProductIsRowMajor)
{
    const auto jobs = smallMatrix();
    ASSERT_EQ(jobs.size(), 9u);
    EXPECT_EQ(jobs[0].profile.name, "gzip");
    EXPECT_EQ(jobs[1].profile.name, "gzip");
    EXPECT_EQ(jobs[3].profile.name, "swim");
    EXPECT_EQ(jobs[4].config.core.name, "WSRS-RC-512");
    EXPECT_EQ(jobs[8].profile.name, "mcf");
    EXPECT_EQ(jobs[8].config.core.name, "WSRS-RM-512");
}

TEST(SweepRunner, MatchesDirectSimulation)
{
    const auto jobs = smallMatrix();
    const auto outcomes = SweepRunner().run(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
        const sim::SimResults direct =
            sim::runSimulation(jobs[i].profile, jobs[i].config);
        expectIdentical(outcomes[i].results, direct);
    }
}

TEST(SweepRunner, SerialAndThreadedAreBitIdentical)
{
    const auto jobs = smallMatrix(7);

    SweepRunner::Options serial;
    serial.threads = 1;
    serial.shareTraces = false;
    const auto ref = SweepRunner(serial).run(jobs);

    for (unsigned threads : {2u, 4u, 8u}) {
        SweepRunner::Options opt;
        opt.threads = threads;
        const auto out = SweepRunner(opt).run(jobs);
        ASSERT_EQ(out.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) + " job " +
                         std::to_string(i));
            ASSERT_TRUE(out[i].ok) << out[i].error;
            expectIdentical(out[i].results, ref[i].results);
        }
    }
}

TEST(SweepRunner, CachedAndGeneratedTracesAreBitIdentical)
{
    const auto jobs = smallMatrix(13);

    SweepRunner::Options fresh;
    fresh.shareTraces = false;
    const auto generated = SweepRunner(fresh).run(jobs);

    SweepRunner::Options cached;
    cached.shareTraces = true;
    const auto replayed = SweepRunner(cached).run(jobs);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(generated[i].ok && replayed[i].ok);
        expectIdentical(replayed[i].results, generated[i].results);
    }
}

TEST(SweepRunner, DistinctSeedsProduceDistinctResults)
{
    const auto a = SweepRunner().run(smallMatrix(1));
    const auto b = SweepRunner().run(smallMatrix(2));
    ASSERT_TRUE(a[0].ok && b[0].ok);
    // Different trace seeds must actually change the simulated stream.
    EXPECT_NE(a[0].results.stats.cycles, b[0].results.stats.cycles);
}

TEST(SweepRunner, ReportsProgressInOrderOfCompletionWithStableIndices)
{
    const auto jobs = smallMatrix();
    std::vector<bool> seen(jobs.size(), false);
    std::atomic<std::size_t> events{0};

    SweepRunner::Options opt;
    opt.threads = 4;
    opt.onEvent = [&](const SweepEvent &ev) {
        ASSERT_LT(ev.index, seen.size());
        EXPECT_FALSE(seen[ev.index]);  // Each job completes exactly once.
        seen[ev.index] = true;
        EXPECT_EQ(ev.total, jobs.size());
        EXPECT_EQ(ev.completed, events.fetch_add(1) + 1);
        ASSERT_NE(ev.outcome, nullptr);
        EXPECT_TRUE(ev.outcome->ok);
    };
    SweepRunner(opt).run(jobs);
    EXPECT_EQ(events.load(), jobs.size());
}

TEST(SweepRunner, JobErrorIsCapturedNotFatal)
{
    auto jobs = smallMatrix();
    jobs[1].config.core.clusterWindow = 0;  // Core construction fatals.
    const auto out = SweepRunner().run(jobs);
    EXPECT_FALSE(out[1].ok);
    EXPECT_FALSE(out[1].error.empty());
    // Neighbours are unaffected.
    EXPECT_TRUE(out[0].ok);
    EXPECT_TRUE(out[2].ok);
}

TEST(SweepRunner, EffectiveThreadsRespectsOptionAndJobCount)
{
    SweepRunner::Options opt;
    opt.threads = 3;
    EXPECT_EQ(SweepRunner(opt).effectiveThreads(100), 3u);
    EXPECT_LE(SweepRunner(opt).effectiveThreads(2), 2u);  // Never idle pool.
    opt.threads = 1;
    EXPECT_EQ(SweepRunner(opt).effectiveThreads(100), 1u);
    EXPECT_GE(SweepRunner().effectiveThreads(100), 1u);
}

} // namespace
} // namespace wsrs::runner
