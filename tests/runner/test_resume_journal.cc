/** @file Tests for the crash-resume sweep journal. */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/log.h"
#include "src/runner/resume_journal.h"
#include "src/runner/sweep_report.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/workload/profiles.h"

namespace wsrs::runner {
namespace {

struct TempFile
{
    TempFile()
    {
        path = (std::filesystem::temp_directory_path() /
                ("wsrs_jrn_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++) + ".bin"))
                   .string();
    }
    ~TempFile() { std::remove(path.c_str()); }
    static inline int counter = 0;
    std::string path;
};

std::vector<SweepJob>
smallSweep()
{
    sim::SimConfig base;
    base.warmupUops = 2000;
    base.measureUops = 4000;
    return SweepRunner::crossProduct(
        {workload::findProfile("gzip"), workload::findProfile("swim")},
        {"RR-256", "WSRS-RC-512"}, base);
}

SweepOutcome
fakeOutcome(std::size_t i)
{
    SweepOutcome out;
    out.ok = (i % 3) != 2;
    out.error = out.ok ? "" : "synthetic failure #" + std::to_string(i);
    out.results.benchmark = "bench" + std::to_string(i);
    out.results.machine = "mach" + std::to_string(i);
    out.results.statsJson = "{\"i\": " + std::to_string(i) + "}";
    out.results.ipc = 0.5 + 0.125 * static_cast<double>(i);
    out.results.stats.cycles = 1000 + i;
    out.results.stats.committed = 900 + i;
    out.results.stats.perCluster[1] = 17 * i;
    out.results.stats.issueWidthHist[3] = 23 * i;
    return out;
}

void
expectOutcomeEq(const SweepOutcome &a, const SweepOutcome &b)
{
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.results.benchmark, b.results.benchmark);
    EXPECT_EQ(a.results.machine, b.results.machine);
    EXPECT_EQ(a.results.statsJson, b.results.statsJson);
    EXPECT_EQ(a.results.ipc, b.results.ipc);
    EXPECT_EQ(a.results.stats.cycles, b.results.stats.cycles);
    EXPECT_EQ(a.results.stats.committed, b.results.stats.committed);
    EXPECT_EQ(a.results.stats.perCluster, b.results.stats.perCluster);
    EXPECT_EQ(a.results.stats.issueWidthHist, b.results.stats.issueWidthHist);
}

TEST(ResumeJournal, RecordsReplayOnResume)
{
    TempFile tmp;
    {
        ResumeJournal j(tmp.path, 0xabc, 6, /*resume=*/false);
        EXPECT_FALSE(j.resumed());
        j.record(0, fakeOutcome(0));
        j.record(4, fakeOutcome(4));
        j.record(2, fakeOutcome(2));
    }
    ResumeJournal j(tmp.path, 0xabc, 6, /*resume=*/true);
    EXPECT_TRUE(j.resumed());
    EXPECT_EQ(j.recoveredCount(), 3u);
    EXPECT_TRUE(j.recoveredMask()[0]);
    EXPECT_FALSE(j.recoveredMask()[1]);
    EXPECT_TRUE(j.recoveredMask()[2]);
    EXPECT_TRUE(j.recoveredMask()[4]);
    expectOutcomeEq(j.recovered()[0], fakeOutcome(0));
    expectOutcomeEq(j.recovered()[2], fakeOutcome(2));
    expectOutcomeEq(j.recovered()[4], fakeOutcome(4));
}

TEST(ResumeJournal, WithoutResumeTruncatesExisting)
{
    TempFile tmp;
    {
        ResumeJournal j(tmp.path, 0xabc, 4, false);
        j.record(1, fakeOutcome(1));
    }
    {
        ResumeJournal j(tmp.path, 0xabc, 4, /*resume=*/false);
        EXPECT_EQ(j.recoveredCount(), 0u);
    }
    ResumeJournal j(tmp.path, 0xabc, 4, /*resume=*/true);
    EXPECT_EQ(j.recoveredCount(), 0u);  // prior records were discarded
}

TEST(ResumeJournal, TornTailIsDiscardedIntactPrefixKept)
{
    TempFile tmp;
    {
        ResumeJournal j(tmp.path, 7, 8, false);
        j.record(0, fakeOutcome(0));
        j.record(1, fakeOutcome(1));
        j.record(2, fakeOutcome(2));
    }
    // Chop bytes off the tail, simulating a kill mid-write: whatever
    // prefix of records is intact must replay, the rest rerun.
    const auto fullSize = std::filesystem::file_size(tmp.path);
    std::filesystem::resize_file(tmp.path, fullSize - 5);
    {
        ResumeJournal j(tmp.path, 7, 8, /*resume=*/true);
        EXPECT_EQ(j.recoveredCount(), 2u);
        EXPECT_TRUE(j.recoveredMask()[0]);
        EXPECT_TRUE(j.recoveredMask()[1]);
        EXPECT_FALSE(j.recoveredMask()[2]);
        // Appending after truncation keeps the journal well-formed.
        j.record(2, fakeOutcome(2));
        j.record(3, fakeOutcome(3));
    }
    ResumeJournal j(tmp.path, 7, 8, true);
    EXPECT_EQ(j.recoveredCount(), 4u);
}

TEST(ResumeJournal, CorruptRecordStopsReplay)
{
    TempFile tmp;
    {
        ResumeJournal j(tmp.path, 7, 4, false);
        j.record(0, fakeOutcome(0));
        j.record(1, fakeOutcome(1));
    }
    // Flip a byte inside the first record's payload: its CRC fails, and
    // everything from there on is treated as unusable.
    {
        std::fstream f(tmp.path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(40);
        f.put('\x7f');
    }
    ResumeJournal j(tmp.path, 7, 4, true);
    EXPECT_EQ(j.recoveredCount(), 0u);
}

TEST(ResumeJournal, RefusesDifferentSweep)
{
    TempFile tmp;
    { ResumeJournal j(tmp.path, 1, 4, false); }
    EXPECT_THROW(ResumeJournal(tmp.path, 2, 4, true), FatalError);
    EXPECT_THROW(ResumeJournal(tmp.path, 1, 5, true), FatalError);
    ResumeJournal ok(tmp.path, 1, 4, true);  // matching identity resumes
}

TEST(ResumeJournal, SweepKeyCoversJobsAndConfigs)
{
    const auto jobs = smallSweep();
    const std::uint64_t k = sweepKeyHash(jobs);
    auto fewer = jobs;
    fewer.pop_back();
    EXPECT_NE(sweepKeyHash(fewer), k);
    auto reordered = jobs;
    std::swap(reordered[0], reordered[1]);
    EXPECT_NE(sweepKeyHash(reordered), k);
    auto tweaked = jobs;
    tweaked[2].config.measureUops += 1;
    EXPECT_NE(sweepKeyHash(tweaked), k);
}

TEST(SweepRunnerResume, ResumedSweepMatchesCleanRun)
{
    const auto jobs = smallSweep();

    SweepRunner::Options plain;
    plain.threads = 2;
    const auto clean = SweepRunner(plain).run(jobs);

    // First pass journals everything; the "crashed" second pass resumes
    // and must re-deliver identical outcomes without rerunning.
    TempFile tmp;
    SweepRunner::Options journaled = plain;
    journaled.journalPath = tmp.path;
    SweepRunner first(journaled);
    const auto firstOut = first.run(jobs);
    EXPECT_FALSE(first.telemetry().resumed);
    EXPECT_EQ(first.telemetry().skippedRuns, 0u);

    SweepRunner::Options resume = journaled;
    resume.resume = true;
    SweepRunner second(resume);
    std::size_t events = 0;
    resume.onEvent = [&](const SweepEvent &) { ++events; };
    SweepRunner secondWithEvents(resume);
    const auto secondOut = secondWithEvents.run(jobs);
    EXPECT_TRUE(secondWithEvents.telemetry().resumed);
    EXPECT_EQ(secondWithEvents.telemetry().skippedRuns, jobs.size());
    EXPECT_EQ(events, jobs.size());

    ASSERT_EQ(secondOut.size(), clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i) {
        EXPECT_EQ(secondOut[i].ok, clean[i].ok);
        EXPECT_EQ(secondOut[i].results.statsJson, clean[i].results.statsJson)
            << "job " << i;
    }

    // The aggregated reports agree job for job (the resume/ckpt metadata
    // differs by design).
    std::ostringstream a, b;
    writeSweepReport(a, jobs, clean);
    writeSweepReport(b, jobs, secondOut);
    const auto body = [](const std::string &s) {
        return s.substr(0, s.find("\"resume\""));
    };
    EXPECT_EQ(body(a.str()), body(b.str()));
}

TEST(SweepRunnerResume, WarmupReuseProducesDeterministicSweep)
{
    const auto jobs = smallSweep();
    SweepRunner::Options opt;
    opt.threads = 2;
    opt.reuseWarmup = true;
    SweepRunner r1(opt), r2(opt);
    const auto a = r1.run(jobs);
    const auto b = r2.run(jobs);
    EXPECT_TRUE(r1.telemetry().warmupReuse);
    // 2 benchmarks -> 2 builds; the other jobs hit the cache.
    EXPECT_EQ(r1.telemetry().warmupMisses, 2u);
    EXPECT_EQ(r1.telemetry().warmupHits, jobs.size() - 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].ok) << a[i].error;
        EXPECT_EQ(a[i].results.statsJson, b[i].results.statsJson)
            << "job " << i;
    }
}

} // namespace
} // namespace wsrs::runner
