/** @file Tests for op classes and the micro-op record. */
#include <gtest/gtest.h>

#include "src/isa/micro_op.h"
#include "src/isa/op_class.h"

namespace wsrs::isa {
namespace {

TEST(OpClass, Table2Latencies)
{
    // Paper Table 2: loads 2, ALU 1, mul/div 15, fadd/fmul 4,
    // fdiv/fsqrt 15.
    EXPECT_EQ(opLatency(OpClass::Load), 2u);
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opLatency(OpClass::IntMul), 15u);
    EXPECT_EQ(opLatency(OpClass::IntDiv), 15u);
    EXPECT_EQ(opLatency(OpClass::FpAdd), 4u);
    EXPECT_EQ(opLatency(OpClass::FpMul), 4u);
    EXPECT_EQ(opLatency(OpClass::FpDiv), 15u);
    EXPECT_EQ(opLatency(OpClass::FpSqrt), 15u);
}

TEST(OpClass, UnitClassificationIsPartition)
{
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        const OpClass c = static_cast<OpClass>(i);
        const int kinds = int(isMemOp(c)) + int(isFpOp(c)) + int(isIntOp(c));
        EXPECT_EQ(kinds, 1) << opClassName(c);
    }
}

TEST(OpClass, ComplexIntOpsAreIntOps)
{
    EXPECT_TRUE(isComplexIntOp(OpClass::IntMul));
    EXPECT_TRUE(isComplexIntOp(OpClass::IntDiv));
    EXPECT_FALSE(isComplexIntOp(OpClass::IntAlu));
    EXPECT_TRUE(isIntOp(OpClass::IntMul));
    EXPECT_TRUE(isIntOp(OpClass::Branch));
}

TEST(OpClass, NamesAreDistinct)
{
    for (std::size_t i = 0; i < kNumOpClasses; ++i)
        for (std::size_t j = i + 1; j < kNumOpClasses; ++j)
            EXPECT_NE(opClassName(static_cast<OpClass>(i)),
                      opClassName(static_cast<OpClass>(j)));
}

TEST(MicroOp, ArityQueries)
{
    MicroOp op;
    EXPECT_TRUE(op.isNoadic());
    EXPECT_EQ(op.numSrcs(), 0u);
    op.src1 = 3;
    EXPECT_TRUE(op.isMonadic());
    op.src2 = 4;
    EXPECT_TRUE(op.isDyadic());
    EXPECT_EQ(op.numSrcs(), 2u);
    EXPECT_FALSE(op.hasDest());
    op.dst = 9;
    EXPECT_TRUE(op.hasDest());
}

TEST(MicroOp, KindQueries)
{
    MicroOp op;
    op.op = OpClass::Load;
    EXPECT_TRUE(op.isLoad());
    EXPECT_FALSE(op.isStore());
    op.op = OpClass::Store;
    EXPECT_TRUE(op.isStore());
    op.op = OpClass::Branch;
    EXPECT_TRUE(op.isBranch());
    EXPECT_EQ(op.latency(), 1u);
}

TEST(MicroOp, EightyLogicalRegisters)
{
    // Sparc with 4 resident register windows (paper 5.1.1).
    EXPECT_EQ(kNumLogRegs, 80u);
}

} // namespace
} // namespace wsrs::isa
