/** @file Tests for the instruction encoding and decode-time expansion. */
#include <gtest/gtest.h>

#include "src/common/log.h"
#include "src/isa/encoding.h"

namespace wsrs::isa {
namespace {

TEST(Encoding, RoundTripEveryOpClass)
{
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        StaticInst inst;
        inst.op = static_cast<OpClass>(i);
        inst.src1 = 3;
        if (inst.op != OpClass::Store)
            inst.dst = 7;
        const StaticInst back = decode(encode(inst));
        EXPECT_EQ(back.op, inst.op);
        EXPECT_EQ(back.dst, inst.dst);
        EXPECT_EQ(back.src1, inst.src1);
        EXPECT_EQ(back.src2, inst.src2);
        EXPECT_FALSE(back.indexed);
    }
}

TEST(Encoding, RoundTripAllFields)
{
    StaticInst inst;
    inst.op = OpClass::IntAlu;
    inst.dst = 79;
    inst.src1 = 0;
    inst.src2 = 42;
    inst.commutative = true;
    const StaticInst back = decode(encode(inst));
    EXPECT_EQ(back.dst, 79);
    EXPECT_EQ(back.src1, 0);
    EXPECT_EQ(back.src2, 42);
    EXPECT_TRUE(back.commutative);
}

TEST(Encoding, IndexedFormsRoundTrip)
{
    StaticInst st;
    st.op = OpClass::Store;
    st.indexed = true;
    st.src1 = 5;
    st.src2 = 6;
    st.dst = 7;  // data register
    const StaticInst back = decode(encode(st));
    EXPECT_TRUE(back.indexed);
    EXPECT_EQ(back.op, OpClass::Store);

    StaticInst ld;
    ld.op = OpClass::Load;
    ld.indexed = true;
    ld.src1 = 5;
    ld.src2 = 6;
    ld.dst = 8;
    EXPECT_TRUE(decode(encode(ld)).indexed);
}

TEST(Encoding, RejectsIllegalForms)
{
    {
        StaticInst inst;
        inst.op = OpClass::IntAlu;
        inst.indexed = true;  // only memory ops have an indexed form
        EXPECT_THROW(encode(inst), FatalError);
    }
    {
        StaticInst inst;
        inst.op = OpClass::Store;
        inst.dst = 3;  // plain stores have no result
        EXPECT_THROW(encode(inst), FatalError);
    }
    {
        StaticInst inst;
        inst.op = OpClass::IntAlu;
        inst.commutative = true;  // needs two sources
        inst.src1 = 1;
        EXPECT_THROW(encode(inst), FatalError);
    }
}

TEST(Encoding, RejectsMalformedWords)
{
    EXPECT_THROW(decode(0x00000001u), FatalError);  // reserved bits
    EXPECT_THROW(decode(0xffffffe0u), FatalError);  // bad opcode
    // dst field = 100 (> 79, != sentinel).
    StaticInst ok;
    ok.op = OpClass::IntAlu;
    ok.dst = 5;
    InstWord w = encode(ok);
    w = (w & ~(0x7fu << 20)) | (100u << 20);
    EXPECT_THROW(decode(w), FatalError);
}

TEST(Expand, PlainInstructionIsOneMicroOp)
{
    StaticInst inst;
    inst.op = OpClass::FpMul;
    inst.src1 = 1;
    inst.src2 = 2;
    inst.dst = 3;
    inst.commutative = true;
    MicroOp uops[2];
    ASSERT_EQ(expand(inst, 0x400, uops), 1u);
    EXPECT_EQ(uops[0].op, OpClass::FpMul);
    EXPECT_EQ(uops[0].pc, 0x400u);
    EXPECT_TRUE(uops[0].commutative);
    EXPECT_EQ(uops[0].numSrcs(), 2u);
}

TEST(Expand, IndexedStoreSplitsIntoAgenPlusStore)
{
    // Section 5.1.1: every micro-op entering the core has at most two
    // register sources.
    StaticInst inst;
    inst.op = OpClass::Store;
    inst.indexed = true;
    inst.src1 = 10;  // base
    inst.src2 = 11;  // index
    inst.dst = 12;   // data
    MicroOp uops[2];
    ASSERT_EQ(expand(inst, 0x800, uops), 2u);

    const MicroOp &ag = uops[0];
    EXPECT_EQ(ag.op, OpClass::IntAlu);
    EXPECT_EQ(ag.src1, 10);
    EXPECT_EQ(ag.src2, 11);
    EXPECT_EQ(ag.dst, kDecodeTempReg);

    const MicroOp &st = uops[1];
    EXPECT_EQ(st.op, OpClass::Store);
    EXPECT_EQ(st.src1, kDecodeTempReg);  // consumes the agen result
    EXPECT_EQ(st.src2, 12);
    EXPECT_FALSE(st.hasDest());
    EXPECT_NE(st.pc, ag.pc);

    // Both micro-ops satisfy the two-source invariant.
    EXPECT_LE(ag.numSrcs(), 2u);
    EXPECT_LE(st.numSrcs(), 2u);
}

TEST(Expand, IndexedLoadSplitsToo)
{
    StaticInst inst;
    inst.op = OpClass::Load;
    inst.indexed = true;
    inst.src1 = 20;
    inst.src2 = 21;
    inst.dst = 22;
    MicroOp uops[2];
    ASSERT_EQ(expand(inst, 0xc00, uops), 2u);
    EXPECT_EQ(uops[0].dst, kDecodeTempReg);
    EXPECT_EQ(uops[1].src1, kDecodeTempReg);
    EXPECT_EQ(uops[1].dst, 22);
}

} // namespace
} // namespace wsrs::isa
