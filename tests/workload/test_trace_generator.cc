/** @file Unit and property tests for the synthetic trace generator. */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/log.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

namespace wsrs::workload {
namespace {

BenchmarkProfile
testProfile()
{
    BenchmarkProfile p;
    p.name = "test";
    p.fracLoad = 0.25;
    p.fracStore = 0.10;
    p.fracBranch = 0.12;
    p.workingSetBytes = 64 << 10;
    return p;
}

TEST(TraceGenerator, DeterministicForSameSeed)
{
    const BenchmarkProfile p = testProfile();
    TraceGenerator a(p, 42), b(p, 42);
    for (int i = 0; i < 5000; ++i) {
        const isa::MicroOp x = a.next();
        const isa::MicroOp y = b.next();
        EXPECT_EQ(x.seq, y.seq);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.op, y.op);
        EXPECT_EQ(x.src1, y.src1);
        EXPECT_EQ(x.src2, y.src2);
        EXPECT_EQ(x.dst, y.dst);
        EXPECT_EQ(x.taken, y.taken);
        EXPECT_EQ(x.effAddr, y.effAddr);
    }
}

TEST(TraceGenerator, DifferentSeedsDiverge)
{
    const BenchmarkProfile p = testProfile();
    TraceGenerator a(p, 1), b(p, 2);
    int diff = 0;
    for (int i = 0; i < 2000; ++i)
        diff += a.next().effAddr != b.next().effAddr;
    EXPECT_GT(diff, 0);
}

TEST(TraceGenerator, SequenceNumbersAreConsecutive)
{
    TraceGenerator gen(testProfile());
    for (SeqNum i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.next().seq, i);
}

TEST(TraceGenerator, DynamicMixTracksProfile)
{
    BenchmarkProfile p = testProfile();
    TraceGenerator gen(p);
    std::map<isa::OpClass, unsigned> count;
    const unsigned n = 200000;
    for (unsigned i = 0; i < n; ++i)
        ++count[gen.next().op];

    const double loads = double(count[isa::OpClass::Load]) / n;
    const double stores = double(count[isa::OpClass::Store]) / n;
    const double branches = double(count[isa::OpClass::Branch]) / n;
    EXPECT_NEAR(loads, p.fracLoad, 0.05);
    EXPECT_NEAR(stores, p.fracStore, 0.04);
    EXPECT_NEAR(branches, p.fracBranch, 0.05);
}

TEST(TraceGenerator, BranchTerminatesEveryBlock)
{
    // Every static op must be reachable and each block ends in a branch:
    // walking the program, the gap between branch sites stays bounded.
    TraceGenerator gen(testProfile());
    unsigned since_branch = 0;
    for (int i = 0; i < 50000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.isBranch()) {
            since_branch = 0;
        } else {
            ++since_branch;
            ASSERT_LT(since_branch, 200u);
        }
    }
}

TEST(TraceGenerator, BranchTargetsAreValidProgramPcs)
{
    TraceGenerator gen(testProfile());
    std::set<Addr> pcs;
    for (const StaticOp &s : gen.program())
        pcs.insert(s.pc);
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.isBranch())
            EXPECT_TRUE(pcs.count(op.target)) << "target " << op.target;
    }
}

TEST(TraceGenerator, TakenBranchRedirectsPcStream)
{
    TraceGenerator gen(testProfile());
    isa::MicroOp prev = gen.next();
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp cur = gen.next();
        if (prev.isBranch() && prev.taken)
            EXPECT_EQ(cur.pc, prev.target);
        prev = cur;
    }
}

TEST(TraceGenerator, MemoryOpsCarryAlignedAddresses)
{
    TraceGenerator gen(testProfile());
    unsigned mem_ops = 0;
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.isLoad() || op.isStore()) {
            ++mem_ops;
            EXPECT_EQ(op.effAddr % 8, 0u);
            EXPECT_NE(op.effAddr, 0u);
        }
    }
    EXPECT_GT(mem_ops, 1000u);
}

TEST(TraceGenerator, SourcesAndDestsAreValidRegisters)
{
    TraceGenerator gen(testProfile());
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.src1 != kNoLogReg)
            EXPECT_LT(op.src1, isa::kNumLogRegs);
        if (op.src2 != kNoLogReg)
            EXPECT_LT(op.src2, isa::kNumLogRegs);
        if (op.dst != kNoLogReg)
            EXPECT_LT(op.dst, isa::kNumLogRegs);
        // src2 implies src1 (operand packing convention).
        if (op.src2 != kNoLogReg)
            EXPECT_NE(op.src1, kNoLogReg);
    }
}

TEST(TraceGenerator, StoresAreDyadicWithoutDest)
{
    TraceGenerator gen(testProfile());
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.isStore()) {
            EXPECT_FALSE(op.hasDest());
            EXPECT_NE(op.src1, kNoLogReg);
            EXPECT_NE(op.src2, kNoLogReg);
        }
        if (op.isBranch())
            EXPECT_FALSE(op.hasDest());
        if (op.isLoad())
            EXPECT_TRUE(op.hasDest());
    }
}

TEST(TraceGenerator, CommutativeOnlyOnDyadic)
{
    TraceGenerator gen(testProfile());
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.commutative)
            EXPECT_TRUE(op.isDyadic());
    }
}

TEST(TraceGenerator, LoopBranchesLoopFiniteTimes)
{
    // Any backward (loop) branch must eventually fall through, otherwise
    // the walk would never leave a segment.
    BenchmarkProfile p = testProfile();
    p.meanTripCount = 5;
    TraceGenerator gen(p);
    std::map<Addr, unsigned> consecutive_taken;
    for (int i = 0; i < 50000; ++i) {
        const isa::MicroOp op = gen.next();
        if (!op.isBranch())
            continue;
        if (op.target < op.pc) {  // backward
            if (op.taken) {
                ASSERT_LT(++consecutive_taken[op.pc], 100u);
            } else {
                consecutive_taken[op.pc] = 0;
            }
        }
    }
}

TEST(TraceGenerator, PointerChasingLinksLoadsToLoads)
{
    BenchmarkProfile p = testProfile();
    p.pointerChaseFrac = 0.9;
    p.addrInvariantFrac = 0.0;
    TraceGenerator gen(p);
    // Count loads whose address register was last written by a load.
    std::array<bool, isa::kNumLogRegs> load_wrote{};
    unsigned chased = 0, loads = 0;
    for (int i = 0; i < 50000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.isLoad()) {
            ++loads;
            if (op.src1 != kNoLogReg && load_wrote[op.src1])
                ++chased;
        }
        if (op.hasDest())
            load_wrote[op.dst] = op.isLoad();
    }
    EXPECT_GT(double(chased) / loads, 0.4);
}

TEST(TraceGenerator, InvalidProfilesAreRejected)
{
    {
        BenchmarkProfile p = testProfile();
        p.fracLoad = 0.9;
        p.fracStore = 0.9;  // mix > 1
        EXPECT_THROW(TraceGenerator g(p), FatalError);
    }
    {
        BenchmarkProfile p = testProfile();
        p.fracBranch = 0.0;
        EXPECT_THROW(TraceGenerator g(p), FatalError);
    }
    {
        BenchmarkProfile p = testProfile();
        p.numInvariantRegs = isa::kNumLogRegs;
        EXPECT_THROW(TraceGenerator g(p), FatalError);
    }
    {
        BenchmarkProfile p = testProfile();
        p.workingSetBytes = 16;
        EXPECT_THROW(TraceGenerator g(p), FatalError);
    }
    {
        BenchmarkProfile p = testProfile();
        p.numSegments = 0;
        EXPECT_THROW(TraceGenerator g(p), FatalError);
    }
}

/** Property sweep: arity fractions roughly honoured across profiles. */
class AritySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(AritySweep, MonadicFractionTracksKnob)
{
    BenchmarkProfile p = testProfile();
    p.fracMonadic = GetParam();
    p.fracNoadic = 0.05;
    TraceGenerator gen(p);
    unsigned monadic = 0, alu = 0;
    for (int i = 0; i < 100000; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.op != isa::OpClass::IntAlu)
            continue;
        ++alu;
        monadic += op.isMonadic();
    }
    ASSERT_GT(alu, 10000u);
    EXPECT_NEAR(double(monadic) / alu, GetParam(), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Fractions, AritySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));

/** All 12 registered profiles construct and stream. */
class AllProfiles : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllProfiles, GeneratesCleanStream)
{
    const BenchmarkProfile &p = findProfile(GetParam());
    TraceGenerator gen(p);
    unsigned branches = 0;
    for (int i = 0; i < 20000; ++i) {
        const isa::MicroOp op = gen.next();
        branches += op.isBranch();
        if (op.src2 != kNoLogReg)
            ASSERT_NE(op.src1, kNoLogReg);
    }
    EXPECT_GT(branches, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Spec2000, AllProfiles,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "wupwise",
                      "swim", "mgrid", "applu", "galgel", "equake",
                      "facerec"));

} // namespace
} // namespace wsrs::workload
