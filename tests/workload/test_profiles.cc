/** @file Tests for the SPEC CPU2000 stand-in profile registry. */
#include <gtest/gtest.h>

#include <set>

#include "src/common/log.h"
#include "src/workload/profiles.h"

namespace wsrs::workload {
namespace {

TEST(Profiles, TwelveBenchmarksRegistered)
{
    EXPECT_EQ(allProfiles().size(), 12u);
    EXPECT_EQ(integerProfiles().size(), 5u);
    EXPECT_EQ(floatProfiles().size(), 7u);
}

TEST(Profiles, PaperOrderPreserved)
{
    const std::vector<std::string> expected = {
        "gzip", "vpr",   "gcc",   "mcf",    "crafty", "wupwise",
        "swim", "mgrid", "applu", "galgel", "equake", "facerec"};
    const auto &all = allProfiles();
    ASSERT_EQ(all.size(), expected.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].name, expected[i]);
}

TEST(Profiles, NamesAreUniqueAndSeedsDistinct)
{
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const auto &p : allProfiles()) {
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
        EXPECT_TRUE(seeds.insert(p.seed).second) << p.name;
    }
}

TEST(Profiles, FindProfileMatchesRegistry)
{
    EXPECT_EQ(findProfile("mcf").name, "mcf");
    EXPECT_TRUE(findProfile("swim").floatingPoint);
    EXPECT_FALSE(findProfile("gzip").floatingPoint);
    EXPECT_THROW(findProfile("notabenchmark"), FatalError);
}

TEST(Profiles, FloatingPointProfilesHaveFpMix)
{
    for (const auto &p : floatProfiles())
        EXPECT_GT(p.fracFpAdd + p.fracFpMul, 0.2) << p.name;
    for (const auto &p : integerProfiles())
        EXPECT_LT(p.fracFpAdd + p.fracFpMul, 0.1) << p.name;
}

TEST(Profiles, McfIsTheMemoryBoundOutlier)
{
    const BenchmarkProfile &mcf = findProfile("mcf");
    for (const auto &p : allProfiles()) {
        if (p.name == "mcf")
            continue;
        EXPECT_GE(mcf.workingSetBytes, p.workingSetBytes) << p.name;
        
        EXPECT_LE(mcf.strideFrac, p.strideFrac) << p.name;
    }
}

TEST(Profiles, FpCodesHaveStrongerInvariantReuse)
{
    // The paper's unbalancing argument: FP codes keep invariant operands
    // in registers more aggressively than integer codes.
    double int_avg = 0, fp_avg = 0;
    for (const auto &p : integerProfiles())
        int_avg += p.invariantFrac;
    for (const auto &p : floatProfiles())
        fp_avg += p.invariantFrac;
    int_avg /= integerProfiles().size();
    fp_avg /= floatProfiles().size();
    EXPECT_GT(fp_avg, int_avg);
}

TEST(Profiles, AllSatisfyGeneratorValidation)
{
    for (const auto &p : allProfiles()) {
        const double mix = p.fracLoad + p.fracStore + p.fracBranch +
                           p.fracIntMul + p.fracIntDiv + p.fracFpAdd +
                           p.fracFpMul + p.fracFpDiv + p.fracFpSqrt;
        EXPECT_LE(mix, 1.0) << p.name;
        EXPECT_GT(p.fracBranch, 0.0) << p.name;
        EXPECT_LE(p.fracNoadic + p.fracMonadic, 1.0) << p.name;
        EXPECT_GE(p.workingSetBytes, 4096u) << p.name;
    }
}

} // namespace
} // namespace wsrs::workload
