/** @file Tests for the in-order oracle and the dataflow-value semantics. */
#include <gtest/gtest.h>

#include "src/workload/dataflow.h"
#include "src/workload/oracle.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"

namespace wsrs::workload {
namespace {

isa::MicroOp
aluOp(LogReg s1, LogReg s2, LogReg d, bool commutative = false)
{
    isa::MicroOp op;
    op.op = isa::OpClass::IntAlu;
    op.src1 = s1;
    op.src2 = s2;
    op.dst = d;
    op.commutative = commutative;
    op.pc = 0x1000;
    return op;
}

TEST(Dataflow, InitialRegisterValuesAreDistinct)
{
    for (unsigned a = 0; a < isa::kNumLogRegs; ++a)
        for (unsigned b = a + 1; b < isa::kNumLogRegs; ++b)
            EXPECT_NE(initRegValue(LogReg(a)), initRegValue(LogReg(b)));
}

TEST(Dataflow, CommutativeValueIsOrderInsensitive)
{
    isa::MicroOp op = aluOp(0, 1, 2, true);
    EXPECT_EQ(execValue(op, 111, 222), execValue(op, 222, 111));
}

TEST(Dataflow, NonCommutativeValueIsOrderSensitive)
{
    isa::MicroOp op = aluOp(0, 1, 2, false);
    EXPECT_NE(execValue(op, 111, 222), execValue(op, 222, 111));
}

TEST(Dataflow, ValueDependsOnPcAndClass)
{
    isa::MicroOp a = aluOp(0, 1, 2);
    isa::MicroOp b = a;
    b.pc = 0x2000;
    EXPECT_NE(execValue(a, 1, 2), execValue(b, 1, 2));
    isa::MicroOp c = a;
    c.op = isa::OpClass::FpAdd;
    EXPECT_NE(execValue(a, 1, 2), execValue(c, 1, 2));
}

TEST(Dataflow, LoadValueDependsOnMemoryContent)
{
    isa::MicroOp ld;
    ld.op = isa::OpClass::Load;
    ld.src1 = 0;
    ld.dst = 1;
    ld.pc = 0x3000;
    ld.effAddr = 0x8000;
    EXPECT_NE(execValue(ld, 1, 0, 0xaaaa), execValue(ld, 1, 0, 0xbbbb));
    // And not on the address register's value.
    EXPECT_EQ(execValue(ld, 1, 0, 0xaaaa), execValue(ld, 2, 0, 0xaaaa));
}

TEST(Oracle, RegisterWriteReadRoundTrip)
{
    OracleExecutor oracle;
    const isa::MicroOp op = aluOp(3, 4, 7);
    const std::uint64_t v = oracle.execute(op);
    EXPECT_EQ(oracle.reg(7), v);
    EXPECT_NE(v, 0u);
}

TEST(Oracle, StoreThenLoadReturnsStoredValue)
{
    OracleExecutor oracle;
    isa::MicroOp st;
    st.op = isa::OpClass::Store;
    st.src1 = 0;
    st.src2 = 1;
    st.pc = 0x10;
    st.effAddr = 0xdead0;
    oracle.execute(st);

    isa::MicroOp ld;
    ld.op = isa::OpClass::Load;
    ld.src1 = 2;
    ld.dst = 5;
    ld.pc = 0x14;
    ld.effAddr = 0xdead0;
    const std::uint64_t v = oracle.execute(ld);
    EXPECT_EQ(v, execValue(ld, oracle.reg(2), 0,
                           storeValue(st, initRegValue(0),
                                      initRegValue(1))));
}

TEST(Oracle, UntouchedMemoryHasInitPattern)
{
    OracleExecutor oracle;
    EXPECT_EQ(oracle.loadMem(0x1234560), memInitValue(0x1234560));
    EXPECT_NE(oracle.loadMem(0x1234560), oracle.loadMem(0x1234568));
}

TEST(Oracle, DependencyChainPropagates)
{
    OracleExecutor a, b;
    // Two identical executions produce identical state.
    for (int i = 0; i < 100; ++i) {
        isa::MicroOp op = aluOp(LogReg(i % 8), LogReg((i + 3) % 8),
                                LogReg((i + 5) % 8));
        op.pc = 0x100 + 4 * i;
        EXPECT_EQ(a.execute(op), b.execute(op));
    }
    // Perturbing one step diverges the chain.
    OracleExecutor c;
    for (int i = 0; i < 100; ++i) {
        isa::MicroOp op = aluOp(LogReg(i % 8), LogReg((i + 3) % 8),
                                LogReg((i + 5) % 8));
        op.pc = 0x100 + 4 * i + (i == 50 ? 4000 : 0);
        c.execute(op);
    }
    EXPECT_NE(a.reg(5), c.reg(5));
}

TEST(Oracle, TwoOraclesOverSameTraceAgree)
{
    const BenchmarkProfile &p = findProfile("gzip");
    TraceGenerator g1(p, 9), g2(p, 9);
    OracleExecutor o1, o2;
    for (int i = 0; i < 20000; ++i)
        EXPECT_EQ(o1.execute(g1.next()), o2.execute(g2.next()));
}

} // namespace
} // namespace wsrs::workload
