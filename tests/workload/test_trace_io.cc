/** @file Tests for the binary trace file format. */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/bpred/two_bc_gskew.h"
#include "src/common/log.h"
#include "src/core/core.h"
#include "src/sim/presets.h"
#include "src/sim/simulator.h"
#include "src/workload/profiles.h"
#include "src/workload/trace_generator.h"
#include "src/workload/trace_io.h"

namespace wsrs::workload {
namespace {

/** Temporary file deleted on scope exit. */
struct TempFile
{
    TempFile()
    {
        path = (std::filesystem::temp_directory_path() /
                ("wsrs_trace_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++) + ".trc"))
                   .string();
    }
    ~TempFile() { std::remove(path.c_str()); }
    static inline int counter = 0;
    std::string path;
};

TEST(TraceIo, RoundTripPreservesEveryField)
{
    TempFile tmp;
    TraceGenerator gen(findProfile("vpr"), 3);
    std::vector<isa::MicroOp> original;
    {
        TraceWriter writer(tmp.path);
        for (int i = 0; i < 5000; ++i) {
            const isa::MicroOp op = gen.next();
            original.push_back(op);
            writer.append(op);
        }
        EXPECT_EQ(writer.written(), 5000u);
    }

    TraceReader reader(tmp.path);
    EXPECT_EQ(reader.records(), 5000u);
    for (const isa::MicroOp &want : original) {
        const isa::MicroOp got = reader.next();
        EXPECT_EQ(got.seq, want.seq);
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.src1, want.src1);
        EXPECT_EQ(got.src2, want.src2);
        EXPECT_EQ(got.dst, want.dst);
        EXPECT_EQ(got.commutative, want.commutative);
        EXPECT_EQ(got.taken, want.taken);
        EXPECT_EQ(got.target, want.target);
        EXPECT_EQ(got.effAddr, want.effAddr);
    }
}

TEST(TraceIo, WrapRestartsAtBeginningWithFreshSeqNumbers)
{
    TempFile tmp;
    TraceGenerator gen(findProfile("gzip"));
    isa::MicroOp first;
    {
        TraceWriter writer(tmp.path);
        for (int i = 0; i < 100; ++i) {
            const isa::MicroOp op = gen.next();
            if (i == 0)
                first = op;
            writer.append(op);
        }
    }
    TraceReader reader(tmp.path, /*wrap=*/true);
    for (int i = 0; i < 100; ++i)
        reader.next();
    const isa::MicroOp again = reader.next();
    EXPECT_EQ(again.pc, first.pc);
    EXPECT_EQ(again.seq, 100u);  // sequence numbers keep increasing
}

TEST(TraceIo, NoWrapFailsAtEof)
{
    TempFile tmp;
    {
        TraceWriter writer(tmp.path);
        TraceGenerator gen(findProfile("gzip"));
        for (int i = 0; i < 10; ++i)
            writer.append(gen.next());
    }
    TraceReader reader(tmp.path, /*wrap=*/false);
    for (int i = 0; i < 10; ++i)
        reader.next();
    EXPECT_THROW(reader.next(), FatalError);
}

TEST(TraceIo, RejectsMissingAndCorruptFiles)
{
    EXPECT_THROW(TraceReader r("/nonexistent/file.trc"), FatalError);

    TempFile tmp;
    {
        std::ofstream out(tmp.path, std::ios::binary);
        out << "not a trace file at all, definitely";
    }
    EXPECT_THROW(TraceReader r(tmp.path), FatalError);
}

/** Build a valid 5-record trace file at @p path and return its bytes. */
std::string
writeSmallTrace(const std::string &path)
{
    TraceGenerator gen(findProfile("gzip"));
    TraceWriter writer(path);
    for (int i = 0; i < 5; ++i)
        writer.append(gen.next());
    writer.close();
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

std::string
messageFrom(const std::string &path)
{
    try {
        TraceReader r(path);
    } catch (const FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected TraceReader to reject '" << path << "'";
    return "";
}

TEST(TraceIo, TruncatedHeaderReportsByteCounts)
{
    TempFile tmp;
    const std::string bytes = writeSmallTrace(tmp.path);
    {
        std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, 10);
    }
    const std::string msg = messageFrom(tmp.path);
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("10 bytes"), std::string::npos) << msg;
}

TEST(TraceIo, TruncatedRecordRegionReportsOffsets)
{
    // Header (16 bytes) declares 5 records (5*30 bytes): the record region
    // should end at byte offset 166. Chop the file at byte 100.
    TempFile tmp;
    const std::string bytes = writeSmallTrace(tmp.path);
    ASSERT_EQ(bytes.size(), 166u);
    {
        std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, 100);
    }
    const std::string msg = messageFrom(tmp.path);
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("declares 5 records"), std::string::npos) << msg;
    EXPECT_NE(msg.find("166"), std::string::npos) << msg;
    EXPECT_NE(msg.find("100"), std::string::npos) << msg;
}

TEST(TraceIo, TrailingGarbageReportsWhereRecordsEnd)
{
    TempFile tmp;
    writeSmallTrace(tmp.path);
    {
        std::ofstream out(tmp.path, std::ios::binary | std::ios::app);
        out << "garbage";
    }
    const std::string msg = messageFrom(tmp.path);
    EXPECT_NE(msg.find("7 trailing bytes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("166"), std::string::npos) << msg;
}

TEST(TraceIo, InvalidOpClassReportsExactByteOffset)
{
    // Corrupt the op-class byte of record 3: header + 3 records + 24.
    TempFile tmp;
    std::string bytes = writeSmallTrace(tmp.path);
    const std::size_t off = 16 + 3 * 30 + 24;
    bytes[off] = static_cast<char>(0xee);
    {
        std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    TraceReader reader(tmp.path);
    for (int i = 0; i < 3; ++i)
        (void)reader.next();
    try {
        (void)reader.next();
        FAIL() << "expected FatalError for invalid op class";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("invalid op class"), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(off)), std::string::npos) << msg;
    }
}

TEST(TraceIo, RecordedTraceDrivesTheCoreIdentically)
{
    // Simulating from a recorded trace must give cycle-identical results
    // to simulating from the live generator.
    TempFile tmp;
    const BenchmarkProfile &profile = findProfile("gcc");
    {
        TraceGenerator gen(profile, 0);
        TraceWriter writer(tmp.path);
        for (int i = 0; i < 80000; ++i)
            writer.append(gen.next());
    }

    auto simulate = [&](workload::MicroOpSource &src) {
        bpred::TwoBcGskew bp;
        StatGroup stats("t");
        memory::MemoryHierarchy mem(memory::HierarchyParams{}, stats);
        core::CoreParams params = sim::findPreset("WSRS-RC-512");
        params.verifyDataflow = true;
        core::Core machine(params, src, bp, mem);
        machine.run(50000);
        EXPECT_EQ(machine.stats().valueMismatches, 0u);
        return machine.stats().cycles;
    };

    TraceGenerator live(profile, 0);
    TraceReader recorded(tmp.path);
    EXPECT_EQ(simulate(live), simulate(recorded));
}

} // namespace
} // namespace wsrs::workload
