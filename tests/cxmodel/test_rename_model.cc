/** @file Tests for the renaming-hardware complexity model. */
#include <gtest/gtest.h>

#include "src/cxmodel/rename_model.h"
#include "src/sim/presets.h"

namespace wsrs::cxmodel {
namespace {

TEST(RenameModel, ConventionalBaseline)
{
    const RenameComplexity r =
        analyzeRename(sim::presetConventional(256));
    EXPECT_EQ(r.mapReadPorts, 16u);   // 2 sources x 8-wide rename.
    EXPECT_EQ(r.mapWritePorts, 8u);
    EXPECT_EQ(r.freeLists, 1u);
    EXPECT_EQ(r.freeListPopsPerCycle, 8u);
    EXPECT_EQ(r.recyclerEntries, 0u);
    EXPECT_EQ(r.extraStages, 0u);
    EXPECT_EQ(r.subsetTrackerBits, 0u);
}

TEST(RenameModel, WriteSpecAddsFreeListsNotStages)
{
    // Paper 2.4: with static allocation neither implementation adds
    // stages, but one free list per subset appears.
    const RenameComplexity r = analyzeRename(sim::presetWriteSpec(512));
    EXPECT_EQ(r.freeLists, 4u);
    EXPECT_EQ(r.extraStages, 0u);
}

TEST(RenameModel, WsrsStageCountsMatchSection32)
{
    // 1 extra stage with Impl-1, 3 with Impl-2.
    EXPECT_EQ(analyzeRename(sim::presetWsrsRc(
                                512, core::RenameImpl::OverPickRecycle))
                  .extraStages,
              1u);
    EXPECT_EQ(analyzeRename(
                  sim::presetWsrsRc(512, core::RenameImpl::ExactCount))
                  .extraStages,
              3u);
}

TEST(RenameModel, Impl1PaysPopsAndRecycler)
{
    const RenameComplexity impl1 = analyzeRename(
        sim::presetWsrsRc(512, core::RenameImpl::OverPickRecycle));
    const RenameComplexity impl2 = analyzeRename(
        sim::presetWsrsRc(512, core::RenameImpl::ExactCount));
    // Impl-1 pops W from every list; Impl-2 exactly W.
    EXPECT_EQ(impl1.freeListPopsPerCycle, 32u);
    EXPECT_EQ(impl2.freeListPopsPerCycle, 8u);
    EXPECT_GT(impl1.recyclerEntries, 0u);
    EXPECT_EQ(impl2.recyclerEntries, 0u);
}

TEST(RenameModel, WsrsTracksSubsetBitsPerLogicalRegister)
{
    // The f/s vectors: two bits per logical register (section 3.2).
    const RenameComplexity r = analyzeRename(sim::presetWsrsRc(512));
    EXPECT_EQ(r.subsetTrackerBits, 2u * 80);
    EXPECT_EQ(analyzeRename(sim::presetWriteSpec(512)).subsetTrackerBits,
              0u);
}

TEST(RenameModel, DependencyComparatorsQuadraticInWidth)
{
    core::CoreParams p = sim::presetConventional(256);
    EXPECT_EQ(analyzeRename(p).dependencyComparators, 8u * 7);
    p.fetchWidth = 4;
    EXPECT_EQ(analyzeRename(p).dependencyComparators, 4u * 3);
}

TEST(RenameModel, TableCoversTheMachines)
{
    const auto table = renameComplexityTable();
    ASSERT_EQ(table.size(), 5u);
    EXPECT_EQ(table[0].name, "RR-256");
    EXPECT_EQ(table[2].name, "WSP-512");
}

} // namespace
} // namespace wsrs::cxmodel
