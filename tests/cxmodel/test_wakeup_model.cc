/** @file Tests for the wake-up/selection/bypass complexity model. */
#include <gtest/gtest.h>

#include "src/cxmodel/wakeup_model.h"

namespace wsrs::cxmodel {
namespace {

TEST(WakeupModel, Section432HeadlineClaim)
{
    // "A wake-up logic entry on a 8-way 4-cluster WSRS architecture
    // features only the same number of comparators as the one of a 4-way
    // issue conventional processor."
    EXPECT_EQ(comparatorsPerEntry(makeWsrs8Way()),
              comparatorsPerEntry(makeConventional4Way()));
    // And half of the conventional 8-way machine's.
    EXPECT_EQ(2 * comparatorsPerEntry(makeWsrs8Way()),
              comparatorsPerEntry(makeConventional8Way()));
}

TEST(WakeupModel, ComparatorCounts)
{
    EXPECT_EQ(comparatorsPerEntry(makeConventional8Way()), 24u);
    EXPECT_EQ(comparatorsPerEntry(makeWsrs8Way()), 12u);
    EXPECT_EQ(totalComparators(makeConventional8Way()), 24u * 56 * 4);
    EXPECT_EQ(totalComparators(makeWsrs8Way()), 12u * 56 * 4);
}

TEST(WakeupModel, DelayReproducesPalacharla46Percent)
{
    // Paper section 4.3.2 quoting [14]: doubling sources 4 -> 8 costs 46%.
    SchedulerOrg four = makeConventional4Way();
    four.producersVisible = 4;
    SchedulerOrg eight = four;
    eight.producersVisible = 8;
    EXPECT_NEAR(relativeWakeupDelay(eight) / relativeWakeupDelay(four),
                1.46, 1e-9);
}

TEST(WakeupModel, WsrsWakeupFasterThanConventional8Way)
{
    EXPECT_LT(relativeWakeupDelay(makeWsrs8Way()),
              relativeWakeupDelay(makeConventional8Way()));
    EXPECT_DOUBLE_EQ(relativeWakeupDelay(makeWsrs8Way()),
                     relativeWakeupDelay(makeConventional4Way()));
}

TEST(WakeupModel, BypassSourcesMatchTable1Column)
{
    // Consistency with Table 1 at the 5 GHz pipeline lengths.
    SchedulerOrg conv = makeConventional8Way();
    conv.regReadWritePipe = 5;
    EXPECT_EQ(bypassSources(conv), 61u);  // noWS-M @5GHz
    EXPECT_EQ(bypassSources(makeWsrs8Way()),
              2u * 6 + 1);  // X=2 at the simulated clock
}

TEST(WakeupModel, SevenClusterExtensionKeepsEntryComplexity)
{
    // Section 7: 14-way, yet the wake-up entry stays at 2-cluster level.
    EXPECT_EQ(comparatorsPerEntry(makeWsrs7Cluster14Way()),
              comparatorsPerEntry(makeConventional4Way()));
    EXPECT_EQ(bypassSources(makeWsrs7Cluster14Way()),
              bypassSources(makeWsrs8Way()));
}

TEST(WakeupModel, SelectionTreeDepthIsLogarithmic)
{
    SchedulerOrg org = makeConventional8Way();
    org.windowPerCluster = 1;
    EXPECT_EQ(selectionTreeDepth(org), 0u);
    org.windowPerCluster = 4;
    EXPECT_EQ(selectionTreeDepth(org), 1u);
    org.windowPerCluster = 56;
    EXPECT_EQ(selectionTreeDepth(org), 3u);
    org.windowPerCluster = 64;
    EXPECT_EQ(selectionTreeDepth(org), 3u);
    org.windowPerCluster = 65;
    EXPECT_EQ(selectionTreeDepth(org), 4u);
}

TEST(WakeupModel, OrganizationListOrder)
{
    const auto orgs = section43Organizations();
    ASSERT_EQ(orgs.size(), 5u);
    EXPECT_EQ(orgs[0].name, "noWS 8-way");
    EXPECT_EQ(orgs[2].name, "WSRS 8-way");
}

} // namespace
} // namespace wsrs::cxmodel
