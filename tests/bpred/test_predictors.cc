/** @file Accuracy and behaviour tests for the direction predictors. */
#include <gtest/gtest.h>

#include <memory>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/tournament.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/common/rng.h"

namespace wsrs::bpred {
namespace {

/** Run a stream and return the misprediction rate. */
template <typename Outcome>
double
mispredictRate(BranchPredictor &bp, unsigned n, Outcome &&outcome)
{
    unsigned wrong = 0;
    for (unsigned i = 0; i < n; ++i) {
        const auto [pc, taken] = outcome(i);
        if (bp.lookup(pc) != taken)
            ++wrong;
        bp.update(pc, taken);
    }
    return double(wrong) / n;
}

TEST(TwoBcGskew, LearnsStronglyBiasedBranch)
{
    TwoBcGskew bp;
    XorShiftRng rng(1);
    const double rate = mispredictRate(bp, 50000, [&](unsigned) {
        return std::pair<Addr, bool>{0x4000, rng.chance(0.98)};
    });
    // An ideal predictor mispredicts ~2%; allow a small learning margin.
    EXPECT_LT(rate, 0.035);
}

TEST(TwoBcGskew, LearnsShortLoop)
{
    TwoBcGskew bp;
    // Loop branch: taken 9 times, not taken once. History captures the
    // period, so steady-state accuracy should be near-perfect.
    unsigned i = 0;
    const double rate = mispredictRate(bp, 50000, [&](unsigned) {
        const bool taken = (i++ % 10) != 9;
        return std::pair<Addr, bool>{0x4100, taken};
    });
    EXPECT_LT(rate, 0.02);
}

TEST(TwoBcGskew, LearnsRepeatingPattern)
{
    TwoBcGskew bp;
    const std::uint16_t pattern = 0xb5a3;
    unsigned i = 0;
    const double rate = mispredictRate(bp, 50000, [&](unsigned) {
        const bool taken = (pattern >> (i++ % 16)) & 1;
        return std::pair<Addr, bool>{0x4200, taken};
    });
    EXPECT_LT(rate, 0.02);
}

TEST(TwoBcGskew, HandlesManyIndependentBiasedSites)
{
    TwoBcGskew bp;
    XorShiftRng rng(7);
    // 256 sites, each with its own strong bias direction.
    const double rate = mispredictRate(bp, 200000, [&](unsigned i) {
        const unsigned site = i % 256;
        const bool bias_taken = site & 1;
        const bool taken = rng.chance(bias_taken ? 0.97 : 0.03);
        return std::pair<Addr, bool>{0x8000 + 4 * site, taken};
    });
    EXPECT_LT(rate, 0.05);
}

TEST(TwoBcGskew, BeatsBimodalOnCorrelatedPattern)
{
    // Alternating branch: bimodal oscillates, history-based learns it.
    TwoBcGskew gskew;
    BimodalPredictor bimodal;
    unsigned i = 0, j = 0;
    const double g = mispredictRate(gskew, 30000, [&](unsigned) {
        return std::pair<Addr, bool>{0x5000, (i++ % 2) == 0};
    });
    const double b = mispredictRate(bimodal, 30000, [&](unsigned) {
        return std::pair<Addr, bool>{0x5000, (j++ % 2) == 0};
    });
    EXPECT_LT(g, 0.02);
    EXPECT_GT(b, 0.3);
}

TEST(TwoBcGskew, StorageBudgetIs512Kbit)
{
    TwoBcGskew bp;
    EXPECT_EQ(bp.storageBits(), 512u * 1024);
}

TEST(Gshare, LearnsPattern)
{
    GsharePredictor bp;
    unsigned i = 0;
    const double rate = mispredictRate(bp, 30000, [&](unsigned) {
        const bool taken = (0x35 >> (i++ % 8)) & 1;
        return std::pair<Addr, bool>{0x6000, taken};
    });
    EXPECT_LT(rate, 0.02);
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor bp;
    XorShiftRng rng(3);
    const double rate = mispredictRate(bp, 30000, [&](unsigned) {
        return std::pair<Addr, bool>{0x7000, rng.chance(0.95)};
    });
    EXPECT_LT(rate, 0.11);
    EXPECT_GT(rate, 0.03);
}


TEST(Tournament, LocalHistoryLearnsPerBranchPattern)
{
    // Two interleaved branches with different short patterns: local
    // history separates them where a global-only predictor aliases.
    TournamentPredictor bp;
    unsigned i = 0, j = 0;
    const double rate = mispredictRate(bp, 60000, [&](unsigned n) {
        if (n % 2 == 0)
            return std::pair<Addr, bool>{0x9000, (i++ % 3) != 2};
        return std::pair<Addr, bool>{0x9100, (j++ % 5) != 4};
    });
    EXPECT_LT(rate, 0.05);
}

TEST(Tournament, LearnsBiasedBranch)
{
    TournamentPredictor bp;
    XorShiftRng rng(21);
    const double rate = mispredictRate(bp, 50000, [&](unsigned) {
        return std::pair<Addr, bool>{0xa000, rng.chance(0.97)};
    });
    EXPECT_LT(rate, 0.05);
}

TEST(Tournament, StorageBudgetIsEv6Class)
{
    TournamentPredictor bp;
    // EV6's predictor was ~36 Kbit; ours is in the same class and far
    // below the EV8-class 512 Kbit budget.
    EXPECT_GT(bp.storageBits(), 16u * 1024);
    EXPECT_LT(bp.storageBits(), 64u * 1024);
}

TEST(Perfect, NeverCountsAsMispredicted)
{
    PerfectPredictor bp;
    EXPECT_TRUE(bp.isPerfect());
    EXPECT_EQ(bp.storageBits(), 0u);
}

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
}

TEST(SatCounter, TrainMovesTowardOutcome)
{
    SatCounter c(2, 1);
    c.train(true);
    EXPECT_EQ(c.value(), 2);
    c.train(false);
    c.train(false);
    EXPECT_EQ(c.value(), 0);
}

} // namespace
} // namespace wsrs::bpred
