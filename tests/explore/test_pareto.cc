/**
 * @file
 * Tests of the exact non-dominated archive: dominance semantics, set
 * equivalence against a brute-force oracle under fixed-seed random offer
 * orders, duplicate handling, and the deterministic report sort.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/explore/pareto.h"

namespace wsrs::explore {
namespace {

Objectives
obj(double ipc, double area, double energy)
{
    Objectives o;
    o.ipc = ipc;
    o.area = area;
    o.energy = energy;
    return o;
}

FrontierPoint
pt(std::uint64_t index, double ipc, double area, double energy)
{
    FrontierPoint p;
    p.index = index;
    p.obj = obj(ipc, area, energy);
    return p;
}

TEST(Dominates, MaximizeIpcMinimizeCost)
{
    const Objectives base = obj(2.0, 1.0, 1.0);
    EXPECT_TRUE(dominates(obj(2.5, 1.0, 1.0), base));  // better IPC
    EXPECT_TRUE(dominates(obj(2.0, 0.9, 1.0), base));  // cheaper area
    EXPECT_TRUE(dominates(obj(2.0, 1.0, 0.9), base));  // cheaper energy
    EXPECT_TRUE(dominates(obj(2.5, 0.9, 0.9), base));
    EXPECT_FALSE(dominates(base, base));               // equal: neither
    EXPECT_FALSE(dominates(obj(2.5, 1.1, 1.0), base)); // trade-off
    EXPECT_FALSE(dominates(obj(1.9, 0.5, 0.5), base)); // trade-off
    EXPECT_FALSE(dominates(base, obj(2.5, 1.0, 1.0)));
}

/** Brute-force non-dominated subset with the archive's duplicate rule
 *  (identical objective vectors keep the lowest index). */
std::vector<FrontierPoint>
oracle(const std::vector<FrontierPoint> &all)
{
    std::vector<FrontierPoint> out;
    for (const auto &p : all) {
        bool keep = true;
        for (const auto &q : all) {
            if (dominates(q.obj, p.obj)) {
                keep = false;
                break;
            }
            if (q.obj.ipc == p.obj.ipc && q.obj.area == p.obj.area &&
                q.obj.energy == p.obj.energy && q.index < p.index) {
                keep = false;
                break;
            }
        }
        if (keep)
            out.push_back(p);
    }
    return out;
}

std::vector<std::uint64_t>
indicesOf(const std::vector<FrontierPoint> &pts)
{
    std::vector<std::uint64_t> idx;
    for (const auto &p : pts)
        idx.push_back(p.index);
    std::sort(idx.begin(), idx.end());
    return idx;
}

TEST(ParetoArchive, MatchesBruteForceOracle)
{
    // Small discrete grid so duplicates and partial ties actually occur.
    std::mt19937 rng(12345);
    std::uniform_int_distribution<int> grid(0, 5);
    std::vector<FrontierPoint> all;
    for (std::uint64_t i = 0; i < 300; ++i)
        all.push_back(pt(i, 0.5 * grid(rng), 0.25 * grid(rng),
                         0.1 * grid(rng)));

    ParetoArchive archive;
    for (const auto &p : all)
        archive.offer(p);
    EXPECT_EQ(indicesOf(archive.points()), indicesOf(oracle(all)));

    // Every archived pair must be mutually non-dominating.
    const auto &front = archive.points();
    for (const auto &a : front)
        for (const auto &b : front)
            if (a.index != b.index) {
                EXPECT_FALSE(dominates(a.obj, b.obj))
                    << a.index << " dominates " << b.index;
            }
}

TEST(ParetoArchive, OfferOrderIsIrrelevant)
{
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::vector<FrontierPoint> all;
    for (std::uint64_t i = 0; i < 200; ++i)
        all.push_back(pt(i, uni(rng), uni(rng), uni(rng)));

    ParetoArchive forward;
    for (const auto &p : all)
        forward.offer(p);
    const auto sortedForward = forward.sorted();

    for (int shuffle = 0; shuffle < 5; ++shuffle) {
        std::shuffle(all.begin(), all.end(), rng);
        ParetoArchive again;
        for (const auto &p : all)
            again.offer(p);
        const auto sortedAgain = again.sorted();
        ASSERT_EQ(sortedAgain.size(), sortedForward.size());
        for (std::size_t i = 0; i < sortedAgain.size(); ++i)
            EXPECT_EQ(sortedAgain[i].index, sortedForward[i].index);
    }
}

TEST(ParetoArchive, ChunkMergeEqualsSingleArchive)
{
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> grid(0, 8);
    std::vector<FrontierPoint> all;
    for (std::uint64_t i = 0; i < 240; ++i)
        all.push_back(pt(i, 0.5 * grid(rng), 0.25 * grid(rng),
                         0.1 * grid(rng)));

    ParetoArchive whole;
    for (const auto &p : all)
        whole.offer(p);

    // Three chunks merged in a scrambled order (the parallel sweep).
    ParetoArchive a, b, c;
    for (std::size_t i = 0; i < all.size(); ++i)
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).offer(all[i]);
    ParetoArchive merged;
    merged.merge(c);
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(indicesOf(merged.points()), indicesOf(whole.points()));
}

TEST(ParetoArchive, DuplicateVectorsKeepLowestIndex)
{
    ParetoArchive archive;
    archive.offer(pt(17, 2.0, 1.0, 1.0));
    archive.offer(pt(3, 2.0, 1.0, 1.0));
    archive.offer(pt(25, 2.0, 1.0, 1.0));
    ASSERT_EQ(archive.size(), 1u);
    EXPECT_EQ(archive.points()[0].index, 3u);
}

TEST(ParetoArchive, SortedReportOrder)
{
    // Equal-IPC frontier points trade area against energy, so the
    // secondary (area asc) ordering is observable.
    ParetoArchive archive;
    archive.offer(pt(9, 2.0, 1.2, 0.5));
    archive.offer(pt(4, 3.0, 2.0, 3.0));
    archive.offer(pt(6, 2.0, 0.8, 2.0));
    archive.offer(pt(1, 2.0, 1.0, 1.0));
    const auto sorted = archive.sorted();
    ASSERT_EQ(sorted.size(), 4u);
    // (ipc desc, area asc, energy asc, index asc).
    EXPECT_EQ(sorted[0].index, 4u);
    EXPECT_EQ(sorted[1].index, 6u);
    EXPECT_EQ(sorted[2].index, 1u);
    EXPECT_EQ(sorted[3].index, 9u);
}

} // namespace
} // namespace wsrs::explore
