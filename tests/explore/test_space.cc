/**
 * @file
 * Tests of the wsrs-space-v1 parser and the streaming point codec:
 * row-major index decoding, base-preset materialization, feasibility
 * flagging, and the parse-time validation errors.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/log.h"
#include "src/explore/space.h"
#include "src/sim/presets.h"
#include "tests/support/json_lint.h"

namespace wsrs::explore {
namespace {

const char *kSpec = R"({
  "schema": "wsrs-space-v1",
  "base": {"machine": "WSRS-RC-512", "mem": "constant"},
  "workloads": ["gzip", "mcf"],
  "axes": [
    {"param": "core.num_clusters", "values": [2, 4]},
    {"param": "core.mode", "values": ["conventional", "ws", "wsrs"]},
    {"param": "core.num_phys_regs", "from": 256, "to": 512, "step": 128}
  ]
})";

TEST(SpaceSpecParse, AxesWorkloadsAndBase)
{
    const SpaceSpec spec = parseSpaceSpec(kSpec, "test");
    ASSERT_EQ(spec.axes.size(), 3u);
    EXPECT_EQ(spec.axes[0].param, "core.num_clusters");
    EXPECT_EQ(spec.axes[0].size(), 2u);
    EXPECT_TRUE(spec.axes[1].isEnum);
    EXPECT_EQ(spec.axes[1].labels,
              (std::vector<std::string>{"conventional", "ws", "wsrs"}));
    // Range axis expands to an inclusive arithmetic sequence.
    EXPECT_EQ(spec.axes[2].numeric, (std::vector<double>{256, 384, 512}));
    EXPECT_EQ(spec.workloads,
              (std::vector<std::string>{"gzip", "mcf"}));
    EXPECT_EQ(spec.baseMachineLabel, "WSRS-RC-512");
    EXPECT_EQ(spec.baseMemLabel, "constant");
    EXPECT_EQ(spec.totalPoints(), 18u);
}

TEST(SpaceSpecParse, RejectsMalformedSpecs)
{
    const auto reject = [](const char *text) {
        EXPECT_THROW(parseSpaceSpec(text, "test"), FatalError) << text;
    };
    reject("{");                                     // not JSON
    reject(R"({"schema": "nope", "axes": []})");     // wrong schema
    reject(R"({"schema": "wsrs-space-v1", "base": {"machine": "RR-256"},
               "workloads": ["gzip"], "axes": []})"); // no axes
    reject(R"({"schema": "wsrs-space-v1", "base": {"machine": "RR-256"},
               "workloads": ["gzip"],
               "axes": [{"param": "core.bogus", "values": [1]}]})");
    reject(R"({"schema": "wsrs-space-v1", "base": {"machine": "RR-256"},
               "workloads": ["not-a-benchmark"],
               "axes": [{"param": "core.fetch_width", "values": [8]}]})");
    reject(R"({"schema": "wsrs-space-v1", "base": {"machine": "RR-256"},
               "workloads": ["gzip"],
               "axes": [{"param": "core.mode", "values": ["sideways"]}]})");
    reject(R"({"schema": "wsrs-space-v1", "base": {"machine": "RR-256"},
               "workloads": ["gzip"],
               "axes": [{"param": "core.fetch_width",
                         "from": 8, "to": 4, "step": 1}]})");
}

TEST(SpaceCodec, RowMajorDecode)
{
    const SpaceSpec spec = parseSpaceSpec(kSpec, "test");
    std::uint32_t digits[3];
    decodePoint(spec, 0, digits);
    EXPECT_EQ(digits[0], 0u);
    EXPECT_EQ(digits[1], 0u);
    EXPECT_EQ(digits[2], 0u);
    decodePoint(spec, 17, digits);
    EXPECT_EQ(digits[0], 1u);
    EXPECT_EQ(digits[1], 2u);
    EXPECT_EQ(digits[2], 2u);
    // First axis outermost: index = ((d0 * 3) + d1) * 3 + d2.
    decodePoint(spec, 1 * 9 + 2 * 3 + 1, digits);
    EXPECT_EQ(digits[0], 1u);
    EXPECT_EQ(digits[1], 2u);
    EXPECT_EQ(digits[2], 1u);
}

TEST(SpaceCodec, MaterializeAppliesAxes)
{
    const SpaceSpec spec = parseSpaceSpec(kSpec, "test");
    // digits {1, 2, 1}: 4 clusters, wsrs, 384 registers.
    const std::uint32_t digits[3] = {1, 2, 1};
    const ConfigPoint pt = materializePoint(spec, digits);
    EXPECT_TRUE(pt.feasible);
    EXPECT_EQ(pt.core.numClusters, 4u);
    EXPECT_EQ(pt.core.mode, core::RegFileMode::Wsrs);
    EXPECT_EQ(pt.core.numPhysRegs, 384u);
}

TEST(SpaceCodec, InfeasiblePointsAreFlaggedNotSkipped)
{
    const SpaceSpec spec = parseSpaceSpec(kSpec, "test");
    // digits {0, 2, 0}: 2-cluster WSRS — the paired-subset geometry
    // requires exactly 4 clusters.
    const std::uint32_t digits[3] = {0, 2, 0};
    const ConfigPoint pt = materializePoint(spec, digits);
    EXPECT_FALSE(pt.feasible);
    ASSERT_NE(pt.whyInfeasible, nullptr);
    EXPECT_NE(std::string(pt.whyInfeasible), "");
}

TEST(SpaceCodec, PointNamesAndConfigJson)
{
    const SpaceSpec spec = parseSpaceSpec(kSpec, "test");
    EXPECT_EQ(pointName(0), "x0");
    EXPECT_EQ(pointName(42), "x42");
    std::uint32_t digits[3];
    for (std::uint64_t idx : {std::uint64_t(0), std::uint64_t(7),
                              std::uint64_t(17)}) {
        decodePoint(spec, idx, digits);
        const std::string json = pointConfigJson(spec, digits);
        EXPECT_EQ(test::jsonLint(json), "") << json;
        for (const auto &ax : spec.axes)
            EXPECT_NE(json.find('"' + ax.param + '"'), std::string::npos)
                << json;
    }
}

TEST(SpaceCodec, SupportedParamCatalog)
{
    const std::vector<std::string> params = supportedParams();
    EXPECT_GE(params.size(), 30u);
    for (const char *must :
         {"core.num_clusters", "core.mode", "core.policy",
          "core.num_phys_regs", "mem.l2_kb", "mem.model"})
        EXPECT_NE(std::find(params.begin(), params.end(), must),
                  params.end())
            << must;
}

} // namespace
} // namespace wsrs::explore
