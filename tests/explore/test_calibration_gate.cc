/**
 * @file
 * The calibration gate: the analytic model's ranking of the paper's
 * 72-job Figure-4 matrix (12 benchmarks x 6 machines, run
 * cycle-accurately through the sweep runner) must rank-correlate with
 * the measured IPCs at Spearman >= 0.8. The explorer's contract is that
 * its frontier ordering predicts the simulator's ordering; this test is
 * what keeps the ModelConstants defaults honest when either side
 * changes.
 */
#include <gtest/gtest.h>

#include "src/explore/calibrate.h"

namespace wsrs::explore {
namespace {

TEST(CalibrationGate, AnalyticRankingTracksMeasuredFigure4)
{
    const AnalyticModel model;
    CalibrationOptions opt; // Defaults: 200k measured uops, hw threads.
    const CalibrationResult r = calibrate(model, opt);
    EXPECT_EQ(r.jobs.size(), 72u);
    EXPECT_EQ(r.failures, 0u);
    for (const auto &job : r.jobs) {
        ASSERT_TRUE(job.ok) << job.benchmark << "/" << job.machine << ": "
                            << job.error;
        EXPECT_GT(job.measuredIpc, 0.0)
            << job.benchmark << "/" << job.machine;
        EXPECT_GT(job.estimatedIpc, 0.0)
            << job.benchmark << "/" << job.machine;
    }
    EXPECT_GE(r.spearmanIpc, 0.8)
        << "analytic model no longer ranks the Figure-4 matrix; "
           "recalibrate ModelConstants (see docs/explorer.md):\n"
        << calibrationReportText(r);

    // The text report carries every job plus the summary line.
    const std::string text = calibrationReportText(r);
    EXPECT_NE(text.find("gzip"), std::string::npos);
    EXPECT_NE(text.find("WSRS-RM-512"), std::string::npos);
    EXPECT_NE(text.find("spearman"), std::string::npos);
}

} // namespace
} // namespace wsrs::explore
