/**
 * @file
 * End-to-end tests of explore(): thread-count determinism of the report
 * bytes (the regression test the report's design promises), report
 * well-formedness, exact axis coverage, frontier non-dominance, the
 * cycle-accurate confirmation path, and the analytic sweep's throughput
 * floor (>= 1M configurations in well under a minute single-threaded).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "src/explore/analytic_model.h"
#include "src/explore/explorer.h"
#include "src/explore/pareto.h"
#include "src/explore/space.h"
#include "tests/support/json_lint.h"

namespace wsrs::explore {
namespace {

const char *kSmallSpec = R"({
  "schema": "wsrs-space-v1",
  "base": {"machine": "WSRS-RC-512", "mem": "constant"},
  "workloads": ["gzip", "mcf"],
  "axes": [
    {"param": "core.num_clusters", "values": [2, 4]},
    {"param": "core.mode", "values": ["conventional", "ws", "wsrs"]},
    {"param": "core.num_phys_regs", "from": 256, "to": 512, "step": 128}
  ]
})";

TEST(Explorer, ReportBytesAreThreadCountInvariant)
{
    const SpaceSpec spec = parseSpaceSpec(kSmallSpec, "test");
    const AnalyticModel model;
    ExplorerOptions one;
    one.threads = 1;
    ExplorerOptions four;
    four.threads = 4;
    const ExplorerResult r1 = explore(spec, model, one);
    const ExplorerResult r4 = explore(spec, model, four);
    EXPECT_EQ(r1.enumerated, r4.enumerated);
    EXPECT_EQ(r1.infeasible, r4.infeasible);
    ASSERT_EQ(r1.frontier.size(), r4.frontier.size());
    for (std::size_t i = 0; i < r1.frontier.size(); ++i)
        EXPECT_EQ(r1.frontier[i].index, r4.frontier[i].index);
    // The contract is byte equality, not just semantic equality.
    EXPECT_EQ(r1.reportJson, r4.reportJson);
}

TEST(Explorer, ReportIsStrictJsonWithExactCoverage)
{
    const SpaceSpec spec = parseSpaceSpec(kSmallSpec, "test");
    const AnalyticModel model;
    ExplorerOptions opt;
    opt.threads = 2;
    const ExplorerResult r = explore(spec, model, opt);
    EXPECT_EQ(r.enumerated, spec.totalPoints());
    EXPECT_GT(r.infeasible, 0u); // 2-cluster WSRS points must be flagged.
    EXPECT_LT(r.infeasible, r.enumerated);
    EXPECT_FALSE(r.frontier.empty());

    EXPECT_EQ(test::jsonLint(r.reportJson), "");
    EXPECT_NE(r.reportJson.find("\"schema\":\"wsrs-explore-v1\""),
              std::string::npos);
    EXPECT_NE(r.reportJson.find("\"total_configs\":18"),
              std::string::npos);
    EXPECT_NE(r.reportJson.find("\"confirm\":null"), std::string::npos);
}

TEST(Explorer, FrontierIsMutuallyNonDominated)
{
    const SpaceSpec spec = parseSpaceSpec(kSmallSpec, "test");
    const AnalyticModel model;
    const ExplorerResult r = explore(spec, model, ExplorerOptions{});
    for (const auto &a : r.frontier)
        for (const auto &b : r.frontier)
            if (a.index != b.index) {
                EXPECT_FALSE(dominates(a.obj, b.obj))
                    << a.index << " dominates " << b.index;
            }
    // Report order: estimated IPC non-increasing.
    for (std::size_t i = 1; i < r.frontier.size(); ++i)
        EXPECT_GE(r.frontier[i - 1].obj.ipc, r.frontier[i].obj.ipc);
}

TEST(Explorer, ConfirmationPairsEstimateWithMeasurement)
{
    const char *spec_text = R"({
      "schema": "wsrs-space-v1",
      "base": {"machine": "WSRS-RC-512", "mem": "constant"},
      "workloads": ["gzip"],
      "axes": [
        {"param": "core.mode", "values": ["conventional", "ws", "wsrs"]},
        {"param": "core.num_phys_regs", "values": [256, 512]}
      ]
    })";
    const SpaceSpec spec = parseSpaceSpec(spec_text, "test");
    const AnalyticModel model;
    ExplorerOptions opt;
    opt.threads = 2;
    opt.confirmTop = 2;
    opt.confirmThreads = 2;
    opt.confirmMeasureUops = 8000;
    opt.confirmWarmupUops = 2000;
    const ExplorerResult r = explore(spec, model, opt);
    ASSERT_EQ(r.confirmed.size(), 2u);
    for (std::size_t k = 0; k < r.confirmed.size(); ++k) {
        const ConfirmedPoint &cp = r.confirmed[k];
        EXPECT_EQ(cp.index, r.frontier[k].index);
        ASSERT_TRUE(cp.ok) << cp.error;
        EXPECT_GT(cp.measuredIpc, 0.0);
        ASSERT_EQ(cp.perWorkload.size(), 1u);
        EXPECT_GT(cp.perWorkload[0], 0.0);
    }
    EXPECT_EQ(test::jsonLint(r.reportJson), "");
    EXPECT_NE(r.reportJson.find("\"measured\":{"), std::string::npos);
    EXPECT_NE(r.reportJson.find("\"confirm\":{"), std::string::npos);

    // The confirmation sweep is deterministic too: a single-threaded
    // confirm run must reproduce the same bytes.
    ExplorerOptions serial = opt;
    serial.threads = 1;
    serial.confirmThreads = 1;
    const ExplorerResult r2 = explore(spec, model, serial);
    EXPECT_EQ(r.reportJson, r2.reportJson);
}

TEST(Explorer, MillionConfigSweepUnderAMinute)
{
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    constexpr bool instrumented = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    constexpr bool instrumented = true;
#else
    constexpr bool instrumented = false;
#endif
#else
    constexpr bool instrumented = false;
#endif
    // 960 * 6 * 3 * 2^6 = 1,105,920 configurations (sanitized builds
    // sweep an 8x smaller space and skip the clock).
    const std::string regs = instrumented
                                 ? "\"from\": 128, \"to\": 247, \"step\": 1"
                                 : "\"from\": 128, \"to\": 1087, "
                                   "\"step\": 1";
    const std::string spec_text = R"({
      "schema": "wsrs-space-v1",
      "base": {"machine": "WSRS-RC-512", "mem": "constant"},
      "workloads": ["gzip"],
      "axes": [
        {"param": "core.num_phys_regs", )" +
                                  regs + R"(},
        {"param": "core.cluster_window",
         "values": [32, 40, 48, 56, 64, 72]},
        {"param": "core.mode", "values": ["conventional", "ws", "wsrs"]},
        {"param": "core.num_clusters", "values": [2, 4]},
        {"param": "core.issue_per_cluster", "values": [2, 4]},
        {"param": "mem.l2_kb", "values": [512, 1024]},
        {"param": "mem.l1_kb", "values": [32, 64]},
        {"param": "mem.mshrs", "values": [4, 8]},
        {"param": "mem.prefetch_depth", "values": [0, 2]}
      ]
    })";
    const SpaceSpec spec = parseSpaceSpec(spec_text, "test");
    if (!instrumented) {
        ASSERT_GE(spec.totalPoints(), 1000000u);
    }
    const AnalyticModel model;
    ExplorerOptions opt;
    opt.threads = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const ExplorerResult r = explore(spec, model, opt);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_EQ(r.enumerated, spec.totalPoints());
    EXPECT_FALSE(r.frontier.empty());
    if (!instrumented) {
        EXPECT_LT(seconds, 60.0)
            << "analytic sweep too slow: " << r.enumerated
            << " configs in " << seconds << "s";
    }
}

} // namespace
} // namespace wsrs::explore
