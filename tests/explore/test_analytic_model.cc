/**
 * @file
 * Unit tests of the explorer's analytic estimator: closed-form pins of
 * the Sakasegawa M/M/m queue-wait term, Spearman rank-correlation
 * properties, workload characterization sanity, and monotonicity of the
 * IPC and hardware estimates across the Figure-4 machines.
 */
#include <gtest/gtest.h>

#include "src/explore/analytic_model.h"
#include "src/sim/presets.h"
#include "src/workload/profiles.h"

namespace wsrs::explore {
namespace {

// ---- M/M/m queue wait (closed-form pins) -------------------------------

TEST(MmQueueWait, EmptyQueueWaitsNothing)
{
    EXPECT_DOUBLE_EQ(mmQueueWait(0.0, 1), 0.0);
    EXPECT_DOUBLE_EQ(mmQueueWait(0.0, 4), 0.0);
}

TEST(MmQueueWait, MM1ClosedForm)
{
    // Sakasegawa is exact for m = 1: wq = rho^2 / (1 - rho).
    EXPECT_NEAR(mmQueueWait(0.5, 1), 0.5, 1e-12);
    EXPECT_NEAR(mmQueueWait(0.9, 1), 8.1, 1e-12);
    for (double rho = 0.05; rho < 0.99; rho += 0.05)
        EXPECT_NEAR(mmQueueWait(rho, 1), rho * rho / (1.0 - rho), 1e-12)
            << "rho=" << rho;
}

TEST(MmQueueWait, MultiServerPins)
{
    // rho^sqrt(2(m+1)) / (m (1 - rho)), evaluated independently.
    EXPECT_NEAR(mmQueueWait(0.6, 2), 0.35767927484209455, 1e-12);
    EXPECT_NEAR(mmQueueWait(0.8, 2), 1.4473045446743937, 1e-12);
    EXPECT_NEAR(mmQueueWait(0.8, 4), 0.6172394048338887, 1e-12);
    EXPECT_NEAR(mmQueueWait(0.95, 3), 5.7663577366564684, 1e-12);
}

TEST(MmQueueWait, MonotoneInLoadAndServers)
{
    double prev = -1.0;
    for (double rho = 0.0; rho < 0.98; rho += 0.01) {
        const double wq = mmQueueWait(rho, 2);
        EXPECT_GT(wq, prev) << "rho=" << rho;
        prev = wq;
    }
    // More issue slots at the same utilization wait less.
    EXPECT_GT(mmQueueWait(0.8, 1), mmQueueWait(0.8, 2));
    EXPECT_GT(mmQueueWait(0.8, 2), mmQueueWait(0.8, 4));
    EXPECT_GT(mmQueueWait(0.8, 4), mmQueueWait(0.8, 8));
}

TEST(MmQueueWait, DivergesTowardSaturation)
{
    EXPECT_GT(mmQueueWait(0.999, 2), 100.0);
    EXPECT_LT(mmQueueWait(0.5, 2), 1.0);
}

// ---- Spearman ----------------------------------------------------------

TEST(Spearman, PerfectAndReversed)
{
    const std::vector<double> a{1, 2, 3, 4, 5};
    const std::vector<double> up{10, 20, 30, 40, 50};
    const std::vector<double> down{50, 40, 30, 20, 10};
    EXPECT_DOUBLE_EQ(spearman(a, up), 1.0);
    EXPECT_DOUBLE_EQ(spearman(a, down), -1.0);
    // Rank correlation ignores the scale entirely.
    const std::vector<double> warped{0.01, 0.02, 5000, 5001, 1e9};
    EXPECT_DOUBLE_EQ(spearman(a, warped), 1.0);
}

TEST(Spearman, DegenerateInputs)
{
    EXPECT_DOUBLE_EQ(spearman({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(spearman({1.0}, {2.0}), 0.0);
    // A constant sample has no ordering to correlate with.
    EXPECT_DOUBLE_EQ(spearman({1, 2, 3}, {7, 7, 7}), 0.0);
}

TEST(Spearman, TiesGetAverageRanks)
{
    // One discordant pair out of (1,2,3,4) vs (1,2,4,3).
    const double s = spearman({1, 2, 3, 4}, {1, 2, 4, 3});
    EXPECT_NEAR(s, 0.8, 1e-12);
    // Tied values share the average rank: still positively correlated.
    const double t = spearman({1, 2, 3, 4}, {1, 2, 2, 4});
    EXPECT_GT(t, 0.9);
    EXPECT_LT(t, 1.0);
}

// ---- characterization --------------------------------------------------

TEST(Characterize, AllProfilesProduceSaneSignatures)
{
    const AnalyticModel model;
    for (const auto &p : workload::allProfiles()) {
        const WorkloadSignature s = model.characterize(p);
        EXPECT_EQ(s.name, p.name);
        for (double f : {s.fLoad, s.fStore, s.fBranch, s.fAlu, s.fDest,
                         s.readyFrac, s.crossBlockFrac, s.strideFrac,
                         s.randomHotFrac, s.invariantFrac}) {
            EXPECT_GE(f, 0.0) << p.name;
            EXPECT_LE(f, 1.0) << p.name;
        }
        EXPECT_GE(s.meanExecLat, 1.0) << p.name;
        EXPECT_GE(s.meanDepDist, 1.0) << p.name;
        EXPECT_GT(s.footprintBytes, 0.0) << p.name;
        EXPECT_GT(s.mispredictRate, 0.0) << p.name;
        EXPECT_LT(s.mispredictRate, 0.5) << p.name;
    }
}

// ---- IPC estimate ------------------------------------------------------

TEST(EstimateIpc, BoundedAndDecomposed)
{
    const AnalyticModel model;
    const memory::HierarchyParams mem = sim::findMemPreset("constant");
    for (const auto &label : sim::figure4Presets()) {
        const core::CoreParams core = sim::findPreset(label);
        for (const auto &p : workload::allProfiles()) {
            const WorkloadSignature s = model.characterize(p);
            const IpcEstimate e = model.estimateIpc(core, mem, s);
            EXPECT_GT(e.ipc, 0.0) << label << "/" << p.name;
            EXPECT_LE(e.ipc, double(core.fetchWidth))
                << label << "/" << p.name;
            EXPECT_GT(e.cpiCore, 0.0) << label << "/" << p.name;
            EXPECT_GE(e.cpiBranch, 0.0) << label << "/" << p.name;
            EXPECT_GE(e.cpiMem, 0.0) << label << "/" << p.name;
            EXPECT_GE(e.cpiReg, 0.0) << label << "/" << p.name;
            EXPECT_NEAR(1.0 / e.ipc,
                        e.cpiCore + e.cpiBranch + e.cpiMem + e.cpiReg,
                        1e-9)
                << label << "/" << p.name;
            EXPECT_GE(e.mlp, 1.0) << label << "/" << p.name;
            EXPECT_LE(e.l1MissPerLoad, 1.0) << label << "/" << p.name;
            EXPECT_LE(e.l2MissPerL1, 1.0) << label << "/" << p.name;
        }
    }
}

TEST(EstimateIpc, MoreRegistersNeverHurt)
{
    const AnalyticModel model;
    const memory::HierarchyParams mem = sim::findMemPreset("constant");
    for (const auto &p : workload::allProfiles()) {
        const WorkloadSignature s = model.characterize(p);
        const double w384 =
            model.estimateIpc(sim::findPreset("WSRR-384"), mem, s).ipc;
        const double w512 =
            model.estimateIpc(sim::findPreset("WSRR-512"), mem, s).ipc;
        EXPECT_LE(w384, w512 + 1e-12) << p.name;
    }
}

TEST(EstimateIpc, SlowerMemoryNeverHelps)
{
    const AnalyticModel model;
    const core::CoreParams core = sim::findPreset("WSRS-RC-512");
    memory::HierarchyParams fast = sim::findMemPreset("constant");
    memory::HierarchyParams slow = fast;
    slow.l2MissPenalty = 4 * fast.l2MissPenalty;
    for (const auto &p : workload::allProfiles()) {
        const WorkloadSignature s = model.characterize(p);
        EXPECT_LE(model.estimateIpc(core, slow, s).ipc,
                  model.estimateIpc(core, fast, s).ipc + 1e-12)
            << p.name;
    }
}

TEST(EstimateIpc, ReadSpecializationCostsThroughput)
{
    // The calibrated model must reproduce the paper's qualitative
    // ordering: at equal frequency the WSRS machines trail the
    // write-specialized ones (read specialization pins consumers to a
    // cluster pair), and RM trails RC.
    const AnalyticModel model;
    const memory::HierarchyParams mem = sim::findMemPreset("constant");
    for (const auto &p : workload::allProfiles()) {
        const WorkloadSignature s = model.characterize(p);
        const double wsrr =
            model.estimateIpc(sim::findPreset("WSRR-512"), mem, s).ipc;
        const double rc =
            model.estimateIpc(sim::findPreset("WSRS-RC-512"), mem, s).ipc;
        const double rm =
            model.estimateIpc(sim::findPreset("WSRS-RM-512"), mem, s).ipc;
        EXPECT_GT(wsrr, rc) << p.name;
        EXPECT_GT(rc, rm) << p.name;
    }
}

// ---- hardware estimate -------------------------------------------------

TEST(EstimateHardware, ObjectivesArePositiveAndOrdered)
{
    const AnalyticModel model;
    const HardwareEstimate conv =
        model.estimateHardware(sim::findPreset("RR-256"));
    const HardwareEstimate wsrs =
        model.estimateHardware(sim::findPreset("WSRS-RC-512"));
    for (const auto &h : {conv, wsrs}) {
        EXPECT_GT(h.areaRel, 0.0);
        EXPECT_GT(h.rfAreaRel, 0.0);
        EXPECT_GT(h.energyNJ, 0.0);
        EXPECT_GT(h.accessTimeNs, 0.0);
        EXPECT_GT(h.comparators, 0u);
        EXPECT_GT(h.bypassSources, 0u);
    }
    // The paper's point: specialization shrinks the register file and the
    // wake-up logic even at twice the register count.
    EXPECT_LT(wsrs.rfAreaRel, conv.rfAreaRel);
    EXPECT_LT(wsrs.comparators, conv.comparators);
    EXPECT_LT(wsrs.accessTimeNs, conv.accessTimeNs);
}

} // namespace
} // namespace wsrs::explore
