/**
 * @file
 * Consistency of the params -> complexity-model bridges the explorer's
 * hardware objectives stand on: regFileOrgFromParams and
 * schedulerOrgFromParams applied to the Section-5 presets must reproduce
 * the hand-written Table-1 / Section-4.3 organizations field for field
 * (names aside — presets carry their preset label).
 */
#include <gtest/gtest.h>

#include "src/cxmodel/wakeup_model.h"
#include "src/rfmodel/regfile_model.h"
#include "src/sim/presets.h"

namespace wsrs {
namespace {

void
expectSameOrg(const rfmodel::RegFileOrg &got, const rfmodel::RegFileOrg &want)
{
    EXPECT_EQ(got.totalRegs, want.totalRegs) << want.name;
    EXPECT_EQ(got.copiesPerReg, want.copiesPerReg) << want.name;
    EXPECT_EQ(got.portsPerCopy.reads, want.portsPerCopy.reads) << want.name;
    EXPECT_EQ(got.portsPerCopy.writes, want.portsPerCopy.writes)
        << want.name;
    EXPECT_EQ(got.numSubfiles, want.numSubfiles) << want.name;
    EXPECT_EQ(got.entriesPerSubfile, want.entriesPerSubfile) << want.name;
    EXPECT_EQ(got.writeBusesPerSubfile, want.writeBusesPerSubfile)
        << want.name;
    EXPECT_EQ(got.writeSpanRows, want.writeSpanRows) << want.name;
    EXPECT_EQ(got.producersVisible, want.producersVisible) << want.name;
}

TEST(OrgFromParams, PresetsReproduceTable1)
{
    // RR-256 is the conventional 4-cluster machine: noWS-D.
    expectSameOrg(rfmodel::regFileOrgFromParams(sim::findPreset("RR-256")),
                  rfmodel::makeNoWsDistributed());
    // WSRR-512 is write specialization at 512 registers: Table 1's WS.
    expectSameOrg(
        rfmodel::regFileOrgFromParams(sim::findPreset("WSRR-512")),
        rfmodel::makeWriteSpec());
    // WSRS-RC-512 and WSRS-RM-512 share the WSRS register file.
    expectSameOrg(
        rfmodel::regFileOrgFromParams(sim::findPreset("WSRS-RC-512")),
        rfmodel::makeWsrs());
    expectSameOrg(
        rfmodel::regFileOrgFromParams(sim::findPreset("WSRS-RM-512")),
        rfmodel::makeWsrs());
}

void
expectSameSched(const cxmodel::SchedulerOrg &got,
                const cxmodel::SchedulerOrg &want)
{
    EXPECT_EQ(got.issueWidth, want.issueWidth) << want.name;
    EXPECT_EQ(got.numClusters, want.numClusters) << want.name;
    EXPECT_EQ(got.resultsPerCluster, want.resultsPerCluster) << want.name;
    EXPECT_EQ(got.windowPerCluster, want.windowPerCluster) << want.name;
    EXPECT_EQ(got.producersVisible, want.producersVisible) << want.name;
    EXPECT_EQ(got.regReadWritePipe, want.regReadWritePipe) << want.name;
}

TEST(OrgFromParams, PresetsReproduceSection43)
{
    expectSameSched(
        cxmodel::schedulerOrgFromParams(sim::findPreset("RR-256")),
        cxmodel::makeConventional8Way());
    expectSameSched(
        cxmodel::schedulerOrgFromParams(sim::findPreset("WSRR-512")),
        cxmodel::makeWs8Way());
    expectSameSched(
        cxmodel::schedulerOrgFromParams(sim::findPreset("WSRS-RC-512")),
        cxmodel::makeWsrs8Way());
}

TEST(OrgFromParams, WsrsConfinesProducersToAClusterPair)
{
    // The WSRS wake-up sees one pair's result buses however many
    // clusters the machine has — the scaling argument of section 7.
    core::CoreParams wide = sim::findPreset("WSRS-RC-512");
    const unsigned pairVisible =
        cxmodel::schedulerOrgFromParams(wide).producersVisible;
    core::CoreParams conv = sim::findPreset("RR-256");
    EXPECT_LT(pairVisible,
              cxmodel::schedulerOrgFromParams(conv).producersVisible);
}

} // namespace
} // namespace wsrs
