/**
 * @file
 * Minimal strict JSON syntax checker for tests. Validates that a string
 * is exactly one well-formed RFC 8259 JSON document — so `nan`/`inf`
 * spellings, trailing commas, unescaped control characters in strings,
 * bad escapes and trailing garbage all fail — without building a value
 * tree. This mirrors what Python's `json.load` (the parser behind
 * scripts/check_stats_schema.py) accepts, so a dump that lints clean
 * here round-trips through the real toolchain.
 */
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace wsrs::test {

namespace detail {

class JsonLinter
{
  public:
    explicit JsonLinter(std::string_view text) : text_(text) {}

    /** Empty string on success, "offset N: message" on the first error. */
    std::string
    lint()
    {
        skipWs();
        if (!value())
            return err_;
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON value");
        return err_;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &msg)
    {
        if (err_.empty())
            err_ = "offset " + std::to_string(pos_) + ": " + msg;
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool
    value()
    {
        if (++depth_ > kMaxDepth)
            return fail("nesting too deep");
        bool ok;
        if (atEnd()) {
            ok = fail("unexpected end of input");
        } else {
            switch (peek()) {
              case '{': ok = object(); break;
              case '[': ok = array(); break;
              case '"': ok = string(); break;
              case 't': ok = literal("true"); break;
              case 'f': ok = literal("false"); break;
              case 'n': ok = literal("null"); break;
              default:  ok = number(); break;
            }
        }
        --depth_;
        return ok;
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected object key string");
            if (!string())
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    static bool
    isHex(char c)
    {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    }

    bool
    string()
    {
        ++pos_; // opening '"'
        while (!atEnd()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                ++pos_;
                if (atEnd())
                    return fail("dangling escape");
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (atEnd() || !isHex(text_[pos_]))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' && e != 'r' &&
                           e != 't') {
                    return fail("invalid escape character");
                }
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool digit() const { return !atEnd() && peek() >= '0' && peek() <= '9'; }

    bool
    number()
    {
        if (peek() == '-')
            ++pos_;
        if (!digit())
            return fail("invalid number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (digit())
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (!digit())
                return fail("digits required after decimal point");
            while (digit())
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (!digit())
                return fail("digits required in exponent");
            while (digit())
                ++pos_;
        }
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string err_;
};

} // namespace detail

/**
 * Lint @p text as one strict JSON document.
 * @return empty string when valid, otherwise "offset N: message".
 */
inline std::string
jsonLint(std::string_view text)
{
    return detail::JsonLinter(text).lint();
}

} // namespace wsrs::test
