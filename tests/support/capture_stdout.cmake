# Run `${TOOL} --json` and capture its stdout into ${OUT}. ctest COMMAND
# lines have no shell, so redirection needs this -P helper.
execute_process(COMMAND ${TOOL} --json
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} --json failed with status ${rc}")
endif()
