/**
 * @file
 * Registry of the 12 calibrated SPEC CPU2000 stand-in profiles.
 *
 * The paper simulates 5 SPECint2000 (gzip, vpr, gcc, mcf, crafty) and
 * 7 SPECfp2000 (wupwise, swim, mgrid, applu, galgel, equake, facerec)
 * benchmarks. Each profile below encodes the published qualitative
 * behaviour of its benchmark (see profiles.cc for the per-benchmark
 * rationale); absolute IPCs are calibrated to the ranges of Figure 4.
 */
#pragma once

#include <string_view>
#include <vector>

#include "src/workload/profile.h"

namespace wsrs::workload {

/** All registered profiles, integer benchmarks first (paper order). */
const std::vector<BenchmarkProfile> &allProfiles();

/** The 5 SPECint2000 stand-ins in paper order. */
std::vector<BenchmarkProfile> integerProfiles();

/** The 7 SPECfp2000 stand-ins in paper order. */
std::vector<BenchmarkProfile> floatProfiles();

/** Look a profile up by name; wsrs::fatal on unknown names. */
const BenchmarkProfile &findProfile(std::string_view name);

} // namespace wsrs::workload
