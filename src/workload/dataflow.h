/**
 * @file
 * The shared dataflow-value semantics of the synthetic ISA.
 *
 * Both the in-order oracle and the out-of-order core "execute" micro-ops
 * with these functions; commit-time equality of the produced values proves
 * the core delivered architecturally-correct register renaming and memory
 * ordering. Commutative operations use an operand-order-insensitive value so
 * that allocation policies which swap operand order (the paper's
 * "commutative clusters") remain architecturally transparent.
 */
#pragma once

#include <cstdint>

#include "src/common/hash.h"
#include "src/isa/micro_op.h"

namespace wsrs::workload {

/** Initial architectural value of a logical register at trace start. */
inline std::uint64_t
initRegValue(LogReg r)
{
    return mix64(0xa11c0de + r);
}

/** Initial (never-written) content of a memory double-word. */
inline std::uint64_t
memInitValue(Addr addr)
{
    return mix64(addr * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull);
}

/**
 * Value stored to memory by a store micro-op with the given operands.
 * The field form exists so callers holding decomposed (structure-of-arrays)
 * micro-op state need not materialize a MicroOp.
 */
inline std::uint64_t
storeValue(Addr pc, std::uint64_t addr_val, std::uint64_t data_val)
{
    return executeHash(mix64(pc ^ 0x57075707ull), addr_val, data_val);
}

inline std::uint64_t
storeValue(const isa::MicroOp &op, std::uint64_t addr_val,
           std::uint64_t data_val)
{
    return storeValue(op.pc, addr_val, data_val);
}

/**
 * Register result of a micro-op, from its semantic fields.
 *
 * @param cls         the op class.
 * @param pc          the micro-op's PC.
 * @param commutative the micro-op's commutativity flag.
 * @param src1_val    value of the first register operand (0 if absent).
 * @param src2_val    value of the second register operand (0 if absent).
 * @param mem_val     for loads, the memory value read at the effective
 *                    address.
 */
inline std::uint64_t
execValue(isa::OpClass cls, Addr pc, bool commutative, std::uint64_t src1_val,
          std::uint64_t src2_val, std::uint64_t mem_val = 0)
{
    if (cls == isa::OpClass::Load)
        return mix64(mem_val + (pc << 1) + 1);
    const std::uint64_t salt =
        mix64((static_cast<std::uint64_t>(cls) << 56) ^ pc);
    if (commutative) {
        // Symmetric in (src1, src2) so physically swapped operand order
        // yields the same architectural result.
        return executeHash(salt, src1_val + src2_val,
                           mix64(src1_val) ^ mix64(src2_val));
    }
    return executeHash(salt, src1_val, src2_val);
}

/** Register result of a micro-op (must have a destination). */
inline std::uint64_t
execValue(const isa::MicroOp &op, std::uint64_t src1_val,
          std::uint64_t src2_val, std::uint64_t mem_val = 0)
{
    return execValue(op.op, op.pc, op.commutative, src1_val, src2_val,
                     mem_val);
}

} // namespace wsrs::workload
