#include "trace_generator.h"

#include <algorithm>

#include "src/common/log.h"

namespace wsrs::workload {

namespace {

/// Synthetic text segment base; PCs are 4 bytes apart.
constexpr Addr kPcBase = 0x0040'0000;
/// Base of the strided-stream data regions.
constexpr Addr kStreamBase = 0x1000'0000;
/// Maximum bytes reserved per stream region.
constexpr Addr kStreamRegionMax = 1u << 22;
/// Base of the random-access working-set region.
constexpr Addr kRandomBase = 0x4000'0000;
/// Number of recent load addresses remembered for store aliasing.
constexpr std::size_t kRecentLoads = 32;

} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               std::uint64_t seed)
    : profile_(profile),
      buildRng_(profile.seed ^ seed ^ 0xb1c2d3e4f5a6ull),
      rng_(profile.seed ^ seed ^ 0x0123456789abull)
{
    validateProfile();
    buildProgram();
    branchState_.assign(program_.size(), BranchState{});

    // Half of the footprint backs the streams, half the random region.
    const Addr region =
        std::min<Addr>(kStreamRegionMax,
                       std::max<Addr>(4096,
                                      profile_.workingSetBytes / 2 /
                                          std::max(1u, profile_.numStreams)));
    streamRegionBytes_ = region;
    streams_.resize(std::max(1u, profile_.numStreams));
    const Addr jitter_span =
        (kStreamRegionMax > region ? kStreamRegionMax - region : 64) / 64;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        // Spread stream bases uniformly within their slots so concurrently
        // swept arrays cover distinct cache sets (aligned bases would all
        // collide on the same sets).
        streams_[i].base = kStreamBase + i * kStreamRegionMax +
                           64 * buildRng_.below(jitter_span);
        streams_[i].next = streams_[i].base;
        streams_[i].stride = 8;
    }
    recentLoadAddrs_.assign(kRecentLoads, kRandomBase);
    recentStoreAddrs_.assign(kRecentLoads, kRandomBase + 8);
}

void
TraceGenerator::validateProfile() const
{
    const BenchmarkProfile &p = profile_;
    const double mix = p.fracLoad + p.fracStore + p.fracBranch + p.fracIntMul +
                       p.fracIntDiv + p.fracFpAdd + p.fracFpMul + p.fracFpDiv +
                       p.fracFpSqrt;
    if (mix > 1.0 + 1e-9)
        fatal("profile %s: instruction mix sums to %.3f > 1",
              p.name.c_str(), mix);
    if (p.fracBranch <= 0.0 || p.fracBranch >= 0.5)
        fatal("profile %s: fracBranch %.3f outside (0, 0.5)",
              p.name.c_str(), p.fracBranch);
    if (p.fracNoadic + p.fracMonadic > 1.0 + 1e-9)
        fatal("profile %s: arity fractions exceed 1", p.name.c_str());
    if (p.numInvariantRegs >= isa::kNumLogRegs / 2)
        fatal("profile %s: too many invariant registers (%u)",
              p.name.c_str(), p.numInvariantRegs);
    if (p.numSegments == 0 || p.meanLoopBlocks == 0 || p.meanTripCount < 2)
        fatal("profile %s: degenerate static-program shape", p.name.c_str());
    if (p.workingSetBytes < 4096)
        fatal("profile %s: working set below one page", p.name.c_str());
}

isa::OpClass
TraceGenerator::drawOpClass()
{
    // Branch sites are placed structurally (one per block); renormalize the
    // remaining mix over non-branch classes.
    const BenchmarkProfile &p = profile_;
    const double non_branch = 1.0 - p.fracBranch;
    double u = buildRng_.uniform() * non_branch;
    auto take = [&u](double f) {
        u -= f;
        return u < 0.0;
    };
    if (take(p.fracLoad)) return isa::OpClass::Load;
    if (take(p.fracStore)) return isa::OpClass::Store;
    if (take(p.fracIntMul)) return isa::OpClass::IntMul;
    if (take(p.fracIntDiv)) return isa::OpClass::IntDiv;
    if (take(p.fracFpAdd)) return isa::OpClass::FpAdd;
    if (take(p.fracFpMul)) return isa::OpClass::FpMul;
    if (take(p.fracFpDiv)) return isa::OpClass::FpDiv;
    if (take(p.fracFpSqrt)) return isa::OpClass::FpSqrt;
    return isa::OpClass::IntAlu;
}

LogReg
TraceGenerator::pickSource(bool allow_invariant)
{
    const unsigned n_inv = profile_.numInvariantRegs;
    const unsigned n_gen = isa::kNumLogRegs - n_inv;
    const auto use = [&](LogReg r) -> LogReg {
        pendingSrcDepth_ = std::max(pendingSrcDepth_, estDepth_[r]);
        return r;
    };
    const auto invariant = [&]() -> LogReg {
        if (n_inv > 0)
            return use(static_cast<LogReg>(buildRng_.below(n_inv)));
        return use(static_cast<LogReg>(n_inv + buildRng_.below(n_gen)));
    };

    const double u = buildRng_.uniform();
    // Chain roots: loop invariants and freshly loaded array elements. The
    // mix bounds the dependence-chain depth like real loop bodies do.
    if (allow_invariant && u < profile_.invariantFrac)
        return invariant();
    if (u < profile_.invariantFrac + profile_.loadValueFrac) {
        if (!blockLoadDsts_.empty())
            return use(
                blockLoadDsts_[buildRng_.below(blockLoadDsts_.size())]);
        return invariant();
    }
    // Computation chain: a recent destination, usually within the current
    // basic block (independent loop iterations); with probability
    // depCrossBlockFrac the whole history (loop-carried chains).
    const bool cross = buildRng_.chance(profile_.depCrossBlockFrac);
    const std::size_t window =
        cross ? recentDsts_.size() : recentDsts_.size() - blockStartDsts_;
    const std::uint64_t k = buildRng_.geometric(profile_.depGeomP);
    if (k <= window) {
        const LogReg cand = recentDsts_[recentDsts_.size() - k];
        // Bound the accumulated chain depth (the generator's ILP lever).
        if (cross || estDepth_[cand] <= profile_.maxChainDepth)
            return use(cand);
    }
    return invariant();
}

LogReg
TraceGenerator::lastLoadDest() const
{
    return lastLoadDst_;
}

void
TraceGenerator::emitBodyOp()
{
    const BenchmarkProfile &p = profile_;
    const unsigned n_inv = p.numInvariantRegs;
    const unsigned n_gen = isa::kNumLogRegs - n_inv;

    // Address registers are usually bases/induction values (invariants
    // here); computed addresses serialize the in-order address pipeline.
    auto pick_addr_src = [&]() -> LogReg {
        if (n_inv > 0 && buildRng_.chance(p.addrInvariantFrac))
            return static_cast<LogReg>(buildRng_.below(n_inv));
        return pickSource(true);
    };

    auto pick_dest = [&]() -> LogReg {
        LogReg d;
        if (buildRng_.chance(0.5)) {
            d = static_cast<LogReg>(n_inv + (nextGeneralDst_ % n_gen));
            ++nextGeneralDst_;
        } else {
            d = static_cast<LogReg>(n_inv + buildRng_.below(n_gen));
        }
        return d;
    };

    StaticOp s;
    s.pc = kPcBase + 4 * program_.size();
    s.op = drawOpClass();
    pendingSrcDepth_ = 0.0;

    switch (s.op) {
      case isa::OpClass::Load: {
        if (lastLoadDst_ != kNoLogReg &&
            buildRng_.chance(p.pointerChaseFrac)) {
            s.src1 = lastLoadDst_;
            s.addrKind = AddrKind::Random;
        } else if (buildRng_.chance(p.loadAfterStoreFrac)) {
            s.src1 = pick_addr_src();
            s.addrKind = AddrKind::AliasStore;
        } else {
            s.src1 = pick_addr_src();
            s.addrKind = buildRng_.chance(p.strideFrac) ? AddrKind::Stream
                                                        : AddrKind::Random;
            s.streamId = static_cast<std::uint16_t>(
                buildRng_.below(std::max(1u, p.numStreams)));
        }
        s.dst = pick_dest();
        lastLoadDst_ = s.dst;
        recentDsts_.push_back(s.dst);
        blockLoadDsts_.push_back(s.dst);
        break;
      }
      case isa::OpClass::Store: {
        if (buildRng_.chance(p.fracIndexedStore)) {
            // Decode-split indexed store: address-generation micro-op
            // followed by the store consuming its result.
            StaticOp ag;
            ag.pc = s.pc;
            ag.op = isa::OpClass::IntAlu;
            ag.src1 = pickSource(true);
            ag.src2 = pickSource(true);
            ag.dst = pick_dest();
            estDepth_[ag.dst] = pendingSrcDepth_ + 1.0;
            pendingSrcDepth_ = estDepth_[ag.dst];
            program_.push_back(ag);
            recentDsts_.push_back(ag.dst);
            s.pc = kPcBase + 4 * program_.size();
            s.src1 = ag.dst;
        } else {
            s.src1 = pick_addr_src();
        }
        s.src2 = pickSource(true);
        if (buildRng_.chance(p.storeAliasFrac)) {
            s.addrKind = AddrKind::AliasLoad;
        } else {
            s.addrKind = buildRng_.chance(p.strideFrac) ? AddrKind::Stream
                                                        : AddrKind::Random;
            s.streamId = static_cast<std::uint16_t>(
                buildRng_.below(std::max(1u, p.numStreams)));
        }
        break;
      }
      default: {
        // ALU / FP computational micro-op: draw the arity.
        const double u = buildRng_.uniform();
        if (u < p.fracNoadic) {
            // no register sources
        } else if (u < p.fracNoadic + p.fracMonadic) {
            s.src1 = pickSource(true);
        } else {
            s.src1 = pickSource(true);
            s.src2 = pickSource(true);
            s.commutative = buildRng_.chance(p.fracCommutative);
        }
        s.dst = pick_dest();
        recentDsts_.push_back(s.dst);
        break;
      }
    }
    if (s.dst != kNoLogReg) {
        estDepth_[s.dst] =
            pendingSrcDepth_ + static_cast<double>(isa::opLatency(s.op));
    }
    program_.push_back(s);
}

std::size_t
TraceGenerator::emitBranch(BranchKind kind)
{
    const BenchmarkProfile &p = profile_;
    StaticOp s;
    s.pc = kPcBase + 4 * program_.size();
    s.op = isa::OpClass::Branch;
    s.src1 = pickSource(true);
    s.branchKind = kind;
    switch (kind) {
      case BranchKind::Loop:
        s.tripCount = static_cast<std::uint32_t>(std::max<std::uint64_t>(
            2, buildRng_.range(p.meanTripCount / 2,
                               p.meanTripCount + p.meanTripCount / 2)));
        break;
      case BranchKind::Biased:
        s.takenProb = std::clamp(
            p.biasedTakenProb + (buildRng_.uniform() - 0.5) * 0.03, 0.0, 1.0);
        // Half of the biased sites are biased not-taken instead.
        if (buildRng_.chance(0.5))
            s.takenProb = 1.0 - s.takenProb;
        break;
      case BranchKind::Pattern:
        s.pattern = static_cast<std::uint16_t>(buildRng_.next());
        break;
      default:
        WSRS_PANIC("emitBranch with kind None");
    }
    program_.push_back(s);
    return program_.size() - 1;
}

void
TraceGenerator::buildProgram()
{
    const BenchmarkProfile &p = profile_;
    // One branch terminates each block, so the mean block body length that
    // realizes fracBranch is (1 - f) / f.
    const unsigned mean_block = static_cast<unsigned>(std::clamp(
        (1.0 - p.fracBranch) / p.fracBranch, 2.0, 48.0));

    for (unsigned seg = 0; seg < p.numSegments; ++seg) {
        // Segment preamble: write invariant registers outside the loop.
        const unsigned n_pre =
            std::max(1u, p.numInvariantRegs / p.numSegments);
        for (unsigned i = 0; i < n_pre && p.numInvariantRegs > 0; ++i) {
            StaticOp s;
            s.pc = kPcBase + 4 * program_.size();
            s.op = p.floatingPoint ? isa::OpClass::FpAdd
                                   : isa::OpClass::IntAlu;
            if (buildRng_.chance(0.5))
                s.src1 = pickSource(false);
            s.dst = static_cast<LogReg>(nextInvariant_ %
                                        p.numInvariantRegs);
            ++nextInvariant_;
            // Invariants are computed outside the loops they feed; at run
            // time they are ready long before their readers.
            estDepth_[s.dst] = 0.0;
            program_.push_back(s);
            recentDsts_.push_back(s.dst);
        }

        const std::uint32_t loop_start =
            static_cast<std::uint32_t>(program_.size());
        const unsigned n_blocks = static_cast<unsigned>(buildRng_.range(
            1, std::max(1u, 2 * p.meanLoopBlocks - 1)));

        // Forward branches to patch once the segment's loop-back index is
        // known: (site index, desired skip distance).
        std::vector<std::pair<std::size_t, unsigned>> pending;

        for (unsigned b = 0; b < n_blocks; ++b) {
            blockStartDsts_ = recentDsts_.size();
            blockLoadDsts_.clear();
            const unsigned len = static_cast<unsigned>(buildRng_.range(
                std::max(1u, mean_block / 2), mean_block + mean_block / 2));
            for (unsigned i = 0; i < len; ++i)
                emitBodyOp();
            if (b + 1 < n_blocks) {
                const BranchKind kind =
                    buildRng_.chance(p.branchBiasedFrac) ? BranchKind::Biased
                                                         : BranchKind::Pattern;
                const std::size_t idx = emitBranch(kind);
                pending.emplace_back(
                    idx, static_cast<unsigned>(buildRng_.range(1, 4)));
            }
        }
        const std::size_t loop_back = emitBranch(BranchKind::Loop);
        program_[loop_back].targetIdx = loop_start;

        for (const auto &[idx, skip] : pending) {
            program_[idx].targetIdx = static_cast<std::uint32_t>(
                std::min(idx + 1 + skip, loop_back));
        }
    }
    WSRS_ASSERT(!program_.empty());
}

bool
TraceGenerator::evalBranch(std::size_t idx)
{
    const StaticOp &s = program_[idx];
    BranchState &st = branchState_[idx];
    switch (s.branchKind) {
      case BranchKind::Loop:
        if (++st.count >= s.tripCount) {
            st.count = 0;
            return false;
        }
        return true;
      case BranchKind::Biased:
        return rng_.chance(s.takenProb);
      case BranchKind::Pattern: {
        bool bit = (s.pattern >> (st.count % 16)) & 1;
        ++st.count;
        if (rng_.chance(profile_.patternNoise))
            bit = !bit;
        return bit;
      }
      default:
        WSRS_PANIC("evalBranch on non-branch site");
    }
}

Addr
TraceGenerator::computeAddr(const StaticOp &s)
{
    switch (s.addrKind) {
      case AddrKind::Stream: {
        StreamState &st = streams_[s.streamId];
        if (rng_.chance(profile_.streamPeekFrac)) {
            // Re-read the current element (register-blocked reuse).
            return st.next > st.base ? st.next - st.stride : st.next;
        }
        Addr a = st.next;
        st.next += st.stride;
        if (st.next >= st.base + streamRegionBytes_)
            st.next = st.base;
        return a;
      }
      case AddrKind::Random: {
        const Addr words =
            std::max<Addr>(1, profile_.workingSetBytes / 2 / 8);
        // Temporal locality: most non-streaming references revisit a small
        // hot subset of the region.
        if (rng_.chance(profile_.randomHotFrac)) {
            const Addr hot_words = std::max<Addr>(1, std::min<Addr>(
                words / 8, 16384 / 8));
            return kRandomBase + 8 * rng_.below(hot_words);
        }
        return kRandomBase + 8 * rng_.below(words);
      }
      case AddrKind::AliasLoad:
        return recentLoadAddrs_[rng_.below(recentLoadAddrs_.size())];
      case AddrKind::AliasStore:
        return recentStoreAddrs_[rng_.below(recentStoreAddrs_.size())];
      default:
        WSRS_PANIC("computeAddr on non-memory site");
    }
}

isa::MicroOp
TraceGenerator::next()
{
    const StaticOp &s = program_[cursor_];
    isa::MicroOp m;
    m.seq = seq_++;
    m.pc = s.pc;
    m.op = s.op;
    m.src1 = s.src1;
    m.src2 = s.src2;
    m.dst = s.dst;
    m.commutative = s.commutative;

    if (s.op == isa::OpClass::Load || s.op == isa::OpClass::Store) {
        m.effAddr = computeAddr(s);
        if (s.op == isa::OpClass::Load) {
            recentLoadAddrs_[recentLoadPos_] = m.effAddr;
            recentLoadPos_ = (recentLoadPos_ + 1) % recentLoadAddrs_.size();
        } else {
            recentStoreAddrs_[recentStorePos_] = m.effAddr;
            recentStorePos_ =
                (recentStorePos_ + 1) % recentStoreAddrs_.size();
        }
    }

    if (s.op == isa::OpClass::Branch) {
        const bool taken = evalBranch(cursor_);
        m.taken = taken;
        m.target = program_[s.targetIdx].pc;
        cursor_ = taken ? s.targetIdx : cursor_ + 1;
    } else {
        ++cursor_;
    }
    if (cursor_ >= program_.size())
        cursor_ = 0;
    return m;
}

void
TraceGenerator::snapshot(ckpt::Writer &w) const
{
    // The restore target rebuilds the same static program from (profile,
    // seed); the program size cross-checks that contract.
    w.u64(program_.size());
    w.u64(rng_.stateWord(0));
    w.u64(rng_.stateWord(1));
    w.u32(cursor_);
    w.u64(seq_);
    w.u64(branchState_.size());
    for (const BranchState &st : branchState_)
        w.u32(st.count);
    w.u64(streams_.size());
    for (const StreamState &st : streams_) {
        w.u64(st.base);
        w.u64(st.next);
        w.u64(st.stride);
    }
    ckpt::writeVec(w, recentLoadAddrs_);
    w.u64(recentLoadPos_);
    ckpt::writeVec(w, recentStoreAddrs_);
    w.u64(recentStorePos_);
}

void
TraceGenerator::restore(ckpt::Reader &r)
{
    if (r.u64() != program_.size())
        r.fail("trace generator static-program size mismatch (different "
               "profile or seed)");
    const std::uint64_t s0 = r.u64();
    const std::uint64_t s1 = r.u64();
    rng_.setState(s0, s1);
    cursor_ = r.u32();
    if (cursor_ >= program_.size())
        r.fail("trace generator cursor out of range");
    seq_ = r.u64();
    if (r.u64() != branchState_.size())
        r.fail("trace generator branch-state size mismatch");
    for (BranchState &st : branchState_)
        st.count = r.u32();
    if (r.u64() != streams_.size())
        r.fail("trace generator stream count mismatch");
    for (StreamState &st : streams_) {
        st.base = r.u64();
        st.next = r.u64();
        st.stride = r.u64();
    }
    ckpt::readVecExact(r, recentLoadAddrs_, recentLoadAddrs_.size(),
                       "recent-load ring");
    recentLoadPos_ = static_cast<std::size_t>(r.u64());
    ckpt::readVecExact(r, recentStoreAddrs_, recentStoreAddrs_.size(),
                       "recent-store ring");
    recentStorePos_ = static_cast<std::size_t>(r.u64());
    if (recentLoadPos_ >= recentLoadAddrs_.size() ||
        recentStorePos_ >= recentStoreAddrs_.size())
        r.fail("trace generator alias-ring cursor out of range");
}

} // namespace wsrs::workload
