/**
 * @file
 * Abstract micro-op source consumed by the execution core: implemented by
 * the synthetic TraceGenerator and by TraceReader (pre-recorded traces),
 * so real traces in the micro-op format can drive the simulator.
 */
#pragma once

#include "src/isa/micro_op.h"

namespace wsrs::workload {

/** Infinite in-order stream of micro-ops. */
class MicroOpSource
{
  public:
    virtual ~MicroOpSource() = default;

    /** Produce the next dynamic micro-op (program order). */
    virtual isa::MicroOp next() = 0;
};

} // namespace wsrs::workload
