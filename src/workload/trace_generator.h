/**
 * @file
 * Deterministic synthetic micro-op trace generator.
 *
 * A BenchmarkProfile is expanded at construction into a small *static
 * program*: a sequence of static micro-op sites organized as segments of
 * loops made of basic blocks, each block terminated by a conditional branch
 * site with a fixed behaviour (loop-back counter, biased coin, or repeating
 * pattern). Register operands are allocated statically following the
 * profile's dependence-distance and invariant-operand rules, so the dynamic
 * stream exhibits stable, controllable dependence structure, and branch
 * predictors observe genuine per-PC history correlation.
 *
 * next() walks the static program like a tiny CFG interpreter and produces
 * an infinite dynamic stream: branch outcomes advance per-site state, loads
 * and stores draw effective addresses from per-site strided streams or a
 * random working set, and stores optionally alias recently loaded addresses.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/isa/micro_op.h"
#include "src/workload/profile.h"
#include "src/workload/source.h"

namespace wsrs::workload {

/** How a static branch site decides its outcome. */
enum class BranchKind : std::uint8_t {
    None,     ///< Not a branch.
    Loop,     ///< Taken (trip-1) times, then not taken once; repeats.
    Biased,   ///< Taken with a fixed per-site probability.
    Pattern,  ///< Fixed repeating bit pattern, with optional noise flips.
};

/** How a static memory site generates effective addresses. */
enum class AddrKind : std::uint8_t {
    None,        ///< Not a memory operation.
    Stream,      ///< Strided stream (per-site stream id).
    Random,      ///< Uniform over the profile's working set.
    AliasLoad,   ///< Store site re-using a recently loaded address.
    AliasStore,  ///< Load site re-reading a recently stored address.
};

/** One site of the generated static program. */
struct StaticOp
{
    Addr pc = 0;
    isa::OpClass op = isa::OpClass::IntAlu;
    LogReg src1 = kNoLogReg;
    LogReg src2 = kNoLogReg;
    LogReg dst = kNoLogReg;
    bool commutative = false;

    BranchKind branchKind = BranchKind::None;
    std::uint32_t targetIdx = 0;   ///< Static index if the branch is taken.
    std::uint32_t tripCount = 0;   ///< Loop sites: iterations per entry.
    double takenProb = 0.0;        ///< Biased sites.
    std::uint16_t pattern = 0;     ///< Pattern sites: 16-bit outcome cycle.

    AddrKind addrKind = AddrKind::None;
    std::uint16_t streamId = 0;    ///< Stream sites.
};

/**
 * Expands a BenchmarkProfile into an infinite deterministic micro-op stream.
 *
 * Two generators constructed from the same profile and seed produce
 * bit-identical streams, so the oracle and any number of simulated machines
 * can each own an independent generator over the same trace.
 */
class TraceGenerator : public MicroOpSource, public ckpt::Snapshotter
{
  public:
    /**
     * Build the static program and reset the dynamic walk.
     *
     * @param profile benchmark description; validated with wsrs::fatal.
     * @param seed extra seed XORed with the profile's own seed.
     */
    explicit TraceGenerator(const BenchmarkProfile &profile,
                            std::uint64_t seed = 0);

    /** Produce the next dynamic micro-op. */
    isa::MicroOp next() override;

    /** The generated static program (for inspection and tests). */
    const std::vector<StaticOp> &program() const { return program_; }

    /** Number of dynamic micro-ops produced so far. */
    SeqNum produced() const { return seq_; }

    /**
     * Checkpoint the dynamic walk (cursor, per-site branch state, stream
     * bases, alias rings, RNG). The static program is rebuilt by the
     * constructor, so the restore target must be constructed from the same
     * profile and seed; the program size is validated.
     */
    void snapshot(ckpt::Writer &w) const override;
    void restore(ckpt::Reader &r) override;

  private:
    void buildProgram();
    void validateProfile() const;

    /** Draw a non-branch op class from the profile mix. */
    isa::OpClass drawOpClass();
    /** Pick a source register per the dependence rules. */
    LogReg pickSource(bool allow_invariant);
    /** Pick the destination of the most recent load site, if any. */
    LogReg lastLoadDest() const;
    /** Emit one non-terminator op site; may emit 2 (indexed store). */
    void emitBodyOp();
    /** Emit a conditional branch site; target patched later. */
    std::size_t emitBranch(BranchKind kind);

    /** Evaluate a dynamic branch outcome and advance the site state. */
    bool evalBranch(std::size_t idx);
    /** Compute the dynamic effective address of a memory site. */
    Addr computeAddr(const StaticOp &s);

    BenchmarkProfile profile_;
    XorShiftRng buildRng_;   ///< Drives static-program construction.
    XorShiftRng rng_;        ///< Drives the dynamic walk.

    std::vector<StaticOp> program_;

    // Static-construction helpers.
    std::vector<LogReg> recentDsts_;    ///< Dests in static emission order.
    std::size_t blockStartDsts_ = 0;    ///< recentDsts_ size at block start.
    std::vector<LogReg> blockLoadDsts_; ///< Load dests in the current block.
    /** Estimated dataflow depth (latency cycles) of each register's
     *  current static producer chain; bounds chain growth. */
    std::array<double, isa::kNumLogRegs> estDepth_{};
    /** Sources chosen for the op being emitted (depth bookkeeping). */
    double pendingSrcDepth_ = 0.0;
    unsigned nextGeneralDst_ = 0;
    unsigned nextInvariant_ = 0;
    LogReg lastLoadDst_ = kNoLogReg;

    // Dynamic walk state.
    std::uint32_t cursor_ = 0;
    SeqNum seq_ = 0;
    struct BranchState { std::uint32_t count = 0; };
    std::vector<BranchState> branchState_;
    struct StreamState { Addr base = 0; Addr next = 0; Addr stride = 8; };
    std::vector<StreamState> streams_;
    Addr streamRegionBytes_ = 4096;
    std::vector<Addr> recentLoadAddrs_;  ///< Ring of recent load addresses.
    std::size_t recentLoadPos_ = 0;
    std::vector<Addr> recentStoreAddrs_; ///< Ring of recent store addresses.
    std::size_t recentStorePos_ = 0;
};

} // namespace wsrs::workload
