#include "profiles.h"

#include "src/common/log.h"

namespace wsrs::workload {

namespace {

/**
 * Per-benchmark rationale (sources: SPEC CPU2000 characterization
 * literature and the behaviour the paper itself reports in Figures 4/5):
 *
 * - gzip: compression; tight integer loops, highly predictable branches,
 *   small working set, many commutative logic ops. Mid-high IPC.
 * - vpr: place & route; branchier, moderately predictable, pointerish
 *   data accesses, medium working set. Mid IPC.
 * - gcc: compiler; very branchy, large instruction/data footprint,
 *   short dependence chains. Mid IPC.
 * - mcf: network simplex; pointer chasing over a multi-MB arena, L2
 *   misses dominate. IPC ~0.5 (lowest of the suite).
 * - crafty: chess; long stretches of bit-board logic (commutative
 *   and/or/xor), predictable control, small working set. Highest int IPC.
 * - wupwise: BLAS-heavy QCD; dense FP, long independent chains, few
 *   branches, strong loop invariants -> near-100% unbalancing (Fig. 5).
 * - swim: shallow-water stencil; streaming FP adds/muls over big arrays.
 * - mgrid: multigrid stencil; very high ILP, almost branch-free.
 * - applu: SSOR solver; FP with divides, medium ILP.
 * - galgel: Galerkin FEM; FP with shorter vectors, some int mix.
 * - equake: sparse FEM; irregular loads (indirection), branchier FP,
 *   lower IPC.
 * - facerec: image correlation; very regular high-ILP FP, strong
 *   invariants -> near-100% unbalancing and visible WSRS loss (Fig. 4/5).
 */
std::vector<BenchmarkProfile>
makeProfiles()
{
    std::vector<BenchmarkProfile> v;

    { // ---- SPECint2000 ----
        BenchmarkProfile p;
        p.name = "gzip";
        p.fracLoad = 0.22; p.fracStore = 0.08; p.fracBranch = 0.12;
        p.fracIntMul = 0.004; p.fracIntDiv = 0.001;
        p.fracNoadic = 0.06; p.fracMonadic = 0.42; p.fracCommutative = 0.60;
        p.depGeomP = 0.3; p.depCrossBlockFrac = 0.50; p.maxChainDepth = 40; p.addrInvariantFrac = 0.88; p.invariantFrac = 0.18; p.loadValueFrac = 0.22; p.numInvariantRegs = 6;
        p.branchBiasedFrac = 0.80; p.biasedTakenProb = 0.995;
        p.patternNoise = 0.003;
        p.numStreams = 6; p.strideFrac = 0.85; p.streamPeekFrac = 0.65; p.randomHotFrac = 0.8;
        p.workingSetBytes = 64u << 10; p.storeAliasFrac = 0.20;
        p.loadAfterStoreFrac = 0.10;
        p.meanTripCount = 60;
        p.seed = 0x671b;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "vpr";
        p.fracLoad = 0.27; p.fracStore = 0.10; p.fracBranch = 0.14;
        p.fracIntMul = 0.01; p.fracIntDiv = 0.002;
        p.fracFpAdd = 0.03; p.fracFpMul = 0.02;
        p.fracNoadic = 0.05; p.fracMonadic = 0.40; p.fracCommutative = 0.50;
        p.depGeomP = 0.4; p.depCrossBlockFrac = 0.45; p.maxChainDepth = 30; p.addrInvariantFrac = 0.8; p.invariantFrac = 0.15; p.loadValueFrac = 0.22; p.numInvariantRegs = 8;
        p.pointerChaseFrac = 0.06;
        p.branchBiasedFrac = 0.70; p.biasedTakenProb = 0.98;
        p.patternNoise = 0.012;
        p.numStreams = 4; p.strideFrac = 0.75; p.streamPeekFrac = 0.6; p.randomHotFrac = 0.6;
        p.workingSetBytes = 128u << 10; p.storeAliasFrac = 0.15;
        p.loadAfterStoreFrac = 0.08;
        p.meanTripCount = 25;
        p.seed = 0x0bb1;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gcc";
        p.fracLoad = 0.25; p.fracStore = 0.12; p.fracBranch = 0.16;
        p.fracIntMul = 0.003; p.fracIntDiv = 0.001;
        p.fracNoadic = 0.08; p.fracMonadic = 0.45; p.fracCommutative = 0.45;
        p.depGeomP = 0.38; p.depCrossBlockFrac = 0.40; p.maxChainDepth = 24; p.addrInvariantFrac = 0.82; p.invariantFrac = 0.15; p.loadValueFrac = 0.25; p.numInvariantRegs = 6;
        p.pointerChaseFrac = 0.04;
        p.branchBiasedFrac = 0.72; p.biasedTakenProb = 0.985;
        p.patternNoise = 0.008;
        p.numStreams = 4; p.strideFrac = 0.75; p.streamPeekFrac = 0.6; p.randomHotFrac = 0.7;
        p.workingSetBytes = 160u << 10; p.storeAliasFrac = 0.20;
        p.loadAfterStoreFrac = 0.10;
        p.numSegments = 12; p.meanLoopBlocks = 4; p.meanTripCount = 12;
        p.seed = 0x9cc0;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "mcf";
        p.fracLoad = 0.33; p.fracStore = 0.09; p.fracBranch = 0.16;
        p.fracIntMul = 0.003; p.fracIntDiv = 0.001;
        p.fracNoadic = 0.04; p.fracMonadic = 0.45; p.fracCommutative = 0.40;
        p.depGeomP = 0.4; p.depCrossBlockFrac = 0.7; p.maxChainDepth = 80; p.addrInvariantFrac = 0.55; p.invariantFrac = 0.1; p.loadValueFrac = 0.2; p.numInvariantRegs = 4;
        p.pointerChaseFrac = 0.05;
        p.branchBiasedFrac = 0.6; p.biasedTakenProb = 0.965;
        p.patternNoise = 0.025;
        p.numStreams = 2; p.strideFrac = 0.30; p.streamPeekFrac = 0.5; p.randomHotFrac = 0.65;
        p.workingSetBytes = 3u << 20; p.storeAliasFrac = 0.10;
        p.loadAfterStoreFrac = 0.04;
        p.meanTripCount = 15;
        p.seed = 0x3cf;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "crafty";
        p.fracLoad = 0.20; p.fracStore = 0.05; p.fracBranch = 0.11;
        p.fracIntMul = 0.005; p.fracIntDiv = 0.001;
        p.fracNoadic = 0.06; p.fracMonadic = 0.36; p.fracCommutative = 0.70;
        p.depGeomP = 0.25; p.depCrossBlockFrac = 0.50; p.maxChainDepth = 40; p.addrInvariantFrac = 0.9; p.invariantFrac = 0.22; p.loadValueFrac = 0.22; p.numInvariantRegs = 8;
        p.branchBiasedFrac = 0.80; p.biasedTakenProb = 0.995;
        p.patternNoise = 0.003;
        p.numStreams = 6; p.strideFrac = 0.85; p.streamPeekFrac = 0.65; p.randomHotFrac = 0.8;
        p.workingSetBytes = 64u << 10; p.storeAliasFrac = 0.15;
        p.loadAfterStoreFrac = 0.10;
        p.meanTripCount = 30;
        p.seed = 0xc4af;
        v.push_back(p);
    }

    { // ---- SPECfp2000 ----
        BenchmarkProfile p;
        p.name = "wupwise";
        p.floatingPoint = true;
        p.fracLoad = 0.28; p.fracStore = 0.10; p.fracBranch = 0.04;
        p.fracFpAdd = 0.21; p.fracFpMul = 0.18; p.fracFpDiv = 0.002;
        p.fracNoadic = 0.03; p.fracMonadic = 0.25; p.fracCommutative = 0.65;
        p.depGeomP = 0.25; p.depCrossBlockFrac = 0.06; p.maxChainDepth = 16; p.addrInvariantFrac = 0.93; p.invariantFrac = 0.3; p.loadValueFrac = 0.32; p.numInvariantRegs = 5;
        p.branchBiasedFrac = 0.88; p.biasedTakenProb = 0.996;
        p.patternNoise = 0.004;
        p.numStreams = 12; p.strideFrac = 0.92; p.streamPeekFrac = 0.6; p.randomHotFrac = 0.7;
        p.workingSetBytes = 384u << 10; p.storeAliasFrac = 0.08;
        p.loadAfterStoreFrac = 0.06;
        p.numSegments = 6; p.meanLoopBlocks = 5; p.meanTripCount = 120;
        p.seed = 0x3013e;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "swim";
        p.floatingPoint = true;
        p.fracLoad = 0.30; p.fracStore = 0.12; p.fracBranch = 0.03;
        p.fracFpAdd = 0.24; p.fracFpMul = 0.16; p.fracFpDiv = 0.001;
        p.fracNoadic = 0.03; p.fracMonadic = 0.22; p.fracCommutative = 0.60;
        p.depGeomP = 0.25; p.depCrossBlockFrac = 0.04; p.maxChainDepth = 12; p.addrInvariantFrac = 0.95; p.invariantFrac = 0.25; p.loadValueFrac = 0.35; p.numInvariantRegs = 6;
        p.branchBiasedFrac = 0.92; p.biasedTakenProb = 0.995;
        p.patternNoise = 0.002;
        p.numStreams = 14; p.strideFrac = 0.95; p.streamPeekFrac = 0.55; p.randomHotFrac = 0.7;
        p.workingSetBytes = 320u << 10; p.storeAliasFrac = 0.06;
        p.loadAfterStoreFrac = 0.04;
        p.numSegments = 4; p.meanLoopBlocks = 4; p.meanTripCount = 250;
        p.seed = 0x5019;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "mgrid";
        p.floatingPoint = true;
        p.fracLoad = 0.32; p.fracStore = 0.07; p.fracBranch = 0.02;
        p.fracFpAdd = 0.27; p.fracFpMul = 0.17;
        p.fracNoadic = 0.02; p.fracMonadic = 0.20; p.fracCommutative = 0.70;
        p.depGeomP = 0.22; p.depCrossBlockFrac = 0.03; p.maxChainDepth = 12; p.addrInvariantFrac = 0.95; p.invariantFrac = 0.25; p.loadValueFrac = 0.38; p.numInvariantRegs = 6;
        p.branchBiasedFrac = 0.94; p.biasedTakenProb = 0.995;
        p.patternNoise = 0.002;
        p.numStreams = 10; p.strideFrac = 0.94; p.streamPeekFrac = 0.6; p.randomHotFrac = 0.7;
        p.workingSetBytes = 384u << 10; p.storeAliasFrac = 0.04;
        p.loadAfterStoreFrac = 0.03;
        p.numSegments = 4; p.meanLoopBlocks = 5; p.meanTripCount = 300;
        p.seed = 0x36c1d;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "applu";
        p.floatingPoint = true;
        p.fracLoad = 0.28; p.fracStore = 0.10; p.fracBranch = 0.04;
        p.fracFpAdd = 0.21; p.fracFpMul = 0.16; p.fracFpDiv = 0.008;
        p.fracNoadic = 0.03; p.fracMonadic = 0.24; p.fracCommutative = 0.60;
        p.depGeomP = 0.3; p.depCrossBlockFrac = 0.1; p.maxChainDepth = 18; p.addrInvariantFrac = 0.92; p.invariantFrac = 0.25; p.loadValueFrac = 0.3; p.numInvariantRegs = 6;
        p.branchBiasedFrac = 0.88; p.biasedTakenProb = 0.993;
        p.patternNoise = 0.003;
        p.numStreams = 10; p.strideFrac = 0.9; p.streamPeekFrac = 0.6; p.randomHotFrac = 0.7;
        p.workingSetBytes = 384u << 10; p.storeAliasFrac = 0.08;
        p.loadAfterStoreFrac = 0.05;
        p.numSegments = 6; p.meanLoopBlocks = 6; p.meanTripCount = 100;
        p.seed = 0xa991;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "galgel";
        p.floatingPoint = true;
        p.fracLoad = 0.26; p.fracStore = 0.08; p.fracBranch = 0.05;
        p.fracFpAdd = 0.23; p.fracFpMul = 0.18; p.fracFpDiv = 0.002;
        p.fracNoadic = 0.03; p.fracMonadic = 0.26; p.fracCommutative = 0.62;
        p.depGeomP = 0.25; p.depCrossBlockFrac = 0.08; p.maxChainDepth = 24; p.addrInvariantFrac = 0.92; p.invariantFrac = 0.26; p.loadValueFrac = 0.3; p.numInvariantRegs = 6;
        p.branchBiasedFrac = 0.85; p.biasedTakenProb = 0.993;
        p.patternNoise = 0.005;
        p.numStreams = 8; p.strideFrac = 0.9; p.streamPeekFrac = 0.6; p.randomHotFrac = 0.7;
        p.workingSetBytes = 256u << 10; p.storeAliasFrac = 0.08;
        p.loadAfterStoreFrac = 0.05;
        p.numSegments = 8; p.meanLoopBlocks = 4; p.meanTripCount = 40;
        p.seed = 0x9a19e1;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "equake";
        p.floatingPoint = true;
        p.fracLoad = 0.31; p.fracStore = 0.08; p.fracBranch = 0.08;
        p.fracFpAdd = 0.16; p.fracFpMul = 0.14; p.fracFpDiv = 0.003;
        p.fracNoadic = 0.04; p.fracMonadic = 0.30; p.fracCommutative = 0.55;
        p.depGeomP = 0.35; p.depCrossBlockFrac = 0.3; p.maxChainDepth = 40; p.addrInvariantFrac = 0.75; p.invariantFrac = 0.18; p.loadValueFrac = 0.25; p.numInvariantRegs = 7;
        p.pointerChaseFrac = 0.03;
        p.branchBiasedFrac = 0.75; p.biasedTakenProb = 0.98;
        p.patternNoise = 0.008;
        p.numStreams = 6; p.strideFrac = 0.75; p.streamPeekFrac = 0.55; p.randomHotFrac = 0.75;
        p.workingSetBytes = 1u << 20; p.storeAliasFrac = 0.10;
        p.loadAfterStoreFrac = 0.05;
        p.numSegments = 8; p.meanLoopBlocks = 5; p.meanTripCount = 50;
        p.seed = 0xe9ae;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "facerec";
        p.floatingPoint = true;
        p.fracLoad = 0.29; p.fracStore = 0.06; p.fracBranch = 0.03;
        p.fracFpAdd = 0.27; p.fracFpMul = 0.20;
        p.fracNoadic = 0.02; p.fracMonadic = 0.20; p.fracCommutative = 0.68;
        p.depGeomP = 0.2; p.depCrossBlockFrac = 0.03; p.maxChainDepth = 14; p.addrInvariantFrac = 0.95; p.invariantFrac = 0.32; p.loadValueFrac = 0.38; p.numInvariantRegs = 4;
        p.branchBiasedFrac = 0.94; p.biasedTakenProb = 0.995;
        p.patternNoise = 0.002;
        p.numStreams = 12; p.strideFrac = 0.94; p.streamPeekFrac = 0.6; p.randomHotFrac = 0.7;
        p.workingSetBytes = 320u << 10; p.storeAliasFrac = 0.04;
        p.loadAfterStoreFrac = 0.03;
        p.numSegments = 4; p.meanLoopBlocks = 4; p.meanTripCount = 200;
        p.seed = 0xfacee;
        v.push_back(p);
    }

    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
allProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = makeProfiles();
    return profiles;
}

std::vector<BenchmarkProfile>
integerProfiles()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : allProfiles())
        if (!p.floatingPoint)
            out.push_back(p);
    return out;
}

std::vector<BenchmarkProfile>
floatProfiles()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : allProfiles())
        if (p.floatingPoint)
            out.push_back(p);
    return out;
}

const BenchmarkProfile &
findProfile(std::string_view name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return p;
    fatal("unknown benchmark profile '%.*s'",
          static_cast<int>(name.size()), name.data());
}

} // namespace wsrs::workload
