/**
 * @file
 * Binary micro-op trace files.
 *
 * Format (little-endian, fixed-size records):
 *
 *   offset 0: magic "WSRSTRC1" (8 bytes)
 *   offset 8: uint64 record count
 *   then per micro-op a 30-byte record:
 *     pc(8) effAddr(8) target(8) op(1) src1(1) src2(1) dst(1) flags(2)
 *   flags bit 0: commutative, bit 1: taken.
 *
 * Sequence numbers are implicit (record index). TraceReader implements
 * MicroOpSource; by default it rewinds at end of file so finite traces
 * can drive arbitrarily long simulations (set wrap=false to fatal at EOF
 * instead).
 */
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "src/workload/source.h"

namespace wsrs::workload {

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Open @p path for writing; wsrs::fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one micro-op (its seq is ignored; index is implicit). */
    void append(const isa::MicroOp &op);

    /** Finalize the header; called automatically by the destructor. */
    void close();

    std::uint64_t written() const { return count_; }

  private:
    std::ofstream out_;
    std::string path_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/**
 * MicroOpSource reading a binary trace file.
 *
 * On POSIX hosts the file is mapped read-only and records are decoded
 * straight out of the page cache — no per-record read() round trip, and
 * rewinding a wrapping trace is a cursor reset instead of a seek. When
 * mapping is unavailable (or fails) the reader falls back to buffered
 * stream reads with identical behavior and diagnostics.
 */
class TraceReader : public MicroOpSource
{
  public:
    /**
     * Open @p path; wsrs::fatal on missing file or bad magic.
     * @param wrap rewind at end of file (default) instead of failing.
     */
    explicit TraceReader(const std::string &path, bool wrap = true);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    isa::MicroOp next() override;

    std::uint64_t records() const { return count_; }
    std::uint64_t produced() const { return produced_; }

    /** Whether the zero-copy mapped path is active (telemetry/tests). */
    bool mapped() const { return map_ != nullptr; }

  private:
    std::ifstream in_;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t cursor_ = 0;    ///< Record index of the next read.
    std::uint64_t produced_ = 0;  ///< Micro-ops handed out (seq numbers).
    bool wrap_;
    const std::uint8_t *map_ = nullptr;  ///< Mapped file, or nullptr.
    std::size_t mapLen_ = 0;
};

} // namespace wsrs::workload
