#include "trace_io.h"

#include <array>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define WSRS_TRACE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "src/common/log.h"

namespace wsrs::workload {

namespace {

constexpr char kMagic[8] = {'W', 'S', 'R', 'S', 'T', 'R', 'C', '1'};
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 30;

void
encodeU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
decodeU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

std::array<std::uint8_t, kRecordBytes>
encodeRecord(const isa::MicroOp &op)
{
    std::array<std::uint8_t, kRecordBytes> rec{};
    encodeU64(&rec[0], op.pc);
    encodeU64(&rec[8], op.effAddr);
    encodeU64(&rec[16], op.target);
    rec[24] = static_cast<std::uint8_t>(op.op);
    rec[25] = op.src1;
    rec[26] = op.src2;
    rec[27] = op.dst;
    rec[28] = static_cast<std::uint8_t>((op.commutative ? 1 : 0) |
                                        (op.taken ? 2 : 0));
    rec[29] = 0;
    return rec;
}

isa::MicroOp
decodeRecord(const std::array<std::uint8_t, kRecordBytes> &rec,
             const std::string &path, std::uint64_t byte_offset)
{
    isa::MicroOp op;
    op.pc = decodeU64(&rec[0]);
    op.effAddr = decodeU64(&rec[8]);
    op.target = decodeU64(&rec[16]);
    if (rec[24] >= isa::kNumOpClasses)
        fatalIo("trace file '%s' is corrupt: invalid op class %u at byte "
              "offset %llu",
              path.c_str(), rec[24],
              static_cast<unsigned long long>(byte_offset + 24));
    op.op = static_cast<isa::OpClass>(rec[24]);
    op.src1 = rec[25];
    op.src2 = rec[26];
    op.dst = rec[27];
    op.commutative = rec[28] & 1;
    op.taken = rec[28] & 2;
    return op;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path)
{
    if (!out_)
        fatalIo("cannot open trace file '%s' for writing", path.c_str());
    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    encodeU64(header + 8, 0);  // patched in close()
    out_.write(reinterpret_cast<const char *>(header), kHeaderBytes);
}

TraceWriter::~TraceWriter()
{
    if (!closed_)
        close();
}

void
TraceWriter::append(const isa::MicroOp &op)
{
    WSRS_ASSERT(!closed_);
    const auto rec = encodeRecord(op);
    out_.write(reinterpret_cast<const char *>(rec.data()), rec.size());
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_.seekp(8);
    std::uint8_t buf[8];
    encodeU64(buf, count_);
    out_.write(reinterpret_cast<const char *>(buf), 8);
    out_.flush();
    if (!out_)
        fatalIo("error writing trace file '%s'", path_.c_str());
    out_.close();
}

TraceReader::TraceReader(const std::string &path, bool wrap)
    : in_(path, std::ios::binary), path_(path), wrap_(wrap)
{
    if (!in_)
        fatalIo("cannot open trace file '%s'", path.c_str());

    // Size the file up front so truncation is reported as an explicit
    // error (with the offending byte offset) instead of a short read
    // surfacing later, mid-simulation.
    in_.seekg(0, std::ios::end);
    const auto fileSize = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0);

#ifdef WSRS_TRACE_MMAP
    // Map the whole file read-only; every validity check below runs
    // against the mapped bytes exactly as it would against stream reads.
    // A mapping failure (exotic filesystem, size 0) falls back silently.
    if (fileSize > 0) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            void *m = ::mmap(nullptr, static_cast<std::size_t>(fileSize),
                             PROT_READ, MAP_PRIVATE, fd, 0);
            ::close(fd);
            if (m != MAP_FAILED) {
                map_ = static_cast<const std::uint8_t *>(m);
                mapLen_ = static_cast<std::size_t>(fileSize);
            }
        }
    }
#endif

    if (fileSize < kHeaderBytes)
        fatalIo("trace file '%s' is truncated: %llu bytes, need %zu for the "
              "header",
              path.c_str(), static_cast<unsigned long long>(fileSize),
              kHeaderBytes);
    std::uint8_t header[kHeaderBytes];
    in_.read(reinterpret_cast<char *>(header), kHeaderBytes);
    if (!in_ || std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        fatalIo("'%s' is not a wsrs trace file (bad magic)", path.c_str());
    count_ = decodeU64(header + 8);
    if (count_ == 0)
        fatalIo("trace file '%s' contains no records", path.c_str());

    const std::uint64_t need = kHeaderBytes + count_ * kRecordBytes;
    if (fileSize < need)
        fatalIo("trace file '%s' is truncated: header declares %llu records "
              "(%llu bytes) but the file ends at byte offset %llu",
              path.c_str(), static_cast<unsigned long long>(count_),
              static_cast<unsigned long long>(need),
              static_cast<unsigned long long>(fileSize));
    if (fileSize > need)
        fatalIo("trace file '%s' is corrupt: %llu trailing bytes after the "
              "last record (record region ends at byte offset %llu)",
              path.c_str(), static_cast<unsigned long long>(fileSize - need),
              static_cast<unsigned long long>(need));
}

TraceReader::~TraceReader()
{
#ifdef WSRS_TRACE_MMAP
    if (map_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(map_), mapLen_);
#endif
}

isa::MicroOp
TraceReader::next()
{
    if (cursor_ >= count_) {
        if (!wrap_)
            fatalIo("trace file '%s' exhausted after %llu records",
                  path_.c_str(), static_cast<unsigned long long>(count_));
        if (map_ == nullptr) {
            in_.clear();
            in_.seekg(kHeaderBytes);
        }
        cursor_ = 0;
    }
    const std::uint64_t offset = kHeaderBytes + cursor_ * kRecordBytes;
    std::array<std::uint8_t, kRecordBytes> rec;
    if (map_ != nullptr) {
        // Constructor-validated geometry guarantees the record is in range.
        std::memcpy(rec.data(), map_ + offset, kRecordBytes);
    } else {
        in_.read(reinterpret_cast<char *>(rec.data()), rec.size());
        if (!in_)
            fatalIo("error reading trace file '%s': record %llu at byte "
                  "offset %llu is unreadable (truncated or I/O error)",
                  path_.c_str(), static_cast<unsigned long long>(cursor_),
                  static_cast<unsigned long long>(offset));
    }
    ++cursor_;
    isa::MicroOp op = decodeRecord(rec, path_, offset);
    op.seq = produced_++;
    return op;
}

} // namespace wsrs::workload
