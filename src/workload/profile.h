/**
 * @file
 * Statistical description of a synthetic benchmark.
 *
 * The paper evaluates 12 SPEC CPU2000 benchmarks on Sparc ref inputs. Those
 * traces are not redistributable, so each benchmark is replaced by a
 * *profile*: the set of statistical knobs that determine the properties the
 * simulated mechanisms are sensitive to — instruction mix, operand arity and
 * commutativity, register-dependence distances, long-lived invariant
 * operands, branch predictability, and memory footprint/locality. The
 * generator (TraceGenerator) expands a profile into a deterministic dynamic
 * micro-op stream with a realistic static-program structure (loops, static
 * branch sites, strided and pointer-chasing reference streams).
 */
#pragma once

#include <cstdint>
#include <string>

namespace wsrs::workload {

/** All knobs describing one synthetic benchmark. Fractions are in [0,1]. */
struct BenchmarkProfile
{
    std::string name;          ///< e.g. "gzip".
    bool floatingPoint = false; ///< SPECfp (true) or SPECint (false).

    /// @name Dynamic instruction mix (remainder of 1.0 is IntAlu).
    /// @{
    double fracLoad = 0.25;
    double fracStore = 0.10;
    double fracBranch = 0.12;
    double fracIntMul = 0.01;
    double fracIntDiv = 0.002;
    double fracFpAdd = 0.0;
    double fracFpMul = 0.0;
    double fracFpDiv = 0.0;
    double fracFpSqrt = 0.0;
    /// @}

    /// @name Operand structure of ALU/FP micro-ops.
    /// @{
    double fracNoadic = 0.05;   ///< No register source (load-immediate, ...).
    double fracMonadic = 0.40;  ///< Exactly one register source.
    double fracCommutative = 0.55; ///< Of dyadic ops: operands swappable.
    /// @}

    /// Fraction of stores emitted as an address-generation micro-op plus a
    /// store micro-op (the paper's decode-split of 3-register-operand
    /// instructions, section 5.1.1).
    double fracIndexedStore = 0.15;

    /// @name Register-dependence structure.
    /// @{
    /// Geometric parameter of the producer-distance distribution: a source
    /// operand reads the destination of the micro-op emitted k static slots
    /// earlier, k ~ 1 + Geometric(depGeomP). Larger values mean tighter
    /// dependence chains (lower ILP).
    double depGeomP = 0.35;
    /// Probability that a dependence may reach beyond the current basic
    /// block (and hence across loop iterations, serializing them). Loop
    /// codes with independent iterations have low values; pointer/control
    /// codes higher ones. Sources that would reach outside their window
    /// read an invariant register instead, keeping iterations independent.
    double depCrossBlockFrac = 0.3;
    /// Bound on the accumulated dataflow depth (in latency cycles) of any
    /// computation chain; a source whose producer chain is already deeper
    /// reads a chain root instead. This is the generator's direct ILP
    /// lever: real loop bodies have expression trees of bounded depth.
    double maxChainDepth = 24.0;
    /// Probability that a source operand reads a long-lived invariant
    /// register instead (compiler-held loop invariants). High values create
    /// the cluster-workload unbalancing the paper observes on SPECfp.
    double invariantFrac = 0.10;
    unsigned numInvariantRegs = 8; ///< How many registers hold invariants.
    /// Probability that a source operand reads a recent load result (array
    /// element feeding arithmetic). Loads root the dependence chains — their
    /// own operands are mostly bases/induction values — so this knob, with
    /// invariantFrac, bounds the depth of computation chains the way real
    /// loop bodies do.
    double loadValueFrac = 0.20;
    /// Fraction of loads whose address register is a preceding load's
    /// result (pointer chasing, e.g. mcf).
    double pointerChaseFrac = 0.0;
    /// Probability that a memory op's address register is a base/induction
    /// value (invariant, ready early) rather than a computed value. Since
    /// addresses are computed in order (paper section 5.2), low values
    /// serialize the memory stream.
    double addrInvariantFrac = 0.85;
    /// @}

    /// @name Static program shape.
    ///
    /// Basic-block length is derived from fracBranch (one branch terminates
    /// each block), so it is not a separate knob.
    /// @{
    unsigned numSegments = 8;      ///< Outer segments (loop nests).
    unsigned meanLoopBlocks = 6;   ///< Mean basic blocks per loop body.
    unsigned meanTripCount = 50;   ///< Mean loop trip count.
    /// @}

    /// @name Branch behaviour (per static conditional branch site).
    /// @{
    double branchBiasedFrac = 0.70;  ///< Biased sites (vs. patterned sites).
    double biasedTakenProb = 0.92;   ///< Taken probability of a biased site.
    /// Random flip probability added to *patterned* sites; raises the floor
    /// of achievable prediction accuracy.
    double patternNoise = 0.02;
    /// @}

    /// @name Memory reference behaviour.
    /// @{
    unsigned numStreams = 8;            ///< Distinct strided streams.
    double strideFrac = 0.75;           ///< Accesses that follow a stream.
    /// Fraction of stream accesses that re-read the current element
    /// instead of advancing (register-blocked stencil reuse); raises the
    /// spatial hit rate the way real loop nests do.
    double streamPeekFrac = 0.5;
    /// Total data footprint; half backs the strided streams, half the
    /// random-access region.
    std::uint64_t workingSetBytes = 1u << 20;
    /// Fraction of random-region accesses that stay within a small hot
    /// subset (temporal locality of non-streaming references).
    double randomHotFrac = 0.7;
    /// Fraction of stores directed at a recently loaded address (enables
    /// store-to-load conflicts and forwarding).
    double storeAliasFrac = 0.20;
    /// Fraction of loads directed at a recently stored address (spills and
    /// reloads; exercises store-to-load forwarding).
    double loadAfterStoreFrac = 0.05;
    /// @}

    std::uint64_t seed = 0x5eed;   ///< Base RNG seed for this benchmark.
};

} // namespace wsrs::workload
