/**
 * @file
 * In-order architectural executor used as the golden reference.
 *
 * The oracle executes the micro-op stream strictly in program order against
 * the dataflow-value semantics of dataflow.h. The out-of-order core must
 * produce the same destination value for every committed micro-op; the
 * integration tests compare them instruction by instruction.
 */
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/isa/micro_op.h"
#include "src/workload/dataflow.h"

namespace wsrs::workload {

/** Golden in-order executor over architectural register and memory state. */
class OracleExecutor : public ckpt::Snapshotter
{
  public:
    OracleExecutor()
    {
        for (unsigned r = 0; r < isa::kNumLogRegs; ++r)
            regs_[r] = initRegValue(static_cast<LogReg>(r));
    }

    /**
     * Execute one micro-op in program order.
     *
     * @return the value written to the destination register, or 0 when the
     *         micro-op has no destination (stores, branches).
     */
    std::uint64_t
    execute(const isa::MicroOp &op)
    {
        const std::uint64_t s1 =
            op.src1 != kNoLogReg ? regs_[op.src1] : 0;
        const std::uint64_t s2 =
            op.src2 != kNoLogReg ? regs_[op.src2] : 0;
        if (op.isStore()) {
            mem_[op.effAddr] = storeValue(op, s1, s2);
            return 0;
        }
        std::uint64_t result = 0;
        if (op.hasDest()) {
            const std::uint64_t mv = op.isLoad() ? loadMem(op.effAddr) : 0;
            result = execValue(op, s1, s2, mv);
            regs_[op.dst] = result;
        }
        return result;
    }

    /** Current architectural value of a logical register. */
    std::uint64_t reg(LogReg r) const { return regs_[r]; }

    /** Current memory value at an address (init pattern if never stored). */
    std::uint64_t
    loadMem(Addr a) const
    {
        const auto it = mem_.find(a);
        return it != mem_.end() ? it->second : memInitValue(a);
    }

    void
    snapshot(ckpt::Writer &w) const override
    {
        for (const std::uint64_t v : regs_)
            w.u64(v);
        // Sort the sparse memory image so snapshot bytes are deterministic
        // regardless of the hash table's iteration order.
        std::vector<std::pair<Addr, std::uint64_t>> img(mem_.begin(),
                                                        mem_.end());
        std::sort(img.begin(), img.end());
        w.u64(img.size());
        for (const auto &[a, v] : img) {
            w.u64(a);
            w.u64(v);
        }
    }

    void
    restore(ckpt::Reader &r) override
    {
        for (std::uint64_t &v : regs_)
            v = r.u64();
        mem_.clear();
        const std::uint64_t n = r.u64();
        mem_.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const Addr a = r.u64();
            mem_[a] = r.u64();
        }
    }

  private:
    std::array<std::uint64_t, isa::kNumLogRegs> regs_{};
    std::unordered_map<Addr, std::uint64_t> mem_;
};

} // namespace wsrs::workload
