#include "presets.h"

#include "src/common/log.h"

namespace wsrs::sim {

namespace {

/** Shared 8-way 4-cluster shell. */
core::CoreParams
baseMachine()
{
    core::CoreParams p;
    p.numClusters = 4;
    p.fetchWidth = 8;
    p.commitWidth = 8;
    p.issuePerCluster = 2;
    p.clusterWindow = 56;
    p.lsqSize = 96;
    return p;
}

} // namespace

core::CoreParams
presetConventional(unsigned num_regs)
{
    core::CoreParams p = baseMachine();
    p.name = "RR-" + std::to_string(num_regs);
    p.numPhysRegs = num_regs;
    p.mode = core::RegFileMode::Conventional;
    p.policy = core::AllocPolicy::RoundRobin;
    p.renameImpl = core::RenameImpl::ExactCount;
    p.frontEndDepth = 11;  // min penalty 11 + 1 + 4 + 1 = 17
    p.regReadStages = 4;
    return p;
}

core::CoreParams
presetWriteSpec(unsigned num_regs, core::RenameImpl impl)
{
    core::CoreParams p = baseMachine();
    p.name = "WSRR-" + std::to_string(num_regs);
    p.numPhysRegs = num_regs;
    p.mode = core::RegFileMode::WriteSpec;
    p.policy = core::AllocPolicy::RoundRobin;
    p.renameImpl = impl;
    // Static allocation: the free lists are read early, no extra stage for
    // either renaming implementation (paper 2.4); the register read
    // pipeline is one cycle shorter -> min penalty 16.
    p.frontEndDepth = 11;
    p.regReadStages = 3;
    return p;
}

core::CoreParams
presetWriteSpecPools(unsigned num_regs)
{
    core::CoreParams p = baseMachine();
    p.name = "WSP-" + std::to_string(num_regs);
    p.numPhysRegs = num_regs;
    p.mode = core::RegFileMode::WriteSpecPools;
    p.policy = core::AllocPolicy::RoundRobin;
    p.renameImpl = core::RenameImpl::ExactCount;
    // The pool of an instruction is known at decode (predecoded bits in
    // the instruction cache, paper 2.4): no extra rename stage, same
    // shortened register read as cluster-level WS.
    p.frontEndDepth = 11;
    p.regReadStages = 3;
    return p;
}

namespace {

core::CoreParams
wsrsBase(unsigned num_regs, core::RenameImpl impl)
{
    core::CoreParams p = baseMachine();
    p.numPhysRegs = num_regs;
    p.mode = core::RegFileMode::Wsrs;
    p.renameImpl = impl;
    // WSRS register read pipeline is two cycles shorter than conventional;
    // the subset-target computation costs 1 (Impl-1) or 3 (Impl-2) extra
    // front-end stages (paper 3.2) -> min penalties 16 and 18.
    p.regReadStages = 2;
    p.frontEndDepth =
        impl == core::RenameImpl::OverPickRecycle ? 12 : 14;
    return p;
}

} // namespace

core::CoreParams
presetWsrsRc(unsigned num_regs, core::RenameImpl impl)
{
    core::CoreParams p = wsrsBase(num_regs, impl);
    p.name = "WSRS-RC-" + std::to_string(num_regs);
    p.policy = core::AllocPolicy::RandomCommutative;
    p.commutativeFus = true;
    return p;
}

core::CoreParams
presetWsrsRm(unsigned num_regs, core::RenameImpl impl)
{
    core::CoreParams p = wsrsBase(num_regs, impl);
    p.name = "WSRS-RM-" + std::to_string(num_regs);
    p.policy = core::AllocPolicy::RandomMonadic;
    p.commutativeFus = false;
    return p;
}

core::CoreParams
presetWsrsDepAware(unsigned num_regs)
{
    core::CoreParams p = wsrsBase(num_regs, core::RenameImpl::ExactCount);
    p.name = "WSRS-DEP-" + std::to_string(num_regs);
    p.policy = core::AllocPolicy::DependenceAware;
    p.commutativeFus = true;
    return p;
}

core::CoreParams
presetMonolithic8Way(unsigned num_regs)
{
    core::CoreParams p = baseMachine();
    p.name = "MONO-" + std::to_string(num_regs);
    p.numPhysRegs = num_regs;
    p.mode = core::RegFileMode::Conventional;
    p.policy = core::AllocPolicy::RoundRobin;
    p.numClusters = 1;
    p.issuePerCluster = 8;
    p.lsusPerCluster = 4;
    p.fpusPerCluster = 4;
    p.alusPerCluster = 8;
    p.clusterWindow = 224;
    p.ffScope = core::FastForwardScope::Complete;
    // Table 1 noWS-M: 5 register-read stages at the simulated clock ->
    // minimum misprediction penalty 18 at the same frequency. (The whole
    // point of the paper: this machine could not actually reach that
    // frequency.)
    p.frontEndDepth = 11;
    p.regReadStages = 5;
    return p;
}

core::CoreParams
presetConventional4Way(unsigned num_regs)
{
    core::CoreParams p = baseMachine();
    p.name = "RR4W-" + std::to_string(num_regs);
    p.numPhysRegs = num_regs;
    p.mode = core::RegFileMode::Conventional;
    p.policy = core::AllocPolicy::RoundRobin;
    p.numClusters = 2;
    p.fetchWidth = 4;
    p.commitWidth = 4;
    p.clusterWindow = 56;
    p.frontEndDepth = 11;
    p.regReadStages = 3;  // Table 1 noWS-2 at the simulated clock.
    return p;
}

core::CoreParams
presetForMode(core::RegFileMode mode, core::AllocPolicy policy,
              unsigned num_regs, core::RenameImpl impl)
{
    core::CoreParams p;
    switch (mode) {
    case core::RegFileMode::Conventional:
        p = presetConventional(num_regs);
        p.renameImpl = impl;
        break;
    case core::RegFileMode::WriteSpec:
        p = presetWriteSpec(num_regs, impl);
        break;
    case core::RegFileMode::WriteSpecPools:
        p = presetWriteSpecPools(num_regs);
        p.renameImpl = impl;
        break;
    case core::RegFileMode::Wsrs:
        p = wsrsBase(num_regs, impl);
        p.name = "WSRS-" + std::to_string(num_regs);
        break;
    }
    p.policy = policy;
    // RC exploits the functional units' ability to execute both operand
    // orders; the dependence-aware extension assumes the same hardware.
    p.commutativeFus = policy == core::AllocPolicy::RandomCommutative ||
                       policy == core::AllocPolicy::DependenceAware;
    return p;
}

core::CoreParams
findPreset(std::string_view label)
{
    if (label == "RR-256")
        return presetConventional(256);
    if (label == "WSRR-384")
        return presetWriteSpec(384);
    if (label == "WSRR-512")
        return presetWriteSpec(512);
    if (label == "WSP-512")
        return presetWriteSpecPools(512);
    if (label == "WSRS-RC-384")
        return presetWsrsRc(384);
    if (label == "WSRS-RC-512")
        return presetWsrsRc(512);
    if (label == "WSRS-RM-512")
        return presetWsrsRm(512);
    if (label == "WSRS-DEP-512")
        return presetWsrsDepAware(512);
    if (label == "MONO-256")
        return presetMonolithic8Way(256);
    if (label == "MONO-320")
        return presetMonolithic8Way(320);
    if (label == "RR4W-128")
        return presetConventional4Way(128);
    fatal("unknown machine preset '%.*s'", static_cast<int>(label.size()),
          label.data());
}

std::vector<std::string>
figure4Presets()
{
    return {"RR-256",      "WSRR-384",    "WSRR-512",
            "WSRS-RC-384", "WSRS-RC-512", "WSRS-RM-512"};
}

memory::HierarchyParams
findMemPreset(std::string_view label)
{
    memory::HierarchyParams p;
    if (label == "constant")
        return p;
    if (label == "dram") {
        p.model = memory::MemModel::Dram;
        return p;
    }
    if (label == "dram-closed") {
        p.model = memory::MemModel::Dram;
        p.dram.closedPage = true;
        return p;
    }
    fatal("unknown memory model preset '%.*s' (constant | dram | "
          "dram-closed)",
          static_cast<int>(label.size()), label.data());
}

std::vector<std::string>
memPresets()
{
    return {"constant", "dram", "dram-closed"};
}

} // namespace wsrs::sim
