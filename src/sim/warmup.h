/**
 * @file
 * Warm-up snapshot construction and configuration hashing.
 *
 * A warm-up snapshot (checkpoint kind "warmup") captures the
 * *machine-independent* warm state of a benchmark: the memory hierarchy and
 * the branch predictor after the profile's first warmupUops micro-ops have
 * streamed through them functionally (no core timing involved). Because the
 * warmed state depends only on the trace and the memory/predictor
 * configuration — never on the core preset — one snapshot per benchmark
 * serves every machine configuration of a sweep, replacing N core-timed
 * warm-up phases with one cheap functional pass (see runner::SweepRunner's
 * reuseWarmup option and docs/checkpointing.md).
 *
 * The key/meta hashes here bind snapshots to the configuration slice that
 * shaped them, so restoring against a mismatched profile, seed, warm-up
 * length, memory geometry or predictor fails loudly up front.
 */
#pragma once

#include <cstdint>
#include <string>

#include "src/bpred/predictor.h"
#include "src/memory/hierarchy.h"
#include "src/sim/simulator.h"
#include "src/workload/profile.h"

namespace wsrs::sim {

/**
 * Cache key and meta-hash of a warm-up snapshot: covers everything that
 * shapes the warmed state (profile knobs, trace seed, warm-up length,
 * memory-hierarchy parameters, predictor kind) and deliberately excludes
 * the core configuration — machine independence is the point of reuse.
 */
std::uint64_t warmupKeyHash(const workload::BenchmarkProfile &profile,
                            const SimConfig &config);

/**
 * Meta-hash binding a full-simulation checkpoint (kind "full-sim") to its
 * complete configuration, core preset included.
 */
std::uint64_t fullCheckpointMetaHash(
    const workload::BenchmarkProfile &profile, const SimConfig &config);

/**
 * Build a warm-up snapshot blob for (profile, config): stream the first
 * config.warmupUops micro-ops of TraceGenerator(profile, config.seed)
 * through a fresh memory hierarchy and predictor, then serialize both into
 * a kind="warmup" checkpoint container. Deterministic: identical inputs
 * produce byte-identical blobs.
 */
std::string buildWarmupSnapshot(const workload::BenchmarkProfile &profile,
                                const SimConfig &config);

/**
 * Restore @p mem and @p predictor from a blob produced by
 * buildWarmupSnapshot under the same (profile, config) key; fatal on kind,
 * hash or integrity mismatch. @p origin names the blob in diagnostics.
 */
void restoreWarmupSnapshot(const std::string &blob, const std::string &origin,
                           const workload::BenchmarkProfile &profile,
                           const SimConfig &config,
                           memory::MemoryHierarchy &mem,
                           bpred::BranchPredictor &predictor);

} // namespace wsrs::sim
