/**
 * @file
 * Named machine configurations of the paper's Section 5.
 *
 * All machines are 8-way, 4-cluster, 2-way-issue-per-cluster with 56
 * in-flight micro-ops per cluster. They differ in register-file mode,
 * physical register count, allocation policy and pipeline depths:
 *
 * | preset       | mode  | regs | policy | frontEnd | regRead | penalty |
 * |--------------|-------|------|--------|----------|---------|---------|
 * | RR-256       | conv. | 256  | RR     | 11       | 4       | 17      |
 * | WSRR-384/512 | WS    | 384+ | RR     | 11       | 3       | 16      |
 * | WSRS-RC/RM-* | WSRS  | 384+ | RC/RM  | 14       | 2       | 18      |
 *
 * The displayed WSRS/WS machines use the paper's second renaming strategy
 * (ExactCount); Impl-1 variants are exposed for the renaming ablation
 * (WSRS Impl-1: frontEnd 12, penalty 16).
 */
#pragma once

#include <string_view>
#include <vector>

#include "src/core/params.h"
#include "src/memory/hierarchy.h"

namespace wsrs::sim {

/** Conventional 4-cluster machine, round-robin, 256 registers. */
core::CoreParams presetConventional(unsigned num_regs = 256);

/** Write specialization only, round-robin (paper "WSRR"). */
core::CoreParams presetWriteSpec(unsigned num_regs,
                                 core::RenameImpl impl =
                                     core::RenameImpl::ExactCount);

/** Pool-level write specialization (paper Figure 2b): distinct pools of
 *  functional units write distinct subsets. */
core::CoreParams presetWriteSpecPools(unsigned num_regs);

/** 4-cluster WSRS with the RC (random commutative-cluster) policy. */
core::CoreParams presetWsrsRc(unsigned num_regs,
                              core::RenameImpl impl =
                                  core::RenameImpl::ExactCount);

/** 4-cluster WSRS with the RM (random monadic) policy. */
core::CoreParams presetWsrsRm(unsigned num_regs,
                              core::RenameImpl impl =
                                  core::RenameImpl::ExactCount);

/** 4-cluster WSRS with the dependence-aware extension policy. */
core::CoreParams presetWsrsDepAware(unsigned num_regs);

/**
 * Monolithic (non-clustered) 8-way machine: one scheduling domain with
 * all functional units, complete fast-forwarding, and the slow Table-1
 * noWS-M register file (5 read stages at the simulated clock). The
 * equal-frequency comparison point that motivates clustering.
 */
core::CoreParams presetMonolithic8Way(unsigned num_regs = 256);

/** Conventional 2-cluster 4-way machine (Table 1's noWS-2 reference). */
core::CoreParams presetConventional4Way(unsigned num_regs = 128);

/**
 * Machine shell for a given register-file mode with the paper's
 * pipeline-depth rules applied (conventional: 4 register-read stages;
 * WS/WS-pools: 3; WSRS: 2 with the Impl-1/Impl-2 front-end costs), the
 * requested allocation policy, and commutative functional units whenever
 * the policy exploits operand swapping. The explorer's space
 * materialization starts from this shell and overrides individual fields.
 */
core::CoreParams presetForMode(core::RegFileMode mode,
                               core::AllocPolicy policy, unsigned num_regs,
                               core::RenameImpl impl =
                                   core::RenameImpl::ExactCount);

/**
 * Look up a preset by its paper label: "RR-256", "WSRR-384", "WSRR-512",
 * "WSRS-RC-384", "WSRS-RC-512", "WSRS-RM-512", "WSRS-DEP-512".
 * @throws wsrs::FatalError for unknown labels.
 */
core::CoreParams findPreset(std::string_view label);

/** Labels of the six Figure-4 machines, in paper legend order. */
std::vector<std::string> figure4Presets();

/**
 * Look up a memory-backend preset (`wsrs-sim --mem-model`):
 * "constant" (the paper's fixed 80-cycle L2 miss, the default — bit-exact
 * with a default-constructed HierarchyParams), "dram" (event-driven
 * open-page banked DRAM) or "dram-closed" (auto-precharge page policy).
 * @throws wsrs::FatalError for unknown labels.
 */
memory::HierarchyParams findMemPreset(std::string_view label);

/** Labels accepted by findMemPreset, default first. */
std::vector<std::string> memPresets();

} // namespace wsrs::sim
