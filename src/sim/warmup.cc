#include "warmup.h"

#include <cstring>
#include <sstream>

#include "src/ckpt/io.h"
#include "src/common/hash.h"
#include "src/common/log.h"
#include "src/workload/trace_generator.h"

namespace wsrs::sim {

namespace {

std::uint64_t
hashStr(std::uint64_t h, std::string_view s)
{
    h = mixCombine(h, s.size());
    for (const char c : s)
        h = mixCombine(h, static_cast<unsigned char>(c));
    return h;
}

/** Hash a double by bit pattern: the profile knobs are exact constants, so
 *  bit equality is the right identity (no epsilon semantics wanted). */
std::uint64_t
hashD(std::uint64_t h, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return mixCombine(h, bits);
}

/** Every profile knob participates: two profiles sharing a name but
 *  differing in any knob must never share a warm-up snapshot. */
std::uint64_t
hashProfile(std::uint64_t h, const workload::BenchmarkProfile &p)
{
    h = hashStr(h, p.name);
    h = mixCombine(h, p.floatingPoint);
    h = hashD(h, p.fracLoad);
    h = hashD(h, p.fracStore);
    h = hashD(h, p.fracBranch);
    h = hashD(h, p.fracIntMul);
    h = hashD(h, p.fracIntDiv);
    h = hashD(h, p.fracFpAdd);
    h = hashD(h, p.fracFpMul);
    h = hashD(h, p.fracFpDiv);
    h = hashD(h, p.fracFpSqrt);
    h = hashD(h, p.fracNoadic);
    h = hashD(h, p.fracMonadic);
    h = hashD(h, p.fracCommutative);
    h = hashD(h, p.fracIndexedStore);
    h = hashD(h, p.depGeomP);
    h = hashD(h, p.depCrossBlockFrac);
    h = hashD(h, p.maxChainDepth);
    h = hashD(h, p.invariantFrac);
    h = mixCombine(h, p.numInvariantRegs);
    h = hashD(h, p.loadValueFrac);
    h = hashD(h, p.pointerChaseFrac);
    h = hashD(h, p.addrInvariantFrac);
    h = mixCombine(h, p.numSegments);
    h = mixCombine(h, p.meanLoopBlocks);
    h = mixCombine(h, p.meanTripCount);
    h = hashD(h, p.branchBiasedFrac);
    h = hashD(h, p.biasedTakenProb);
    h = hashD(h, p.patternNoise);
    h = mixCombine(h, p.numStreams);
    h = hashD(h, p.strideFrac);
    h = hashD(h, p.streamPeekFrac);
    h = mixCombine(h, p.workingSetBytes);
    h = hashD(h, p.randomHotFrac);
    h = hashD(h, p.storeAliasFrac);
    h = hashD(h, p.loadAfterStoreFrac);
    h = mixCombine(h, p.seed);
    return h;
}

std::uint64_t
hashCacheParams(std::uint64_t h, const memory::CacheParams &p)
{
    h = mixCombine(h, p.sizeBytes);
    h = mixCombine(h, p.assoc);
    h = mixCombine(h, p.lineBytes);
    h = mixCombine(h, static_cast<std::uint64_t>(p.replacement));
    return h;
}

std::uint64_t
hashMemParams(std::uint64_t h, const memory::HierarchyParams &p)
{
    h = hashCacheParams(h, p.l1);
    h = hashCacheParams(h, p.l2);
    h = mixCombine(h, p.l1Latency);
    h = mixCombine(h, p.l1MissPenalty);
    h = mixCombine(h, p.l2MissPenalty);
    h = mixCombine(h, p.l2BytesPerCycle);
    h = mixCombine(h, p.mshrs);
    h = mixCombine(h, p.prefetchDepth);
    h = mixCombine(h, static_cast<std::uint64_t>(p.model));
    h = mixCombine(h, p.dram.banks);
    h = mixCombine(h, p.dram.rowBytes);
    h = mixCombine(h, p.dram.tRp);
    h = mixCombine(h, p.dram.tRcd);
    h = mixCombine(h, p.dram.tCas);
    h = mixCombine(h, p.dram.burstCycles);
    h = mixCombine(h, p.dram.windowDepth);
    h = mixCombine(h, p.dram.closedPage);
    return h;
}

std::uint64_t
hashCoreParams(std::uint64_t h, const core::CoreParams &p)
{
    h = hashStr(h, p.name);
    h = mixCombine(h, p.numClusters);
    h = mixCombine(h, p.fetchWidth);
    h = mixCombine(h, p.commitWidth);
    h = mixCombine(h, p.issuePerCluster);
    h = mixCombine(h, p.lsusPerCluster);
    h = mixCombine(h, p.fpusPerCluster);
    h = mixCombine(h, p.alusPerCluster);
    h = mixCombine(h, p.clusterWindow);
    h = mixCombine(h, p.lsqSize);
    h = mixCombine(h, p.fetchQueue);
    h = mixCombine(h, p.agenWidth);
    h = mixCombine(h, p.numPhysRegs);
    h = mixCombine(h, static_cast<std::uint64_t>(p.mode));
    h = mixCombine(h, static_cast<std::uint64_t>(p.policy));
    h = mixCombine(h, static_cast<std::uint64_t>(p.renameImpl));
    h = mixCombine(h, static_cast<std::uint64_t>(p.ffScope));
    h = mixCombine(h, p.frontEndDepth);
    h = mixCombine(h, p.regReadStages);
    h = mixCombine(h, p.recycleDelay);
    h = mixCombine(h, p.writebackPerCluster);
    h = mixCombine(h, p.commutativeFus);
    h = mixCombine(h, p.sharedComplexUnit);
    h = mixCombine(h, p.verifyDataflow);
    h = mixCombine(h, static_cast<std::uint64_t>(p.deadlockPolicy));
    h = mixCombine(h, p.fetchBreakOnTaken);
    h = mixCombine(h, p.seed);
    return h;
}

} // namespace

std::uint64_t
warmupKeyHash(const workload::BenchmarkProfile &profile,
              const SimConfig &config)
{
    std::uint64_t h = hashStr(mix64(0x77617275), "wsrs-warmup-key-v1");
    h = hashProfile(h, profile);
    h = mixCombine(h, config.seed);
    h = mixCombine(h, config.warmupUops);
    h = hashMemParams(h, config.mem);
    h = mixCombine(h, static_cast<std::uint64_t>(config.predictor));
    return h;
}

std::uint64_t
fullCheckpointMetaHash(const workload::BenchmarkProfile &profile,
                       const SimConfig &config)
{
    std::uint64_t h = warmupKeyHash(profile, config);
    h = hashStr(h, "full-sim");
    core::CoreParams cp = config.core;
    cp.verifyDataflow = config.verifyDataflow;  // as the simulation runs it
    h = hashCoreParams(h, cp);
    return h;
}

std::string
buildWarmupSnapshot(const workload::BenchmarkProfile &profile,
                    const SimConfig &config)
{
    workload::TraceGenerator gen(profile, config.seed);
    StatGroup group("warmup");
    memory::MemoryHierarchy mem(config.mem, group);
    const std::unique_ptr<bpred::BranchPredictor> predictor =
        makePredictor(config.predictor);

    // Functional warm-up: no core timing exists here, so memory accesses
    // are stamped with the micro-op index — a deterministic, monotonic
    // clock that spaces L2 port occupancy the way a committing core would
    // (one-ish micro-op per cycle). Branches train the predictor with the
    // same lookup-then-update discipline the front end uses.
    for (std::uint64_t i = 0; i < config.warmupUops; ++i) {
        const isa::MicroOp op = gen.next();
        if (op.isBranch()) {
            (void)predictor->lookup(op.pc);
            predictor->update(op.pc, op.taken);
        } else if (op.isLoad() || op.isStore()) {
            mem.access(op.effAddr, op.isStore(), i);
        }
    }

    // The warmed state worth carrying across machines is the tag,
    // replacement and predictor state; the warming pass's own port/miss
    // timing would land in the restored core's future (its clock restarts
    // at zero) and stall early refills behind a phantom busy port.
    mem.rebaseTiming();

    std::ostringstream os(std::ios::binary);
    ckpt::CheckpointWriter cw(os, "<warmup-blob>", ckpt::kKindWarmup,
                              warmupKeyHash(profile, config));
    {
        ckpt::Writer w;
        w.str(profile.name);
        w.u64(config.warmupUops);
        cw.section("meta", w);
    }
    {
        ckpt::Writer w;
        mem.snapshot(w);
        cw.section("memory", w);
    }
    {
        ckpt::Writer w;
        predictor->snapshot(w);
        cw.section("bpred", w);
    }
    cw.finish();
    return os.str();
}

void
restoreWarmupSnapshot(const std::string &blob, const std::string &origin,
                      const workload::BenchmarkProfile &profile,
                      const SimConfig &config, memory::MemoryHierarchy &mem,
                      bpred::BranchPredictor &predictor)
{
    std::istringstream is(blob, std::ios::binary);
    ckpt::CheckpointReader cr(is, origin);
    cr.expect(ckpt::kKindWarmup, warmupKeyHash(profile, config));
    {
        ckpt::Reader r = cr.section("memory");
        mem.restore(r);
    }
    {
        ckpt::Reader r = cr.section("bpred");
        predictor.restore(r);
    }
}

} // namespace wsrs::sim
