#include "simulator.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <memory>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/tournament.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/common/log.h"
#include "src/workload/trace_generator.h"

namespace wsrs::sim {

namespace {

std::unique_ptr<bpred::BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::TwoBcGskew:
        return std::make_unique<bpred::TwoBcGskew>();
      case PredictorKind::Tournament:
        return std::make_unique<bpred::TournamentPredictor>();
      case PredictorKind::Gshare:
        return std::make_unique<bpred::GsharePredictor>();
      case PredictorKind::Bimodal:
        return std::make_unique<bpred::BimodalPredictor>();
      case PredictorKind::Perfect:
        return std::make_unique<bpred::PerfectPredictor>();
    }
    WSRS_PANIC("unhandled predictor kind");
}

/** Parse a strictly-decimal environment value; fatal on malformed input. */
std::uint64_t
parseEnvUint(const char *name, const char *value)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    // strtoull silently accepts whitespace, signs and trailing garbage
    // (and returns 0 for pure garbage); require a plain digit string.
    if (value[0] < '0' || value[0] > '9' || end == value ||
        *end != '\0' || errno == ERANGE)
        fatal("malformed %s='%s' (expected a non-negative integer)",
              name, value);
    return v;
}

} // namespace

SimConfig
applyEnvOverrides(SimConfig config)
{
    if (const char *s = std::getenv("WSRS_MEASURE_UOPS"))
        config.measureUops = parseEnvUint("WSRS_MEASURE_UOPS", s);
    if (const char *s = std::getenv("WSRS_WARMUP_UOPS"))
        config.warmupUops = parseEnvUint("WSRS_WARMUP_UOPS", s);
    return config;
}

SimResults
runSimulation(const workload::BenchmarkProfile &profile,
              const SimConfig &config)
{
    workload::TraceGenerator gen(profile, config.seed);
    return runSimulation(profile, config, gen);
}

SimResults
runSimulation(const workload::BenchmarkProfile &profile,
              const SimConfig &config, workload::MicroOpSource &source)
{
    auto predictor = makePredictor(config.predictor);
    StatGroup stats(profile.name);
    memory::MemoryHierarchy mem(config.mem, stats);

    core::CoreParams cp = config.core;
    cp.verifyDataflow = config.verifyDataflow;
    core::Core machine(cp, source, *predictor, mem);

    if (config.warmupUops > 0)
        machine.run(config.warmupUops);

    machine.resetStats();
    if (config.timelineRows > 0)
        machine.enableTimeline(config.timelineRows);
    const std::uint64_t acc0 = mem.accesses();
    const std::uint64_t l1m0 = mem.l1Misses();
    const std::uint64_t l2m0 = mem.l2Misses();

    machine.run(config.measureUops);

    const core::CoreStats &cs = machine.stats();
    if (config.verifyDataflow && cs.valueMismatches > 0)
        fatal("dataflow verification failed: %llu mismatching values",
              static_cast<unsigned long long>(cs.valueMismatches));

    SimResults r;
    r.benchmark = profile.name;
    r.machine = cp.name;
    r.stats = cs;
    r.ipc = cs.ipc();
    r.unbalancingDegree = cs.unbalancingDegree();
    r.branchMispredictRate = cs.mispredictRate();
    const std::uint64_t acc = mem.accesses() - acc0;
    const std::uint64_t l1m = mem.l1Misses() - l1m0;
    const std::uint64_t l2m = mem.l2Misses() - l2m0;
    r.l1MissRate = acc ? double(l1m) / acc : 0.0;
    r.l2MissRate = l1m ? double(l2m) / l1m : 0.0;
    if (config.timelineRows > 0) {
        std::ostringstream os;
        machine.dumpTimeline(os, config.timelineRows);
        r.timelineText = os.str();
    }
    return r;
}

} // namespace wsrs::sim
