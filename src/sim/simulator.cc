#include "simulator.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <memory>

#include "src/bpred/simple_predictors.h"
#include "src/bpred/tournament.h"
#include "src/bpred/two_bc_gskew.h"
#include "src/ckpt/io.h"
#include "src/common/log.h"
#include "src/obs/trace_sink.h"
#include "src/sim/warmup.h"
#include "src/workload/trace_generator.h"

namespace wsrs::sim {

std::unique_ptr<bpred::BranchPredictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::TwoBcGskew:
        return std::make_unique<bpred::TwoBcGskew>();
      case PredictorKind::Tournament:
        return std::make_unique<bpred::TournamentPredictor>();
      case PredictorKind::Gshare:
        return std::make_unique<bpred::GsharePredictor>();
      case PredictorKind::Bimodal:
        return std::make_unique<bpred::BimodalPredictor>();
      case PredictorKind::Perfect:
        return std::make_unique<bpred::PerfectPredictor>();
    }
    WSRS_PANIC("unhandled predictor kind");
}

namespace {

/**
 * Save a kind="full-sim" checkpoint: the trace source's cursor, the
 * predictor, the memory hierarchy and the core's complete transient state,
 * taken at a cycle boundary (between run() calls).
 */
void
saveFullCheckpoint(const std::string &path, std::uint64_t meta_hash,
                   const ckpt::Snapshotter &source_snap,
                   const bpred::BranchPredictor &predictor,
                   const memory::MemoryHierarchy &mem,
                   const core::Core &machine)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatalIo("cannot open checkpoint file '%s' for writing", path.c_str());
    ckpt::CheckpointWriter cw(os, path, ckpt::kKindFullSim, meta_hash);
    {
        ckpt::Writer w;
        source_snap.snapshot(w);
        cw.section("trace", w);
    }
    {
        ckpt::Writer w;
        predictor.snapshot(w);
        cw.section("bpred", w);
    }
    {
        ckpt::Writer w;
        mem.snapshot(w);
        cw.section("memory", w);
    }
    {
        ckpt::Writer w;
        machine.snapshot(w);
        cw.section("core", w);
    }
    cw.finish();
}

/** Restore everything saveFullCheckpoint wrote, validating the meta-hash. */
void
loadFullCheckpoint(const std::string &path, std::uint64_t meta_hash,
                   ckpt::Snapshotter &source_snap,
                   bpred::BranchPredictor &predictor,
                   memory::MemoryHierarchy &mem, core::Core &machine)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatalIo("cannot open checkpoint file '%s'", path.c_str());
    ckpt::CheckpointReader cr(is, path);
    cr.expect(ckpt::kKindFullSim, meta_hash);
    {
        ckpt::Reader r = cr.section("trace");
        source_snap.restore(r);
    }
    {
        ckpt::Reader r = cr.section("bpred");
        predictor.restore(r);
    }
    {
        ckpt::Reader r = cr.section("memory");
        mem.restore(r);
    }
    {
        ckpt::Reader r = cr.section("core");
        machine.restore(r);
    }
}

/** Parse a strictly-decimal environment value; fatal on malformed input. */
std::uint64_t
parseEnvUint(const char *name, const char *value)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    // strtoull silently accepts whitespace, signs and trailing garbage
    // (and returns 0 for pure garbage); require a plain digit string.
    if (value[0] < '0' || value[0] > '9' || end == value ||
        *end != '\0' || errno == ERANGE)
        fatal("malformed %s='%s' (expected a non-negative integer)",
              name, value);
    return v;
}

} // namespace

SimConfig
applyEnvOverrides(SimConfig config)
{
    if (const char *s = std::getenv("WSRS_MEASURE_UOPS"))
        config.measureUops = parseEnvUint("WSRS_MEASURE_UOPS", s);
    if (const char *s = std::getenv("WSRS_WARMUP_UOPS"))
        config.warmupUops = parseEnvUint("WSRS_WARMUP_UOPS", s);
    return config;
}

namespace {

/**
 * Shared simulation body. @p source_snap is the checkpointable view of
 * @p source when one exists (the generator-backed overload); full-sim
 * checkpoint save/load needs it to capture/restore the trace cursor.
 */
SimResults
runSimulationImpl(const workload::BenchmarkProfile &profile,
                  const SimConfig &config, workload::MicroOpSource &source,
                  ckpt::Snapshotter *source_snap)
{
    const auto host0 = std::chrono::steady_clock::now();
    auto predictor = makePredictor(config.predictor);
    StatGroup stats(profile.name);
    memory::MemoryHierarchy mem(config.mem, stats);

    core::CoreParams cp = config.core;
    cp.verifyDataflow = config.verifyDataflow;
    core::Core machine(cp, source, *predictor, mem);
    // Pre-size the committed-memory oracle from the profile's footprint
    // hint so the map never rehashes inside the measured loop.
    machine.reserveMemoryFootprint(profile.workingSetBytes);

    // ---- warm-up phase: run it, restore it, or skip past it ----
    if (!config.checkpointLoadPath.empty()) {
        if (config.warmupBlob)
            fatal("checkpointLoadPath and warmupBlob are mutually "
                  "exclusive");
        if (!source_snap)
            fatal("full-sim checkpoints require a generator-backed trace "
                  "source (runSimulation overload without an external "
                  "MicroOpSource)");
        loadFullCheckpoint(config.checkpointLoadPath,
                           fullCheckpointMetaHash(profile, config),
                           *source_snap, *predictor, mem, machine);
    } else if (config.warmupBlob) {
        if (config.verifyDataflow)
            fatal("warm-up snapshot reuse cannot be combined with "
                  "verifyDataflow: the commit-time oracle must observe the "
                  "warm-up micro-ops it would skip");
        restoreWarmupSnapshot(*config.warmupBlob, "<warmup-blob>", profile,
                              config, mem, *predictor);
        // The warmed state corresponds to the stream's first warmupUops
        // micro-ops; fast-forward the source so the measured slice starts
        // where a core-driven warm-up of that length would have it start.
        for (std::uint64_t i = 0; i < config.warmupUops; ++i)
            (void)source.next();
    } else if (config.warmupUops > 0) {
        machine.run(config.warmupUops);
    }

    if (!config.checkpointSavePath.empty()) {
        if (!source_snap)
            fatal("full-sim checkpoints require a generator-backed trace "
                  "source (runSimulation overload without an external "
                  "MicroOpSource)");
        saveFullCheckpoint(config.checkpointSavePath,
                           fullCheckpointMetaHash(profile, config),
                           *source_snap, *predictor, mem, machine);
    }

    machine.resetStats();
    // The measurement epoch: the core clock keeps counting across
    // resetStats, so the memory backend's stall attribution must anchor
    // to the same cycle the measured slice starts at (0 on the warm-up
    // blob path, the warm-up length otherwise).
    mem.resetMeasurement(machine.now());
    if (config.timelineRows > 0)
        machine.enableTimeline(config.timelineRows);

    // Observability attaches after warm-up so traces and interval series
    // cover exactly the measured slice.
    std::ofstream trace_text, trace_bin;
    std::unique_ptr<obs::TraceSink> text_sink, bin_sink;
    std::unique_ptr<obs::TraceSink> tee;
    if (!config.tracePipePath.empty()) {
        trace_text.open(config.tracePipePath);
        if (!trace_text)
            fatalIo("cannot open trace file '%s'",
                  config.tracePipePath.c_str());
        text_sink = std::make_unique<obs::O3PipeViewSink>(trace_text);
    }
    if (!config.tracePipeBinPath.empty()) {
        trace_bin.open(config.tracePipeBinPath, std::ios::binary);
        if (!trace_bin)
            fatalIo("cannot open binary trace file '%s'",
                  config.tracePipeBinPath.c_str());
        bin_sink = std::make_unique<obs::BinaryTraceSink>(trace_bin);
    }
    if (text_sink && bin_sink) {
        struct Tee : obs::TraceSink
        {
            obs::TraceSink *a, *b;
            void
            record(const obs::UopTrace &t) override
            {
                a->record(t);
                b->record(t);
            }
            void
            finish() override
            {
                a->finish();
                b->finish();
            }
        };
        auto t = std::make_unique<Tee>();
        t->a = text_sink.get();
        t->b = bin_sink.get();
        tee = std::move(t);
        machine.attachTraceSink(tee.get());
    } else if (text_sink) {
        machine.attachTraceSink(text_sink.get());
    } else if (bin_sink) {
        machine.attachTraceSink(bin_sink.get());
    }
    if (config.intervalStatsCycles > 0)
        machine.enableIntervalStats(config.intervalStatsCycles);
    if (config.profiler)
        machine.attachStageProfiler(config.profiler);

    const std::uint64_t acc0 = mem.accesses();
    const std::uint64_t l1m0 = mem.l1Misses();
    const std::uint64_t l2m0 = mem.l2Misses();
    MemBackendStats mem0;
    if (const memory::DramController *d = mem.dram()) {
        mem0.dramRequests = d->requests();
        mem0.dramRowHits = d->rowHits();
        mem0.dramRowConflicts = d->rowConflicts();
        mem0.dramQueueFullWaits = d->queueFullWaits();
    }

    machine.run(config.measureUops);

    if (tee)
        tee->finish();
    else if (text_sink)
        text_sink->finish();
    else if (bin_sink)
        bin_sink->finish();
    machine.attachTraceSink(nullptr);
    machine.attachStageProfiler(nullptr);

    const core::CoreStats &cs = machine.stats();
    if (config.verifyDataflow && cs.valueMismatches > 0)
        fatal("dataflow verification failed: %llu mismatching values",
              static_cast<unsigned long long>(cs.valueMismatches));

    SimResults r;
    r.benchmark = profile.name;
    r.machine = cp.name;
    r.stats = cs;
    r.ipc = cs.ipc();
    r.unbalancingDegree = cs.unbalancingDegree();
    r.branchMispredictRate = cs.mispredictRate();
    const std::uint64_t acc = mem.accesses() - acc0;
    const std::uint64_t l1m = mem.l1Misses() - l1m0;
    const std::uint64_t l2m = mem.l2Misses() - l2m0;
    r.l1MissRate = acc ? double(l1m) / acc : 0.0;
    r.l2MissRate = l1m ? double(l2m) / l1m : 0.0;
    if (const memory::DramController *d = mem.dram()) {
        r.mem.dramRequests = d->requests() - mem0.dramRequests;
        r.mem.dramRowHits = d->rowHits() - mem0.dramRowHits;
        r.mem.dramRowConflicts = d->rowConflicts() - mem0.dramRowConflicts;
        r.mem.dramQueueFullWaits =
            d->queueFullWaits() - mem0.dramQueueFullWaits;
    }
    if (config.timelineRows > 0) {
        std::ostringstream os;
        machine.dumpTimeline(os, config.timelineRows);
        r.timelineText = os.str();
    }

    {
        std::ostringstream os;
        os << "{\"schema\": \"" << kStatsJsonSchema << "\", \"benchmark\": \""
           << jsonEscape(r.benchmark) << "\", \"machine\": \""
           << jsonEscape(r.machine)
           << "\", \"measure_uops\": " << config.measureUops
           << ", \"warmup_uops\": " << config.warmupUops
           << ", \"seed\": " << config.seed << ", \"metrics\": {\"ipc\": ";
        dumpJsonDouble(os, r.ipc);
        os << ", \"unbalancing_degree\": ";
        dumpJsonDouble(os, r.unbalancingDegree);
        os << ", \"branch_mispredict_rate\": ";
        dumpJsonDouble(os, r.branchMispredictRate);
        os << ", \"l1_miss_rate\": ";
        dumpJsonDouble(os, r.l1MissRate);
        os << ", \"l2_miss_rate\": ";
        dumpJsonDouble(os, r.l2MissRate);
        os << "}, \"core\": ";
        machine.dumpStatsJson(os);
        os << ", \"memory\": ";
        // Constant model: the flat counter map, byte-identical to the
        // pre-DRAM seed. DRAM model: a structured object wrapping the
        // same counters plus geometry and the stall attribution up to
        // the final measured cycle.
        if (const memory::DramController *d = mem.dram())
            d->dumpJson(os, stats, machine.now());
        else
            stats.dumpJson(os);
        os << "}";
        r.statsJson = os.str();
    }
    r.hostSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - host0)
                        .count();
    return r;
}

} // namespace

SimResults
runSimulation(const workload::BenchmarkProfile &profile,
              const SimConfig &config)
{
    workload::TraceGenerator gen(profile, config.seed);
    return runSimulationImpl(profile, config, gen, &gen);
}

SimResults
runSimulation(const workload::BenchmarkProfile &profile,
              const SimConfig &config, workload::MicroOpSource &source)
{
    return runSimulationImpl(profile, config, source, nullptr);
}

} // namespace wsrs::sim
