/**
 * @file
 * One-call simulation facade: benchmark profile + machine preset ->
 * measured results, following the paper's protocol (warm-up phase for
 * caches and predictor state, then a measured slice).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/bpred/predictor.h"
#include "src/core/core.h"
#include "src/core/params.h"
#include "src/memory/hierarchy.h"
#include "src/obs/stage_profiler.h"
#include "src/workload/profile.h"

namespace wsrs::sim {

/** Which direction predictor the front end uses. */
enum class PredictorKind : std::uint8_t {
    TwoBcGskew, ///< Paper baseline: 512 Kbit EV8-class 2Bc-gskew.
    Tournament, ///< EV6-class local/global tournament.
    Gshare,
    Bimodal,
    Perfect,
};

/** Full experiment description. */
struct SimConfig
{
    core::CoreParams core;
    memory::HierarchyParams mem;     ///< Defaults to the paper's Table 3.
    PredictorKind predictor = PredictorKind::TwoBcGskew;
    std::uint64_t warmupUops = 400000;   ///< Cache/predictor warm-up.
    std::uint64_t measureUops = 1000000; ///< Measured slice.
    std::uint64_t seed = 0;              ///< Extra trace seed.
    bool verifyDataflow = false;         ///< Oracle value checking.
    std::size_t timelineRows = 0;        ///< Record last-N pipeline rows.

    // ---- observability (measured slice only; warm-up is never traced) ----
    std::string tracePipePath;     ///< O3PipeView text trace (Konata).
    std::string tracePipeBinPath;  ///< Compact binary trace.
    Cycle intervalStatsCycles = 0; ///< Interval sampler period (0 off).
    obs::StageProfiler *profiler = nullptr;  ///< Host-side stage timing.

    // ---- checkpointing (see docs/checkpointing.md) ----
    /** Write a kind="full-sim" checkpoint (trace cursor, predictor, memory
     *  and full core transient state) at the warm-up/measure boundary,
     *  then continue; the saving run's results are unperturbed. Requires
     *  the generator-backed runSimulation overload. */
    std::string checkpointSavePath;
    /** Restore a kind="full-sim" checkpoint instead of warming up; the
     *  measured slice is bit-identical to the run that saved it. The
     *  configuration must match the saver's (enforced via meta-hash). */
    std::string checkpointLoadPath;
    /** In-memory kind="warmup" snapshot (see sim/warmup.h): restore the
     *  warmed memory hierarchy and predictor from the blob and fast-forward
     *  the micro-op source instead of running the core through warm-up.
     *  Borrowed; must outlive the run. Incompatible with verifyDataflow
     *  (the commit-time oracle cannot skip the warm-up dataflow). */
    const std::string *warmupBlob = nullptr;
};

/** Memory-backend counters of a measured run, for telemetry consumers
 *  (wsrs_mem_* registry instruments). All zero under the Constant model. */
struct MemBackendStats
{
    std::uint64_t dramRequests = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowConflicts = 0;
    std::uint64_t dramQueueFullWaits = 0;
};

/** Results of a measured slice. */
struct SimResults
{
    std::string benchmark;
    std::string machine;
    core::CoreStats stats;
    MemBackendStats mem;
    double ipc = 0;
    double unbalancingDegree = 0;   ///< Figure-5 metric, percent.
    double branchMispredictRate = 0;
    double l1MissRate = 0;          ///< Per measured access.
    double l2MissRate = 0;          ///< Per L1 miss.
    std::string timelineText;       ///< Rendered pipeline rows (if asked).
    /** Machine-readable stats document (schema wsrs-stats-v1): headline
     *  metrics plus the full core (stall attribution, wake-up latency,
     *  intervals) and memory statistics. Always populated. */
    std::string statsJson;
    /** Host wall time of the whole run (warm-up + measure), seconds.
     *  Deliberately not part of statsJson: it varies run to run, and the
     *  stats document must stay deterministic for a given job. Telemetry
     *  consumers (wsrs-sim --metrics-out) read it from here instead. */
    double hostSeconds = 0;
};

/** Run one benchmark on one machine. */
SimResults runSimulation(const workload::BenchmarkProfile &profile,
                         const SimConfig &config);

/**
 * Run one benchmark on one machine, drawing micro-ops from @p source
 * instead of constructing a fresh TraceGenerator. The source must produce
 * the same stream a TraceGenerator(profile, config.seed) would for the
 * results to be comparable across machines (see runner::TraceCache).
 */
SimResults runSimulation(const workload::BenchmarkProfile &profile,
                         const SimConfig &config,
                         workload::MicroOpSource &source);

/**
 * Override measured/warm-up slice lengths from the environment
 * (WSRS_MEASURE_UOPS / WSRS_WARMUP_UOPS), for quick bench runs.
 */
SimConfig applyEnvOverrides(SimConfig config);

/** Construct the branch predictor a SimConfig names. */
std::unique_ptr<bpred::BranchPredictor> makePredictor(PredictorKind kind);

} // namespace wsrs::sim
