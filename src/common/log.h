/**
 * @file
 * Error-reporting helpers in the gem5 fatal/panic spirit.
 *
 * - wsrs::fatal(...)  : the *user's* fault (bad configuration, impossible
 *   parameter combination). Throws wsrs::FatalError so library users and
 *   tests can catch it.
 * - WSRS_PANIC(...)   : a simulator bug (broken invariant). Aborts.
 * - WSRS_ASSERT(cond) : cheap invariant check compiled in all build types;
 *   panics with location info on failure.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace wsrs {

/** Exception thrown for unrecoverable user-facing configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Printf-style formatting into a std::string. */
template <typename... Args>
std::string
strprintf(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt, args...);
        std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
        if (n > 0)
            std::snprintf(out.data(), out.size() + 1, fmt, args...);
        return out;
    }
}

/** Report a user error: throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    throw FatalError(strprintf(fmt, args...));
}

/** Internal: panic implementation. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

} // namespace wsrs

/** Abort with a message: simulator bug, never a user error. */
#define WSRS_PANIC(...) \
    ::wsrs::panicImpl(__FILE__, __LINE__, ::wsrs::strprintf(__VA_ARGS__))

/** Invariant check active in every build type. */
#define WSRS_ASSERT(cond) \
    do { \
        if (!(cond)) \
            ::wsrs::panicImpl(__FILE__, __LINE__, \
                              "assertion failed: " #cond); \
    } while (0)
