/**
 * @file
 * Error-reporting helpers in the gem5 fatal/panic spirit.
 *
 * - wsrs::fatal(...)  : the *user's* fault (bad configuration, impossible
 *   parameter combination). Throws wsrs::FatalError so library users and
 *   tests can catch it.
 * - wsrs::fatalIo(...)       : I/O failure or on-disk data corruption
 *   (unreadable file, bad magic, CRC mismatch, torn write). Throws
 *   wsrs::IoError, a FatalError subclass, so existing catch sites keep
 *   working while drivers can map the class to a distinct exit code.
 * - wsrs::fatalMismatch(...) : a journal/checkpoint/sweep identity clash
 *   (the artifact is intact but belongs to a different configuration).
 *   Throws wsrs::SweepMismatchError.
 * - WSRS_PANIC(...)   : a simulator bug (broken invariant). Aborts.
 * - WSRS_ASSERT(cond) : cheap invariant check compiled in all build types;
 *   panics with location info on failure.
 *
 * Process exit codes (tools map the exception taxonomy onto these; see
 * exitCodeFor and docs/sweep_service.md):
 *   0 success · 1 configuration/usage error · 2 I/O error or data
 *   corruption · 3 journal/checkpoint identity mismatch · 4 one or more
 *   sweep jobs failed (partial results were still reported).
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace wsrs {

/** Exception thrown for unrecoverable user-facing configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** I/O failure or on-disk/on-wire data corruption (exit code 2). */
class IoError : public FatalError
{
  public:
    explicit IoError(const std::string &msg) : FatalError(msg) {}
};

/** Intact artifact, wrong identity: resuming a journal or restoring a
 *  checkpoint that belongs to a different configuration (exit code 3). */
class SweepMismatchError : public FatalError
{
  public:
    explicit SweepMismatchError(const std::string &msg) : FatalError(msg) {}
};

/** Documented process exit codes shared by the driver tools. */
enum ExitCode : int {
    kExitOk = 0,
    kExitConfig = 1,        ///< FatalError: bad configuration or usage.
    kExitIo = 2,            ///< IoError: I/O failure or corruption.
    kExitSweepMismatch = 3, ///< SweepMismatchError: identity clash.
    kExitJobFailure = 4,    ///< Sweep completed but some jobs failed.
};

/** Map the exception taxonomy onto the documented exit codes. */
inline int
exitCodeFor(const FatalError &e)
{
    if (dynamic_cast<const IoError *>(&e))
        return kExitIo;
    if (dynamic_cast<const SweepMismatchError *>(&e))
        return kExitSweepMismatch;
    return kExitConfig;
}

/** Printf-style formatting into a std::string. */
template <typename... Args>
std::string
strprintf(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt, args...);
        std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
        if (n > 0)
            std::snprintf(out.data(), out.size() + 1, fmt, args...);
        return out;
    }
}

/** Report a user error: throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    throw FatalError(strprintf(fmt, args...));
}

/** Report an I/O or data-corruption error: throws IoError. */
template <typename... Args>
[[noreturn]] void
fatalIo(const char *fmt, Args... args)
{
    throw IoError(strprintf(fmt, args...));
}

/** Report a journal/checkpoint identity mismatch: throws
 *  SweepMismatchError. */
template <typename... Args>
[[noreturn]] void
fatalMismatch(const char *fmt, Args... args)
{
    throw SweepMismatchError(strprintf(fmt, args...));
}

/** Internal: panic implementation. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

} // namespace wsrs

/** Abort with a message: simulator bug, never a user error. */
#define WSRS_PANIC(...) \
    ::wsrs::panicImpl(__FILE__, __LINE__, ::wsrs::strprintf(__VA_ARGS__))

/** Invariant check active in every build type. */
#define WSRS_ASSERT(cond) \
    do { \
        if (!(cond)) \
            ::wsrs::panicImpl(__FILE__, __LINE__, \
                              "assertion failed: " #cond); \
    } while (0)
