#include "args.h"

#include <cstdlib>
#include <sstream>

#include "log.h"

namespace wsrs {

void
ArgParser::addOption(const std::string &name, const std::string &help,
                     bool is_flag)
{
    options_[name] = Option{help, is_flag};
}

void
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        const std::size_t eq = arg.find('=');
        bool has_inline_value = false;
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline_value = true;
        }
        const auto it = options_.find(arg);
        if (it == options_.end())
            fatal("unknown option --%s\n%s", arg.c_str(),
                  usage("").c_str());
        if (it->second.isFlag) {
            if (has_inline_value)
                fatal("option --%s takes no value", arg.c_str());
            values_[arg] = "1";
            continue;
        }
        if (!has_inline_value) {
            if (i + 1 >= argc)
                fatal("option --%s requires a value", arg.c_str());
            value = argv[++i];
        }
        values_[arg] = value;
    }
}

bool
ArgParser::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
ArgParser::get(const std::string &name, const std::string &def) const
{
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : def;
}

std::uint64_t
ArgParser::getUint(const std::string &name, std::uint64_t def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        fatal("option --%s: '%s' is not an integer", name.c_str(),
              it->second.c_str());
    return v;
}

double
ArgParser::getDouble(const std::string &name, double def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        fatal("option --%s: '%s' is not a number", name.c_str(),
              it->second.c_str());
    return v;
}

std::string
ArgParser::usage(const std::string &program) const
{
    std::ostringstream os;
    if (!program.empty())
        os << "usage: " << program << " [options]\n";
    os << "options:\n";
    for (const auto &[name, opt] : options_) {
        os << "  --" << name << (opt.isFlag ? "" : "=<value>");
        os << "\n      " << opt.help << "\n";
    }
    return os.str();
}

} // namespace wsrs
