/**
 * @file
 * Minimal self-contained command-line option parser for the driver tools.
 *
 * Supports "--key=value", "--key value" and boolean "--flag" syntax plus
 * positional arguments; unknown options raise a FatalError listing the
 * registered options.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wsrs {

/** Parsed command line with typed accessors. */
class ArgParser
{
  public:
    /**
     * Register an option before parsing.
     *
     * @param name long option name without the leading dashes.
     * @param help one-line description for usage().
     * @param is_flag true for boolean options that take no value.
     */
    void addOption(const std::string &name, const std::string &help,
                   bool is_flag = false);

    /** Parse argv; throws FatalError on unknown or malformed options. */
    void parse(int argc, const char *const *argv);

    /** True when the option appeared on the command line. */
    bool has(const std::string &name) const;

    /** String value with default. */
    std::string get(const std::string &name,
                    const std::string &def = "") const;

    /** Unsigned integer value with default. */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t def) const;

    /** Double value with default. */
    double getDouble(const std::string &name, double def) const;

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Formatted usage text from the registered options. */
    std::string usage(const std::string &program) const;

  private:
    struct Option
    {
        std::string help;
        bool isFlag = false;
    };

    std::map<std::string, Option> options_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace wsrs
