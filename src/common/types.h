/**
 * @file
 * Fundamental scalar types shared by every wsrs subsystem.
 */
#pragma once

#include <cstdint>

namespace wsrs {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic instruction (micro-op) sequence number, 0-based in fetch order. */
using SeqNum = std::uint64_t;

/** Synthetic program counter used to index branch-prediction structures. */
using Addr = std::uint64_t;

/** Logical (architectural) register index. */
using LogReg = std::uint8_t;

/** Physical register index (global across all register subsets). */
using PhysReg = std::uint16_t;

/** Cluster index (0..numClusters-1). */
using ClusterId = std::uint8_t;

/** Physical register subset index (0..numSubsets-1). */
using SubsetId = std::uint8_t;

/** Sentinel meaning "no logical register operand / no destination". */
inline constexpr LogReg kNoLogReg = 0xff;

/** Sentinel meaning "no physical register". */
inline constexpr PhysReg kNoPhysReg = 0xffff;

/** Sentinel cycle value meaning "never / not yet scheduled". */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

} // namespace wsrs
