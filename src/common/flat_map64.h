/**
 * @file
 * Open-addressing u64 -> u64 hash map for simulator-hot lookups.
 *
 * The committed-memory image is probed once per load and updated once per
 * store; std::unordered_map's node allocation and pointer chasing made it
 * one of the largest single costs in the issue stage. This map keeps
 * {occupied, key, value} together in one flat slot array with linear
 * probing (power-of-two capacity, mix64 hash), so a probe touches a
 * single cache line instead of one line per parallel array.
 *
 * Supports exactly what that use needs: insert-or-assign, find, clear,
 * reserve and iteration (no erase). Iteration order is unspecified;
 * callers that serialize must sort (the core's snapshot already does).
 */
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "src/common/hash.h"
#include "src/common/log.h"

namespace wsrs {

/** Flat linear-probing hash map from uint64 keys to uint64 values. */
class FlatMap64
{
  public:
    FlatMap64() { slots_.resize(kMinCapacity); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Drop all entries, keeping the current table allocation. */
    void
    clear()
    {
        for (Slot &s : slots_)
            s.used = 0;
        size_ = 0;
    }

    /** Pre-size the table for @p n entries without rehashing later. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        while (cap < 2 * n)
            cap <<= 1;
        if (cap > slots_.size())
            rehash(cap);
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    const std::uint64_t *
    find(std::uint64_t key) const
    {
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = mix64(key) & mask;; i = (i + 1) & mask) {
            const Slot &s = slots_[i];
            if (!s.used)
                return nullptr;
            if (s.key == key)
                return &s.val;
        }
    }

    /** Value reference for @p key, default-inserting 0 when absent. */
    std::uint64_t &
    operator[](std::uint64_t key)
    {
        if (2 * (size_ + 1) > slots_.size())
            rehash(slots_.size() * 2);
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = mix64(key) & mask;; i = (i + 1) & mask) {
            Slot &s = slots_[i];
            if (!s.used) {
                s.used = 1;
                s.key = key;
                s.val = 0;
                ++size_;
                return s.val;
            }
            if (s.key == key)
                return s.val;
        }
    }

    /** Invoke @p fn(key, value) for every entry, in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.used)
                fn(s.key, s.val);
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        std::uint64_t val = 0;
        std::uint8_t used = 0;
    };

    static constexpr std::size_t kMinCapacity = 64;

    void
    rehash(std::size_t cap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(cap, Slot{});
        const std::size_t mask = cap - 1;
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            std::size_t j = mix64(s.key) & mask;
            while (slots_[j].used)
                j = (j + 1) & mask;
            slots_[j] = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace wsrs
