#include "stats.h"

#include <iomanip>

namespace wsrs {

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : name_(group.name() + "." + std::move(name)), desc_(std::move(desc))
{
    group.add(this);
}

void
Counter::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << value_ << "  # " << desc() << "\n";
}

void
Average::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << std::fixed << std::setprecision(4) << mean() << "  # " << desc()
       << "\n";
}

Histogram::Histogram(StatGroup &group, std::string name, std::string desc,
                     std::size_t buckets)
    : StatBase(group, std::move(name), std::move(desc)), buckets_(buckets, 0)
{
}

void
Histogram::sample(std::uint64_t v, std::uint64_t count)
{
    const std::size_t idx =
        v < buckets_.size() ? static_cast<std::size_t>(v)
                            : buckets_.size() - 1;
    buckets_[idx] += count;
    samples_ += count;
    sum_ += static_cast<double>(v) * static_cast<double>(count);
}

void
Histogram::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << samples_ << "  # " << desc() << " (mean " << std::fixed
       << std::setprecision(3) << mean() << ")\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << "  " << std::left << std::setw(42)
           << (name() + "[" + std::to_string(i) + "]") << std::right
           << std::setw(16) << buckets_[i] << "\n";
    }
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    sum_ = 0.0;
}

void
Counter::dumpJson(std::ostream &os) const
{
    os << "\"" << name() << "\": " << value_;
}

void
Average::dumpJson(std::ostream &os) const
{
    os << "\"" << name() << "\": " << mean();
}

void
Histogram::dumpJson(std::ostream &os) const
{
    os << "\"" << name() << "\": [";
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        os << (i ? ", " : "") << buckets_[i];
    os << "]";
}

void
Formula::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << std::fixed << std::setprecision(4) << value() << "  # " << desc()
       << "\n";
}

void
Formula::dumpJson(std::ostream &os) const
{
    os << "\"" << name() << "\": " << value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const StatBase *s : stats_)
        s->dump(os);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const StatBase *s : stats_) {
        os << (first ? "" : ", ");
        s->dumpJson(os);
        first = false;
    }
    os << "}";
}

void
StatGroup::resetAll()
{
    for (StatBase *s : stats_)
        s->reset();
}

} // namespace wsrs
