#include "stats.h"

#include <cmath>
#include <cstdio>
#include <iomanip>

#include "src/common/log.h"

namespace wsrs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
dumpJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    os << v;
}

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : name_(group.name() + "." + std::move(name)), desc_(std::move(desc))
{
    group.add(this);
}

void
Counter::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << value_ << "  # " << desc() << "\n";
}

void
Average::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << std::fixed << std::setprecision(4) << mean() << "  # " << desc()
       << "\n";
}

Histogram::Histogram(StatGroup &group, std::string name, std::string desc,
                     std::size_t buckets)
    : StatBase(group, std::move(name), std::move(desc)), buckets_(buckets, 0)
{
}

void
Histogram::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << samples_ << "  # " << desc() << " (mean " << std::fixed
       << std::setprecision(3) << mean() << ")\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << "  " << std::left << std::setw(42)
           << (name() + "[" + std::to_string(i) + "]") << std::right
           << std::setw(16) << buckets_[i] << "\n";
    }
    if (overflow_ != 0) {
        os << "  " << std::left << std::setw(42) << (name() + "[overflow]")
           << std::right << std::setw(16) << overflow_ << "\n";
    }
}

void
Histogram::restore(std::vector<std::uint64_t> buckets,
                   std::uint64_t overflow, std::uint64_t samples, double sum)
{
    if (buckets.size() != buckets_.size())
        fatal("histogram '%s' restore: %zu buckets, expected %zu",
              name().c_str(), buckets.size(), buckets_.size());
    buckets_ = std::move(buckets);
    overflow_ = overflow;
    samples_ = samples;
    sum_ = sum;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0.0;
}

void
Counter::dumpJson(std::ostream &os) const
{
    os << "\"" << jsonEscape(name()) << "\": " << value_;
}

void
Average::dumpJson(std::ostream &os) const
{
    os << "\"" << jsonEscape(name()) << "\": ";
    dumpJsonDouble(os, mean());
}

void
Histogram::dumpJson(std::ostream &os) const
{
    os << "\"" << jsonEscape(name()) << "\": {\"buckets\": [";
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        os << (i ? ", " : "") << buckets_[i];
    os << "], \"overflow\": " << overflow_ << ", \"samples\": " << samples_
       << ", \"mean\": ";
    dumpJsonDouble(os, mean());
    os << "}";
}

void
Formula::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << std::right << std::setw(16)
       << std::fixed << std::setprecision(4) << value() << "  # " << desc()
       << "\n";
}

void
Formula::dumpJson(std::ostream &os) const
{
    os << "\"" << jsonEscape(name()) << "\": ";
    dumpJsonDouble(os, value());
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const StatBase *s : stats_)
        s->dump(os);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const StatBase *s : stats_) {
        os << (first ? "" : ", ");
        s->dumpJson(os);
        first = false;
    }
    os << "}";
}

void
StatGroup::resetAll()
{
    for (StatBase *s : stats_)
        s->reset();
}

} // namespace wsrs
