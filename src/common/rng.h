/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Simulation results must be exactly reproducible across runs and platforms,
 * so all stochastic decisions (synthetic trace generation, random cluster
 * allocation policies) draw from this self-contained xorshift128+ generator
 * rather than <random> engines whose distributions are not
 * implementation-defined.
 */
#pragma once

#include <cstdint>

namespace wsrs {

/**
 * xorshift128+ pseudo-random generator with convenience distributions.
 *
 * All distribution helpers are exact-arithmetic and portable: the same seed
 * yields the same stream on every platform.
 */
class XorShiftRng
{
  public:
    /** Seed the generator; two distinct non-zero words are derived. */
    explicit XorShiftRng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 scrambling to expand the seed into two state words.
        state_[0] = splitMix(seed);
        state_[1] = splitMix(state_[0]);
        if (state_[0] == 0 && state_[1] == 0)
            state_[0] = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t s1 = state_[0];
        const std::uint64_t s0 = state_[1];
        state_[0] = s0;
        s1 ^= s1 << 23;
        state_[1] = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
        return state_[1] + s0;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the bounds used in simulation and the result is fully portable.
        const std::uint64_t x = next();
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 random mantissa bits.
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw: true with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish draw: smallest k >= 1 such that k failures of
     * probability p have not all occurred. Mean approximately 1/p.
     */
    std::uint64_t
    geometric(double p)
    {
        std::uint64_t k = 1;
        while (!chance(p) && k < 1000000)
            ++k;
        return k;
    }

    /**
     * Raw generator state, for checkpoint/restore. Restoring the two words
     * reproduces the exact continuation of the stream.
     */
    std::uint64_t stateWord(int i) const { return state_[i & 1]; }
    void
    setState(std::uint64_t s0, std::uint64_t s1)
    {
        state_[0] = s0;
        state_[1] = s1;
        if (state_[0] == 0 && state_[1] == 0)
            state_[0] = 1;
    }

  private:
    static std::uint64_t
    splitMix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    std::uint64_t state_[2];
};

} // namespace wsrs
