/**
 * @file
 * Lightweight statistics package: named scalar counters, averages and
 * histograms that register themselves with a StatGroup and can be dumped as
 * text. Modeled (loosely) on the gem5 stats package, sized for this
 * simulator.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wsrs {

class StatGroup;

/**
 * Version tag of the machine-readable statistics documents produced by
 * StatGroup::dumpJson / Core::dumpStatsJson. Consumers
 * (scripts/check_stats_schema.py, scripts/stall_report.py) key their
 * validation on this string; bump it when the shape of the JSON changes.
 */
inline constexpr const char *kStatsJsonSchema = "wsrs-stats-v1";

/** Escape a string for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Write a double as a legal JSON value: nan/inf have no JSON spelling and
 * are clamped to null.
 */
void dumpJsonDouble(std::ostream &os, double v);

/** Base class for every named statistic. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write "name value # desc" style line(s). */
    virtual void dump(std::ostream &os) const = 0;
    /** Append this statistic as a JSON object member (no trailing comma). */
    virtual void dumpJson(std::ostream &os) const = 0;
    /** Reset to the freshly-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic (or at least additive) event counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }

    /** Checkpoint restore: overwrite the count. */
    void restore(std::uint64_t v) { value_ = v; }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of submitted samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    /** Mean of all samples, 0 if none. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [0, buckets); samples at or beyond the top
 * land in an explicit overflow bucket (counted in samples() and mean(),
 * reported separately by dump/dumpJson so saturation is detectable).
 */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &group, std::string name, std::string desc,
              std::size_t buckets);

    void
    sample(std::uint64_t v, std::uint64_t count = 1)
    {
        if (v < buckets_.size())
            buckets_[static_cast<std::size_t>(v)] += count;
        else
            overflow_ += count;
        samples_ += count;
        sum_ += static_cast<double>(v) * static_cast<double>(count);
    }

    /**
     * Checkpoint restore: overwrite the measurement state. @p buckets must
     * match the configured bucket count.
     */
    void restore(std::vector<std::uint64_t> buckets, std::uint64_t overflow,
                 std::uint64_t samples, double sum);

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    /** Samples that fell at or beyond numBuckets(). */
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    /** Raw sample sum (exposed so checkpoints round-trip bit-exactly). */
    double sum() const { return sum_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

/**
 * Derived statistic: a value computed from other statistics at dump time
 * (e.g. IPC = commits / cycles), in the spirit of gem5's Formula stats.
 */
class Formula : public StatBase
{
  public:
    Formula(StatGroup &group, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(group, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {
    }

    double value() const { return fn_(); }

    void dump(std::ostream &os) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * Owner of a set of statistics. Statistics register on construction and are
 * dumped in registration order. The group does not own the statistics
 * objects (they are members of the structures being instrumented); it must
 * outlive them being dumped, not the stats themselves.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Called by StatBase's constructor. */
    void add(StatBase *stat) { stats_.push_back(stat); }

    /** Dump all registered statistics. */
    void dump(std::ostream &os) const;
    /** Dump all registered statistics as one JSON object. */
    void dumpJson(std::ostream &os) const;
    /** Reset all registered statistics. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
};

} // namespace wsrs
