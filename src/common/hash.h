/**
 * @file
 * Deterministic value-mixing used for dataflow verification.
 *
 * The out-of-order core and the in-order oracle both "execute" micro-ops by
 * hashing their operand values; equal commit-time values prove that renaming
 * and memory ordering delivered the architecturally-correct dataflow.
 */
#pragma once

#include <cstdint>

namespace wsrs {

/** 64-bit finalizer (murmur3 variant); never returns the identity. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Combine two values order-sensitively. */
inline std::uint64_t
mixCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a * 0x9e3779b97f4a7c15ull + b + 0x165667b19e3779f9ull);
}

/**
 * Dataflow hash of a micro-op execution.
 *
 * @param opcode_salt per-op-class salt so different operations on the same
 *                    inputs produce different results.
 * @param src1 value of the first operand (0 if absent).
 * @param src2 value of the second operand (0 if absent).
 */
inline std::uint64_t
executeHash(std::uint64_t opcode_salt, std::uint64_t src1, std::uint64_t src2)
{
    return mixCombine(mixCombine(opcode_salt, src1), src2);
}

} // namespace wsrs
