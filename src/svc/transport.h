/**
 * @file
 * Byte-stream transport abstraction for the sweep service.
 *
 * The coordinator/worker and serve protocols are framed byte streams (see
 * frame.h) over a pluggable transport. The first backend is a local
 * AF_UNIX stream socket — the deployment unit is "several worker
 * processes on one host" — but the interface is deliberately narrow
 * (blocking read/write, a pollable readiness fd, an acceptor) so a TCP or
 * filesystem-spool backend slots in without touching the protocol layers.
 *
 * Endpoint strings select the backend: "unix:/path/sock" (bare paths are
 * shorthand for unix). makeTransport() is the registry.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

namespace wsrs::svc {

/** Connected, blocking, bidirectional byte stream. */
class Stream
{
  public:
    virtual ~Stream() = default;

    /** Read up to @p len bytes; 0 = orderly EOF, negative = error. */
    virtual long read(void *buf, std::size_t len) = 0;

    /** Write the whole buffer; false on any error (peer gone, ...). */
    virtual bool writeAll(const void *buf, std::size_t len) = 0;

    /** Fd to poll(2) for read-readiness; -1 when unpollable. */
    virtual int pollFd() const = 0;

    /** Shut the stream down; further I/O fails. Idempotent. */
    virtual void close() = 0;
};

/** Accepting side of a transport endpoint. */
class Listener
{
  public:
    virtual ~Listener() = default;

    /** Block until a peer connects; null once closed. */
    virtual std::unique_ptr<Stream> accept() = 0;

    /** Fd to poll(2) for accept-readiness; -1 when unpollable. */
    virtual int pollFd() const = 0;

    /** The endpoint peers connect() to. */
    virtual std::string endpoint() const = 0;

    virtual void close() = 0;
};

/** A transport backend: endpoint factory for listeners and connections. */
class Transport
{
  public:
    virtual ~Transport() = default;

    virtual std::unique_ptr<Listener>
    listen(const std::string &endpoint) = 0;

    virtual std::unique_ptr<Stream>
    connect(const std::string &endpoint) = 0;
};

/** AF_UNIX stream-socket backend ("unix:<path>" endpoints). */
class UnixSocketTransport : public Transport
{
  public:
    std::unique_ptr<Listener> listen(const std::string &endpoint) override;
    std::unique_ptr<Stream> connect(const std::string &endpoint) override;
};

/**
 * Backend for @p endpoint ("unix:/path" or a bare filesystem path).
 * @throws wsrs::FatalError for unknown schemes.
 */
std::unique_ptr<Transport> makeTransport(const std::string &endpoint);

/** Strip a scheme prefix ("unix:") from an endpoint, if present. */
std::string endpointPath(const std::string &endpoint);

/**
 * In-process connected stream pair (socketpair(2)) — the loopback
 * "transport" used by tests and by same-process coordinator/worker
 * wiring.
 */
std::pair<std::unique_ptr<Stream>, std::unique_ptr<Stream>> localPair();

} // namespace wsrs::svc
