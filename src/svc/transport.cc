#include "transport.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "src/common/log.h"

namespace wsrs::svc {

namespace {

/** Stream over one connected socket/pipe fd (owning). */
class FdStream : public Stream
{
  public:
    explicit FdStream(int fd) : fd_(fd) {}
    ~FdStream() override { close(); }

    long
    read(void *buf, std::size_t len) override
    {
        if (fd_ < 0)
            return -1;
        for (;;) {
            const ssize_t n = ::read(fd_, buf, len);
            if (n >= 0)
                return static_cast<long>(n);
            if (errno == EINTR)
                continue;
            return -1;
        }
    }

    bool
    writeAll(const void *buf, std::size_t len) override
    {
        const char *p = static_cast<const char *>(buf);
        while (len > 0) {
            if (fd_ < 0)
                return false;
            const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == ENOTSOCK) {
                    // Plain pipe fds (tests): fall back to write(2).
                    const ssize_t w = ::write(fd_, p, len);
                    if (w < 0) {
                        if (errno == EINTR)
                            continue;
                        return false;
                    }
                    p += w;
                    len -= static_cast<std::size_t>(w);
                    continue;
                }
                return false;
            }
            p += n;
            len -= static_cast<std::size_t>(n);
        }
        return true;
    }

    int pollFd() const override { return fd_; }

    void
    close() override
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_ = -1;
};

class UnixListener : public Listener
{
  public:
    UnixListener(int fd, std::string path)
        : fd_(fd), path_(std::move(path))
    {
    }

    ~UnixListener() override { close(); }

    std::unique_ptr<Stream>
    accept() override
    {
        for (;;) {
            if (fd_ < 0)
                return nullptr;
            const int conn = ::accept(fd_, nullptr, nullptr);
            if (conn >= 0)
                return std::make_unique<FdStream>(conn);
            if (errno == EINTR)
                continue;
            return nullptr;
        }
    }

    int pollFd() const override { return fd_; }

    std::string endpoint() const override { return "unix:" + path_; }

    void
    close() override
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
            std::error_code ec;
            std::filesystem::remove(path_, ec);
        }
    }

  private:
    int fd_ = -1;
    std::string path_;
};

void
fillAddr(sockaddr_un &addr, const std::string &path)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("unix socket path '%s' exceeds the %zu-byte limit",
              path.c_str(), sizeof(addr.sun_path) - 1);
    std::memcpy(addr.sun_path, path.c_str(), path.size());
}

} // namespace

std::unique_ptr<Listener>
UnixSocketTransport::listen(const std::string &endpoint)
{
    const std::string path = endpointPath(endpoint);
    sockaddr_un addr;
    fillAddr(addr, path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatalIo("cannot create unix socket: %s", std::strerror(errno));
    // A stale socket file from a killed coordinator blocks bind; remove
    // it (connect() to a dead socket fails, so this cannot hijack a live
    // endpoint accidentally — deployments use per-run socket paths).
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatalIo("cannot bind unix socket '%s': %s", path.c_str(),
                std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        fatalIo("cannot listen on unix socket '%s': %s", path.c_str(),
                std::strerror(err));
    }
    return std::make_unique<UnixListener>(fd, path);
}

std::unique_ptr<Stream>
UnixSocketTransport::connect(const std::string &endpoint)
{
    const std::string path = endpointPath(endpoint);
    sockaddr_un addr;
    fillAddr(addr, path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatalIo("cannot create unix socket: %s", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        const int err = errno;
        ::close(fd);
        fatalIo("cannot connect to '%s': %s", path.c_str(),
                std::strerror(err));
    }
    return std::make_unique<FdStream>(fd);
}

std::string
endpointPath(const std::string &endpoint)
{
    if (endpoint.rfind("unix:", 0) == 0)
        return endpoint.substr(5);
    return endpoint;
}

std::unique_ptr<Transport>
makeTransport(const std::string &endpoint)
{
    const auto colon = endpoint.find(':');
    const std::string scheme =
        colon == std::string::npos ? "unix" : endpoint.substr(0, colon);
    if (scheme == "unix" || scheme.empty() || endpoint.rfind('/', 0) == 0)
        return std::make_unique<UnixSocketTransport>();
    fatal("unknown transport scheme '%s' in endpoint '%s' (supported: "
          "unix:<path>)",
          scheme.c_str(), endpoint.c_str());
}

std::pair<std::unique_ptr<Stream>, std::unique_ptr<Stream>>
localPair()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0)
        fatalIo("socketpair failed: %s", std::strerror(errno));
    return {std::make_unique<FdStream>(fds[0]),
            std::make_unique<FdStream>(fds[1])};
}

} // namespace wsrs::svc
