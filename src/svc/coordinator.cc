#include "coordinator.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <deque>

#include "src/common/log.h"
#include "src/runner/resume_journal.h"
#include "src/svc/frame.h"
#include "src/svc/proto.h"
#include "src/svc/shard.h"

namespace wsrs::svc {

namespace {

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One connected worker. */
struct Conn
{
    std::unique_ptr<Stream> stream;
    std::uint64_t workerId = 0; ///< 0 until Hello.
    std::int64_t pid = 0;
    bool helloDone = false;
    bool waitingClaim = false; ///< Sent Claim, no shard was available.
    bool retired = false;      ///< Got NoWork; only stats/EOF expected.
    std::uint64_t jobsDone = 0;
    /** coordinator_now - worker_now at Hello: added to worker span
     *  timestamps to land them on the coordinator's timeline. */
    std::int64_t clockOffsetUs = 0;
};

/** Lease-queue state of one shard. */
struct ShardState
{
    enum class Status { Pending, Leased, Done, Failed };

    Shard shard;
    Status status = Status::Pending;
    unsigned attempts = 0;       ///< Leases granted so far.
    std::int64_t notBeforeMs = 0;///< Backoff gate for the next lease.
    std::int64_t deadlineMs = 0; ///< Lease expiry while Leased.
    Conn *owner = nullptr;       ///< Lease holder while Leased.
    std::int64_t leaseStartUs = 0; ///< Span start of the current lease.
};

} // namespace

Coordinator::Coordinator(Options options, std::vector<runner::SweepJob> jobs)
    : options_(std::move(options)), jobs_(std::move(jobs))
{
    sweepKey_ = runner::sweepKeyHash(jobs_);
}

Coordinator::~Coordinator() = default;

void
Coordinator::bind()
{
    if (listener_)
        return;
    if (options_.endpoint.empty())
        fatal("coordinator needs a listen endpoint (e.g. unix:/tmp/x.sock)");
    listener_ = makeTransport(options_.endpoint)->listen(options_.endpoint);
}

std::string
Coordinator::endpoint() const
{
    return listener_ ? listener_->endpoint() : options_.endpoint;
}

std::vector<runner::SweepOutcome>
Coordinator::run()
{
    bind();

    telemetry_ = {};
    telemetry_.warmupReuse = options_.reuseWarmup;
    svcReport_ = {};

    // The service counters live as registry instruments (absorbing the
    // old ad-hoc struct): bound to the caller's registry when one is
    // supplied (live `/metrics` visibility), else to a fresh per-run one.
    // svcReport_.counters is snapshotted from them at merge.
    obs::MetricsRegistry localRegistry;
    obs::SvcMetrics ctr(options_.metrics ? *options_.metrics
                                         : localRegistry);

    obs::SpanLog *const spans = options_.spans;
    const std::uint64_t traceId =
        spans ? (sweepKey_ ^
                 static_cast<std::uint64_t>(obs::monotonicMicros())) | 1
              : 0;

    const std::size_t total = jobs_.size();
    std::vector<runner::SweepOutcome> outcomes(total);
    std::vector<bool> have(total, false);
    std::size_t completed = 0;
    std::vector<std::int64_t> jobSpanStart(total, 0);

    // The resume journal doubles as the authoritative work queue: jobs
    // already journaled are delivered as recovered events and never
    // sharded out.
    std::unique_ptr<runner::ResumeJournal> journal;
    if (!options_.journalPath.empty()) {
        journal = std::make_unique<runner::ResumeJournal>(
            options_.journalPath, sweepKey_, total, options_.resume);
        telemetry_.resumed = journal->resumed();
        telemetry_.skippedRuns = journal->recoveredCount();
        for (std::size_t i = 0; i < total; ++i) {
            if (!journal->recoveredMask()[i])
                continue;
            outcomes[i] = journal->recovered()[i];
            have[i] = true;
            ++completed;
            if (options_.onEvent) {
                runner::SweepEvent ev;
                ev.index = i;
                ev.completed = completed;
                ev.total = total;
                ev.outcome = &outcomes[i];
                options_.onEvent(ev);
            }
        }
    }

    std::vector<std::uint64_t> pending;
    for (std::size_t i = 0; i < total; ++i)
        if (!have[i])
            pending.push_back(i);

    std::vector<ShardState> shards;
    for (Shard &s : planShards(pending, options_.shardSize)) {
        ShardState st;
        st.shard = std::move(s);
        shards.push_back(std::move(st));
    }
    ctr.shards.set(static_cast<std::int64_t>(shards.size()));
    ctr.shardSize.set(static_cast<std::int64_t>(
        options_.shardSize == 0 ? 1 : options_.shardSize));

    if (spans) {
        // Every not-yet-recovered job's root span opens now: enqueued at
        // sweep submission, closed when its outcome merges.
        const std::int64_t now = obs::monotonicMicros();
        for (const std::uint64_t i : pending) {
            jobSpanStart[i] = now;
            spans->nameJob(i, jobs_[i].profile.name);
        }
    }

    std::vector<std::unique_ptr<Conn>> conns;
    std::uint64_t nextWorkerId = 1;
    std::int64_t drainDeadline = -1; ///< Set once the sweep completes.

    // --- helpers over the mutable state above ---------------------------

    const auto allDone = [&] { return completed == total; };

    const auto acceptOutcome = [&](std::uint64_t index,
                                   runner::SweepOutcome out) {
        if (index >= total || have[index]) {
            if (index < total) {
                ctr.duplicateResults.add();
                if (spans)
                    spans->instant("duplicate-dropped", index, 0, 0,
                                   obs::monotonicMicros());
            }
            return;
        }
        outcomes[index] = std::move(out);
        have[index] = true;
        ++completed;
        if (journal)
            journal->record(index, outcomes[index]);
        if (spans) {
            const std::int64_t now = obs::monotonicMicros();
            const runner::SweepOutcome &o = outcomes[index];
            if (o.ok)
                spans->nameJob(index, o.results.benchmark + "@" +
                                          o.results.machine);
            if (jobSpanStart[index])
                spans->complete("job", index, 0, 0, jobSpanStart[index],
                                now - jobSpanStart[index],
                                o.ok ? "" : "failed");
            spans->instant("merged", index, 0, 0, now);
        }
        if (options_.onEvent) {
            runner::SweepEvent ev;
            ev.index = index;
            ev.completed = completed;
            ev.total = total;
            ev.outcome = &outcomes[index];
            options_.onEvent(ev);
        }
    };

    /** Remaining (un-arrived) jobs of a shard. */
    const auto missingJobs = [&](const ShardState &st) {
        std::vector<std::uint64_t> missing;
        for (const std::uint64_t j : st.shard.jobs)
            if (!have[j])
                missing.push_back(j);
        return missing;
    };

    /** Close the current lease's per-job "attempt" spans. */
    const auto closeAttemptSpans = [&](const ShardState &st,
                                       const char *detail) {
        if (!spans || !st.leaseStartUs)
            return;
        const std::int64_t now = obs::monotonicMicros();
        const std::uint64_t worker = st.owner ? st.owner->workerId : 0;
        for (const std::uint64_t j : st.shard.jobs)
            spans->complete("attempt", j, st.attempts, worker,
                            st.leaseStartUs, now - st.leaseStartUs,
                            detail);
    };

    /** Return a shard to the queue after its lease holder failed. */
    const auto requeueShard = [&](ShardState &st, bool timedOut) {
        closeAttemptSpans(st, timedOut ? "timed-out" : "worker-died");
        st.owner = nullptr;
        st.leaseStartUs = 0;
        std::vector<std::uint64_t> missing = missingJobs(st);
        if (timedOut)
            ctr.leaseTimeouts.add();
        else
            ctr.leaseRetries.add();
        if (missing.empty()) {
            st.status = ShardState::Status::Done;
            return;
        }
        if (spans) {
            const std::int64_t now = obs::monotonicMicros();
            for (const std::uint64_t j : missing)
                spans->instant("re-leased", j, st.attempts, 0, now,
                               timedOut ? "timed-out" : "worker-died");
        }
        if (st.attempts > options_.maxLeaseRetries) {
            st.status = ShardState::Status::Failed;
            ctr.shardsFailed.add();
            for (const std::uint64_t j : missing) {
                runner::SweepOutcome out;
                out.ok = false;
                out.error = strprintf(
                    "shard %llu exhausted its %u lease retries "
                    "(workers kept dying or timing out)",
                    static_cast<unsigned long long>(st.shard.id),
                    options_.maxLeaseRetries);
                acceptOutcome(j, std::move(out));
            }
            return;
        }
        st.status = ShardState::Status::Pending;
        st.shard.jobs = std::move(missing);
        // Exponential backoff: base * 2^(attempts-1), capped at 30 s.
        std::uint64_t backoff = options_.leaseBackoffMs;
        for (unsigned i = 1; i < st.attempts && backoff < 30000; ++i)
            backoff *= 2;
        st.notBeforeMs = nowMs() + static_cast<std::int64_t>(
                                       std::min<std::uint64_t>(backoff,
                                                               30000));
    };

    /** Drop a connection, re-queueing anything it held. */
    const auto dropConn = [&](Conn *conn, bool timedOut) {
        if (conn->helloDone && !conn->retired)
            ctr.workersLost.add();
        for (ShardState &st : shards)
            if (st.status == ShardState::Status::Leased && st.owner == conn)
                requeueShard(st, timedOut);
        conn->stream->close();
        for (obs::WorkerLiveness &w : svcReport_.workers)
            if (w.id == conn->workerId)
                w.alive = false;
        std::erase_if(conns, [&](const std::unique_ptr<Conn> &c) {
            return c.get() == conn;
        });
    };

    /** Lowest-id pending shard whose backoff gate has passed. */
    const auto nextLeasable = [&]() -> ShardState * {
        const std::int64_t now = nowMs();
        for (ShardState &st : shards)
            if (st.status == ShardState::Status::Pending &&
                st.notBeforeMs <= now)
                return &st;
        return nullptr;
    };

    /** Answer as many parked Claim frames as shards allow. */
    const auto satisfyClaims = [&] {
        std::vector<Conn *> broken; // Deferred: dropConn mutates conns.
        for (auto &cptr : conns) {
            Conn *conn = cptr.get();
            if (!conn->waitingClaim)
                continue;
            if (allDone()) {
                conn->waitingClaim = false;
                conn->retired = true;
                sendFrame(*conn->stream, FrameType::NoWork, "{}", traceId);
                continue;
            }
            ShardState *st = nextLeasable();
            if (!st)
                continue;
            conn->waitingClaim = false;
            st->status = ShardState::Status::Leased;
            st->owner = conn;
            ++st->attempts;
            st->deadlineMs =
                nowMs() + static_cast<std::int64_t>(
                              options_.perJobTimeoutMs *
                              std::max<std::size_t>(st->shard.jobs.size(),
                                                    1));
            st->leaseStartUs = spans ? obs::monotonicMicros() : 0;
            ctr.leasesGranted.add();
            if (!sendFrame(*conn->stream, FrameType::Lease,
                           leasePayload(st->shard, st->attempts), traceId))
                broken.push_back(conn);
        }
        for (Conn *conn : broken)
            dropConn(conn, false);
    };

    /** Handle one frame from @p conn; true keeps the connection. */
    const auto handleFrame = [&](Conn *conn, const Frame &frame) -> bool {
        switch (frame.type) {
          case FrameType::Hello: {
            const HelloInfo hello = parseHello(frame.payload);
            if (hello.sweepKey != sweepKey_ || hello.jobs != total) {
                const std::string why = strprintf(
                    "sweep identity mismatch: worker pid %lld presents "
                    "key %s over %llu jobs, coordinator runs key %s over "
                    "%llu jobs",
                    static_cast<long long>(hello.pid),
                    hexKey(hello.sweepKey).c_str(),
                    static_cast<unsigned long long>(hello.jobs),
                    hexKey(sweepKey_).c_str(),
                    static_cast<unsigned long long>(total));
                sendFrame(*conn->stream, FrameType::HelloAck,
                          helloAckPayload(false, why), traceId);
                return false;
            }
            conn->helloDone = true;
            conn->pid = hello.pid;
            conn->workerId = nextWorkerId++;
            // Skew normalization: assume the Hello arrived "now", so the
            // worker clock at hello.monoUs maps onto our clock here. The
            // residual (one-way transit) is sub-millisecond on local
            // sockets; the span writer clamps whatever survives.
            conn->clockOffsetUs =
                hello.monoUs ? obs::monotonicMicros() - hello.monoUs : 0;
            ctr.workersSeen.add();
            obs::WorkerLiveness w;
            w.id = conn->workerId;
            w.pid = hello.pid;
            w.alive = true;
            svcReport_.workers.push_back(w);
            return sendFrame(*conn->stream, FrameType::HelloAck,
                             helloAckPayload(true, ""), traceId);
          }
          case FrameType::Claim:
            if (!conn->helloDone) {
                sendFrame(*conn->stream, FrameType::Error,
                          errorPayload("claim before hello"), traceId);
                return false;
            }
            conn->waitingClaim = true;
            return true;
          case FrameType::JobDone: {
            const JobDone done = decodeJobDone(frame.payload);
            acceptOutcome(done.index, done.outcome);
            ++conn->jobsDone;
            for (obs::WorkerLiveness &w : svcReport_.workers)
                if (w.id == conn->workerId)
                    w.jobsDone = conn->jobsDone;
            return true;
          }
          case FrameType::ShardDone: {
            const std::uint64_t id = parseShardDone(frame.payload);
            for (ShardState &st : shards) {
                if (st.shard.id != id || st.owner != conn)
                    continue;
                if (missingJobs(st).empty()) {
                    closeAttemptSpans(st, "done");
                    st.status = ShardState::Status::Done;
                    st.owner = nullptr;
                    st.leaseStartUs = 0;
                } else {
                    // Worker claims completion but jobs are missing:
                    // treat like a failed lease so they are retried.
                    requeueShard(st, false);
                }
            }
            return true;
          }
          case FrameType::SpanBatch: {
            if (!spans)
                return true; // Stale batch from an untraced run; drop.
            for (obs::SpanEvent e : parseSpanBatch(frame.payload)) {
                e.worker = conn->workerId;
                e.startUs += conn->clockOffsetUs;
                spans->add(std::move(e));
            }
            return true;
          }
          case FrameType::WorkerStats: {
            const WorkerStatsInfo stats = parseWorkerStats(frame.payload);
            // An in-memory miss satisfied by the shared disk cache is a
            // hit sweep-wide, not a rebuild.
            telemetry_.warmupHits += stats.warmupHits + stats.sharedHits;
            telemetry_.warmupMisses +=
                stats.warmupMisses -
                std::min(stats.warmupMisses, stats.sharedHits);
            return true;
          }
          default:
            sendFrame(*conn->stream, FrameType::Error,
                      errorPayload(strprintf("unexpected %s frame",
                                             frameTypeName(frame.type))),
                      traceId);
            return false;
        }
    };

    // --- event loop -----------------------------------------------------

    while (true) {
        if (allDone() && drainDeadline < 0)
            drainDeadline = nowMs() + static_cast<std::int64_t>(
                                          options_.drainGraceMs);
        satisfyClaims(); // Leases while running, NoWork once drained.
        if (allDone() && (conns.empty() || nowMs() >= drainDeadline))
            break;

        // Poll timeout: nearest lease deadline, backoff expiry or drain
        // deadline; 500 ms keeps the loop responsive regardless.
        const std::int64_t now = nowMs();
        std::int64_t wakeAt = now + 500;
        for (const ShardState &st : shards) {
            if (st.status == ShardState::Status::Leased)
                wakeAt = std::min(wakeAt, st.deadlineMs);
            else if (st.status == ShardState::Status::Pending &&
                     st.notBeforeMs > now)
                wakeAt = std::min(wakeAt, st.notBeforeMs);
        }
        if (drainDeadline >= 0)
            wakeAt = std::min(wakeAt, drainDeadline);

        std::vector<pollfd> fds;
        fds.push_back({listener_->pollFd(), POLLIN, 0});
        std::vector<Conn *> polled;
        for (auto &cptr : conns) {
            fds.push_back({cptr->stream->pollFd(), POLLIN, 0});
            polled.push_back(cptr.get());
        }
        const int timeout =
            static_cast<int>(std::max<std::int64_t>(wakeAt - now, 0));
        ::poll(fds.data(), fds.size(), timeout);

        if (fds[0].revents & POLLIN) {
            if (std::unique_ptr<Stream> peer = listener_->accept()) {
                auto conn = std::make_unique<Conn>();
                conn->stream = std::move(peer);
                conns.push_back(std::move(conn));
            }
        }

        for (std::size_t i = 0; i < polled.size(); ++i) {
            if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Conn *conn = polled[i];
            // The conn may already have been dropped by a send failure
            // while serving an earlier fd this iteration.
            const bool stillHere =
                std::any_of(conns.begin(), conns.end(),
                            [&](const std::unique_ptr<Conn> &c) {
                                return c.get() == conn;
                            });
            if (!stillHere)
                continue;
            try {
                Frame frame;
                if (!recvFrame(*conn->stream, frame)) {
                    dropConn(conn, false); // Orderly EOF (or SIGKILL).
                    continue;
                }
                if (!handleFrame(conn, frame))
                    dropConn(conn, false);
            } catch (const FatalError &e) {
                std::fprintf(stderr,
                             "wsrs-sim: coordinator: dropping worker "
                             "%llu: %s\n",
                             static_cast<unsigned long long>(
                                 conn->workerId),
                             e.what());
                dropConn(conn, false);
            }
        }

        // Expired leases: the holder is hung — drop it, which re-queues
        // every shard it holds (this one counted as a timeout).
        const std::int64_t after = nowMs();
        for (ShardState &st : shards) {
            if (st.status != ShardState::Status::Leased ||
                st.deadlineMs > after)
                continue;
            Conn *owner = st.owner;
            requeueShard(st, true);
            if (owner)
                dropConn(owner, true);
        }
    }

    for (auto &cptr : conns)
        cptr->stream->close();
    conns.clear();
    listener_->close();

    svcReport_.counters = ctr.snapshot();
    return outcomes;
}

} // namespace wsrs::svc
