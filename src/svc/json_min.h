/**
 * @file
 * Minimal strict JSON value parser for the service protocol.
 *
 * The sweep service's control frames (handshakes, leases, sweep requests,
 * status replies) carry small JSON bodies. This parser builds a value tree
 * for exactly one RFC 8259 document — same strictness contract as
 * tests/support/json_lint.h and Python's json.load — with integer
 * preservation: numbers without fraction/exponent that fit an int64 are
 * kept exact (job indices and 2^53-unfriendly counters survive).
 *
 * It is deliberately tiny: no streaming, no comments, no relaxed mode.
 * Parse errors throw wsrs::FatalError naming the byte offset.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wsrs::svc {

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null, Bool, Int, Double, String, Array, Object
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    bool asBool() const;
    /** Int value; a Double that is integral converts, others throw. */
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** Object member or null-kind sentinel when absent. */
    const JsonValue &get(const std::string &key) const;
    bool has(const std::string &key) const;

    /** Typed object accessors with defaults (absent -> default). */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    bool getBool(const std::string &key, bool def) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;

    // Construction (used by the parser; also handy in tests).
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool v);
    static JsonValue makeInt(std::int64_t v);
    static JsonValue makeDouble(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue makeObject(std::map<std::string, JsonValue> v);

  private:
    Kind kind_ = Kind::Null;
    bool b_ = false;
    std::int64_t i_ = 0;
    double d_ = 0;
    std::string s_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/**
 * Parse exactly one JSON document (trailing garbage is an error).
 * @param what names the document in error messages (e.g. a frame type).
 * @throws wsrs::FatalError on malformed input.
 */
JsonValue parseJson(std::string_view text, const std::string &what);

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string jsonEscapeMin(std::string_view s);

} // namespace wsrs::svc
