/**
 * @file
 * Streaming protocol frame log for the sweep daemon.
 *
 * The daemon's flight recorder used to buffer frames in memory and dump
 * one JSON document at stop — which meant a SIGKILLed daemon left no log
 * at all. FrameLogWriter streams instead: one line-delimited JSON record
 * per frame (`wsrs-svc-frames-v1`, `"format": "jsonl"`), appended through
 * a single buffered writer shared by every thread. Lines are *not*
 * synced per frame; the daemon calls flush() explicitly whenever its
 * admission queue drains, so the on-disk log trails live traffic by at
 * most one busy burst. A crash can therefore tear the final line —
 * readers (scripts/check_stats_schema.py, scripts/frame_log_report.py)
 * must tolerate a torn tail and treat the trailer line as optional.
 *
 * File layout:
 *   {"schema": "wsrs-svc-frames-v1", "format": "jsonl"}     <- header
 *   {"t_ms": .., "conn": .., "dir": "rx", "type": ..,
 *    "payload_bytes": .., "body": ..}                       <- per frame
 *   {"frames": N, "dropped_frames": M}                      <- trailer
 */
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace wsrs::svc {

/** Thread-safe append-only JSONL frame log. */
class FrameLogWriter
{
  public:
    /** Retention bound: frames past this are counted, not written. */
    static constexpr std::uint64_t kMaxFrames = 65536;

    /**
     * Open @p path and write the header line. A path that cannot be
     * opened leaves the writer in a disarmed state (ok() == false);
     * appends become no-ops instead of taking the daemon down.
     */
    explicit FrameLogWriter(const std::string &path);
    ~FrameLogWriter();

    FrameLogWriter(const FrameLogWriter &) = delete;
    FrameLogWriter &operator=(const FrameLogWriter &) = delete;

    bool ok() const { return ok_; }

    /**
     * Append one frame record. @p body must be a complete JSON value
     * (object, string, ...) or empty, which is recorded as null —
     * binary and oversized payloads pass "" and keep payload_bytes.
     */
    void append(std::uint64_t conn, std::string_view dir,
                std::string_view type, std::string_view body,
                std::uint64_t payload_bytes);

    /** Push buffered lines to the filesystem (called on queue drain). */
    void flush();

    /** Write the trailer line and close. Idempotent. */
    void finish();

  private:
    std::mutex mu_;
    std::ofstream os_;
    std::int64_t t0Us_ = 0; ///< monotonic epoch of the log.
    std::uint64_t frames_ = 0;
    std::uint64_t dropped_ = 0;
    bool ok_ = false;
    bool finished_ = false;
};

} // namespace wsrs::svc
