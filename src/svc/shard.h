/**
 * @file
 * Shard planning for the distributed sweep coordinator.
 *
 * The coordinator treats the resume journal as a sharded work queue: the
 * sweep's job indices that are *not* already journaled are partitioned
 * into contiguous, disjoint shards of at most shardSize jobs, in
 * submission order. Contiguity matters twice: jobs of one benchmark are
 * adjacent in the Figure 4/5 matrix, so a shard's jobs usually share a
 * trace recording and a warm-up snapshot inside the worker; and the
 * merged report is submission-ordered, so early shards unblock the
 * streamed-output prefix first.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace wsrs::svc {

/** One leaseable unit of work: job indices in submission order. */
struct Shard
{
    std::uint64_t id = 0;
    std::vector<std::uint64_t> jobs;
};

/**
 * Partition @p pending (submission-ordered job indices) into shards of at
 * most @p shard_size jobs. shard_size 0 is promoted to 1.
 */
std::vector<Shard> planShards(const std::vector<std::uint64_t> &pending,
                              std::uint64_t shard_size);

} // namespace wsrs::svc
