/**
 * @file
 * Payload codecs for the coordinator/worker protocol.
 *
 * Control frames carry small JSON bodies (parsed strictly by json_min);
 * JobDone carries binary journal-codec bytes so a streamed outcome and a
 * journaled one are the same payload. Sweep keys travel as 16-digit
 * lower-case hex strings — JSON numbers are doubles on many readers and
 * would silently round a 64-bit hash.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/span_log.h"
#include "src/runner/sweep_runner.h"
#include "src/svc/shard.h"

namespace wsrs::svc {

/** 64-bit key as a fixed-width lower-case hex string. */
std::string hexKey(std::uint64_t key);
/** Inverse of hexKey; throws FatalError on malformed input. */
std::uint64_t parseHexKey(const std::string &text,
                          const std::string &what);

/** Decoded Hello frame body. */
struct HelloInfo
{
    std::string role;           ///< "worker".
    std::int64_t pid = 0;
    std::uint64_t sweepKey = 0; ///< sweepKeyHash of the worker's job list.
    std::uint64_t jobs = 0;     ///< Worker's job-list length.
    /** Worker's monotonic clock (obs::monotonicMicros) at handshake;
     *  the coordinator derives its skew-normalization offset from this
     *  (0 = worker predates span telemetry). */
    std::int64_t monoUs = 0;
};

std::string helloPayload(std::int64_t pid, std::uint64_t sweep_key,
                         std::uint64_t num_jobs,
                         std::int64_t mono_us = 0);
HelloInfo parseHello(const std::string &payload);

std::string helloAckPayload(bool ok, const std::string &error);
/** @return empty string when ok, else the refusal message. */
std::string parseHelloAck(const std::string &payload);

/** Decoded Lease frame body: the shard plus its lease attempt number
 *  (1-based; >1 means the shard is being retried after a loss). */
struct LeaseInfo
{
    Shard shard;
    std::uint32_t attempt = 1;
};

std::string leasePayload(const Shard &shard, std::uint32_t attempt = 1);
LeaseInfo parseLease(const std::string &payload);

std::string shardDonePayload(std::uint64_t shard_id);
std::uint64_t parseShardDone(const std::string &payload);

/** Binary JobDone body: ckpt::Writer{u64 index, str outcomeBytes} where
 *  outcomeBytes is the journal's encodeOutcome payload. */
std::string encodeJobDone(std::uint64_t index,
                          const runner::SweepOutcome &out);
struct JobDone
{
    std::uint64_t index = 0;
    runner::SweepOutcome outcome;
};
JobDone decodeJobDone(const std::string &payload);

/** Warm-up cache counters a retiring worker reports. */
struct WorkerStatsInfo
{
    std::uint64_t jobsRun = 0;
    std::uint64_t warmupHits = 0;
    std::uint64_t warmupMisses = 0;
    std::uint64_t sharedHits = 0;     ///< Cross-process disk-cache hits.
    std::uint64_t sharedMisses = 0;
    std::uint64_t sharedRebuilds = 0; ///< Corrupt entries quarantined.
};

std::string workerStatsPayload(const WorkerStatsInfo &stats);
WorkerStatsInfo parseWorkerStats(const std::string &payload);

/** Binary SpanBatch body: worker-recorded span events, timestamps on the
 *  worker's own monotonic clock (the coordinator normalizes them). */
std::string spanBatchPayload(const std::vector<obs::SpanEvent> &events);
std::vector<obs::SpanEvent> parseSpanBatch(const std::string &payload);

std::string errorPayload(const std::string &message);
std::string parseErrorPayload(const std::string &payload);

} // namespace wsrs::svc
