#include "shard.h"

namespace wsrs::svc {

std::vector<Shard>
planShards(const std::vector<std::uint64_t> &pending,
           std::uint64_t shard_size)
{
    if (shard_size == 0)
        shard_size = 1;
    std::vector<Shard> shards;
    Shard current;
    for (const std::uint64_t job : pending) {
        if (current.jobs.size() >= shard_size) {
            shards.push_back(std::move(current));
            current = Shard{};
            current.id = shards.size();
        }
        current.jobs.push_back(job);
    }
    if (!current.jobs.empty())
        shards.push_back(std::move(current));
    return shards;
}

} // namespace wsrs::svc
