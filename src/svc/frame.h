/**
 * @file
 * Length-prefixed, CRC-checked message framing for the sweep service.
 *
 * Wire layout (all integers little-endian):
 *
 *   frame := magic[4]="WSVF" u32 type u64 traceId u64 payloadLen payload
 *            u32 crc32(type || traceId || payloadLen || payload)
 *
 * traceId is the sweep's telemetry trace identifier (0 = untraced): the
 * coordinator mints it when the sweep is submitted and stamps it on every
 * frame it sends; workers echo it back, which propagates the id across
 * the process boundary without touching any payload codec (see
 * docs/observability.md, "service telemetry").
 *
 * Control frames (handshakes, leases, requests, status) carry JSON
 * payloads; JobDone carries the binary ckpt::Writer encoding of a
 * SweepOutcome (the journal codec, reused verbatim so a streamed result
 * and a journaled one are the same bytes). Payloads are bounded
 * (kMaxFramePayload) so a broken or malicious peer cannot make a receiver
 * buffer unboundedly; anything damaged — bad magic, oversized length,
 * truncation, CRC mismatch — is an IoError naming what broke, mirroring
 * the checkpoint container's diagnostics.
 */
#pragma once

#include <cstdint>
#include <string>

#include "src/svc/transport.h"

namespace wsrs::svc {

/** Frame type tags (wire values are stable; append only). */
enum class FrameType : std::uint32_t {
    // Coordinator <-> worker.
    Hello = 1,       ///< worker->coord JSON {role, pid, sweep_key, jobs}.
    HelloAck = 2,    ///< coord->worker JSON {ok, error?}.
    Claim = 3,       ///< worker->coord JSON {}.
    Lease = 4,       ///< coord->worker JSON {shard, jobs: [indices]}.
    NoWork = 5,      ///< coord->worker JSON {}: sweep drained, retire.
    JobDone = 6,     ///< worker->coord binary: u64 index || outcome.
    ShardDone = 7,   ///< worker->coord JSON {shard}.
    WorkerStats = 8, ///< worker->coord JSON warm-up cache counters.
    SpanBatch = 9,   ///< worker->coord binary span events (proto.h).

    // Client <-> serve daemon.
    SweepRequest = 16,  ///< client->daemon JSON sweep spec.
    SweepAccepted = 17, ///< daemon->client JSON {request, queued_ahead}.
    SweepRejected = 18, ///< daemon->client JSON {retry_after_ms, reason}.
    SweepResult = 19,   ///< daemon->client JSON: wsrs-sweep-report-v1.
    StatusRequest = 20, ///< client->daemon JSON {}.
    StatusReply = 21,   ///< daemon->client JSON wsrs-svc-status-v1.
    Error = 22,         ///< either way JSON {error}.
};

/** Human-readable frame-type name (diagnostics, frame logs). */
const char *frameTypeName(FrameType type);

/** Hard upper bound on a frame payload (64 MiB). */
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::uint64_t traceId = 0; ///< Sweep telemetry trace (0 = untraced).
    std::string payload;
};

/** Serialize a frame to its wire bytes. */
std::string encodeFrame(FrameType type, std::string_view payload,
                        std::uint64_t traceId = 0);

/** Send one frame; false when the peer is gone. */
bool sendFrame(Stream &stream, FrameType type, std::string_view payload,
               std::uint64_t traceId = 0);

/**
 * Receive exactly one frame.
 * @return false on orderly EOF before the first byte.
 * @throws wsrs::IoError on torn frames, bad magic, oversized payloads or
 *         CRC mismatch (with the offending values in the message).
 */
bool recvFrame(Stream &stream, Frame &out);

} // namespace wsrs::svc
