#include "frame_log.h"

#include "src/obs/span_log.h"

namespace wsrs::svc {

FrameLogWriter::FrameLogWriter(const std::string &path)
{
    os_.open(path);
    if (!os_)
        return;
    ok_ = true;
    t0Us_ = obs::monotonicMicros();
    os_ << "{\"schema\": \"wsrs-svc-frames-v1\", \"format\": \"jsonl\"}\n";
}

FrameLogWriter::~FrameLogWriter()
{
    finish();
}

void
FrameLogWriter::append(std::uint64_t conn, std::string_view dir,
                       std::string_view type, std::string_view body,
                       std::uint64_t payload_bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!ok_ || finished_)
        return;
    if (frames_ >= kMaxFrames) {
        ++dropped_;
        return;
    }
    ++frames_;
    os_ << "{\"t_ms\": " << (obs::monotonicMicros() - t0Us_) / 1000
        << ", \"conn\": " << conn << ", \"dir\": \"" << dir
        << "\", \"type\": \"" << type
        << "\", \"payload_bytes\": " << payload_bytes << ", \"body\": ";
    if (body.empty()) {
        os_ << "null";
    } else {
        // One record per line: raw newlines inside a *valid* JSON body
        // can only be insignificant whitespace (string contents must
        // escape them), so flattening keeps the body equivalent.
        for (const char c : body)
            os_ << ((c == '\n' || c == '\r') ? ' ' : c);
    }
    os_ << "}\n";
}

void
FrameLogWriter::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (ok_ && !finished_)
        os_.flush();
}

void
FrameLogWriter::finish()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!ok_ || finished_)
        return;
    finished_ = true;
    os_ << "{\"frames\": " << frames_
        << ", \"dropped_frames\": " << dropped_ << "}\n";
    os_.flush();
    os_.close();
}

} // namespace wsrs::svc
