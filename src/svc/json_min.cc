#include "json_min.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"

namespace wsrs::svc {

namespace {

const JsonValue kNullValue = JsonValue::makeNull();

class Parser
{
  public:
    Parser(std::string_view text, const std::string &what)
        : text_(text), what_(what)
    {
    }

    JsonValue
    parse()
    {
        skipWs();
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON value");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 48;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        fatal("%s: JSON parse error at offset %zu: %s", what_.c_str(),
              pos_, msg.c_str());
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    JsonValue
    value()
    {
        if (++depth_ > kMaxDepth)
            fail("nesting too deep");
        if (atEnd())
            fail("unexpected end of input");
        JsonValue v;
        switch (peek()) {
          case '{': v = object(); break;
          case '[': v = array(); break;
          case '"': v = JsonValue::makeString(string()); break;
          case 't': literal("true");
            v = JsonValue::makeBool(true); break;
          case 'f': literal("false");
            v = JsonValue::makeBool(false); break;
          case 'n': literal("null");
            v = JsonValue::makeNull(); break;
          default:  v = number(); break;
        }
        --depth_;
        return v;
    }

    JsonValue
    object()
    {
        ++pos_; // '{'
        std::map<std::string, JsonValue> members;
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return JsonValue::makeObject(std::move(members));
        }
        for (;;) {
            skipWs();
            if (atEnd() || peek() != '"')
                fail("expected object key string");
            std::string key = string();
            skipWs();
            if (atEnd() || peek() != ':')
                fail("expected ':' after object key");
            ++pos_;
            skipWs();
            members[std::move(key)] = value();
            skipWs();
            if (atEnd())
                fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return JsonValue::makeObject(std::move(members));
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        ++pos_; // '['
        std::vector<JsonValue> items;
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return JsonValue::makeArray(std::move(items));
        }
        for (;;) {
            skipWs();
            items.push_back(value());
            skipWs();
            if (atEnd())
                fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return JsonValue::makeArray(std::move(items));
            }
            fail("expected ',' or ']' in array");
        }
    }

    static bool
    isHex(char c)
    {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    }

    static int
    hexVal(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return c - 'A' + 10;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    std::string
    string()
    {
        ++pos_; // opening '"'
        std::string out;
        while (!atEnd()) {
            const unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c < 0x20)
                fail("unescaped control character in string");
            if (c == '\\') {
                ++pos_;
                if (atEnd())
                    fail("dangling escape");
                const char e = text_[pos_];
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (atEnd() || !isHex(text_[pos_]))
                            fail("bad \\u escape");
                        cp = (cp << 4) | static_cast<unsigned>(
                                             hexVal(text_[pos_]));
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  default:
                    fail("invalid escape character");
                }
                ++pos_;
                continue;
            }
            out.push_back(static_cast<char>(c));
            ++pos_;
        }
        fail("unterminated string");
    }

    void
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("invalid literal");
        pos_ += word.size();
    }

    bool digit() const { return !atEnd() && peek() >= '0' && peek() <= '9'; }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        bool integral = true;
        if (peek() == '-')
            ++pos_;
        if (!digit())
            fail("invalid number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (digit())
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            integral = false;
            ++pos_;
            if (!digit())
                fail("digits required after decimal point");
            while (digit())
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (!digit())
                fail("digits required in exponent");
            while (digit())
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (integral) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return JsonValue::makeInt(v);
            // Out of int64 range: fall through to double.
        }
        return JsonValue::makeDouble(std::strtod(token.c_str(), nullptr));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string what_;
};

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is not a bool");
    return b_;
}

std::int64_t
JsonValue::asInt() const
{
    if (kind_ == Kind::Int)
        return i_;
    if (kind_ == Kind::Double &&
        d_ == static_cast<double>(static_cast<std::int64_t>(d_)))
        return static_cast<std::int64_t>(d_);
    fatal("JSON value is not an integer");
}

double
JsonValue::asDouble() const
{
    if (kind_ == Kind::Double)
        return d_;
    if (kind_ == Kind::Int)
        return static_cast<double>(i_);
    fatal("JSON value is not a number");
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is not a string");
    return s_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        fatal("JSON value is not an array");
    return arr_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        fatal("JSON value is not an object");
    return obj_;
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    const auto &members = asObject();
    const auto it = members.find(key);
    return it == members.end() ? kNullValue : it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return asObject().count(key) != 0;
}

std::int64_t
JsonValue::getInt(const std::string &key, std::int64_t def) const
{
    const JsonValue &v = get(key);
    return v.isNull() ? def : v.asInt();
}

bool
JsonValue::getBool(const std::string &key, bool def) const
{
    const JsonValue &v = get(key);
    return v.isNull() ? def : v.asBool();
}

std::string
JsonValue::getString(const std::string &key, const std::string &def) const
{
    const JsonValue &v = get(key);
    return v.isNull() ? def : v.asString();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.kind_ = Kind::Bool;
    j.b_ = v;
    return j;
}

JsonValue
JsonValue::makeInt(std::int64_t v)
{
    JsonValue j;
    j.kind_ = Kind::Int;
    j.i_ = v;
    return j;
}

JsonValue
JsonValue::makeDouble(double v)
{
    JsonValue j;
    j.kind_ = Kind::Double;
    j.d_ = v;
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.kind_ = Kind::String;
    j.s_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue j;
    j.kind_ = Kind::Array;
    j.arr_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> v)
{
    JsonValue j;
    j.kind_ = Kind::Object;
    j.obj_ = std::move(v);
    return j;
}

JsonValue
parseJson(std::string_view text, const std::string &what)
{
    return Parser(text, what).parse();
}

std::string
jsonEscapeMin(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    return out;
}

} // namespace wsrs::svc
