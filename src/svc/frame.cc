#include "frame.h"

#include <cstring>

#include "src/ckpt/io.h"
#include "src/common/log.h"

namespace wsrs::svc {

namespace {

constexpr char kFrameMagic[4] = {'W', 'S', 'V', 'F'};
// magic, type, traceId, length.
constexpr std::size_t kHeadBytes = 4 + 4 + 8 + 8;

void
putLe32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
putLe64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t
getLe32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

std::uint64_t
getLe64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

/** Read exactly @p len bytes. 1 = ok, 0 = EOF at a frame boundary
 *  (nothing read), throws on EOF mid-frame or stream error. */
int
readExact(Stream &stream, char *buf, std::size_t len, bool atBoundary)
{
    std::size_t done = 0;
    while (done < len) {
        const long n = stream.read(buf + done, len - done);
        if (n < 0)
            fatalIo("service stream read error after %zu bytes", done);
        if (n == 0) {
            if (done == 0 && atBoundary)
                return 0;
            fatalIo("service stream closed mid-frame: got %zu of %zu "
                    "bytes",
                    done, len);
        }
        done += static_cast<std::size_t>(n);
    }
    return 1;
}

std::uint32_t
frameCrc(FrameType type, std::uint64_t traceId, std::string_view payload)
{
    std::string head;
    putLe32(head, static_cast<std::uint32_t>(type));
    putLe64(head, traceId);
    putLe64(head, payload.size());
    std::uint32_t crc = ckpt::crc32(head.data(), head.size());
    return ckpt::crc32(payload.data(), payload.size(), crc);
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello: return "hello";
      case FrameType::HelloAck: return "hello_ack";
      case FrameType::Claim: return "claim";
      case FrameType::Lease: return "lease";
      case FrameType::NoWork: return "no_work";
      case FrameType::JobDone: return "job_done";
      case FrameType::ShardDone: return "shard_done";
      case FrameType::WorkerStats: return "worker_stats";
      case FrameType::SpanBatch: return "span_batch";
      case FrameType::SweepRequest: return "sweep_request";
      case FrameType::SweepAccepted: return "sweep_accepted";
      case FrameType::SweepRejected: return "sweep_rejected";
      case FrameType::SweepResult: return "sweep_result";
      case FrameType::StatusRequest: return "status_request";
      case FrameType::StatusReply: return "status_reply";
      case FrameType::Error: return "error";
    }
    return "unknown";
}

std::string
encodeFrame(FrameType type, std::string_view payload,
            std::uint64_t traceId)
{
    if (payload.size() > kMaxFramePayload)
        fatal("frame payload of %zu bytes exceeds the %llu-byte limit",
              payload.size(),
              static_cast<unsigned long long>(kMaxFramePayload));
    std::string out;
    out.reserve(kHeadBytes + payload.size() + 4);
    out.append(kFrameMagic, sizeof(kFrameMagic));
    putLe32(out, static_cast<std::uint32_t>(type));
    putLe64(out, traceId);
    putLe64(out, payload.size());
    out.append(payload.data(), payload.size());
    putLe32(out, frameCrc(type, traceId, payload));
    return out;
}

bool
sendFrame(Stream &stream, FrameType type, std::string_view payload,
          std::uint64_t traceId)
{
    const std::string wire = encodeFrame(type, payload, traceId);
    return stream.writeAll(wire.data(), wire.size());
}

bool
recvFrame(Stream &stream, Frame &out)
{
    char head[kHeadBytes];
    if (readExact(stream, head, sizeof(head), true) == 0)
        return false;
    if (std::memcmp(head, kFrameMagic, sizeof(kFrameMagic)) != 0)
        fatalIo("bad service frame magic %02x%02x%02x%02x (protocol "
                "desync or non-wsrs peer)",
                static_cast<unsigned char>(head[0]),
                static_cast<unsigned char>(head[1]),
                static_cast<unsigned char>(head[2]),
                static_cast<unsigned char>(head[3]));
    const std::uint32_t type = getLe32(head + 4);
    const std::uint64_t traceId = getLe64(head + 8);
    const std::uint64_t len = getLe64(head + 16);
    if (len > kMaxFramePayload)
        fatalIo("service frame of type %u declares %llu payload bytes, "
                "limit is %llu — refusing to buffer",
                type, static_cast<unsigned long long>(len),
                static_cast<unsigned long long>(kMaxFramePayload));
    out.type = static_cast<FrameType>(type);
    out.traceId = traceId;
    out.payload.resize(static_cast<std::size_t>(len));
    if (len > 0)
        readExact(stream, out.payload.data(),
                  static_cast<std::size_t>(len), false);
    char crcBuf[4];
    readExact(stream, crcBuf, sizeof(crcBuf), false);
    const std::uint32_t stored = getLe32(crcBuf);
    const std::uint32_t computed =
        frameCrc(out.type, out.traceId, out.payload);
    if (stored != computed)
        fatalIo("service frame CRC mismatch on %s frame (stored %08x, "
                "computed %08x over %llu payload bytes)",
                frameTypeName(out.type), stored, computed,
                static_cast<unsigned long long>(len));
    return true;
}

} // namespace wsrs::svc
