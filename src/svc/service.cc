#include "service.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/log.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_log.h"
#include "src/obs/svc_counters.h"
#include "src/runner/job_exec.h"
#include "src/runner/sweep_report.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/svc/frame.h"
#include "src/svc/frame_log.h"
#include "src/svc/json_min.h"
#include "src/svc/proto.h"
#include "src/svc/transport.h"
#include "src/workload/profiles.h"

namespace wsrs::svc {

namespace {

/** Finished requests kept visible in status replies. */
constexpr std::size_t kMaxFinishedViews = 32;

/** One admitted sweep request. */
struct Request
{
    std::uint64_t id = 0;
    std::uint64_t conn = 0; ///< Frame-log connection id.
    std::unique_ptr<Stream> stream;
    std::vector<runner::SweepJob> jobs;
    bool shareTraces = true;
    bool reuseWarmup = false;
};

/** Status-reply view of a request's lifecycle. */
struct RequestView
{
    std::uint64_t id = 0;
    std::string state; ///< queued | running | done | failed.
    std::size_t jobsTotal = 0;
    std::size_t jobsDone = 0;
};

/** Parse and validate one SweepRequest body into jobs + policy. */
Request
parseSweepRequest(const std::string &payload)
{
    const JsonValue doc = parseJson(payload, "sweep_request frame");
    Request req;

    std::vector<workload::BenchmarkProfile> profiles;
    if (doc.has("benchmarks")) {
        for (const JsonValue &v : doc.get("benchmarks").asArray())
            profiles.push_back(workload::findProfile(v.asString()));
    } else {
        profiles = workload::allProfiles();
    }
    if (profiles.empty())
        fatal("sweep_request: empty benchmark list");

    std::vector<std::string> machines;
    if (doc.has("machines")) {
        for (const JsonValue &v : doc.get("machines").asArray())
            machines.push_back(v.asString());
    } else {
        machines = sim::figure4Presets();
    }
    if (machines.empty())
        fatal("sweep_request: empty machine list");
    for (const std::string &m : machines)
        (void)sim::findPreset(m); // Validate at admission, not mid-sweep.

    sim::SimConfig base;
    base.measureUops = static_cast<std::uint64_t>(
        doc.getInt("uops", 1000000));
    base.warmupUops = static_cast<std::uint64_t>(
        doc.getInt("warmup", 400000));
    base.seed = static_cast<std::uint64_t>(doc.getInt("seed", 0));

    req.jobs = runner::SweepRunner::crossProduct(profiles, machines, base);
    req.shareTraces = doc.getBool("share_traces", true);
    req.reuseWarmup = doc.getBool("reuse_warmup", false);
    return req;
}

} // namespace

struct SweepService::Impl
{
    ServiceOptions options;

    std::unique_ptr<Listener> listener;
    int wakePipe[2] = {-1, -1}; ///< Self-pipe to interrupt the I/O poll.

    std::thread ioThread;
    std::vector<std::thread> executors;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::unique_ptr<Request>> queue;
    std::deque<RequestView> views;
    std::uint64_t nextRequestId = 1;
    std::uint64_t nextConnId = 1;
    unsigned runningNow = 0;

    // The daemon's instruments live in its own registry (not the global
    // process one) so each daemon instance — tests run several per
    // process — starts from zero. The registry backs both the Prometheus
    // `/metrics` endpoint and the status reply's svc object.
    obs::MetricsRegistry registry;
    obs::SvcMetrics metrics{registry};
    obs::MetricGauge &queuedGauge = registry.gauge(
        "wsrs_svc_queued", "Requests waiting behind the executors.");
    obs::MetricGauge &runningGauge =
        registry.gauge("wsrs_svc_running", "Requests currently executing.");
    obs::MetricHistogram &requestMs = registry.histogram(
        "wsrs_svc_request_duration_ms",
        "Sweep request wall time, dequeue to reply sent (ms).",
        obs::MetricsRegistry::latencyBucketsMs());

    std::unique_ptr<FrameLogWriter> frameLog;

    std::atomic<bool> stopping{false};
    std::atomic<bool> stopRequested{false};
    bool started = false;
    bool stopped = false;

    void logFrame(std::uint64_t conn, const char *dir, FrameType type,
                  std::string_view body, std::uint64_t payload_bytes);
    RequestView *findView(std::uint64_t id);
    void ioLoop();
    void handleConnection(std::uint64_t conn,
                          std::unique_ptr<Stream> stream);
    void handleHttpGet(std::uint64_t conn, std::unique_ptr<Stream> stream);
    void executorLoop();
    void runRequest(Request &req);
    void flushFrameLogIfDrained();
    std::string buildStatusJson() const;
};

void
SweepService::Impl::logFrame(std::uint64_t conn, const char *dir,
                             FrameType type, std::string_view body,
                             std::uint64_t payload_bytes)
{
    if (frameLog)
        frameLog->append(conn, dir, frameTypeName(type), body,
                         payload_bytes);
}

RequestView *
SweepService::Impl::findView(std::uint64_t id)
{
    for (RequestView &v : views)
        if (v.id == id)
            return &v;
    return nullptr;
}

void
SweepService::Impl::ioLoop()
{
    while (!stopping.load()) {
        pollfd fds[2] = {{listener->pollFd(), POLLIN, 0},
                         {wakePipe[0], POLLIN, 0}};
        ::poll(fds, 2, 500);
        if (stopping.load())
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        std::unique_ptr<Stream> peer = listener->accept();
        if (!peer)
            continue;
        try {
            handleConnection(nextConnId++, std::move(peer));
        } catch (const FatalError &e) {
            // A malformed client must not take the daemon down.
            std::fprintf(stderr, "wsrs-sim: serve: dropped client: %s\n",
                         e.what());
        }
    }
    listener->close();
}

void
SweepService::Impl::handleConnection(std::uint64_t conn,
                                     std::unique_ptr<Stream> stream)
{
    // One request frame per connection; a silent client is cut loose
    // instead of wedging the accept loop.
    pollfd pfd = {stream->pollFd(), POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0 || !(pfd.revents & POLLIN)) {
        stream->close();
        return;
    }

    // Sniff the first bytes without consuming them: a framed client
    // leads with the "WSVF" magic, a curious human (curl, nc, the
    // dashboard poller) leads with "GET ". Both protocols share one
    // endpoint so dashboards need no extra port.
    char peeked[4] = {0, 0, 0, 0};
    const long pn =
        ::recv(stream->pollFd(), peeked, sizeof peeked, MSG_PEEK);
    if (pn == 4 && std::memcmp(peeked, "GET ", 4) == 0) {
        handleHttpGet(conn, std::move(stream));
        return;
    }

    Frame frame;
    if (!recvFrame(*stream, frame))
        return;

    switch (frame.type) {
      case FrameType::StatusRequest: {
        logFrame(conn, "rx", frame.type, frame.payload,
                 frame.payload.size());
        const std::string status = buildStatusJson();
        sendFrame(*stream, FrameType::StatusReply, status);
        logFrame(conn, "tx", FrameType::StatusReply, "", status.size());
        stream->close();
        return;
      }
      case FrameType::SweepRequest: {
        logFrame(conn, "rx", frame.type, frame.payload,
                 frame.payload.size());
        std::unique_ptr<Request> req;
        try {
            req = std::make_unique<Request>(
                parseSweepRequest(frame.payload));
        } catch (const FatalError &e) {
            const std::string body = errorPayload(e.what());
            sendFrame(*stream, FrameType::Error, body);
            logFrame(conn, "tx", FrameType::Error, body, body.size());
            metrics.requestsFailed.add();
            return;
        }
        std::unique_lock<std::mutex> lock(mu);
        if (queue.size() >= options.queueDepth) {
            metrics.backpressureRejects.add();
            // Hint scales with the backlog: a deeper queue means a
            // longer wait before a retry can be admitted.
            const std::uint64_t hint =
                1000 * static_cast<std::uint64_t>(queue.size() +
                                                  runningNow + 1);
            lock.unlock();
            std::ostringstream os;
            os << "{\"retry_after_ms\": " << hint
               << ", \"reason\": \"admission queue full (depth "
               << options.queueDepth << ")\"}";
            const std::string body = os.str();
            sendFrame(*stream, FrameType::SweepRejected, body);
            logFrame(conn, "tx", FrameType::SweepRejected, body,
                     body.size());
            return;
        }
        req->id = nextRequestId++;
        req->conn = conn;
        req->stream = std::move(stream);
        metrics.requestsAdmitted.add();
        RequestView view;
        view.id = req->id;
        view.state = "queued";
        view.jobsTotal = req->jobs.size();
        views.push_back(view);
        while (views.size() > kMaxFinishedViews + queue.size() + 1)
            views.pop_front();
        std::ostringstream os;
        os << "{\"request\": " << req->id
           << ", \"queued_ahead\": " << queue.size() << "}";
        const std::string body = os.str();
        lock.unlock();
        // Ack before enqueueing: once queued, an executor owns the
        // stream and this thread must not touch it again.
        sendFrame(*req->stream, FrameType::SweepAccepted, body);
        logFrame(conn, "tx", FrameType::SweepAccepted, body, body.size());
        lock.lock();
        queue.push_back(std::move(req));
        queuedGauge.set(static_cast<std::int64_t>(queue.size()));
        lock.unlock();
        cv.notify_one();
        return;
      }
      default: {
        const std::string body = errorPayload(
            strprintf("unexpected %s frame; expected sweep_request or "
                      "status_request",
                      frameTypeName(frame.type)));
        sendFrame(*stream, FrameType::Error, body);
        logFrame(conn, "tx", FrameType::Error, body, body.size());
        return;
      }
    }
}

void
SweepService::Impl::handleHttpGet(std::uint64_t conn,
                                  std::unique_ptr<Stream> stream)
{
    // One read covers any sane request line; headers are ignored.
    char buf[1024];
    const long n = stream->read(buf, sizeof buf - 1);
    if (n <= 0) {
        stream->close();
        return;
    }
    std::string line(buf, static_cast<std::size_t>(n));
    if (const auto eol = line.find_first_of("\r\n");
        eol != std::string::npos)
        line.resize(eol);
    // "GET <path> HTTP/1.x" (the version token is optional).
    std::string path;
    if (const auto sp = line.find(' '); sp != std::string::npos) {
        path = line.substr(sp + 1);
        if (const auto end = path.find(' '); end != std::string::npos)
            path.resize(end);
    }
    if (frameLog)
        frameLog->append(conn, "rx", "http_get",
                         "{\"path\": \"" + jsonEscapeMin(path) + "\"}",
                         static_cast<std::uint64_t>(n));

    int code = 200;
    const char *codeName = "OK";
    const char *ctype = "text/plain; charset=utf-8";
    std::string body;
    if (path == "/status") {
        ctype = "application/json";
        body = buildStatusJson() + "\n";
    } else if (path == "/metrics") {
        ctype = "text/plain; version=0.0.4; charset=utf-8";
        std::ostringstream os;
        registry.writePrometheus(os);
        body = os.str();
    } else if (path == "/metrics.json") {
        ctype = "application/json";
        std::ostringstream os;
        registry.writeJson(os);
        body = os.str();
    } else {
        code = 404;
        codeName = "Not Found";
        body = "unknown path; try /status, /metrics or /metrics.json\n";
    }

    std::ostringstream os;
    os << "HTTP/1.0 " << code << " " << codeName << "\r\n"
       << "Content-Type: " << ctype << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    const std::string reply = os.str();
    stream->writeAll(reply.data(), reply.size());
    if (frameLog)
        frameLog->append(conn, "tx", "http_reply", "", body.size());
    stream->close();
}

void
SweepService::Impl::executorLoop()
{
    while (true) {
        std::unique_ptr<Request> req;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] {
                return !queue.empty() || stopping.load();
            });
            if (queue.empty())
                return; // stopping and drained.
            req = std::move(queue.front());
            queue.pop_front();
            ++runningNow;
            queuedGauge.set(static_cast<std::int64_t>(queue.size()));
            runningGauge.set(runningNow);
            if (RequestView *v = findView(req->id))
                v->state = "running";
        }
        runRequest(*req);
        {
            std::lock_guard<std::mutex> lock(mu);
            --runningNow;
            runningGauge.set(runningNow);
        }
        flushFrameLogIfDrained();
    }
}

void
SweepService::Impl::flushFrameLogIfDrained()
{
    if (!frameLog)
        return;
    bool drained;
    {
        std::lock_guard<std::mutex> lock(mu);
        drained = queue.empty() && runningNow == 0;
    }
    // Flush-on-drain: buffered log lines reach the filesystem whenever
    // the daemon goes idle, so the on-disk log trails live traffic by at
    // most one busy burst (readers tolerate the torn tail regardless).
    if (drained)
        frameLog->flush();
}

void
SweepService::Impl::runRequest(Request &req)
{
    const std::int64_t startUs = obs::monotonicMicros();
    runner::SweepRunner::Options opt;
    opt.threads = options.sweepThreads;
    opt.shareTraces = req.shareTraces;
    opt.reuseWarmup = req.reuseWarmup;
    opt.metrics = &registry; ///< Runner instruments join `/metrics`.
    opt.onEvent = [&](const runner::SweepEvent &ev) {
        std::lock_guard<std::mutex> lock(mu);
        if (RequestView *v = findView(req.id))
            v->jobsDone = ev.completed;
    };
    bool ok = false;
    std::string body;
    FrameType replyType = FrameType::Error;
    try {
        runner::SweepRunner sweep(opt);
        const std::vector<runner::SweepOutcome> outcomes =
            sweep.run(req.jobs);
        std::ostringstream os;
        runner::writeSweepReport(os, req.jobs, outcomes,
                                 sweep.telemetry());
        body = os.str();
        replyType = FrameType::SweepResult;
        ok = true;
    } catch (const std::exception &e) {
        body = errorPayload(e.what());
    }
    // Commit the bookkeeping before streaming the result: a client that
    // has its report in hand must find itself completed in /status.
    {
        std::lock_guard<std::mutex> lock(mu);
        if (ok)
            metrics.requestsCompleted.add();
        else
            metrics.requestsFailed.add();
        if (RequestView *v = findView(req.id))
            v->state = ok ? "done" : "failed";
    }
    sendFrame(*req.stream, replyType, body);
    logFrame(req.conn, "tx", replyType,
             replyType == FrameType::SweepResult ? std::string_view() :
                                                   std::string_view(body),
             body.size());
    req.stream->close();
    requestMs.observe(
        static_cast<std::uint64_t>((obs::monotonicMicros() - startUs) /
                                   1000));
}

std::string
SweepService::Impl::buildStatusJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    os << "{\"schema\": \"wsrs-svc-status-v1\", \"endpoint\": \""
       << jsonEscapeMin(listener ? listener->endpoint() :
                                   options.endpoint)
       << "\", \"queue_depth\": " << options.queueDepth
       << ", \"executors\": " << options.executors
       << ", \"queued\": " << queue.size()
       << ", \"running\": " << runningNow << ", \"svc\": ";
    obs::writeSvcJson(os, metrics.snapshot(), {});
    os << ", \"requests\": [";
    bool first = true;
    for (const RequestView &v : views) {
        os << (first ? "" : ", ") << "{\"id\": " << v.id
           << ", \"state\": \"" << v.state
           << "\", \"jobs_total\": " << v.jobsTotal
           << ", \"jobs_done\": " << v.jobsDone << "}";
        first = false;
    }
    os << "]}";
    return os.str();
}

SweepService::SweepService(ServiceOptions options)
    : impl_(std::make_unique<Impl>())
{
    impl_->options = std::move(options);
}

SweepService::~SweepService()
{
    stop();
}

void
SweepService::start()
{
    Impl &im = *impl_;
    if (im.started)
        return;
    if (im.options.endpoint.empty())
        fatal("--serve needs a listen endpoint (e.g. unix:/tmp/x.sock)");
    if (im.options.executors == 0)
        im.options.executors = 1;
    if (::pipe(im.wakePipe) != 0)
        fatalIo("serve: cannot create the shutdown pipe");
    if (!im.options.frameLogPath.empty()) {
        im.frameLog =
            std::make_unique<FrameLogWriter>(im.options.frameLogPath);
        if (!im.frameLog->ok())
            std::fprintf(stderr,
                         "wsrs-sim: serve: cannot write frame log '%s'\n",
                         im.options.frameLogPath.c_str());
    }
    im.listener =
        makeTransport(im.options.endpoint)->listen(im.options.endpoint);
    im.started = true;
    im.ioThread = std::thread([&im] { im.ioLoop(); });
    for (unsigned i = 0; i < im.options.executors; ++i)
        im.executors.emplace_back([&im] { im.executorLoop(); });
}

void
SweepService::stop()
{
    Impl &im = *impl_;
    if (!im.started || im.stopped)
        return;
    im.stopping.store(true);
    // Wake the I/O poll immediately (best-effort; it also times out).
    [[maybe_unused]] const long n = ::write(im.wakePipe[1], "x", 1);
    if (im.ioThread.joinable())
        im.ioThread.join();
    im.cv.notify_all();
    for (std::thread &t : im.executors)
        if (t.joinable())
            t.join();
    im.executors.clear();
    if (im.frameLog)
        im.frameLog->finish();
    ::close(im.wakePipe[0]);
    ::close(im.wakePipe[1]);
    im.stopped = true;
}

void
SweepService::wait()
{
    while (!impl_->stopRequested.load() && !impl_->stopped)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop();
}

void
SweepService::requestStop()
{
    impl_->stopRequested.store(true);
}

std::string
SweepService::endpoint() const
{
    return impl_->listener ? impl_->listener->endpoint() :
                             impl_->options.endpoint;
}

std::string
SweepService::statusJson() const
{
    return impl_->buildStatusJson();
}

SubmitResult
submitSweep(const std::string &endpoint, const std::string &request_json)
{
    std::unique_ptr<Stream> stream =
        makeTransport(endpoint)->connect(endpoint);
    if (!sendFrame(*stream, FrameType::SweepRequest, request_json))
        fatalIo("sweep daemon at %s hung up on the request",
                endpoint.c_str());
    SubmitResult result;
    Frame frame;
    if (!recvFrame(*stream, frame))
        fatalIo("sweep daemon at %s closed without replying",
                endpoint.c_str());
    switch (frame.type) {
      case FrameType::SweepRejected: {
        const JsonValue doc =
            parseJson(frame.payload, "sweep_rejected frame");
        result.accepted = false;
        result.retryAfterMs = static_cast<std::uint64_t>(
            doc.getInt("retry_after_ms", 1000));
        result.reason = doc.getString("reason", "admission queue full");
        return result;
      }
      case FrameType::Error:
        fatal("sweep daemon rejected the request: %s",
              parseErrorPayload(frame.payload).c_str());
      case FrameType::SweepAccepted:
        break;
      default:
        fatalIo("unexpected %s frame from the sweep daemon",
                frameTypeName(frame.type));
    }
    if (!recvFrame(*stream, frame))
        fatalIo("sweep daemon at %s died while running the request",
                endpoint.c_str());
    if (frame.type == FrameType::Error)
        fatal("sweep request failed: %s",
              parseErrorPayload(frame.payload).c_str());
    if (frame.type != FrameType::SweepResult)
        fatalIo("unexpected %s frame while awaiting the sweep result",
                frameTypeName(frame.type));
    result.accepted = true;
    result.report = std::move(frame.payload);
    return result;
}

std::string
queryStatus(const std::string &endpoint)
{
    std::unique_ptr<Stream> stream =
        makeTransport(endpoint)->connect(endpoint);
    if (!sendFrame(*stream, FrameType::StatusRequest, "{}"))
        fatalIo("sweep daemon at %s hung up on the status request",
                endpoint.c_str());
    Frame frame;
    if (!recvFrame(*stream, frame))
        fatalIo("sweep daemon at %s closed without a status reply",
                endpoint.c_str());
    if (frame.type != FrameType::StatusReply)
        fatalIo("unexpected %s frame instead of a status reply",
                frameTypeName(frame.type));
    return frame.payload;
}

} // namespace wsrs::svc
