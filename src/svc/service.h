/**
 * @file
 * `wsrs-sim --serve`: a long-lived sweep daemon.
 *
 * The daemon accepts framed JSON sweep requests on a transport endpoint,
 * runs each admitted request on its own isolated SweepRunner (own trace
 * and warm-up caches — requests never share mutable state), and streams
 * the finished wsrs-sweep-report-v1 document back on the same connection.
 *
 * Admission is explicitly bounded: at most queueDepth requests may be
 * queued behind the executors. A request that would exceed the bound is
 * rejected immediately with a SweepRejected frame carrying a
 * retry_after_ms hint — the daemon never buffers unboundedly, which is
 * the backpressure contract tests rely on. A StatusRequest frame gets a
 * live wsrs-svc-status-v1 JSON snapshot (queue occupancy, per-request
 * progress, admission counters) without ever queueing.
 *
 * The same endpoint also answers plain-text HTTP GETs (the first bytes
 * are sniffed: "WSVF" magic = framed client, "GET " = curl/dashboard):
 * `/status` returns the status document, `/metrics` the Prometheus text
 * exposition of the daemon's metrics registry (admission counters, queue
 * gauges, request/job/warm-up latency histograms), `/metrics.json` the
 * wsrs-metrics-v1 JSON equivalent. scripts/svc_dashboard.py renders the
 * dashboard from these endpoints.
 *
 * Every control frame is optionally streamed to a JSONL frame log
 * (wsrs-svc-frames-v1, src/svc/frame_log.h) through a single buffered
 * writer, flushed whenever the admission queue drains — the protocol's
 * flight recorder, validated by scripts/check_stats_schema.py.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace wsrs::svc {

/** Daemon configuration. */
struct ServiceOptions
{
    /** Listen endpoint, e.g. "unix:/tmp/wsrs-serve.sock". */
    std::string endpoint;
    /** Max requests waiting behind the executors before rejects start. */
    std::size_t queueDepth = 4;
    /** Concurrent sweep executor threads. */
    unsigned executors = 1;
    /** Worker threads inside each request's SweepRunner (1 = serial). */
    unsigned sweepThreads = 1;
    /** Stream a wsrs-svc-frames-v1 JSONL protocol log here (optional). */
    std::string frameLogPath;
};

/** The daemon. start() spawns the I/O and executor threads; stop()
 *  drains admitted requests, joins everything and writes the frame log. */
class SweepService
{
  public:
    explicit SweepService(ServiceOptions options);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Bind the endpoint and spawn threads; returns once accepting. */
    void start();

    /** Graceful shutdown: stop accepting, finish every admitted request,
     *  join threads, write the frame log. Idempotent. */
    void stop();

    /** Block until stop() is called from another thread or a signal
     *  handler requests shutdown via requestStop(). */
    void wait();

    /** Async-signal-safe shutdown request (for SIGTERM handlers). */
    void requestStop();

    std::string endpoint() const;

    /** Live wsrs-svc-status-v1 document (what StatusRequest returns). */
    std::string statusJson() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Result of submitting one sweep request to a daemon. */
struct SubmitResult
{
    bool accepted = false;
    /** Backpressure hint when rejected (milliseconds). */
    std::uint64_t retryAfterMs = 0;
    /** The rejection reason when !accepted. */
    std::string reason;
    /** The wsrs-sweep-report-v1 document when accepted. */
    std::string report;
};

/**
 * Client helper: submit @p request_json to the daemon at @p endpoint and
 * wait for the report (or the rejection).
 * @throws wsrs::FatalError when the daemon reports a request error,
 *         wsrs::IoError on transport failures.
 */
SubmitResult submitSweep(const std::string &endpoint,
                         const std::string &request_json);

/** Client helper: fetch the daemon's wsrs-svc-status-v1 document. */
std::string queryStatus(const std::string &endpoint);

} // namespace wsrs::svc
