/**
 * @file
 * Distributed sweep worker: the claim/lease side of the protocol.
 *
 * A worker is launched with the *same sweep-defining flags* as the
 * coordinator, rebuilds the identical job list locally, and presents its
 * sweepKeyHash in the Hello handshake — so the lease frames only need to
 * carry job indices, and a worker built from a different matrix is
 * refused at handshake instead of producing mismatched results.
 *
 * Loop: Claim -> (Lease | NoWork). A lease's jobs run through
 * runner::executeJob (the exact code path of the in-process SweepRunner),
 * each outcome streaming back as a JobDone frame the moment it finishes —
 * so a SIGKILLed worker loses at most its one in-flight job. On NoWork
 * the worker reports its warm-up cache counters and retires.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runner/sweep_runner.h"
#include "src/svc/proto.h"

namespace wsrs::svc {

/** Worker process configuration. */
struct WorkerOptions
{
    /** Coordinator endpoint to connect to. */
    std::string endpoint;
    /** Record each profile's trace once and replay it per machine. */
    bool shareTraces = true;
    /** Restore functional warm-up snapshots (must match coordinator). */
    bool reuseWarmup = false;
    /** Shared on-disk warm-up cache directory (empty = in-memory only). */
    std::string warmupCacheDir;
};

/**
 * Connect, handshake and work until the coordinator says NoWork.
 * @return this worker's cache/job counters (also sent as WorkerStats).
 * @throws wsrs::IoError if the coordinator disappears mid-protocol;
 *         wsrs::SweepMismatchError if the handshake is refused.
 */
WorkerStatsInfo runWorker(const std::vector<runner::SweepJob> &jobs,
                          const WorkerOptions &options);

} // namespace wsrs::svc
