/**
 * @file
 * Distributed sweep coordinator: the resume journal as a sharded work
 * queue.
 *
 * The coordinator owns a sweep's job list and its resume journal. Job
 * indices not already journaled are partitioned into contiguous shards
 * (src/svc/shard.h); worker processes connect over the framed transport,
 * handshake (the sweep-key hash must match, so a worker built from a
 * different job matrix is refused instead of silently mixing results),
 * and claim shard leases. Every completed job streams back immediately as
 * its journal-codec bytes and is appended to the journal, so a SIGKILLed
 * worker loses at most its one in-flight job and a SIGKILLed coordinator
 * resumes from the journal prefix like any crashed sweep.
 *
 * Fault model:
 *  - worker death (EOF/send failure) re-queues its leased shards' missing
 *    jobs with attempts+1 and exponential backoff;
 *  - a lease that exceeds its per-job deadline is torn down the same way
 *    (counted separately) — the hung worker's connection is closed;
 *  - a shard that exhausts its retry budget fails its remaining jobs with
 *    an explicit error outcome instead of stalling the sweep;
 *  - duplicate results (a re-leased shard's original owner limping home)
 *    are dropped and counted.
 *
 * The merge is submission-ordered by construction — outcomes land at
 * their job index, exactly like the in-process SweepRunner — so the final
 * wsrs-sweep-report-v1's job payloads are byte-identical to a
 * single-process run; only the execution-metadata objects (resume, ckpt,
 * svc) describe how this particular sweep ran.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/span_log.h"
#include "src/runner/sweep_report.h"
#include "src/runner/sweep_runner.h"
#include "src/svc/transport.h"

namespace wsrs::svc {

/** Blocking, single-threaded coordinator (poll(2) event loop). */
class Coordinator
{
  public:
    struct Options
    {
        /** Listen endpoint, e.g. "unix:/tmp/wsrs-sweep.sock". */
        std::string endpoint;
        /** Max jobs per shard lease. */
        std::uint64_t shardSize = 4;
        /** Lease deadline per leased job; a blown deadline re-queues the
         *  shard and drops the worker. */
        std::uint64_t perJobTimeoutMs = 120000;
        /** Re-lease budget per shard before its jobs are failed. */
        unsigned maxLeaseRetries = 3;
        /** Base re-lease backoff (doubles per attempt, capped at 30 s). */
        std::uint64_t leaseBackoffMs = 100;
        /** Resume journal path (empty = journal-less, not resumable). */
        std::string journalPath;
        /** Replay an existing journal instead of starting fresh. */
        bool resume = false;
        /** Workers restore shared warm-up snapshots (telemetry only; the
         *  flag itself travels on the worker command line). */
        bool reuseWarmup = false;
        /** Grace period to collect worker stats after the last job. */
        std::uint64_t drainGraceMs = 3000;
        /** Per-completion progress hook (serialized; may be empty). */
        std::function<void(const runner::SweepEvent &)> onEvent;

        // ---- telemetry (null = disabled) ----
        /** Span log for the per-job distributed timeline. When set, the
         *  coordinator mints a trace id, stamps it on every frame, and
         *  merges worker span batches onto its own clock (skew offset
         *  taken from each worker's Hello). */
        obs::SpanLog *spans = nullptr;
        /** Registry the service counters bind to. Defaults to a fresh
         *  per-run registry; supply the process registry to expose the
         *  counters through `/metrics` (they then accumulate across
         *  runs, while the report still snapshots at merge time). */
        obs::MetricsRegistry *metrics = nullptr;
    };

    Coordinator(Options options, std::vector<runner::SweepJob> jobs);
    ~Coordinator();

    /**
     * Bind and start listening. Returns once workers can connect —
     * spawn worker processes after this to avoid a connect race.
     */
    void bind();

    /** The bound endpoint (valid after bind()). */
    std::string endpoint() const;

    /**
     * Distribute the sweep; blocks until every job has an outcome and
     * connected workers have retired (or the drain grace expires).
     * Outcomes are in submission order, like SweepRunner::run.
     */
    std::vector<runner::SweepOutcome> run();

    /** Telemetry of the most recent run() (resume + warm-up counters
     *  aggregated from worker stats). */
    const runner::SweepRunner::Telemetry &telemetry() const
    {
        return telemetry_;
    }

    /** Sharding/lease/liveness counters of the most recent run(). */
    const runner::SvcReport &svcReport() const { return svcReport_; }

    /** Sweep identity hash the workers must present. */
    std::uint64_t sweepKey() const { return sweepKey_; }

  private:
    struct Impl;

    Options options_;
    std::vector<runner::SweepJob> jobs_;
    std::uint64_t sweepKey_ = 0;
    std::unique_ptr<Listener> listener_;
    runner::SweepRunner::Telemetry telemetry_;
    runner::SvcReport svcReport_;
};

} // namespace wsrs::svc
