#include "worker.h"

#include <unistd.h>

#include <memory>

#include "src/ckpt/shared_warmup_cache.h"
#include "src/ckpt/warmup_cache.h"
#include "src/common/log.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_log.h"
#include "src/runner/job_exec.h"
#include "src/runner/resume_journal.h"
#include "src/runner/trace_cache.h"
#include "src/svc/frame.h"
#include "src/svc/transport.h"

namespace wsrs::svc {

WorkerStatsInfo
runWorker(const std::vector<runner::SweepJob> &jobs,
          const WorkerOptions &options)
{
    const std::uint64_t sweepKey = runner::sweepKeyHash(jobs);

    std::unique_ptr<Stream> stream =
        makeTransport(options.endpoint)->connect(options.endpoint);

    // The Hello carries this worker's monotonic clock so the coordinator
    // can skew-normalize span timestamps shipped later in SpanBatch
    // frames; the HelloAck's header carries the sweep's trace id back
    // (0 = the coordinator is not collecting spans).
    if (!sendFrame(*stream, FrameType::Hello,
                   helloPayload(::getpid(), sweepKey, jobs.size(),
                                obs::monotonicMicros())))
        fatalIo("worker: coordinator at %s hung up during hello",
                options.endpoint.c_str());
    Frame frame;
    if (!recvFrame(*stream, frame) || frame.type != FrameType::HelloAck)
        fatalIo("worker: expected hello_ack from %s, got %s",
                options.endpoint.c_str(),
                frameTypeName(frame.type));
    if (const std::string refusal = parseHelloAck(frame.payload);
        !refusal.empty())
        fatalMismatch("worker: %s", refusal.c_str());
    const std::uint64_t traceId = frame.traceId;

    runner::TraceCache traces;
    ckpt::WarmupCache warmups;
    std::unique_ptr<ckpt::SharedWarmupCache> shared;
    if (!options.warmupCacheDir.empty())
        shared =
            std::make_unique<ckpt::SharedWarmupCache>(options.warmupCacheDir);

    // Runner metrics always land in the process registry (exported only
    // on demand); span events are only recorded when the coordinator
    // stamped a trace id on the handshake.
    runner::RunnerMetrics metrics(obs::MetricsRegistry::process());
    obs::SpanLog spanLog;

    runner::JobContext ctx;
    ctx.traces = options.shareTraces ? &traces : nullptr;
    ctx.warmups = &warmups;
    ctx.sharedWarmups = shared.get();
    ctx.reuseWarmup = options.reuseWarmup;
    ctx.metrics = &metrics;
    ctx.spans = traceId ? &spanLog : nullptr;

    WorkerStatsInfo stats;
    bool retired = false;
    while (!retired) {
        if (!sendFrame(*stream, FrameType::Claim, "{}", traceId))
            fatalIo("worker: coordinator hung up on claim");
        if (!recvFrame(*stream, frame))
            fatalIo("worker: coordinator hung up awaiting a lease");
        switch (frame.type) {
          case FrameType::Lease: {
            const LeaseInfo lease = parseLease(frame.payload);
            const Shard &shard = lease.shard;
            for (const std::uint64_t index : shard.jobs) {
                if (index >= jobs.size())
                    fatalIo("worker: lease names job %llu of a %zu-job "
                            "sweep",
                            static_cast<unsigned long long>(index),
                            jobs.size());
                runner::SweepOutcome out = executeJob(
                    jobs[index], ctx,
                    runner::JobTelemetry{index, lease.attempt, 0});
                ++stats.jobsRun;
                if (!sendFrame(*stream, FrameType::JobDone,
                               encodeJobDone(index, out), traceId))
                    fatalIo("worker: coordinator hung up mid-shard "
                            "(job %llu done but unreported)",
                            static_cast<unsigned long long>(index));
                if (ctx.spans)
                    ctx.spans->instant("result-framed", index,
                                       lease.attempt, 0,
                                       obs::monotonicMicros());
            }
            if (!sendFrame(*stream, FrameType::ShardDone,
                           shardDonePayload(shard.id), traceId))
                fatalIo("worker: coordinator hung up on shard_done");
            // Ship this shard's span events right behind its results so
            // a worker killed later loses at most one shard of spans.
            // Best effort: a hang-up here only loses telemetry.
            if (ctx.spans && ctx.spans->size() > 0)
                sendFrame(*stream, FrameType::SpanBatch,
                          spanBatchPayload(ctx.spans->drain()), traceId);
            break;
          }
          case FrameType::NoWork:
            retired = true;
            break;
          case FrameType::Error:
            fatalIo("worker: coordinator error: %s",
                    parseErrorPayload(frame.payload).c_str());
          default:
            fatalIo("worker: unexpected %s frame while awaiting a lease",
                    frameTypeName(frame.type));
        }
    }

    stats.warmupHits = warmups.hits();
    stats.warmupMisses = warmups.misses();
    if (shared) {
        stats.sharedHits = shared->hits();
        stats.sharedMisses = shared->misses();
        stats.sharedRebuilds = shared->corruptRebuilds();
    }
    // Best-effort: the sweep result is already delivered; a hung-up
    // coordinator here only loses telemetry.
    if (ctx.spans && ctx.spans->size() > 0)
        sendFrame(*stream, FrameType::SpanBatch,
                  spanBatchPayload(ctx.spans->drain()), traceId);
    sendFrame(*stream, FrameType::WorkerStats, workerStatsPayload(stats),
              traceId);
    stream->close();
    return stats;
}

} // namespace wsrs::svc
