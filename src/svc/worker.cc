#include "worker.h"

#include <unistd.h>

#include <memory>

#include "src/ckpt/shared_warmup_cache.h"
#include "src/ckpt/warmup_cache.h"
#include "src/common/log.h"
#include "src/runner/job_exec.h"
#include "src/runner/resume_journal.h"
#include "src/runner/trace_cache.h"
#include "src/svc/frame.h"
#include "src/svc/transport.h"

namespace wsrs::svc {

WorkerStatsInfo
runWorker(const std::vector<runner::SweepJob> &jobs,
          const WorkerOptions &options)
{
    const std::uint64_t sweepKey = runner::sweepKeyHash(jobs);

    std::unique_ptr<Stream> stream =
        makeTransport(options.endpoint)->connect(options.endpoint);

    if (!sendFrame(*stream, FrameType::Hello,
                   helloPayload(::getpid(), sweepKey, jobs.size())))
        fatalIo("worker: coordinator at %s hung up during hello",
                options.endpoint.c_str());
    Frame frame;
    if (!recvFrame(*stream, frame) || frame.type != FrameType::HelloAck)
        fatalIo("worker: expected hello_ack from %s, got %s",
                options.endpoint.c_str(),
                frameTypeName(frame.type));
    if (const std::string refusal = parseHelloAck(frame.payload);
        !refusal.empty())
        fatalMismatch("worker: %s", refusal.c_str());

    runner::TraceCache traces;
    ckpt::WarmupCache warmups;
    std::unique_ptr<ckpt::SharedWarmupCache> shared;
    if (!options.warmupCacheDir.empty())
        shared =
            std::make_unique<ckpt::SharedWarmupCache>(options.warmupCacheDir);

    runner::JobContext ctx;
    ctx.traces = options.shareTraces ? &traces : nullptr;
    ctx.warmups = &warmups;
    ctx.sharedWarmups = shared.get();
    ctx.reuseWarmup = options.reuseWarmup;

    WorkerStatsInfo stats;
    bool retired = false;
    while (!retired) {
        if (!sendFrame(*stream, FrameType::Claim, "{}"))
            fatalIo("worker: coordinator hung up on claim");
        if (!recvFrame(*stream, frame))
            fatalIo("worker: coordinator hung up awaiting a lease");
        switch (frame.type) {
          case FrameType::Lease: {
            const Shard shard = parseLease(frame.payload);
            for (const std::uint64_t index : shard.jobs) {
                if (index >= jobs.size())
                    fatalIo("worker: lease names job %llu of a %zu-job "
                            "sweep",
                            static_cast<unsigned long long>(index),
                            jobs.size());
                runner::SweepOutcome out = executeJob(jobs[index], ctx);
                ++stats.jobsRun;
                if (!sendFrame(*stream, FrameType::JobDone,
                               encodeJobDone(index, out)))
                    fatalIo("worker: coordinator hung up mid-shard "
                            "(job %llu done but unreported)",
                            static_cast<unsigned long long>(index));
            }
            if (!sendFrame(*stream, FrameType::ShardDone,
                           shardDonePayload(shard.id)))
                fatalIo("worker: coordinator hung up on shard_done");
            break;
          }
          case FrameType::NoWork:
            retired = true;
            break;
          case FrameType::Error:
            fatalIo("worker: coordinator error: %s",
                    parseErrorPayload(frame.payload).c_str());
          default:
            fatalIo("worker: unexpected %s frame while awaiting a lease",
                    frameTypeName(frame.type));
        }
    }

    stats.warmupHits = warmups.hits();
    stats.warmupMisses = warmups.misses();
    if (shared) {
        stats.sharedHits = shared->hits();
        stats.sharedMisses = shared->misses();
        stats.sharedRebuilds = shared->corruptRebuilds();
    }
    // Best-effort: the sweep result is already delivered; a hung-up
    // coordinator here only loses telemetry.
    sendFrame(*stream, FrameType::WorkerStats, workerStatsPayload(stats));
    stream->close();
    return stats;
}

} // namespace wsrs::svc
