#include "proto.h"

#include <cstdio>
#include <sstream>

#include "src/ckpt/io.h"
#include "src/common/log.h"
#include "src/runner/resume_journal.h"
#include "src/svc/json_min.h"

namespace wsrs::svc {

std::string
hexKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return std::string(buf);
}

std::uint64_t
parseHexKey(const std::string &text, const std::string &what)
{
    if (text.size() != 16)
        fatal("%s: sweep key '%s' is not 16 hex digits", what.c_str(),
              text.c_str());
    std::uint64_t v = 0;
    for (const char c : text) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            fatal("%s: sweep key '%s' has a non-hex digit", what.c_str(),
                  text.c_str());
    }
    return v;
}

std::string
helloPayload(std::int64_t pid, std::uint64_t sweep_key,
             std::uint64_t num_jobs, std::int64_t mono_us)
{
    std::ostringstream os;
    os << "{\"role\": \"worker\", \"pid\": " << pid << ", \"sweep_key\": \""
       << hexKey(sweep_key) << "\", \"jobs\": " << num_jobs
       << ", \"mono_us\": " << mono_us << "}";
    return os.str();
}

HelloInfo
parseHello(const std::string &payload)
{
    const JsonValue doc = parseJson(payload, "hello frame");
    HelloInfo info;
    info.role = doc.getString("role", "");
    info.pid = doc.getInt("pid", 0);
    info.sweepKey =
        parseHexKey(doc.getString("sweep_key", ""), "hello frame");
    info.jobs = static_cast<std::uint64_t>(doc.getInt("jobs", 0));
    info.monoUs = doc.getInt("mono_us", 0);
    return info;
}

std::string
helloAckPayload(bool ok, const std::string &error)
{
    std::ostringstream os;
    os << "{\"ok\": " << (ok ? "true" : "false");
    if (!error.empty())
        os << ", \"error\": \"" << jsonEscapeMin(error) << "\"";
    os << "}";
    return os.str();
}

std::string
parseHelloAck(const std::string &payload)
{
    const JsonValue doc = parseJson(payload, "hello_ack frame");
    if (doc.getBool("ok", false))
        return std::string();
    std::string error = doc.getString("error", "");
    if (error.empty())
        error = "coordinator refused the handshake";
    return error;
}

std::string
leasePayload(const Shard &shard, std::uint32_t attempt)
{
    std::ostringstream os;
    os << "{\"shard\": " << shard.id << ", \"attempt\": " << attempt
       << ", \"jobs\": [";
    for (std::size_t i = 0; i < shard.jobs.size(); ++i)
        os << (i ? ", " : "") << shard.jobs[i];
    os << "]}";
    return os.str();
}

LeaseInfo
parseLease(const std::string &payload)
{
    const JsonValue doc = parseJson(payload, "lease frame");
    LeaseInfo lease;
    lease.shard.id = static_cast<std::uint64_t>(doc.getInt("shard", 0));
    lease.attempt =
        static_cast<std::uint32_t>(doc.getInt("attempt", 1));
    for (const JsonValue &v : doc.get("jobs").asArray())
        lease.shard.jobs.push_back(static_cast<std::uint64_t>(v.asInt()));
    return lease;
}

std::string
shardDonePayload(std::uint64_t shard_id)
{
    std::ostringstream os;
    os << "{\"shard\": " << shard_id << "}";
    return os.str();
}

std::uint64_t
parseShardDone(const std::string &payload)
{
    const JsonValue doc = parseJson(payload, "shard_done frame");
    return static_cast<std::uint64_t>(doc.getInt("shard", 0));
}

std::string
encodeJobDone(std::uint64_t index, const runner::SweepOutcome &out)
{
    ckpt::Writer inner;
    runner::encodeOutcome(inner, out);
    ckpt::Writer w;
    w.u64(index);
    w.str(inner.buffer());
    return w.buffer();
}

JobDone
decodeJobDone(const std::string &payload)
{
    ckpt::Reader r(payload, "job_done frame");
    JobDone done;
    done.index = r.u64();
    const std::string inner = r.str();
    if (!r.atEnd())
        fatalIo("job_done frame has trailing bytes after the outcome");
    ckpt::Reader ir(inner, "job_done frame [outcome]");
    done.outcome = runner::decodeOutcome(ir);
    return done;
}

std::string
workerStatsPayload(const WorkerStatsInfo &stats)
{
    std::ostringstream os;
    os << "{\"jobs_run\": " << stats.jobsRun
       << ", \"warmup_hits\": " << stats.warmupHits
       << ", \"warmup_misses\": " << stats.warmupMisses
       << ", \"shared_hits\": " << stats.sharedHits
       << ", \"shared_misses\": " << stats.sharedMisses
       << ", \"shared_rebuilds\": " << stats.sharedRebuilds << "}";
    return os.str();
}

WorkerStatsInfo
parseWorkerStats(const std::string &payload)
{
    const JsonValue doc = parseJson(payload, "worker_stats frame");
    WorkerStatsInfo stats;
    stats.jobsRun = static_cast<std::uint64_t>(doc.getInt("jobs_run", 0));
    stats.warmupHits =
        static_cast<std::uint64_t>(doc.getInt("warmup_hits", 0));
    stats.warmupMisses =
        static_cast<std::uint64_t>(doc.getInt("warmup_misses", 0));
    stats.sharedHits =
        static_cast<std::uint64_t>(doc.getInt("shared_hits", 0));
    stats.sharedMisses =
        static_cast<std::uint64_t>(doc.getInt("shared_misses", 0));
    stats.sharedRebuilds =
        static_cast<std::uint64_t>(doc.getInt("shared_rebuilds", 0));
    return stats;
}

std::string
spanBatchPayload(const std::vector<obs::SpanEvent> &events)
{
    ckpt::Writer w;
    w.u64(events.size());
    for (const obs::SpanEvent &e : events) {
        w.str(e.name);
        w.u8(static_cast<std::uint8_t>(e.phase));
        w.u64(e.job);
        w.u32(e.attempt);
        w.u64(e.worker);
        w.u64(static_cast<std::uint64_t>(e.startUs));
        w.u64(static_cast<std::uint64_t>(e.durUs));
        w.str(e.detail);
    }
    return w.buffer();
}

std::vector<obs::SpanEvent>
parseSpanBatch(const std::string &payload)
{
    ckpt::Reader r(payload, "span_batch frame");
    const std::uint64_t count = r.u64();
    if (count > 1u << 20)
        fatalIo("span_batch frame declares %llu events — refusing",
                static_cast<unsigned long long>(count));
    std::vector<obs::SpanEvent> events;
    events.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        obs::SpanEvent e;
        e.name = r.str();
        e.phase = static_cast<char>(r.u8());
        e.job = r.u64();
        e.attempt = r.u32();
        e.worker = r.u64();
        e.startUs = static_cast<std::int64_t>(r.u64());
        e.durUs = static_cast<std::int64_t>(r.u64());
        e.detail = r.str();
        events.push_back(std::move(e));
    }
    if (!r.atEnd())
        fatalIo("span_batch frame has trailing bytes");
    return events;
}

std::string
errorPayload(const std::string &message)
{
    return "{\"error\": \"" + jsonEscapeMin(message) + "\"}";
}

std::string
parseErrorPayload(const std::string &payload)
{
    const JsonValue doc = parseJson(payload, "error frame");
    return doc.getString("error", "unspecified service error");
}

} // namespace wsrs::svc
