#include "wakeup_model.h"

#include <algorithm>

namespace wsrs::cxmodel {

SchedulerOrg
makeConventional8Way()
{
    return SchedulerOrg{
        .name = "noWS 8-way",
        .issueWidth = 8,
        .numClusters = 4,
        .resultsPerCluster = 3,
        .windowPerCluster = 56,
        .producersVisible = 12,  // any of 4 clusters x 3 results
        .regReadWritePipe = 4,   // Table 1 noWS-D at the simulated clock
    };
}

SchedulerOrg
makeWs8Way()
{
    SchedulerOrg org = makeConventional8Way();
    org.name = "WS 8-way";
    org.regReadWritePipe = 3;  // one register-read stage saved
    return org;
}

SchedulerOrg
makeWsrs8Way()
{
    return SchedulerOrg{
        .name = "WSRS 8-way",
        .issueWidth = 8,
        .numClusters = 4,
        .resultsPerCluster = 3,
        .windowPerCluster = 56,
        .producersVisible = 6,  // 2 clusters x 3 results per operand
        .regReadWritePipe = 2,
    };
}

SchedulerOrg
makeConventional4Way()
{
    return SchedulerOrg{
        .name = "noWS 4-way",
        .issueWidth = 4,
        .numClusters = 2,
        .resultsPerCluster = 3,
        .windowPerCluster = 56,
        .producersVisible = 6,
        .regReadWritePipe = 2,
    };
}

SchedulerOrg
makeWsrs7Cluster14Way()
{
    return SchedulerOrg{
        .name = "WSRS 7-cluster",
        .issueWidth = 14,
        .numClusters = 7,
        .resultsPerCluster = 3,
        .windowPerCluster = 56,
        .producersVisible = 6,  // still two clusters per operand port
        .regReadWritePipe = 2,
    };
}

std::vector<SchedulerOrg>
section43Organizations()
{
    return {makeConventional8Way(), makeWs8Way(), makeWsrs8Way(),
            makeConventional4Way(), makeWsrs7Cluster14Way()};
}

SchedulerOrg
schedulerOrgFromParams(const core::CoreParams &params)
{
    SchedulerOrg org;
    org.name = params.name;
    org.issueWidth = params.numClusters * params.issuePerCluster;
    org.numClusters = params.numClusters;
    org.resultsPerCluster = params.writebackPerCluster;
    org.windowPerCluster = params.clusterWindow;
    const unsigned visible_clusters =
        params.mode == core::RegFileMode::Wsrs
            ? std::min(2u, params.numClusters)
            : params.numClusters;
    org.producersVisible = visible_clusters * params.writebackPerCluster;
    org.regReadWritePipe = params.regReadStages;
    return org;
}

} // namespace wsrs::cxmodel
