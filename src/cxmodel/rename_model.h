/**
 * @file
 * Complexity model of the register-renaming hardware (paper sections 2.2,
 * 3.2 and 4.1): map-table ports, free-list structures, the Impl-1
 * recycling pipeline, and the WSRS subset-target computation, expressed as
 * port/entry/stage counts so the "some extra hardware and/or a few extra
 * pipeline stages" of the abstract becomes quantitative.
 */
#pragma once

#include <string>
#include <vector>

#include "src/core/params.h"

namespace wsrs::cxmodel {

/** Renaming-hardware inventory for one machine configuration. */
struct RenameComplexity
{
    std::string name;
    unsigned mapReadPorts = 0;    ///< 2 source lookups per renamed op.
    unsigned mapWritePorts = 0;   ///< 1 destination update per op.
    unsigned freeLists = 0;       ///< One per register subset.
    unsigned freeListPopsPerCycle = 0;  ///< Worst-case pops per cycle.
    unsigned recyclerEntries = 0; ///< Impl-1 registers in flight, worst case.
    unsigned extraStages = 0;     ///< Front-end stages beyond conventional.
    /** Comparators for intra-group dependency propagation (Task A):
     *  each op checks its 2 sources against every older op's dest. */
    unsigned dependencyComparators = 0;
    /** Extra bit-vector state for the WSRS subset-target computation
     *  (the f and s vectors, one bit pair per logical register). */
    unsigned subsetTrackerBits = 0;
};

/**
 * Derive the renaming-hardware inventory from a machine description.
 *
 * Stage accounting matches the presets: conventional and WS machines add
 * no stages (static allocation, free lists read early, paper 2.4); WSRS
 * adds 1 stage with Impl-1 and 3 with Impl-2 (paper 3.2).
 */
RenameComplexity analyzeRename(const core::CoreParams &params);

/** Inventories for the Figure-4 machines plus the pools variant. */
std::vector<RenameComplexity> renameComplexityTable();

} // namespace wsrs::cxmodel
