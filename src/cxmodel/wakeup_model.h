/**
 * @file
 * Complexity model of the wake-up, selection and bypass logic (paper
 * section 4.3), in the style of Palacharla/Jouppi/Smith [14].
 *
 * Wake-up: each window entry holds one comparator per (operand, possible
 * producer tag bus); with dyadic operands and N visible producers that is
 * 2N comparators per entry. The response time grows with the number of
 * tag buses that must be driven across the window and OR-ed per operand;
 * the paper quotes [14]: doubling the sources from 4 to 8 lengthens the
 * wake-up critical path by 46% (0.18 um). Our delay model
 *
 *     t_wakeup ∝ 1 + kTagLoad * N
 *
 * is calibrated to reproduce exactly that ratio.
 *
 * Selection: a tree of arbiters over the window (depth log4 of the
 * entries per selection domain).
 *
 * Bypass: X*N+1 candidate sources per operand port (X = register
 * read/write pipeline length), as in Table 1.
 */
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/params.h"

namespace wsrs::cxmodel {

/** Scheduling-complexity view of one machine organization. */
struct SchedulerOrg
{
    std::string name;
    unsigned issueWidth = 8;         ///< Total machine issue width.
    unsigned numClusters = 4;        ///< Scheduling domains.
    unsigned resultsPerCluster = 3;  ///< Tag buses driven per cluster.
    unsigned windowPerCluster = 56;  ///< Wake-up entries per domain.
    /** Producers visible to one operand's wake-up/bypass (clusters a
     *  given operand can have been produced on, times results each). */
    unsigned producersVisible = 12;
    unsigned regReadWritePipe = 4;   ///< X in the bypass-source formula.
};

/** Comparators in one wake-up entry: two operands, N tags each. */
constexpr unsigned
comparatorsPerEntry(const SchedulerOrg &org)
{
    return 2 * org.producersVisible;
}

/** Comparators across the whole machine's windows. */
constexpr unsigned
totalComparators(const SchedulerOrg &org)
{
    return comparatorsPerEntry(org) * org.windowPerCluster *
           org.numClusters;
}

/**
 * Wake-up critical-path delay relative to a 4-producer baseline;
 * reproduces [14]'s 46% growth from 4 to 8 visible producers.
 */
constexpr double
relativeWakeupDelay(const SchedulerOrg &org)
{
    // 1 + k*N normalized to N = 4; k chosen so N=8 gives 1.46x.
    constexpr double k = 0.46 / (8.0 - 4.0 * 1.46);
    return (1.0 + k * org.producersVisible) / (1.0 + k * 4.0);
}

/** Arbiter-tree depth of the per-cluster selection logic. */
constexpr unsigned
selectionTreeDepth(const SchedulerOrg &org)
{
    unsigned depth = 0;
    unsigned span = 1;
    while (span < org.windowPerCluster) {
        span *= 4;
        ++depth;
    }
    return depth;
}

/** Bypass-point sources: X cycles of in-flight results from N producers
 *  plus the register-file path (paper 4.3.1). */
constexpr unsigned
bypassSources(const SchedulerOrg &org)
{
    return org.regReadWritePipe * org.producersVisible + 1;
}

/// @name The paper's machine organizations (section 4.3 discussion).
/// @{
SchedulerOrg makeConventional8Way();     ///< noWS, 4 clusters, 8-way.
SchedulerOrg makeWs8Way();               ///< WS only (shorter reg pipe).
SchedulerOrg makeWsrs8Way();             ///< 4-cluster WSRS.
SchedulerOrg makeConventional4Way();     ///< 2-cluster 4-way reference.
SchedulerOrg makeWsrs7Cluster14Way();    ///< Section-7 extension.
/// @}

/** All of the above, in presentation order. */
std::vector<SchedulerOrg> section43Organizations();

/**
 * Derive the scheduling-complexity view of an arbitrary machine
 * description. Producers visible to one operand follow the paper's rule:
 * all clusters' result buses on conventional/WS machines, one cluster
 * pair's buses under WSRS (read specialization confines an operand to two
 * clusters regardless of the cluster count — section 4.3 / section 7).
 * Applied to the Section-5 8-way presets this reproduces the section43
 * organizations exactly.
 */
SchedulerOrg schedulerOrgFromParams(const core::CoreParams &params);

} // namespace wsrs::cxmodel
