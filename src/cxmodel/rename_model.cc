#include "rename_model.h"

#include "src/core/cluster_alloc.h"
#include "src/isa/micro_op.h"
#include "src/sim/presets.h"

namespace wsrs::cxmodel {

RenameComplexity
analyzeRename(const core::CoreParams &params)
{
    RenameComplexity out;
    out.name = params.name;
    const unsigned w = params.fetchWidth;

    out.mapReadPorts = 2 * w;
    out.mapWritePorts = w;

    switch (params.mode) {
      case core::RegFileMode::Conventional:
        out.freeLists = 1;
        out.freeListPopsPerCycle = w;
        break;
      case core::RegFileMode::WriteSpec:
      case core::RegFileMode::Wsrs:
        out.freeLists = params.numClusters;
        break;
      case core::RegFileMode::WriteSpecPools:
        out.freeLists = core::kNumFuPools;
        break;
    }
    if (params.mode != core::RegFileMode::Conventional) {
        // Impl-1 pops W from every list; Impl-2 pops exactly W total
        // (worst case all into one subset).
        out.freeListPopsPerCycle =
            params.renameImpl == core::RenameImpl::OverPickRecycle
                ? w * out.freeLists
                : w;
    }

    if (params.renameImpl == core::RenameImpl::OverPickRecycle) {
        // Up to (lists*W - consumed) registers recycled per cycle, alive
        // for recycleDelay cycles.
        out.recyclerEntries =
            (out.freeLists * w) * params.recycleDelay;
    }

    // Extra front-end stages relative to the conventional machine's
    // 11-stage fetch-to-rename pipe.
    constexpr unsigned conventional_fe = 11;
    out.extraStages = params.frontEndDepth > conventional_fe
                          ? params.frontEndDepth - conventional_fe
                          : 0;

    // Task (A): op i compares its 2 sources against i older dests.
    out.dependencyComparators = w * (w - 1);  // 2 * sum(i=1..w-1, i)

    if (params.mode == core::RegFileMode::Wsrs)
        out.subsetTrackerBits = 2 * isa::kNumLogRegs;  // f and s vectors.
    return out;
}

std::vector<RenameComplexity>
renameComplexityTable()
{
    return {
        analyzeRename(sim::presetConventional(256)),
        analyzeRename(sim::presetWriteSpec(512)),
        analyzeRename(sim::presetWriteSpecPools(512)),
        analyzeRename(sim::presetWsrsRc(
            512, core::RenameImpl::OverPickRecycle)),
        analyzeRename(sim::presetWsrsRc(512, core::RenameImpl::ExactCount)),
    };
}

} // namespace wsrs::cxmodel
