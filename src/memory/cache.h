/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Timing is handled by MemoryHierarchy; this class models only the tag
 * state (hit/miss, allocation, eviction, dirty bits).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/log.h"
#include "src/common/types.h"

namespace wsrs::memory {

/** Victim-selection policy within a set. */
enum class ReplacementPolicy : std::uint8_t {
    Lru,       ///< True least-recently-used (default).
    Fifo,      ///< Oldest fill is evicted (insertion order).
    Random,    ///< Uniform random way (deterministic xorshift).
    TreePlru,  ///< Tree pseudo-LRU (the common hardware approximation).
};

/** Static parameters of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    ReplacementPolicy replacement = ReplacementPolicy::Lru;
};

/** Outcome of a cache access. */
struct AccessOutcome
{
    bool hit = false;
    bool writebackVictim = false;  ///< A dirty line was evicted.
};

/** Tag-state model of a single set-associative cache. */
class Cache : public ckpt::Snapshotter
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access a line; allocate on miss.
     *
     * @param addr byte address.
     * @param is_store marks the (possibly newly-filled) line dirty.
     */
    AccessOutcome access(Addr addr, bool is_store);

    /** Probe without state change. */
    bool probe(Addr addr) const;

    /** Invalidate everything (used between measurement phases). */
    void flush();

    const CacheParams &params() const { return params_; }
    std::uint64_t numSets() const { return numSets_; }

    /** Checkpoint all tag/replacement state (geometry is validated). */
    void snapshot(ckpt::Writer &w) const override;
    void restore(ckpt::Reader &r) override;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;   ///< LRU: touch time; FIFO: fill time.
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    /** Pick the victim way in a set per the replacement policy. */
    unsigned victimWay(std::size_t set_base, std::size_t set_index);
    /** Update replacement state on a hit. */
    void touch(Line &line, std::size_t set_index, unsigned way);

    CacheParams params_;
    std::uint64_t numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_;     ///< numSets_ x assoc, row-major.
    std::vector<std::uint32_t> plruBits_;  ///< One tree per set.
    std::uint64_t stamp_ = 0;     ///< Monotonic LRU clock.
    std::uint64_t rngState_ = 0x9e3779b9;  ///< Random replacement.
};

} // namespace wsrs::memory
