#include "cache.h"

#include <bit>

namespace wsrs::memory {

Cache::Cache(const CacheParams &params) : params_(params)
{
    if (params.lineBytes == 0 || !std::has_single_bit(params.lineBytes))
        fatal("cache line size %u is not a power of two", params.lineBytes);
    if (params.assoc == 0)
        fatal("cache associativity must be positive");
    if (params.sizeBytes % (std::uint64_t{params.lineBytes} * params.assoc))
        fatal("cache size %llu not divisible by way size",
              static_cast<unsigned long long>(params.sizeBytes));
    numSets_ = params.sizeBytes / params.lineBytes / params.assoc;
    if (!std::has_single_bit(numSets_))
        fatal("cache set count %llu is not a power of two",
              static_cast<unsigned long long>(numSets_));
    if (params.replacement == ReplacementPolicy::TreePlru &&
        !std::has_single_bit(params.assoc))
        fatal("tree-PLRU needs a power-of-two associativity (got %u)",
              params.assoc);
    lineShift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<std::uint64_t>(params.lineBytes)));
    lines_.assign(numSets_ * params.assoc, Line{});
    plruBits_.assign(numSets_, 0);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>((addr >> lineShift_) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

void
Cache::touch(Line &line, std::size_t set_index, unsigned way)
{
    switch (params_.replacement) {
      case ReplacementPolicy::Lru:
        line.lruStamp = stamp_;
        break;
      case ReplacementPolicy::TreePlru: {
        // Flip the tree bits along the path to point *away* from this way.
        std::uint32_t &bits = plruBits_[set_index];
        unsigned node = 1;
        for (unsigned level = params_.assoc / 2; level >= 1; level /= 2) {
            const bool right = (way / level) & 1;
            if (right)
                bits &= ~(1u << node);
            else
                bits |= (1u << node);
            node = 2 * node + (right ? 1 : 0);
        }
        break;
      }
      case ReplacementPolicy::Fifo:
      case ReplacementPolicy::Random:
        break;  // No state update on hit.
    }
}

unsigned
Cache::victimWay(std::size_t set_base, std::size_t set_index)
{
    // Invalid ways always win.
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (!lines_[set_base + w].valid)
            return w;

    switch (params_.replacement) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        unsigned victim = 0;
        for (unsigned w = 1; w < params_.assoc; ++w)
            if (lines_[set_base + w].lruStamp <
                lines_[set_base + victim].lruStamp)
                victim = w;
        return victim;
      }
      case ReplacementPolicy::Random: {
        rngState_ ^= rngState_ << 13;
        rngState_ ^= rngState_ >> 7;
        rngState_ ^= rngState_ << 17;
        return static_cast<unsigned>(rngState_ % params_.assoc);
      }
      case ReplacementPolicy::TreePlru: {
        const std::uint32_t bits = plruBits_[set_index];
        unsigned node = 1;
        unsigned way = 0;
        for (unsigned level = params_.assoc / 2; level >= 1; level /= 2) {
            const bool right = (bits >> node) & 1;
            if (right)
                way += level;
            node = 2 * node + (right ? 1 : 0);
        }
        return way;
      }
    }
    WSRS_PANIC("unhandled replacement policy");
}

AccessOutcome
Cache::access(Addr addr, bool is_store)
{
    const std::size_t set_index = setIndex(addr);
    const std::size_t base = set_index * params_.assoc;
    const Addr tag = tagOf(addr);
    ++stamp_;

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            touch(line, set_index, w);
            line.dirty = line.dirty || is_store;
            return {.hit = true, .writebackVictim = false};
        }
    }

    const unsigned w = victimWay(base, set_index);
    Line &victim = lines_[base + w];
    const bool writeback = victim.valid && victim.dirty;
    victim.valid = true;
    victim.tag = tag;
    victim.dirty = is_store;
    victim.lruStamp = stamp_;  // Fill time (FIFO) == first touch (LRU).
    touch(victim, set_index, w);
    return {.hit = false, .writebackVictim = writeback};
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t base = setIndex(addr) * params_.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::snapshot(ckpt::Writer &w) const
{
    // Geometry header lets restore() reject a mismatched target.
    w.u64(numSets_);
    w.u32(params_.assoc);
    w.u32(params_.lineBytes);
    w.u8(static_cast<std::uint8_t>(params_.replacement));
    w.u64(stamp_);
    w.u64(rngState_);
    for (const Line &line : lines_) {
        w.u64(line.tag);
        w.b(line.valid);
        w.b(line.dirty);
        w.u64(line.lruStamp);
    }
    ckpt::writeVec(w, plruBits_);
}

void
Cache::restore(ckpt::Reader &r)
{
    if (r.u64() != numSets_ || r.u32() != params_.assoc ||
        r.u32() != params_.lineBytes ||
        r.u8() != static_cast<std::uint8_t>(params_.replacement))
        r.fail("cache geometry mismatch between checkpoint and restore "
               "target");
    stamp_ = r.u64();
    rngState_ = r.u64();
    for (Line &line : lines_) {
        line.tag = r.u64();
        line.valid = r.b();
        line.dirty = r.b();
        line.lruStamp = r.u64();
    }
    ckpt::readVecExact(r, plruBits_, numSets_, "cache PLRU bits");
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    for (auto &bits : plruBits_)
        bits = 0;
    stamp_ = 0;
}

} // namespace wsrs::memory
