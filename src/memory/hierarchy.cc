#include "hierarchy.h"

#include <algorithm>

namespace wsrs::memory {

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params,
                                 StatGroup &stats)
    : params_(params), l1_(params.l1), l2_(params.l2),
      accesses_(stats, "mem.accesses", "data-memory accesses"),
      l1Misses_(stats, "mem.l1_misses", "L1 D-cache misses"),
      l2Misses_(stats, "mem.l2_misses", "L2 cache misses"),
      writebacks_(stats, "mem.writebacks", "dirty-line writebacks to L2"),
      mshrStalls_(stats, "mem.mshr_stalls", "misses delayed by MSHR limit"),
      prefetches_(stats, "mem.prefetches", "prefetched lines into L2")
{
    if (params.mshrs > 0)
        missDone_.assign(params.mshrs, 0);
    if (params.model == MemModel::Dram)
        dram_ = std::make_unique<DramController>(params.dram, stats);
}

TimedAccess
MemoryHierarchy::access(Addr addr, bool is_store, Cycle now)
{
    ++accesses_;
    TimedAccess out;
    out.latency = params_.l1Latency;

    const AccessOutcome l1 = l1_.access(addr, is_store);
    out.l1Hit = l1.hit;
    if (l1.hit)
        return out;

    ++l1Misses_;
    if (l1.writebackVictim)
        ++writebacks_;

    // MSHR limit: a new miss waits for the oldest outstanding one when
    // all miss registers are busy (0 = unlimited, default).
    Cycle mshr_wait = 0;
    if (params_.mshrs > 0) {
        const Cycle oldest = missDone_[missDonePos_];
        if (oldest > now) {
            mshr_wait = oldest - now;
            ++mshrStalls_;
        }
    }

    // L2 refill port occupancy: one line at l2BytesPerCycle.
    const Cycle refill_cycles = std::max<Cycle>(
        1, params_.l1.lineBytes / std::max(1u, params_.l2BytesPerCycle));
    const Cycle start = std::max(now + mshr_wait, l2PortFree_);
    const Cycle queue_wait = start - now;
    l2PortFree_ = start + refill_cycles;

    out.latency += params_.l1MissPenalty + queue_wait;

    const AccessOutcome l2 = l2_.access(addr, is_store);
    out.l2Hit = l2.hit;
    if (!l2.hit) {
        ++l2Misses_;
        if (dram_)
            out.latency += dram_->request(addr, is_store,
                                          start + params_.l1MissPenalty,
                                          now);
        else
            out.latency += params_.l2MissPenalty;
    }

    if (params_.mshrs > 0) {
        missDone_[missDonePos_] = now + out.latency;
        missDonePos_ = (missDonePos_ + 1) % missDone_.size();
    }

    // Optional next-line stride prefetch into L2 (extension; default off).
    // Prefetches never charge latency to the triggering access: they only
    // touch L2 tags and, under the DRAM model, occupy bank/bus timing as
    // droppable background traffic.
    for (unsigned i = 1; i <= params_.prefetchDepth; ++i) {
        const Addr next = addr + Addr{i} * params_.l1.lineBytes;
        // Clamp at the top of the address space: Addr arithmetic wraps,
        // and a wrapped "successor" would prefetch an unrelated low line.
        if (next < addr)
            break;
        if (!l2_.probe(next)) {
            l2_.access(next, false);
            ++prefetches_;
            if (dram_)
                dram_->tryPrefetch(next, start + params_.l1MissPenalty,
                                   now);
        }
    }
    return out;
}

void
MemoryHierarchy::snapshot(ckpt::Writer &w) const
{
    l1_.snapshot(w);
    l2_.snapshot(w);
    w.u64(l2PortFree_);
    ckpt::writeVec(w, missDone_);
    w.u64(missDonePos_);
    w.u64(accesses_.value());
    w.u64(l1Misses_.value());
    w.u64(l2Misses_.value());
    w.u64(writebacks_.value());
    w.u64(mshrStalls_.value());
    w.u64(prefetches_.value());
    if (dram_)
        dram_->snapshot(w);
}

void
MemoryHierarchy::restore(ckpt::Reader &r)
{
    l1_.restore(r);
    l2_.restore(r);
    l2PortFree_ = r.u64();
    ckpt::readVecExact(r, missDone_, missDone_.size(), "MSHR miss slots");
    missDonePos_ = static_cast<std::size_t>(r.u64());
    if (!missDone_.empty() && missDonePos_ >= missDone_.size())
        r.fail("MSHR cursor out of range");
    accesses_.restore(r.u64());
    l1Misses_.restore(r.u64());
    l2Misses_.restore(r.u64());
    writebacks_.restore(r.u64());
    mshrStalls_.restore(r.u64());
    prefetches_.restore(r.u64());
    if (dram_)
        dram_->restore(r);
}

void
MemoryHierarchy::flush()
{
    l1_.flush();
    l2_.flush();
    l2PortFree_ = 0;
    for (auto &c : missDone_)
        c = 0;
    missDonePos_ = 0;
    if (dram_)
        dram_->resetState();
}

void
MemoryHierarchy::rebaseTiming()
{
    // Every field keyed by absolute cycles must rebase together: the L2
    // refill port, the in-flight MSHR completion times (a saturated MSHR
    // file from the warming pass would otherwise stall every early miss
    // of the restored core behind phantom outstanding refills) and the
    // DRAM backend's bank/bus/pending-event state.
    l2PortFree_ = 0;
    for (auto &c : missDone_)
        c = 0;
    missDonePos_ = 0;
    if (dram_)
        dram_->rebaseTiming();
}

void
MemoryHierarchy::resetMeasurement(Cycle now)
{
    if (dram_)
        dram_->resetMeasurement(now);
}

} // namespace wsrs::memory
