/**
 * @file
 * Minimal event queue for the event-driven memory backend: a binary
 * min-heap of events keyed by (cycle, sequence). Same-cycle events pop
 * in schedule order — the FIFO tie-break that makes the DRAM
 * controller's completion stream deterministic and checkpoint-stable.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/ckpt/io.h"
#include "src/common/types.h"

namespace wsrs::memory {

/** One scheduled completion. */
struct MemEvent
{
    Cycle at = 0;            ///< Absolute cycle the event fires.
    std::uint64_t seq = 0;   ///< Schedule order; breaks same-cycle ties.
    std::uint32_t bank = 0;  ///< Owning DRAM bank (payload).
};

/** Min-heap of MemEvents ordered by (at, seq). */
class EventQueue
{
  public:
    void
    schedule(Cycle at, std::uint32_t bank)
    {
        heap_.push_back({at, nextSeq_++, bank});
        std::push_heap(heap_.begin(), heap_.end(), later);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Earliest event; undefined when empty. */
    const MemEvent &top() const { return heap_.front(); }

    void
    pop()
    {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
    }

    /** Drop every event, restarting the tie-break sequence. */
    void
    clear()
    {
        heap_.clear();
        nextSeq_ = 0;
    }

    /**
     * Checkpoint the raw heap array. The layout is a deterministic
     * function of the schedule/pop history, so writing it verbatim and
     * reading it back reproduces the queue bit-exactly.
     */
    void
    snapshot(ckpt::Writer &w) const
    {
        w.u64(nextSeq_);
        w.u64(heap_.size());
        for (const MemEvent &e : heap_) {
            w.u64(e.at);
            w.u64(e.seq);
            w.u64(e.bank);
        }
    }

    void
    restore(ckpt::Reader &r)
    {
        nextSeq_ = r.u64();
        const std::uint64_t n = r.u64();
        heap_.clear();
        heap_.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            MemEvent e;
            e.at = r.u64();
            e.seq = r.u64();
            e.bank = static_cast<std::uint32_t>(r.u64());
            heap_.push_back(e);
        }
        if (!std::is_heap(heap_.begin(), heap_.end(), later))
            r.fail("memory event queue is not a heap");
    }

  private:
    /** True when @p a fires after @p b (max-heap comparator inversion). */
    static bool
    later(const MemEvent &a, const MemEvent &b)
    {
        return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }

    std::vector<MemEvent> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace wsrs::memory
