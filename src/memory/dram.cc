#include "dram.h"

#include <algorithm>

#include "src/common/log.h"

namespace wsrs::memory {

using obs::MemQueueStall;

DramController::DramController(const DramParams &params, StatGroup &stats)
    : params_(params),
      requests_(stats, "dram.requests", "demand requests served"),
      reads_(stats, "dram.reads", "demand read requests"),
      writes_(stats, "dram.writes", "demand write requests"),
      rowHits_(stats, "dram.row_hits", "accesses to the open row"),
      rowEmpties_(stats, "dram.row_empties", "accesses opening a closed bank"),
      rowConflicts_(stats, "dram.row_conflicts",
                    "accesses displacing another open row"),
      queueFullWaits_(stats, "dram.queue_full_waits",
                      "demand requests delayed by a full in-flight window"),
      prefetchIssued_(stats, "dram.prefetch_issued",
                      "prefetch requests accepted"),
      prefetchDrops_(stats, "dram.prefetch_drops",
                     "prefetch requests dropped on a full window")
{
    WSRS_ASSERT(params.banks > 0 && params.rowBytes > 0);
    WSRS_ASSERT(params.windowDepth > 0);
    banks_.assign(params.banks, Bank{});
}

void
DramController::charge(MemQueueStall bucket, Cycle from, Cycle to)
{
    // First-cause attribution: every cycle belongs to the earliest charge
    // that claimed it, so later (overlapping) service segments are clipped
    // against the single high-water marker. Cycles before the measurement
    // epoch are never charged.
    from = std::max({from, attrUntil_, epoch_});
    if (from >= to)
        return;
    pending_.push_back({from, to, static_cast<std::uint8_t>(bucket)});
    attrUntil_ = to;
}

void
DramController::drainTo(Cycle now)
{
    // Retire completed in-flight requests so the window reflects
    // occupancy at the core clock.
    while (!events_.empty() && events_.top().at <= now)
        events_.pop();
    // Fold attribution segments that are entirely in the past; the core
    // clock never reaches `now` again, so they are final. Segments are
    // only folded up to `now` — the still-future tail stays pending so a
    // dump at an earlier end-of-measure cycle can clip it exactly.
    while (!pending_.empty() && pending_.front().from < now) {
        AttrSeg &s = pending_.front();
        const Cycle upto = std::min(s.to, now);
        stall_[s.bucket] += upto - s.from;
        if (upto < s.to) {
            s.from = upto;
            break;
        }
        pending_.pop_front();
    }
}

Cycle
DramController::serveLine(Addr addr, Cycle at, bool attribute,
                          std::uint32_t &bank_out)
{
    const std::uint64_t rowAddr = addr / params_.rowBytes;
    const std::uint32_t bankIdx =
        static_cast<std::uint32_t>(rowAddr % banks_.size());
    const std::uint64_t row = rowAddr / banks_.size();
    Bank &bank = banks_[bankIdx];
    bank_out = bankIdx;

    const Cycle bankStart = std::max(at, bank.readyAt);
    Cycle prep;
    if (!params_.closedPage && bank.openRow == row) {
        prep = params_.tCas;
        ++rowHits_;
    } else if (bank.openRow == kNoRow || params_.closedPage) {
        prep = params_.tRcd + params_.tCas;
        ++rowEmpties_;
    } else {
        prep = params_.tRp + params_.tRcd + params_.tCas;
        ++rowConflicts_;
    }
    const Cycle casDone = bankStart + prep;
    // One shared data bus: bursts serialize in CAS-completion order,
    // which (bus occupancy being monotonic) is also FIFO per the demand
    // stream — completions never reorder.
    const Cycle busStart = std::max(casDone, busFreeAt_);
    const Cycle done = busStart + params_.burstCycles;

    bank.readyAt = casDone;
    bank.openRow = params_.closedPage ? kNoRow : row;
    busFreeAt_ = done;

    if (attribute) {
        charge(MemQueueStall::BankBusy, at, bankStart);
        charge(MemQueueStall::BankPrep, bankStart, casDone);
        charge(MemQueueStall::DataBurst, casDone, done);
    }
    return done;
}

Cycle
DramController::request(Addr addr, bool is_store, Cycle at, Cycle now)
{
    drainTo(now);
    ++requests_;
    ++(is_store ? writes_ : reads_);

    // Bounded in-flight window: a full window delays admission until
    // enough outstanding requests (oldest first) have completed.
    Cycle admit = at;
    if (events_.size() >= params_.windowDepth) {
        ++queueFullWaits_;
        while (events_.size() >= params_.windowDepth) {
            admit = std::max(admit, events_.top().at);
            events_.pop();
        }
        charge(MemQueueStall::QueueFull, at, admit);
    }

    std::uint32_t bank = 0;
    const Cycle done = serveLine(addr, admit, /*attribute=*/true, bank);
    events_.schedule(done, bank);
    return done - at;
}

bool
DramController::tryPrefetch(Addr addr, Cycle at, Cycle now)
{
    drainTo(now);
    if (events_.size() >= params_.windowDepth) {
        ++prefetchDrops_;
        return false;
    }
    // Prefetches occupy the bank and bus (later demand requests that wait
    // behind them are charged BankBusy/DataBurst as first causes) but
    // charge nothing themselves: their service must not bill the
    // triggering access, and unclaimed cycles fall to Idle.
    std::uint32_t bank = 0;
    const Cycle done = serveLine(addr, at, /*attribute=*/false, bank);
    events_.schedule(done, bank);
    ++prefetchIssued_;
    return true;
}

void
DramController::rebaseTiming()
{
    for (Bank &b : banks_)
        b.readyAt = 0;
    busFreeAt_ = 0;
    events_.clear();
    pending_.clear();
    attrUntil_ = 0;
    epoch_ = 0;
    stall_.fill(0);
}

void
DramController::resetState()
{
    rebaseTiming();
    for (Bank &b : banks_)
        b.openRow = kNoRow;
}

void
DramController::resetMeasurement(Cycle epoch)
{
    epoch_ = epoch;
    attrUntil_ = std::max(attrUntil_, epoch);
    stall_.fill(0);
    // Segments charged by the warm-up phase may spill into the
    // measurement window (a refill still in flight at the boundary);
    // keep the spill, drop everything fully before the epoch.
    while (!pending_.empty() && pending_.front().to <= epoch)
        pending_.pop_front();
    if (!pending_.empty() && pending_.front().from < epoch)
        pending_.front().from = epoch;
}

std::array<std::uint64_t, DramController::kNumStallBuckets>
DramController::stallCycles(Cycle end) const
{
    std::array<std::uint64_t, kNumStallBuckets> out = stall_;
    // Fold the pending tail, clipped to the measurement window: charges
    // for in-flight service past `end` belong to the next window.
    for (const AttrSeg &s : pending_) {
        const Cycle from = std::max<Cycle>(s.from, epoch_);
        const Cycle to = std::min<Cycle>(s.to, end);
        if (from < to)
            out[s.bucket] += to - from;
    }
    const Cycle total = end > epoch_ ? end - epoch_ : 0;
    std::uint64_t claimed = 0;
    for (std::size_t b = 0; b < kNumStallBuckets; ++b)
        if (b != static_cast<std::size_t>(MemQueueStall::Idle))
            claimed += out[b];
    WSRS_ASSERT(claimed <= total);
    out[static_cast<std::size_t>(MemQueueStall::Idle)] = total - claimed;
    return out;
}

void
DramController::dumpJson(std::ostream &os, const StatGroup &counters,
                         Cycle end) const
{
    os << "{\"model\": \"dram\", \"banks\": " << params_.banks
       << ", \"row_bytes\": " << params_.rowBytes
       << ", \"window_depth\": " << params_.windowDepth
       << ", \"page_policy\": \""
       << (params_.closedPage ? "closed" : "open")
       << "\", \"timing\": {\"t_rp\": " << params_.tRp
       << ", \"t_rcd\": " << params_.tRcd << ", \"t_cas\": " << params_.tCas
       << ", \"burst_cycles\": " << params_.burstCycles
       << "}, \"counters\": ";
    counters.dumpJson(os);
    const auto buckets = stallCycles(end);
    os << ", \"stall\": {\"cycles\": " << (end > epoch_ ? end - epoch_ : 0)
       << ", \"causes\": {";
    for (std::size_t b = 0; b < kNumStallBuckets; ++b) {
        os << (b ? ", " : "") << '"'
           << obs::memQueueStallName(static_cast<MemQueueStall>(b))
           << "\": " << buckets[b];
    }
    os << "}}}";
}

void
DramController::snapshot(ckpt::Writer &w) const
{
    w.u64(banks_.size());
    for (const Bank &b : banks_) {
        w.u64(b.readyAt);
        w.u64(b.openRow);
    }
    events_.snapshot(w);
    w.u64(busFreeAt_);
    w.u64(epoch_);
    w.u64(attrUntil_);
    for (const std::uint64_t s : stall_)
        w.u64(s);
    w.u64(pending_.size());
    for (const AttrSeg &s : pending_) {
        w.u64(s.from);
        w.u64(s.to);
        w.u64(s.bucket);
    }
    w.u64(requests_.value());
    w.u64(reads_.value());
    w.u64(writes_.value());
    w.u64(rowHits_.value());
    w.u64(rowEmpties_.value());
    w.u64(rowConflicts_.value());
    w.u64(queueFullWaits_.value());
    w.u64(prefetchIssued_.value());
    w.u64(prefetchDrops_.value());
}

void
DramController::restore(ckpt::Reader &r)
{
    if (r.u64() != banks_.size())
        r.fail("DRAM bank count mismatch");
    for (Bank &b : banks_) {
        b.readyAt = r.u64();
        b.openRow = r.u64();
    }
    events_.restore(r);
    busFreeAt_ = r.u64();
    epoch_ = r.u64();
    attrUntil_ = r.u64();
    for (std::uint64_t &s : stall_)
        s = r.u64();
    const std::uint64_t npend = r.u64();
    pending_.clear();
    for (std::uint64_t i = 0; i < npend; ++i) {
        AttrSeg s;
        s.from = r.u64();
        s.to = r.u64();
        s.bucket = static_cast<std::uint8_t>(r.u64());
        if (s.bucket >= kNumStallBuckets)
            r.fail("DRAM stall segment bucket out of range");
        pending_.push_back(s);
    }
    requests_.restore(r.u64());
    reads_.restore(r.u64());
    writes_.restore(r.u64());
    rowHits_.restore(r.u64());
    rowEmpties_.restore(r.u64());
    rowConflicts_.restore(r.u64());
    queueFullWaits_.restore(r.u64());
    prefetchIssued_.restore(r.u64());
    prefetchDrops_.restore(r.u64());
}

} // namespace wsrs::memory
