/**
 * @file
 * Two-level data-memory hierarchy with the paper's Table 3 parameters.
 *
 *   L1 D-cache : 32 KB, 2-cycle latency, 12-cycle miss penalty (to L2),
 *                bandwidth 4 accesses/cycle;
 *   L2 cache   : 512 KB, 12-cycle latency, 80-cycle miss penalty (DRAM),
 *                refill bandwidth 16 B/cycle.
 *
 * probeLatency() returns the total load-to-use latency of an access issued
 * at a given cycle, charging L2/DRAM port occupancy so refill bandwidth is
 * honoured (a 64 B line at 16 B/cycle holds the L2 port for 4 cycles).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/memory/cache.h"
#include "src/memory/dram.h"

namespace wsrs::memory {

/** Timing and geometry parameters of the hierarchy (paper Table 3). */
struct HierarchyParams
{
    CacheParams l1{.sizeBytes = 32 * 1024, .assoc = 4, .lineBytes = 64};
    CacheParams l2{.sizeBytes = 512 * 1024, .assoc = 8, .lineBytes = 64};
    Cycle l1Latency = 2;        ///< Load-use latency on an L1 hit.
    Cycle l1MissPenalty = 12;   ///< Extra cycles for an L1 miss / L2 hit.
    Cycle l2MissPenalty = 80;   ///< Extra cycles for an L2 miss (Constant).
    unsigned l2BytesPerCycle = 16; ///< L2 refill bandwidth.
    /** Maximum overlapped L1 misses (0 = unlimited, the paper-era
     *  idealization this repo defaults to). */
    unsigned mshrs = 0;
    /** Optional next-N-line stride prefetcher into L2 on L1 misses
     *  (0 = off; extension, not part of the paper's machine). */
    unsigned prefetchDepth = 0;
    /** Backend serving L2 misses: the paper's fixed constant (default,
     *  keeps every golden fingerprint) or the event-driven DRAM model. */
    MemModel model = MemModel::Constant;
    /** DRAM geometry/timing; consulted only when model == Dram. */
    DramParams dram{};
};

/** Result of a timed access. */
struct TimedAccess
{
    Cycle latency = 0;   ///< Total cycles until the value is usable.
    bool l1Hit = false;
    bool l2Hit = false;  ///< Meaningful when !l1Hit.
};

/** Two-level hierarchy with bandwidth-aware timing. */
class MemoryHierarchy : public ckpt::Snapshotter
{
  public:
    /**
     * @param params hierarchy description.
     * @param stats group receiving the hit/miss counters.
     */
    MemoryHierarchy(const HierarchyParams &params, StatGroup &stats);

    /**
     * Perform a timed access.
     *
     * @param addr byte address.
     * @param is_store stores allocate and dirty lines but their latency is
     *        not on the critical path (the LSQ retires them at commit).
     * @param now issue cycle, used for L2 port occupancy.
     */
    TimedAccess access(Addr addr, bool is_store, Cycle now);

    /** Invalidate both levels and reset port state (not the counters). */
    void flush();

    /**
     * Zero the transient timing state (L2 port occupancy, in-flight
     * misses) while keeping tags, replacement state and counters. Used
     * when warmed state is transplanted to a core whose clock starts at
     * zero (warm-up snapshots): stamps from the warming pass would
     * otherwise sit in the restored core's future and stall every early
     * refill behind a phantom busy port.
     */
    void rebaseTiming();

    /**
     * Start a measurement window at core cycle @p now: forwards to the
     * DRAM backend's stall-attribution epoch. No-op (and no behaviour
     * change) under the Constant model. Pair with Core::resetStats.
     */
    void resetMeasurement(Cycle now);

    const HierarchyParams &params() const { return params_; }

    /** The DRAM backend, or nullptr under the Constant model. */
    const DramController *dram() const { return dram_.get(); }

    std::uint64_t l1Misses() const { return l1Misses_.value(); }
    std::uint64_t mshrStalls() const { return mshrStalls_.value(); }
    std::uint64_t prefetches() const { return prefetches_.value(); }
    std::uint64_t l2Misses() const { return l2Misses_.value(); }
    std::uint64_t accesses() const { return accesses_.value(); }

    /** Checkpoint both cache levels, port/MSHR state and the counters. */
    void snapshot(ckpt::Writer &w) const override;
    void restore(ckpt::Reader &r) override;

  private:
    HierarchyParams params_;
    Cache l1_;
    Cache l2_;
    /** Event-driven backend; constructed (and its counters registered)
     *  only when params.model == Dram, so the Constant model's stats
     *  JSON stays byte-identical to the pre-DRAM seed. */
    std::unique_ptr<DramController> dram_;
    Cycle l2PortFree_ = 0;   ///< Next cycle the L2 refill port is free.
    /** Completion times of in-flight misses (MSHR occupancy model). */
    std::vector<Cycle> missDone_;
    std::size_t missDonePos_ = 0;

    Counter accesses_;
    Counter l1Misses_;
    Counter l2Misses_;
    Counter writebacks_;
    Counter mshrStalls_;
    Counter prefetches_;
};

} // namespace wsrs::memory
