/**
 * @file
 * Event-queue-driven DRAM controller behind the memory hierarchy.
 *
 * An L2 miss becomes a request to one of `banks` DRAM banks (line address
 * interleaved at row granularity). Each bank keeps an open row: a request
 * to the open row pays only CAS, a request to a closed bank pays
 * activate + CAS, and a row conflict pays precharge + activate + CAS
 * (first-ready scheduling: open-row hits bypass preparation entirely,
 * everything else is served in arrival order). All completed lines then
 * serialize over one shared data bus at `burstCycles` per line. A bounded
 * in-flight window (`windowDepth`) backpressures the core: when it is
 * full, a new demand miss waits for the oldest outstanding request to
 * complete, and prefetches are dropped.
 *
 * Every service interval is charged to exactly one obs::MemQueueStall
 * bucket on a first-cause basis (disjoint segments clipped against a
 * single high-water marker), so over any measurement window
 * sum(buckets) + idle == elapsed core cycles — the invariant
 * scripts/check_stats_schema.py enforces on the exported `memory` object.
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <ostream>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/memory/event_queue.h"
#include "src/obs/pipeline_stats.h"

namespace wsrs::memory {

/** Which backend serves L2 misses. */
enum class MemModel : std::uint8_t {
    Constant = 0, ///< Fixed l2MissPenalty (paper Table 3; the default).
    Dram,         ///< Event-driven banked DRAM (DramParams).
};

/** Geometry and timing of the DRAM backend, in core cycles. */
struct DramParams
{
    unsigned banks = 8;        ///< Independent banks (row interleaved).
    unsigned rowBytes = 2048;  ///< Row-buffer size.
    Cycle tRp = 28;            ///< Precharge (close a conflicting row).
    Cycle tRcd = 28;           ///< Activate (open a row).
    Cycle tCas = 28;           ///< Column access of an open row.
    Cycle burstCycles = 4;     ///< Line transfer on the shared data bus.
    unsigned windowDepth = 16; ///< Bounded in-flight request window.
    bool closedPage = false;   ///< Auto-precharge: every access activates.
};

/** Banked open-row DRAM with a shared bus and a bounded window. */
class DramController : public ckpt::Snapshotter
{
  public:
    static constexpr std::size_t kNumStallBuckets =
        static_cast<std::size_t>(obs::MemQueueStall::kCount);

    DramController(const DramParams &params, StatGroup &stats);

    /**
     * Serve a demand miss arriving at the controller at cycle @p at
     * (already past the L1/L2 lookup path). @p now is the core clock of
     * the triggering access (<= @p at); it retires completed events and
     * folds finished attribution segments. Returns done - at, the extra
     * latency the miss observes.
     */
    Cycle request(Addr addr, bool is_store, Cycle at, Cycle now);

    /**
     * Serve a prefetch: occupies bank/bus timing like a demand request
     * but charges nothing to the triggering access or the attribution
     * buckets, and is dropped (returns false) when the window is full.
     */
    bool tryPrefetch(Addr addr, Cycle at, Cycle now);

    /**
     * Zero all absolute-cycle state (bank readiness, bus, pending events
     * and attribution segments) while keeping the open-row registers:
     * warmed rows are transplantable state, stamps from the warming pass
     * are not (they would sit in the restored core's future).
     */
    void rebaseTiming();

    /** rebaseTiming plus closing every row (hierarchy flush). */
    void resetState();

    /**
     * Start a measurement window at @p epoch: zero the stall buckets and
     * clip in-flight attribution segments so only cycles >= epoch are
     * ever charged. Pair with Core::resetStats.
     */
    void resetMeasurement(Cycle epoch);

    /**
     * Stall-cycle attribution over [epoch, end): one entry per
     * obs::MemQueueStall bucket, Idle derived as the unclaimed remainder,
     * so the entries sum to end - epoch exactly.
     */
    std::array<std::uint64_t, kNumStallBuckets> stallCycles(Cycle end) const;

    /**
     * Emit the dram-model `memory` stats object of wsrs-stats-v1:
     * geometry, timing, the hierarchy counter group @p counters and the
     * stall attribution up to core cycle @p end.
     */
    void dumpJson(std::ostream &os, const StatGroup &counters,
                  Cycle end) const;

    const DramParams &params() const { return params_; }

    std::uint64_t requests() const { return requests_.value(); }
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowEmpties() const { return rowEmpties_.value(); }
    std::uint64_t rowConflicts() const { return rowConflicts_.value(); }
    std::uint64_t queueFullWaits() const { return queueFullWaits_.value(); }
    std::uint64_t prefetchDrops() const { return prefetchDrops_.value(); }
    /** Requests scheduled but not yet past their completion cycle. */
    std::size_t inFlight() const { return events_.size(); }

    void snapshot(ckpt::Writer &w) const override;
    void restore(ckpt::Reader &r) override;

  private:
    static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

    struct Bank
    {
        Cycle readyAt = 0;           ///< Bank free for the next command.
        std::uint64_t openRow = kNoRow;
    };

    /** One charged-but-unfolded attribution segment, [from, to). */
    struct AttrSeg
    {
        Cycle from = 0;
        Cycle to = 0;
        std::uint8_t bucket = 0;
    };

    /** Bank/bus service common to demand requests and prefetches. */
    Cycle serveLine(Addr addr, Cycle at, bool attribute,
                    std::uint32_t &bank_out);
    void charge(obs::MemQueueStall bucket, Cycle from, Cycle to);
    void drainTo(Cycle now);

    DramParams params_;
    std::vector<Bank> banks_;
    EventQueue events_;
    Cycle busFreeAt_ = 0;

    // ---- first-cause stall attribution ----
    Cycle epoch_ = 0;     ///< Measurement window start.
    Cycle attrUntil_ = 0; ///< High-water mark of charged segments.
    /** Folded charges (cycles before the last drain point), Idle unused. */
    std::array<std::uint64_t, kNumStallBuckets> stall_{};
    /** Disjoint, time-ordered segments not yet behind the drain point. */
    std::deque<AttrSeg> pending_;

    Counter requests_;
    Counter reads_;
    Counter writes_;
    Counter rowHits_;
    Counter rowEmpties_;
    Counter rowConflicts_;
    Counter queueFullWaits_;
    Counter prefetchIssued_;
    Counter prefetchDrops_;
};

} // namespace wsrs::memory
