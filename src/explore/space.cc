#include "space.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/log.h"
#include "src/common/stats.h"
#include "src/core/cluster_alloc.h"
#include "src/isa/micro_op.h"
#include "src/sim/presets.h"
#include "src/svc/json_min.h"
#include "src/workload/profiles.h"

namespace wsrs::explore {

namespace {

/** Catalog field identifiers (AxisSpec::field). */
enum Field : unsigned {
    // core::CoreParams — numeric.
    kNumClusters,
    kFetchWidth,
    kCommitWidth,
    kIssuePerCluster,
    kLsusPerCluster,
    kFpusPerCluster,
    kAlusPerCluster,
    kClusterWindow,
    kLsqSize,
    kFetchQueue,
    kAgenWidth,
    kNumPhysRegs,
    kFrontEndDepth,
    kRegReadStages,
    kWritebackPerCluster,
    kRecycleDelay,
    // core::CoreParams — enums.
    kMode,
    kPolicy,
    kRenameImpl,
    kFfScope,
    // memory::HierarchyParams — numeric.
    kL1Kb,
    kL1Assoc,
    kL2Kb,
    kL2Assoc,
    kLineBytes,
    kL1Latency,
    kL1MissPenalty,
    kL2MissPenalty,
    kL2BytesPerCycle,
    kMshrs,
    kPrefetchDepth,
    // memory backend.
    kMemModel,
    kDramBanks,
    kDramRowBytes,
    kDramTRp,
    kDramTRcd,
    kDramTCas,
    kDramBurstCycles,
    kDramWindowDepth,
    kNumFields
};

struct CatalogEntry
{
    const char *name;
    Field field;
    bool isEnum;
    /** Enum spellings in ordinal order (nullptr-terminated), or null. */
    const char *const *enumNames;
};

constexpr const char *kModeNames[] = {"conventional", "ws", "ws-pools",
                                      "wsrs", nullptr};
constexpr const char *kPolicyNames[] = {"rr", "rm", "rc", "dep", nullptr};
constexpr const char *kRenameNames[] = {"impl1", "impl2", nullptr};
constexpr const char *kFfNames[] = {"intra", "pair", "complete", nullptr};
constexpr const char *kMemModelNames[] = {"constant", "dram", "dram-closed",
                                          nullptr};

constexpr CatalogEntry kCatalog[] = {
    {"core.num_clusters", kNumClusters, false, nullptr},
    {"core.fetch_width", kFetchWidth, false, nullptr},
    {"core.commit_width", kCommitWidth, false, nullptr},
    {"core.issue_per_cluster", kIssuePerCluster, false, nullptr},
    {"core.lsus_per_cluster", kLsusPerCluster, false, nullptr},
    {"core.fpus_per_cluster", kFpusPerCluster, false, nullptr},
    {"core.alus_per_cluster", kAlusPerCluster, false, nullptr},
    {"core.cluster_window", kClusterWindow, false, nullptr},
    {"core.lsq_size", kLsqSize, false, nullptr},
    {"core.fetch_queue", kFetchQueue, false, nullptr},
    {"core.agen_width", kAgenWidth, false, nullptr},
    {"core.num_phys_regs", kNumPhysRegs, false, nullptr},
    {"core.front_end_depth", kFrontEndDepth, false, nullptr},
    {"core.reg_read_stages", kRegReadStages, false, nullptr},
    {"core.writeback_per_cluster", kWritebackPerCluster, false, nullptr},
    {"core.recycle_delay", kRecycleDelay, false, nullptr},
    {"core.mode", kMode, true, kModeNames},
    {"core.policy", kPolicy, true, kPolicyNames},
    {"core.rename_impl", kRenameImpl, true, kRenameNames},
    {"core.ff_scope", kFfScope, true, kFfNames},
    {"mem.l1_kb", kL1Kb, false, nullptr},
    {"mem.l1_assoc", kL1Assoc, false, nullptr},
    {"mem.l2_kb", kL2Kb, false, nullptr},
    {"mem.l2_assoc", kL2Assoc, false, nullptr},
    {"mem.line_bytes", kLineBytes, false, nullptr},
    {"mem.l1_latency", kL1Latency, false, nullptr},
    {"mem.l1_miss_penalty", kL1MissPenalty, false, nullptr},
    {"mem.l2_miss_penalty", kL2MissPenalty, false, nullptr},
    {"mem.l2_bytes_per_cycle", kL2BytesPerCycle, false, nullptr},
    {"mem.mshrs", kMshrs, false, nullptr},
    {"mem.prefetch_depth", kPrefetchDepth, false, nullptr},
    {"mem.model", kMemModel, true, kMemModelNames},
    {"mem.dram_banks", kDramBanks, false, nullptr},
    {"mem.dram_row_bytes", kDramRowBytes, false, nullptr},
    {"mem.dram_t_rp", kDramTRp, false, nullptr},
    {"mem.dram_t_rcd", kDramTRcd, false, nullptr},
    {"mem.dram_t_cas", kDramTCas, false, nullptr},
    {"mem.dram_burst_cycles", kDramBurstCycles, false, nullptr},
    {"mem.dram_window_depth", kDramWindowDepth, false, nullptr},
};

const CatalogEntry *
findCatalog(const std::string &name)
{
    for (const auto &e : kCatalog)
        if (name == e.name)
            return &e;
    return nullptr;
}

unsigned
mapEnum(const CatalogEntry &entry, const std::string &value,
        const std::string &what)
{
    for (unsigned i = 0; entry.enumNames[i] != nullptr; ++i)
        if (value == entry.enumNames[i])
            return i;
    fatal("%s: axis '%s' has no value '%s'", what.c_str(), entry.name,
          value.c_str());
}

/** Apply one numeric axis value to the point. */
void
applyNumeric(ConfigPoint &pt, Field field, double v)
{
    const auto u = [v] { return static_cast<unsigned>(v); };
    switch (field) {
    case kNumClusters: pt.core.numClusters = u(); break;
    case kFetchWidth: pt.core.fetchWidth = u(); break;
    case kCommitWidth: pt.core.commitWidth = u(); break;
    case kIssuePerCluster: pt.core.issuePerCluster = u(); break;
    case kLsusPerCluster: pt.core.lsusPerCluster = u(); break;
    case kFpusPerCluster: pt.core.fpusPerCluster = u(); break;
    case kAlusPerCluster: pt.core.alusPerCluster = u(); break;
    case kClusterWindow: pt.core.clusterWindow = u(); break;
    case kLsqSize: pt.core.lsqSize = u(); break;
    case kFetchQueue: pt.core.fetchQueue = u(); break;
    case kAgenWidth: pt.core.agenWidth = u(); break;
    case kNumPhysRegs: pt.core.numPhysRegs = u(); break;
    case kFrontEndDepth: pt.core.frontEndDepth = u(); break;
    case kRegReadStages: pt.core.regReadStages = u(); break;
    case kWritebackPerCluster: pt.core.writebackPerCluster = u(); break;
    case kRecycleDelay: pt.core.recycleDelay = u(); break;
    case kL1Kb: pt.mem.l1.sizeBytes = u() * 1024u; break;
    case kL1Assoc: pt.mem.l1.assoc = u(); break;
    case kL2Kb: pt.mem.l2.sizeBytes = u() * 1024u; break;
    case kL2Assoc: pt.mem.l2.assoc = u(); break;
    case kLineBytes:
        pt.mem.l1.lineBytes = u();
        pt.mem.l2.lineBytes = u();
        break;
    case kL1Latency: pt.mem.l1Latency = u(); break;
    case kL1MissPenalty: pt.mem.l1MissPenalty = u(); break;
    case kL2MissPenalty: pt.mem.l2MissPenalty = u(); break;
    case kL2BytesPerCycle: pt.mem.l2BytesPerCycle = u(); break;
    case kMshrs: pt.mem.mshrs = u(); break;
    case kPrefetchDepth: pt.mem.prefetchDepth = u(); break;
    case kDramBanks: pt.mem.dram.banks = u(); break;
    case kDramRowBytes: pt.mem.dram.rowBytes = u(); break;
    case kDramTRp: pt.mem.dram.tRp = u(); break;
    case kDramTRcd: pt.mem.dram.tRcd = u(); break;
    case kDramTCas: pt.mem.dram.tCas = u(); break;
    case kDramBurstCycles: pt.mem.dram.burstCycles = u(); break;
    case kDramWindowDepth: pt.mem.dram.windowDepth = u(); break;
    default: WSRS_PANIC("numeric apply on enum field");
    }
}

/** Apply one enum axis ordinal to the point. */
void
applyEnum(ConfigPoint &pt, Field field, unsigned ord)
{
    switch (field) {
    case kMode:
        pt.core.mode = static_cast<core::RegFileMode>(ord);
        break;
    case kPolicy:
        pt.core.policy = static_cast<core::AllocPolicy>(ord);
        break;
    case kRenameImpl:
        pt.core.renameImpl = static_cast<core::RenameImpl>(ord);
        break;
    case kFfScope:
        pt.core.ffScope = static_cast<core::FastForwardScope>(ord);
        break;
    case kMemModel:
        pt.mem.model = ord == 0 ? memory::MemModel::Constant
                                : memory::MemModel::Dram;
        pt.mem.dram.closedPage = ord == 2;
        break;
    default: WSRS_PANIC("enum apply on numeric field");
    }
}

/** Map the catalog policy ordinal to the core enum. */
core::AllocPolicy
policyFromOrdinal(unsigned ord)
{
    switch (ord) {
    case 0: return core::AllocPolicy::RoundRobin;
    case 1: return core::AllocPolicy::RandomMonadic;
    case 2: return core::AllocPolicy::RandomCommutative;
    default: return core::AllocPolicy::DependenceAware;
    }
}

unsigned
subsetsFor(const core::CoreParams &c)
{
    switch (c.mode) {
    case core::RegFileMode::Conventional: return 1;
    case core::RegFileMode::WriteSpecPools: return core::kNumFuPools;
    default: return c.numClusters;
    }
}

} // namespace

std::uint64_t
SpaceSpec::totalPoints() const
{
    std::uint64_t total = 1;
    for (const auto &axis : axes)
        total *= axis.size();
    return total;
}

SpaceSpec
parseSpaceSpec(std::string_view text, const std::string &what)
{
    const svc::JsonValue doc = svc::parseJson(text, what);
    const std::string schema = doc.getString("schema", "");
    if (schema != kSpaceSchema)
        fatal("%s: schema '%s' is not %s", what.c_str(), schema.c_str(),
              kSpaceSchema);

    SpaceSpec spec;
    spec.baseMachineLabel = "WSRS-RC-512";
    spec.baseMemLabel = "constant";
    if (doc.has("base")) {
        const svc::JsonValue &base = doc.get("base");
        spec.baseMachineLabel =
            base.getString("machine", spec.baseMachineLabel);
        spec.baseMemLabel = base.getString("mem", spec.baseMemLabel);
    }
    spec.baseCore = sim::findPreset(spec.baseMachineLabel);
    spec.baseMem = sim::findMemPreset(spec.baseMemLabel);

    if (doc.has("workloads")) {
        for (const auto &w : doc.get("workloads").asArray()) {
            workload::findProfile(w.asString());  // validates the name
            spec.workloads.push_back(w.asString());
        }
    } else {
        for (const auto &p : workload::allProfiles())
            spec.workloads.push_back(p.name);
    }
    if (spec.workloads.empty())
        fatal("%s: empty workloads list", what.c_str());

    if (!doc.has("axes"))
        fatal("%s: missing 'axes'", what.c_str());
    for (const auto &axisDoc : doc.get("axes").asArray()) {
        AxisSpec axis;
        axis.param = axisDoc.getString("param", "");
        const CatalogEntry *entry = findCatalog(axis.param);
        if (entry == nullptr)
            fatal("%s: unknown axis parameter '%s' (see wsrs-explore "
                  "--list-params)",
                  what.c_str(), axis.param.c_str());
        axis.field = entry->field;
        axis.isEnum = entry->isEnum;

        if (axisDoc.has("values")) {
            for (const auto &v : axisDoc.get("values").asArray()) {
                if (entry->isEnum) {
                    axis.labels.push_back(v.asString());
                    axis.ordinals.push_back(
                        mapEnum(*entry, v.asString(), what));
                } else {
                    axis.numeric.push_back(v.asDouble());
                }
            }
        } else if (axisDoc.has("from")) {
            if (entry->isEnum)
                fatal("%s: axis '%s' is enum-valued and cannot use a "
                      "range",
                      what.c_str(), axis.param.c_str());
            const double from = axisDoc.get("from").asDouble();
            const double to = axisDoc.get("to").asDouble();
            const double step = axisDoc.has("step")
                                    ? axisDoc.get("step").asDouble()
                                    : 1.0;
            if (step <= 0 || to < from)
                fatal("%s: axis '%s' has an empty or descending range",
                      what.c_str(), axis.param.c_str());
            for (double v = from; v <= to + 1e-9; v += step)
                axis.numeric.push_back(v);
        } else {
            fatal("%s: axis '%s' needs 'values' or 'from'/'to'",
                  what.c_str(), axis.param.c_str());
        }
        if (axis.size() == 0)
            fatal("%s: axis '%s' has no values", what.c_str(),
                  axis.param.c_str());
        for (const auto &other : spec.axes)
            if (other.field == axis.field)
                fatal("%s: axis '%s' appears twice", what.c_str(),
                      axis.param.c_str());
        spec.axes.push_back(std::move(axis));
    }
    if (spec.axes.empty())
        fatal("%s: no axes", what.c_str());
    return spec;
}

void
decodePoint(const SpaceSpec &spec, std::uint64_t index,
            std::uint32_t *digits)
{
    // Row-major: the first axis varies slowest.
    for (std::size_t i = spec.axes.size(); i-- > 0;) {
        const std::uint64_t n = spec.axes[i].size();
        digits[i] = static_cast<std::uint32_t>(index % n);
        index /= n;
    }
}

ConfigPoint
materializePoint(const SpaceSpec &spec, const std::uint32_t *digits)
{
    // Resolve the machine shell: mode/policy/impl/regs axes re-derive the
    // paper's pipeline-depth rules through presetForMode; everything else
    // starts from the base machine.
    core::RegFileMode mode = spec.baseCore.mode;
    core::AllocPolicy policy = spec.baseCore.policy;
    core::RenameImpl impl = spec.baseCore.renameImpl;
    unsigned regs = spec.baseCore.numPhysRegs;
    bool reshell = false;
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const AxisSpec &axis = spec.axes[i];
        switch (axis.field) {
        case kMode:
            mode = static_cast<core::RegFileMode>(axis.ordinals[digits[i]]);
            reshell = true;
            break;
        case kPolicy:
            policy = policyFromOrdinal(axis.ordinals[digits[i]]);
            reshell = true;
            break;
        case kRenameImpl:
            impl = static_cast<core::RenameImpl>(axis.ordinals[digits[i]]);
            reshell = true;
            break;
        case kNumPhysRegs:
            regs = static_cast<unsigned>(axis.numeric[digits[i]]);
            break;
        default: break;
        }
    }

    ConfigPoint pt;
    pt.mem = spec.baseMem;
    if (reshell)
        pt.core = sim::presetForMode(mode, policy, regs, impl);
    else
        pt.core = spec.baseCore;
    pt.core.numPhysRegs = regs;

    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const AxisSpec &axis = spec.axes[i];
        const Field field = static_cast<Field>(axis.field);
        if (field == kMode || field == kPolicy || field == kRenameImpl ||
            field == kNumPhysRegs)
            continue;  // already folded into the shell
        if (axis.isEnum)
            applyEnum(pt, field, axis.ordinals[digits[i]]);
        else
            applyNumeric(pt, field, axis.numeric[digits[i]]);
    }

    // Feasibility: everything Core's construction-time validation (and
    // PhysRegFile/Renamer) would reject, plus a progress-headroom floor.
    const auto reject = [&pt](const char *why) {
        pt.feasible = false;
        pt.whyInfeasible = why;
        return pt;
    };
    if (pt.core.numClusters == 0 ||
        pt.core.numClusters > core::kMaxClusters)
        return reject("unsupported cluster count");
    if (pt.core.mode == core::RegFileMode::Wsrs &&
        pt.core.numClusters != 4)
        return reject("WSRS requires 4 clusters");
    if (pt.core.fetchWidth == 0 || pt.core.commitWidth == 0 ||
        pt.core.issuePerCluster == 0 || pt.core.clusterWindow == 0 ||
        pt.core.writebackPerCluster == 0)
        return reject("zero pipeline width");
    const unsigned subsets = subsetsFor(pt.core);
    if (pt.core.numPhysRegs % subsets != 0)
        return reject("registers not divisible into subsets");
    if (pt.core.numPhysRegs < isa::kNumLogRegs + subsets)
        return reject("too few physical registers");
    return pt;
}

std::string
pointName(std::uint64_t index)
{
    return "x" + std::to_string(index);
}

std::string
pointConfigJson(const SpaceSpec &spec, const std::uint32_t *digits)
{
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const AxisSpec &axis = spec.axes[i];
        if (i > 0)
            os << ", ";
        os << "\"" << jsonEscape(axis.param) << "\": ";
        if (axis.isEnum) {
            os << "\"" << jsonEscape(axis.labels[digits[i]]) << "\"";
        } else {
            dumpJsonDouble(os, axis.numeric[digits[i]]);
        }
    }
    os << "}";
    return os.str();
}

std::vector<std::string>
supportedParams()
{
    std::vector<std::string> names;
    for (const auto &e : kCatalog)
        names.push_back(e.name);
    return names;
}

} // namespace wsrs::explore
