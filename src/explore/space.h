/**
 * @file
 * Declarative configuration-space specification and streaming enumeration.
 *
 * A space is a JSON document (schema `wsrs-space-v1`) naming a base
 * machine and a list of axes, each axis a parameter of core::CoreParams or
 * memory::HierarchyParams with an explicit value list or an arithmetic
 * range:
 *
 *   {
 *     "schema": "wsrs-space-v1",
 *     "base": {"machine": "WSRS-RC-512", "mem": "constant"},
 *     "workloads": ["gzip", "mcf"],
 *     "axes": [
 *       {"param": "core.num_clusters", "values": [2, 4, 8]},
 *       {"param": "core.mode", "values": ["conventional", "ws", "wsrs"]},
 *       {"param": "core.num_phys_regs",
 *        "from": 256, "to": 1024, "step": 64}
 *     ]
 *   }
 *
 * The cross product of the axes is enumerated as flat indices in row-major
 * order (first axis outermost), decoded on the fly — the space is never
 * materialized. Points are deterministic pure functions of the spec and
 * the index, which is what makes the explorer's parallel sweep and its
 * reports byte-stable across thread counts.
 *
 * Materialization starts from the base machine; when a mode / policy /
 * rename-impl / register-count axis is present, the point's core instead
 * starts from sim::presetForMode (so pipeline depths follow the paper's
 * mode rules) before the remaining axes are applied. Points the simulator
 * would reject (WSRS cluster geometry, subset divisibility, register
 * backing) are flagged infeasible rather than silently skipped, keeping
 * the axis-coverage accounting exact. Supported parameters are listed in
 * docs/explorer.md and by `wsrs-explore --list-params`.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/params.h"
#include "src/memory/hierarchy.h"

namespace wsrs::explore {

/** Schema tag accepted in a space specification document. */
inline constexpr const char *kSpaceSchema = "wsrs-space-v1";

/** One enumerable parameter, parse-validated against the catalog. */
struct AxisSpec
{
    std::string param;       ///< Catalog name, e.g. "core.num_clusters".
    unsigned field = 0;      ///< Catalog field id (internal).
    bool isEnum = false;     ///< Enum-valued (mode, policy, ...).
    std::vector<double> numeric;     ///< Values of a numeric axis.
    std::vector<unsigned> ordinals;  ///< Mapped values of an enum axis.
    std::vector<std::string> labels; ///< Enum spellings, for reports.

    std::size_t size() const
    {
        return isEnum ? ordinals.size() : numeric.size();
    }
};

/** Parsed space specification with the base point resolved. */
struct SpaceSpec
{
    std::vector<AxisSpec> axes;
    std::vector<std::string> workloads; ///< Benchmark names, spec order.
    core::CoreParams baseCore;
    memory::HierarchyParams baseMem;
    std::string baseMachineLabel;
    std::string baseMemLabel;

    /** Cross-product size (product of axis sizes; 1 for no axes). */
    std::uint64_t totalPoints() const;
};

/** One materialized configuration point. */
struct ConfigPoint
{
    core::CoreParams core;
    memory::HierarchyParams mem;
    bool feasible = true;
    const char *whyInfeasible = nullptr; ///< Static string when !feasible.
};

/**
 * Parse and validate a wsrs-space-v1 document. @p what names the
 * document in error messages. @throws wsrs::FatalError on malformed
 * JSON, unknown parameters, empty axes or unknown workloads.
 */
SpaceSpec parseSpaceSpec(std::string_view text, const std::string &what);

/** Decode flat @p index into per-axis value indices (row-major, first
 *  axis outermost). @p digits must hold spec.axes.size() entries. */
void decodePoint(const SpaceSpec &spec, std::uint64_t index,
                 std::uint32_t *digits);

/** Materialize the point selected by @p digits (cheap; no name is set on
 *  the core — see pointName). */
ConfigPoint materializePoint(const SpaceSpec &spec,
                             const std::uint32_t *digits);

/** Deterministic display name of a point ("x<index>"). */
std::string pointName(std::uint64_t index);

/** The point's axis assignments as a JSON object ("param": value). */
std::string pointConfigJson(const SpaceSpec &spec,
                            const std::uint32_t *digits);

/** Names of every supported axis parameter, catalog order. */
std::vector<std::string> supportedParams();

} // namespace wsrs::explore
