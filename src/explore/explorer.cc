#include "explorer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "src/common/stats.h"
#include "src/obs/explore_metrics.h"
#include "src/rfmodel/regfile_model.h"
#include "src/runner/sweep_runner.h"
#include "src/workload/profiles.h"

namespace wsrs::explore {

namespace {

/** One worker's share of the analytic sweep. */
struct ChunkResult
{
    ParetoArchive archive;
    std::uint64_t infeasible = 0;
};

void
sweepChunk(const SpaceSpec &spec, const AnalyticModel &model,
           const std::vector<WorkloadSignature> &sigs, std::uint64_t lo,
           std::uint64_t hi, ChunkResult &out)
{
    std::vector<std::uint32_t> digits(std::max<std::size_t>(
        spec.axes.size(), 1));
    for (std::uint64_t idx = lo; idx < hi; ++idx) {
        decodePoint(spec, idx, digits.data());
        ConfigPoint pt = materializePoint(spec, digits.data());
        if (!pt.feasible) {
            ++out.infeasible;
            continue;
        }
        double sum_ipc = 0;
        for (const WorkloadSignature &sig : sigs)
            sum_ipc += model.estimateIpc(pt.core, pt.mem, sig).ipc;
        const HardwareEstimate hw = model.estimateHardware(pt.core);
        FrontierPoint p;
        p.index = idx;
        p.obj.ipc = sigs.empty() ? 0 : sum_ipc / sigs.size();
        p.obj.area = hw.areaRel;
        p.obj.energy = hw.energyNJ;
        out.archive.offer(p);
    }
}

/** Mean-over-workloads CPI decomposition of one point, for the report. */
struct MeanEstimate
{
    IpcEstimate est; ///< Every member is the arithmetic workload mean.
};

MeanEstimate
meanEstimate(const AnalyticModel &model, const ConfigPoint &pt,
             const std::vector<WorkloadSignature> &sigs)
{
    MeanEstimate m;
    if (sigs.empty())
        return m;
    for (const WorkloadSignature &sig : sigs) {
        const IpcEstimate e = model.estimateIpc(pt.core, pt.mem, sig);
        m.est.ipc += e.ipc;
        m.est.cpiCore += e.cpiCore;
        m.est.cpiBranch += e.cpiBranch;
        m.est.cpiMem += e.cpiMem;
        m.est.cpiReg += e.cpiReg;
        m.est.mispredictRate += e.mispredictRate;
        m.est.l1MissPerLoad += e.l1MissPerLoad;
        m.est.l2MissPerL1 += e.l2MissPerL1;
        m.est.mlp += e.mlp;
    }
    const double n = static_cast<double>(sigs.size());
    m.est.ipc /= n;
    m.est.cpiCore /= n;
    m.est.cpiBranch /= n;
    m.est.cpiMem /= n;
    m.est.cpiReg /= n;
    m.est.mispredictRate /= n;
    m.est.l1MissPerLoad /= n;
    m.est.l2MissPerL1 /= n;
    m.est.mlp /= n;
    return m;
}

/** Rank of each entry when sorted by value desc (ties: lower index
 *  first); rank 0 is the best. @p order maps value slots to the stable
 *  identity used for tie-breaking. */
std::vector<std::size_t>
rankDescending(const std::vector<double> &values,
               const std::vector<std::uint64_t> &ids)
{
    std::vector<std::size_t> order(values.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (values[a] != values[b])
                      return values[a] > values[b];
                  return ids[a] < ids[b];
              });
    std::vector<std::size_t> rank(values.size());
    for (std::size_t r = 0; r < order.size(); ++r)
        rank[order[r]] = r;
    return rank;
}

void
writeAxisValues(std::ostream &os, const AxisSpec &axis)
{
    os << '[';
    if (axis.isEnum) {
        for (std::size_t i = 0; i < axis.labels.size(); ++i) {
            if (i)
                os << ',';
            os << '"' << jsonEscape(axis.labels[i]) << '"';
        }
    } else {
        for (std::size_t i = 0; i < axis.numeric.size(); ++i) {
            if (i)
                os << ',';
            dumpJsonDouble(os, axis.numeric[i]);
        }
    }
    os << ']';
}

} // namespace

ExplorerResult
explore(const SpaceSpec &spec, const AnalyticModel &model,
        const ExplorerOptions &options)
{
    using Clock = std::chrono::steady_clock;
    ExplorerResult result;

    std::vector<workload::BenchmarkProfile> profiles;
    std::vector<WorkloadSignature> sigs;
    profiles.reserve(spec.workloads.size());
    sigs.reserve(spec.workloads.size());
    for (const std::string &name : spec.workloads) {
        profiles.push_back(workload::findProfile(name));
        sigs.push_back(model.characterize(profiles.back()));
    }

    // ---- analytic sweep -------------------------------------------------
    const auto enumerate_start = Clock::now();
    const std::uint64_t total = spec.totalPoints();
    unsigned threads = options.threads
                           ? options.threads
                           : std::max(1u, std::thread::hardware_concurrency());
    threads = static_cast<unsigned>(std::min<std::uint64_t>(
        threads, std::max<std::uint64_t>(total, 1)));

    std::vector<ChunkResult> chunks(threads);
    if (threads <= 1) {
        sweepChunk(spec, model, sigs, 0, total, chunks[0]);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t lo = total * t / threads;
            const std::uint64_t hi = total * (t + 1) / threads;
            pool.emplace_back([&, lo, hi, t] {
                sweepChunk(spec, model, sigs, lo, hi, chunks[t]);
            });
        }
        for (std::thread &th : pool)
            th.join();
    }

    // Merge in chunk order; the archive is a set, so any order gives the
    // same frontier — chunk order just makes the walk obvious.
    ParetoArchive merged;
    result.enumerated = total;
    for (const ChunkResult &c : chunks) {
        merged.merge(c.archive);
        result.infeasible += c.infeasible;
    }
    result.frontier = merged.sorted();
    const auto enumerate_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - enumerate_start)
            .count();

    // ---- cycle-accurate confirmation ------------------------------------
    const std::size_t confirm_n =
        std::min(options.confirmTop, result.frontier.size());
    std::size_t confirm_jobs = 0;
    std::size_t confirm_failures = 0;
    const auto confirm_start = Clock::now();
    if (confirm_n > 0) {
        std::vector<std::uint32_t> digits(std::max<std::size_t>(
            spec.axes.size(), 1));
        std::vector<sim::SimConfig> configs;
        configs.reserve(confirm_n);
        for (std::size_t k = 0; k < confirm_n; ++k) {
            const std::uint64_t idx = result.frontier[k].index;
            decodePoint(spec, idx, digits.data());
            ConfigPoint pt = materializePoint(spec, digits.data());
            sim::SimConfig cfg;
            cfg.core = pt.core;
            cfg.core.name = pointName(idx);
            cfg.mem = pt.mem;
            cfg.measureUops = options.confirmMeasureUops;
            cfg.warmupUops = options.confirmWarmupUops;
            configs.push_back(std::move(cfg));
        }

        runner::SweepRunner::Options ropts;
        ropts.threads = options.confirmThreads;
        ropts.shareTraces = true;
        ropts.metrics = options.metrics;
        runner::SweepRunner sweeper(ropts);
        const std::vector<runner::SweepJob> jobs =
            runner::SweepRunner::crossProduct(profiles, configs);
        confirm_jobs = jobs.size();
        const std::vector<runner::SweepOutcome> outcomes = sweeper.run(jobs);

        result.confirmed.resize(confirm_n);
        for (std::size_t k = 0; k < confirm_n; ++k) {
            ConfirmedPoint &cp = result.confirmed[k];
            cp.index = result.frontier[k].index;
            cp.ok = true;
            cp.perWorkload.resize(profiles.size(), 0);
            double sum = 0;
            for (std::size_t p = 0; p < profiles.size(); ++p) {
                // crossProduct is profiles-outer: job p * confirm_n + k.
                const runner::SweepOutcome &o =
                    outcomes[p * confirm_n + k];
                if (!o.ok) {
                    ++confirm_failures;
                    if (cp.ok) {
                        cp.ok = false;
                        cp.error = o.error;
                    }
                    continue;
                }
                cp.perWorkload[p] = o.results.ipc;
                sum += o.results.ipc;
            }
            if (cp.ok && !profiles.empty())
                cp.measuredIpc = sum / static_cast<double>(profiles.size());
        }

        std::vector<double> est_ok, meas_ok;
        for (std::size_t k = 0; k < confirm_n; ++k) {
            if (!result.confirmed[k].ok)
                continue;
            est_ok.push_back(result.frontier[k].obj.ipc);
            meas_ok.push_back(result.confirmed[k].measuredIpc);
        }
        result.confirmSpearman = spearman(est_ok, meas_ok);
        for (std::size_t i = 0; i < est_ok.size(); ++i)
            for (std::size_t j = i + 1; j < est_ok.size(); ++j)
                if ((est_ok[i] - est_ok[j]) * (meas_ok[i] - meas_ok[j]) < 0)
                    ++result.rankInversions;
    }
    const auto confirm_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - confirm_start)
            .count();

    // ---- telemetry ------------------------------------------------------
    if (options.metrics) {
        obs::ExploreMetrics m(*options.metrics);
        m.configsEnumerated.add(result.enumerated);
        m.configsInfeasible.add(result.infeasible);
        m.confirmJobs.add(confirm_jobs);
        m.confirmFailures.add(confirm_failures);
        m.frontierSize.set(static_cast<std::int64_t>(
            result.frontier.size()));
        m.spaceAxes.set(static_cast<std::int64_t>(spec.axes.size()));
        m.enumerateMs.observe(static_cast<std::uint64_t>(enumerate_ms));
        if (confirm_n > 0)
            m.confirmMs.observe(static_cast<std::uint64_t>(confirm_ms));
    }

    // ---- report ---------------------------------------------------------
    // Deterministic by construction: every value is a pure function of
    // (spec, model, options) — no wall times, no machine identity.
    std::ostringstream os;
    os << "{\"schema\":\"" << kExploreReportSchema << "\",";
    os << "\"space\":{\"base_machine\":\""
       << jsonEscape(spec.baseMachineLabel) << "\",\"base_mem\":\""
       << jsonEscape(spec.baseMemLabel) << "\",\"workloads\":[";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << jsonEscape(spec.workloads[i]) << '"';
    }
    os << "],\"axes\":[";
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        if (i)
            os << ',';
        os << "{\"param\":\"" << jsonEscape(spec.axes[i].param)
           << "\",\"size\":" << spec.axes[i].size() << ",\"values\":";
        writeAxisValues(os, spec.axes[i]);
        os << '}';
    }
    os << "],\"total_configs\":" << total << ",\"enumerated\":"
       << result.enumerated << ",\"feasible\":"
       << (result.enumerated - result.infeasible) << ",\"infeasible\":"
       << result.infeasible << "},";
    os << "\"objectives\":[\"est_ipc\",\"area_rel\","
          "\"energy_nj_per_cycle\"],";
    os << "\"frontier_size\":" << result.frontier.size() << ",";

    // Ranks over the confirmed (and successful) points only.
    std::vector<double> est_vals, meas_vals;
    std::vector<std::uint64_t> rank_ids;
    std::vector<std::size_t> ok_slot(confirm_n, SIZE_MAX);
    for (std::size_t k = 0; k < confirm_n; ++k) {
        if (!result.confirmed[k].ok)
            continue;
        ok_slot[k] = est_vals.size();
        est_vals.push_back(result.frontier[k].obj.ipc);
        meas_vals.push_back(result.confirmed[k].measuredIpc);
        rank_ids.push_back(result.frontier[k].index);
    }
    const std::vector<std::size_t> est_rank =
        rankDescending(est_vals, rank_ids);
    const std::vector<std::size_t> meas_rank =
        rankDescending(meas_vals, rank_ids);

    os << "\"frontier\":[";
    {
        const rfmodel::RegFileModel rf_model;
        const rfmodel::RegFileOrg rf_ref = rfmodel::makeNoWs2Cluster();
        std::vector<std::uint32_t> digits(std::max<std::size_t>(
            spec.axes.size(), 1));
        for (std::size_t k = 0; k < result.frontier.size(); ++k) {
            if (k)
                os << ',';
            const FrontierPoint &fp = result.frontier[k];
            decodePoint(spec, fp.index, digits.data());
            const ConfigPoint pt = materializePoint(spec, digits.data());
            const MeanEstimate m = meanEstimate(model, pt, sigs);
            const HardwareEstimate hw = model.estimateHardware(pt.core);

            os << "{\"rank\":" << k << ",\"index\":" << fp.index
               << ",\"name\":\"" << pointName(fp.index) << "\",\"config\":"
               << pointConfigJson(spec, digits.data()) << ",\"est\":{";
            os << "\"ipc\":";
            dumpJsonDouble(os, fp.obj.ipc);
            os << ",\"area_rel\":";
            dumpJsonDouble(os, fp.obj.area);
            os << ",\"energy_nj_per_cycle\":";
            dumpJsonDouble(os, fp.obj.energy);
            os << ",\"cpi_core\":";
            dumpJsonDouble(os, m.est.cpiCore);
            os << ",\"cpi_branch\":";
            dumpJsonDouble(os, m.est.cpiBranch);
            os << ",\"cpi_mem\":";
            dumpJsonDouble(os, m.est.cpiMem);
            os << ",\"cpi_reg\":";
            dumpJsonDouble(os, m.est.cpiReg);
            os << ",\"mispredict_rate\":";
            dumpJsonDouble(os, m.est.mispredictRate);
            os << ",\"l1_miss_per_load\":";
            dumpJsonDouble(os, m.est.l1MissPerLoad);
            os << ",\"l2_miss_per_l1\":";
            dumpJsonDouble(os, m.est.l2MissPerL1);
            os << ",\"mlp\":";
            dumpJsonDouble(os, m.est.mlp);
            os << ",\"rf_area_rel\":";
            dumpJsonDouble(os, hw.rfAreaRel);
            os << ",\"access_time_ns\":";
            dumpJsonDouble(os, hw.accessTimeNs);
            os << ",\"comparators\":" << hw.comparators
               << ",\"bypass_sources\":" << hw.bypassSources << "},";

            const rfmodel::RegFileOrg org =
                rfmodel::regFileOrgFromParams(pt.core);
            os << "\"rf\":";
            rfmodel::writeOrgJson(os, org, rf_model.estimate(org, rf_ref));

            os << ",\"measured\":";
            if (k < confirm_n && result.confirmed[k].ok) {
                const ConfirmedPoint &cp = result.confirmed[k];
                const std::size_t slot = ok_slot[k];
                os << "{\"ipc\":";
                dumpJsonDouble(os, cp.measuredIpc);
                os << ",\"per_workload\":{";
                for (std::size_t p = 0; p < spec.workloads.size(); ++p) {
                    if (p)
                        os << ',';
                    os << '"' << jsonEscape(spec.workloads[p]) << "\":";
                    dumpJsonDouble(os, cp.perWorkload[p]);
                }
                os << "},\"est_rank\":" << est_rank[slot]
                   << ",\"measured_rank\":" << meas_rank[slot]
                   << ",\"rank_inversion\":"
                   << (est_rank[slot] != meas_rank[slot] ? "true" : "false")
                   << '}';
            } else {
                os << "null";
            }
            os << '}';
        }
    }
    os << "],";

    os << "\"confirm\":";
    if (confirm_n > 0) {
        os << "{\"requested\":" << options.confirmTop << ",\"confirmed\":"
           << confirm_n << ",\"jobs\":" << confirm_jobs << ",\"failures\":"
           << confirm_failures << ",\"measure_uops\":"
           << options.confirmMeasureUops << ",\"warmup_uops\":"
           << options.confirmWarmupUops << ",\"spearman\":";
        dumpJsonDouble(os, result.confirmSpearman);
        os << ",\"rank_inversions\":" << result.rankInversions
           << ",\"errors\":[";
        bool first = true;
        for (std::size_t k = 0; k < confirm_n; ++k) {
            if (result.confirmed[k].ok)
                continue;
            if (!first)
                os << ',';
            first = false;
            os << "{\"index\":" << result.confirmed[k].index
               << ",\"error\":\"" << jsonEscape(result.confirmed[k].error)
               << "\"}";
        }
        os << "]}";
    } else {
        os << "null";
    }
    os << "}\n";
    result.reportJson = os.str();
    return result;
}

} // namespace wsrs::explore
