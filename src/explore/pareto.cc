#include "pareto.h"

#include <algorithm>

namespace wsrs::explore {

bool
dominates(const Objectives &a, const Objectives &b)
{
    if (a.ipc < b.ipc || a.area > b.area || a.energy > b.energy)
        return false;
    return a.ipc > b.ipc || a.area < b.area || a.energy < b.energy;
}

void
ParetoArchive::offer(const FrontierPoint &p)
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const FrontierPoint &q = points_[i];
        if (dominates(q.obj, p.obj))
            return;  // dominated: nothing already kept can be dominated
        if (q.obj.ipc == p.obj.ipc && q.obj.area == p.obj.area &&
            q.obj.energy == p.obj.energy) {
            // Duplicate objective vector: keep the lowest index.
            points_[keep] = q;
            if (p.index < points_[keep].index)
                points_[keep].index = p.index;
            ++keep;
            for (++i; i < points_.size(); ++i)
                points_[keep++] = points_[i];
            points_.resize(keep);
            return;
        }
        if (!dominates(p.obj, q.obj))
            points_[keep++] = q;  // q survives
    }
    points_.resize(keep);
    points_.push_back(p);
}

void
ParetoArchive::merge(const ParetoArchive &other)
{
    for (const FrontierPoint &p : other.points_)
        offer(p);
}

std::vector<FrontierPoint>
ParetoArchive::sorted() const
{
    std::vector<FrontierPoint> out = points_;
    std::sort(out.begin(), out.end(),
              [](const FrontierPoint &a, const FrontierPoint &b) {
                  if (a.obj.ipc != b.obj.ipc)
                      return a.obj.ipc > b.obj.ipc;
                  if (a.obj.area != b.obj.area)
                      return a.obj.area < b.obj.area;
                  if (a.obj.energy != b.obj.energy)
                      return a.obj.energy < b.obj.energy;
                  return a.index < b.index;
              });
    return out;
}

} // namespace wsrs::explore
