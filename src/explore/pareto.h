/**
 * @file
 * Exact streaming non-dominated archive over the explorer's objective
 * triple (maximize estimated IPC, minimize area, minimize energy/cycle).
 *
 * The archive is exact, not approximate: after any sequence of offer()
 * calls it holds precisely the non-dominated subset of everything offered
 * (duplicated objective vectors keep the lowest enumeration index). That
 * makes the result a *set* — independent of offer order — which is what
 * lets the parallel sweep build one archive per chunk and merge them in
 * any order while staying byte-deterministic: the final frontier depends
 * only on the set of points enumerated, and the deterministic sort (IPC
 * desc, area asc, energy asc, index asc) fixes the report order.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace wsrs::explore {

/** Objective vector of one configuration point. */
struct Objectives
{
    double ipc = 0;     ///< Estimated IPC — maximized.
    double area = 0;    ///< Composite area, noWS-2 relative — minimized.
    double energy = 0;  ///< nJ per cycle — minimized.
};

/** One archived point. */
struct FrontierPoint
{
    std::uint64_t index = 0; ///< Flat space index (deterministic tie-break).
    Objectives obj;
};

/** True when @p a dominates @p b: no worse in every objective and
 *  strictly better in at least one. */
bool dominates(const Objectives &a, const Objectives &b);

/** Exact non-dominated archive (linear scan; frontier sizes here are
 *  small compared to the enumerated space). */
class ParetoArchive
{
  public:
    /** Offer a point, keeping the archive exactly non-dominated. Points
     *  with an identical objective vector keep the lowest index. */
    void offer(const FrontierPoint &p);

    /** Offer every point of @p other (set-union merge). */
    void merge(const ParetoArchive &other);

    /** The frontier sorted by (ipc desc, area asc, energy asc, index
     *  asc) — the explorer's deterministic report order. */
    std::vector<FrontierPoint> sorted() const;

    std::size_t size() const { return points_.size(); }
    const std::vector<FrontierPoint> &points() const { return points_; }

  private:
    std::vector<FrontierPoint> points_;
};

} // namespace wsrs::explore
