#include "calibrate.h"

#include <iomanip>
#include <sstream>

#include "src/runner/sweep_runner.h"
#include "src/sim/presets.h"
#include "src/workload/profiles.h"

namespace wsrs::explore {

CalibrationResult
calibrate(const AnalyticModel &model, const CalibrationOptions &options)
{
    CalibrationResult result;

    const std::vector<workload::BenchmarkProfile> &profiles =
        workload::allProfiles();
    const std::vector<std::string> machines = sim::figure4Presets();

    sim::SimConfig base;
    base.measureUops = options.measureUops;
    base.warmupUops = options.warmupUops;

    runner::SweepRunner::Options ropts;
    ropts.threads = options.threads;
    ropts.shareTraces = true;
    ropts.metrics = options.metrics;
    runner::SweepRunner sweeper(ropts);
    const std::vector<runner::SweepJob> jobs =
        runner::SweepRunner::crossProduct(profiles, machines, base);
    const std::vector<runner::SweepOutcome> outcomes = sweeper.run(jobs);

    // Analytic estimates reuse the per-benchmark signature across the six
    // machines; the machine parameters come straight from the preset the
    // sweep job applied, so both sides describe the same configuration.
    std::vector<core::CoreParams> cores;
    cores.reserve(machines.size());
    for (const std::string &label : machines)
        cores.push_back(sim::findPreset(label));

    result.jobs.reserve(jobs.size());
    std::vector<double> est_ok, meas_ok;
    for (std::size_t p = 0; p < profiles.size(); ++p) {
        const WorkloadSignature sig = model.characterize(profiles[p]);
        for (std::size_t m = 0; m < machines.size(); ++m) {
            const std::size_t j = p * machines.size() + m;
            CalibrationJob job;
            job.benchmark = profiles[p].name;
            job.machine = machines[m];
            job.estimatedIpc =
                model.estimateIpc(cores[m], base.mem, sig).ipc;
            job.ok = outcomes[j].ok;
            if (job.ok) {
                job.measuredIpc = outcomes[j].results.ipc;
                est_ok.push_back(job.estimatedIpc);
                meas_ok.push_back(job.measuredIpc);
            } else {
                job.error = outcomes[j].error;
                ++result.failures;
            }
            result.jobs.push_back(std::move(job));
        }
    }
    result.spearmanIpc = spearman(est_ok, meas_ok);
    return result;
}

std::string
calibrationReportText(const CalibrationResult &result)
{
    std::ostringstream os;
    os << std::left << std::setw(14) << "benchmark" << std::setw(14)
       << "machine" << std::right << std::setw(10) << "measured"
       << std::setw(10) << "analytic" << '\n';
    os << std::string(48, '-') << '\n';
    os << std::fixed << std::setprecision(4);
    for (const CalibrationJob &job : result.jobs) {
        os << std::left << std::setw(14) << job.benchmark << std::setw(14)
           << job.machine << std::right;
        if (job.ok) {
            os << std::setw(10) << job.measuredIpc << std::setw(10)
               << job.estimatedIpc << '\n';
        } else {
            os << "  FAILED: " << job.error << '\n';
        }
    }
    os << std::string(48, '-') << '\n';
    os << "jobs " << result.jobs.size() << "  failures "
       << result.failures << "  spearman " << std::setprecision(4)
       << result.spearmanIpc << '\n';
    return os.str();
}

} // namespace wsrs::explore
