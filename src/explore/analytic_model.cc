#include "analytic_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/log.h"
#include "src/core/cluster_alloc.h"
#include "src/cxmodel/wakeup_model.h"
#include "src/isa/micro_op.h"
#include "src/isa/op_class.h"
#include "src/rfmodel/regfile_model.h"

namespace wsrs::explore {

namespace {

/**
 * Capacity miss probability of a reference stream with @p bytes of
 * footprint against a cache of @p cache_bytes: zero when resident, rising
 * toward one on a power-law curve (the usual sqrt-ish miss-rate knee).
 */
double
capacityMiss(double cache_bytes, double bytes, double exp)
{
    if (bytes <= cache_bytes || bytes <= 0)
        return 0.0;
    return 1.0 - std::pow(cache_bytes / bytes, exp);
}

/** Expected cross-cluster operand probability of one machine. */
double
crossClusterProb(const core::CoreParams &c)
{
    if (c.numClusters <= 1 ||
        c.ffScope == core::FastForwardScope::Complete)
        return 0.0;
    // Read specialization confines each *operand* to a cluster pair, but
    // a dyadic consumer's two operands need not share a pair, so WSRS
    // producer locality is no better than the unconstrained machines';
    // RC's commutative swap buys back a little placement freedom.
    double p = double(c.numClusters - 1) / c.numClusters;
    if (c.mode == core::RegFileMode::Wsrs &&
        c.policy == core::AllocPolicy::RandomCommutative)
        p *= 0.92;
    if (c.policy == core::AllocPolicy::DependenceAware)
        p *= 0.55;  // follows producers when window room allows
    if (c.ffScope == core::FastForwardScope::AdjacentPair)
        p *= 0.5;   // cross-cluster within the pair stays free
    return p;
}

} // namespace

WorkloadSignature
AnalyticModel::characterize(const workload::BenchmarkProfile &p) const
{
    WorkloadSignature s;
    s.name = p.name;

    // Indexed stores expand into an address-generation micro-op plus the
    // store itself (paper 5.1.1); renormalize the mix to micro-ops.
    const double agen = p.fracStore * p.fracIndexedStore;
    const double norm = 1.0 + agen;
    s.fLoad = p.fracLoad / norm;
    s.fStore = p.fracStore / norm;
    s.fBranch = p.fracBranch / norm;
    s.fIntMul = p.fracIntMul / norm;
    s.fIntDiv = p.fracIntDiv / norm;
    s.fFpAdd = p.fracFpAdd / norm;
    s.fFpMul = p.fracFpMul / norm;
    s.fFpDiv = p.fracFpDiv / norm;
    s.fFpSqrt = p.fracFpSqrt / norm;
    s.fAlu = 1.0 - (s.fLoad + s.fStore + s.fBranch + s.fIntMul +
                    s.fIntDiv + s.fFpAdd + s.fFpMul + s.fFpDiv + s.fFpSqrt);
    s.fDest = 1.0 - s.fStore - s.fBranch;

    using isa::OpClass;
    using isa::opLatency;
    s.meanExecLat =
        s.fLoad * opLatency(OpClass::Load) +
        s.fStore * opLatency(OpClass::Store) +
        s.fBranch * opLatency(OpClass::Branch) +
        s.fIntMul * opLatency(OpClass::IntMul) +
        s.fIntDiv * opLatency(OpClass::IntDiv) +
        s.fFpAdd * opLatency(OpClass::FpAdd) +
        s.fFpMul * opLatency(OpClass::FpMul) +
        s.fFpDiv * opLatency(OpClass::FpDiv) +
        s.fFpSqrt * opLatency(OpClass::FpSqrt) +
        s.fAlu * opLatency(OpClass::IntAlu);

    s.meanDepDist = 1.0 / std::max(p.depGeomP, 1e-3);
    // Sources that read always-ready registers root fresh chains: loop
    // invariants, noadic micro-ops, and values fed straight from loads.
    s.readyFrac = p.invariantFrac + 0.5 * p.fracNoadic +
                  0.35 * p.loadValueFrac;
    s.maxChainDepth = p.maxChainDepth;
    s.crossBlockFrac = p.depCrossBlockFrac;

    // The 2Bc-gskew predictor learns a site's bias and a patterned site's
    // history; what is left are the bias exceptions and the noise floor.
    s.mispredictRate =
        k_.mrFloor + k_.mrBias * p.branchBiasedFrac * (1 - p.biasedTakenProb) +
        k_.mrPattern * (1 - p.branchBiasedFrac) * p.patternNoise;

    s.footprintBytes = double(p.workingSetBytes);
    s.strideFrac = p.strideFrac;
    s.streamPeekFrac = p.streamPeekFrac;
    s.randomHotFrac = p.randomHotFrac;
    s.pointerChaseFrac = p.pointerChaseFrac;
    s.addrInvariantFrac = p.addrInvariantFrac;
    s.invariantFrac = p.invariantFrac;
    return s;
}

IpcEstimate
AnalyticModel::estimateIpc(const core::CoreParams &core,
                           const memory::HierarchyParams &mem,
                           const WorkloadSignature &s) const
{
    const double C = core.numClusters;
    const double issueTot = C * core.issuePerCluster;
    const double windowTotal = C * core.clusterWindow;

    // ---- structural throughput bound --------------------------------
    const double aluDemand =
        s.fAlu + s.fBranch + s.fIntMul + s.fIntDiv;
    const double memDemand = s.fLoad + s.fStore;
    const double fpDemand = s.fFpAdd + s.fFpMul + s.fFpDiv + s.fFpSqrt;
    double widthStruct = std::min(
        {double(core.fetchWidth), double(core.commitWidth), issueTot});
    if (aluDemand > 0)
        widthStruct =
            std::min(widthStruct, C * core.alusPerCluster / aluDemand);
    if (memDemand > 0)
        widthStruct = std::min(
            {widthStruct, C * core.lsusPerCluster / memDemand,
             double(core.agenWidth) / memDemand});
    if (fpDemand > 0)
        widthStruct =
            std::min(widthStruct, C * core.fpusPerCluster / fpDemand);

    // ---- dependence-limited ILP -------------------------------------
    const double meanLat =
        s.meanExecLat + s.fLoad * (double(mem.l1Latency) -
                                   double(isa::opLatency(isa::OpClass::Load)));
    const double pCross = crossClusterProb(core);
    const double chainLat = meanLat + k_.bypassWeight * pCross;
    const double ilpDep =
        (k_.ilpBase + k_.ilpDist * s.meanDepDist) *
        (1.0 + k_.ilpReady * s.readyFrac) *
        std::pow(k_.latRef / chainLat, k_.latExp) /
        (1.0 + k_.crossBlockDrag * s.crossBlockFrac);

    // ---- branch CPI --------------------------------------------------
    const double branchPenalty =
        double(core.minMispredictPenalty()) + k_.refillPenalty;
    const double cpiBranch =
        s.fBranch * s.mispredictRate * branchPenalty;

    // ---- cache miss rates from geometry -----------------------------
    // Half the footprint backs the strided streams, half the random
    // region (workload::TraceGenerator's layout).
    const double half = 0.5 * s.footprintBytes;
    const auto missPerLoad = [&](double cache_bytes,
                                 unsigned line_bytes,
                                 double stream_scale) {
        const double streamAdvance =
            s.strideFrac * (1.0 - s.streamPeekFrac);
        const double streamMiss = streamAdvance *
                                  (k_.strideBytes / line_bytes) *
                                  k_.l1StrideWeight * stream_scale *
                                  capacityMiss(cache_bytes, half, k_.capExp);
        const double rand = 1.0 - s.strideFrac;
        const double randMiss =
            rand * (s.randomHotFrac *
                        capacityMiss(cache_bytes, k_.hotBytes, k_.capExp) +
                    (1.0 - s.randomHotFrac) *
                        capacityMiss(cache_bytes, half, k_.capExp));
        return std::min(1.0, streamMiss + randMiss);
    };
    const double l1Miss =
        missPerLoad(double(mem.l1.sizeBytes), mem.l1.lineBytes, 1.0);
    // The stride prefetcher hides stream misses at the L2 level.
    const double l2StreamScale =
        1.0 / (1.0 + k_.prefetchGain * mem.prefetchDepth);
    const double l2MissPerAccess =
        missPerLoad(double(mem.l2.sizeBytes), mem.l2.lineBytes,
                    l2StreamScale);
    const double l2PerL1 =
        l1Miss > 0 ? std::min(1.0, l2MissPerAccess / l1Miss) : 0.0;

    // ---- L2-miss service latency (memory backend profile) -----------
    const double refill =
        double(mem.l2.lineBytes) / std::max(1u, mem.l2BytesPerCycle);
    double l2Pen;
    if (mem.model == memory::MemModel::Dram) {
        const auto &d = mem.dram;
        const double burst = double(d.burstCycles);
        if (d.closedPage) {
            l2Pen = double(d.tRcd + d.tCas) + burst;
        } else {
            const double rowHit =
                s.strideFrac * (1.0 - k_.dramBankSpread);
            const double openMiss =
                0.5 * double(d.tRcd + d.tCas) +
                0.5 * double(d.tRp + d.tRcd + d.tCas);
            l2Pen = rowHit * (double(d.tCas) + burst) +
                    (1.0 - rowHit) * (openMiss + burst);
        }
        l2Pen += refill;
    } else {
        l2Pen = double(mem.l2MissPenalty) + refill;
    }

    // ---- memory-level parallelism -----------------------------------
    const double overlap =
        s.addrInvariantFrac * (1.0 - s.pointerChaseFrac) *
        (k_.mlpStride * s.strideFrac +
         k_.mlpRandom * (1.0 - s.strideFrac));
    const double mlpCap =
        mem.mshrs == 0 ? k_.mlpMax
                       : std::min(k_.mlpMax, double(mem.mshrs));
    const double missPerUop = s.fLoad * l1Miss;
    const double mlp = std::clamp(1.0 + (mlpCap - 1.0) * overlap, 1.0,
                                  1.0 + windowTotal * missPerUop);
    const double cpiMem =
        missPerUop *
        (double(mem.l1MissPenalty) * k_.l1Expose +
         l2PerL1 * l2Pen * k_.l2Expose) /
        mlp;

    // ---- register subset pressure -----------------------------------
    const unsigned subsets =
        core.mode == core::RegFileMode::Conventional ? 1
        : core.mode == core::RegFileMode::WriteSpecPools
            ? core::kNumFuPools
            : core.numClusters;
    const double headroom = std::max(
        1.0, double(core.numPhysRegs) - double(isa::kNumLogRegs));
    double imbalance = 1.0;
    if (subsets > 1) {
        imbalance += k_.imbInvariant * s.invariantFrac;
        if (core.mode == core::RegFileMode::Wsrs)
            imbalance += k_.imbWsrs;
        if (core.policy == core::AllocPolicy::RandomMonadic)
            imbalance += k_.imbRandomMonadic;
    }
    // In-flight destination values hold their registers for the chain
    // latency, so long-latency mixes (FP codes) occupy proportionally
    // more of the pool at the same window occupancy.
    const double demand = s.fDest * windowTotal * k_.occFrac * imbalance *
                          std::pow(chainLat / k_.latRef, k_.occLatExp);
    const double u = std::min(demand / headroom, 0.98);
    const double cpiReg =
        k_.regWeight * std::pow(u, k_.regExp) / (1.0 - u);

    // Pair-constrained dispatch: WSRS cannot rebalance cluster load.
    double balanceLoss = 0.0;
    if (core.mode == core::RegFileMode::Wsrs && core.numClusters > 1) {
        balanceLoss = k_.balWsrs;
        if (core.policy == core::AllocPolicy::RandomMonadic)
            balanceLoss += k_.balWsrsRm;
    }

    // ---- Little's-law window bound with M/M/m queue wait ------------
    // The queue wait depends on the achieved throughput, so solve by a
    // short damped fixed point (monotone, converges in a handful of
    // rounds).
    const double memResidence =
        missPerUop *
        (double(mem.l1MissPenalty) + l2PerL1 * l2Pen) / mlp;
    const unsigned m = std::max(1u, core.issuePerCluster);
    double x = std::min(widthStruct, ilpDep);
    double xCore = x;
    for (int iter = 0; iter < 8; ++iter) {
        const double rho = std::min(x / C / m, 0.97);
        const double wq = k_.queueWeight * mmQueueWait(rho, m);
        const double tRes = k_.resBase + chainLat + wq + memResidence;
        const double ipcWindow = windowTotal / tRes;
        xCore = std::min({widthStruct, ilpDep, ipcWindow}) *
                (1.0 - balanceLoss);
        const double cpi = 1.0 / xCore + cpiBranch + cpiMem + cpiReg;
        x = 0.5 * (x + 1.0 / cpi);
    }

    IpcEstimate e;
    e.cpiCore = 1.0 / xCore;
    e.cpiBranch = cpiBranch;
    e.cpiMem = cpiMem;
    e.cpiReg = cpiReg;
    e.ipc = 1.0 / (e.cpiCore + cpiBranch + cpiMem + cpiReg);
    e.mispredictRate = s.mispredictRate;
    e.l1MissPerLoad = l1Miss;
    e.l2MissPerL1 = l2PerL1;
    e.mlp = mlp;
    return e;
}

HardwareEstimate
AnalyticModel::estimateHardware(const core::CoreParams &core) const
{
    const rfmodel::RegFileModel model;
    const rfmodel::RegFileOrg org = rfmodel::regFileOrgFromParams(core);
    const rfmodel::RegFileOrg ref = rfmodel::makeNoWs2Cluster();
    const cxmodel::SchedulerOrg sched =
        cxmodel::schedulerOrgFromParams(core);
    const cxmodel::SchedulerOrg refSched = cxmodel::makeConventional4Way();

    HardwareEstimate h;
    h.rfAreaRel = model.totalArea(org) / model.totalArea(ref);
    const double cmpRel = double(cxmodel::totalComparators(sched)) /
                          double(cxmodel::totalComparators(refSched));
    h.areaRel = h.rfAreaRel * (1.0 - k_.areaCmpShare) +
                cmpRel * k_.areaCmpShare;
    h.energyNJ = model.energyNJPerCycle(org) +
                 k_.energyCmpNJ * cxmodel::totalComparators(sched);
    h.accessTimeNs = model.accessTimeNs(org);
    h.comparators = cxmodel::totalComparators(sched);
    h.bypassSources = cxmodel::bypassSources(sched);
    return h;
}

double
mmQueueWait(double rho, unsigned m)
{
    WSRS_ASSERT(rho >= 0.0 && rho < 1.0 && m >= 1);
    return std::pow(rho, std::sqrt(2.0 * (m + 1))) / (m * (1.0 - rho));
}

double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    WSRS_ASSERT(a.size() == b.size());
    const std::size_t n = a.size();
    if (n < 2)
        return 0.0;

    const auto ranks = [n](const std::vector<double> &v) {
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
        std::vector<double> r(n);
        std::size_t i = 0;
        while (i < n) {
            std::size_t j = i;
            while (j + 1 < n && v[order[j + 1]] == v[order[i]])
                ++j;
            const double avg = 0.5 * (double(i) + double(j)) + 1.0;
            for (std::size_t t = i; t <= j; ++t)
                r[order[t]] = avg;
            i = j + 1;
        }
        return r;
    };
    const std::vector<double> ra = ranks(a);
    const std::vector<double> rb = ranks(b);

    double meanA = 0, meanB = 0;
    for (std::size_t i = 0; i < n; ++i) {
        meanA += ra[i];
        meanB += rb[i];
    }
    meanA /= double(n);
    meanB /= double(n);
    double cov = 0, varA = 0, varB = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = ra[i] - meanA;
        const double db = rb[i] - meanB;
        cov += da * db;
        varA += da * da;
        varB += db * db;
    }
    if (varA <= 0 || varB <= 0)
        return 0.0;
    return cov / std::sqrt(varA * varB);
}

} // namespace wsrs::explore
