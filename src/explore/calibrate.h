/**
 * @file
 * Calibration harness of the analytic model: run the paper's 72-job
 * Figure-4 matrix (12 benchmarks x 6 machines) cycle-accurately, estimate
 * the same jobs analytically, and report the Spearman rank correlation
 * between the two orderings. The explorer's value is *ranking* candidate
 * configurations for confirmation, so rank correlation — not absolute
 * IPC error — is the calibration target (gated at >= 0.8 by the
 * explore-labelled ctest, tests/explore/test_calibration_gate.cc).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/explore/analytic_model.h"

namespace wsrs::obs {
class MetricsRegistry;
} // namespace wsrs::obs

namespace wsrs::explore {

/** Knobs of one calibration run. */
struct CalibrationOptions
{
    unsigned threads = 0;  ///< Sweep threads (0 = hardware concurrency).
    std::uint64_t measureUops = 200000;
    std::uint64_t warmupUops = 50000;
    obs::MetricsRegistry *metrics = nullptr;
};

/** One benchmark x machine pair of the matrix. */
struct CalibrationJob
{
    std::string benchmark;
    std::string machine;
    double measuredIpc = 0;
    double estimatedIpc = 0;
    bool ok = false;
    std::string error;
};

/** Everything a calibration run produced. */
struct CalibrationResult
{
    std::vector<CalibrationJob> jobs; ///< Benchmark-outer matrix order.
    std::size_t failures = 0;
    /** Spearman over the successful jobs' (estimated, measured) pairs. */
    double spearmanIpc = 0;
};

/** Run the Figure-4 matrix and correlate it against @p model. */
CalibrationResult calibrate(const AnalyticModel &model,
                            const CalibrationOptions &options);

/** Render @p result as a fixed-width text table plus the summary line
 *  (the `wsrs-explore --calibrate` output). */
std::string calibrationReportText(const CalibrationResult &result);

} // namespace wsrs::explore
