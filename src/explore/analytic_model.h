/**
 * @file
 * Analytic IPC / area / energy estimator of the design-space explorer.
 *
 * The estimator maps a machine description (core::CoreParams +
 * memory::HierarchyParams) and a workload signature (derived from a
 * workload::BenchmarkProfile) to a sustained-IPC estimate in a few hundred
 * nanoseconds, so the full configuration space — millions of points — can
 * be swept analytically and only the Pareto frontier handed to the
 * cycle-accurate simulator.
 *
 * The performance model is a CPI-components decomposition around an
 * M/M/m-style queuing core (after Carroll & Lin, arXiv:1807.08586):
 *
 *  - a *structural* throughput bound from the narrowest pipeline resource
 *    (fetch/commit width, per-cluster issue slots, FU-class supply vs. the
 *    workload's demand mix);
 *  - a *dependence* bound from the profile's producer-distance and
 *    chain-depth knobs, stretched by the expected cross-cluster bypass
 *    penalty of the machine's register-file mode / allocation policy;
 *  - a *window* bound by Little's law: total in-flight capacity over the
 *    mean residence time, where residence includes the per-cluster issue
 *    queue wait (Sakasegawa's M/M/m approximation, m = issue slots per
 *    cluster) and the expected memory-miss residence — solved by a short
 *    damped fixed point because the queue wait depends on the achieved
 *    throughput;
 *  - additive CPI penalties for branch mispredictions (misprediction rate
 *    estimated from the profile's branch-site statistics, penalty from the
 *    machine's pipeline depths), exposed memory stalls (cache miss rates
 *    estimated from the profile's footprint/locality knobs against the
 *    cache geometry, overlapped by an MLP factor bounded by the MSHR count
 *    and the memory backend's latency profile), and subset-pressure stalls
 *    on write-specialized machines (physical-register utilization per
 *    subset, inflated by the policy- and workload-dependent unbalancing
 *    the paper's Figure 5 measures).
 *
 * Area and energy reuse the calibrated Section-4.2 register-file model
 * (src/rfmodel) plus the Section-4.3 wake-up inventory (src/cxmodel):
 * area is the register-file area relative to the Table-1 noWS-2 reference
 * with a weighted share for the window comparators, energy is the
 * register-file nJ/cycle plus a per-comparator tag-broadcast term.
 *
 * Every constant lives in ModelConstants; the defaults were calibrated
 * against the repo's 72 measured Figure-4 jobs (12 benchmarks x 6
 * machines) and are gated by a Spearman rank-correlation ctest
 * (tests/explore/test_calibration_gate.cc, docs/explorer.md).
 */
#pragma once

#include "src/core/params.h"
#include "src/memory/hierarchy.h"
#include "src/workload/profile.h"

namespace wsrs::explore {

/** Machine-independent characterization of one benchmark profile. */
struct WorkloadSignature
{
    std::string name;

    /// @name Micro-op mix (per generated micro-op, indexed-store split
    /// applied; fAlu absorbs the remainder and the agen micro-ops).
    /// @{
    double fLoad = 0, fStore = 0, fBranch = 0;
    double fIntMul = 0, fIntDiv = 0;
    double fFpAdd = 0, fFpMul = 0, fFpDiv = 0, fFpSqrt = 0;
    double fAlu = 0;
    double fDest = 0;       ///< Micro-ops producing a register result.
    double meanExecLat = 0; ///< Mix-weighted FU latency (L1-hit loads).
    /// @}

    /// @name Dependence structure.
    /// @{
    double meanDepDist = 0;   ///< Mean producer distance, 1/depGeomP.
    double readyFrac = 0;     ///< Sources reading always-ready registers.
    double maxChainDepth = 0; ///< Generator's dataflow-depth bound.
    double crossBlockFrac = 0;
    /// @}

    double mispredictRate = 0; ///< Estimated per-branch mispredict rate.

    /// @name Memory behaviour.
    /// @{
    double footprintBytes = 0;
    double strideFrac = 0, streamPeekFrac = 0, randomHotFrac = 0;
    double pointerChaseFrac = 0, addrInvariantFrac = 0;
    double invariantFrac = 0;
    /// @}
};

/** Every tunable of the analytic model (see docs/explorer.md). */
struct ModelConstants
{
    // Dependence ILP: ilpDep = (ilpBase + ilpDist * meanDepDist)
    //   * (1 + ilpReady * readyFrac) * (latRef / chainLat)^latExp.
    double ilpBase = 0.33;
    double ilpDist = 0.66;
    double ilpReady = 1.45;
    double latRef = 1.55;
    double latExp = 0.75;
    /// Serialization drag of cross-basic-block dependences.
    double crossBlockDrag = 0.32;

    // Cross-cluster bypass: +1 cycle stretched into the chain latency.
    double bypassWeight = 0.62;

    // Branches: rate = mrFloor + mrBias * biased * (1 - takenProb)
    //   + mrPattern * (1 - biased) * patternNoise; penalty adds refill.
    double mrFloor = 0.0016;
    double mrBias = 0.70;
    double mrPattern = 1.45;
    double refillPenalty = 3.1;

    // Cache-geometry miss estimation.
    double strideBytes = 8.0;     ///< Mean advance of a strided access.
    double hotBytes = 24e3;       ///< Hot random-subset footprint.
    double l1StrideWeight = 0.94;
    double capExp = 0.82;         ///< Capacity-miss curve shape.

    // Memory-level parallelism and exposure.
    double mlpMax = 5.4;
    double mlpStride = 0.92;
    double mlpRandom = 0.34;
    double l1Expose = 0.42;       ///< Exposed share of an L1-miss stall.
    double l2Expose = 0.96;       ///< Exposed share of an L2-miss stall.
    double prefetchGain = 0.35;   ///< Stream-miss reduction per depth.

    // DRAM backend latency profile (model == Dram).
    double dramBankSpread = 0.55; ///< Row-hit loss from bank conflicts.

    // Issue-queue / window residence (Little's law fixed point).
    double resBase = 5.3;         ///< Rename-to-issue + commit residence.
    double queueWeight = 1.9;     ///< Weight of the M/M/m queue wait.

    // Register subset pressure.
    double occFrac = 0.27;        ///< Window occupancy at the knee.
    double regWeight = 2.6;
    double regExp = 5.0;
    double imbInvariant = 0.78;   ///< Unbalancing from invariant operands.
    double imbWsrs = 0.14;        ///< Extra pressure of paired subsets.
    double imbRandomMonadic = 0.07; ///< RM's weaker placement freedom.
    double occLatExp = 0.5;       ///< Residence growth with chain latency.

    // Cluster-balance throughput loss: read specialization constrains a
    // consumer to its operand subset's cluster pair, so WSRS dispatch
    // cannot freely rebalance cluster load the way an unconstrained
    // allocator can (the measured Figure-4 WSRS machines trail WSRR by
    // 5-10% at equal frequency). RM loses additional freedom because it
    // cannot swap commutative operands.
    double balWsrs = 0.10;
    double balWsrsRm = 0.06;

    // Area / energy objectives.
    double areaCmpShare = 0.30;   ///< Comparator share of the area metric.
    double energyCmpNJ = 0.9e-4;  ///< nJ/cycle per wake-up comparator.
};

/** IPC estimate with its CPI decomposition (diagnostics + report). */
struct IpcEstimate
{
    double ipc = 0;
    double cpiCore = 0;    ///< Structural/dependence/window component.
    double cpiBranch = 0;
    double cpiMem = 0;
    double cpiReg = 0;     ///< Subset-pressure stalls.
    double mispredictRate = 0;
    double l1MissPerLoad = 0;
    double l2MissPerL1 = 0;
    double mlp = 0;
};

/** Workload-independent hardware cost of one machine. */
struct HardwareEstimate
{
    double areaRel = 0;       ///< Composite area vs. the noWS-2 reference.
    double rfAreaRel = 0;     ///< Register-file share alone (Table 1).
    double energyNJ = 0;      ///< Register file + tag broadcast, nJ/cycle.
    double accessTimeNs = 0;
    unsigned comparators = 0; ///< Wake-up comparators machine-wide.
    unsigned bypassSources = 0;
};

/** The estimator. Immutable and thread-safe after construction. */
class AnalyticModel
{
  public:
    AnalyticModel() : k_{} {}
    explicit AnalyticModel(const ModelConstants &k) : k_(k) {}

    /** Reduce a profile to the knobs the estimator consumes. */
    WorkloadSignature
    characterize(const workload::BenchmarkProfile &profile) const;

    /** Sustained-IPC estimate of one workload on one machine. */
    IpcEstimate estimateIpc(const core::CoreParams &core,
                            const memory::HierarchyParams &mem,
                            const WorkloadSignature &sig) const;

    /** Area/energy cost of one machine (workload-independent). */
    HardwareEstimate estimateHardware(const core::CoreParams &core) const;

    const ModelConstants &constants() const { return k_; }

  private:
    ModelConstants k_;
};

/**
 * Sakasegawa's M/M/m mean queue-wait approximation in units of the mean
 * service time: wq = rho^sqrt(2(m+1)) / (m (1 - rho)). Exact for m = 1
 * (the M/M/1 closed form rho^2 / (1 - rho)); within a few percent of the
 * Erlang-C value for the small m of an issue cluster. @p rho must be in
 * [0, 1).
 */
double mmQueueWait(double rho, unsigned m);

/** Spearman rank correlation of two equally-sized samples; ties receive
 *  their average rank. Returns 0 for fewer than two points. */
double spearman(const std::vector<double> &a, const std::vector<double> &b);

} // namespace wsrs::explore
