/**
 * @file
 * Explorer orchestration: analytic sweep -> Pareto frontier ->
 * cycle-accurate confirmation -> ranked wsrs-explore-v1 report.
 *
 * explore() streams the space's flat indices over a thread pool, scores
 * every feasible point with the analytic model (estimated IPC averaged
 * over the spec's workloads; area and energy from the hardware model),
 * keeps one exact non-dominated archive per chunk and merges them. The
 * result — and the report bytes — are independent of the thread count:
 * points are pure functions of (spec, index), the non-dominated set is a
 * set, and every ordering in the report is deterministically tie-broken
 * by the enumeration index.
 *
 * With confirmTop > 0 the top-K frontier points (report order) are
 * materialized into named SimConfigs and dispatched through
 * runner::SweepRunner as a K x workloads job matrix; the report then
 * pairs each confirmed point's analytic estimate with its measured IPC,
 * ranks both ways, flags rank inversions, and records the Spearman rank
 * correlation between the two orderings.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/explore/analytic_model.h"
#include "src/explore/pareto.h"
#include "src/explore/space.h"

namespace wsrs::obs {
class MetricsRegistry;
} // namespace wsrs::obs

namespace wsrs::explore {

/** Schema tag of the explorer's JSON report. */
inline constexpr const char *kExploreReportSchema = "wsrs-explore-v1";

/** Knobs of one explore() run. */
struct ExplorerOptions
{
    /** Analytic-sweep threads; 0 picks the hardware concurrency. */
    unsigned threads = 1;
    /** Frontier points to confirm cycle-accurately (0 = none). */
    std::size_t confirmTop = 0;
    /** Confirmation sweep threads (SweepRunner semantics; 0 = hw). */
    unsigned confirmThreads = 0;
    std::uint64_t confirmMeasureUops = 300000;
    std::uint64_t confirmWarmupUops = 100000;
    /** Instrument group target (null = telemetry off). */
    obs::MetricsRegistry *metrics = nullptr;
};

/** Measured outcome of one confirmed frontier point. */
struct ConfirmedPoint
{
    std::uint64_t index = 0;    ///< Flat space index.
    bool ok = false;            ///< All of the point's jobs succeeded.
    double measuredIpc = 0;     ///< Mean over workloads (valid when ok).
    std::vector<double> perWorkload; ///< Spec workload order.
    std::string error;          ///< First failure message when !ok.
};

/** Everything explore() produces. */
struct ExplorerResult
{
    std::uint64_t enumerated = 0;  ///< Points decoded (== space size).
    std::uint64_t infeasible = 0;  ///< ... of which failed validation.
    std::vector<FrontierPoint> frontier;  ///< Report order.
    std::vector<ConfirmedPoint> confirmed;
    /** Spearman correlation of analytic vs. measured over the confirmed
     *  points (NaN when fewer than two confirmed). */
    double confirmSpearman = 0;
    std::size_t rankInversions = 0; ///< Discordant confirmed pairs.
    std::string reportJson;         ///< wsrs-explore-v1 document.
};

/** Run the analytic sweep (and optional confirmation) over @p spec. */
ExplorerResult explore(const SpaceSpec &spec, const AnalyticModel &model,
                       const ExplorerOptions &options);

} // namespace wsrs::explore
