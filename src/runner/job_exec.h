/**
 * @file
 * Single-job execution shared by the in-process sweep runner and the
 * distributed sweep workers (src/svc).
 *
 * A sweep job is self-contained: executeJob runs one {benchmark, machine}
 * simulation against the caches the caller supplies and captures any
 * failure in the returned outcome instead of throwing. Because the same
 * function body runs under SweepRunner's thread pool and inside
 * `wsrs-sim --worker` processes, a job's results (including its
 * wsrs-stats-v1 document) are byte-identical no matter where it executed —
 * the property the coordinator's merged sweep report relies on.
 */
#pragma once

#include "src/runner/sweep_runner.h"

namespace wsrs::ckpt {
class WarmupCache;
class SharedWarmupCache;
} // namespace wsrs::ckpt

namespace wsrs::runner {

class TraceCache;

/** Caches and policy one executeJob call runs against. All pointers are
 *  borrowed and may be shared between concurrent calls. */
struct JobContext
{
    /** Per-profile recorded trace cache; null regenerates per run. */
    TraceCache *traces = nullptr;
    /** In-memory warm-up snapshot cache (required when reuseWarmup). */
    ckpt::WarmupCache *warmups = nullptr;
    /** Optional cross-process disk layer behind the in-memory cache. */
    ckpt::SharedWarmupCache *sharedWarmups = nullptr;
    /** Restore one functional warm-up snapshot per benchmark instead of
     *  core-timed warm-up (see SweepRunner::Options::reuseWarmup). */
    bool reuseWarmup = false;
};

/**
 * Run one job to completion. Exceptions (FatalError and friends) are
 * captured into the outcome's error field; the call itself only throws on
 * broken preconditions (reuseWarmup without a warmup cache).
 */
SweepOutcome executeJob(const SweepJob &job, const JobContext &ctx);

} // namespace wsrs::runner
