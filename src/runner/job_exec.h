/**
 * @file
 * Single-job execution shared by the in-process sweep runner and the
 * distributed sweep workers (src/svc).
 *
 * A sweep job is self-contained: executeJob runs one {benchmark, machine}
 * simulation against the caches the caller supplies and captures any
 * failure in the returned outcome instead of throwing. Because the same
 * function body runs under SweepRunner's thread pool and inside
 * `wsrs-sim --worker` processes, a job's results (including its
 * wsrs-stats-v1 document) are byte-identical no matter where it executed —
 * the property the coordinator's merged sweep report relies on.
 */
#pragma once

#include <cstdint>

#include "src/obs/metrics_registry.h"
#include "src/obs/span_log.h"
#include "src/runner/sweep_runner.h"

namespace wsrs::ckpt {
class WarmupCache;
class SharedWarmupCache;
} // namespace wsrs::ckpt

namespace wsrs::runner {

class TraceCache;

/**
 * Registry handles for the runner-layer instruments (job counts, warm-up
 * cache behaviour, per-stage host latencies). Constructing one binds (or
 * re-binds) the instruments in @p registry; executeJob bumps them through
 * a borrowed pointer, so the disabled path is a null check — exactly the
 * TraceSink discipline, and gated the same way by the perf-smoke A/B.
 */
struct RunnerMetrics
{
    explicit RunnerMetrics(obs::MetricsRegistry &registry);

    obs::MetricCounter &jobsExecuted;
    obs::MetricCounter &jobFailures;
    obs::MetricCounter &warmupHits;
    obs::MetricCounter &warmupBuilds;
    obs::MetricHistogram &jobMs;      ///< Whole executeJob wall time.
    obs::MetricHistogram &warmupMs;   ///< Warm-up acquire (hit or build).
    obs::MetricHistogram &simulateMs; ///< Measured-slice simulation.

    // ---- memory backend (non-zero only under --mem-model dram) ----
    obs::MetricCounter &memRequests;
    obs::MetricCounter &memRowHits;
    obs::MetricCounter &memRowConflicts;
    obs::MetricCounter &memQueueFullWaits;
};

/** Caches and policy one executeJob call runs against. All pointers are
 *  borrowed and may be shared between concurrent calls. */
struct JobContext
{
    /** Per-profile recorded trace cache; null regenerates per run. */
    TraceCache *traces = nullptr;
    /** In-memory warm-up snapshot cache (required when reuseWarmup). */
    ckpt::WarmupCache *warmups = nullptr;
    /** Optional cross-process disk layer behind the in-memory cache. */
    ckpt::SharedWarmupCache *sharedWarmups = nullptr;
    /** Restore one functional warm-up snapshot per benchmark instead of
     *  core-timed warm-up (see SweepRunner::Options::reuseWarmup). */
    bool reuseWarmup = false;

    // ---- telemetry (null = disabled; see docs/observability.md) ----
    /** Metric handles to bump per job. */
    RunnerMetrics *metrics = nullptr;
    /** Span log receiving warmup/simulate/job events. */
    obs::SpanLog *spans = nullptr;
};

/** Per-call span identity: which job/attempt this execution is, on whose
 *  timeline. Ignored unless the context carries a span log. */
struct JobTelemetry
{
    std::uint64_t job = 0;     ///< Sweep job index.
    std::uint32_t attempt = 0; ///< Lease attempt (0 = in-process runner).
    std::uint64_t worker = 0;  ///< Worker id (0 = local).
};

/**
 * Run one job to completion. Exceptions (FatalError and friends) are
 * captured into the outcome's error field; the call itself only throws on
 * broken preconditions (reuseWarmup without a warmup cache).
 */
SweepOutcome executeJob(const SweepJob &job, const JobContext &ctx,
                        const JobTelemetry &tele = {});

} // namespace wsrs::runner
