/**
 * @file
 * Crash-resumable sweep journal.
 *
 * A long sweep that dies (OOM kill, power loss, ctrl-C) should not have to
 * redo finished work. The journal is an append-only binary file recording
 * each completed job's outcome as soon as it finishes:
 *
 *   header := magic[8]="WSRSJRN1" u32 version u64 sweepKey u64 numJobs
 *   record := "JREC" u64 jobIndex u64 payloadLen payload
 *             u32 crc32(jobIndex || payloadLen || payload)
 *
 * All integers little-endian; the payload is a ckpt::Writer-encoded
 * SweepOutcome. The sweepKey (sweepKeyHash over every job's full
 * configuration, in submission order) binds a journal to one exact sweep:
 * resuming with a different benchmark list, machine list, seed or slice
 * length starts a fresh journal instead of mixing incompatible results.
 *
 * Durability model: records are flushed after each append, so after a kill
 * at any instant the file holds a clean prefix of records plus at most one
 * torn tail. On resume the journal validates the header, replays every
 * intact record (CRC-checked), truncates the torn tail if present, and
 * re-opens for append. Determinism of the simulator makes replayed and
 * re-run outcomes interchangeable, so a resumed sweep's report equals an
 * uninterrupted one (modulo host-timing metadata).
 */
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "src/ckpt/io.h"
#include "src/runner/sweep_runner.h"

namespace wsrs::runner {

/** Journal file magic. */
inline constexpr char kJournalMagic[8] = {'W', 'S', 'R', 'S',
                                          'J', 'R', 'N', '1'};
/** Journal format version; bump on any layout change. */
inline constexpr std::uint32_t kJournalVersion = 1;

/**
 * Identity hash of a sweep: every job's complete configuration (profile
 * knobs, trace seed, warm-up/measure lengths, memory hierarchy, predictor,
 * core preset) chained in submission order.
 */
std::uint64_t sweepKeyHash(const std::vector<SweepJob> &jobs);

/** Serialize one outcome into @p w (journal payload codec). */
void encodeOutcome(ckpt::Writer &w, const SweepOutcome &out);
/** Decode an outcome written by encodeOutcome. */
SweepOutcome decodeOutcome(ckpt::Reader &r);

/**
 * Append-only journal of completed jobs, shared by the sweep workers.
 * Thread-safe: record() serializes appends internally.
 */
class ResumeJournal
{
  public:
    /**
     * Open @p path for a sweep identified by @p sweep_key with
     * @p num_jobs jobs.
     *
     * With @p resume set, an existing journal for the same sweep is
     * replayed into recovered() and extended; a journal for a *different*
     * sweep is a fatal error (refusing to silently mix results), and a
     * missing file starts fresh. Without @p resume any existing file is
     * truncated.
     */
    ResumeJournal(std::string path, std::uint64_t sweep_key,
                  std::uint64_t num_jobs, bool resume);

    /** Outcomes recovered from a prior run, indexed by job; entries with
     *  recoveredMask()[i] == false are default-constructed. */
    const std::vector<SweepOutcome> &recovered() const { return recovered_; }
    const std::vector<bool> &recoveredMask() const { return mask_; }
    /** Number of jobs recovered from the prior run. */
    std::size_t recoveredCount() const { return recoveredCount_; }
    /** Whether an intact prior journal was found and replayed. */
    bool resumed() const { return resumed_; }

    /** Append one finished job's outcome and flush it to disk. */
    void record(std::uint64_t index, const SweepOutcome &out);

    const std::string &path() const { return path_; }

  private:
    void writeHeader();
    void replay();

    std::string path_;
    std::uint64_t sweepKey_;
    std::uint64_t numJobs_;
    std::vector<SweepOutcome> recovered_;
    std::vector<bool> mask_;
    std::size_t recoveredCount_ = 0;
    bool resumed_ = false;
    std::ofstream out_;
    std::mutex mutex_;
};

} // namespace wsrs::runner
