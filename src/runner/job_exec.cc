#include "job_exec.h"

#include <memory>

#include "src/ckpt/shared_warmup_cache.h"
#include "src/ckpt/warmup_cache.h"
#include "src/common/log.h"
#include "src/runner/trace_cache.h"
#include "src/sim/warmup.h"

namespace wsrs::runner {

SweepOutcome
executeJob(const SweepJob &job, const JobContext &ctx)
{
    SweepOutcome out;
    try {
        sim::SimConfig cfg = job.config;
        std::shared_ptr<const std::string> blob;
        if (ctx.reuseWarmup && cfg.warmupUops > 0) {
            if (!ctx.warmups)
                fatal("executeJob: reuseWarmup requires a warm-up cache");
            // One functional warm-up per key serves every machine config
            // of the benchmark; the blob stays alive for the duration of
            // this run. With a shared disk layer, the first process to
            // need a key builds and publishes it for every other worker.
            const std::uint64_t key = sim::warmupKeyHash(job.profile, cfg);
            const auto build = [&] {
                return sim::buildWarmupSnapshot(job.profile, cfg);
            };
            blob = ctx.warmups->getOrBuild(key, [&]() -> std::string {
                if (ctx.sharedWarmups)
                    return ctx.sharedWarmups->getOrBuild(key, build);
                return build();
            });
            cfg.warmupBlob = blob.get();
        }
        if (ctx.traces) {
            // Hold the shared trace only for the duration of the run: it
            // stays recorded while any sibling job needs it and is
            // released when the profile's jobs drain.
            const std::shared_ptr<CachedTrace> trace =
                ctx.traces->acquire(job.profile, cfg.seed);
            const auto cursor = trace->openCursor();
            out.results = sim::runSimulation(job.profile, cfg, *cursor);
        } else {
            out.results = sim::runSimulation(job.profile, cfg);
        }
        out.ok = true;
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

} // namespace wsrs::runner
