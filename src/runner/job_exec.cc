#include "job_exec.h"

#include <memory>

#include "src/ckpt/shared_warmup_cache.h"
#include "src/ckpt/warmup_cache.h"
#include "src/common/log.h"
#include "src/runner/trace_cache.h"
#include "src/sim/warmup.h"

namespace wsrs::runner {

RunnerMetrics::RunnerMetrics(obs::MetricsRegistry &r)
    : jobsExecuted(r.counter("wsrs_runner_jobs_total",
                             "Sweep jobs executed to completion")),
      jobFailures(r.counter("wsrs_runner_job_failures_total",
                            "Jobs whose outcome captured an error")),
      warmupHits(r.counter("wsrs_runner_warmup_hits_total",
                           "Warm-up snapshots restored from a cache")),
      warmupBuilds(r.counter("wsrs_runner_warmup_builds_total",
                             "Warm-up snapshots built from scratch")),
      jobMs(r.histogram("wsrs_runner_job_duration_ms",
                        "Wall time of one executeJob call",
                        obs::MetricsRegistry::latencyBucketsMs())),
      warmupMs(r.histogram("wsrs_runner_warmup_duration_ms",
                           "Warm-up snapshot acquire (hit or build)",
                           obs::MetricsRegistry::latencyBucketsMs())),
      simulateMs(r.histogram("wsrs_runner_simulate_duration_ms",
                             "Measured-slice simulation wall time",
                             obs::MetricsRegistry::latencyBucketsMs())),
      memRequests(r.counter("wsrs_mem_requests_total",
                            "DRAM demand requests across measured slices")),
      memRowHits(r.counter("wsrs_mem_row_hits_total",
                           "DRAM open-row hits across measured slices")),
      memRowConflicts(r.counter("wsrs_mem_row_conflicts_total",
                                "DRAM row conflicts across measured "
                                "slices")),
      memQueueFullWaits(r.counter("wsrs_mem_queue_full_waits_total",
                                  "DRAM requests delayed by a full "
                                  "in-flight window"))
{
}

SweepOutcome
executeJob(const SweepJob &job, const JobContext &ctx,
           const JobTelemetry &tele)
{
    SweepOutcome out;
    const std::int64_t jobStartUs =
        (ctx.metrics || ctx.spans) ? obs::monotonicMicros() : 0;
    try {
        sim::SimConfig cfg = job.config;
        std::shared_ptr<const std::string> blob;
        if (ctx.reuseWarmup && cfg.warmupUops > 0) {
            if (!ctx.warmups)
                fatal("executeJob: reuseWarmup requires a warm-up cache");
            // One functional warm-up per key serves every machine config
            // of the benchmark; the blob stays alive for the duration of
            // this run. With a shared disk layer, the first process to
            // need a key builds and publishes it for every other worker.
            const std::uint64_t key = sim::warmupKeyHash(job.profile, cfg);
            bool builderRan = false;
            bool builtLocally = false;
            const auto build = [&] {
                builtLocally = true;
                return sim::buildWarmupSnapshot(job.profile, cfg);
            };
            const std::int64_t warmupStartUs =
                jobStartUs ? obs::monotonicMicros() : 0;
            blob = ctx.warmups->getOrBuild(key, [&]() -> std::string {
                builderRan = true;
                if (ctx.sharedWarmups)
                    return ctx.sharedWarmups->getOrBuild(key, build);
                return build();
            });
            cfg.warmupBlob = blob.get();
            if (jobStartUs) {
                const std::int64_t warmupEndUs = obs::monotonicMicros();
                // In-memory hit: the outer builder never ran. Disk hit:
                // it ran but the shared layer satisfied it.
                const char *outcome = !builderRan ? "hit"
                                      : builtLocally ? "build"
                                                     : "shared-hit";
                if (ctx.metrics) {
                    (builderRan && builtLocally ? ctx.metrics->warmupBuilds
                                                : ctx.metrics->warmupHits)
                        .add();
                    ctx.metrics->warmupMs.observe(static_cast<std::uint64_t>(
                        (warmupEndUs - warmupStartUs) / 1000));
                }
                if (ctx.spans)
                    ctx.spans->complete("warmup", tele.job, tele.attempt,
                                        tele.worker, warmupStartUs,
                                        warmupEndUs - warmupStartUs,
                                        outcome);
            }
        }
        const std::int64_t simStartUs =
            jobStartUs ? obs::monotonicMicros() : 0;
        if (ctx.traces) {
            // Hold the shared trace only for the duration of the run: it
            // stays recorded while any sibling job needs it and is
            // released when the profile's jobs drain.
            const std::shared_ptr<CachedTrace> trace =
                ctx.traces->acquire(job.profile, cfg.seed);
            const auto cursor = trace->openCursor();
            out.results = sim::runSimulation(job.profile, cfg, *cursor);
        } else {
            out.results = sim::runSimulation(job.profile, cfg);
        }
        out.ok = true;
        if (jobStartUs) {
            const std::int64_t simEndUs = obs::monotonicMicros();
            if (ctx.metrics)
                ctx.metrics->simulateMs.observe(static_cast<std::uint64_t>(
                    (simEndUs - simStartUs) / 1000));
            if (ctx.spans)
                ctx.spans->complete("simulate", tele.job, tele.attempt,
                                    tele.worker, simStartUs,
                                    simEndUs - simStartUs);
        }
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    }
    if (jobStartUs) {
        if (ctx.metrics) {
            ctx.metrics->jobsExecuted.add();
            if (out.ok) {
                ctx.metrics->memRequests.add(out.results.mem.dramRequests);
                ctx.metrics->memRowHits.add(out.results.mem.dramRowHits);
                ctx.metrics->memRowConflicts.add(
                    out.results.mem.dramRowConflicts);
                ctx.metrics->memQueueFullWaits.add(
                    out.results.mem.dramQueueFullWaits);
            }
            if (!out.ok)
                ctx.metrics->jobFailures.add();
            ctx.metrics->jobMs.observe(static_cast<std::uint64_t>(
                (obs::monotonicMicros() - jobStartUs) / 1000));
        }
        if (ctx.spans && !out.ok)
            ctx.spans->instant("job-failed", tele.job, tele.attempt,
                               tele.worker, obs::monotonicMicros(),
                               out.error);
    }
    return out;
}

} // namespace wsrs::runner
