/**
 * @file
 * Aggregated machine-readable sweep report: every job's wsrs-stats-v1
 * document collected into one JSON file (schema wsrs-sweep-report-v1),
 * consumed by scripts/plot_figures.py and scripts/stall_report.py.
 */
#pragma once

#include <iosfwd>
#include <vector>

#include "src/runner/sweep_runner.h"

namespace wsrs::runner {

/** Version tag of the aggregated sweep report document. */
inline constexpr const char *kSweepReportSchema = "wsrs-sweep-report-v1";

/**
 * Write the aggregated report for a finished sweep. @p jobs and
 * @p outcomes must be the submission-order pair returned by
 * SweepRunner::run; failed jobs are reported with ok=false and their
 * error text instead of a stats document. The report carries the runner's
 * telemetry in two additive objects: "resume" ({resumed, skipped_runs})
 * and "ckpt" ({warmup_reuse, warmup_cache: {hits, misses}}).
 */
void writeSweepReport(std::ostream &os, const std::vector<SweepJob> &jobs,
                      const std::vector<SweepOutcome> &outcomes,
                      const SweepRunner::Telemetry &telemetry = {});

} // namespace wsrs::runner
