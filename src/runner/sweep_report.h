/**
 * @file
 * Aggregated machine-readable sweep report: every job's wsrs-stats-v1
 * document collected into one JSON file (schema wsrs-sweep-report-v1),
 * consumed by scripts/plot_figures.py and scripts/stall_report.py.
 */
#pragma once

#include <iosfwd>
#include <vector>

#include "src/obs/svc_counters.h"
#include "src/runner/sweep_runner.h"

namespace wsrs::runner {

/** Version tag of the aggregated sweep report document. */
inline constexpr const char *kSweepReportSchema = "wsrs-sweep-report-v1";

/** Distributed-execution telemetry attached to a coordinator's merged
 *  report (absent from single-process runs). */
struct SvcReport
{
    obs::SvcCounters counters;
    std::vector<obs::WorkerLiveness> workers;
};

/**
 * Write the aggregated report for a finished sweep. @p jobs and
 * @p outcomes must be the submission-order pair returned by
 * SweepRunner::run (or a coordinator merge, which preserves the same
 * order); failed jobs are reported with ok=false and their error text
 * instead of a stats document. The report carries the runner's telemetry
 * in two additive objects: "resume" ({resumed, skipped_runs}) and "ckpt"
 * ({warmup_reuse, warmup_cache: {hits, misses}}). When @p svc is given
 * (coordinator merges), a third "svc" object records sharding, lease and
 * worker-liveness counters; the job payloads themselves are byte-equal
 * between local and distributed execution.
 */
void writeSweepReport(std::ostream &os, const std::vector<SweepJob> &jobs,
                      const std::vector<SweepOutcome> &outcomes,
                      const SweepRunner::Telemetry &telemetry = {},
                      const SvcReport *svc = nullptr);

} // namespace wsrs::runner
