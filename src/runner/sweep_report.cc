#include "sweep_report.h"

#include <ostream>

#include "src/common/log.h"
#include "src/common/stats.h"

namespace wsrs::runner {

void
writeSweepReport(std::ostream &os, const std::vector<SweepJob> &jobs,
                 const std::vector<SweepOutcome> &outcomes,
                 const SweepRunner::Telemetry &telemetry,
                 const SvcReport *svc)
{
    if (jobs.size() != outcomes.size())
        fatal("sweep report: %zu jobs but %zu outcomes", jobs.size(),
              outcomes.size());
    std::size_t failed = 0;
    os << "{\"schema\": \"" << kSweepReportSchema << "\", \"jobs\": [";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SweepOutcome &out = outcomes[i];
        os << (i ? ", " : "") << "{\"benchmark\": \""
           << jsonEscape(jobs[i].profile.name) << "\", \"machine\": \""
           << jsonEscape(jobs[i].config.core.name) << "\", \"ok\": "
           << (out.ok ? "true" : "false");
        if (out.ok) {
            // results.statsJson is itself a complete JSON document; embed
            // it verbatim.
            os << ", \"stats\": " << out.results.statsJson;
        } else {
            os << ", \"error\": \"" << jsonEscape(out.error)
               << "\", \"stats\": null";
            ++failed;
        }
        os << "}";
    }
    os << "], \"resume\": {\"resumed\": "
       << (telemetry.resumed ? "true" : "false")
       << ", \"skipped_runs\": " << telemetry.skippedRuns
       << "}, \"ckpt\": {\"warmup_reuse\": "
       << (telemetry.warmupReuse ? "true" : "false")
       << ", \"warmup_cache\": {\"hits\": " << telemetry.warmupHits
       << ", \"misses\": " << telemetry.warmupMisses << "}}";
    if (svc) {
        os << ", \"svc\": ";
        obs::writeSvcJson(os, svc->counters, svc->workers);
    }
    os << ", \"summary\": {\"total\": " << jobs.size()
       << ", \"failed\": " << failed << "}}";
}

} // namespace wsrs::runner
