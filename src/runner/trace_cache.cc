#include "trace_cache.h"

#include <algorithm>

#include "src/common/log.h"

namespace wsrs::runner {

/**
 * Replay source over a CachedTrace; one per simulation.
 *
 * Reads are batched per chunk: one atomic acquire load per refill fixes a
 * [cur_, lim_) span inside a published chunk, and every next() inside the
 * span is a plain pointer dereference. Chunk storage never moves (the
 * chunk-pointer table is pre-sized) and published micro-ops are immutable,
 * so the borrowed span stays valid for the cursor's lifetime.
 */
class CachedTrace::Cursor : public workload::MicroOpSource
{
  public:
    explicit Cursor(CachedTrace &trace) : trace_(trace) {}

    isa::MicroOp
    next() override
    {
        if (cur_ == lim_)
            refill();
        return *cur_++;
    }

  private:
    void
    refill()
    {
        const std::uint64_t pos = nextPos_;
        std::uint64_t avail = trace_.available_.load(std::memory_order_acquire);
        if (pos >= avail) {
            trace_.ensure(pos + 1);
            avail = trace_.available_.load(std::memory_order_acquire);
        }
        const std::size_t ci = static_cast<std::size_t>(pos / kChunkOps);
        const std::size_t off = static_cast<std::size_t>(pos % kChunkOps);
        const std::uint64_t chunk_end =
            std::min<std::uint64_t>(std::uint64_t{ci + 1} * kChunkOps, avail);
        const Chunk &chunk = *trace_.chunks_[ci];
        cur_ = chunk.data() + off;
        lim_ = chunk.data() +
               static_cast<std::size_t>(chunk_end - std::uint64_t{ci} *
                                                        kChunkOps);
        nextPos_ = chunk_end;
    }

    CachedTrace &trace_;
    const isa::MicroOp *cur_ = nullptr;
    const isa::MicroOp *lim_ = nullptr;
    std::uint64_t nextPos_ = 0;  ///< Absolute index one past lim_.
};

CachedTrace::CachedTrace(const workload::BenchmarkProfile &profile,
                         std::uint64_t seed)
    : chunks_(kMaxChunks), gen_(profile, seed)
{
}

std::unique_ptr<workload::MicroOpSource>
CachedTrace::openCursor()
{
    return std::make_unique<Cursor>(*this);
}

void
CachedTrace::ensure(std::uint64_t count)
{
    std::lock_guard<std::mutex> lock(growMutex_);
    std::uint64_t avail = available_.load(std::memory_order_relaxed);
    while (avail < count) {
        const std::size_t ci = static_cast<std::size_t>(avail / kChunkOps);
        if (ci >= kMaxChunks)
            fatal("trace cache overflow: more than %llu micro-ops recorded",
                  static_cast<unsigned long long>(std::uint64_t{kMaxChunks} *
                                                  kChunkOps));
        if (!chunks_[ci])
            chunks_[ci] = std::make_unique<Chunk>();
        Chunk &chunk = *chunks_[ci];
        // Fill to the chunk boundary so concurrent readers amortize the
        // lock; the release store publishes the chunk contents.
        const std::uint64_t end = std::uint64_t{ci + 1} * kChunkOps;
        for (; avail < end; ++avail)
            chunk[static_cast<std::size_t>(avail % kChunkOps)] = gen_.next();
        available_.store(avail, std::memory_order_release);
    }
}

std::shared_ptr<CachedTrace>
TraceCache::acquire(const workload::BenchmarkProfile &profile,
                    std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{profile.name, seed};
    if (auto live = entries_[key].lock())
        return live;
    auto trace = std::make_shared<CachedTrace>(profile, seed);
    entries_[key] = trace;
    return trace;
}

std::size_t
TraceCache::liveTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t live = 0;
    for (const auto &[key, weak] : entries_)
        if (!weak.expired())
            ++live;
    return live;
}

} // namespace wsrs::runner
