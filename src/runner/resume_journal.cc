#include "resume_journal.h"

#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/common/hash.h"
#include "src/common/log.h"
#include "src/sim/warmup.h"

namespace wsrs::runner {

namespace {

constexpr char kRecordMarker[4] = {'J', 'R', 'E', 'C'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;
/** Marker + index + payload length (CRC follows the payload). */
constexpr std::size_t kRecordHeadBytes = 4 + 8 + 8;

std::uint64_t
readLe64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

std::uint32_t
readLe32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

} // namespace

std::uint64_t
sweepKeyHash(const std::vector<SweepJob> &jobs)
{
    std::uint64_t h = mix64(0x73776a72u);  // sweep-journal salt
    h = mixCombine(h, jobs.size());
    for (const SweepJob &job : jobs) {
        // The full-checkpoint meta-hash already covers the profile, trace
        // seed, warm-up length, memory hierarchy, predictor and the whole
        // core preset; only the measured length is missing from it.
        h = mixCombine(h,
                       sim::fullCheckpointMetaHash(job.profile, job.config));
        h = mixCombine(h, job.config.measureUops);
    }
    return h;
}

void
encodeOutcome(ckpt::Writer &w, const SweepOutcome &out)
{
    w.b(out.ok);
    w.str(out.error);
    const sim::SimResults &r = out.results;
    w.str(r.benchmark);
    w.str(r.machine);
    w.str(r.statsJson);
    w.str(r.timelineText);
    w.d64(r.ipc);
    w.d64(r.unbalancingDegree);
    w.d64(r.branchMispredictRate);
    w.d64(r.l1MissRate);
    w.d64(r.l2MissRate);
    const core::CoreStats &s = r.stats;
    w.u64(s.cycles);
    w.u64(s.committed);
    w.u64(s.injectedMoves);
    w.u64(s.branches);
    w.u64(s.mispredicts);
    w.u64(s.loadForwards);
    w.u64(s.renameStallFreeReg);
    w.u64(s.renameStallWindow);
    w.u64(s.renameStallRob);
    w.u64(s.renameStallLsq);
    w.u64(s.unbalancedGroups);
    w.u64(s.totalGroups);
    w.u64(s.valueMismatches);
    for (const std::uint64_t c : s.perCluster)
        w.u64(c);
    for (const std::uint64_t c : s.issueWidthHist)
        w.u64(c);
    w.u64(s.windowOccupancySum);
    w.u64(r.mem.dramRequests);
    w.u64(r.mem.dramRowHits);
    w.u64(r.mem.dramRowConflicts);
    w.u64(r.mem.dramQueueFullWaits);
}

SweepOutcome
decodeOutcome(ckpt::Reader &r)
{
    SweepOutcome out;
    out.ok = r.b();
    out.error = r.str();
    sim::SimResults &res = out.results;
    res.benchmark = r.str();
    res.machine = r.str();
    res.statsJson = r.str();
    res.timelineText = r.str();
    res.ipc = r.d64();
    res.unbalancingDegree = r.d64();
    res.branchMispredictRate = r.d64();
    res.l1MissRate = r.d64();
    res.l2MissRate = r.d64();
    core::CoreStats &s = res.stats;
    s.cycles = r.u64();
    s.committed = r.u64();
    s.injectedMoves = r.u64();
    s.branches = r.u64();
    s.mispredicts = r.u64();
    s.loadForwards = r.u64();
    s.renameStallFreeReg = r.u64();
    s.renameStallWindow = r.u64();
    s.renameStallRob = r.u64();
    s.renameStallLsq = r.u64();
    s.unbalancedGroups = r.u64();
    s.totalGroups = r.u64();
    s.valueMismatches = r.u64();
    for (std::uint64_t &c : s.perCluster)
        c = r.u64();
    for (std::uint64_t &c : s.issueWidthHist)
        c = r.u64();
    s.windowOccupancySum = r.u64();
    res.mem.dramRequests = r.u64();
    res.mem.dramRowHits = r.u64();
    res.mem.dramRowConflicts = r.u64();
    res.mem.dramQueueFullWaits = r.u64();
    if (!r.atEnd())
        r.fail("trailing bytes after journal outcome");
    return out;
}

ResumeJournal::ResumeJournal(std::string path, std::uint64_t sweep_key,
                             std::uint64_t num_jobs, bool resume)
    : path_(std::move(path)), sweepKey_(sweep_key), numJobs_(num_jobs),
      recovered_(num_jobs), mask_(num_jobs, false)
{
    if (resume && std::filesystem::exists(path_)) {
        replay();
    } else {
        writeHeader();
    }
}

void
ResumeJournal::writeHeader()
{
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_)
        fatalIo("cannot open resume journal '%s' for writing", path_.c_str());
    ckpt::Writer w;
    w.bytes(kJournalMagic, sizeof(kJournalMagic));
    w.u32(kJournalVersion);
    w.u64(sweepKey_);
    w.u64(numJobs_);
    out_.write(w.buffer().data(),
               static_cast<std::streamsize>(w.size()));
    out_.flush();
    if (!out_)
        fatalIo("write error on resume journal '%s'", path_.c_str());
}

void
ResumeJournal::replay()
{
    std::string data;
    {
        std::ifstream is(path_, std::ios::binary);
        if (!is)
            fatalIo("cannot open resume journal '%s'", path_.c_str());
        std::ostringstream buf;
        buf << is.rdbuf();
        data = buf.str();
    }
    if (data.size() < kHeaderBytes)
        fatalIo("resume journal '%s' is truncated: %zu bytes, need %zu for "
              "the header",
              path_.c_str(), data.size(), kHeaderBytes);
    if (std::memcmp(data.data(), kJournalMagic, sizeof(kJournalMagic)) != 0)
        fatalIo("'%s' is not a wsrs sweep journal (bad magic)", path_.c_str());
    const std::uint32_t version = readLe32(data.data() + 8);
    if (version != kJournalVersion)
        fatalMismatch("resume journal '%s' has format version %u, this build "
              "reads version %u",
              path_.c_str(), version, kJournalVersion);
    const std::uint64_t key = readLe64(data.data() + 12);
    if (key != sweepKey_)
        fatalMismatch("resume journal '%s' belongs to a different sweep "
              "(journal key %016llx, this sweep %016llx); refusing to mix "
              "results — delete the journal or rerun the original sweep",
              path_.c_str(), static_cast<unsigned long long>(key),
              static_cast<unsigned long long>(sweepKey_));
    const std::uint64_t jobs = readLe64(data.data() + 20);
    if (jobs != numJobs_)
        fatalMismatch("resume journal '%s' records a %llu-job sweep, this sweep "
              "has %llu jobs",
              path_.c_str(), static_cast<unsigned long long>(jobs),
              static_cast<unsigned long long>(numJobs_));
    resumed_ = true;

    // Replay intact records; anything from the first damaged or
    // incomplete record onward is a torn tail from the crash and is
    // discarded (the jobs it covered simply rerun).
    std::size_t pos = kHeaderBytes;
    std::size_t goodEnd = pos;
    while (data.size() - pos >= kRecordHeadBytes) {
        if (std::memcmp(data.data() + pos, kRecordMarker,
                        sizeof(kRecordMarker)) != 0)
            break;
        const std::uint64_t index = readLe64(data.data() + pos + 4);
        const std::uint64_t len = readLe64(data.data() + pos + 12);
        if (index >= numJobs_ || len > data.size() - pos - kRecordHeadBytes)
            break;
        const std::size_t crcPos = pos + kRecordHeadBytes +
                                   static_cast<std::size_t>(len);
        if (data.size() - crcPos < 4)
            break;
        const std::uint32_t stored = readLe32(data.data() + crcPos);
        const std::uint32_t computed = ckpt::crc32(
            data.data() + pos + 4, kRecordHeadBytes - 4 +
                                       static_cast<std::size_t>(len));
        if (stored != computed)
            break;
        ckpt::Reader r(
            std::string_view(data.data() + pos + kRecordHeadBytes,
                             static_cast<std::size_t>(len)),
            "journal '" + path_ + "'", pos + kRecordHeadBytes);
        recovered_[static_cast<std::size_t>(index)] = decodeOutcome(r);
        if (!mask_[static_cast<std::size_t>(index)]) {
            mask_[static_cast<std::size_t>(index)] = true;
            ++recoveredCount_;
        }
        pos = crcPos + 4;
        goodEnd = pos;
    }

    if (goodEnd != data.size())
        std::filesystem::resize_file(path_, goodEnd);
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_)
        fatalIo("cannot reopen resume journal '%s' for append",
              path_.c_str());
}

void
ResumeJournal::record(std::uint64_t index, const SweepOutcome &out)
{
    ckpt::Writer body;
    body.u64(index);
    ckpt::Writer payload;
    encodeOutcome(payload, out);
    body.u64(payload.size());
    body.bytes(payload.buffer().data(), payload.size());
    const std::uint32_t crc =
        ckpt::crc32(body.buffer().data(), body.size());

    std::lock_guard<std::mutex> lock(mutex_);
    out_.write(kRecordMarker, sizeof(kRecordMarker));
    out_.write(body.buffer().data(),
               static_cast<std::streamsize>(body.size()));
    ckpt::Writer tail;
    tail.u32(crc);
    out_.write(tail.buffer().data(),
               static_cast<std::streamsize>(tail.size()));
    out_.flush();
    if (!out_)
        fatalIo("write error on resume journal '%s'", path_.c_str());
}

} // namespace wsrs::runner
