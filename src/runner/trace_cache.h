/**
 * @file
 * Shared, thread-safe per-profile micro-op trace cache.
 *
 * A configuration sweep runs every machine preset over the same benchmark
 * trace. Regenerating the synthetic trace per run wastes a large share of
 * each run's time on TraceGenerator::next(); recording the stream once and
 * replaying it from memory pays that cost a single time per profile.
 *
 * CachedTrace is an append-only, chunked micro-op buffer fed lazily by one
 * TraceGenerator. Any number of Cursor sources (one per simulation) read it
 * concurrently; a reader that runs past the recorded prefix extends the
 * buffer under a mutex. Chunk storage is pre-addressed (a fixed table of
 * chunk pointers), so published micro-ops are never moved and readers of
 * the already-available prefix synchronize with a single atomic load.
 *
 * TraceCache keys CachedTrace instances by (profile, seed) and holds weak
 * references: a trace lives exactly as long as some run is using it, so a
 * sweep's memory footprint is bounded by the number of concurrently
 * running profiles rather than the whole benchmark suite.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/workload/profile.h"
#include "src/workload/source.h"
#include "src/workload/trace_generator.h"

namespace wsrs::runner {

/** One benchmark's recorded micro-op stream, shared between simulations. */
class CachedTrace
{
  public:
    /** Same stream contract as TraceGenerator(profile, seed). */
    CachedTrace(const workload::BenchmarkProfile &profile,
                std::uint64_t seed);

    /**
     * Open an independent replay source starting at the first micro-op.
     * Cursors may be consumed concurrently from different threads; the
     * returned source borrows this trace, which must outlive it.
     */
    std::unique_ptr<workload::MicroOpSource> openCursor();

    /** Micro-ops recorded so far (grows on demand). */
    std::uint64_t recorded() const
    {
        return available_.load(std::memory_order_acquire);
    }

  private:
    class Cursor;

    static constexpr std::size_t kChunkOps = 16384;
    static constexpr std::size_t kMaxChunks = 1u << 15;  ///< ~536M ops.

    /** Record micro-ops until at least @p count are available. */
    void ensure(std::uint64_t count);

    const isa::MicroOp &
    at(std::uint64_t index) const
    {
        return (*chunks_[static_cast<std::size_t>(index / kChunkOps)])
            [static_cast<std::size_t>(index % kChunkOps)];
    }

    using Chunk = std::array<isa::MicroOp, kChunkOps>;
    std::vector<std::unique_ptr<Chunk>> chunks_;  ///< Fixed-size table.
    std::atomic<std::uint64_t> available_{0};
    std::mutex growMutex_;
    workload::TraceGenerator gen_;  ///< Guarded by growMutex_.
};

/** Process-wide registry of live CachedTrace instances. */
class TraceCache
{
  public:
    /**
     * The trace for (profile, seed), recording it on first use. Returns a
     * shared handle; the trace is dropped when the last handle dies.
     */
    std::shared_ptr<CachedTrace>
    acquire(const workload::BenchmarkProfile &profile, std::uint64_t seed);

    /** Number of traces currently alive (for tests/telemetry). */
    std::size_t liveTraces() const;

  private:
    using Key = std::pair<std::string, std::uint64_t>;
    mutable std::mutex mutex_;
    std::map<Key, std::weak_ptr<CachedTrace>> entries_;
};

} // namespace wsrs::runner
